// Command-line experiment runner: point-to-point CoS link measurements
// with every knob exposed, CSV output for scripting.
//
//   $ ./cos_sim_cli --snr 18 --packets 200 --payload 1024 --k 4
//   $ ./cos_sim_cli --snr 9 --rate 12 --doppler 15 --csv
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "mac/timing.h"
#include "sim/session.h"

using namespace silence;

namespace {

struct CliOptions {
  double snr_db = 18.0;
  int packets = 100;
  std::size_t payload = 1024;
  int k = 4;
  std::optional<int> rate_mbps;
  double doppler_hz = 15.0;
  std::uint64_t seed = 1;
  bool csv = false;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --snr <dB>       measured SNR (default 18)\n"
      "  --packets <n>    packets to send (default 100)\n"
      "  --payload <B>    PSDU size in octets incl. FCS (default 1024)\n"
      "  --k <bits>       bits per silence interval, 1..8 (default 4)\n"
      "  --rate <Mbps>    fix the data rate (default: SNR-adapted)\n"
      "  --doppler <Hz>   channel Doppler (default 15)\n"
      "  --seed <n>       RNG/channel seed (default 1)\n"
      "  --csv            machine-readable one-line output\n",
      argv0);
}

std::optional<CliOptions> parse(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--help" || arg == "-h") {
      return std::nullopt;
    } else {
      const char* value = next();
      if (value == nullptr) return std::nullopt;
      if (arg == "--snr") {
        options.snr_db = std::atof(value);
      } else if (arg == "--packets") {
        options.packets = std::atoi(value);
      } else if (arg == "--payload") {
        options.payload = static_cast<std::size_t>(std::atoll(value));
      } else if (arg == "--k") {
        options.k = std::atoi(value);
      } else if (arg == "--rate") {
        options.rate_mbps = std::atoi(value);
      } else if (arg == "--doppler") {
        options.doppler_hz = std::atof(value);
      } else if (arg == "--seed") {
        options.seed = static_cast<std::uint64_t>(std::atoll(value));
      } else {
        return std::nullopt;
      }
    }
  }
  if (options.packets < 1 || options.payload < 5 || options.k < 1 ||
      options.k > 8) {
    return std::nullopt;
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse(argc, argv);
  if (!options) {
    usage(argv[0]);
    return 2;
  }

  LinkConfig link_config;
  link_config.snr_db = options->snr_db;
  link_config.snr_is_measured = true;
  link_config.channel_seed = options->seed;
  link_config.noise_seed = options->seed * 31 + 1;
  link_config.profile.doppler_hz = options->doppler_hz;
  Link link(link_config);

  SessionConfig session_config;
  session_config.profile.bits_per_interval = options->k;
  session_config.fixed_rate_mbps = options->rate_mbps;
  CosSession session(link, session_config);

  Rng rng(options->seed * 7 + 3);
  const Bytes psdu = make_test_psdu(options->payload, rng);

  int data_ok = 0, control_perfect = 0;
  std::size_t bits_sent = 0, bits_correct = 0, silences = 0;
  double airtime_s = 0.0;
  int rate_sum = 0;
  for (int p = 0; p < options->packets; ++p) {
    const Bits control = rng.bits(2000);
    const PacketReport report = session.send_packet(psdu, control);
    data_ok += report.data_ok;
    control_perfect += report.control_ok;
    bits_sent += report.control_bits_sent;
    bits_correct += report.control_bits_correct;
    silences += report.silences_sent;
    rate_sum += report.mcs->data_rate_mbps;
    airtime_s += 1e-6 * psdu_airtime_us(options->payload, *report.mcs);
    link.advance(1e-3);
  }

  const double prr = static_cast<double>(data_ok) / options->packets;
  const double goodput_mbps =
      data_ok * static_cast<double>(options->payload) * 8.0 /
      (airtime_s * 1e6);
  const double control_kbps = bits_correct / airtime_s / 1000.0;
  const double bit_accuracy =
      bits_sent ? static_cast<double>(bits_correct) / bits_sent : 0.0;

  if (options->csv) {
    std::printf(
        "snr_db,packets,payload,k,avg_rate_mbps,prr,goodput_mbps,"
        "control_kbps,control_bit_accuracy,silences_per_packet\n"
        "%.1f,%d,%zu,%d,%.1f,%.4f,%.3f,%.2f,%.4f,%.1f\n",
        options->snr_db, options->packets, options->payload, options->k,
        static_cast<double>(rate_sum) / options->packets, prr,
        goodput_mbps, control_kbps, bit_accuracy,
        static_cast<double>(silences) / options->packets);
  } else {
    std::printf("CoS link @ measured SNR %.1f dB, %d packets of %zu B\n",
                options->snr_db, options->packets, options->payload);
    std::printf("  data rate (avg)       : %.1f Mbps\n",
                static_cast<double>(rate_sum) / options->packets);
    std::printf("  packet reception rate : %.4f\n", prr);
    std::printf("  data goodput          : %.2f Mbps\n", goodput_mbps);
    std::printf("  control stream        : %.1f kbps (bit accuracy %.4f)\n",
                control_kbps, bit_accuracy);
    std::printf("  control-perfect pkts  : %d/%d\n", control_perfect,
                options->packets);
    std::printf("  silences per packet   : %.1f\n",
                static_cast<double>(silences) / options->packets);
  }
  return 0;
}
