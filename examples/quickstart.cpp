// Quickstart: send one 802.11a data packet with a free control message
// riding on silence symbols, through a simulated indoor channel, and
// decode both at the receiver.
//
//   $ ./quickstart
#include <cstdio>
#include <string>

#include "common/crc32.h"
#include "common/hex.h"
#include "core/cos_link.h"
#include "sim/link.h"

using namespace silence;

int main() {
  // 1. An indoor link: multipath fading + AWGN at 18 dB mean SNR.
  LinkConfig link_config;
  link_config.snr_db = 18.0;
  link_config.channel_seed = 7;  // the receiver's "position"
  Link link(link_config);
  std::printf("link: measured SNR %.1f dB, actual SNR %.1f dB\n",
              link.measured_snr_db(), link.actual_snr_db());

  // 2. A data packet (payload + FCS) and a control message. The payload
  //    is padded so the control grid has room for the whole message.
  Rng rng(42);
  const std::string payload = "CoS quickstart payload: the data packet";
  Bytes psdu(payload.begin(), payload.end());
  const Bytes padding = rng.bytes(256);
  psdu.insert(psdu.end(), padding.begin(), padding.end());
  append_fcs(psdu);

  const std::string note = "FREE!";
  const Bits control_bits =
      bytes_to_bits(Bytes(note.begin(), note.end()));

  // 3. Transmit: rate adaptation picks the MCS from the measured SNR;
  //    silence symbols carry the control bits on agreed subcarriers.
  const Mcs& mcs = select_mcs_by_snr(link.measured_snr_db());
  CosTxConfig tx_config;
  tx_config.mcs = McsId::of(mcs);
  tx_config.control_subcarriers = {10, 11, 12, 13, 14, 15, 16, 17};
  const CosTxPacket tx = cos_transmit(psdu, control_bits, tx_config);
  std::printf("tx: %d Mbps (%.*s %.*s), %d OFDM symbols, %zu silences "
              "conveying %zu control bits\n",
              mcs.data_rate_mbps,
              static_cast<int>(to_string(mcs.modulation).size()),
              to_string(mcs.modulation).data(),
              static_cast<int>(to_string(mcs.code_rate).size()),
              to_string(mcs.code_rate).data(), tx.frame.num_symbols(),
              tx.plan.silence_count, tx.plan.bits_sent);

  // 4. Channel.
  const CxVec received = link.send(tx.samples);

  // 5. Receive: energy detection finds the silences, the intervals decode
  //    to control bits, and erasure Viterbi decoding recovers the data.
  CosRxConfig rx_config;
  rx_config.control_subcarriers = tx_config.control_subcarriers;
  const CosRxPacket rx = cos_receive(received, rx_config);

  if (!rx.data_ok) {
    std::printf("rx: data packet FAILED\n");
    return 1;
  }
  const std::string decoded_payload(rx.psdu.begin(),
                                    rx.psdu.begin() + payload.size());
  std::printf("rx: data ok   -> \"%s\"\n", decoded_payload.c_str());

  const Bytes control_bytes = bits_to_bytes(
      std::span(rx.control_bits).first(control_bits.size()));
  std::printf("rx: control   -> \"%s\" (for free: zero extra airtime)\n",
              to_printable(control_bytes).c_str());

  // 6. The receiver also proposes next packet's control subcarriers from
  //    its per-subcarrier EVM — the feedback that closes the CoS loop.
  std::printf("rx: next control subcarriers:");
  for (int sc : rx.next_control_subcarriers) std::printf(" %d", sc);
  std::printf("\n");
  return 0;
}
