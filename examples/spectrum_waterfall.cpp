// Visualizes what CoS actually does to the spectrum: an ASCII waterfall
// of received per-subcarrier energy (time down, frequency across), with
// the detected silence symbols highlighted, and the decoded control
// message printed beneath — paper Fig. 1(a)/10(a) come to life.
//
//   $ ./spectrum_waterfall
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "core/cos_link.h"
#include "sim/link.h"

using namespace silence;

namespace {

// Energy to glyph: deeper shade = more energy.
char glyph(double relative) {
  static constexpr char kScale[] = " .:-=+*#%@";
  const int idx = std::clamp(
      static_cast<int>(relative * 9.0), 0, 9);
  return kScale[idx];
}

}  // namespace

int main() {
  LinkConfig link_config;
  link_config.snr_db = 17.0;
  link_config.snr_is_measured = true;
  link_config.channel_seed = 5;
  Link link(link_config);

  Rng rng(8);
  const Bytes psdu = make_test_psdu(400, rng);
  const std::string note = "HI";
  const Bits control = bytes_to_bits(Bytes(note.begin(), note.end()));

  CosTxConfig txc;
  txc.mcs = McsId::for_snr(link.measured_snr_db());

  // Bootstrap: one plain packet lets the receiver pick weak-but-
  // detectable control subcarriers from its per-subcarrier EVM.
  CosRxConfig bootstrap;
  bootstrap.min_feedback_subcarriers = 7;
  const CosTxPacket probe = cos_transmit(psdu, {}, txc);
  const CosRxPacket probe_rx = cos_receive(link.send(probe.samples),
                                           bootstrap);
  txc.control_subcarriers = probe_rx.data_ok
                                ? probe_rx.next_control_subcarriers
                                : std::vector<int>{6, 12, 18, 24, 30, 36};

  const CosTxPacket tx = cos_transmit(psdu, control, txc);

  const CxVec received = link.send(tx.samples);
  CosRxConfig rxc;
  rxc.control_subcarriers = txc.control_subcarriers;
  const CosRxPacket rx = cos_receive(received, rxc);

  std::printf("received energy waterfall (%d Mbps, %d OFDM symbols)\n",
              txc.mcs->data_rate_mbps,
              static_cast<int>(rx.fe.data_bins.size()));
  std::printf("columns = 48 data subcarriers; 'o' = detected silence\n\n");
  std::printf("sym  ");
  for (int sc = 0; sc < kNumDataSubcarriers; ++sc) {
    std::printf("%c", sc % 6 == 0 ? '|' : ' ');
  }
  std::printf("\n");

  double peak = 0.0;
  for (const auto& bins : rx.fe.data_bins) {
    for (double e : data_bin_energies(bins)) peak = std::max(peak, e);
  }
  const std::size_t rows = std::min<std::size_t>(rx.fe.data_bins.size(), 24);
  for (std::size_t s = 0; s < rows; ++s) {
    std::printf("%3zu  ", s);
    const auto energies = data_bin_energies(rx.fe.data_bins[s]);
    for (int sc = 0; sc < kNumDataSubcarriers; ++sc) {
      const auto idx = static_cast<std::size_t>(sc);
      if (rx.detected_mask[s][idx]) {
        std::printf("o");
      } else {
        std::printf("%c", glyph(std::sqrt(energies[idx] / peak)));
      }
    }
    std::printf("\n");
  }

  std::printf("\ndata packet: %s\n", rx.data_ok ? "decoded (CRC ok)" : "LOST");
  if (rx.control_bits.size() >= control.size()) {
    const Bytes decoded_bytes = bits_to_bytes(
        std::span(rx.control_bits).first(control.size()));
    std::printf("control message from the silence intervals: \"%s\"\n",
                std::string(decoded_bytes.begin(), decoded_bytes.end())
                    .c_str());
  }
  return rx.data_ok ? 0 : 1;
}
