// Cross-technology CoS: a WiFi AP announces its presence and load to
// narrowband (ZigBee-class) devices by blanking a block of subcarriers —
// the narrowband device reads the message from nothing but its own RSSI,
// while the WiFi data packet rides on unharmed.
//
//   $ ./crosstech_beacon
#include <cstdio>
#include <string>

#include "core/cos_link.h"
#include "sim/link.h"
#include "xtech/narrowband.h"

using namespace silence;

int main() {
  std::printf("=== cross-technology CoS beacon ===\n");
  LinkConfig link_config;
  link_config.snr_db = 16.0;
  link_config.snr_is_measured = true;
  link_config.channel_seed = 9;
  Link link(link_config);

  Rng rng(14);
  // The beacon: 3-bit channel id + 6-bit duty-cycle hint for the
  // coexisting network, repeated in every data packet.
  const int wifi_channel = 6;
  const int duty_percent = 42;
  Bits beacon = uint_to_bits(static_cast<std::uint64_t>(wifi_channel), 3);
  const Bits duty = uint_to_bits(static_cast<std::uint64_t>(duty_percent), 6);
  beacon.insert(beacon.end(), duty.begin(), duty.end());

  // Beacon-carrying packets go at a robust rate (like real beacons): the
  // rate-1/2 code shrugs off the blanked block.
  XtechTxConfig txc;
  txc.mcs = McsId::for_rate(12);

  int heard = 0, wifi_ok = 0;
  const int packets = 8;
  for (int p = 0; p < packets; ++p) {
    const Bytes psdu = make_test_psdu(1024, rng);
    const XtechTxPacket tx = xtech_transmit(psdu, beacon, txc);
    const CxVec received = link.send(tx.samples);
    link.advance(tx.frame.airtime_sec() + 2e-3);

    // The ZigBee-class listener: RSSI only, no OFDM.
    NarrowbandObserver observer;
    observer.block_start = txc.block_start;
    observer.block_len = txc.block_len;
    observer.bits_per_interval = txc.bits_per_interval;
    const Bits heard_bits = observer.observe(received);
    bool ok = heard_bits.size() >= beacon.size();
    for (std::size_t i = 0; ok && i < beacon.size(); ++i) {
      ok = heard_bits[i] == beacon[i];
    }
    if (ok) {
      const int ch = static_cast<int>(
          bits_to_uint(std::span(heard_bits).first(3)));
      const int dc = static_cast<int>(
          bits_to_uint(std::span(heard_bits).subspan(3, 6)));
      std::printf(
          "pkt %d: narrowband device heard beacon -> WiFi ch %d, duty "
          "%d%%\n",
          p, ch, dc);
      ++heard;
    } else {
      std::printf("pkt %d: beacon missed\n", p);
    }

    // Meanwhile, the WiFi receiver decodes the data as usual, erasing
    // the blanked block.
    CosRxConfig rxc;
    for (int j = 0; j < txc.block_len; ++j) {
      rxc.control_subcarriers.push_back(txc.block_start + j);
    }
    wifi_ok += cos_receive(received, rxc).data_ok;
  }

  std::printf(
      "\nbeacons heard by the narrowband device: %d/%d\n"
      "WiFi data packets delivered:             %d/%d\n"
      "(one transmission feeds both technologies; the beacon cost zero\n"
      "airtime and zero energy)\n",
      heard, packets, wifi_ok, packets);
  return heard > 0 && wifi_ok > 0 ? 0 : 1;
}
