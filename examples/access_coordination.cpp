// Access coordination via free control messages — the paper's first
// motivating application.
//
// An AP streams data to a station while, for free, broadcasting its
// queue backlog and a next-TXOP (transmit-opportunity) grant inside each
// data packet. Contending stations read the grants from the silence
// intervals and defer without any explicit control frames, saving the
// airtime those frames would have cost.
//
//   $ ./access_coordination
#include <cstdio>
#include <vector>

#include "sim/session.h"

using namespace silence;

namespace {

// Coordination message carried in each data packet: 4-bit station id
// granted the next TXOP + 8-bit queue backlog.
struct Grant {
  int station_id;
  int backlog;
};

Bits encode_grant(const Grant& grant) {
  Bits bits = uint_to_bits(static_cast<std::uint64_t>(grant.station_id), 4);
  const Bits backlog =
      uint_to_bits(static_cast<std::uint64_t>(grant.backlog), 8);
  bits.insert(bits.end(), backlog.begin(), backlog.end());
  return bits;
}

Grant decode_grant(std::span<const std::uint8_t> bits) {
  return Grant{
      static_cast<int>(bits_to_uint(bits.first(4))),
      static_cast<int>(bits_to_uint(bits.subspan(4, 8))),
  };
}

}  // namespace

int main() {
  std::printf("=== access coordination over CoS ===\n");
  LinkConfig link_config;
  link_config.snr_db = 20.0;
  link_config.channel_seed = 3;
  Link link(link_config);
  CosSession session(link, SessionConfig{});
  Rng rng(11);

  // Round-robin of 3 contending stations; backlog drains as TXOPs are
  // granted.
  std::vector<int> backlog = {25, 14, 40};
  int granted_airtime_frames = 0;
  double saved_airtime_us = 0.0;
  const int packets = 12;

  for (int p = 0; p < packets; ++p) {
    // Pick the station with the deepest queue (the AP's scheduler).
    int next = 0;
    for (int s = 1; s < 3; ++s) {
      if (backlog[static_cast<std::size_t>(s)] >
          backlog[static_cast<std::size_t>(next)]) {
        next = s;
      }
    }
    const Grant grant{next, backlog[static_cast<std::size_t>(next)]};

    const Bytes psdu = make_test_psdu(1024, rng);
    const PacketReport report =
        session.send_packet(psdu, encode_grant(grant));

    if (report.data_ok && report.control_ok &&
        report.control_bits_sent >= 12) {
      const Grant decoded =
          decode_grant(std::span(report.rx.control_bits).first(12));
      std::printf(
          "pkt %2d @%2d Mbps: grant TXOP -> station %d (backlog %3d) "
          "[control delivered, %zu silences]\n",
          p, report.mcs->data_rate_mbps, decoded.station_id,
          decoded.backlog, report.silences_sent);
      backlog[static_cast<std::size_t>(decoded.station_id)] =
          std::max(0, backlog[static_cast<std::size_t>(decoded.station_id)] - 8);
      ++granted_airtime_frames;
      // An explicit CF-Poll-style control frame at 6 Mbps would have cost
      // preamble + SIGNAL + ~3 OFDM symbols ~ 32 us of airtime.
      saved_airtime_us += 32.0;
    } else {
      std::printf("pkt %2d: control lost; stations fall back to CSMA\n", p);
    }
  }

  std::printf(
      "\n%d/%d coordination grants delivered for free; ~%.0f us of\n"
      "control-frame airtime saved (vs explicit polling frames).\n",
      granted_airtime_frames, packets, saved_airtime_us);
  std::printf("remaining backlogs: %d %d %d\n", backlog[0], backlog[1],
              backlog[2]);
  return granted_airtime_frames > 0 ? 0 : 1;
}
