// Load balancing via free control messages — another application the
// paper's introduction motivates.
//
// Two APs serve ongoing traffic; each embeds its current load (associated
// stations + channel utilization) into every data packet it transmits.
// A station scanning for the best AP simply overhears data packets and
// reads the load reports from the silence intervals — no beacon
// modifications, no probe/response exchange, no extra airtime.
//
//   $ ./load_balancing
#include <cstdio>
#include <optional>

#include "sim/session.h"

using namespace silence;

namespace {

struct LoadReport {
  int stations;     // 6 bits
  int utilization;  // 7 bits, percent
};

Bits encode_load(const LoadReport& report) {
  Bits bits = uint_to_bits(static_cast<std::uint64_t>(report.stations), 6);
  const Bits util =
      uint_to_bits(static_cast<std::uint64_t>(report.utilization), 7);
  bits.insert(bits.end(), util.begin(), util.end());
  while (bits.size() % 4 != 0) bits.push_back(0);  // pad to whole intervals
  return bits;
}

std::optional<LoadReport> decode_load(std::span<const std::uint8_t> bits) {
  if (bits.size() < 13) return std::nullopt;
  LoadReport report{
      static_cast<int>(bits_to_uint(bits.first(6))),
      static_cast<int>(bits_to_uint(bits.subspan(6, 7))),
  };
  if (report.utilization > 100) return std::nullopt;
  return report;
}

struct Ap {
  const char* name;
  LoadReport load;
  Link link;
  CosSession session;
  Ap(const char* ap_name, LoadReport ap_load, const LinkConfig& config)
      : name(ap_name), load(ap_load), link(config),
        session(link, SessionConfig{}) {}
};

}  // namespace

int main() {
  std::printf("=== AP load balancing over CoS ===\n");

  LinkConfig config_a;
  config_a.snr_db = 19.0;
  config_a.channel_seed = 8;
  LinkConfig config_b;
  config_b.snr_db = 17.0;
  config_b.channel_seed = 9;

  Ap ap_a("AP-A", {31, 85}, config_a);  // crowded
  Ap ap_b("AP-B", {6, 20}, config_b);   // lightly loaded

  Rng rng(21);
  std::optional<LoadReport> heard_a, heard_b;

  // The scanning station overhears a few data packets from each AP.
  for (int p = 0; p < 5; ++p) {
    for (Ap* ap : {&ap_a, &ap_b}) {
      const Bytes psdu = make_test_psdu(1024, rng);
      const PacketReport report =
          ap->session.send_packet(psdu, encode_load(ap->load));
      if (report.data_ok && report.control_ok) {
        const auto decoded = decode_load(report.rx.control_bits);
        if (decoded) {
          std::printf(
              "overheard %s data pkt @%2d Mbps: load = %d stations, "
              "%d%% util (free side channel)\n",
              ap->name, report.mcs->data_rate_mbps, decoded->stations,
              decoded->utilization);
          (ap == &ap_a ? heard_a : heard_b) = decoded;
        }
      }
      // APs' loads drift as traffic comes and goes.
      ap->load.utilization =
          std::min(100, std::max(0, ap->load.utilization +
                                        static_cast<int>(rng.uniform_int(0, 6)) -
                                        3));
    }
  }

  if (!heard_a || !heard_b) {
    std::printf("\nscan incomplete; station keeps its association\n");
    return 1;
  }
  const double score_a = heard_a->stations * 2.0 + heard_a->utilization;
  const double score_b = heard_b->stations * 2.0 + heard_b->utilization;
  std::printf(
      "\nstation decision: join %s (load score %.0f vs %.0f) — chosen\n"
      "from data overheard in passing, with zero probe traffic.\n",
      score_a < score_b ? "AP-A" : "AP-B", std::min(score_a, score_b),
      std::max(score_a, score_b));
  return 0;
}
