// The paper's own feedback mechanism, end to end: the receiver selects
// next-packet control subcarriers from per-subcarrier EVM and returns the
// selection as a one-OFDM-symbol silence bit-vector riding on the ACK —
// CoS bootstrapping its own control channel.
//
//   $ ./channel_feedback
#include <cstdio>
#include <numeric>

#include "core/cos_link.h"
#include "core/feedback_transport.h"
#include "sim/link.h"

using namespace silence;

int main() {
  std::printf("=== CoS subcarrier-selection feedback on the ACK ===\n");
  // WiFi is TDD on a single frequency, so uplink and downlink fading are
  // reciprocal: the ACK travels through the same channel realization the
  // data came through. That is what makes the feedback subcarriers —
  // chosen to be detectable on the downlink — detectable for the ACK's
  // silence patterns too.
  LinkConfig link_config;
  link_config.snr_db = 17.0;
  link_config.snr_is_measured = true;
  link_config.channel_seed = 23;
  Link downlink(link_config);
  Link& uplink = downlink;

  Rng rng(31);
  std::vector<int> control_subcarriers = {10, 11, 12, 13, 14, 15, 16, 17};

  for (int p = 0; p < 6; ++p) {
    // --- downlink data packet with a control message ---
    const Bytes psdu = make_test_psdu(1024, rng);
    const Bits control = rng.bits(48);
    CosTxConfig tx_config;
    tx_config.mcs = McsId::for_snr(downlink.measured_snr_db());
    tx_config.control_subcarriers = control_subcarriers;
    const CosTxPacket data_tx = cos_transmit(psdu, control, tx_config);
    const CxVec data_rx_samples = downlink.send(data_tx.samples);

    CosRxConfig rx_config;
    rx_config.control_subcarriers = control_subcarriers;
    rx_config.min_feedback_subcarriers = 8;
    const CosRxPacket data_rx = cos_receive(data_rx_samples, rx_config);
    if (!data_rx.data_ok) {
      std::printf("pkt %d: data lost; sender falls to lowest control rate\n",
                  p);
      continue;
    }

    // --- ACK carrying the selection vector V as two complement-coded
    //     trailer symbols (immune to reverse-link fades) ---
    const std::vector<int>& selection = data_rx.next_control_subcarriers;
    CosTxConfig ack_config;
    ack_config.mcs = McsId::for_rate(6);  // ACKs use the basic rate
    const Bytes ack_psdu = make_test_psdu(14, rng);
    CosTxPacket ack = cos_transmit(ack_psdu, {}, ack_config);
    append_selection_feedback(ack.samples, selection,
                              ack.frame.num_symbols() + 1);

    const CxVec ack_rx_samples = uplink.send(ack.samples);
    const FrontEndResult ack_fe = receiver_front_end(ack_rx_samples);
    if (!ack_fe.signal) {
      std::printf("pkt %d: ACK lost\n", p);
      continue;
    }
    const auto received_selection = decode_selection_feedback(ack_fe);

    const bool match =
        received_selection.has_value() && *received_selection == selection;
    std::printf("pkt %d: data+control ok; ACK feedback [%zu subcarriers] %s\n",
                p, selection.size(),
                match ? "delivered intact" : "CORRUPTED");
    if (match) control_subcarriers = *received_selection;

    downlink.advance(2e-3);
    uplink.advance(2e-3);
  }

  std::printf("\nfinal control subcarriers:");
  for (int sc : control_subcarriers) std::printf(" %d", sc);
  std::printf("\n(converged onto the downlink's weak subcarriers — the\n"
              "positions fading was going to corrupt anyway)\n");
  return 0;
}
