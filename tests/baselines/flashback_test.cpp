#include "baselines/flashback.h"

#include <gtest/gtest.h>

#include "channel/fading.h"
#include "common/crc32.h"
#include "common/rng.h"

namespace silence {
namespace {

FlashbackConfig config_for(int mbps) {
  FlashbackConfig config;
  config.mcs = McsId::for_rate(mbps);
  return config;
}

Bytes test_psdu(Rng& rng, std::size_t total) {
  Bytes psdu = rng.bytes(total - 4);
  append_fcs(psdu);
  return psdu;
}

TEST(Flashback, SubcarrierMapProperties) {
  for (int bits = 1; bits <= 5; ++bits) {
    const auto subcarriers = flashback_subcarriers(bits);
    EXPECT_EQ(subcarriers.size(), std::size_t{1} << bits);
    for (std::size_t i = 1; i < subcarriers.size(); ++i) {
      EXPECT_GT(subcarriers[i], subcarriers[i - 1]);
      EXPECT_LT(subcarriers[i], kNumDataSubcarriers);
    }
  }
}

TEST(Flashback, ConfigValidation) {
  Rng rng(1);
  const Bytes psdu = test_psdu(rng, 100);
  FlashbackConfig config;  // mcs null
  EXPECT_THROW(flashback_transmit(psdu, {}, config), std::invalid_argument);
  config = config_for(24);
  config.bits_per_flash = 6;
  EXPECT_THROW(flashback_transmit(psdu, {}, config), std::invalid_argument);
  config = config_for(24);
  config.flash_power = 0.5;
  EXPECT_THROW(flashback_transmit(psdu, {}, config), std::invalid_argument);
}

TEST(Flashback, CleanChannelRoundTrip) {
  Rng rng(2);
  const Bytes psdu = test_psdu(rng, 600);
  const FlashbackConfig config = config_for(24);
  const Bits message = rng.bits(80);
  const FlashbackTxPacket tx = flashback_transmit(psdu, message, config);
  EXPECT_EQ(tx.bits_sent, 80u);
  EXPECT_EQ(tx.flash_count, 16u);  // 80 bits / 5 per flash

  const FlashbackRxPacket rx = flashback_receive(tx.samples, config);
  ASSERT_TRUE(rx.data_ok);
  EXPECT_EQ(rx.psdu, psdu);
  ASSERT_GE(rx.message_bits.size(), tx.bits_sent);
  for (std::size_t i = 0; i < tx.bits_sent; ++i) {
    EXPECT_EQ(rx.message_bits[i], message[i]) << "bit " << i;
  }
}

TEST(Flashback, FlashEnergyAccounting) {
  Rng rng(3);
  const Bytes psdu = test_psdu(rng, 600);
  FlashbackConfig config = config_for(24);
  config.flash_power = 64.0;
  const Bits message = rng.bits(50);
  const FlashbackTxPacket tx = flashback_transmit(psdu, message, config);
  EXPECT_EQ(tx.flash_count, 10u);
  EXPECT_DOUBLE_EQ(tx.flash_energy, 10 * 64.0);
}

TEST(Flashback, SurvivesNoisyFadedChannel) {
  int data_ok = 0, message_ok = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    Rng rng(static_cast<std::uint64_t>(t) + 50);
    MultipathProfile profile;
    FadingChannel channel(profile, static_cast<std::uint64_t>(t) + 1);
    const double nv = noise_var_for_measured_snr(channel, 16.0);
    const Bytes psdu = test_psdu(rng, 1024);
    const FlashbackConfig config = config_for(24);
    const Bits message = rng.bits(100);
    const FlashbackTxPacket tx = flashback_transmit(psdu, message, config);
    const CxVec received = channel.transmit(tx.samples, nv, rng);
    const FlashbackRxPacket rx = flashback_receive(received, config);
    data_ok += rx.data_ok;
    bool prefix = rx.message_bits.size() >= tx.bits_sent;
    for (std::size_t i = 0; prefix && i < tx.bits_sent; ++i) {
      prefix = rx.message_bits[i] == message[i];
    }
    message_ok += prefix;
  }
  EXPECT_GE(data_ok, trials - 3);
  EXPECT_GE(message_ok, trials * 6 / 10);
}

TEST(Flashback, MessageTruncatedByPacketLength) {
  Rng rng(4);
  const Bytes psdu = test_psdu(rng, 100);  // short packet, few symbols
  const FlashbackConfig config = config_for(24);
  const Bits message = rng.bits(1000);
  const FlashbackTxPacket tx = flashback_transmit(psdu, message, config);
  EXPECT_LT(tx.bits_sent, 1000u);
  EXPECT_EQ(tx.bits_sent % 5, 0u);
}

TEST(Flashback, StrideLimitsFlashCount) {
  Rng rng(5);
  const Bytes psdu = test_psdu(rng, 600);
  FlashbackConfig config = config_for(24);
  config.symbol_stride = 4;
  const Bits message = rng.bits(500);
  const FlashbackTxPacket tx = flashback_transmit(psdu, message, config);
  const int symbols = tx.frame.num_symbols();
  EXPECT_LE(tx.flash_count,
            static_cast<std::size_t>((symbols + 3) / 4));
}

}  // namespace
}  // namespace silence
