// merge_metrics_json: the reduction that folds per-shard / per-sweep
// .metrics.json sidecars into one document (fabric supervisor merges its
// workers' sidecars; silence_campaign merges across sweeps). Counters
// sum, gauges take the max, histograms merge bucket-wise with
// mean/p50/p95/p99 recomputed from the combined buckets.
#include "runner/sinks.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"
#include "runner/json.h"

namespace silence::runner {
namespace {

Json doc_with_counters(std::vector<std::pair<std::string, std::int64_t>> cs,
                       std::vector<std::pair<std::string, std::int64_t>> gs =
                           {}) {
  Json doc = Json::object();
  Json counters = Json::object();
  for (auto& [name, value] : cs) counters.set(name, value);
  doc.set("counters", std::move(counters));
  if (!gs.empty()) {
    Json gauges = Json::object();
    for (auto& [name, value] : gs) gauges.set(name, value);
    doc.set("gauges", std::move(gauges));
  }
  return doc;
}

TEST(MetricsMerge, CountersSumAcrossDocs) {
  const Json merged = merge_metrics_json(
      {doc_with_counters({{"runner.trials", 40}, {"phy.tx", 7}}),
       doc_with_counters({{"runner.trials", 24}}),
       doc_with_counters({{"net.drops", 1}})});
  const Json& counters = *merged.find("counters");
  EXPECT_EQ(counters.find("runner.trials")->as_int(), 64);
  EXPECT_EQ(counters.find("phy.tx")->as_int(), 7);
  EXPECT_EQ(counters.find("net.drops")->as_int(), 1);
}

TEST(MetricsMerge, GaugesTakeTheMax) {
  // A gauge like runner.threads is a level, not a flow: across shards the
  // campaign-level answer is the peak, not a sum.
  const Json merged = merge_metrics_json(
      {doc_with_counters({}, {{"runner.threads", 4}, {"queue.depth", -2}}),
       doc_with_counters({}, {{"runner.threads", 2}, {"queue.depth", -5}})});
  const Json& gauges = *merged.find("gauges");
  EXPECT_EQ(gauges.find("runner.threads")->as_int(), 4);
  EXPECT_EQ(gauges.find("queue.depth")->as_int(), -2);
}

TEST(MetricsMerge, MissingSectionsAndEmptyInputTolerated) {
  // Sidecars from an SILENCE_OBS=OFF worker may lack whole sections.
  const Json merged =
      merge_metrics_json({doc_with_counters({{"a", 1}}), Json::object()});
  EXPECT_EQ(merged.find("counters")->find("a")->as_int(), 1);
  EXPECT_EQ(merged.find("gauges")->size(), 0u);
  EXPECT_EQ(merged.find("histograms")->size(), 0u);

  const Json empty = merge_metrics_json({});
  EXPECT_EQ(empty.find("counters")->size(), 0u);
}

obs::HistogramSnapshot make_hist(const std::string& name,
                                 std::vector<std::pair<std::size_t,
                                                       std::uint64_t>> fills,
                                 std::uint64_t min, std::uint64_t max,
                                 std::uint64_t sum) {
  obs::HistogramSnapshot h;
  h.name = name;
  h.buckets.assign(obs::kHistogramBuckets, 0);
  for (auto& [bucket, n] : fills) {
    h.buckets[bucket] += n;
    h.count += n;
  }
  h.min = min;
  h.max = max;
  h.sum = sum;
  return h;
}

TEST(MetricsMerge, HistogramMergeIsByteIdenticalToCombinedSnapshot) {
  // Two shard sidecars vs the snapshot a single process covering both
  // shards would have produced: merging the docs must reproduce the
  // combined document byte-for-byte — including mean/p50/p95/p99, which
  // metrics_json recomputes from the merged buckets.
  obs::MetricsSnapshot a;
  a.counters.push_back({"runner.trials", 20});
  a.histograms.push_back(
      make_hist("runner.trial.ns", {{3, 10}, {5, 10}}, 9, 40, 400));
  obs::MetricsSnapshot b;
  b.counters.push_back({"runner.trials", 20});
  // Trailing buckets beyond index 4 are zero here, so metrics_json trims
  // b's bucket array shorter than a's — the merge must still line the
  // arrays up by position.
  b.histograms.push_back(make_hist("runner.trial.ns", {{4, 20}}, 16, 31, 500));

  obs::MetricsSnapshot combined;
  combined.counters.push_back({"runner.trials", 40});
  combined.histograms.push_back(make_hist(
      "runner.trial.ns", {{3, 10}, {4, 20}, {5, 10}}, 9, 40, 900));

  const Json merged = merge_metrics_json({metrics_json(a), metrics_json(b)});
  EXPECT_EQ(merged.dump_compact(), metrics_json(combined).dump_compact());
}

TEST(MetricsMerge, EmptyHistogramEntriesAreSkipped) {
  // A worker whose span never fired writes count=0; it must not clobber
  // the min/max of docs that did observe samples.
  obs::MetricsSnapshot a;
  a.histograms.push_back(make_hist("h.ns", {{2, 4}}, 5, 7, 24));
  obs::MetricsSnapshot b;
  b.histograms.push_back(make_hist("h.ns", {}, 0, 0, 0));

  const Json merged = merge_metrics_json({metrics_json(a), metrics_json(b)});
  const Json& h = *merged.find("histograms")->find("h.ns");
  EXPECT_EQ(h.find("count")->as_int(), 4);
  EXPECT_EQ(h.find("min")->as_int(), 5);
  EXPECT_EQ(h.find("max")->as_int(), 7);
}

TEST(MetricsMerge, EmptySidecarMergeIsIdentity) {
  // Merging a real sidecar with a fully empty document (an OFF-build
  // worker that recorded nothing at all) must reproduce the real one
  // byte-for-byte — the fabric pads its merge list with the
  // supervisor's own (possibly empty) snapshot.
  obs::MetricsSnapshot a;
  a.counters.push_back({"runner.trials", 12});
  a.gauges.push_back({"runner.threads", 4});
  a.histograms.push_back(make_hist("h.ns", {{1, 3}, {6, 9}}, 2, 100, 640));
  const Json doc = metrics_json(a);
  const Json empty = metrics_json(obs::MetricsSnapshot{});
  EXPECT_EQ(merge_metrics_json({doc, empty}).dump_compact(),
            doc.dump_compact());
  EXPECT_EQ(merge_metrics_json({empty, doc}).dump_compact(),
            doc.dump_compact());
}

TEST(MetricsMerge, SingletonNegativeGaugeSurvives) {
  // max() over one all-negative gauge must keep its value, not clamp at
  // an implicit zero.
  const Json merged =
      merge_metrics_json({doc_with_counters({}, {{"queue.headroom", -17}})});
  EXPECT_EQ(merged.find("gauges")->find("queue.headroom")->as_int(), -17);
}

TEST(MetricsMerge, RejectsHistogramWithTooManyBuckets) {
  // A sidecar claiming more buckets than the fixed layout holds is
  // corrupt; merging it positionally would silently misbin, so it must
  // throw instead.
  Json entry = Json::object();
  entry.set("count", 4);
  entry.set("sum", 10);
  entry.set("min", 1);
  entry.set("max", 4);
  Json buckets = Json::array();
  for (std::size_t b = 0; b < obs::kHistogramBuckets + 1; ++b) {
    buckets.push_back(1);
  }
  entry.set("buckets", std::move(buckets));
  Json histograms = Json::object();
  histograms.set("h.ns", std::move(entry));
  Json doc = Json::object();
  doc.set("histograms", std::move(histograms));
  EXPECT_THROW(merge_metrics_json({doc}), std::runtime_error);
}

TEST(MetricsMerge, MalformedDocsAreRejected) {
  Json bad_section = Json::object();
  bad_section.set("counters", Json::array());
  EXPECT_THROW(merge_metrics_json({bad_section}), std::runtime_error);

  Json bad_hist = Json::object();
  Json histograms = Json::object();
  Json entry = Json::object();
  entry.set("count", 3);  // missing sum/min/max/buckets
  histograms.set("h.ns", std::move(entry));
  bad_hist.set("histograms", std::move(histograms));
  EXPECT_THROW(merge_metrics_json({bad_hist}), std::runtime_error);
}

}  // namespace
}  // namespace silence::runner
