#include "runner/json.h"

#include <gtest/gtest.h>

#include <limits>

namespace silence::runner {
namespace {

TEST(Json, ScalarsSerialize) {
  EXPECT_EQ(Json(nullptr).dump_compact(), "null");
  EXPECT_EQ(Json(true).dump_compact(), "true");
  EXPECT_EQ(Json(false).dump_compact(), "false");
  EXPECT_EQ(Json(42).dump_compact(), "42");
  EXPECT_EQ(Json(-7).dump_compact(), "-7");
  EXPECT_EQ(Json("hi").dump_compact(), "\"hi\"");
}

TEST(Json, DoublesUseShortestRoundTrip) {
  EXPECT_EQ(Json(0.5).dump_compact(), "0.5");
  EXPECT_EQ(Json(0.1).dump_compact(), "0.1");
  EXPECT_EQ(Json(1.0 / 3.0).dump_compact(), "0.3333333333333333");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump_compact(),
            "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump_compact(),
            "null");
}

TEST(Json, StringsEscape) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump_compact(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump_compact(), "\"\\u0001\"");
}

TEST(Json, ObjectsKeepInsertionOrder) {
  Json obj = Json::object();
  obj.set("zebra", 1);
  obj.set("apple", 2);
  obj.set("mango", 3);
  EXPECT_EQ(obj.dump_compact(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
  // set() on an existing key replaces in place, preserving position.
  obj.set("apple", 9);
  EXPECT_EQ(obj.dump_compact(), "{\"zebra\":1,\"apple\":9,\"mango\":3}");
}

TEST(Json, FindLocatesKeys) {
  Json obj = Json::object();
  obj.set("k", 5);
  ASSERT_NE(obj.find("k"), nullptr);
  EXPECT_EQ(obj.find("k")->dump_compact(), "5");
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(Json, NestedPrettyPrintIsStable) {
  Json root = Json::object();
  root.set("name", "sweep");
  Json& values = root.set("values", Json::array());
  values.push_back(1);
  values.push_back(2.5);
  root.set("empty_list", Json::array());
  root.set("empty_obj", Json::object());
  EXPECT_EQ(root.dump(),
            "{\n"
            "  \"name\": \"sweep\",\n"
            "  \"values\": [\n"
            "    1,\n"
            "    2.5\n"
            "  ],\n"
            "  \"empty_list\": [],\n"
            "  \"empty_obj\": {}\n"
            "}\n");
}

TEST(Json, SizeReportsContainers) {
  Json arr = Json::array({1, 2, 3});
  EXPECT_EQ(arr.size(), 3u);
  Json obj = Json::object();
  obj.set("a", 1);
  EXPECT_EQ(obj.size(), 1u);
  EXPECT_EQ(Json(5).size(), 0u);
}

}  // namespace
}  // namespace silence::runner
