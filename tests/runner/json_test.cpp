#include "runner/json.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace silence::runner {
namespace {

TEST(Json, ScalarsSerialize) {
  EXPECT_EQ(Json(nullptr).dump_compact(), "null");
  EXPECT_EQ(Json(true).dump_compact(), "true");
  EXPECT_EQ(Json(false).dump_compact(), "false");
  EXPECT_EQ(Json(42).dump_compact(), "42");
  EXPECT_EQ(Json(-7).dump_compact(), "-7");
  EXPECT_EQ(Json("hi").dump_compact(), "\"hi\"");
}

TEST(Json, DoublesUseShortestRoundTrip) {
  EXPECT_EQ(Json(0.5).dump_compact(), "0.5");
  EXPECT_EQ(Json(0.1).dump_compact(), "0.1");
  EXPECT_EQ(Json(1.0 / 3.0).dump_compact(), "0.3333333333333333");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump_compact(),
            "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump_compact(),
            "null");
}

TEST(Json, StringsEscape) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump_compact(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump_compact(), "\"\\u0001\"");
}

TEST(Json, ObjectsKeepInsertionOrder) {
  Json obj = Json::object();
  obj.set("zebra", 1);
  obj.set("apple", 2);
  obj.set("mango", 3);
  EXPECT_EQ(obj.dump_compact(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
  // set() on an existing key replaces in place, preserving position.
  obj.set("apple", 9);
  EXPECT_EQ(obj.dump_compact(), "{\"zebra\":1,\"apple\":9,\"mango\":3}");
}

TEST(Json, FindLocatesKeys) {
  Json obj = Json::object();
  obj.set("k", 5);
  ASSERT_NE(obj.find("k"), nullptr);
  EXPECT_EQ(obj.find("k")->dump_compact(), "5");
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(Json, NestedPrettyPrintIsStable) {
  Json root = Json::object();
  root.set("name", "sweep");
  Json& values = root.set("values", Json::array());
  values.push_back(1);
  values.push_back(2.5);
  root.set("empty_list", Json::array());
  root.set("empty_obj", Json::object());
  EXPECT_EQ(root.dump(),
            "{\n"
            "  \"name\": \"sweep\",\n"
            "  \"values\": [\n"
            "    1,\n"
            "    2.5\n"
            "  ],\n"
            "  \"empty_list\": [],\n"
            "  \"empty_obj\": {}\n"
            "}\n");
}

TEST(Json, SizeReportsContainers) {
  Json arr = Json::array({1, 2, 3});
  EXPECT_EQ(arr.size(), 3u);
  Json obj = Json::object();
  obj.set("a", 1);
  EXPECT_EQ(obj.size(), 1u);
  EXPECT_EQ(Json(5).size(), 0u);
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("-7").as_int(), -7);
  EXPECT_EQ(Json::parse("0.5").as_double(), 0.5);
  EXPECT_EQ(Json::parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(Json::parse("  [1, 2]  ").as_array().size(), 2u);
}

TEST(JsonParse, IntegersStayIntegersDoublesStayDoubles) {
  EXPECT_TRUE(Json::parse("9007199254740993").is_int());  // > 2^53
  EXPECT_EQ(Json::parse("9007199254740993").as_int(), 9007199254740993LL);
  EXPECT_FALSE(Json::parse("1.0").is_int());
  EXPECT_TRUE(Json::parse("1.0").is_number());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");  // é
  // Surrogate pair: U+1F600 as 4-byte UTF-8.
  EXPECT_EQ(Json::parse(R"("😀")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RoundTripsDumpExactly) {
  Json root = Json::object();
  root.set("name", "sweep");
  root.set("rate", 0.1);
  root.set("third", 1.0 / 3.0);
  root.set("count", std::int64_t{1} << 62);
  root.set("none", nullptr);
  Json& nested = root.set("nested", Json::array());
  nested.push_back(Json::array({1, 2.5, "x"}));
  Json inner = Json::object();
  inner.set("flag", true);
  nested.push_back(std::move(inner));

  // dump -> parse -> dump must be byte-identical (shortest-round-trip
  // doubles parse back to the same bit pattern). This is what makes
  // flight-artifact comparison via dump_compact() sound.
  const Json compact = Json::parse(root.dump_compact());
  EXPECT_EQ(compact.dump_compact(), root.dump_compact());
  const Json pretty = Json::parse(root.dump());
  EXPECT_EQ(pretty.dump(), root.dump());
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"bad \\x escape\""), std::runtime_error);
  EXPECT_THROW(Json::parse("nul"), std::runtime_error);
  EXPECT_THROW(Json::parse("01"), std::runtime_error);
  EXPECT_THROW(Json::parse("1 trailing"), std::runtime_error);
  EXPECT_THROW(Json::parse(R"("\ud83d")"), std::runtime_error);  // lone hi
}

TEST(JsonParse, RejectsDuplicateObjectKeys) {
  // Every producer in this repo writes unique keys, so a duplicate can
  // only mean a corrupt artifact; the parser must refuse rather than
  // silently pick a winner.
  EXPECT_THROW(Json::parse(R"({"a": 1, "a": 2})"), std::runtime_error);
  EXPECT_THROW(Json::parse(R"({"a": 1, "b": 2, "a": 3})"),
               std::runtime_error);
  // Same key at different nesting levels is fine.
  const Json nested = Json::parse(R"({"a": {"a": 1}, "b": [{"a": 2}]})");
  EXPECT_EQ(nested.find("a")->find("a")->as_int(), 1);
  // Escapes are resolved before the uniqueness check: "a\u0062" IS "ab".
  EXPECT_THROW(Json::parse(R"({"a\u0062": 1, "ab": 2})"),
               std::runtime_error);
}

TEST(JsonParse, LargeSeedsRoundTripAsInt64BitPattern) {
  // The fabric ships u64 base seeds as their int64 bit-cast; the round
  // trip must reproduce every bit, including seeds above 2^63.
  for (const std::uint64_t seed :
       {std::uint64_t{0}, std::uint64_t{1} << 53, ~std::uint64_t{0},
        std::uint64_t{0x9e3779b97f4a7c15ull}}) {
    Json root = Json::object();
    root.set("seed", static_cast<std::int64_t>(seed));
    const Json parsed = Json::parse(root.dump_compact());
    EXPECT_EQ(static_cast<std::uint64_t>(parsed.find("seed")->as_int()),
              seed);
  }
  // int64 extremes survive verbatim.
  EXPECT_EQ(Json::parse("9223372036854775807").as_int(),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(Json::parse("-9223372036854775808").as_int(),
            std::numeric_limits<std::int64_t>::min());
}

TEST(JsonParse, IntegersBeyondInt64FallThroughToDouble) {
  const Json big = Json::parse("18446744073709551616");  // 2^64
  EXPECT_FALSE(big.is_int());
  EXPECT_TRUE(big.is_number());
  EXPECT_EQ(big.as_double(), 18446744073709551616.0);
}

TEST(JsonParse, RejectsRunawayNesting) {
  const std::string deep(400, '[');
  EXPECT_THROW(Json::parse(deep), std::runtime_error);
}

TEST(JsonParse, TypedAccessorsThrowOnMismatch) {
  const Json num(42);
  EXPECT_THROW(num.as_string(), std::runtime_error);
  EXPECT_THROW(num.as_array(), std::runtime_error);
  EXPECT_THROW(num.as_object(), std::runtime_error);
  EXPECT_THROW(Json("x").as_int(), std::runtime_error);
  EXPECT_THROW(Json(nullptr).as_bool(), std::runtime_error);
  // as_double accepts both numeric representations.
  EXPECT_EQ(Json(2).as_double(), 2.0);
  EXPECT_EQ(Json(2.5).as_double(), 2.5);
}

}  // namespace
}  // namespace silence::runner
