#include "runner/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace silence::runner {
namespace {

TEST(Executor, ResolveThreadsHonorsRequest) {
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_GE(resolve_threads(0), 1);   // hardware concurrency, at least 1
  EXPECT_GE(resolve_threads(-5), 1);
}

TEST(Executor, VisitsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}}) {
      std::vector<std::atomic<int>> visits(103);
      parallel_for(visits.size(), threads, chunk,
                   [&](std::size_t i) { visits[i].fetch_add(1); });
      for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
    }
  }
}

TEST(Executor, EmptyRangeIsNoOp) {
  parallel_for(0, 4, 1, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(Executor, ZeroChunkIsTreatedAsOne) {
  std::atomic<int> calls{0};
  parallel_for(5, 2, 0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 5);
}

TEST(Executor, MoreThreadsThanWorkStillCompletes) {
  std::atomic<int> calls{0};
  parallel_for(3, 16, 1, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 3);
}

TEST(Executor, RethrowsWorkerException) {
  const auto boom = [](std::size_t i) {
    if (i == 17) throw std::runtime_error("trial 17 failed");
  };
  EXPECT_THROW(parallel_for(64, 4, 4, boom), std::runtime_error);
  EXPECT_THROW(parallel_for(64, 1, 1, boom), std::runtime_error);
}

TEST(Executor, RethrownExceptionPreservesTypeAndMessage) {
  // The worker's exception must surface on the caller thread with its
  // original type and payload, not be flattened into a generic failure.
  try {
    parallel_for(64, 4, 4, [](std::size_t i) {
      if (i == 17) throw std::invalid_argument("trial 17 failed");
    });
    FAIL() << "parallel_for must rethrow";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "trial 17 failed");
  }
}

TEST(Executor, FirstExceptionWinsWhenSeveralWorkersThrow) {
  // Every thrown message must be one of the injected ones (never mixed
  // or corrupted), and exactly one surfaces per call.
  try {
    parallel_for(64, 8, 1, [](std::size_t i) {
      throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "parallel_for must rethrow";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.rfind("boom ", 0), 0u) << what;
  }
}

TEST(Executor, WorkersAreJoinedBeforeRethrow) {
  // By the time parallel_for returns (by throwing), every worker must
  // have left the body: the balance of enter/leave counts equals exactly
  // the one call that threw. A still-running worker would race these
  // (non-atomic) reads under TSan and break the balance here.
  std::atomic<int> in_flight{0};
  EXPECT_THROW(
      parallel_for(256, 8, 1,
                   [&](std::size_t i) {
                     in_flight.fetch_add(1);
                     if (i == 3) throw std::runtime_error("die");
                     in_flight.fetch_sub(1);
                   }),
      std::runtime_error);
  EXPECT_EQ(in_flight.load(), 1);  // only the throwing call never decremented
}

TEST(Executor, IndicesBeforeFailurePointAllRan) {
  // A failing trial must not silently skip earlier chunks: everything
  // the cursor handed out before the failure still executes or is
  // abandoned cleanly, never double-executed.
  std::vector<std::atomic<int>> visits(64);
  EXPECT_THROW(parallel_for(visits.size(), 4, 4,
                            [&](std::size_t i) {
                              visits[i].fetch_add(1);
                              if (i == 17) throw std::runtime_error("x");
                            }),
               std::runtime_error);
  for (const auto& v : visits) EXPECT_LE(v.load(), 1);
  EXPECT_EQ(visits[17].load(), 1);
}

}  // namespace
}  // namespace silence::runner
