#include "runner/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace silence::runner {
namespace {

TEST(Executor, ResolveThreadsHonorsRequest) {
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_GE(resolve_threads(0), 1);   // hardware concurrency, at least 1
  EXPECT_GE(resolve_threads(-5), 1);
}

TEST(Executor, VisitsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}}) {
      std::vector<std::atomic<int>> visits(103);
      parallel_for(visits.size(), threads, chunk,
                   [&](std::size_t i) { visits[i].fetch_add(1); });
      for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
    }
  }
}

TEST(Executor, EmptyRangeIsNoOp) {
  parallel_for(0, 4, 1, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(Executor, ZeroChunkIsTreatedAsOne) {
  std::atomic<int> calls{0};
  parallel_for(5, 2, 0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 5);
}

TEST(Executor, MoreThreadsThanWorkStillCompletes) {
  std::atomic<int> calls{0};
  parallel_for(3, 16, 1, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 3);
}

TEST(Executor, RethrowsWorkerException) {
  const auto boom = [](std::size_t i) {
    if (i == 17) throw std::runtime_error("trial 17 failed");
  };
  EXPECT_THROW(parallel_for(64, 4, 4, boom), std::runtime_error);
  EXPECT_THROW(parallel_for(64, 1, 1, boom), std::runtime_error);
}

}  // namespace
}  // namespace silence::runner
