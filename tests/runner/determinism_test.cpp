// Regression test for the runner's core guarantee: the same SweepGrid
// and base seed produce bit-identical per-point results and JSON output
// at any thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "runner/sinks.h"
#include "runner/sweep.h"
#include "sim/stats.h"

namespace silence::runner {
namespace {

struct TrialResult {
  ErrorStats stats;
  double metric_sum = 0.0;  // order-sensitive floating-point reduction

  TrialResult& operator+=(const TrialResult& o) {
    stats += o.stats;
    metric_sum += o.metric_sum;
    return *this;
  }
};

struct Outcome {
  std::vector<TrialResult> points;
  std::string json;
};

// A cheap stochastic "experiment" driven entirely by the trial seed.
Outcome run_at(int threads) {
  SweepGrid<double> grid;
  grid.points = {0.1, 0.25, 0.5, 0.75};  // per-point error probability
  grid.trials = 40;
  grid.base_seed = 2026;

  const auto outcome = run_sweep(
      grid, {.threads = threads, .chunk = 3},
      [](const double& p_error, const TrialContext& ctx) {
        Rng rng(ctx.seed);
        TrialResult result;
        for (int bit = 0; bit < 64; ++bit) {
          ++result.stats.bits;
          if (rng.uniform() < p_error) ++result.stats.bit_errors;
        }
        ++result.stats.packets;
        if (result.stats.bit_errors == 0) ++result.stats.packets_ok;
        // An irrational-valued metric: any change in merge order would
        // perturb the sum's low bits and show up in the JSON diff.
        result.metric_sum = std::sqrt(static_cast<double>(ctx.seed % 1000));
        return result;
      });

  SweepReport report;
  report.bench = "determinism_probe";
  report.title = "probe";
  report.description = "runner determinism regression grid";
  report.grid.set("trials", static_cast<std::int64_t>(grid.trials));
  report.grid.set("base_seed", static_cast<std::int64_t>(grid.base_seed));
  report.columns = {{"p_error", 10, 2}, {"ber", 12, -1}, {"metric", 18, -1}};
  for (std::size_t i = 0; i < grid.points.size(); ++i) {
    const TrialResult& r = outcome.point_results[i];
    report.add_row({grid.points[i], r.stats.ber(), r.metric_sum});
  }

  Outcome out;
  out.points = outcome.point_results;
  out.json = JsonSink::payload(report).dump();
  return out;
}

TEST(RunnerDeterminism, IdenticalAcrossThreadCounts) {
  const Outcome serial = run_at(1);
  ASSERT_EQ(serial.points.size(), 4u);
  // Sanity: the probe actually exercised the counters.
  EXPECT_GT(serial.points[3].stats.bit_errors,
            serial.points[0].stats.bit_errors);
  EXPECT_EQ(serial.points[0].stats.bits, 40u * 64u);

  for (const int threads : {2, 8}) {
    const Outcome parallel = run_at(threads);
    ASSERT_EQ(parallel.points.size(), serial.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "threads=" << threads
                                      << " point=" << i);
      EXPECT_EQ(parallel.points[i].stats.bits, serial.points[i].stats.bits);
      EXPECT_EQ(parallel.points[i].stats.bit_errors,
                serial.points[i].stats.bit_errors);
      EXPECT_EQ(parallel.points[i].stats.packets,
                serial.points[i].stats.packets);
      EXPECT_EQ(parallel.points[i].stats.packets_ok,
                serial.points[i].stats.packets_ok);
      // Bit-identical floating-point reduction, not just approximate.
      EXPECT_EQ(parallel.points[i].metric_sum, serial.points[i].metric_sum);
    }
    EXPECT_EQ(parallel.json, serial.json);
  }
}

TEST(RunnerDeterminism, BaseSeedChangesResults) {
  SweepGrid<int> grid;
  grid.points = {0};
  grid.trials = 8;
  const auto trial = [](const int&, const TrialContext& ctx) {
    ErrorStats stats;
    Rng rng(ctx.seed);
    stats.bits = 1000;
    stats.bit_errors = static_cast<std::size_t>(rng.uniform() * 1000);
    return stats;
  };
  grid.base_seed = 1;
  const auto a = run_sweep(grid, {.threads = 1}, trial);
  grid.base_seed = 2;
  const auto b = run_sweep(grid, {.threads = 1}, trial);
  EXPECT_NE(a.point_results[0].bit_errors, b.point_results[0].bit_errors);
}

TEST(RunnerDeterminism, OutcomeRecordsRunShape) {
  SweepGrid<int> grid;
  grid.points = {1, 2, 3};
  grid.trials = 5;
  const auto outcome = run_sweep(
      grid, {.threads = 2},
      [](const int& v, const TrialContext&) {
        ErrorStats stats;
        stats.packets = static_cast<std::size_t>(v);
        return stats;
      });
  EXPECT_EQ(outcome.threads, 2);
  EXPECT_EQ(outcome.trials_run, 15u);
  ASSERT_EQ(outcome.point_results.size(), 3u);
  // Each point merged its 5 trials.
  EXPECT_EQ(outcome.point_results[0].packets, 5u);
  EXPECT_EQ(outcome.point_results[2].packets, 15u);
  EXPECT_GE(outcome.wall_seconds, 0.0);
}

}  // namespace
}  // namespace silence::runner
