#include "runner/seed.h"

#include <gtest/gtest.h>

#include <set>

namespace silence::runner {
namespace {

TEST(Seed, Mix64Avalanches) {
  // Adjacent inputs must map to thoroughly different outputs.
  const std::uint64_t a = mix64(1);
  const std::uint64_t b = mix64(2);
  EXPECT_NE(a, b);
  int differing_bits = 0;
  for (std::uint64_t diff = a ^ b; diff; diff >>= 1) {
    differing_bits += static_cast<int>(diff & 1);
  }
  EXPECT_GE(differing_bits, 16);
}

TEST(Seed, TrialSeedIsPureFunctionOfCoordinates) {
  EXPECT_EQ(trial_seed(1, 2, 3), trial_seed(1, 2, 3));
  EXPECT_NE(trial_seed(1, 2, 3), trial_seed(1, 2, 4));
  EXPECT_NE(trial_seed(1, 2, 3), trial_seed(1, 3, 3));
  EXPECT_NE(trial_seed(1, 2, 3), trial_seed(2, 2, 3));
}

TEST(Seed, NoCollisionsAcrossSmallGrid) {
  // A realistic sweep's worth of coordinates must yield distinct seeds.
  std::set<std::uint64_t> seen;
  for (std::uint64_t point = 0; point < 64; ++point) {
    for (std::uint64_t trial = 0; trial < 256; ++trial) {
      seen.insert(trial_seed(42, point, trial));
    }
  }
  EXPECT_EQ(seen.size(), 64u * 256u);
}

TEST(Seed, SeedsAreNeverZero) {
  for (std::uint64_t t = 0; t < 1000; ++t) {
    EXPECT_NE(trial_seed(0, 0, t), 0u);
    EXPECT_NE(substream_seed(t, 0), 0u);
  }
}

TEST(Seed, SubstreamsDiffer) {
  const std::uint64_t seed = trial_seed(7, 1, 1);
  EXPECT_NE(substream_seed(seed, 0), substream_seed(seed, 1));
  EXPECT_NE(substream_seed(seed, 0), seed);
}

}  // namespace
}  // namespace silence::runner
