#include "common/crc32.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace silence {
namespace {

TEST(Crc32, KnownVectorCheck) {
  // zlib's crc32("123456789") == 0xCBF43926 — the standard check value.
  const std::vector<std::uint8_t> data = {'1', '2', '3', '4', '5',
                                          '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyInput) {
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(Crc32, SingleZeroByte) {
  const std::vector<std::uint8_t> data = {0x00};
  EXPECT_EQ(crc32(data), 0xD202EF8Du);
}

TEST(Crc32, AppendAndCheckFcs) {
  Rng rng(9);
  for (int trial = 0; trial < 25; ++trial) {
    auto frame = rng.bytes(10 + static_cast<std::size_t>(trial) * 13);
    append_fcs(frame);
    EXPECT_TRUE(check_fcs(frame));
  }
}

TEST(Crc32, CheckFcsDetectsSingleBitFlip) {
  Rng rng(11);
  auto frame = rng.bytes(64);
  append_fcs(frame);
  for (std::size_t byte = 0; byte < frame.size(); byte += 5) {
    auto corrupted = frame;
    corrupted[byte] ^= 0x10;
    EXPECT_FALSE(check_fcs(corrupted)) << "flip in byte " << byte;
  }
}

TEST(Crc32, CheckFcsRejectsShortFrames) {
  const std::vector<std::uint8_t> tiny = {1, 2, 3};
  EXPECT_FALSE(check_fcs(tiny));
}

TEST(Crc32, FcsIsLittleEndianTrailer) {
  std::vector<std::uint8_t> frame = {'1', '2', '3', '4', '5',
                                     '6', '7', '8', '9'};
  append_fcs(frame);
  ASSERT_EQ(frame.size(), 13u);
  EXPECT_EQ(frame[9], 0x26);
  EXPECT_EQ(frame[10], 0x39);
  EXPECT_EQ(frame[11], 0xF4);
  EXPECT_EQ(frame[12], 0xCB);
}

}  // namespace
}  // namespace silence
