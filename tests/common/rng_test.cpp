#include "common/rng.h"

#include <cmath>
#include <gtest/gtest.h>

#include "dsp/fft.h"

namespace silence {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.engine()() == b.engine()()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 17);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 17u);
  }
}

TEST(Rng, ComplexGaussianVariance) {
  Rng rng(7);
  const double target = 2.5;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += std::norm(rng.complex_gaussian(target));
  }
  EXPECT_NEAR(sum / n, target, 0.1);
}

TEST(Rng, ComplexGaussianZeroMean) {
  Rng rng(8);
  Cx sum{0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.complex_gaussian(1.0);
  EXPECT_NEAR(std::abs(sum) / n, 0.0, 0.02);
}

TEST(Rng, BitsAreBinaryAndBalanced) {
  Rng rng(9);
  const auto bits = rng.bits(10000);
  std::size_t ones = 0;
  for (auto b : bits) {
    ASSERT_LE(b, 1);
    ones += b;
  }
  EXPECT_NEAR(static_cast<double>(ones) / bits.size(), 0.5, 0.03);
}

TEST(Rng, GaussianMoments) {
  Rng rng(10);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

}  // namespace
}  // namespace silence
