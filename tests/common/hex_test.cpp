#include "common/hex.h"

#include <gtest/gtest.h>

namespace silence {
namespace {

TEST(Hex, ToHexBasic) {
  const std::vector<std::uint8_t> data = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(to_hex(data), "deadbeef");
}

TEST(Hex, ToHexEmpty) { EXPECT_EQ(to_hex({}), ""); }

TEST(Hex, ToHexLeadingZeros) {
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0x0A};
  EXPECT_EQ(to_hex(data), "00010a");
}

TEST(Hex, PrintableKeepsAscii) {
  const std::vector<std::uint8_t> data = {'H', 'i', '!', ' ', '~'};
  EXPECT_EQ(to_printable(data), "Hi! ~");
}

TEST(Hex, PrintableMasksControlAndHighBytes) {
  const std::vector<std::uint8_t> data = {0x00, 'A', 0x1F, 0x7F, 0xFF, 'z'};
  EXPECT_EQ(to_printable(data), ".A...z");
}

}  // namespace
}  // namespace silence
