#include "common/bits.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace silence {
namespace {

TEST(Bits, BytesToBitsLsbFirst) {
  const Bytes bytes = {0x01, 0x80, 0xA5};
  const Bits bits = bytes_to_bits(bytes);
  ASSERT_EQ(bits.size(), 24u);
  // 0x01: bit 0 set.
  EXPECT_EQ(bits[0], 1);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(bits[static_cast<size_t>(i)], 0);
  // 0x80: bit 7 set.
  EXPECT_EQ(bits[15], 1);
  EXPECT_EQ(bits[8], 0);
  // 0xA5 = 1010 0101: bits 0,2,5,7.
  EXPECT_EQ(bits[16], 1);
  EXPECT_EQ(bits[17], 0);
  EXPECT_EQ(bits[18], 1);
  EXPECT_EQ(bits[21], 1);
  EXPECT_EQ(bits[23], 1);
}

TEST(Bits, RoundTripBytesBitsBytes) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const Bytes original = rng.bytes(1 + trial * 7);
    EXPECT_EQ(bits_to_bytes(bytes_to_bits(original)), original);
  }
}

TEST(Bits, BitsToBytesRejectsPartialByte) {
  const Bits bits(13, 1);
  EXPECT_THROW(bits_to_bytes(bits), std::invalid_argument);
}

TEST(Bits, UintConversionsMsbFirst) {
  const Bits bits = uint_to_bits(0b1011, 4);
  EXPECT_EQ(bits, (Bits{1, 0, 1, 1}));
  EXPECT_EQ(bits_to_uint(bits), 0b1011u);
}

TEST(Bits, UintRoundTripAllWidths) {
  Rng rng(7);
  for (int width = 1; width <= 64; ++width) {
    const std::uint64_t value =
        width == 64 ? rng.engine()()
                    : rng.engine()() & ((std::uint64_t{1} << width) - 1);
    EXPECT_EQ(bits_to_uint(uint_to_bits(value, width)), value)
        << "width " << width;
  }
}

TEST(Bits, UintToBitsRejectsBadCount) {
  EXPECT_THROW(uint_to_bits(0, -1), std::invalid_argument);
  EXPECT_THROW(uint_to_bits(0, 65), std::invalid_argument);
}

TEST(Bits, BitsToUintRejectsOversized) {
  const Bits bits(65, 0);
  EXPECT_THROW(bits_to_uint(bits), std::invalid_argument);
}

TEST(Bits, HammingDistance) {
  const Bits a = {0, 1, 1, 0, 1};
  const Bits b = {1, 1, 0, 0, 1};
  EXPECT_EQ(hamming_distance(a, b), 2u);
  EXPECT_EQ(hamming_distance(a, a), 0u);
}

TEST(Bits, HammingDistanceRejectsMismatch) {
  const Bits a(4, 0);
  const Bits b(5, 0);
  EXPECT_THROW(hamming_distance(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace silence
