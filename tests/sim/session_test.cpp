#include "sim/session.h"

#include <gtest/gtest.h>

namespace silence {
namespace {

LinkConfig good_link(double snr_db, std::uint64_t seed = 3) {
  LinkConfig config;
  config.snr_db = snr_db;
  config.channel_seed = seed;
  config.noise_seed = seed + 100;
  return config;
}

TEST(Session, DeliversControlBitsOverGoodChannel) {
  Link link(good_link(28.0));
  SessionConfig config;
  CosSession session(link, config);
  Rng rng(1);
  const Bytes psdu = make_test_psdu(1024, rng);
  const Bits control = rng.bits(200);

  // First packet bootstraps on the default subcarrier set at the lowest
  // control rate; its control delivery is best-effort (the set was not
  // chosen for this channel), but the data must survive and the feedback
  // loop must start.
  const PacketReport first = session.send_packet(psdu, control);
  EXPECT_TRUE(first.data_ok);
  ASSERT_TRUE(session.have_feedback());

  // Once the EVM feedback selects detectable subcarriers, control bits
  // flow reliably.
  const PacketReport second = session.send_packet(psdu, control);
  EXPECT_TRUE(second.data_ok);
  EXPECT_TRUE(second.control_ok);
  EXPECT_GT(second.control_bits_sent, 0u);
}

TEST(Session, RateAdaptationFollowsMeasuredSnr) {
  Rng rng(2);
  const Bytes psdu = make_test_psdu(512, rng);
  const Bits control = rng.bits(16);
  {
    Link link(good_link(26.0));
    CosSession session(link, SessionConfig{});
    const PacketReport report = session.send_packet(psdu, control);
    EXPECT_GE(report.mcs->data_rate_mbps, 36);
  }
  {
    Link link(good_link(9.0));
    CosSession session(link, SessionConfig{});
    const PacketReport report = session.send_packet(psdu, control);
    EXPECT_LE(report.mcs->data_rate_mbps, 18);
  }
}

TEST(Session, FixedRateOverrideRespected) {
  Link link(good_link(28.0));
  SessionConfig config;
  config.fixed_rate_mbps = 12;
  CosSession session(link, config);
  Rng rng(3);
  const Bytes psdu = make_test_psdu(256, rng);
  const PacketReport report = session.send_packet(psdu, rng.bits(16));
  EXPECT_EQ(report.mcs->data_rate_mbps, 12);
}

TEST(Session, FeedbackUpdatesControlSubcarriers) {
  Link link(good_link(20.0, 7));
  SessionConfig config;
  CosSession session(link, config);
  Rng rng(4);
  const Bytes psdu = make_test_psdu(1024, rng);
  const auto initial = session.control_subcarriers();
  const PacketReport report = session.send_packet(psdu, rng.bits(64));
  ASSERT_TRUE(report.data_ok);
  EXPECT_TRUE(session.have_feedback());
  // After a successful packet the EVM-based selection replaces the
  // default contiguous block (almost surely different under fading).
  EXPECT_NE(session.control_subcarriers(), initial);
}

TEST(Session, SelectionFeedbackCanBeDisabled) {
  Link link(good_link(20.0, 7));
  SessionConfig config;
  config.use_selection_feedback = false;
  CosSession session(link, config);
  Rng rng(5);
  const Bytes psdu = make_test_psdu(512, rng);
  const auto initial = session.control_subcarriers();
  session.send_packet(psdu, rng.bits(64));
  EXPECT_EQ(session.control_subcarriers(), initial);
}

TEST(Session, ControlRateOverride) {
  Link link(good_link(28.0));
  SessionConfig config;
  config.control_rate_override = 50000;
  CosSession session(link, config);
  Rng rng(6);
  const Bytes psdu = make_test_psdu(1024, rng);
  const Bits control = rng.bits(2000);
  const PacketReport report = session.send_packet(psdu, control);
  // 1024 B at 54 Mbps = 39 symbols = 176 us airtime; 50,000 silences/s
  // gives a budget of 8 silence symbols.
  EXPECT_LE(report.silences_sent, 9u);
  EXPECT_GE(report.silences_sent, 6u);
}

TEST(Session, LostFeedbackFallsBackToLowestRate) {
  // Impossible channel: data packets fail, so the sender must stay at the
  // lowest control rate.
  Link link(good_link(-10.0));
  SessionConfig config;
  CosSession session(link, config);
  Rng rng(7);
  const Bytes psdu = make_test_psdu(256, rng);
  const PacketReport report = session.send_packet(psdu, rng.bits(64));
  EXPECT_FALSE(report.data_ok);
  EXPECT_FALSE(session.have_feedback());
}

TEST(Session, ReportsAccurateControlAccounting) {
  Link link(good_link(25.0));
  SessionConfig config;
  CosSession session(link, config);
  Rng rng(8);
  const Bytes psdu = make_test_psdu(1024, rng);
  const Bits control = rng.bits(96);
  session.send_packet(psdu, control);  // bootstrap the selection
  const PacketReport report = session.send_packet(psdu, control);
  ASSERT_TRUE(report.data_ok);
  EXPECT_EQ(report.control_bits_correct, report.control_bits_sent);
  EXPECT_LE(report.control_bits_sent, control.size());
  EXPECT_EQ(report.control_bits_sent % 4, 0u);
}

}  // namespace
}  // namespace silence
