#include "sim/link.h"

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "phy/receiver.h"
#include "phy/transmitter.h"

namespace silence {
namespace {

TEST(Link, SnrBookkeepingConsistent) {
  LinkConfig config;
  config.snr_db = 18.0;
  Link link(config);
  EXPECT_DOUBLE_EQ(link.noise_var(), noise_var_for_snr_db(18.0));
  EXPECT_DOUBLE_EQ(link.freq_noise_var(), 64.0 * link.noise_var());
  EXPECT_LE(link.measured_snr_db(), link.actual_snr_db() + 1e-9);
}

TEST(Link, PacketSurvivesComfortableSnr) {
  LinkConfig config;
  config.snr_db = 30.0;
  config.channel_seed = 5;
  Link link(config);
  Rng rng(1);
  const Bytes psdu = make_test_psdu(300, rng);
  const CxVec tx = frame_to_samples(build_frame(psdu, mcs_for_rate(12)));
  const CxVec rx = link.send(tx);
  const RxPacket packet = receive_packet(rx);
  ASSERT_TRUE(packet.ok);
  EXPECT_EQ(packet.psdu, psdu);
}

TEST(Link, InterfererInjectsEnergy) {
  LinkConfig config;
  config.snr_db = 200.0;  // effectively noiseless
  config.interferer = PulseInterferer{.symbol_hit_probability = 1.0,
                                      .pulse_power = 5.0};
  Link link(config);
  const CxVec zeros(800, Cx{0.0, 0.0});
  const CxVec rx = link.send(zeros);
  double energy_sum = 0.0;
  for (const Cx& x : rx) energy_sum += std::norm(x);
  EXPECT_NEAR(energy_sum / static_cast<double>(rx.size()), 5.0, 0.8);
}

TEST(Link, AdvanceMovesChannel) {
  LinkConfig config;
  config.profile.rician_k_linear = 0.0;
  Link link(config);
  const CxVec before(link.channel().taps().begin(),
                     link.channel().taps().end());
  link.advance(0.1);  // far past coherence time
  double diff = 0.0;
  for (std::size_t l = 0; l < before.size(); ++l) {
    diff += std::abs(link.channel().taps()[l] - before[l]);
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(Link, MakeTestPsduHasValidFcs) {
  Rng rng(2);
  for (std::size_t size : {5u, 64u, 1024u}) {
    const Bytes psdu = make_test_psdu(size, rng);
    EXPECT_EQ(psdu.size(), size);
    EXPECT_TRUE(check_fcs(psdu));
  }
  EXPECT_THROW(make_test_psdu(4, rng), std::invalid_argument);
}

}  // namespace
}  // namespace silence
