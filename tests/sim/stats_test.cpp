#include "sim/stats.h"

#include <gtest/gtest.h>

namespace silence {
namespace {

TEST(Stats, RatesComputedFromCounters) {
  ErrorStats stats;
  stats.bits = 1000;
  stats.bit_errors = 25;
  stats.symbols = 500;
  stats.symbol_errors = 10;
  stats.packets = 100;
  stats.packets_ok = 99;
  EXPECT_DOUBLE_EQ(stats.ber(), 0.025);
  EXPECT_DOUBLE_EQ(stats.ser(), 0.02);
  EXPECT_DOUBLE_EQ(stats.prr(), 0.99);
}

TEST(Stats, EmptyCountersGiveZeroRates) {
  const ErrorStats stats;
  EXPECT_DOUBLE_EQ(stats.ber(), 0.0);
  EXPECT_DOUBLE_EQ(stats.ser(), 0.0);
  EXPECT_DOUBLE_EQ(stats.prr(), 0.0);
}

TEST(Stats, Accumulation) {
  ErrorStats a, b;
  a.bits = 10;
  a.bit_errors = 1;
  a.packets = 2;
  a.packets_ok = 2;
  b.bits = 30;
  b.bit_errors = 3;
  b.packets = 1;
  b.packets_ok = 0;
  a += b;
  EXPECT_EQ(a.bits, 40u);
  EXPECT_EQ(a.bit_errors, 4u);
  EXPECT_DOUBLE_EQ(a.ber(), 0.1);
  EXPECT_DOUBLE_EQ(a.prr(), 2.0 / 3.0);
}

TEST(Stats, MergeMatchesPooledCounters) {
  // Rates of a merged value must equal rates over the pooled samples no
  // matter how the runner groups partial results.
  std::vector<ErrorStats> parts(4);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    parts[i].bits = 100 * (i + 1);
    parts[i].bit_errors = 3 * i;
    parts[i].symbols = 50 * (i + 1);
    parts[i].symbol_errors = i;
    parts[i].packets = 10;
    parts[i].packets_ok = 10 - i;
  }
  ErrorStats serial;
  for (const auto& p : parts) serial += p;
  const ErrorStats pairwise = (parts[0] + parts[1]) + (parts[2] + parts[3]);
  EXPECT_EQ(serial.bits, pairwise.bits);
  EXPECT_EQ(serial.bit_errors, pairwise.bit_errors);
  EXPECT_EQ(serial.symbols, pairwise.symbols);
  EXPECT_EQ(serial.symbol_errors, pairwise.symbol_errors);
  EXPECT_EQ(serial.packets, pairwise.packets);
  EXPECT_EQ(serial.packets_ok, pairwise.packets_ok);
  EXPECT_DOUBLE_EQ(serial.ber(), 18.0 / 1000.0);
  EXPECT_DOUBLE_EQ(serial.prr(), 34.0 / 40.0);
}

TEST(Stats, MergeWithEmptyIsIdentity) {
  ErrorStats stats;
  stats.bits = 7;
  stats.bit_errors = 2;
  stats.packets = 3;
  stats.packets_ok = 1;
  const ErrorStats merged = stats + ErrorStats{};
  EXPECT_EQ(merged.bits, 7u);
  EXPECT_EQ(merged.bit_errors, 2u);
  EXPECT_DOUBLE_EQ(merged.ber(), stats.ber());
  EXPECT_DOUBLE_EQ(merged.prr(), stats.prr());
  const ErrorStats both_empty = ErrorStats{} + ErrorStats{};
  EXPECT_DOUBLE_EQ(both_empty.ber(), 0.0);
  EXPECT_DOUBLE_EQ(both_empty.prr(), 0.0);
}

TEST(Stats, EmpiricalCdfIsSorted) {
  const std::vector<double> samples = {3.0, 1.0, 2.0, 1.5};
  const auto cdf = empirical_cdf(samples);
  EXPECT_EQ(cdf, (std::vector<double>{1.0, 1.5, 2.0, 3.0}));
}

TEST(Stats, EmpiricalCdfOfEmptySamplesIsEmpty) {
  EXPECT_TRUE(empirical_cdf({}).empty());
}

TEST(Stats, EmpiricalCdfKeepsDuplicates) {
  const std::vector<double> samples = {2.0, 1.0, 2.0};
  EXPECT_EQ(empirical_cdf(samples), (std::vector<double>{1.0, 2.0, 2.0}));
}

TEST(Stats, QuantileNearestRank) {
  const std::vector<double> samples = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(quantile(samples, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 0.2), 10.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 0.21), 20.0);
}

TEST(Stats, QuantileValidation) {
  const std::vector<double> samples = {1.0};
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(samples, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(samples, 1.1), std::invalid_argument);
}

TEST(Stats, Mean) {
  const std::vector<double> samples = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(samples), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

}  // namespace
}  // namespace silence
