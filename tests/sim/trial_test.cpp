#include "sim/trial.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "obs/flight/flight.h"
#include "obs/health/health.h"
#include "runner/sinks.h"

namespace silence {
namespace {

using obs::flight::DumpRouter;
using obs::flight::TrialLabel;
using obs::flight::TrialRecording;
using runner::Json;

CosTrialSpec test_spec() {
  CosTrialSpec spec;
  spec.measured_snr_db = 12.0;
  spec.mcs = McsId::for_rate(12);
  spec.psdu_octets = 128;
  spec.control_bits = 40;
  spec.cos.control_subcarriers = {9, 10, 11, 12, 13, 14, 15, 16};
  spec.profile.rician_k_linear = 10.0;
  spec.profile.decay_taps = 1.5;
  return spec;
}

TEST(CosTrialSpec, JsonRoundTripsEveryField) {
  CosTrialSpec spec = test_spec();
  spec.cos.detector.mode = ThresholdMode::kPerSubcarrierMidpoint;
  spec.cos.detector.threshold_margin = 6.5;
  spec.interferer = PulseInterferer{.symbol_hit_probability = 0.25,
                                    .pulse_power = 1.5};
  spec.ground_truth_framing = true;
  spec.dump_on_false_alarm = false;

  const CosTrialSpec back = CosTrialSpec::from_json(spec.to_json());
  // The serializer is deterministic, so field equality reduces to JSON
  // equality — including every double's exact bit pattern.
  EXPECT_EQ(back.to_json().dump_compact(), spec.to_json().dump_compact());
  EXPECT_EQ(back.cos.detector.mode, ThresholdMode::kPerSubcarrierMidpoint);
  ASSERT_TRUE(back.interferer.has_value());
  EXPECT_EQ(back.interferer->symbol_hit_probability, 0.25);
  EXPECT_TRUE(back.ground_truth_framing);
  EXPECT_FALSE(back.dump_on_false_alarm);
}

TEST(CosTrialSpec, JsonRoundTripsWithoutInterferer) {
  const CosTrialSpec spec = test_spec();
  const CosTrialSpec back = CosTrialSpec::from_json(spec.to_json());
  EXPECT_FALSE(back.interferer.has_value());
  EXPECT_EQ(back.to_json().dump_compact(), spec.to_json().dump_compact());
}

TEST(CosTrialSpec, FromJsonRejectsMissingFields) {
  Json broken = test_spec().to_json();
  Json pruned = Json::object();
  for (const auto& [key, value] : broken.as_object()) {
    if (key != "profile") pruned.set(key, value);
  }
  EXPECT_THROW(CosTrialSpec::from_json(pruned), std::runtime_error);
}

TEST(CosTrial, OutcomeIsAPureFunctionOfSpecAndSeed) {
  const CosTrialSpec spec = test_spec();
  const CosTrialResult first = run_cos_trial_recorded(spec, 12345);
  const CosTrialResult second = run_cos_trial_recorded(spec, 12345);
  EXPECT_EQ(first.summary().dump_compact(), second.summary().dump_compact());

  // At a healthy SNR the packet decodes and the control message lands.
  EXPECT_TRUE(first.usable);
  EXPECT_TRUE(first.crc_ok);
  EXPECT_TRUE(first.control_ok);
  EXPECT_GT(first.control_bits_sent, 0u);

  const CosTrialResult other = run_cos_trial_recorded(spec, 54321);
  EXPECT_NE(first.summary().dump_compact(), other.summary().dump_compact());
}

TEST(CosTrial, CountDetectionMatchesTrialConfusionCounts) {
  const CosTrialSpec spec = test_spec();
  const CosPacket packet = simulate_cos_packet(spec, 999);
  ASSERT_TRUE(packet.usable);
  DetectorConfig detector = spec.cos.detector;
  detector.modulation = spec.mcs->modulation;
  const DetectionCounts direct =
      count_detection(packet, spec.cos.control_subcarriers, detector);
  const CosTrialResult trial = run_cos_trial_recorded(spec, 999);
  EXPECT_EQ(direct.active, trial.detection.active);
  EXPECT_EQ(direct.silent, trial.detection.silent);
  EXPECT_EQ(direct.false_pos, trial.detection.false_pos);
  EXPECT_EQ(direct.false_neg, trial.detection.false_neg);
}

#if SILENCE_OBS_ON
TEST(CosTrialHealth, ScoreHistogramsReproduceConfusionCountsExactly) {
  // The tentpole exactness contract: the health registry's per-truth
  // score histograms and confusion counters, filled from the same score
  // walk the detector performed, must reproduce the mask-derived
  // DetectionCounts bit-for-bit — the quantization clamps the decision
  // into the score, so the bucket boundary at 256 IS the threshold.
  namespace health = obs::health;
  auto& reg = health::Registry::global();
  reg.reset();

  const CosTrialSpec spec = test_spec();
  DetectionCounts totals;
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    totals += run_cos_trial_recorded(spec, seed).detection;
  }
  const health::HealthSnapshot snap = reg.snapshot();
  reg.reset();

  const auto counter = [&snap](health::Counter c) {
    return snap.counters[static_cast<std::size_t>(c)];
  };
  EXPECT_EQ(counter(health::Counter::kTruthSilent), totals.silent);
  EXPECT_EQ(counter(health::Counter::kTruthActive), totals.active);
  EXPECT_EQ(counter(health::Counter::kMisses), totals.false_neg);
  EXPECT_EQ(counter(health::Counter::kFalseAlarms), totals.false_pos);

  // Independently from the histograms: buckets 0..8 hold exactly the
  // scores 0..255, i.e. the declared-silent cells.
  const std::size_t boundary =
      obs::histogram_bucket(health::kScoreThreshold - 1);
  std::uint64_t silent_total = 0, silent_below = 0;
  std::uint64_t active_total = 0, active_below = 0;
  for (std::size_t sc = 0; sc < health::kSubcarriers; ++sc) {
    const health::HealthHist& s =
        snap.scores[static_cast<std::size_t>(health::Truth::kSilent)][sc];
    const health::HealthHist& a =
        snap.scores[static_cast<std::size_t>(health::Truth::kActive)][sc];
    silent_total += s.count;
    active_total += a.count;
    for (std::size_t b = 0; b <= boundary; ++b) {
      silent_below += s.buckets[b];
      active_below += a.buckets[b];
    }
  }
  EXPECT_EQ(silent_total, totals.silent);
  EXPECT_EQ(active_total, totals.active);
  EXPECT_EQ(silent_total - silent_below, totals.false_neg);  // misses
  EXPECT_EQ(active_below, totals.false_pos);  // false alarms
  ASSERT_GT(silent_total, 0u);
  ASSERT_GT(active_total, 0u);
}

// A detector threshold far above any active symbol's energy marks every
// control cell silent: guaranteed false alarms (and a garbage control
// message), i.e. a deterministic anomaly for the dump path.
CosTrialSpec anomalous_spec() {
  CosTrialSpec spec = test_spec();
  spec.cos.detector.fixed_threshold = 1e9;
  return spec;
}

TEST(CosTrialFlight, AnomalousTrialDumpsAndReplaysBitIdentically) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "cos_trial_flight_test";
  std::filesystem::remove_all(dir);
  auto& router = DumpRouter::global();
  router.configure(dir.string(), /*limit=*/4);

  TrialLabel label;
  label.sweep = "trial_test";
  label.point_index = 1;
  label.trial_index = 3;
  const std::uint64_t seed = 20240807;
  const CosTrialResult result = run_cos_trial(anomalous_spec(), label, seed);
  router.disable();

  ASSERT_FALSE(result.dump_path.empty());
  EXPECT_GT(result.detection.false_pos, 0u);
  EXPECT_EQ(std::filesystem::path(result.dump_path).filename().string(),
            DumpRouter::dump_name(label, seed));

  // Replay exactly as tools/silence_diag does: rebuild (spec, seed) from
  // the artifact, re-run under a fresh recording, require bit identity —
  // same events (detector scores, taps, intervals), same RX-bit digest.
  const Json dump = runner::read_json_file(result.dump_path);
  const CosTrialSpec spec = CosTrialSpec::from_json(*dump.find("spec"));
  const std::uint64_t replay_seed =
      obs::flight::seed_from_string(dump.find("seed")->as_string());
  EXPECT_EQ(replay_seed, seed);

  TrialRecording rec(label, replay_seed, spec.to_json());
  const CosTrialResult replayed = run_cos_trial_recorded(spec, replay_seed);
  rec.set_result(replayed.summary());

  std::string diff;
  EXPECT_TRUE(obs::flight::compare_artifacts(dump, rec.artifact(), &diff))
      << diff;
  EXPECT_GT(rec.size(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(CosTrialFlight, CleanTrialsDoNotDump) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "cos_trial_clean_test";
  std::filesystem::remove_all(dir);
  auto& router = DumpRouter::global();
  router.configure(dir.string(), /*limit=*/4);
  TrialLabel label;
  label.sweep = "trial_test_clean";
  // Seed 999 at 12 dB decodes with zero detection errors (asserted by
  // CountDetectionMatchesTrialConfusionCounts above), so no predicate fires.
  const CosTrialResult result = run_cos_trial(test_spec(), label, 999);
  router.disable();
  EXPECT_TRUE(result.crc_ok);
  EXPECT_TRUE(result.dump_path.empty());
  EXPECT_FALSE(std::filesystem::exists(dir) &&
               !std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

TEST(CosTrialFlight, DisabledPredicatesSuppressTheirTriggers) {
  CosTrialSpec spec = anomalous_spec();
  spec.dump_on_false_alarm = false;
  spec.dump_on_control_miss = false;
  spec.dump_on_crc_fail = false;
  TrialRecording rec({.sweep = "trial_test_pred"}, 77, spec.to_json());
  (void)run_cos_trial_recorded(spec, 77);
  EXPECT_FALSE(rec.triggered());
}
#endif  // SILENCE_OBS_ON

}  // namespace
}  // namespace silence
