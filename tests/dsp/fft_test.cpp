#include "dsp/fft.h"

#include <cmath>
#include <gtest/gtest.h>
#include <numbers>

#include "common/rng.h"

namespace silence {
namespace {

TEST(Fft, RejectsNonPowerOfTwo) {
  CxVec data(48, Cx{1.0, 0.0});
  EXPECT_THROW(fft_in_place(data, false), std::invalid_argument);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  CxVec data(64, Cx{0.0, 0.0});
  data[0] = Cx{1.0, 0.0};
  const CxVec spectrum = fft(data);
  for (const Cx& bin : spectrum) {
    EXPECT_NEAR(bin.real(), 1.0, 1e-12);
    EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, DcGivesImpulseAtBinZero) {
  CxVec data(64, Cx{1.0, 0.0});
  const CxVec spectrum = fft(data);
  EXPECT_NEAR(spectrum[0].real(), 64.0, 1e-9);
  for (std::size_t k = 1; k < 64; ++k) {
    EXPECT_NEAR(std::abs(spectrum[k]), 0.0, 1e-9);
  }
}

TEST(Fft, SingleToneLandsOnItsBin) {
  const int tone = 5;
  CxVec data(64);
  for (int n = 0; n < 64; ++n) {
    const double angle = 2.0 * std::numbers::pi * tone * n / 64.0;
    data[static_cast<std::size_t>(n)] = Cx{std::cos(angle), std::sin(angle)};
  }
  const CxVec spectrum = fft(data);
  EXPECT_NEAR(std::abs(spectrum[tone]), 64.0, 1e-9);
  for (int k = 0; k < 64; ++k) {
    if (k == tone) continue;
    EXPECT_NEAR(std::abs(spectrum[static_cast<std::size_t>(k)]), 0.0, 1e-8);
  }
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseRecoversInput) {
  Rng rng(GetParam());
  CxVec data(GetParam());
  for (auto& x : data) x = rng.complex_gaussian(1.0);
  const CxVec recovered = ifft(fft(data));
  ASSERT_EQ(recovered.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(recovered[i] - data[i]), 0.0, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256,
                                           1024));

TEST(Fft, ParsevalHolds) {
  Rng rng(3);
  CxVec data(64);
  for (auto& x : data) x = rng.complex_gaussian(1.0);
  const CxVec spectrum = fft(data);
  // Unnormalized forward transform: sum |X|^2 = N * sum |x|^2.
  EXPECT_NEAR(energy(spectrum), 64.0 * energy(data), 1e-8);
}

TEST(Fft, LinearityHolds) {
  Rng rng(4);
  CxVec a(32), b(32), combo(32);
  for (std::size_t i = 0; i < 32; ++i) {
    a[i] = rng.complex_gaussian(1.0);
    b[i] = rng.complex_gaussian(1.0);
    combo[i] = 2.0 * a[i] + Cx{0.0, 3.0} * b[i];
  }
  const CxVec fa = fft(a), fb = fft(b), fc = fft(combo);
  for (std::size_t k = 0; k < 32; ++k) {
    const Cx expected = 2.0 * fa[k] + Cx{0.0, 3.0} * fb[k];
    EXPECT_NEAR(std::abs(fc[k] - expected), 0.0, 1e-9);
  }
}

TEST(Fft, EnergyHelper) {
  const CxVec data = {Cx{3.0, 4.0}, Cx{0.0, 2.0}};
  EXPECT_DOUBLE_EQ(energy(data), 25.0 + 4.0);
}

TEST(Fft, CircularShiftIsPhaseRamp) {
  Rng rng(5);
  CxVec data(64);
  for (auto& x : data) x = rng.complex_gaussian(1.0);
  CxVec shifted(64);
  for (std::size_t n = 0; n < 64; ++n) shifted[n] = data[(n + 63) % 64];
  const CxVec f0 = fft(data), f1 = fft(shifted);
  for (int k = 0; k < 64; ++k) {
    const double angle = -2.0 * std::numbers::pi * k / 64.0;
    const Cx ramp{std::cos(angle), std::sin(angle)};
    EXPECT_NEAR(std::abs(f1[static_cast<std::size_t>(k)] -
                         f0[static_cast<std::size_t>(k)] * ramp),
                0.0, 1e-9);
  }
}

}  // namespace
}  // namespace silence
