#include "channel/interference.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "phy/params.h"

namespace silence {
namespace {

TEST(Interference, ZeroProbabilityLeavesSamplesUntouched) {
  Rng rng(1);
  CxVec samples(800, Cx{0.5, -0.25});
  PulseInterferer interferer{.symbol_hit_probability = 0.0,
                             .pulse_power = 10.0};
  interferer.apply(samples, rng);
  for (const Cx& x : samples) {
    EXPECT_EQ(x, (Cx{0.5, -0.25}));
  }
}

TEST(Interference, CertainHitTouchesEverySymbolWindow) {
  Rng rng(2);
  CxVec samples(800, Cx{0.0, 0.0});
  PulseInterferer interferer{.symbol_hit_probability = 1.0,
                             .pulse_power = 4.0};
  interferer.apply(samples, rng);
  for (std::size_t base = 0; base < samples.size();
       base += static_cast<std::size_t>(kSymbolSamples)) {
    double window_energy = 0.0;
    for (int n = 0; n < kSymbolSamples; ++n) {
      window_energy += std::norm(samples[base + static_cast<std::size_t>(n)]);
    }
    EXPECT_GT(window_energy, 0.0);
  }
}

TEST(Interference, PulsePowerCalibrated) {
  Rng rng(3);
  CxVec samples(80000, Cx{0.0, 0.0});
  const double power = 2.5;
  PulseInterferer interferer{.symbol_hit_probability = 1.0,
                             .pulse_power = power};
  interferer.apply(samples, rng);
  double total = 0.0;
  for (const Cx& x : samples) total += std::norm(x);
  EXPECT_NEAR(total / static_cast<double>(samples.size()), power,
              power * 0.05);
}

TEST(Interference, HitRateMatchesProbability) {
  Rng rng(4);
  const double p = 0.3;
  PulseInterferer interferer{.symbol_hit_probability = p, .pulse_power = 1.0};
  int hits = 0;
  const int windows = 5000;
  CxVec samples(static_cast<std::size_t>(windows) * kSymbolSamples,
                Cx{0.0, 0.0});
  interferer.apply(samples, rng);
  for (int w = 0; w < windows; ++w) {
    double e = 0.0;
    for (int n = 0; n < kSymbolSamples; ++n) {
      e += std::norm(samples[static_cast<std::size_t>(w) * kSymbolSamples +
                             static_cast<std::size_t>(n)]);
    }
    if (e > 0.0) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / windows, p, 0.03);
}

TEST(Interference, PartialTrailingWindowHandled) {
  Rng rng(5);
  CxVec samples(100, Cx{0.0, 0.0});  // 80 + 20 trailing samples
  PulseInterferer interferer{.symbol_hit_probability = 1.0,
                             .pulse_power = 1.0};
  interferer.apply(samples, rng);  // must not run past the end
  double tail_energy = 0.0;
  for (std::size_t n = 80; n < 100; ++n) tail_energy += std::norm(samples[n]);
  EXPECT_GT(tail_energy, 0.0);
}

}  // namespace
}  // namespace silence
