#include "channel/impairments.h"

#include <cmath>
#include <gtest/gtest.h>
#include <numbers>

#include "channel/fading.h"
#include "common/crc32.h"
#include "phy/params.h"
#include "phy/preamble.h"
#include "phy/receiver.h"
#include "phy/sync.h"
#include "phy/transmitter.h"

namespace silence {
namespace {

TEST(Impairments, NoImpairmentIsIdentity) {
  RadioImpairments radio({}, 1);
  Rng rng(2);
  CxVec samples(100);
  for (auto& x : samples) x = rng.complex_gaussian(1.0);
  const CxVec out = radio.apply(samples);
  for (std::size_t n = 0; n < samples.size(); ++n) {
    EXPECT_EQ(out[n], samples[n]);
  }
}

TEST(Impairments, NegativeValuesRejected) {
  ImpairmentProfile bad;
  bad.tx_evm_floor = -0.1;
  EXPECT_THROW(RadioImpairments(bad, 1), std::invalid_argument);
}

TEST(Impairments, CfoRotatesProgressively) {
  ImpairmentProfile profile;
  profile.cfo_hz = 10e3;
  RadioImpairments radio(profile, 1);
  const CxVec ones(200, Cx{1.0, 0.0});
  const CxVec out = radio.apply(ones);
  // Sample n is rotated by 2*pi*f*(n+1)/fs.
  for (int n = 0; n < 200; n += 37) {
    const double expected =
        2.0 * std::numbers::pi * 10e3 * (n + 1) / kSampleRateHz;
    const double measured = std::arg(out[static_cast<std::size_t>(n)]);
    const double diff = std::remainder(measured - expected,
                                       2.0 * std::numbers::pi);
    EXPECT_NEAR(diff, 0.0, 1e-9) << "sample " << n;
  }
}

TEST(Impairments, OscillatorPhaseContinuesAcrossBursts) {
  ImpairmentProfile profile;
  profile.cfo_hz = 5e3;
  RadioImpairments radio(profile, 1);
  const CxVec ones(80, Cx{1.0, 0.0});
  const CxVec first = radio.apply(ones);
  const CxVec second = radio.apply(ones);
  // The second burst starts where the first left off.
  const double step = 2.0 * std::numbers::pi * 5e3 / kSampleRateHz;
  const double expected_gap = step * 80;
  const double measured_gap =
      std::remainder(std::arg(second[0]) - std::arg(first[0]),
                     2.0 * std::numbers::pi);
  EXPECT_NEAR(std::remainder(measured_gap - expected_gap,
                             2.0 * std::numbers::pi),
              0.0, 1e-9);
}

TEST(Impairments, TxEvmFloorCalibrated) {
  ImpairmentProfile profile;
  profile.tx_evm_floor = 0.05;
  RadioImpairments radio(profile, 3);
  const CxVec ones(50000, Cx{1.0, 0.0});
  const CxVec out = radio.apply(ones);
  double error_power = 0.0;
  for (std::size_t n = 0; n < out.size(); ++n) {
    error_power += std::norm(out[n] - ones[n]);
  }
  error_power /= static_cast<double>(out.size());
  EXPECT_NEAR(error_power, 0.05 * 0.05, 0.05 * 0.05 * 0.1);
}

TEST(Impairments, PhaseNoiseDiffuses) {
  ImpairmentProfile profile;
  profile.phase_noise_std = 0.01;
  RadioImpairments radio(profile, 4);
  const CxVec ones(10000, Cx{1.0, 0.0});
  const CxVec out = radio.apply(ones);
  // Wiener process: phase variance at sample n is n * std^2.
  const double late_phase = std::abs(std::arg(out[9999]));
  EXPECT_GT(late_phase, 0.0);
  // Magnitude untouched by a pure phase impairment.
  for (int n = 0; n < 10000; n += 997) {
    EXPECT_NEAR(std::abs(out[static_cast<std::size_t>(n)]), 1.0, 1e-12);
  }
}

TEST(Sync, CfoEstimateFromCleanPreamble) {
  for (double cfo : {-80e3, -12e3, 0.0, 3e3, 50e3, 120e3}) {
    ImpairmentProfile profile;
    profile.cfo_hz = cfo;
    RadioImpairments radio(profile, 5);
    const CxVec preamble = build_preamble();
    CxVec impaired = radio.apply(preamble);

    const double coarse =
        estimate_cfo_coarse(std::span(impaired).first(kStfSamples));
    correct_cfo(impaired, coarse);
    const double fine = estimate_cfo_fine(
        std::span(impaired).subspan(kStfSamples, kLtfSamples));
    EXPECT_NEAR(coarse + fine, cfo, 50.0) << "cfo " << cfo;
  }
}

TEST(Sync, CfoEstimateUnderNoise) {
  Rng rng(6);
  const double cfo = 30e3;
  ImpairmentProfile profile;
  profile.cfo_hz = cfo;
  RadioImpairments radio(profile, 7);
  const CxVec preamble = build_preamble();
  CxVec impaired = radio.apply(preamble);
  const double nv = noise_var_for_snr_db(15.0);
  for (auto& x : impaired) x += rng.complex_gaussian(nv);

  const double coarse =
      estimate_cfo_coarse(std::span(impaired).first(kStfSamples));
  correct_cfo(impaired, coarse);
  const double fine = estimate_cfo_fine(
      std::span(impaired).subspan(kStfSamples, kLtfSamples));
  EXPECT_NEAR(coarse + fine, cfo, 2e3);
}

TEST(Sync, CorrectCfoInvertsImpairment) {
  ImpairmentProfile profile;
  profile.cfo_hz = 44e3;
  RadioImpairments radio(profile, 8);
  Rng rng(9);
  CxVec samples(500);
  for (auto& x : samples) x = rng.complex_gaussian(1.0);
  CxVec impaired = radio.apply(samples);
  correct_cfo(impaired, 44e3);
  // A constant residual phase remains (the rotation of sample 0); check
  // sample-to-sample consistency instead of absolute equality.
  const Cx ratio0 = impaired[0] / samples[0];
  for (std::size_t n = 1; n < samples.size(); ++n) {
    EXPECT_NEAR(std::abs(impaired[n] / samples[n] - ratio0), 0.0, 1e-9);
  }
}

TEST(Sync, InputValidation) {
  const CxVec tiny(10);
  EXPECT_THROW(estimate_cfo_coarse(tiny), std::invalid_argument);
  EXPECT_THROW(estimate_cfo_fine(tiny), std::invalid_argument);
}

TEST(Impairments, PacketSurvivesRealisticImpairments) {
  // End-to-end: CFO + phase noise + TX EVM floor, corrected by the
  // receiver's preamble sync and pilot CPE tracking.
  Rng rng(10);
  Bytes psdu = rng.bytes(1020);
  append_fcs(psdu);
  const Mcs& mcs = mcs_for_rate(24);
  const CxVec tx = frame_to_samples(build_frame(psdu, mcs));

  ImpairmentProfile profile;
  profile.cfo_hz = 25e3;            // ~4 ppm residual at 5.8 GHz
  profile.phase_noise_std = 2e-3;   // mild oscillator jitter
  profile.tx_evm_floor = 0.03;      // -30 dB TX EVM
  RadioImpairments radio(profile, 11);
  CxVec impaired = radio.apply(tx);
  const double nv = noise_var_for_snr_db(20.0);
  for (auto& x : impaired) x += rng.complex_gaussian(nv);

  const RxPacket packet = receive_packet(impaired);
  ASSERT_TRUE(packet.ok);
  EXPECT_EQ(packet.psdu, psdu);
}

TEST(Impairments, UncorrectedCfoWouldDestroyThePacket) {
  // Sanity: the CFO above is fatal without the receiver's correction.
  // Bypass sync by applying the CFO *after* building a shifted receiver
  // input: feed the receiver a burst whose preamble was replaced by a
  // clean one (so sync estimates ~0) while the data field keeps the
  // rotation.
  Rng rng(12);
  Bytes psdu = rng.bytes(500);
  append_fcs(psdu);
  const Mcs& mcs = mcs_for_rate(36);
  const CxVec clean = frame_to_samples(build_frame(psdu, mcs));

  ImpairmentProfile profile;
  profile.cfo_hz = 60e3;  // ~20% of the subcarrier spacing: heavy ICI
  RadioImpairments radio(profile, 13);
  CxVec impaired = radio.apply(clean);
  std::copy(clean.begin(), clean.begin() + kPreambleSamples,
            impaired.begin());

  const RxPacket packet = receive_packet(impaired);
  EXPECT_FALSE(packet.ok);
}

}  // namespace
}  // namespace silence
