#include "channel/fading.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/db.h"
#include "common/rng.h"

namespace silence {
namespace {

TEST(Fading, NoiseVarConvention) {
  // At 0 dB mean subcarrier SNR through a unit channel, the per-bin
  // frequency-domain noise power equals the per-bin signal power (1).
  const double nv = noise_var_for_snr_db(0.0);
  EXPECT_DOUBLE_EQ(freq_noise_var(nv), 1.0);
  EXPECT_DOUBLE_EQ(freq_noise_var(noise_var_for_snr_db(10.0)), 0.1);
}

TEST(Fading, TapCountValidation) {
  MultipathProfile profile;
  profile.num_taps = 0;
  EXPECT_THROW(FadingChannel(profile, 1), std::invalid_argument);
  profile.num_taps = kCpLength + 1;
  EXPECT_THROW(FadingChannel(profile, 1), std::invalid_argument);
}

TEST(Fading, AverageTapEnergyIsUnity) {
  MultipathProfile profile;
  double total = 0.0;
  const int realizations = 2000;
  for (int seed = 0; seed < realizations; ++seed) {
    FadingChannel channel(profile, static_cast<std::uint64_t>(seed));
    for (const Cx& tap : channel.taps()) total += std::norm(tap);
  }
  EXPECT_NEAR(total / realizations, 1.0, 0.05);
}

TEST(Fading, DeterministicForSeed) {
  MultipathProfile profile;
  FadingChannel a(profile, 42), b(profile, 42);
  ASSERT_EQ(a.taps().size(), b.taps().size());
  for (std::size_t l = 0; l < a.taps().size(); ++l) {
    EXPECT_EQ(a.taps()[l], b.taps()[l]);
  }
}

TEST(Fading, DifferentSeedsDifferentRealizations) {
  MultipathProfile profile;
  FadingChannel a(profile, 1), b(profile, 2);
  double diff = 0.0;
  for (std::size_t l = 0; l < a.taps().size(); ++l) {
    diff += std::abs(a.taps()[l] - b.taps()[l]);
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(Fading, FrequencyResponseMatchesTapDft) {
  MultipathProfile profile;
  FadingChannel channel(profile, 7);
  const auto response = channel.frequency_response();
  // Parseval over the 64 bins: sum |H_k|^2 = 64 * sum |h_l|^2.
  double lhs = 0.0;
  for (const Cx& h : response) lhs += std::norm(h);
  double rhs = 0.0;
  for (const Cx& tap : channel.taps()) rhs += std::norm(tap);
  EXPECT_NEAR(lhs, 64.0 * rhs, 1e-9);
}

TEST(Fading, FrequencySelectivityExists) {
  // Multipath must create meaningfully different per-subcarrier gains —
  // the phenomenon CoS exploits (paper Fig. 5).
  MultipathProfile profile;
  FadingChannel channel(profile, 11);
  const auto response = channel.frequency_response();
  double min_gain = 1e9, max_gain = 0.0;
  for (int bin : data_subcarrier_bins()) {
    const double g = std::norm(response[static_cast<std::size_t>(bin)]);
    min_gain = std::min(min_gain, g);
    max_gain = std::max(max_gain, g);
  }
  EXPECT_GT(max_gain / min_gain, 2.0);
}

TEST(Fading, MeasuredSnrBelowActualSnr) {
  // Geometric mean <= arithmetic mean: the NIC-style estimate is dragged
  // down by faded subcarriers (paper Fig. 2).
  MultipathProfile profile;
  for (int seed = 0; seed < 20; ++seed) {
    FadingChannel channel(profile, static_cast<std::uint64_t>(seed));
    const double nv = noise_var_for_snr_db(15.0);
    EXPECT_LE(channel.measured_snr_db(nv), channel.actual_snr_db(nv) + 1e-9)
        << "seed " << seed;
  }
}

TEST(Fading, MeasuredSnrPinningIsExact) {
  MultipathProfile profile;
  FadingChannel channel(profile, 3);
  for (double target : {5.0, 12.0, 20.0, 25.0}) {
    const double nv = noise_var_for_measured_snr(channel, target);
    EXPECT_NEAR(channel.measured_snr_db(nv), target, 1e-9);
  }
}

TEST(Fading, MultipathConvolutionImpulse) {
  MultipathProfile profile;
  FadingChannel channel(profile, 5);
  CxVec impulse(32, Cx{0.0, 0.0});
  impulse[0] = Cx{1.0, 0.0};
  const CxVec out = channel.apply_multipath(impulse);
  const auto taps = channel.taps();
  for (std::size_t l = 0; l < taps.size(); ++l) {
    EXPECT_NEAR(std::abs(out[l] - taps[l]), 0.0, 1e-12);
  }
  for (std::size_t n = taps.size(); n < 32; ++n) {
    EXPECT_NEAR(std::abs(out[n]), 0.0, 1e-12);
  }
}

TEST(Fading, TransmitAddsCalibratedNoise) {
  MultipathProfile profile;
  profile.num_taps = 1;
  profile.rician_k_linear = 0.0;
  FadingChannel channel(profile, 6);
  Rng rng(8);
  const CxVec zeros(20000, Cx{0.0, 0.0});
  const double nv = 0.37;
  const CxVec out = channel.transmit(zeros, nv, rng);
  double measured = 0.0;
  for (const Cx& x : out) measured += std::norm(x);
  EXPECT_NEAR(measured / static_cast<double>(out.size()), nv, nv * 0.05);
}

TEST(Fading, AdvanceZeroOrNegativeIsNoop) {
  MultipathProfile profile;
  FadingChannel channel(profile, 9);
  const CxVec before(channel.taps().begin(), channel.taps().end());
  channel.advance(0.0);
  channel.advance(-1.0);
  for (std::size_t l = 0; l < before.size(); ++l) {
    EXPECT_EQ(channel.taps()[l], before[l]);
  }
}

TEST(Fading, SmallAdvanceChangesLittleLargeAdvanceDecorrelates) {
  MultipathProfile profile;
  profile.rician_k_linear = 0.0;  // pure Rayleigh for a clean comparison

  const auto corr = [&profile](double dt) {
    double num = 0.0, den = 0.0;
    for (int seed = 0; seed < 400; ++seed) {
      FadingChannel channel(profile, static_cast<std::uint64_t>(seed));
      const CxVec before(channel.taps().begin(), channel.taps().end());
      channel.advance(dt);
      for (std::size_t l = 0; l < before.size(); ++l) {
        num += (std::conj(before[l]) * channel.taps()[l]).real();
        den += std::norm(before[l]);
      }
    }
    return num / den;
  };

  const double short_corr = corr(1e-3);  // 1 ms at 15 Hz Doppler
  const double long_corr = corr(30e-3);  // near the Jakes first null
  EXPECT_GT(short_corr, 0.98);
  EXPECT_LT(long_corr, 0.75);
  EXPECT_GT(short_corr, long_corr);
}

TEST(Fading, ExponentialPowerDelayProfile) {
  MultipathProfile profile;
  profile.rician_k_linear = 0.0;
  std::vector<double> power(static_cast<std::size_t>(profile.num_taps), 0.0);
  const int realizations = 4000;
  for (int seed = 0; seed < realizations; ++seed) {
    FadingChannel channel(profile, static_cast<std::uint64_t>(seed));
    for (std::size_t l = 0; l < power.size(); ++l) {
      power[l] += std::norm(channel.taps()[l]);
    }
  }
  for (std::size_t l = 1; l < power.size(); ++l) {
    EXPECT_LT(power[l], power[l - 1]) << "PDP must decay at tap " << l;
  }
  // Decay constant: power[l+1]/power[l] = exp(-1/decay).
  const double ratio = power[1] / power[0];
  EXPECT_NEAR(ratio, std::exp(-1.0 / profile.decay_taps), 0.05);
}

}  // namespace
}  // namespace silence
