// Randomized full-chain properties: for arbitrary (rate, size, seed,
// control-load) combinations under benign channels, the whole pipeline
// must round-trip; under any combination it must never crash or return
// malformed structures.
#include <gtest/gtest.h>

#include "channel/fading.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "core/cos_link.h"
#include "sim/link.h"

namespace silence {
namespace {

const int kRates[] = {6, 9, 12, 18, 24, 36, 48, 54};

class ChainFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChainFuzz, PlainPhyRoundTripsOnCleanChannel) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    const Mcs& mcs = mcs_for_rate(kRates[rng.uniform_int(0, 7)]);
    const std::size_t size = rng.uniform_int(5, 2000);
    const auto seed = static_cast<std::uint8_t>(rng.uniform_int(1, 127));
    Bytes psdu = rng.bytes(size - 4);
    append_fcs(psdu);
    const CxVec samples = frame_to_samples(build_frame(psdu, mcs, seed));
    const RxPacket packet = receive_packet(samples);
    ASSERT_TRUE(packet.ok) << "rate " << mcs.data_rate_mbps << " size "
                           << size;
    EXPECT_EQ(packet.psdu, psdu);
  }
}

TEST_P(ChainFuzz, CosRoundTripsOnBenignChannel) {
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 8; ++trial) {
    const Mcs& mcs = mcs_for_rate(kRates[rng.uniform_int(0, 7)]);
    const std::size_t size = rng.uniform_int(200, 1500);
    Bytes psdu = rng.bytes(size - 4);
    append_fcs(psdu);

    // Random control subcarrier set (sorted unique, 4..12 entries).
    std::vector<int> subcarriers;
    while (subcarriers.size() < rng.uniform_int(4, 12)) {
      const int sc = static_cast<int>(rng.uniform_int(0, 47));
      if (std::find(subcarriers.begin(), subcarriers.end(), sc) ==
          subcarriers.end()) {
        subcarriers.push_back(sc);
      }
    }
    std::sort(subcarriers.begin(), subcarriers.end());

    const int k = static_cast<int>(rng.uniform_int(2, 6));
    const Bits control = rng.bits(rng.uniform_int(0, 120));

    CosTxConfig txc;
    txc.mcs = McsId::of(mcs);
    txc.control_subcarriers = subcarriers;
    txc.bits_per_interval = k;
    const CosTxPacket tx = cos_transmit(psdu, control, txc);

    // Clean channel: everything must round-trip.
    CosRxConfig rxc;
    rxc.control_subcarriers = subcarriers;
    rxc.bits_per_interval = k;
    const CosRxPacket rx = cos_receive(tx.samples, rxc);
    ASSERT_TRUE(rx.data_ok) << "rate " << mcs.data_rate_mbps;
    EXPECT_EQ(rx.psdu, psdu);
    ASSERT_GE(rx.control_bits.size(), tx.plan.bits_sent);
    for (std::size_t i = 0; i < tx.plan.bits_sent; ++i) {
      EXPECT_EQ(rx.control_bits[i], control[i]);
    }
  }
}

TEST_P(ChainFuzz, HostileInputsNeverCrash) {
  Rng rng(GetParam() + 2000);
  for (int trial = 0; trial < 10; ++trial) {
    // Garbage samples of random length: the receiver must return
    // a well-formed "no packet" result, never crash or hang.
    CxVec garbage(rng.uniform_int(0, 4000));
    for (auto& x : garbage) x = rng.complex_gaussian(2.0);
    const RxPacket packet = receive_packet(garbage);
    EXPECT_FALSE(packet.ok);

    CosRxConfig rxc;
    rxc.control_subcarriers = {5, 15, 25, 35};
    const CosRxPacket rx = cos_receive(garbage, rxc);
    EXPECT_FALSE(rx.data_ok);
    EXPECT_FALSE(rx.evm_valid);
  }
}

TEST_P(ChainFuzz, TruncatedBurstsNeverCrash) {
  Rng rng(GetParam() + 3000);
  Bytes psdu = rng.bytes(400);
  append_fcs(psdu);
  const CxVec samples = frame_to_samples(build_frame(psdu, mcs_for_rate(24)));
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t cut = rng.uniform_int(0, samples.size() - 1);
    const std::span<const Cx> truncated(samples.data(), cut);
    const RxPacket packet = receive_packet(truncated);
    // Shorter than a whole frame: must not claim success.
    EXPECT_FALSE(packet.ok);
  }
}

TEST_P(ChainFuzz, CorruptedSamplesEitherFailOrDecodeExactly) {
  // Flipping random sample values must never produce a CRC pass with
  // WRONG payload bytes (the 32-bit FCS makes this astronomically
  // unlikely; catching it here guards against accounting bugs where the
  // CRC is checked over the wrong bytes).
  Rng rng(GetParam() + 4000);
  Bytes psdu = rng.bytes(300);
  append_fcs(psdu);
  const Mcs& mcs = mcs_for_rate(12);
  const CxVec clean = frame_to_samples(build_frame(psdu, mcs));
  for (int trial = 0; trial < 10; ++trial) {
    CxVec corrupted = clean;
    const std::size_t burst_at =
        rng.uniform_int(320, corrupted.size() - 200);
    for (std::size_t n = burst_at; n < burst_at + 160; ++n) {
      corrupted[n] = rng.complex_gaussian(1.0);
    }
    const RxPacket packet = receive_packet(corrupted);
    if (packet.ok) {
      EXPECT_EQ(packet.psdu, psdu);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace silence
