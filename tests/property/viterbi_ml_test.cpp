// Property test: the Viterbi decoder is exactly maximum-likelihood.
//
// For short blocks we can brute-force every information sequence and
// compare metrics. The decoder's output must achieve the maximum
// correlation metric over all 2^N candidates — including inputs with
// erasures (zero LLRs) and adversarial random soft values.
#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "phy/convolutional.h"
#include "phy/viterbi.h"

namespace silence {
namespace {

// Correlation metric the decoder maximizes: sum (+llr/2 for coded 0,
// -llr/2 for coded 1).
double path_metric(const Bits& info, std::span<const double> llrs) {
  const Bits coded = convolutional_encode(info);
  double metric = 0.0;
  for (std::size_t i = 0; i < coded.size(); ++i) {
    metric += coded[i] ? -0.5 * llrs[i] : 0.5 * llrs[i];
  }
  return metric;
}

double best_exhaustive_metric(std::size_t n_bits,
                              std::span<const double> llrs,
                              bool terminated) {
  double best = -1e300;
  for (std::uint64_t v = 0; v < (std::uint64_t{1} << n_bits); ++v) {
    Bits info = uint_to_bits(v, static_cast<int>(n_bits));
    if (terminated) {
      // Only sequences ending in the zero state compete.
      bool tail_ok = true;
      for (std::size_t i = n_bits - 6; i < n_bits; ++i) {
        if (info[i]) {
          tail_ok = false;
          break;
        }
      }
      if (!tail_ok) continue;
    }
    best = std::max(best, path_metric(info, llrs));
  }
  return best;
}

class ViterbiMl : public ::testing::TestWithParam<int> {};

TEST_P(ViterbiMl, MatchesExhaustiveSearchOnRandomSoftInputs) {
  const ViterbiDecoder decoder;
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n_bits = 10;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> llrs(2 * n_bits);
    for (auto& v : llrs) {
      // Mix of confident values, weak values, and erasures.
      const double u = rng.uniform();
      if (u < 0.2) {
        v = 0.0;
      } else {
        v = (rng.uniform() - 0.5) * 8.0;
      }
    }
    const Bits decoded = decoder.decode(llrs, /*terminated=*/false);
    const double decoder_metric = path_metric(decoded, llrs);
    const double best = best_exhaustive_metric(n_bits, llrs, false);
    EXPECT_NEAR(decoder_metric, best, 1e-9)
        << "trial " << trial << ": decoder found a sub-optimal path";
  }
}

TEST_P(ViterbiMl, MatchesExhaustiveSearchTerminated) {
  const ViterbiDecoder decoder;
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const std::size_t n_bits = 10;  // last 6 forced to zero by termination
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> llrs(2 * n_bits);
    for (auto& v : llrs) v = (rng.uniform() - 0.5) * 6.0;
    const Bits decoded = decoder.decode(llrs, /*terminated=*/true);
    // Termination must hold: the decoded sequence ends in state 0.
    int state = 0;
    for (auto bit : decoded) state = conv_next_state(state, bit);
    EXPECT_EQ(state, 0);
    const double decoder_metric = path_metric(decoded, llrs);
    const double best = best_exhaustive_metric(n_bits, llrs, true);
    EXPECT_NEAR(decoder_metric, best, 1e-9) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViterbiMl, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace silence
