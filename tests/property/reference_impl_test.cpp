// Cross-checks of optimized implementations against slow textbook
// reference implementations.
#include <cmath>
#include <complex>
#include <gtest/gtest.h>
#include <numbers>

#include "channel/fading.h"
#include "common/rng.h"
#include "dsp/fft.h"
#include "phy/modulation.h"

namespace silence {
namespace {

// O(N^2) DFT straight from the definition.
CxVec naive_dft(std::span<const Cx> x, bool inverse) {
  const std::size_t n = x.size();
  CxVec out(n, Cx{0.0, 0.0});
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>(k * t) /
                           static_cast<double>(n);
      out[k] += x[t] * Cx{std::cos(angle), std::sin(angle)};
    }
    if (inverse) out[k] /= static_cast<double>(n);
  }
  return out;
}

class FftVsNaive : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftVsNaive, ForwardMatches) {
  Rng rng(GetParam());
  CxVec x(GetParam());
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  const CxVec fast = fft(x);
  const CxVec slow = naive_dft(x, false);
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(std::abs(fast[k] - slow[k]), 0.0, 1e-8) << "bin " << k;
  }
}

TEST_P(FftVsNaive, InverseMatches) {
  Rng rng(GetParam() + 100);
  CxVec x(GetParam());
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  const CxVec fast = ifft(x);
  const CxVec slow = naive_dft(x, true);
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(std::abs(fast[k] - slow[k]), 0.0, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftVsNaive,
                         ::testing::Values(2, 8, 64, 128));

TEST(ReferenceImpl, MaxLogLlrMatchesBruteForceSubsetMinima) {
  // The separable per-axis demodulator must agree with the direct
  // definition: llr_i = (min_{x: bit_i=1} |y-x|^2
  //                      - min_{x: bit_i=0} |y-x|^2) / noise_var.
  Rng rng(7);
  for (Modulation mod : {Modulation::kBpsk, Modulation::kQpsk,
                         Modulation::kQam16, Modulation::kQam64}) {
    const int n = bits_per_symbol(mod);
    const auto points = constellation(mod);
    for (int trial = 0; trial < 40; ++trial) {
      const Cx y = rng.complex_gaussian(2.0);
      const double noise_var = 0.1 + rng.uniform();
      std::vector<double> fast;
      demod_llrs(y, mod, noise_var, fast);
      for (int b = 0; b < n; ++b) {
        double best0 = 1e300, best1 = 1e300;
        for (std::size_t v = 0; v < points.size(); ++v) {
          const bool bit_is_one = ((v >> (n - 1 - b)) & 1U) != 0;
          const double dist = std::norm(y - points[v]);
          (bit_is_one ? best1 : best0) =
              std::min(bit_is_one ? best1 : best0, dist);
        }
        const double reference = (best1 - best0) / noise_var;
        EXPECT_NEAR(fast[static_cast<std::size_t>(b)], reference,
                    1e-9 * (1.0 + std::abs(reference)))
            << to_string(mod) << " bit " << b;
      }
    }
  }
}

TEST(ReferenceImpl, GaussMarkovMatchesJakesAutocorrelation) {
  // The channel's advance() implements rho = J0(2 pi fd dt); verify the
  // realized tap autocorrelation against the Bessel value.
  MultipathProfile profile;
  profile.rician_k_linear = 0.0;
  profile.doppler_hz = 20.0;
  for (double dt : {1e-3, 3e-3, 6e-3}) {
    const double expected =
        std::max(0.0, std::cyl_bessel_j(0.0, 2.0 * std::numbers::pi *
                                                 profile.doppler_hz * dt));
    double num = 0.0, den = 0.0;
    for (int seed = 0; seed < 600; ++seed) {
      FadingChannel channel(profile, static_cast<std::uint64_t>(seed));
      const CxVec before(channel.taps().begin(), channel.taps().end());
      channel.advance(dt);
      for (std::size_t l = 0; l < before.size(); ++l) {
        num += (std::conj(before[l]) * channel.taps()[l]).real();
        den += std::norm(before[l]);
      }
    }
    EXPECT_NEAR(num / den, expected, 0.04) << "dt " << dt;
  }
}

TEST(ReferenceImpl, FrequencyResponseMatchesNaiveDft) {
  MultipathProfile profile;
  FadingChannel channel(profile, 3);
  const auto fast = channel.frequency_response();
  CxVec padded(kFftSize, Cx{0.0, 0.0});
  for (std::size_t l = 0; l < channel.taps().size(); ++l) {
    padded[l] = channel.taps()[l];
  }
  const CxVec slow = naive_dft(padded, false);
  for (int k = 0; k < kFftSize; ++k) {
    EXPECT_NEAR(std::abs(fast[static_cast<std::size_t>(k)] -
                         slow[static_cast<std::size_t>(k)]),
                0.0, 1e-9);
  }
}

}  // namespace
}  // namespace silence
