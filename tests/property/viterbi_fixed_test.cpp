// Fixed-point Viterbi equivalence fuzz suite.
//
// decode_fixed()'s contract (phy/viterbi.h): for any input of at most
// kMaxFixedSteps trellis steps, its output is bit-identical to the exact
// double-precision decode() run on the *quantized* LLRs. These tests fuzz
// that contract across every code rate and puncturing pattern the chain
// uses, erasure-heavy streams (the EVD mechanism: LLR = 0 positions),
// saturation extremes (huge/tiny magnitudes, +-inf, NaN), and both
// terminated and unterminated traceback.
#include <cmath>
#include <gtest/gtest.h>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "phy/convolutional.h"
#include "phy/params.h"
#include "phy/puncture.h"
#include "phy/viterbi.h"

namespace silence {
namespace {

// The reference path: quantize exactly as decode_fixed does, then run the
// exact double kernel on the quantized values.
Bits reference_decode(const ViterbiDecoder& decoder,
                      std::span<const double> llrs, bool terminated) {
  std::vector<std::int16_t> q(llrs.size());
  ViterbiDecoder::quantize_llrs(llrs, q);
  std::vector<double> as_double(q.begin(), q.end());
  return decoder.decode(as_double, terminated);
}

void expect_equivalent(const ViterbiDecoder& decoder,
                       const std::vector<double>& llrs,
                       const std::string& label) {
  for (const bool terminated : {true, false}) {
    const Bits expected = reference_decode(decoder, llrs, terminated);
    const Bits fixed = decoder.decode_fixed(llrs, terminated);
    ASSERT_EQ(fixed, expected)
        << label << " (terminated=" << terminated << ")";
  }
}

// Noisy LLR stream for `info_bits` information bits at code `rate`,
// punctured positions carried as exact zeros (as depuncture_llrs emits).
std::vector<double> chain_llrs(Rng& rng, std::size_t info_bits,
                               CodeRate rate, double erasure_prob) {
  Bits info = rng.bits(info_bits);
  info.insert(info.end(), 6, 0);  // tail
  const Bits mother = convolutional_encode(info);
  const Bits sent = puncture(mother, rate);
  std::vector<double> noisy(sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    const double clean = sent[i] ? -1.0 : 1.0;
    noisy[i] = 2.0 * clean + rng.gaussian();
    if (rng.uniform() < erasure_prob) noisy[i] = 0.0;  // silenced symbol
  }
  const Llrs full = depuncture_llrs(noisy, rate, mother.size());
  return full;
}

TEST(ViterbiFixedEquivalence, AllRatesRandomNoise) {
  const ViterbiDecoder decoder;
  Rng rng(1);
  const CodeRate rates[] = {CodeRate::kRate1of2, CodeRate::kRate2of3,
                            CodeRate::kRate3of4};
  for (const CodeRate rate : rates) {
    for (int trial = 0; trial < 25; ++trial) {
      // Multiple of 6 keeps every puncturing pattern period-aligned.
      const std::size_t info_bits = 66 + 6 * rng.uniform_int(0, 200);
      const auto llrs = chain_llrs(rng, info_bits, rate, 0.0);
      expect_equivalent(decoder, llrs,
                        "rate=" + std::to_string(static_cast<int>(rate)) +
                            " trial=" + std::to_string(trial));
    }
  }
}

TEST(ViterbiFixedEquivalence, ErasureHeavyStreams) {
  // EVD inputs: large fractions of exact-zero LLRs (silenced subcarriers
  // plus punctured positions) must decode identically.
  const ViterbiDecoder decoder;
  Rng rng(2);
  for (const double erasures : {0.2, 0.5, 0.9}) {
    for (int trial = 0; trial < 10; ++trial) {
      const auto llrs = chain_llrs(rng, 510, CodeRate::kRate3of4, erasures);
      expect_equivalent(decoder, llrs,
                        "erasures=" + std::to_string(erasures));
    }
  }
}

TEST(ViterbiFixedEquivalence, AllZeroInput) {
  const ViterbiDecoder decoder;
  const std::vector<double> llrs(2 * 200, 0.0);
  expect_equivalent(decoder, llrs, "all-zero");
}

TEST(ViterbiFixedEquivalence, SaturationExtremes) {
  // Mixed magnitudes spanning ~600 orders: block normalization must keep
  // the big values at +-kQuantMax and flush the tiny ones to zero, both
  // paths agreeing bit for bit.
  const ViterbiDecoder decoder;
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> llrs(2 * 300);
    for (auto& v : llrs) {
      switch (rng.uniform_int(0, 3)) {
        case 0: v = (rng.uniform() - 0.5) * 2e300; break;
        case 1: v = (rng.uniform() - 0.5) * 2e-300; break;
        case 2: v = (rng.uniform() - 0.5) * 8.0; break;
        default: v = 0.0; break;
      }
    }
    expect_equivalent(decoder, llrs, "saturation trial " +
                                         std::to_string(trial));
  }
}

TEST(ViterbiFixedEquivalence, NonFiniteInputs) {
  // quantize_llrs maps NaN -> 0 (erasure) and +-inf -> +-kQuantMax; the
  // fixed path must agree with the reference on such streams too.
  const ViterbiDecoder decoder;
  Rng rng(4);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> llrs(2 * 150);
  for (auto& v : llrs) {
    switch (rng.uniform_int(0, 4)) {
      case 0: v = kInf; break;
      case 1: v = -kInf; break;
      case 2: v = kNan; break;
      default: v = rng.gaussian(); break;
    }
  }
  expect_equivalent(decoder, llrs, "non-finite");
}

TEST(ViterbiFixedEquivalence, QuantizeLlrsProperties) {
  // Zero stays exactly zero (erasures survive quantization) and the block
  // maximum hits exactly +-kQuantMax.
  const std::vector<double> llrs = {0.0, 3.5, -7.0, 0.0, 1.75,
                                    -0.0, 7.0,  -3.5};
  std::vector<std::int16_t> q(llrs.size());
  ViterbiDecoder::quantize_llrs(llrs, q);
  EXPECT_EQ(q[0], 0);
  EXPECT_EQ(q[3], 0);
  EXPECT_EQ(q[5], 0);
  EXPECT_EQ(q[2], -ViterbiDecoder::kQuantMax);
  EXPECT_EQ(q[6], ViterbiDecoder::kQuantMax);
  EXPECT_EQ(q[1], (ViterbiDecoder::kQuantMax + 1) / 2);  // 3.5/7 rounded
}

TEST(ViterbiFixedEquivalence, HardDecisionsMatchEncoder) {
  // Clean +-4 LLRs at every rate: both kernels must recover the exact
  // transmitted bits (not just agree with each other).
  const ViterbiDecoder decoder;
  Rng rng(5);
  const CodeRate rates[] = {CodeRate::kRate1of2, CodeRate::kRate2of3,
                            CodeRate::kRate3of4};
  for (const CodeRate rate : rates) {
    Bits info = rng.bits(798);  // +6 tail bits stays period-aligned
    Bits padded = info;
    padded.insert(padded.end(), 6, 0);
    const Bits mother = convolutional_encode(padded);
    const Bits sent = puncture(mother, rate);
    std::vector<double> clean(sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
      clean[i] = sent[i] ? -4.0 : 4.0;
    }
    const Llrs full = depuncture_llrs(clean, rate, mother.size());
    const Bits fixed = decoder.decode_fixed(full, true);
    const Bits exact = decoder.decode(full, true);
    ASSERT_EQ(fixed.size(), padded.size());
    for (std::size_t i = 0; i < info.size(); ++i) {
      ASSERT_EQ(fixed[i], info[i]) << "bit " << i;
      ASSERT_EQ(exact[i], info[i]) << "bit " << i;
    }
  }
}

TEST(ViterbiFixedEquivalence, OversizeInputFallsBackToExact) {
  // Past kMaxFixedSteps the fixed path defers to the double kernel, so
  // the outputs must be identical to decode() on the *unquantized* LLRs.
  const ViterbiDecoder decoder;
  Rng rng(6);
  const std::size_t steps = ViterbiDecoder::kMaxFixedSteps + 64;
  std::vector<double> llrs(2 * steps);
  for (auto& v : llrs) v = 2.0 * rng.gaussian();
  EXPECT_EQ(decoder.decode_fixed(llrs, false), decoder.decode(llrs, false));
}

}  // namespace
}  // namespace silence
