// Parameterized rate x k sweep of the full CoS pipeline on benign
// channels: whatever combination an application picks, data and control
// must round-trip.
#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/rng.h"
#include "core/cos_link.h"

namespace silence {
namespace {

struct SweepParams {
  int rate_mbps;
  int k;
};

class RateKSweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(RateKSweep, CleanRoundTrip) {
  const auto [rate, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(rate) * 31 +
          static_cast<std::uint64_t>(k));
  Bytes psdu = rng.bytes(1196);
  append_fcs(psdu);
  // Load scaled to k: small k produces dense silence clusters (short
  // intervals), large k produces long intervals that need grid room —
  // both extremes are real capacity limits, not decoding requirements.
  const int intervals = k <= 2 ? 8 : (k <= 4 ? 6 : 3);
  const Bits control =
      rng.bits(static_cast<std::size_t>(k) * static_cast<std::size_t>(intervals));

  CosTxConfig txc;
  txc.mcs = McsId::for_rate(rate);
  txc.control_subcarriers = k >= 5 ? std::vector<int>{7, 19, 31, 43}
                                    : std::vector<int>{7, 23, 39};
  txc.bits_per_interval = k;
  const CosTxPacket tx = cos_transmit(psdu, control, txc);
  ASSERT_EQ(tx.plan.bits_sent, control.size());

  CosRxConfig rxc;
  rxc.control_subcarriers = txc.control_subcarriers;
  rxc.bits_per_interval = k;
  const CosRxPacket rx = cos_receive(tx.samples, rxc);
  ASSERT_TRUE(rx.data_ok);
  EXPECT_EQ(rx.psdu, psdu);
  ASSERT_GE(rx.control_bits.size(), control.size());
  for (std::size_t i = 0; i < control.size(); ++i) {
    EXPECT_EQ(rx.control_bits[i], control[i]);
  }
}

std::vector<SweepParams> all_combinations() {
  std::vector<SweepParams> params;
  for (int rate : {6, 9, 12, 18, 24, 36, 48, 54}) {
    for (int k : {1, 2, 3, 4, 5, 6}) {
      params.push_back({rate, k});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RateKSweep, ::testing::ValuesIn(all_combinations()),
    [](const ::testing::TestParamInfo<SweepParams>& info) {
      return "Rate" + std::to_string(info.param.rate_mbps) + "K" +
             std::to_string(info.param.k);
    });

}  // namespace
}  // namespace silence
