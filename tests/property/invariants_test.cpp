// Randomized invariants of the CoS building blocks.
#include <algorithm>
#include <gtest/gtest.h>
#include <numeric>
#include <set>

#include "common/rng.h"
#include "core/interval_code.h"
#include "core/silence_plan.h"
#include "core/subcarrier_selection.h"
#include "phy/interleaver.h"
#include "phy/puncture.h"
#include "phy/scrambler.h"

namespace silence {
namespace {

class Invariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Invariants, IntervalCodecIsLossless) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const int k = static_cast<int>(rng.uniform_int(1, 8));
    const Bits bits =
        rng.bits(static_cast<std::size_t>(k) * rng.uniform_int(0, 60));
    const auto intervals = bits_to_intervals(bits, k);
    EXPECT_EQ(intervals_to_bits(intervals, k), bits);
    // Tolerant decode of valid intervals is identical to strict decode.
    EXPECT_EQ(intervals_to_bits_tolerant(intervals, k), bits);
  }
}

TEST_P(Invariants, PlanAndMaskAreDual) {
  Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 30; ++trial) {
    const int k = static_cast<int>(rng.uniform_int(2, 6));
    const int symbols = static_cast<int>(rng.uniform_int(4, 120));
    std::set<int> chosen;
    const std::size_t count = rng.uniform_int(1, 16);
    while (chosen.size() < count) {
      chosen.insert(static_cast<int>(rng.uniform_int(0, 47)));
    }
    const std::vector<int> subcarriers(chosen.begin(), chosen.end());
    const Bits bits =
        rng.bits(static_cast<std::size_t>(k) * rng.uniform_int(0, 100));

    const SilencePlan plan = plan_silences(bits, symbols, subcarriers, k);
    // bits_sent is a k-multiple prefix of the message.
    EXPECT_EQ(plan.bits_sent % static_cast<std::size_t>(k), 0u);
    EXPECT_LE(plan.bits_sent, bits.size());
    // The mask decodes back to exactly the sent prefix.
    const auto intervals = mask_to_intervals(plan.mask, subcarriers);
    const Bits decoded = intervals_to_bits(intervals, k);
    ASSERT_GE(decoded.size(), plan.bits_sent);
    for (std::size_t i = 0; i < plan.bits_sent; ++i) {
      EXPECT_EQ(decoded[i], bits[i]);
    }
    // Mask population count equals the reported silence count.
    std::size_t population = 0;
    for (const auto& row : plan.mask) {
      for (auto cell : row) population += cell;
    }
    EXPECT_EQ(population, plan.silence_count);
  }
}

TEST_P(Invariants, InterleaverIsAPermutationForEveryRate) {
  for (const Mcs& mcs : all_mcs()) {
    const auto perm = interleaver_permutation(mcs.n_cbps, mcs.n_bpsc);
    std::vector<int> sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < mcs.n_cbps; ++i) {
      ASSERT_EQ(sorted[static_cast<std::size_t>(i)], i)
          << to_string(mcs.modulation);
    }
  }
}

TEST_P(Invariants, PunctureDepunctureIsPositionFaithful) {
  Rng rng(GetParam() + 2);
  for (const CodeRate rate :
       {CodeRate::kRate1of2, CodeRate::kRate2of3, CodeRate::kRate3of4}) {
    const std::size_t period =
        rate == CodeRate::kRate1of2 ? 2 : (rate == CodeRate::kRate2of3 ? 4 : 6);
    const std::size_t mother_bits = period * rng.uniform_int(5, 60);
    // Use distinct marker values so any reordering would be visible.
    std::vector<double> markers(mother_bits);
    for (std::size_t i = 0; i < mother_bits; ++i) {
      markers[i] = static_cast<double>(i + 1);
    }
    // Puncture a parallel bit stream to learn the surviving positions.
    Bits index_bits(mother_bits);
    for (std::size_t i = 0; i < mother_bits; ++i) {
      index_bits[i] = static_cast<std::uint8_t>(i % 2);
    }
    const std::size_t kept = punctured_length(mother_bits, rate);
    // Build the punctured marker stream by hand via puncture() on bytes
    // of an identity-tagged vector is impossible (Bits are uint8), so
    // verify through depuncture: it must place the i-th surviving marker
    // at the i-th kept position and 0 elsewhere.
    std::vector<double> survivors;
    survivors.reserve(kept);
    for (std::size_t i = 0; i < kept; ++i) {
      survivors.push_back(static_cast<double>(i + 1000));
    }
    const Llrs restored = depuncture_llrs(survivors, rate, mother_bits);
    ASSERT_EQ(restored.size(), mother_bits);
    std::size_t seen = 0;
    for (double v : restored) {
      if (v != 0.0) {
        EXPECT_EQ(v, static_cast<double>(seen + 1000));
        ++seen;
      }
    }
    EXPECT_EQ(seen, kept);
  }
}

TEST_P(Invariants, ScramblerIsInvolutionForAnySeed) {
  Rng rng(GetParam() + 3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto seed = static_cast<std::uint8_t>(rng.uniform_int(1, 127));
    const Bits plain = rng.bits(rng.uniform_int(1, 500));
    Scrambler a(seed), b(seed);
    EXPECT_EQ(b.apply(a.apply(plain)), plain);
  }
}

TEST_P(Invariants, SelectionRespectsBoundsAndOrder) {
  Rng rng(GetParam() + 4);
  for (int trial = 0; trial < 30; ++trial) {
    SubcarrierEvm evm{};
    for (auto& v : evm) v = rng.uniform() * 0.5;
    std::vector<std::uint8_t> detectable(kNumDataSubcarriers);
    for (auto& d : detectable) {
      d = static_cast<std::uint8_t>(rng.uniform() < 0.6);
    }
    const int min_count = static_cast<int>(rng.uniform_int(0, 10));
    const int max_count =
        min_count + static_cast<int>(rng.uniform_int(0, 20));
    const Modulation mod = static_cast<Modulation>(rng.uniform_int(0, 3));
    const auto selected = select_control_subcarriers(
        evm, mod, min_count, std::min(max_count, kNumDataSubcarriers),
        detectable);
    EXPECT_LE(selected.size(),
              static_cast<std::size_t>(std::min(max_count,
                                                kNumDataSubcarriers)));
    EXPECT_TRUE(std::is_sorted(selected.begin(), selected.end()));
    for (int sc : selected) {
      EXPECT_TRUE(detectable[static_cast<std::size_t>(sc)]);
    }
    // Round-trips through the feedback vector codec.
    EXPECT_EQ(decode_selection_vector(encode_selection_vector(selected)),
              selected);
    const auto [row1, row2] = encode_selection_vector_robust(selected);
    EXPECT_EQ(decode_selection_vector_robust(row1, row2), selected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Invariants,
                         ::testing::Values(7, 17, 27, 37));

}  // namespace
}  // namespace silence
