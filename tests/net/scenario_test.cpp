#include "net/scenario.h"

#include <gtest/gtest.h>

#include <cmath>

#include "phy/batch.h"
#include "runner/json.h"
#include "runner/sweep.h"

namespace silence::net {
namespace {

Scenario test_scenario(int stations) {
  Scenario sc;
  sc.topology.bss[0].num_stations = stations;
  sc.duration_us = 8e3;  // short: keep unit runs quick
  return sc;
}

TEST(Scenario, JsonRoundTripsEveryField) {
  Scenario sc = test_scenario(5);
  sc.mpdu_octets = 300;
  sc.max_mpdus_per_frame = 2;
  sc.topology.bss[0].snr_db_near = 21.5;
  sc.topology.bss[0].snr_db_far = 9.25;
  sc.topology.bss.push_back({.channel = 40, .num_stations = 3});
  sc.topology.carrier_sense.assign(8 * 8, 1);
  sc.topology.carrier_sense[1] = 0;
  sc.topology.obss_pulse_power = 1.5;
  sc.topology.adjacent_leak = 0.5;
  sc.traffic.kind = TrafficModel::Kind::kOnOff;
  sc.traffic.arrival_rate_fps = 1500.0;
  sc.traffic.mean_on_us = 2500.0;
  sc.traffic.mean_off_us = 3500.0;
  sc.control_bits_per_frame = 32;
  sc.cos.bits_per_interval = 3;
  sc.cos.control_subcarriers = {4, 5, 6, 7};
  sc.profile.doppler_hz = 3.5;
  sc.fixed_rate_mbps = 24;
  sc.use_selection_feedback = false;

  const Scenario back = Scenario::from_json(sc.to_json());
  EXPECT_EQ(back, sc);
  // The serializer is deterministic, so JSON equality must hold too —
  // including every double's exact bit pattern.
  EXPECT_EQ(back.to_json().dump_compact(), sc.to_json().dump_compact());
}

TEST(Scenario, JsonRoundTripsDefaults) {
  const Scenario sc;
  EXPECT_EQ(Scenario::from_json(sc.to_json()), sc);
}

TEST(Scenario, FromJsonRejectsMissingFields) {
  const runner::Json full = Scenario{}.to_json();
  for (const auto& [key, value] : full.as_object()) {
    runner::Json pruned = runner::Json::object();
    for (const auto& [k, v] : full.as_object()) {
      if (k != key) pruned.set(k, v);
    }
    EXPECT_THROW(Scenario::from_json(pruned), std::runtime_error)
        << "missing '" << key << "' was accepted";
  }
}

TEST(RunScenario, RejectsMalformedScenarios) {
  Scenario sc = test_scenario(0);
  EXPECT_THROW(run_scenario(sc, 1), std::invalid_argument);
  sc = test_scenario(2);
  sc.duration_us = 0.0;
  EXPECT_THROW(run_scenario(sc, 1), std::invalid_argument);
  sc = test_scenario(2);
  sc.mpdu_octets = 5000;  // cannot fit one subframe into a PPDU
  EXPECT_THROW(run_scenario(sc, 1), std::invalid_argument);
}

TEST(RunScenario, OutcomeIsAPureFunctionOfScenarioAndSeed) {
  const Scenario sc = test_scenario(4);
  const NetResult first = run_scenario(sc, 7);
  const NetResult second = run_scenario(sc, 7);
  EXPECT_EQ(first.to_json().dump_compact(), second.to_json().dump_compact());

  const NetResult other = run_scenario(sc, 8);
  EXPECT_NE(first.to_json().dump_compact(), other.to_json().dump_compact());
}

TEST(RunScenario, BatchedEngineIsByteIdenticalToScalar) {
  // run_scenario routes every session through the shared batched-PHY
  // workspace by default; the scalar chain (the engine switch off) must
  // produce the identical NetResult down to every serialized bit.
  const Scenario sc = test_scenario(5);
  const NetResult batched = run_scenario(sc, 99);
  set_phy_batch_enabled(false);
  const NetResult scalar = run_scenario(sc, 99);
  set_phy_batch_enabled(true);
  EXPECT_EQ(batched.to_json().dump_compact(), scalar.to_json().dump_compact());
}

TEST(RunScenario, DeliversDataAndFreeControlBits) {
  const NetResult r = run_scenario(test_scenario(4), 3);
  EXPECT_GT(r.aggregate_throughput_mbps(), 1.0);
  EXPECT_GT(r.control_goodput_kbps(), 0.0);
  // CoS control rides inside data frames: DCF never spends explicit
  // control airtime.
  EXPECT_EQ(r.airtime.control_us, 0.0);
  EXPECT_GT(r.jain_fairness(), 0.0);
  EXPECT_LE(r.jain_fairness(), 1.0 + 1e-12);
  std::size_t mpdus = 0;
  for (const StaStats& s : r.stations) mpdus += s.mpdus_delivered;
  EXPECT_GT(mpdus, 0u);
}

// MAC scheduler invariants under the net/ scheduler: every contention
// round resolves to exactly one transmitter or a collision of >= 2
// stations, and the accounted airtime partitions the elapsed time.
TEST(RunScenario, SchedulerInvariantsHold) {
  const Scenario sc = test_scenario(8);
  const NetResult r = run_scenario(sc, 11);

  ASSERT_EQ(r.stations.size(), 8u);
  EXPECT_EQ(r.tx_rounds + r.collision_rounds, r.contention_rounds);

  // No two winners per slot: each tx round has exactly one transmitter.
  std::size_t sta_tx = 0, sta_collisions = 0;
  for (const StaStats& s : r.stations) {
    sta_tx += s.tx_rounds;
    sta_collisions += s.collisions;
  }
  EXPECT_EQ(sta_tx, r.tx_rounds);
  // Every collision round involved at least two stations.
  EXPECT_GE(sta_collisions, 2 * r.collision_rounds);

  // Airtime accounting: the breakdown partitions the elapsed time, and
  // the data share is exactly the per-station PPDU airtimes.
  EXPECT_NEAR(r.airtime.total_us(), r.elapsed_us, 1e-6 * r.elapsed_us);
  double sta_air = 0.0;
  for (const StaStats& s : r.stations) sta_air += s.data_airtime_us;
  EXPECT_NEAR(sta_air, r.airtime.data_us, 1e-9 * r.airtime.data_us + 1e-9);
}

// Aggregation airtime accounting: with a fixed rate every PPDU is the
// same size, so data airtime must be an exact multiple of one frame's
// airtime.
TEST(RunScenario, AggregationAirtimeIsPerFrameConstant) {
  Scenario sc = test_scenario(2);
  sc.fixed_rate_mbps = 12;
  const NetResult r = run_scenario(sc, 5);
  ASSERT_GT(r.tx_rounds, 0u);
  const double per_frame = r.airtime.data_us / static_cast<double>(r.tx_rounds);
  for (const StaStats& s : r.stations) {
    if (s.tx_rounds == 0) continue;
    EXPECT_NEAR(s.data_airtime_us,
                per_frame * static_cast<double>(s.tx_rounds),
                1e-6 * s.data_airtime_us);
  }
}

TEST(NetResult, MergeAccumulatesAndChecksShape) {
  const Scenario sc = test_scenario(3);
  const NetResult a = run_scenario(sc, 21);
  const NetResult b = run_scenario(sc, 22);
  NetResult merged;  // empty adopts
  merged += a;
  merged += b;
  ASSERT_EQ(merged.stations.size(), 3u);
  EXPECT_EQ(merged.contention_rounds,
            a.contention_rounds + b.contention_rounds);
  EXPECT_DOUBLE_EQ(merged.elapsed_us, a.elapsed_us + b.elapsed_us);
  EXPECT_EQ(merged.stations[0].data_bits,
            a.stations[0].data_bits + b.stations[0].data_bits);

  NetResult wrong = run_scenario(test_scenario(2), 1);
  EXPECT_THROW(wrong += a, std::invalid_argument);
}

TEST(SlotHist, RecordTracksCountSumMinMax) {
  SlotHist h;
  EXPECT_TRUE(h.buckets.empty());  // empty until the first sample
  h.record(5);
  h.record(100);
  h.record(1);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 106u);
  EXPECT_EQ(h.min, 1u);
  EXPECT_EQ(h.max, 100u);
  EXPECT_FALSE(h.buckets.empty());
  EXPECT_NEAR(h.mean(), 106.0 / 3.0, 1e-12);
}

TEST(SlotHist, JsonRoundTripsExactly) {
  SlotHist h;
  for (std::uint64_t v : {0ull, 1ull, 7ull, 63ull, 4096ull}) h.record(v);
  const SlotHist back = SlotHist::from_json(h.to_json());
  EXPECT_EQ(back, h);
  EXPECT_EQ(back.to_json().dump_compact(), h.to_json().dump_compact());
  // Empty histograms round-trip too (no buckets array content).
  const SlotHist empty;
  EXPECT_EQ(SlotHist::from_json(empty.to_json()), empty);
}

TEST(SlotHist, MergeMatchesRecordingEverythingIntoOne) {
  SlotHist a, b, all;
  for (std::uint64_t v : {3ull, 17ull, 200ull}) {
    a.record(v);
    all.record(v);
  }
  for (std::uint64_t v : {1ull, 900ull}) {
    b.record(v);
    all.record(v);
  }
  SlotHist merged = a;
  merged += b;
  EXPECT_EQ(merged, all);
  // Merging an empty side is the identity, both directions.
  SlotHist empty;
  merged += empty;
  EXPECT_EQ(merged, all);
  empty += all;
  EXPECT_EQ(empty, all);
}

TEST(SlotHist, QuantilesAreOrderedAndBracketed) {
  SlotHist h;
  for (std::uint64_t v = 1; v <= 500; ++v) h.record(v);
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, static_cast<double>(h.min));
  EXPECT_LE(p99, static_cast<double>(h.max));
}

TEST(SlotHist, FromJsonRejectsMalformedDocs) {
  SlotHist h;
  h.record(9);
  const runner::Json full = h.to_json();
  for (const auto& [key, value] : full.as_object()) {
    runner::Json pruned = runner::Json::object();
    for (const auto& [k, v] : full.as_object()) {
      if (k != key) pruned.set(k, v);
    }
    EXPECT_THROW(SlotHist::from_json(pruned), std::runtime_error)
        << "missing '" << key << "' was accepted";
  }
  // More buckets than the fixed layout holds.
  runner::Json too_many = runner::Json::object();
  for (const auto& [k, v] : full.as_object()) {
    if (k != "buckets") too_many.set(k, v);
  }
  runner::Json buckets = runner::Json::array();
  for (int i = 0; i < 64; ++i) buckets.push_back(1);
  too_many.set("buckets", std::move(buckets));
  EXPECT_THROW(SlotHist::from_json(too_many), std::runtime_error);
}

// The queueing view must be consistent with the scheduler tallies:
// every winning TX records one head-of-line wait, and consecutive wins
// of one station are one fewer than its TX count.
TEST(RunScenario, LatencyHistogramsMatchSchedulerCounts) {
  const NetResult r = run_scenario(test_scenario(6), 13);
  ASSERT_GT(r.tx_rounds, 0u);
  for (const StaStats& s : r.stations) {
    EXPECT_EQ(s.hol_wait_slots.count, s.tx_rounds);
    EXPECT_EQ(s.inter_tx_gap_slots.count,
              s.tx_rounds > 0 ? s.tx_rounds - 1 : 0u);
  }
}

// The determinism regression the runner contract promises: a 16-station
// scenario swept at 1, 2 and 8 threads reduces to byte-identical JSON.
TEST(RunScenario, SweepIsBitIdenticalAcrossThreadCounts) {
  Scenario sc = test_scenario(16);
  sc.duration_us = 4e3;
  runner::SweepGrid<int> grid;
  grid.points = {16};
  grid.trials = 4;
  grid.base_seed = 99;

  std::vector<std::string> digests;
  for (const int threads : {1, 2, 8}) {
    const auto outcome = runner::run_sweep(
        grid, {.threads = threads, .chunk = 1},
        [&](const int&, const runner::TrialContext& ctx) {
          return run_scenario(sc, ctx.seed);
        });
    ASSERT_EQ(outcome.point_results.size(), 1u);
    digests.push_back(outcome.point_results[0].to_json().dump_compact());
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
}

}  // namespace
}  // namespace silence::net
