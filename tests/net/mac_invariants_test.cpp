// MAC-layer invariants the net/ scheduler leans on: the backoff
// counter's slot distribution (contention probabilities) and the BEB
// window trajectory under collisions.
#include <gtest/gtest.h>

#include <array>

#include "common/rng.h"
#include "mac/backoff.h"
#include "mac/timing.h"

namespace silence {
namespace {

// A fresh counter is uniform over [0, CWmin]: each of the 16 slots gets
// ~1/16 of the draws. 16k draws, loose +-30% bound per bin (a broken
// uniform would be far outside).
TEST(MacInvariants, BackoffSlotCountsAreUniformOverCwMin) {
  Rng rng(42);
  Backoff backoff;
  constexpr int kDraws = 16000;
  std::array<int, kCwMin + 1> histogram{};
  for (int i = 0; i < kDraws; ++i) {
    backoff.restart(rng);
    ASSERT_GE(backoff.counter(), 0);
    ASSERT_LE(backoff.counter(), kCwMin);
    ++histogram[static_cast<std::size_t>(backoff.counter())];
  }
  const double expected = static_cast<double>(kDraws) / (kCwMin + 1);
  for (int slot = 0; slot <= kCwMin; ++slot) {
    EXPECT_GT(histogram[static_cast<std::size_t>(slot)], 0.7 * expected)
        << "slot " << slot;
    EXPECT_LT(histogram[static_cast<std::size_t>(slot)], 1.3 * expected)
        << "slot " << slot;
  }
}

// Collisions double the window up to CWmax; success snaps back to CWmin.
TEST(MacInvariants, WindowDoublesOnCollisionAndResetsOnSuccess) {
  Rng rng(7);
  Backoff backoff;
  backoff.restart(rng);
  EXPECT_EQ(backoff.window(), kCwMin);
  int expected = kCwMin;
  for (int i = 0; i < 10; ++i) {
    backoff.on_collision(rng);
    expected = std::min(2 * expected + 1, kCwMax);
    EXPECT_EQ(backoff.window(), expected);
    EXPECT_LE(backoff.counter(), backoff.window());
  }
  EXPECT_EQ(backoff.window(), kCwMax);
  backoff.on_success(rng);
  EXPECT_EQ(backoff.window(), kCwMin);
}

// consume() never underflows and reaches zero exactly when told to.
TEST(MacInvariants, ConsumeDrainsTheCounter) {
  Rng rng(3);
  Backoff backoff;
  for (int i = 0; i < 200; ++i) {
    backoff.restart(rng);
    const int counter = backoff.counter();
    backoff.consume(counter);
    EXPECT_EQ(backoff.counter(), 0);
  }
}

}  // namespace
}  // namespace silence
