// MAC-timeline tracer (net/timeline.h + network.cpp instrumentation):
// run_scenario under an active trace capture must render one named
// pid-2 track per station plus the shared medium, with matched B/E
// spans, monotonic simulated timestamps, and per-station latency
// histograms in the registry. Everything here is SILENCE_OBS=ON only —
// under OFF the timeline compiles to no-ops and records nothing.
#include "net/timeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/scenario.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "runner/json.h"

#if SILENCE_OBS_ON

namespace silence::net {
namespace {

constexpr int kStations = 4;

Scenario test_scenario() {
  Scenario sc;
  sc.topology.bss[0].num_stations = kStations;
  sc.duration_us = 8e3;
  return sc;
}

// Runs one traced scenario and returns the parsed trace document.
runner::Json traced_run() {
  obs::Registry::global().reset();
  auto& tracer = obs::Tracer::global();
  tracer.start();
  (void)run_scenario(test_scenario(), 11);
  runner::Json doc = runner::Json::parse(tracer.to_json());
  tracer.stop();
  return doc;
}

struct SimTrack {
  std::string name;
  std::size_t begins = 0;
  std::size_t ends = 0;
  std::vector<std::string> open;  // span-nesting stack
  double last_ts = -1.0;
  bool monotonic = true;
  bool nested = true;
};

// Collects the pid-2 (simulation) events by track.
std::map<std::int64_t, SimTrack> sim_tracks(const runner::Json& doc) {
  std::map<std::int64_t, SimTrack> tracks;
  const runner::Json* events = doc.find("traceEvents");
  EXPECT_NE(events, nullptr);
  for (const runner::Json& event : events->as_array()) {
    const runner::Json* pid = event.find("pid");
    if (pid == nullptr || pid->as_int() != 2) continue;
    const std::int64_t tid = event.find("tid")->as_int();
    const std::string ph = event.find("ph")->as_string();
    if (ph == "M") {
      // Only thread_name metadata names a track; the process_name event
      // rides on tid 0, which is not a track.
      if (event.find("name")->as_string() == "thread_name") {
        tracks[tid].name = event.find("args")->find("name")->as_string();
      }
      continue;
    }
    SimTrack& track = tracks[tid];
    const std::string name = event.find("name")->as_string();
    const double ts = event.find("ts")->as_double();
    if (track.last_ts >= 0.0 && ts < track.last_ts) track.monotonic = false;
    track.last_ts = ts;
    if (ph == "B") {
      ++track.begins;
      track.open.push_back(name);
    } else if (ph == "E") {
      ++track.ends;
      if (track.open.empty() || track.open.back() != name) {
        track.nested = false;
      } else {
        track.open.pop_back();
      }
    }
  }
  return tracks;
}

TEST(NetTimeline, OneNamedTrackPerStationPlusMedium) {
  const std::map<std::int64_t, SimTrack> tracks = sim_tracks(traced_run());
  ASSERT_EQ(tracks.size(), static_cast<std::size_t>(kStations) + 1);
  std::vector<std::string> names;
  for (const auto& [tid, track] : tracks) names.push_back(track.name);
  EXPECT_EQ(names.front(), "medium");  // track 1 = the shared medium
  for (int i = 0; i < kStations; ++i) {
    EXPECT_NE(std::find(names.begin(), names.end(),
                        "STA " + std::to_string(i)),
              names.end())
        << "missing track for station " << i;
  }
}

TEST(NetTimeline, SpansMatchedNestedAndMonotonicPerTrack) {
  const std::map<std::int64_t, SimTrack> tracks = sim_tracks(traced_run());
  for (const auto& [tid, track] : tracks) {
    EXPECT_GT(track.begins, 0u) << track.name;
    EXPECT_EQ(track.begins, track.ends) << track.name;
    EXPECT_TRUE(track.open.empty()) << track.name;
    EXPECT_TRUE(track.nested) << track.name;
    EXPECT_TRUE(track.monotonic) << track.name;
  }
}

TEST(NetTimeline, TimelineIsBitStableAcrossRuns) {
  const std::string first = traced_run().dump_compact();
  const std::string second = traced_run().dump_compact();
  // Wall-clock spans (pid 1) differ run to run, but the simulation
  // timeline is a pure function of (scenario, seed); compare only the
  // pid-2 events.
  const auto sim_only = [](const std::string& dump) {
    std::string out;
    std::size_t pos = 0;
    while ((pos = dump.find("\"pid\":2", pos)) != std::string::npos) {
      const std::size_t start = dump.rfind('{', pos);
      const std::size_t end = dump.find('}', pos);
      out += dump.substr(start, end - start + 1);
      pos = end;
    }
    return out;
  };
  EXPECT_EQ(sim_only(first), sim_only(second));
  EXPECT_NE(sim_only(first), "");
}

TEST(NetTimeline, SecondScenarioCannotClaimTheTimeline) {
  obs::Registry::global().reset();
  auto& tracer = obs::Tracer::global();
  tracer.start();
  (void)run_scenario(test_scenario(), 11);
  const std::size_t after_first = tracer.sim_event_count();
  EXPECT_GT(after_first, 0u);
  (void)run_scenario(test_scenario(), 12);
  // The second run found the timeline claimed and recorded nothing.
  EXPECT_EQ(tracer.sim_event_count(), after_first);
  tracer.stop();
}

TEST(NetTimeline, StationMetricsLandInRegistry) {
  obs::Registry::global().reset();
  auto& tracer = obs::Tracer::global();
  tracer.stop();  // metrics don't need an active trace capture
  (void)run_scenario(test_scenario(), 11);
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  for (int i = 0; i < kStations; ++i) {
    const std::string base = "net.sta." + StationMetrics::station_label(i);
    EXPECT_NE(snap.histogram(base + ".hol_wait_slots"), nullptr) << base;
    EXPECT_NE(snap.histogram(base + ".inter_tx_gap_slots"), nullptr) << base;
    EXPECT_NE(snap.histogram(base + ".tx_data_bits"), nullptr) << base;
  }
  // Aggregate latency histograms ride along for the merged view.
  EXPECT_NE(snap.histogram("net.sta.hol_wait_slots"), nullptr);
  EXPECT_NE(snap.histogram("net.sta.inter_tx_gap_slots"), nullptr);
}

TEST(NetTimeline, StationLabelZeroPadsToTwoDigits) {
  EXPECT_EQ(StationMetrics::station_label(0), "00");
  EXPECT_EQ(StationMetrics::station_label(9), "09");
  EXPECT_EQ(StationMetrics::station_label(10), "10");
  EXPECT_EQ(StationMetrics::station_label(63), "63");
}

TEST(NetTimeline, LabelWidthFollowsTheCap) {
  // Width = digit count of the largest tracked index (cap - 1), floored
  // at 2 to keep the historic "%02zu" names lexicographically sorted.
  EXPECT_EQ(StationMetrics::label_width(1), 2);
  EXPECT_EQ(StationMetrics::label_width(64), 2);
  EXPECT_EQ(StationMetrics::label_width(100), 2);   // max index 99
  EXPECT_EQ(StationMetrics::label_width(101), 3);   // max index 100
  EXPECT_EQ(StationMetrics::label_width(1000), 3);
  EXPECT_EQ(StationMetrics::label_width(1001), 4);
  EXPECT_EQ(StationMetrics::station_label(7, 3), "007");
  EXPECT_EQ(StationMetrics::station_label(123, 3), "123");
}

TEST(NetTimeline, OverCapStationsFoldIntoOverflowFamily) {
  obs::Registry::global().reset();
  // 6 stations, cap 4: stations 0..3 get their own families, 4 and 5
  // fold into net.sta.overflow.* instead of being dropped.
  StationMetrics metrics(6, 4);
  for (std::size_t i = 0; i < 6; ++i) {
    metrics.hol_wait(i, 10 + i);
    metrics.tx_gap(i, 20 + i);
    metrics.tx_data_bits(i, 30 + i);
    metrics.collision(i);
  }
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  for (std::size_t i = 0; i < 4; ++i) {
    const std::string base = "net.sta." + StationMetrics::station_label(i);
    const auto* hol = snap.histogram(base + ".hol_wait_slots");
    ASSERT_NE(hol, nullptr) << base;
    EXPECT_EQ(hol->count, 1u);
  }
  // Registry::reset() zeroes values but interned names persist for the
  // process lifetime, so an earlier test in this binary may have
  // interned station 4's family — the routing claim is that no SAMPLE
  // lands there.
  const auto* spill = snap.histogram("net.sta.04.hol_wait_slots");
  EXPECT_TRUE(spill == nullptr || spill->count == 0)
      << "station 4 must fold into overflow, not its own family";
  const auto* over = snap.histogram("net.sta.overflow.hol_wait_slots");
  ASSERT_NE(over, nullptr);
  EXPECT_EQ(over->count, 2u);  // stations 4 and 5
  EXPECT_EQ(over->sum, 14u + 15u);
  const auto* over_coll = snap.counter("net.sta.overflow.collisions");
  ASSERT_NE(over_coll, nullptr);
  EXPECT_EQ(over_coll->value, 2u);
  obs::Registry::global().reset();
}

TEST(NetTimeline, SubCapRunsInternNoOverflowFamily) {
  obs::Registry::global().reset();
  StationMetrics metrics(4, 64);
  metrics.hol_wait(0, 1);
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  // The overflow family is interned lazily, only when the cap is
  // actually exceeded — sub-cap runs keep their exact metric inventory
  // (the CI smoke counts per-station families in a fresh process).
  // Inside this shared test binary an earlier over-cap test may already
  // have interned the names, so assert that no sample is routed there.
  const auto* over = snap.histogram("net.sta.overflow.hol_wait_slots");
  EXPECT_TRUE(over == nullptr || over->count == 0);
  const auto* over_coll = snap.counter("net.sta.overflow.collisions");
  EXPECT_TRUE(over_coll == nullptr || over_coll->value == 0);
  obs::Registry::global().reset();
}

TEST(NetTimeline, ScenarioCapCarriesThroughRunScenario) {
  obs::Registry::global().reset();
  obs::Tracer::global().stop();
  Scenario sc = test_scenario();  // 4 stations
  sc.metrics_station_cap = 2;
  (void)run_scenario(sc, 11);
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  const auto* sta0 = snap.histogram("net.sta.00.hol_wait_slots");
  ASSERT_NE(sta0, nullptr);
  const auto* sta1 = snap.histogram("net.sta.01.hol_wait_slots");
  ASSERT_NE(sta1, nullptr);
  EXPECT_GT(sta0->count + sta1->count, 0u);
  // Stations at and past the cap route into the overflow family; their
  // own families may exist from earlier tests in this binary (interned
  // names outlive Registry::reset()) but must receive no samples.
  const auto* spill = snap.histogram("net.sta.02.hol_wait_slots");
  EXPECT_TRUE(spill == nullptr || spill->count == 0);
  const auto* over = snap.histogram("net.sta.overflow.hol_wait_slots");
  ASSERT_NE(over, nullptr);
  EXPECT_GT(over->count, 0u);
  obs::Registry::global().reset();
}

}  // namespace
}  // namespace silence::net

#endif  // SILENCE_OBS_ON
