// The event-driven network engine (net/engine.h): legacy byte-identity
// pinned against outputs captured from the slotted loop this engine
// replaced, the stateful NetSim stepping API, the compat shim for flat
// pre-topology scenario JSON, and the new multi-BSS physics — OBSS
// interference, hidden terminals and open-loop traffic.
#include "net/engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/scenario.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "runner/json.h"
#include "runner/sweep.h"

namespace silence::net {
namespace {

// NetResult::to_json() of three scenarios, captured from the slotted
// single-AP run_scenario at the commit that introduced the event engine
// (same PHY, same seeds). The engine must reproduce these byte-for-byte:
// same arithmetic, same per-station RNG stream consumption, same fading
// advance sequences. The engine-only keys ("events", "obss_overlap_us")
// are stripped before comparing.
//
// Golden 1: default 4-station cell, duration 8e3, seed 7.
constexpr const char* kGolden4Sta =
    R"({"elapsed_us":8104,"contention_rounds":15,"tx_rounds":12,"collision_rounds":3,"airtime":{"data_us":4216,"ack_us":528,"control_us":0,"idle_us":1260,"collision_us":2100},"stations":[{"tx_rounds":4,"collisions":1,"frames_delivered":3,"frames_lost":1,"mpdus_delivered":12,"data_bits":38400,"control_bits_sent":112,"control_bits_correct":88,"data_airtime_us":1072,"hol_wait_slots":{"count":4,"sum":576,"min":9,"max":299,"buckets":[0,0,0,0,1,0,0,1,1,1]},"inter_tx_gap_slots":{"count":3,"sum":675,"min":162,"max":335,"buckets":[0,0,0,0,0,0,0,0,2,1]}},{"tx_rounds":4,"collisions":1,"frames_delivered":4,"frames_lost":0,"mpdus_delivered":16,"data_bits":51200,"control_bits_sent":32,"control_bits_correct":0,"data_airtime_us":1200,"hol_wait_slots":{"count":4,"sum":608,"min":51,"max":301,"buckets":[0,0,0,0,0,0,2,0,1,1]},"inter_tx_gap_slots":{"count":3,"sum":677,"min":92,"max":341,"buckets":[0,0,0,0,0,0,0,1,1,1]}},{"tx_rounds":2,"collisions":2,"frames_delivered":2,"frames_lost":0,"mpdus_delivered":8,"data_bits":25600,"control_bits_sent":88,"control_bits_correct":52,"data_airtime_us":784,"hol_wait_slots":{"count":2,"sum":723,"min":176,"max":547,"buckets":[0,0,0,0,0,0,0,0,1,0,1]},"inter_tx_gap_slots":{"count":1,"sum":226,"min":226,"max":226,"buckets":[0,0,0,0,0,0,0,0,1]}},{"tx_rounds":2,"collisions":2,"frames_delivered":2,"frames_lost":0,"mpdus_delivered":8,"data_bits":25600,"control_bits_sent":96,"control_bits_correct":48,"data_airtime_us":1160,"hol_wait_slots":{"count":2,"sum":758,"min":152,"max":606,"buckets":[0,0,0,0,0,0,0,0,1,0,1]},"inter_tx_gap_slots":{"count":1,"sum":223,"min":223,"max":223,"buckets":[0,0,0,0,0,0,0,0,1]}}]})";

// Golden 2: 2 stations, duration 6e3, fixed rate 12 Mb/s, seed 5.
constexpr const char* kGolden2StaFixedRate =
    R"({"elapsed_us":6321,"contention_rounds":5,"tx_rounds":5,"collision_rounds":0,"airtime":{"data_us":5680,"ack_us":220,"control_us":0,"idle_us":421,"collision_us":0},"stations":[{"tx_rounds":3,"collisions":0,"frames_delivered":3,"frames_lost":0,"mpdus_delivered":12,"data_bits":38400,"control_bits_sent":144,"control_bits_correct":144,"data_airtime_us":3408,"hol_wait_slots":{"count":3,"sum":165,"min":5,"max":147,"buckets":[0,0,0,1,1,0,0,0,1]},"inter_tx_gap_slots":{"count":2,"sum":418,"min":138,"max":280,"buckets":[0,0,0,0,0,0,0,0,1,1]}},{"tx_rounds":2,"collisions":0,"frames_delivered":2,"frames_lost":0,"mpdus_delivered":8,"data_bits":25600,"control_bits_sent":96,"control_bits_correct":12,"data_airtime_us":2272,"hol_wait_slots":{"count":2,"sum":436,"min":155,"max":281,"buckets":[0,0,0,0,0,0,0,0,1,1]},"inter_tx_gap_slots":{"count":1,"sum":414,"min":414,"max":414,"buckets":[0,0,0,0,0,0,0,0,0,1]}}]})";

// Golden 3: 8 stations, duration 8e3, SNR 21.5 -> 9.25 dB, 32 control
// bits per frame, seed 11.
constexpr const char* kGolden8Sta =
    R"({"elapsed_us":8267,"contention_rounds":14,"tx_rounds":10,"collision_rounds":4,"airtime":{"data_us":3892,"ack_us":440,"control_us":0,"idle_us":915,"collision_us":3020},"stations":[{"tx_rounds":2,"collisions":0,"frames_delivered":2,"frames_lost":0,"mpdus_delivered":8,"data_bits":25600,"control_bits_sent":60,"control_bits_correct":60,"data_airtime_us":568,"hol_wait_slots":{"count":2,"sum":659,"min":226,"max":433,"buckets":[0,0,0,0,0,0,0,0,1,1]},"inter_tx_gap_slots":{"count":1,"sum":469,"min":469,"max":469,"buckets":[0,0,0,0,0,0,0,0,0,1]}},{"tx_rounds":5,"collisions":1,"frames_delivered":5,"frames_lost":0,"mpdus_delivered":20,"data_bits":64000,"control_bits_sent":148,"control_bits_correct":120,"data_airtime_us":1404,"hol_wait_slots":{"count":5,"sum":729,"min":4,"max":271,"buckets":[0,0,0,2,0,0,0,0,2,1]},"inter_tx_gap_slots":{"count":4,"sum":878,"min":40,"max":311,"buckets":[0,0,0,0,0,0,1,0,1,2]}},{"tx_rounds":0,"collisions":1,"frames_delivered":0,"frames_lost":0,"mpdus_delivered":0,"data_bits":0,"control_bits_sent":0,"control_bits_correct":0,"data_airtime_us":0,"hol_wait_slots":{"count":0,"sum":0,"min":0,"max":0,"buckets":[]},"inter_tx_gap_slots":{"count":0,"sum":0,"min":0,"max":0,"buckets":[]}},{"tx_rounds":1,"collisions":2,"frames_delivered":1,"frames_lost":0,"mpdus_delivered":4,"data_bits":12800,"control_bits_sent":32,"control_bits_correct":19,"data_airtime_us":392,"hol_wait_slots":{"count":1,"sum":356,"min":356,"max":356,"buckets":[0,0,0,0,0,0,0,0,0,1]},"inter_tx_gap_slots":{"count":0,"sum":0,"min":0,"max":0,"buckets":[]}},{"tx_rounds":0,"collisions":1,"frames_delivered":0,"frames_lost":0,"mpdus_delivered":0,"data_bits":0,"control_bits_sent":0,"control_bits_correct":0,"data_airtime_us":0,"hol_wait_slots":{"count":0,"sum":0,"min":0,"max":0,"buckets":[]},"inter_tx_gap_slots":{"count":0,"sum":0,"min":0,"max":0,"buckets":[]}},{"tx_rounds":0,"collisions":1,"frames_delivered":0,"frames_lost":0,"mpdus_delivered":0,"data_bits":0,"control_bits_sent":0,"control_bits_correct":0,"data_airtime_us":0,"hol_wait_slots":{"count":0,"sum":0,"min":0,"max":0,"buckets":[]},"inter_tx_gap_slots":{"count":0,"sum":0,"min":0,"max":0,"buckets":[]}},{"tx_rounds":1,"collisions":1,"frames_delivered":1,"frames_lost":0,"mpdus_delivered":4,"data_bits":12800,"control_bits_sent":32,"control_bits_correct":32,"data_airtime_us":764,"hol_wait_slots":{"count":1,"sum":129,"min":129,"max":129,"buckets":[0,0,0,0,0,0,0,0,1]},"inter_tx_gap_slots":{"count":0,"sum":0,"min":0,"max":0,"buckets":[]}},{"tx_rounds":1,"collisions":1,"frames_delivered":1,"frames_lost":0,"mpdus_delivered":4,"data_bits":12800,"control_bits_sent":32,"control_bits_correct":2,"data_airtime_us":764,"hol_wait_slots":{"count":1,"sum":740,"min":740,"max":740,"buckets":[0,0,0,0,0,0,0,0,0,0,1]},"inter_tx_gap_slots":{"count":0,"sum":0,"min":0,"max":0,"buckets":[]}}]})";

// NetResult JSON with the engine-only keys removed, for comparison
// against the pre-engine goldens above.
std::string legacy_view(const NetResult& r) {
  const runner::Json full = r.to_json();
  runner::Json out = runner::Json::object();
  for (const auto& [key, value] : full.as_object()) {
    if (key == "events" || key == "obss_overlap_us") continue;
    out.set(key, value);
  }
  return out.dump_compact();
}

Scenario golden_scenario_4sta() {
  Scenario sc;
  sc.duration_us = 8e3;
  return sc;
}

Scenario golden_scenario_2sta() {
  Scenario sc;
  sc.topology.bss[0].num_stations = 2;
  sc.duration_us = 6e3;
  sc.fixed_rate_mbps = 12;
  return sc;
}

Scenario golden_scenario_8sta() {
  Scenario sc;
  sc.topology.bss[0].num_stations = 8;
  sc.topology.bss[0].snr_db_near = 21.5;
  sc.topology.bss[0].snr_db_far = 9.25;
  sc.duration_us = 8e3;
  sc.control_bits_per_frame = 32;
  return sc;
}

Scenario two_ap_scenario(int ch0, int ch1, int stas_per_bss = 2) {
  Scenario sc;
  sc.topology.bss.clear();
  sc.topology.bss.push_back({.channel = ch0, .num_stations = stas_per_bss});
  sc.topology.bss.push_back({.channel = ch1, .num_stations = stas_per_bss});
  sc.duration_us = 8e3;
  return sc;
}

TEST(NetEngine, ReproducesLegacySlottedLoopByteForByte) {
  EXPECT_EQ(legacy_view(run_scenario(golden_scenario_4sta(), 7)),
            kGolden4Sta);
  EXPECT_EQ(legacy_view(run_scenario(golden_scenario_2sta(), 5)),
            kGolden2StaFixedRate);
  EXPECT_EQ(legacy_view(run_scenario(golden_scenario_8sta(), 11)),
            kGolden8Sta);
}

// The flat pre-topology scenario schema must keep parsing through the
// compat shim AND replay through the event engine to the same legacy
// bytes. The nested cos_profile/profile sub-objects are unchanged
// between schemas, so the flat document is assembled from the current
// serializer's pieces.
TEST(NetEngine, LegacyFlatScenarioJsonParsesAndReplays) {
  const Scenario sc = golden_scenario_8sta();
  const runner::Json v2 = sc.to_json();
  runner::Json flat = runner::Json::object();
  flat.set("num_stations", 8);
  flat.set("mpdu_octets", *v2.find("mpdu_octets"));
  flat.set("max_mpdus_per_frame", *v2.find("max_mpdus_per_frame"));
  flat.set("duration_us", *v2.find("duration_us"));
  flat.set("snr_db_near", 21.5);
  flat.set("snr_db_far", 9.25);
  flat.set("control_bits_per_frame", *v2.find("control_bits_per_frame"));
  flat.set("cos_profile", *v2.find("cos_profile"));
  flat.set("profile", *v2.find("profile"));
  flat.set("fixed_rate_mbps", *v2.find("fixed_rate_mbps"));
  flat.set("use_selection_feedback", *v2.find("use_selection_feedback"));
  flat.set("metrics_station_cap", *v2.find("metrics_station_cap"));

  const Scenario parsed =
      Scenario::from_json(runner::Json::parse(flat.dump_compact()));
  EXPECT_EQ(parsed, sc);  // shim maps onto the one-BSS saturated topology
  EXPECT_TRUE(parsed.traffic.saturated());
  EXPECT_EQ(legacy_view(run_scenario(parsed, 11)), kGolden8Sta);
}

TEST(NetEngine, StepUntilReachesTheSameResultAsRun) {
  const Scenario sc = golden_scenario_4sta();
  NetSim stepped(sc, 7);
  // Drive the run in small increments, interrogating mid-run state the
  // way a rate controller would.
  double t = 0.0;
  std::uint64_t last_events = 0;
  while (!stepped.done()) {
    t += 500.0;
    stepped.step_until(t);
    EXPECT_GE(stepped.events_processed(), last_events);
    last_events = stepped.events_processed();
    EXPECT_LE(stepped.now_us(), t);
    ASSERT_LT(t, 1e6) << "engine failed to finish";
  }
  NetSim oneshot(sc, 7);
  oneshot.run();
  EXPECT_EQ(stepped.result().to_json().dump_compact(),
            oneshot.result().to_json().dump_compact());
  EXPECT_EQ(legacy_view(stepped.result()), kGolden4Sta);
}

TEST(NetEngine, ExposesMidRunStateAndRejectsMisuse) {
  const Scenario sc = golden_scenario_4sta();
  NetSim sim;
  EXPECT_THROW(sim.run(), std::logic_error);
  EXPECT_THROW(sim.step_until(1.0), std::logic_error);
  EXPECT_THROW((void)sim.result(), std::logic_error);
  sim.init(sc, 7);
  EXPECT_THROW(sim.init(sc, 7), std::logic_error);
  EXPECT_EQ(sim.num_stations(), 4);
  EXPECT_EQ(sim.num_bss(), 1);
  sim.step_until(4000.0);
  EXPECT_FALSE(sim.done());
  EXPECT_GT(sim.events_processed(), 0u);
  EXPECT_GT(sim.now_us(), 0.0);
  std::size_t tx = 0;
  for (int i = 0; i < sim.num_stations(); ++i) {
    tx += sim.station_stats(i).tx_rounds;
  }
  EXPECT_GT(tx, 0u);  // mid-run stats are live
  // result() completes the run and is idempotent.
  const std::string once = sim.result().to_json().dump_compact();
  EXPECT_TRUE(sim.done());
  EXPECT_EQ(sim.result().to_json().dump_compact(), once);
}

TEST(NetEngine, CoChannelTwoApScenarioSeesObssInterference) {
  const NetResult r = run_scenario(two_ap_scenario(36, 36), 17);
  ASSERT_EQ(r.stations.size(), 4u);
  // Both cells ran a full schedule...
  EXPECT_GT(r.tx_rounds, 0u);
  EXPECT_GT(r.events, 0u);
  // ...and their PPDUs overlapped: nonzero cross-AP interference.
  EXPECT_GT(r.obss_overlap_us, 0.0);
}

TEST(NetEngine, DistantChannelsIsolateTheCells) {
  // Channels 36 and 44 are more than one apart: zero overlap weight.
  const NetResult r = run_scenario(two_ap_scenario(36, 44), 17);
  EXPECT_EQ(r.obss_overlap_us, 0.0);
  // With no coupling, BSS 0's stations must be byte-identical to the
  // same stations in a standalone single-BSS scenario: per-station RNG
  // substreams make cells independent unless physics couples them.
  Scenario solo;
  solo.topology.bss[0].num_stations = 2;
  solo.duration_us = 8e3;
  const NetResult alone = run_scenario(solo, 17);
  const runner::Json two_ap = r.to_json();
  const runner::Json one_ap = alone.to_json();
  const auto& two_stations = two_ap.find("stations")->as_array();
  const auto& one_stations = one_ap.find("stations")->as_array();
  ASSERT_EQ(two_stations.size(), 4u);
  ASSERT_EQ(one_stations.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(two_stations[i].dump_compact(), one_stations[i].dump_compact())
        << "station " << i;
  }
  // The co-channel run, by contrast, must differ from isolation.
  const NetResult coupled = run_scenario(two_ap_scenario(36, 36), 17);
  EXPECT_NE(coupled.to_json().dump_compact(), r.to_json().dump_compact());
}

// Regression for an OBSS undercount: intervals used to be read out of
// the registry only at the victim's TxEnd, but pruned at every backoff
// expiry, so a fast cell completing whole rounds (PPDU+SIFS+ACK+DIFS+
// backoff) inside a slow cell's long PPDU had its intervals erased
// before the slow victim looked — one direction of the overlap went
// missing. Overlap is now credited to the in-flight exchange as each
// interval registers, so both directions are always counted. 5 dB vs
// 30 dB cells make the rate asymmetry routine (≈6 Mb/s PPDUs several
// ms long vs ≈54 Mb/s rounds under 1 ms): at seed 7 the TxEnd-read
// accounting measured 8774 µs of overlap, the registration-time
// accounting 11594 µs — the threshold sits between.
TEST(NetEngine, FastCellRoundsInsideSlowPpduAreFullyCounted) {
  Scenario sc;
  sc.topology.bss.clear();
  sc.topology.bss.push_back({.channel = 36, .num_stations = 1,
                             .snr_db_near = 5.0, .snr_db_far = 5.0});
  sc.topology.bss.push_back({.channel = 36, .num_stations = 1,
                             .snr_db_near = 30.0, .snr_db_far = 30.0});
  sc.mpdu_octets = 1200;
  sc.duration_us = 30e3;
  const NetResult r = run_scenario(sc, 7);
  EXPECT_GT(r.obss_overlap_us, 10e3);
  // With one station per cell every interval is a winner PPDU with a
  // reader on each side, so the tally cannot exceed twice the smaller
  // cell's on-air time (it is bounded by 2 × min busy span).
  EXPECT_LT(r.obss_overlap_us, 2.0 * r.elapsed_us);
}

// Hidden blind fires radiate into neighboring cells like any other
// PPDU: the stray burst's interval registers alongside the winner's, so
// a co-channel neighbor's concurrent exchange is charged with its
// overlap too. The pinned tally discriminates the accounting at seed 7:
// 3487 µs with blind fires registered, 5284 µs with them invisible to
// neighbors (the schedules diverge once the extra interference lands),
// and 4243 µs under the old TxEnd-read accounting. All contributions
// are integer-µs sums, so the double compares exactly.
TEST(NetEngine, BlindFiresRadiateIntoNeighborCells) {
  Scenario sc;
  sc.topology.bss.clear();
  sc.topology.bss.push_back({.channel = 36, .num_stations = 2});
  sc.topology.bss.push_back({.channel = 36, .num_stations = 1});
  const int n = 3;
  sc.topology.carrier_sense.assign(n * n, 1);
  sc.topology.carrier_sense[0 * n + 1] = 0;
  sc.topology.carrier_sense[1 * n + 0] = 0;
  sc.duration_us = 20e3;
  const NetResult r = run_scenario(sc, 7);
  EXPECT_DOUBLE_EQ(r.obss_overlap_us, 3487.0);
#if SILENCE_OBS_ON
  // Prove the pinned run actually blind-fired (the mechanism under
  // test), not just scheduled around the hidden pair.
  obs::Registry::global().reset();
  (void)run_scenario(sc, 7);
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  const auto* fires = snap.counter("net.hidden_fires");
  ASSERT_NE(fires, nullptr);
  EXPECT_GT(fires->value, 0u);
  obs::Registry::global().reset();
#endif
}

TEST(NetEngine, AdjacentChannelLeakCouplesAtReducedWeight) {
  const NetResult r = run_scenario(two_ap_scenario(36, 37), 17);
  EXPECT_GT(r.obss_overlap_us, 0.0);
  // Setting the leak to zero decouples adjacent channels entirely.
  Scenario sealed = two_ap_scenario(36, 37);
  sealed.topology.adjacent_leak = 0.0;
  EXPECT_EQ(run_scenario(sealed, 17).obss_overlap_us, 0.0);
}

TEST(NetEngine, HiddenTerminalsBlindFireIntoTheWinner) {
  // 4 stations; 0 and 1 cannot hear each other (symmetric), everyone
  // else senses normally.
  Scenario sc = golden_scenario_4sta();
  const int n = 4;
  sc.topology.carrier_sense.assign(n * n, 1);
  sc.topology.carrier_sense[0 * n + 1] = 0;
  sc.topology.carrier_sense[1 * n + 0] = 0;
  const NetResult hidden = run_scenario(sc, 7);
  const NetResult sensing = run_scenario(golden_scenario_4sta(), 7);
  // The geometry must change the outcome...
  EXPECT_NE(hidden.to_json().dump_compact(),
            sensing.to_json().dump_compact());
  // ...while the scheduler invariants keep holding.
  EXPECT_EQ(hidden.tx_rounds + hidden.collision_rounds,
            hidden.contention_rounds);
  std::size_t sta_tx = 0, sta_collisions = 0;
  for (const StaStats& s : hidden.stations) {
    sta_tx += s.tx_rounds;
    sta_collisions += s.collisions;
  }
  EXPECT_EQ(sta_tx, hidden.tx_rounds);
  EXPECT_GE(sta_collisions, 2 * hidden.collision_rounds);
#if SILENCE_OBS_ON
  // The registry's hidden-fire counter confirms the mechanism actually
  // triggered (not just a different-but-fire-free schedule).
  obs::Registry::global().reset();
  (void)run_scenario(sc, 7);
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  const auto* fires = snap.counter("net.hidden_fires");
  ASSERT_NE(fires, nullptr);
  EXPECT_GT(fires->value, 0u);
  obs::Registry::global().reset();
#endif
}

TEST(NetEngine, PoissonTrafficIdlesTheMediumAndStaysDeterministic) {
  Scenario sc = golden_scenario_4sta();
  sc.traffic.kind = TrafficModel::Kind::kPoisson;
  sc.traffic.arrival_rate_fps = 200.0;  // ~1.6 frames per station
  const NetResult open = run_scenario(sc, 7);
  const NetResult again = run_scenario(sc, 7);
  EXPECT_EQ(open.to_json().dump_compact(), again.to_json().dump_compact());
  const NetResult saturated = run_scenario(golden_scenario_4sta(), 7);
  EXPECT_LT(open.tx_rounds, saturated.tx_rounds);
  EXPECT_GT(open.airtime.idle_us / open.elapsed_us,
            saturated.airtime.idle_us / saturated.elapsed_us);
  // Every winning TX still records one head-of-line wait.
  for (const StaStats& s : open.stations) {
    EXPECT_EQ(s.hol_wait_slots.count, s.tx_rounds);
  }
}

TEST(NetEngine, NearZeroArrivalRateSleepsTheWholeRun) {
  Scenario sc = golden_scenario_4sta();
  sc.traffic.kind = TrafficModel::Kind::kPoisson;
  sc.traffic.arrival_rate_fps = 1e-6;  // one frame every ~1e6 seconds
  const NetResult r = run_scenario(sc, 7);
  EXPECT_EQ(r.tx_rounds, 0u);
  EXPECT_EQ(r.contention_rounds, 0u);
  EXPECT_DOUBLE_EQ(r.elapsed_us, sc.duration_us);
  EXPECT_DOUBLE_EQ(r.airtime.idle_us, sc.duration_us);
}

// Open-loop scenarios whose arrivals run dry drain the calendar queue
// with every BSS dormant; step_until() must still converge once the
// caller's clock reaches the scenario horizon, or the documented rate-
// controller pattern `while (!sim.done()) sim.step_until(t)` would spin
// forever (only run()/result() used to finish dormant cells off).
TEST(NetEngine, StepUntilConvergesWhenOpenLoopTrafficRunsDry) {
  Scenario sc = golden_scenario_4sta();
  sc.traffic.kind = TrafficModel::Kind::kPoisson;
  sc.traffic.arrival_rate_fps = 200.0;  // a handful of frames, then dry
  NetSim sim(sc, 7);
  double t = 0.0;
  while (!sim.done()) {
    t += 500.0;
    sim.step_until(t);
    ASSERT_LT(t, 1e6) << "step_until never converged a dormant run";
  }
  EXPECT_GE(t, sc.duration_us);
  EXPECT_EQ(sim.result().to_json().dump_compact(),
            run_scenario(sc, 7).to_json().dump_compact());
}

TEST(NetEngine, OnOffTrafficRunsAndHoldsInvariants) {
  Scenario sc = golden_scenario_4sta();
  sc.traffic.kind = TrafficModel::Kind::kOnOff;
  sc.traffic.arrival_rate_fps = 2000.0;
  sc.traffic.mean_on_us = 2000.0;
  sc.traffic.mean_off_us = 2000.0;
  const NetResult r = run_scenario(sc, 7);
  EXPECT_EQ(r.to_json().dump_compact(),
            run_scenario(sc, 7).to_json().dump_compact());
  EXPECT_EQ(r.tx_rounds + r.collision_rounds, r.contention_rounds);
  EXPECT_NEAR(r.airtime.total_us(), r.elapsed_us, 1e-6 * r.elapsed_us);
  EXPECT_GT(r.events, 0u);
}

TEST(NetEngine, EventAndObssTalliesMergeAndRoundTrip) {
  const Scenario sc = two_ap_scenario(36, 36);
  const NetResult a = run_scenario(sc, 3);
  const NetResult b = run_scenario(sc, 4);
  NetResult merged;
  merged += a;
  merged += b;
  EXPECT_EQ(merged.events, a.events + b.events);
  EXPECT_DOUBLE_EQ(merged.obss_overlap_us,
                   a.obss_overlap_us + b.obss_overlap_us);
  const NetResult back = NetResult::from_json(a.to_json());
  EXPECT_EQ(back.to_json().dump_compact(), a.to_json().dump_compact());
  EXPECT_EQ(back.events, a.events);
}

// The headline determinism acceptance: a 64-station / 2-AP co-channel
// scenario swept at 1, 2 and 8 threads reduces byte-identically (the
// fabric cross-check lives in CI, which compares a single-process run
// against --fabric 4 of the bench binary).
TEST(NetEngine, TwoApSixtyFourStationSweepIsBitIdenticalAcrossThreads) {
  Scenario sc = two_ap_scenario(36, 36, 32);
  sc.duration_us = 2e3;
  runner::SweepGrid<int> grid;
  grid.points = {64};
  grid.trials = 2;
  grid.base_seed = 99;
  std::vector<std::string> digests;
  for (const int threads : {1, 2, 8}) {
    const auto outcome = runner::run_sweep(
        grid, {.threads = threads, .chunk = 1},
        [&](const int&, const runner::TrialContext& ctx) {
          return run_scenario(sc, ctx.seed);
        });
    ASSERT_EQ(outcome.point_results.size(), 1u);
    digests.push_back(outcome.point_results[0].to_json().dump_compact());
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
}

TEST(NetTopology, JsonRoundTripsAndValidates) {
  Topology topo;
  topo.bss.clear();
  topo.bss.push_back({.channel = 36, .num_stations = 2,
                      .snr_db_near = 20.0, .snr_db_far = 10.0});
  topo.bss.push_back({.channel = 40, .num_stations = 3});
  topo.carrier_sense.assign(25, 1);
  topo.carrier_sense[3] = 0;
  topo.obss_pulse_power = 2.0;
  topo.adjacent_leak = 0.125;
  const Topology back = Topology::from_json(topo.to_json());
  EXPECT_EQ(back, topo);
  EXPECT_EQ(back.to_json().dump_compact(), topo.to_json().dump_compact());
  topo.validate();  // consistent: must not throw

  Topology bad = topo;
  bad.carrier_sense.resize(7);  // not N*N
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = topo;
  bad.bss.clear();
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = topo;
  bad.bss[0].num_stations = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = topo;
  bad.adjacent_leak = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(NetTopology, StationIndexingAndSnrPlacement) {
  Topology topo;
  topo.bss.clear();
  topo.bss.push_back({.channel = 36, .num_stations = 2,
                      .snr_db_near = 24.0, .snr_db_far = 12.0});
  topo.bss.push_back({.channel = 40, .num_stations = 3,
                      .snr_db_near = 18.0, .snr_db_far = 18.0});
  ASSERT_EQ(topo.total_stations(), 5);
  EXPECT_EQ(topo.station_bss(0), 0);
  EXPECT_EQ(topo.station_bss(1), 0);
  EXPECT_EQ(topo.station_bss(2), 1);
  EXPECT_EQ(topo.station_bss(4), 1);
  EXPECT_EQ(topo.first_station(0), 0);
  EXPECT_EQ(topo.first_station(1), 2);
  // Within-BSS interpolation: first station near, last far.
  EXPECT_DOUBLE_EQ(topo.station_snr_db(0), 24.0);
  EXPECT_DOUBLE_EQ(topo.station_snr_db(1), 12.0);
  EXPECT_DOUBLE_EQ(topo.station_snr_db(2), 18.0);
  EXPECT_DOUBLE_EQ(topo.station_snr_db(4), 18.0);
  // Empty carrier-sense matrix: everyone hears everyone.
  EXPECT_TRUE(topo.hears(0, 4));
  EXPECT_DOUBLE_EQ(topo.channel_weight(36, 36), 1.0);
  EXPECT_DOUBLE_EQ(topo.channel_weight(36, 37), topo.adjacent_leak);
  EXPECT_DOUBLE_EQ(topo.channel_weight(36, 40), 0.0);
}

TEST(NetTraffic, ModelRoundTripsAndValidates) {
  for (const TrafficModel::Kind kind :
       {TrafficModel::Kind::kSaturated, TrafficModel::Kind::kPoisson,
        TrafficModel::Kind::kOnOff}) {
    TrafficModel tm;
    tm.kind = kind;
    tm.arrival_rate_fps = 1234.5;
    tm.mean_on_us = 111.0;
    tm.mean_off_us = 222.0;
    const TrafficModel back = TrafficModel::from_json(tm.to_json());
    EXPECT_EQ(back, tm);
    tm.validate();
  }
  TrafficModel bad;
  bad.kind = TrafficModel::Kind::kPoisson;
  bad.arrival_rate_fps = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.kind = TrafficModel::Kind::kOnOff;
  bad.arrival_rate_fps = 100.0;
  bad.mean_on_us = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  runner::Json doc = TrafficModel{}.to_json();
  doc.set("kind", "warp-drive");
  EXPECT_THROW(TrafficModel::from_json(doc), std::runtime_error);
}

}  // namespace
}  // namespace silence::net
