// The calendar queue's ordering contract (net/events.h): events pop in
// (timestamp, kind, bss, sta, FIFO) order regardless of push order or
// bucket placement. The engine's determinism at any thread or fabric
// count reduces to exactly this total order, so it gets its own tests.
#include "net/events.h"

#include <gtest/gtest.h>

#include <vector>

namespace silence::net {
namespace {

std::vector<Event> drain(CalendarQueue& q) {
  std::vector<Event> out;
  while (!q.empty()) out.push_back(q.pop());
  return out;
}

TEST(CalendarQueue, PopsInTimestampOrder) {
  CalendarQueue q(1000.0);
  // Deliberately shuffled pushes across several buckets.
  q.push(700.0, EventKind::kRoundStart, 0, -1);
  q.push(34.0, EventKind::kBackoffExpiry, 0, -1);
  q.push(512.5, EventKind::kTxEnd, 1, 3);
  q.push(0.0, EventKind::kRoundStart, 1, -1);
  q.push(63.999, EventKind::kArrival, 0, 2);
  q.push(64.0, EventKind::kArrival, 0, 2);  // exact bucket boundary
  const std::vector<Event> events = drain(q);
  ASSERT_EQ(events.size(), 6u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].t_us, events[i].t_us);
  }
  EXPECT_EQ(events.front().t_us, 0.0);
  EXPECT_EQ(events.back().t_us, 700.0);
}

TEST(CalendarQueue, EqualTimestampsBreakTiesByKindThenBssThenSta) {
  CalendarQueue q(100.0);
  // All at t = 50, pushed in reverse of their required pop order.
  q.push(50.0, EventKind::kTxEnd, 0, 0);
  q.push(50.0, EventKind::kBackoffExpiry, 1, -1);
  q.push(50.0, EventKind::kBackoffExpiry, 0, -1);
  q.push(50.0, EventKind::kRoundStart, 0, -1);
  q.push(50.0, EventKind::kArrival, 0, 5);
  q.push(50.0, EventKind::kArrival, 0, 2);
  const std::vector<Event> events = drain(q);
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0].kind, EventKind::kArrival);
  EXPECT_EQ(events[0].sta, 2);
  EXPECT_EQ(events[1].kind, EventKind::kArrival);
  EXPECT_EQ(events[1].sta, 5);
  EXPECT_EQ(events[2].kind, EventKind::kRoundStart);
  EXPECT_EQ(events[3].kind, EventKind::kBackoffExpiry);
  EXPECT_EQ(events[3].bss, 0);
  EXPECT_EQ(events[4].kind, EventKind::kBackoffExpiry);
  EXPECT_EQ(events[4].bss, 1);
  EXPECT_EQ(events[5].kind, EventKind::kTxEnd);
}

TEST(CalendarQueue, IdenticalKeysPopInPushOrder) {
  CalendarQueue q(100.0);
  for (int i = 0; i < 8; ++i) {
    q.push(25.0, EventKind::kArrival, 0, 3);
  }
  const std::vector<Event> events = drain(q);
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq) << "FIFO broken at " << i;
  }
}

TEST(CalendarQueue, OverflowBucketStillPopsInOrder) {
  CalendarQueue q(100.0);  // everything past ~100us shares one bucket
  q.push(5000.0, EventKind::kRoundStart, 2, -1);
  q.push(90.0, EventKind::kRoundStart, 0, -1);
  q.push(200.0, EventKind::kTxEnd, 0, 1);
  q.push(150.0, EventKind::kBackoffExpiry, 1, -1);
  const std::vector<Event> events = drain(q);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].t_us, 90.0);
  EXPECT_EQ(events[1].t_us, 150.0);
  EXPECT_EQ(events[2].t_us, 200.0);
  EXPECT_EQ(events[3].t_us, 5000.0);
}

TEST(CalendarQueue, InterleavedPushPopKeepsMonotoneTime) {
  CalendarQueue q(1000.0);
  q.push(10.0, EventKind::kRoundStart, 0, -1);
  double last = -1.0;
  // Each popped event schedules a later one, like the engine does.
  for (int i = 0; i < 50; ++i) {
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(q.next_time(), q.next_time());
    const Event e = q.pop();
    EXPECT_GE(e.t_us, last);
    last = e.t_us;
    if (i < 40) {
      q.push(e.t_us + 13.0, EventKind::kBackoffExpiry, 0, -1);
      // Same-timestamp reschedule: allowed, must not land behind the
      // cursor even exactly on a bucket boundary.
      if (i % 4 == 0) q.push(e.t_us, EventKind::kTxEnd, 0, 0);
    }
  }
}

TEST(CalendarQueue, SizeTracksPushesAndPops) {
  CalendarQueue q(100.0);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  q.push(1.0, EventKind::kRoundStart, 0, -1);
  q.push(2.0, EventKind::kRoundStart, 1, -1);
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  EXPECT_EQ(q.size(), 1u);
  (void)q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, PopAndNextTimeThrowOnEmpty) {
  CalendarQueue q(100.0);
  EXPECT_THROW((void)q.pop(), std::logic_error);
  EXPECT_THROW((void)q.next_time(), std::logic_error);
  q.push(1.0, EventKind::kRoundStart, 0, -1);
  (void)q.pop();
  EXPECT_THROW((void)q.pop(), std::logic_error);
}

TEST(CalendarQueue, TinyWidthLongHorizonCapsBucketCount) {
  // A pathological horizon/width ratio must trade width for memory, not
  // allocate millions of buckets — and still order correctly.
  CalendarQueue q(1e9, 1e-3);
  q.push(9.9e8, EventKind::kRoundStart, 0, -1);
  q.push(1.0, EventKind::kRoundStart, 1, -1);
  EXPECT_EQ(q.pop().bss, 1);
  EXPECT_EQ(q.pop().bss, 0);
}

}  // namespace
}  // namespace silence::net
