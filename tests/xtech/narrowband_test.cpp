#include "xtech/narrowband.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "channel/fading.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "core/cos_link.h"
#include "phy/preamble.h"

namespace silence {
namespace {

Bytes test_psdu(Rng& rng, std::size_t total) {
  Bytes psdu = rng.bytes(total - 4);
  append_fcs(psdu);
  return psdu;
}

XtechTxConfig tx_config(int mbps) {
  XtechTxConfig config;
  config.mcs = McsId::for_rate(mbps);
  return config;
}

NarrowbandObserver matching_observer(const XtechTxConfig& config) {
  NarrowbandObserver observer;
  observer.block_start = config.block_start;
  observer.block_len = config.block_len;
  observer.bits_per_interval = config.bits_per_interval;
  return observer;
}

TEST(Xtech, ConfigValidation) {
  Rng rng(1);
  const Bytes psdu = test_psdu(rng, 200);
  XtechTxConfig config;  // mcs null
  EXPECT_THROW(xtech_transmit(psdu, {}, config), std::invalid_argument);
  config = tx_config(12);
  config.block_start = 44;  // 44 + 8 > 48
  EXPECT_THROW(xtech_transmit(psdu, {}, config), std::invalid_argument);
}

TEST(Xtech, CleanChannelMessageReadableWithoutOfdm) {
  Rng rng(2);
  const Bytes psdu = test_psdu(rng, 1024);
  const XtechTxConfig config = tx_config(12);
  const Bits message = rng.bits(24);
  const XtechTxPacket tx = xtech_transmit(psdu, message, config);
  EXPECT_EQ(tx.bits_sent, 24u);
  EXPECT_EQ(tx.dip_count, 9u);  // 8 intervals + marker

  const NarrowbandObserver observer = matching_observer(config);
  const Bits heard = observer.observe(tx.samples);
  ASSERT_GE(heard.size(), tx.bits_sent);
  for (std::size_t i = 0; i < tx.bits_sent; ++i) {
    EXPECT_EQ(heard[i], message[i]) << "bit " << i;
  }
}

TEST(Xtech, WifiDataSurvivesTheDips) {
  Rng rng(3);
  const Bytes psdu = test_psdu(rng, 1024);
  const XtechTxConfig config = tx_config(12);
  const Bits message = rng.bits(24);
  const XtechTxPacket tx = xtech_transmit(psdu, message, config);

  // The WiFi receiver knows the blanked positions (same detection path
  // as regular CoS) and erases them.
  CosRxConfig rxc;
  for (int j = 0; j < config.block_len; ++j) {
    rxc.control_subcarriers.push_back(config.block_start + j);
  }
  const CosRxPacket rx = cos_receive(tx.samples, rxc);
  ASSERT_TRUE(rx.data_ok);
  EXPECT_EQ(rx.psdu, psdu);
}

TEST(Xtech, EnergyTraceShowsTheDips) {
  Rng rng(4);
  const Bytes psdu = test_psdu(rng, 1024);
  const XtechTxConfig config = tx_config(12);
  const XtechTxPacket tx = xtech_transmit(psdu, rng.bits(12), config);
  const NarrowbandObserver observer = matching_observer(config);
  const auto trace = observer.energy_trace(tx.samples);

  // In-band energy during a blanked symbol is far below a normal one.
  const std::size_t data_start =
      static_cast<std::size_t>(kPreambleSamples) + kSymbolSamples;
  const auto symbol_energy = [&](int s) {
    double sum = 0.0;
    const std::size_t base =
        data_start + static_cast<std::size_t>(s) * kSymbolSamples;
    // Skip the CP region where the filter still carries prior energy.
    for (std::size_t n = 40; n < kSymbolSamples; ++n) sum += trace[base + n];
    return sum;
  };
  ASSERT_GE(tx.dip_symbols.size(), 2u);
  const int dip = tx.dip_symbols[1];
  // Compare against a symbol that is definitely NOT blanked.
  int normal = dip + 1;
  while (std::find(tx.dip_symbols.begin(), tx.dip_symbols.end(), normal) !=
         tx.dip_symbols.end()) {
    ++normal;
  }
  ASSERT_LT(normal, tx.frame.num_symbols());
  EXPECT_LT(symbol_energy(dip), 0.05 * symbol_energy(normal));
}

TEST(Xtech, SurvivesNoiseAndFading) {
  int message_ok = 0, wifi_ok = 0;
  const int trials = 15;
  for (int t = 0; t < trials; ++t) {
    Rng rng(static_cast<std::uint64_t>(t) + 60);
    MultipathProfile profile;
    profile.rician_k_linear = 10.0;  // narrowband sensing needs no notch
    profile.decay_taps = 1.5;        // right on its band
    FadingChannel channel(profile, static_cast<std::uint64_t>(t) + 1);
    const double nv = noise_var_for_measured_snr(channel, 15.0);

    const Bytes psdu = test_psdu(rng, 1024);
    const XtechTxConfig config = tx_config(12);
    const Bits message = rng.bits(21);
    const XtechTxPacket tx = xtech_transmit(psdu, message, config);
    const CxVec received = channel.transmit(tx.samples, nv, rng);

    const NarrowbandObserver observer = matching_observer(config);
    const Bits heard = observer.observe(received);
    bool prefix = heard.size() >= tx.bits_sent;
    for (std::size_t i = 0; prefix && i < tx.bits_sent; ++i) {
      prefix = heard[i] == message[i];
    }
    message_ok += prefix;

    CosRxConfig rxc;
    for (int j = 0; j < config.block_len; ++j) {
      rxc.control_subcarriers.push_back(config.block_start + j);
    }
    wifi_ok += cos_receive(received, rxc).data_ok;
  }
  EXPECT_GE(message_ok, trials * 7 / 10);
  EXPECT_GE(wifi_ok, trials - 2);
}

TEST(Xtech, MessageTruncatedToPacketLength) {
  Rng rng(5);
  const Bytes psdu = test_psdu(rng, 100);  // few symbols
  const XtechTxConfig config = tx_config(54);
  const Bits message = rng.bits(300);
  const XtechTxPacket tx = xtech_transmit(psdu, message, config);
  EXPECT_LT(tx.bits_sent, 300u);
  EXPECT_EQ(tx.bits_sent %
                static_cast<std::size_t>(config.bits_per_interval),
            0u);
}

}  // namespace
}  // namespace silence
