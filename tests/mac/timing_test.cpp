#include "mac/timing.h"

#include <gtest/gtest.h>

namespace silence {
namespace {

TEST(MacTiming, StandardConstants) {
  EXPECT_DOUBLE_EQ(kSifsUs, 16.0);
  EXPECT_DOUBLE_EQ(kSlotUs, 9.0);
  EXPECT_DOUBLE_EQ(kDifsUs, 34.0);
  EXPECT_EQ(kCwMin, 15);
  EXPECT_EQ(kCwMax, 1023);
}

TEST(MacTiming, PsduAirtimeMatchesSymbolMath) {
  // 1024 B at 24 Mbps: 86 symbols -> 20 + 344 us.
  EXPECT_NEAR(psdu_airtime_us(1024, mcs_for_rate(24)), 20.0 + 86 * 4.0,
              1e-9);
  // 14 B at 6 Mbps: (16 + 112 + 6)/24 = 6 symbols -> 44 us.
  EXPECT_NEAR(psdu_airtime_us(14, mcs_for_rate(6)), 20.0 + 6 * 4.0, 1e-9);
}

TEST(MacTiming, AirtimeMonotoneInSizeAndRate) {
  for (std::size_t size = 50; size <= 1500; size += 250) {
    EXPECT_LE(psdu_airtime_us(size, mcs_for_rate(54)),
              psdu_airtime_us(size, mcs_for_rate(6)));
    EXPECT_LT(psdu_airtime_us(size, mcs_for_rate(12)),
              psdu_airtime_us(size + 250, mcs_for_rate(12)));
  }
}

TEST(MacTiming, ControlFrameAirtimes) {
  EXPECT_NEAR(ack_airtime_us(), 44.0, 1e-9);
  EXPECT_GT(poll_airtime_us(), ack_airtime_us());
}

}  // namespace
}  // namespace silence
