#include "mac/frame.h"

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/rng.h"

namespace silence {
namespace {

TEST(MacFrame, SerializeParseRoundTrip) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    MacFrame frame;
    frame.type = static_cast<FrameType>(trial % 4);
    frame.src = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    frame.dst = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    frame.seq = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    frame.queue_len = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    frame.payload = rng.bytes(rng.uniform_int(0, 500));

    const Bytes psdu = serialize_frame(frame);
    EXPECT_EQ(psdu.size(), kMacOverheadOctets + frame.payload.size());
    const auto parsed = parse_frame(psdu);
    ASSERT_TRUE(parsed.has_value()) << "trial " << trial;
    EXPECT_EQ(parsed->type, frame.type);
    EXPECT_EQ(parsed->src, frame.src);
    EXPECT_EQ(parsed->dst, frame.dst);
    EXPECT_EQ(parsed->seq, frame.seq);
    EXPECT_EQ(parsed->queue_len, frame.queue_len);
    EXPECT_EQ(parsed->payload, frame.payload);
  }
}

TEST(MacFrame, CorruptionDetected) {
  MacFrame frame;
  frame.payload = {1, 2, 3, 4};
  Bytes psdu = serialize_frame(frame);
  psdu[2] ^= 0x40;
  EXPECT_FALSE(parse_frame(psdu).has_value());
}

TEST(MacFrame, TooShortRejected) {
  const Bytes tiny = {1, 2, 3};
  EXPECT_FALSE(parse_frame(tiny).has_value());
}

TEST(MacFrame, UnknownTypeRejected) {
  MacFrame frame;
  Bytes psdu = serialize_frame(frame);
  // Forge an invalid type and refresh the FCS.
  psdu.resize(psdu.size() - 4);
  psdu[0] = 0x7F;
  append_fcs(psdu);
  EXPECT_FALSE(parse_frame(psdu).has_value());
}

TEST(MacFrame, EmptyPayloadAllowed) {
  MacFrame frame;
  frame.type = FrameType::kAck;
  const auto parsed = parse_frame(serialize_frame(frame));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->payload.empty());
}

}  // namespace
}  // namespace silence
