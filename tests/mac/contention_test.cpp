#include "mac/contention.h"

#include <gtest/gtest.h>

#include "mac/timing.h"

namespace silence {
namespace {

ContentionConfig quick_config(int stations) {
  ContentionConfig config;
  config.num_stations = stations;
  config.duration_us = 50e3;
  config.payload_octets = 512;
  config.measured_snr_db = 20.0;
  config.run_phy = false;  // MAC behaviour under test, not the PHY
  return config;
}

TEST(Contention, SingleStationNeverCollides) {
  const ContentionResult result = run_dcf_contention(quick_config(1));
  EXPECT_EQ(result.collisions, 0u);
  EXPECT_GT(result.successes, 0u);
  EXPECT_EQ(result.successes, result.attempts);
}

TEST(Contention, CollisionsGrowWithStations) {
  const ContentionResult few = run_dcf_contention(quick_config(2));
  const ContentionResult many = run_dcf_contention(quick_config(20));
  const double few_rate =
      static_cast<double>(few.collisions) / static_cast<double>(few.attempts);
  const double many_rate = static_cast<double>(many.collisions) /
                           static_cast<double>(many.attempts);
  EXPECT_GT(many_rate, few_rate);
}

TEST(Contention, ThroughputDegradesUnderHeavyContention) {
  const ContentionResult light = run_dcf_contention(quick_config(2));
  const ContentionResult heavy = run_dcf_contention(quick_config(30));
  EXPECT_GT(light.throughput_mbps(), heavy.throughput_mbps());
}

TEST(Contention, AirtimeAccountingAddsUp) {
  const ContentionResult result = run_dcf_contention(quick_config(5));
  EXPECT_NEAR(result.airtime.total_us(), result.elapsed_us,
              result.elapsed_us * 1e-9);
  EXPECT_EQ(result.airtime.control_us, 0.0);  // plain DCF has no polls
}

TEST(Contention, PhyPathDeliversAtGoodSnr) {
  ContentionConfig config = quick_config(3);
  config.run_phy = true;
  config.duration_us = 30e3;
  const ContentionResult result = run_dcf_contention(config);
  EXPECT_GT(result.successes, 0u);
  // At 20 dB measured SNR the PHY loses almost nothing.
  EXPECT_LE(result.phy_losses, result.successes / 10 + 1);
}

TEST(Contention, DeterministicForSeed) {
  const ContentionResult a = run_dcf_contention(quick_config(5));
  const ContentionResult b = run_dcf_contention(quick_config(5));
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_DOUBLE_EQ(a.elapsed_us, b.elapsed_us);
}

TEST(Contention, RejectsZeroStations) {
  ContentionConfig config = quick_config(0);
  EXPECT_THROW(run_dcf_contention(config), std::invalid_argument);
}

}  // namespace
}  // namespace silence
