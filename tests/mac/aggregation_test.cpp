#include "mac/aggregation.h"

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/rng.h"
#include "mac/frame.h"

namespace silence {
namespace {

TEST(Aggregation, RoundTrip) {
  Rng rng(1);
  std::vector<Bytes> mpdus;
  for (int i = 0; i < 5; ++i) {
    mpdus.push_back(rng.bytes(100 + static_cast<std::size_t>(i) * 50));
  }
  const Bytes psdu = aggregate_mpdus(mpdus);
  const auto out = deaggregate_mpdus(psdu);
  ASSERT_EQ(out.size(), mpdus.size());
  for (std::size_t i = 0; i < mpdus.size(); ++i) {
    EXPECT_TRUE(out[i].delimiter_ok);
    EXPECT_EQ(out[i].mpdu, mpdus[i]);
  }
}

TEST(Aggregation, SingleSubframe) {
  const std::vector<Bytes> mpdus = {{1, 2, 3}};
  const auto out = deaggregate_mpdus(aggregate_mpdus(mpdus));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].mpdu, (Bytes{1, 2, 3}));
}

TEST(Aggregation, SizeValidation) {
  EXPECT_THROW(aggregate_mpdus({}), std::invalid_argument);
  const std::vector<Bytes> with_empty = {{1}, {}};
  EXPECT_THROW(aggregate_mpdus(with_empty), std::invalid_argument);
  Rng rng(2);
  const std::vector<Bytes> huge = {rng.bytes(2000), rng.bytes(2000),
                                   rng.bytes(2000)};
  EXPECT_THROW(aggregate_mpdus(huge), std::invalid_argument);
}

TEST(Aggregation, CorruptDelimiterStopsScan) {
  Rng rng(3);
  const std::vector<Bytes> mpdus = {rng.bytes(50), rng.bytes(60),
                                    rng.bytes(70)};
  Bytes psdu = aggregate_mpdus(mpdus);
  // Corrupt the second delimiter's length complement.
  const std::size_t second_delim = kDelimiterOctets + 50;
  psdu[second_delim + 2] ^= 0xFF;
  const auto out = deaggregate_mpdus(psdu);
  ASSERT_EQ(out.size(), 1u);  // only the first survives
  EXPECT_EQ(out[0].mpdu, mpdus[0]);
}

TEST(Aggregation, CorruptPayloadOnlyKillsItsSubframe) {
  // The A-MPDU win: with FCS-protected MPDUs, a payload bit flip costs
  // one subframe, not the whole aggregate.
  Rng rng(4);
  std::vector<Bytes> mpdus;
  for (int i = 0; i < 3; ++i) {
    Bytes mpdu = rng.bytes(80);
    append_fcs(mpdu);
    mpdus.push_back(std::move(mpdu));
  }
  Bytes psdu = aggregate_mpdus(mpdus);
  // Flip a payload bit inside subframe 1 (not its delimiter).
  psdu[kDelimiterOctets + 84 + kDelimiterOctets + 10] ^= 0x01;
  const auto out = deaggregate_mpdus(psdu);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(check_fcs(out[0].mpdu));
  EXPECT_FALSE(check_fcs(out[1].mpdu));
  EXPECT_TRUE(check_fcs(out[2].mpdu));
}

TEST(Aggregation, CapacityMath) {
  EXPECT_EQ(max_mpdus_per_aggregate(0), 0u);
  EXPECT_EQ(max_mpdus_per_aggregate(1024), 3u);
  EXPECT_EQ(max_mpdus_per_aggregate(100), 39u);
}

TEST(Aggregation, TruncatedTailDropped) {
  Rng rng(5);
  const std::vector<Bytes> mpdus = {rng.bytes(50), rng.bytes(60)};
  Bytes psdu = aggregate_mpdus(mpdus);
  psdu.resize(psdu.size() - 10);  // cut into the second subframe
  const auto out = deaggregate_mpdus(psdu);
  ASSERT_EQ(out.size(), 1u);
}

}  // namespace
}  // namespace silence
