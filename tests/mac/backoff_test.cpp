#include "mac/backoff.h"

#include <gtest/gtest.h>

#include "mac/timing.h"

namespace silence {
namespace {

TEST(Backoff, StartsAtCwMin) {
  Backoff backoff;
  EXPECT_EQ(backoff.window(), kCwMin);
  EXPECT_EQ(backoff.retries(), 0);
}

TEST(Backoff, RestartDrawsWithinWindow) {
  Rng rng(1);
  Backoff backoff;
  for (int i = 0; i < 200; ++i) {
    backoff.restart(rng);
    EXPECT_GE(backoff.counter(), 0);
    EXPECT_LE(backoff.counter(), backoff.window());
  }
}

TEST(Backoff, CollisionDoublesWindowUpToCap) {
  Rng rng(2);
  Backoff backoff;
  int expected = kCwMin;
  for (int i = 0; i < 12; ++i) {
    backoff.on_collision(rng);
    expected = std::min(2 * expected + 1, kCwMax);
    EXPECT_EQ(backoff.window(), expected);
    EXPECT_EQ(backoff.retries(), i + 1);
  }
  EXPECT_EQ(backoff.window(), kCwMax);
}

TEST(Backoff, SuccessResetsWindowAndRetries) {
  Rng rng(3);
  Backoff backoff;
  backoff.on_collision(rng);
  backoff.on_collision(rng);
  backoff.on_success(rng);
  EXPECT_EQ(backoff.window(), kCwMin);
  EXPECT_EQ(backoff.retries(), 0);
}

TEST(Backoff, ConsumeDecrements) {
  Rng rng(4);
  Backoff backoff;
  backoff.restart(rng);
  const int start = backoff.counter();
  if (start > 0) {
    backoff.consume(1);
    EXPECT_EQ(backoff.counter(), start - 1);
  }
  backoff.consume(backoff.counter());
  EXPECT_EQ(backoff.counter(), 0);
  EXPECT_THROW(backoff.consume(1), std::invalid_argument);
  EXPECT_THROW(backoff.consume(-1), std::invalid_argument);
}

TEST(Backoff, DrawsAreUniformish) {
  Rng rng(5);
  Backoff backoff;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    backoff.restart(rng);
    sum += backoff.counter();
  }
  // Uniform over [0, 15]: mean 7.5.
  EXPECT_NEAR(sum / n, 7.5, 0.15);
}

}  // namespace
}  // namespace silence
