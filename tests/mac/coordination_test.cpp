#include "mac/coordination.h"

#include <gtest/gtest.h>

namespace silence {
namespace {

CoordinationConfig quick(CoordinationMode mode) {
  CoordinationConfig config;
  config.mode = mode;
  config.num_stations = 4;
  config.duration_us = 60e3;
  config.measured_snr_db = 18.0;
  return config;
}

TEST(Coordination, CosGrantsEliminateControlAirtime) {
  const CoordinationResult poll =
      run_coordination(quick(CoordinationMode::kExplicitPoll));
  const CoordinationResult cos =
      run_coordination(quick(CoordinationMode::kCosGrant));
  EXPECT_GT(poll.airtime.control_us, 0.0);
  EXPECT_EQ(cos.airtime.control_us, 0.0);
  EXPECT_GT(poll.control_overhead(), 0.0);
  EXPECT_EQ(cos.control_overhead(), 0.0);
}

TEST(Coordination, CosThroughputAtLeastMatchesPolling) {
  const CoordinationResult poll =
      run_coordination(quick(CoordinationMode::kExplicitPoll));
  const CoordinationResult cos =
      run_coordination(quick(CoordinationMode::kCosGrant));
  // CoS spends no airtime on grants; unless too many grants are lost,
  // total throughput must be at least polling's.
  EXPECT_GE(cos.total_throughput_mbps(), poll.total_throughput_mbps() * 0.97);
}

TEST(Coordination, CoordinatedModesBeatContention) {
  const CoordinationResult dcf =
      run_coordination(quick(CoordinationMode::kDcfContention));
  const CoordinationResult cos =
      run_coordination(quick(CoordinationMode::kCosGrant));
  EXPECT_GT(cos.total_throughput_mbps(), dcf.total_throughput_mbps() * 0.9);
}

TEST(Coordination, GrantAccounting) {
  const CoordinationResult cos =
      run_coordination(quick(CoordinationMode::kCosGrant));
  EXPECT_GT(cos.grants_issued, 0u);
  EXPECT_LE(cos.grants_lost, cos.grants_issued);
  // Most grants arrive (per-message accuracy of short CoS messages).
  EXPECT_LE(cos.grants_lost * 4, cos.grants_issued);
}

TEST(Coordination, UplinkFlowsOnlyThroughGrants) {
  CoordinationConfig config = quick(CoordinationMode::kCosGrant);
  const CoordinationResult result = run_coordination(config);
  const std::size_t delivered_grants =
      result.grants_issued - result.grants_lost;
  // Uplink bits cannot exceed one uplink frame per delivered grant.
  EXPECT_LE(result.uplink_bits,
            delivered_grants * 8 * config.uplink_octets);
}

TEST(Coordination, RejectsBadConfig) {
  CoordinationConfig config = quick(CoordinationMode::kCosGrant);
  config.num_stations = 0;
  EXPECT_THROW(run_coordination(config), std::invalid_argument);
}

}  // namespace
}  // namespace silence
