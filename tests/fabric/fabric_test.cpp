// Sweep-fabric tests. This binary is its own worker: the supervisor
// tests re-exec it (via /proc/self/exe) with `--fabric-test-child
// --shard-spec ... --shard-out ...`, and the custom main() at the bottom
// routes such invocations into run_test_child() instead of gtest. That
// is why this target defines its own main and must NOT link gtest_main.
//
// Fault-injection hooks (children inherit the test's environment):
//   SILENCE_FABRIC_CRASH_SHARD=<i>  the fabric's own hook — shard i dies
//                                   mid-shard on attempt 0 (fabric.h)
//   FABRIC_TEST_STALL_SHARD=<i>     shard i sleeps forever on attempt 0,
//                                   exercising the straggler timeout
//   FABRIC_TEST_CRASH_ALWAYS=1      every worker exits 7 on every
//                                   attempt, exercising retry exhaustion
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "fabric/fabric.h"
#include "fabric/process.h"
#include "fabric/shard.h"
#include "fabric/telemetry.h"
#include "fabric/transport.h"
#include "runner/sinks.h"
#include "runner/sweep.h"

namespace silence::fabric {
namespace testsupport {

// Ships an integer and a double so byte-identity covers both the exact
// and the shortest-round-trip codec paths; += sums a double, making the
// reduction order observable (FP addition is not associative).
struct Sample {
  std::int64_t tally = 0;
  double weight = 0.0;
  Sample& operator+=(const Sample& o) {
    tally += o.tally;
    weight += o.weight;
    return *this;
  }
};

runner::SweepGrid<int> test_grid() {
  runner::SweepGrid<int> grid;
  grid.base_seed = 0x5eedULL;
  grid.trials = 5;
  grid.points = {3, 1, 4, 1, 5, 9, 2, 6};
  return grid;
}

Sample run_trial(const int& point, const runner::TrialContext& ctx) {
  Sample s;
  s.tally = static_cast<std::int64_t>(ctx.seed % 100000) + point;
  s.weight = 1.0 / (1.0 + static_cast<double>(ctx.seed % 997));
  return s;
}

runner::Json sample_to_json(const Sample& s) {
  runner::Json row = runner::Json::array();
  row.push_back(s.tally);
  row.push_back(s.weight);
  return row;
}

Sample sample_from_json(const runner::Json& row) {
  const runner::Json::Array& a = row.as_array();
  if (a.size() != 2) throw std::runtime_error("Sample: expected 2 fields");
  Sample s;
  s.tally = a[0].as_int();
  s.weight = a[1].as_double();
  return s;
}

template <typename FabricT>
auto run_test_sweep(FabricT& fab) {
  return fab.run("fabric_test", test_grid(), {.threads = 2, .chunk = 1},
                 run_trial, sample_to_json, sample_from_json);
}

// The worker entry point for `--fabric-test-child` invocations.
int run_test_child(int argc, char** argv) {
  FabricConfig config;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--shard-spec") && i + 1 < argc) {
      config.shard = ShardSpec::parse(argv[++i]);
    } else if (!std::strcmp(argv[i], "--shard-out") && i + 1 < argc) {
      config.shard_out = argv[++i];
    }
  }
  if (!config.shard) {
    std::fprintf(stderr, "fabric test child: missing --shard-spec\n");
    return 2;
  }
  if (std::getenv("FABRIC_TEST_CRASH_ALWAYS") != nullptr) std::_Exit(7);
  if (const char* stall = std::getenv("FABRIC_TEST_STALL_SHARD")) {
    const char* attempt = std::getenv("SILENCE_FABRIC_ATTEMPT");
    const bool first = attempt == nullptr || std::strtol(attempt, nullptr, 10) == 0;
    if (first &&
        std::strtoull(stall, nullptr, 10) == config.shard->index) {
      // Straggle until the supervisor's timeout kills us.
      std::this_thread::sleep_for(std::chrono::seconds(300));
    }
  }
  Fabric fab(std::move(config));
  run_test_sweep(fab);
  return fab.finish_worker();
}

}  // namespace testsupport

namespace {

using testsupport::run_test_sweep;
using testsupport::Sample;
using testsupport::sample_to_json;
using testsupport::test_grid;

TEST(ShardPlanner, CoversSlotSpaceContiguously) {
  for (const std::size_t total : {1u, 7u, 40u, 41u, 1000u}) {
    for (const std::size_t count : {1u, 2u, 3u, 8u, 64u}) {
      const std::vector<ShardSpec> plan = plan_shards("s", total, count);
      ASSERT_FALSE(plan.empty());
      EXPECT_LE(plan.size(), std::min(total, count));
      std::size_t cursor = 0;
      for (std::size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(plan[i].sweep, "s");
        EXPECT_EQ(plan[i].index, i);
        EXPECT_EQ(plan[i].count, plan.size());
        EXPECT_EQ(plan[i].begin, cursor);       // contiguous, in order
        EXPECT_GT(plan[i].end, plan[i].begin);  // never empty
        cursor = plan[i].end;
      }
      EXPECT_EQ(cursor, total);  // full coverage, no overlap
    }
  }
}

TEST(ShardPlanner, SpreadsRemainderOverEarlierShards) {
  const std::vector<ShardSpec> plan = plan_shards("s", 10, 4);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan[0].slots(), 3u);
  EXPECT_EQ(plan[1].slots(), 3u);
  EXPECT_EQ(plan[2].slots(), 2u);
  EXPECT_EQ(plan[3].slots(), 2u);
}

TEST(ShardSpec, RoundTripsThroughString) {
  const ShardSpec spec{"fig10_detection.c", 2, 7, 40, 55};
  EXPECT_EQ(spec.to_string(), "fig10_detection.c:2/7:40-55");
  EXPECT_EQ(ShardSpec::parse(spec.to_string()), spec);
}

TEST(ShardSpec, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(ShardSpec::parse(""), std::invalid_argument);
  EXPECT_THROW(ShardSpec::parse("sweep"), std::invalid_argument);
  EXPECT_THROW(ShardSpec::parse("sweep:0/2"), std::invalid_argument);
  EXPECT_THROW(ShardSpec::parse("sweep:2/2:0-4"), std::invalid_argument);
  EXPECT_THROW(ShardSpec::parse("sweep:0/0:0-4"), std::invalid_argument);
  EXPECT_THROW(ShardSpec::parse("sweep:0/2:4-4"), std::invalid_argument);
  EXPECT_THROW(ShardSpec::parse("sweep:0/2:x-4"), std::invalid_argument);
  EXPECT_THROW(ShardSpec::parse(":0/2:0-4"), std::invalid_argument);
}

std::string fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("fabric_test_" + std::to_string(::getpid())) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(Transport, ArtifactRoundTripsAndValidates) {
  const std::string dir = fresh_dir("transport");
  const ShardSpec spec{"sweep", 1, 3, 10, 14};
  runner::Json slots = runner::Json::array();
  for (int i = 0; i < 4; ++i) {
    slots.push_back(sample_to_json({i * 7, 1.0 / (i + 1)}));
  }
  const std::string path = shard_artifact_path(dir, spec);
  write_shard_artifact(path,
                       make_shard_artifact(spec, 0xfeedULL, 5, 4, slots));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // atomic rename
  const runner::Json loaded = read_shard_artifact(path, spec, 0xfeedULL, 5, 4);
  EXPECT_EQ(loaded.find("slots")->dump_compact(), slots.dump_compact());

  // Every header mismatch is rejected before any merging could happen.
  ShardSpec other = spec;
  other.begin = 11;
  other.end = 15;
  EXPECT_THROW(read_shard_artifact(path, other, 0xfeedULL, 5, 4),
               std::runtime_error);
  EXPECT_THROW(read_shard_artifact(path, spec, 0xdeadULL, 5, 4),
               std::runtime_error);
  EXPECT_THROW(read_shard_artifact(path, spec, 0xfeedULL, 6, 4),
               std::runtime_error);
}

TEST(Transport, RejectsTamperedPayload) {
  const std::string dir = fresh_dir("tamper");
  const ShardSpec spec{"sweep", 0, 1, 0, 2};
  runner::Json slots = runner::Json::array();
  slots.push_back(sample_to_json({1, 0.5}));
  slots.push_back(sample_to_json({2, 0.25}));
  runner::Json artifact = make_shard_artifact(spec, 1, 1, 2, slots);
  // Flip one slot value after the digest was computed.
  runner::Json tampered_slots = runner::Json::array();
  tampered_slots.push_back(sample_to_json({1, 0.5}));
  tampered_slots.push_back(sample_to_json({3, 0.25}));
  artifact.set("slots", std::move(tampered_slots));
  const std::string path = shard_artifact_path(dir, spec);
  write_shard_artifact(path, artifact);
  try {
    read_shard_artifact(path, spec, 1, 1, 2);
    FAIL() << "digest mismatch must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("digest"), std::string::npos);
  }
}

FabricConfig supervisor_config(int workers, const std::string& spool,
                               int shard_count = 0) {
  FabricConfig config;
  config.workers = workers;
  config.shard_count = shard_count;
  config.spool_dir = spool;
  config.self = self_executable_path("");
  config.passthrough_args = {"--fabric-test-child"};
  config.supervisor.backoff_seconds = 0.05;
  return config;
}

void expect_outcomes_identical(
    const runner::SweepOutcome<Sample>& single,
    const runner::SweepOutcome<Sample>& fabric) {
  ASSERT_EQ(fabric.point_results.size(), single.point_results.size());
  for (std::size_t i = 0; i < single.point_results.size(); ++i) {
    EXPECT_EQ(fabric.point_results[i].tally, single.point_results[i].tally);
    // Bit-exact double equality — the whole point of per-slot shipping
    // plus ordered reduction.
    EXPECT_EQ(fabric.point_results[i].weight, single.point_results[i].weight);
    EXPECT_EQ(sample_to_json(fabric.point_results[i]).dump_compact(),
              sample_to_json(single.point_results[i]).dump_compact());
  }
  EXPECT_EQ(fabric.trials_run, single.trials_run);
}

runner::SweepOutcome<Sample> single_process_outcome() {
  Fabric inline_fab(FabricConfig{});  // workers = 0 -> plain run_sweep
  return run_test_sweep(inline_fab);
}

TEST(FabricE2E, ByteIdenticalToSingleProcess) {
  const auto single = single_process_outcome();
  for (const int workers : {2, 3}) {
    FabricConfig config = supervisor_config(
        workers, fresh_dir("e2e_w" + std::to_string(workers)));
    Fabric fab(std::move(config));
    expect_outcomes_identical(single, run_test_sweep(fab));
  }
}

TEST(FabricE2E, MoreShardsThanWorkersStillIdentical) {
  const auto single = single_process_outcome();
  // 7 shards over 40 slots on 2 workers: uneven ranges, shard reuse.
  FabricConfig config =
      supervisor_config(2, fresh_dir("e2e_shards"), /*shard_count=*/7);
  Fabric fab(std::move(config));
  expect_outcomes_identical(single, run_test_sweep(fab));
}

TEST(FabricE2E, CrashInjectedShardRetriesByteIdentical) {
  const auto single = single_process_outcome();
  ::setenv("SILENCE_FABRIC_CRASH_SHARD", "1", 1);
  FabricConfig config = supervisor_config(3, fresh_dir("e2e_crash"));
  Fabric fab(std::move(config));
  const auto outcome = run_test_sweep(fab);
  ::unsetenv("SILENCE_FABRIC_CRASH_SHARD");
  expect_outcomes_identical(single, outcome);
}

TEST(FabricE2E, StragglerIsKilledAndRedispatchedIdentically) {
  const auto single = single_process_outcome();
  ::setenv("FABRIC_TEST_STALL_SHARD", "0", 1);
  FabricConfig config = supervisor_config(2, fresh_dir("e2e_straggler"));
  config.supervisor.timeout_seconds = 1.0;
  Fabric fab(std::move(config));
  const auto outcome = run_test_sweep(fab);
  ::unsetenv("FABRIC_TEST_STALL_SHARD");
  expect_outcomes_identical(single, outcome);
}

TEST(FabricE2E, RetryExhaustionThrowsNamingTheShard) {
  ::setenv("FABRIC_TEST_CRASH_ALWAYS", "1", 1);
  FabricConfig config = supervisor_config(2, fresh_dir("e2e_exhaust"));
  config.supervisor.max_attempts = 2;
  Fabric fab(std::move(config));
  try {
    run_test_sweep(fab);
    ::unsetenv("FABRIC_TEST_CRASH_ALWAYS");
    FAIL() << "exhausted retries must throw";
  } catch (const std::runtime_error& e) {
    ::unsetenv("FABRIC_TEST_CRASH_ALWAYS");
    const std::string what = e.what();
    EXPECT_NE(what.find("fabric_test"), std::string::npos) << what;
    EXPECT_NE(what.find("failed after 2 attempt"), std::string::npos) << what;
  }
}

TEST(FabricE2E, WorkerRefusesShardRangeBeyondGrid) {
  FabricConfig config;
  config.shard = ShardSpec{"fabric_test", 0, 1, 0, 1000};  // grid has 40
  config.shard_out = fresh_dir("e2e_badrange") + "/out.json";
  Fabric fab(std::move(config));
  EXPECT_THROW(run_test_sweep(fab), std::runtime_error);
}

// ---------------------------------------------------------------------
// Supervisor telemetry (fabric/telemetry.h): the shard-lifecycle journal
// behind the .telemetry.json sidecar.

TEST(Telemetry, RecordsEventsAndSummarizes) {
  Telemetry t;
  EXPECT_TRUE(t.empty());
  t.set_workers(2);
  t.add_shards(2);
  t.record(Telemetry::kDispatch, "sweep:0/2:0-4", 0);
  t.record(Telemetry::kDispatch, "sweep:1/2:4-8", 0);
  t.record(Telemetry::kWorkerFailure, "sweep:0/2:0-4", 0, 0.5, "exit code 7");
  t.record(Telemetry::kRetry, "sweep:0/2:0-4", 1, 0.05, "worker exit code 7");
  t.record(Telemetry::kComplete, "sweep:1/2:4-8", 0, 1.0);
  t.record(Telemetry::kComplete, "sweep:0/2:0-4", 1, 2.0);
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t.count(Telemetry::kDispatch), 2u);
  EXPECT_EQ(t.count(Telemetry::kComplete), 2u);
  EXPECT_EQ(t.count(Telemetry::kRetry), 1u);

  const runner::Json doc = t.to_json();
  EXPECT_EQ(doc.find("workers")->as_int(), 2);
  EXPECT_EQ(doc.find("shards")->as_int(), 2);
  EXPECT_EQ(doc.find("events")->size(), 6u);
  const runner::Json* summary = doc.find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->find("dispatches")->as_int(), 2);
  EXPECT_EQ(summary->find("completes")->as_int(), 2);
  EXPECT_EQ(summary->find("retries")->as_int(), 1);
  EXPECT_EQ(summary->find("worker_failures")->as_int(), 1);
  // Attempt durations: the failure (0.5) + both completes (1.0, 2.0);
  // the retry's backoff is not worker busy time.
  EXPECT_DOUBLE_EQ(summary->find("busy_seconds")->as_double(), 3.5);
  const runner::Json* attempts = summary->find("attempt_seconds");
  ASSERT_NE(attempts, nullptr);
  EXPECT_EQ(attempts->find("count")->as_int(), 3);
  EXPECT_DOUBLE_EQ(attempts->find("min")->as_double(), 0.5);
  EXPECT_DOUBLE_EQ(attempts->find("max")->as_double(), 2.0);
  EXPECT_DOUBLE_EQ(attempts->find("p50")->as_double(), 1.0);
  EXPECT_EQ(summary->find("attempt_seconds_list")->size(), 3u);
}

TEST(FabricE2E, TelemetryJournalsCleanRun) {
  FabricConfig config = supervisor_config(2, fresh_dir("telemetry_clean"));
  Fabric fab(std::move(config));
  run_test_sweep(fab);
  const Telemetry& t = fab.telemetry();
  EXPECT_EQ(t.count(Telemetry::kDispatch), 2u);
  EXPECT_EQ(t.count(Telemetry::kComplete), 2u);
  EXPECT_EQ(t.count(Telemetry::kRetry), 0u);
  EXPECT_EQ(t.count(Telemetry::kStragglerKill), 0u);
  EXPECT_EQ(t.count(Telemetry::kWorkerFailure), 0u);
}

TEST(FabricE2E, TelemetryJournalsCrashRetry) {
  ::setenv("SILENCE_FABRIC_CRASH_SHARD", "1", 1);
  FabricConfig config = supervisor_config(3, fresh_dir("telemetry_crash"));
  Fabric fab(std::move(config));
  run_test_sweep(fab);
  ::unsetenv("SILENCE_FABRIC_CRASH_SHARD");
  const Telemetry& t = fab.telemetry();
  EXPECT_EQ(t.count(Telemetry::kWorkerFailure), 1u);
  EXPECT_EQ(t.count(Telemetry::kRetry), 1u);
  EXPECT_EQ(t.count(Telemetry::kComplete), 3u);
  EXPECT_EQ(t.count(Telemetry::kDispatch), 4u);  // 3 shards + 1 redispatch
}

TEST(FabricE2E, TelemetryJournalsStragglerKill) {
  ::setenv("FABRIC_TEST_STALL_SHARD", "0", 1);
  FabricConfig config = supervisor_config(2, fresh_dir("telemetry_stall"));
  config.supervisor.timeout_seconds = 1.0;
  Fabric fab(std::move(config));
  run_test_sweep(fab);
  ::unsetenv("FABRIC_TEST_STALL_SHARD");
  const Telemetry& t = fab.telemetry();
  EXPECT_EQ(t.count(Telemetry::kStragglerKill), 1u);
  EXPECT_EQ(t.count(Telemetry::kRetry), 1u);
  EXPECT_EQ(t.count(Telemetry::kComplete), 2u);
}

TEST(FabricE2E, WriteSidecarsEmitsTelemetryJson) {
  FabricConfig config = supervisor_config(2, fresh_dir("telemetry_sidecar"));
  Fabric fab(std::move(config));
  run_test_sweep(fab);
  const std::string base = fresh_dir("telemetry_sidecar_out") + "/run.json";
  fab.write_sidecars(base);
  const std::string path = runner::telemetry_sidecar_path(base);
  ASSERT_TRUE(std::filesystem::exists(path));
  const runner::Json doc = runner::read_json_file(path);
  EXPECT_EQ(doc.find("schema_version")->as_int(), 1);
  EXPECT_EQ(doc.find("summary")->find("completes")->as_int(), 2);
}

TEST(FabricE2E, SingleProcessRunWritesNoTelemetrySidecar) {
  Fabric fab(FabricConfig{});  // workers = 0 -> no supervisor, no journal
  run_test_sweep(fab);
  EXPECT_TRUE(fab.telemetry().empty());
  const std::string base = fresh_dir("telemetry_none") + "/run.json";
  fab.write_sidecars(base);
  EXPECT_FALSE(
      std::filesystem::exists(runner::telemetry_sidecar_path(base)));
}

TEST(FabricE2E, WorkerOnForeignSweepReportsUnsatisfied) {
  FabricConfig config;
  config.shard = ShardSpec{"some_other_sweep", 0, 1, 0, 4};
  config.shard_out = fresh_dir("e2e_foreign") + "/out.json";
  Fabric fab(std::move(config));
  const auto outcome = run_test_sweep(fab);
  // The mismatched run() returns placeholder results...
  EXPECT_EQ(outcome.point_results.size(), test_grid().points.size());
  EXPECT_EQ(outcome.trials_run, 0u);
  // ...and the epilogue reports failure so the supervisor retries/aborts.
  EXPECT_NE(fab.finish_worker(), 0);
}

}  // namespace
}  // namespace silence::fabric

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--fabric-test-child")) {
      return silence::fabric::testsupport::run_test_child(argc, argv);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
