// Interference behaviour (paper Fig. 10d): strong pulse interference
// raises the false-negative probability of silence detection; weak
// interference behaves like noise.
#include <gtest/gtest.h>

#include "sim/session.h"

namespace silence {
namespace {

struct InterferenceOutcome {
  double false_negative_rate = 0.0;
  int data_ok = 0;
  int packets = 0;
};

InterferenceOutcome run(double pulse_power, double hit_probability) {
  InterferenceOutcome outcome;
  std::size_t silences = 0, missed = 0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    LinkConfig link_config;
    link_config.snr_db = 18.0;
    link_config.channel_seed = seed;
    link_config.noise_seed = seed * 13;
    if (pulse_power > 0.0) {
      link_config.interferer = PulseInterferer{
          .symbol_hit_probability = hit_probability,
          .pulse_power = pulse_power};
    }
    Link link(link_config);
    Rng rng(seed + 400);
    const Bytes psdu = make_test_psdu(1024, rng);
    const Bits control = rng.bits(300);

    CosTxConfig tx_config;
    tx_config.mcs = McsId::for_rate(24);
    tx_config.control_subcarriers = {10, 11, 12, 13, 14, 15, 16, 17};
    const CosTxPacket tx = cos_transmit(psdu, control, tx_config);
    const CxVec received = link.send(tx.samples);

    CosRxConfig rx_config;
    rx_config.control_subcarriers = tx_config.control_subcarriers;
    const CosRxPacket rx = cos_receive(received, rx_config);
    ++outcome.packets;
    outcome.data_ok += rx.data_ok;
    // Under strong interference SIGNAL itself may fail; no mask then.
    if (rx.detected_mask.size() != tx.plan.mask.size()) continue;
    for (std::size_t s = 0; s < tx.plan.mask.size(); ++s) {
      for (int sc : tx_config.control_subcarriers) {
        const auto idx = static_cast<std::size_t>(sc);
        if (tx.plan.mask[s][idx]) {
          ++silences;
          if (!rx.detected_mask[s][idx]) ++missed;
        }
      }
    }
  }
  outcome.false_negative_rate =
      silences ? static_cast<double>(missed) / static_cast<double>(silences)
               : 0.0;
  return outcome;
}

TEST(Interference, StrongPulsesCauseFalseNegatives) {
  const InterferenceOutcome clean = run(0.0, 0.0);
  // A pulse ~17 dB above the signal's per-sample power, hitting a third
  // of the OFDM symbols ("strong interference" in the paper's Fig. 10d).
  // Only packets whose SIGNAL still decodes are counted, which biases
  // toward lightly-hit packets; the false-negative rate must still jump
  // by more than an order of magnitude over the clean channel.
  const InterferenceOutcome strong = run(1.0, 0.3);
  EXPECT_LT(clean.false_negative_rate, 0.01);
  EXPECT_GT(strong.false_negative_rate, 0.04);
  EXPECT_GT(strong.false_negative_rate,
            10.0 * std::max(clean.false_negative_rate, 1e-4));
}

TEST(Interference, WeakInterferenceBehavesLikeNoise) {
  const InterferenceOutcome weak = run(1e-4, 0.3);
  EXPECT_LT(weak.false_negative_rate, 0.02);
  EXPECT_GE(weak.data_ok, weak.packets - 2);
}

TEST(Interference, StrongInterferenceAlsoKillsDataPackets) {
  // The paper's argument for ignoring strong interference: when it is
  // present, the data packet is lost anyway (so both data and control
  // fail together, and MAC-level coordination has to handle it).
  const InterferenceOutcome strong = run(1.0, 0.5);
  EXPECT_LT(strong.data_ok, strong.packets / 2);
}

}  // namespace
}  // namespace silence
