// CoS under realistic hardware impairments and as a broadcast channel.
#include <gtest/gtest.h>

#include "sim/session.h"

namespace silence {
namespace {

TEST(ImpairedSession, ControlFlowsThroughRealisticRadio) {
  // Residual CFO + phase noise + a -30 dB TX EVM floor: the receiver's
  // sync and CPE tracking must keep both data and control usable.
  int data_ok = 0;
  std::size_t bits_sent = 0, bits_correct = 0;
  const int packets = 5;
  int counted = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    LinkConfig lc;
    lc.snr_db = 16.0;
    lc.snr_is_measured = true;
    lc.channel_seed = seed;
    lc.noise_seed = seed * 7;
    lc.impairments = ImpairmentProfile{
        .cfo_hz = 12e3, .phase_noise_std = 1e-3, .tx_evm_floor = 0.03};
    Link link(lc);
    CosSession session(link, SessionConfig{});
    Rng rng(seed * 13);
    const Bytes psdu = make_test_psdu(1024, rng);
    for (int p = 0; p < packets; ++p) {
      const Bits control = rng.bits(120);
      const PacketReport report = session.send_packet(psdu, control);
      data_ok += report.data_ok;
      if (p == 0) continue;  // bootstrap
      ++counted;
      bits_sent += report.control_bits_sent;
      bits_correct += report.control_bits_correct;
    }
  }
  EXPECT_GE(data_ok, 8 * packets - 4);
  ASSERT_GT(bits_sent, 0u);
  EXPECT_GE(static_cast<double>(bits_correct) / bits_sent, 0.6);
}

TEST(ImpairedSession, ControlMessagesAreBroadcast) {
  // One transmission, many receivers: every station that decodes the
  // data packet can read the control message from its own channel —
  // nothing in CoS is receiver-specific except the subcarrier set, which
  // is broadcast knowledge.
  Rng rng(99);
  const Bytes psdu = make_test_psdu(1024, rng);
  const Bits control = rng.bits(48);
  const std::vector<int> subcarriers = {10, 11, 12, 13, 14, 15, 16, 17};

  CosTxConfig txc;
  txc.mcs = McsId::for_rate(12);
  txc.control_subcarriers = subcarriers;
  const CosTxPacket tx = cos_transmit(psdu, control, txc);

  int receivers_ok = 0;
  const int receivers = 6;
  for (std::uint64_t seed = 1; seed <= receivers; ++seed) {
    LinkConfig lc;
    lc.snr_db = 17.0;
    lc.snr_is_measured = true;
    lc.channel_seed = seed * 101;  // each receiver has its own channel
    lc.noise_seed = seed * 103;
    Link link(lc);
    const CxVec received = link.send(tx.samples);

    CosRxConfig rxc;
    rxc.control_subcarriers = subcarriers;
    const CosRxPacket rx = cos_receive(received, rxc);
    bool ok = rx.data_ok && rx.control_bits.size() >= tx.plan.bits_sent;
    for (std::size_t i = 0; ok && i < tx.plan.bits_sent; ++i) {
      ok = rx.control_bits[i] == control[i];
    }
    receivers_ok += ok;
  }
  EXPECT_GE(receivers_ok, receivers - 2);
}

}  // namespace
}  // namespace silence
