// Whole-system integration: data + control across rates, SNRs, and fading
// realizations, exercising the same pipeline the paper's evaluation uses.
//
// Control-channel accounting convention: per-SYMBOL silence detection is
// near-perfect (the paper's "close to 100%" claim, verified in
// tests/core/energy_detector_test.cpp), but one detection error corrupts
// the rest of that packet's interval stream, so per-PACKET perfection
// degrades with message length. These tests therefore check data PRR
// strictly and control delivery as a bit-accuracy ratio.
#include <gtest/gtest.h>

#include "sim/session.h"

namespace silence {
namespace {

struct SweepPoint {
  double measured_snr_db;
  int min_rate_mbps;  // rate adaptation must pick at least this
};

class EndToEndSnrSweep : public ::testing::TestWithParam<SweepPoint> {};

TEST_P(EndToEndSnrSweep, DataAndControlSurviveAcrossRealizations) {
  const SweepPoint point = GetParam();
  int data_ok = 0, control_ok = 0, packets = 0;
  std::size_t bits_sent = 0, bits_correct = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    LinkConfig link_config;
    link_config.snr_db = point.measured_snr_db;
    link_config.snr_is_measured = true;
    link_config.channel_seed = seed;
    link_config.noise_seed = seed * 17;
    // Static receiver: rate assertions need the pinned SNR to hold for
    // every packet (mobility has its own test).
    link_config.profile.doppler_hz = 0.0;
    Link link(link_config);
    CosSession session(link, SessionConfig{});
    Rng rng(seed);
    const Bytes psdu = make_test_psdu(1024, rng);
    for (int p = 0; p < 6; ++p) {
      const Bits control = rng.bits(400);
      const PacketReport report = session.send_packet(psdu, control);
      if (report.data_ok) {
        EXPECT_GE(report.mcs->data_rate_mbps, point.min_rate_mbps);
      }
      if (p == 0) continue;  // bootstrap packet: default subcarrier set
      ++packets;
      data_ok += report.data_ok;
      control_ok += report.control_ok;
      bits_sent += report.control_bits_sent;
      bits_correct += report.control_bits_correct;
    }
  }
  // Data: the control-rate table is calibrated for a 99.3% PRR target;
  // across a small sample allow a couple of failures.
  EXPECT_GE(data_ok, packets - 3) << "snr " << point.measured_snr_db;
  // Control: most packets deliver every bit; the bit-accuracy ratio must
  // stay high even counting partially-corrupted packets.
  EXPECT_GE(control_ok, packets * 6 / 10) << "snr " << point.measured_snr_db;
  ASSERT_GT(bits_sent, 0u);
  EXPECT_GE(static_cast<double>(bits_correct) / bits_sent, 0.70)
      << "snr " << point.measured_snr_db;
}

INSTANTIATE_TEST_SUITE_P(
    SnrPoints, EndToEndSnrSweep,
    ::testing::Values(SweepPoint{12.0, 24}, SweepPoint{16.0, 36},
                      SweepPoint{20.0, 48}, SweepPoint{24.0, 54}),
    [](const ::testing::TestParamInfo<SweepPoint>& info) {
      return "Snr" + std::to_string(static_cast<int>(info.param.measured_snr_db));
    });

TEST(EndToEnd, ThroughputNotSacrificed) {
  // The paper's core promise: CoS does not harm data throughput. Compare
  // PRR with and without control messages at identical channel/noise.
  int plain_ok = 0, cos_ok = 0;
  const int packets = 20;
  for (int variant = 0; variant < 2; ++variant) {
    for (std::uint64_t seed = 1; seed <= packets; ++seed) {
      LinkConfig link_config;
      link_config.snr_db = 18.0;
      link_config.snr_is_measured = true;
      link_config.channel_seed = seed;
      link_config.noise_seed = seed * 31;
      Link link(link_config);
      CosSession session(link, SessionConfig{});
      Rng rng(seed + 5000);
      const Bytes psdu = make_test_psdu(1024, rng);
      const Bits control = rng.bits(variant == 0 ? 0 : 400);
      const PacketReport report = session.send_packet(psdu, control);
      (variant == 0 ? plain_ok : cos_ok) += report.data_ok;
    }
  }
  EXPECT_GE(cos_ok, plain_ok - 1);
}

TEST(EndToEnd, LongControlStreamAcrossManyPackets) {
  // Stream 2,000 control bits through consecutive packets; the sender
  // advances by the acknowledged correct prefix (an upper layer would
  // learn this from control-message acknowledgements).
  LinkConfig link_config;
  link_config.snr_db = 20.0;
  link_config.snr_is_measured = true;
  link_config.channel_seed = 9;
  Link link(link_config);
  CosSession session(link, SessionConfig{});
  Rng rng(77);
  const Bits stream = rng.bits(2000);
  const Bytes psdu = make_test_psdu(1024, rng);

  std::size_t offset = 0;
  int packets = 0;
  while (offset < stream.size() && packets < 150) {
    const std::span<const std::uint8_t> rest =
        std::span(stream).subspan(offset);
    const PacketReport report = session.send_packet(psdu, rest);
    ++packets;
    offset += report.control_bits_correct;
  }
  EXPECT_EQ(offset, stream.size()) << "after " << packets << " packets";
  // The stream must flow at a useful rate, not byte-at-a-time.
  EXPECT_LE(packets, 120);
}

TEST(EndToEnd, MobilityWithFeedbackTracksChannel) {
  // Walking-speed mobility: the EVM feedback loop must keep control
  // delivery useful while the channel drifts.
  LinkConfig link_config;
  link_config.snr_db = 20.0;
  link_config.snr_is_measured = true;
  link_config.channel_seed = 21;
  link_config.profile.doppler_hz = 15.0;
  Link link(link_config);
  CosSession session(link, SessionConfig{});
  Rng rng(88);
  const Bytes psdu = make_test_psdu(1024, rng);
  int data_ok = 0;
  std::size_t bits_sent = 0, bits_correct = 0;
  const int packets = 30;
  for (int p = 0; p < packets; ++p) {
    const Bits control = rng.bits(200);
    const PacketReport report = session.send_packet(psdu, control);
    data_ok += report.data_ok;
    if (p > 0) {
      bits_sent += report.control_bits_sent;
      bits_correct += report.control_bits_correct;
    }
    link.advance(2e-3);  // inter-packet gap
  }
  EXPECT_GE(data_ok, packets - 3);
  ASSERT_GT(bits_sent, 0u);
  EXPECT_GE(static_cast<double>(bits_correct) / bits_sent, 0.70);
}

}  // namespace
}  // namespace silence
