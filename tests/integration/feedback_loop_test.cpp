// Integration tests for the subcarrier-selection feedback loop: weak-
// subcarrier placement (the paper's key "proactive" idea) and the
// feedback vector carried by CoS itself on the ACK.
#include <algorithm>
#include <gtest/gtest.h>
#include <numeric>

#include "core/feedback_transport.h"
#include "core/subcarrier_selection.h"
#include "sim/session.h"

namespace silence {
namespace {

TEST(FeedbackLoop, SelectionConvergesToWeakDetectableSubcarriers) {
  LinkConfig link_config;
  link_config.snr_db = 18.0;
  link_config.snr_is_measured = true;
  link_config.channel_seed = 31;
  link_config.profile.doppler_hz = 2.0;  // nearly static channel
  Link link(link_config);
  CosSession session(link, SessionConfig{});
  Rng rng(9);
  const Bytes psdu = make_test_psdu(1024, rng);

  // Warm up the loop and keep the last receiver report.
  PacketReport report;
  for (int p = 0; p < 3; ++p) report = session.send_packet(psdu, rng.bits(64));
  ASSERT_TRUE(report.data_ok);
  const auto& selected = session.control_subcarriers();
  ASSERT_FALSE(selected.empty());

  DetectorConfig detector;
  detector.modulation = report.mcs->modulation;
  const auto bins = data_subcarrier_bins();
  const auto gain = [&](int sc) {
    return std::norm(report.rx.fe.channel[static_cast<std::size_t>(
        bins[static_cast<std::size_t>(sc)])]);
  };

  double sel_gain = 0.0, other_gain = 0.0;
  int other_count = 0;
  for (int sc = 0; sc < kNumDataSubcarriers; ++sc) {
    const bool in_sel =
        std::find(selected.begin(), selected.end(), sc) != selected.end();
    if (in_sel) {
      // Every chosen subcarrier must support reliable detection.
      EXPECT_TRUE(subcarrier_detectable(detector, report.rx.fe.noise_var,
                                        report.rx.fe.channel, sc))
          << "subcarrier " << sc;
      sel_gain += gain(sc);
    } else if (subcarrier_detectable(detector, report.rx.fe.noise_var,
                                     report.rx.fe.channel, sc)) {
      other_gain += gain(sc);
      ++other_count;
    }
  }
  ASSERT_GT(other_count, 0);
  // Among detectable subcarriers, the selection prefers the weaker ones.
  EXPECT_LT(sel_gain / static_cast<double>(selected.size()),
            other_gain / other_count);
}

TEST(FeedbackLoop, RobustSelectionVectorSurvivesCosTransport) {
  // The feedback vector V is conveyed by CoS on the ACK: two complement-
  // coded trailer symbols appended after the ACK's data field, shipped
  // through an independent uplink channel.
  LinkConfig link_config;
  link_config.snr_db = 18.0;
  link_config.snr_is_measured = true;
  link_config.channel_seed = 12;
  Link link(link_config);
  Rng rng(10);

  const std::vector<int> selection = {4, 9, 23, 30, 41};

  CosTxConfig tx_config;
  tx_config.mcs = McsId::for_rate(6);  // ACKs go at a basic rate
  const Bytes ack = make_test_psdu(20, rng);
  CosTxPacket tx = cos_transmit(ack, {}, tx_config);
  append_selection_feedback(tx.samples, selection,
                            tx.frame.num_symbols() + 1);

  const CxVec received = link.send(tx.samples);
  const FrontEndResult fe = receiver_front_end(received);
  ASSERT_TRUE(fe.signal.has_value());
  ASSERT_EQ(fe.trailer_bins.size(), 2u);

  const auto decoded = decode_selection_feedback(fe);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, selection);

  // The ACK payload is untouched by the trailer symbols.
  const DecodeResult decode = decode_data_symbols(
      fe, *fe.signal->mcs, fe.signal->length_octets);
  EXPECT_TRUE(decode.crc_ok);
}

TEST(FeedbackLoop, FeedbackDecodeNeedsTrailerSymbols) {
  LinkConfig link_config;
  link_config.snr_db = 20.0;
  Link link(link_config);
  Rng rng(11);
  CosTxConfig tx_config;
  tx_config.mcs = McsId::for_rate(6);
  const Bytes ack = make_test_psdu(20, rng);
  const CosTxPacket tx = cos_transmit(ack, {}, tx_config);
  const FrontEndResult fe = receiver_front_end(link.send(tx.samples));
  ASSERT_TRUE(fe.signal.has_value());
  EXPECT_FALSE(decode_selection_feedback(fe).has_value());
}

TEST(FeedbackLoop, RobustCodecRejectsFadedEntries) {
  // Unit-level property behind the robust codec: a subcarrier whose both
  // rows read silent (a deep fade) is rejected instead of injected.
  const std::vector<int> selection = {5, 20};
  auto [row1, row2] = encode_selection_vector_robust(selection);
  // Deep fade on (unselected) subcarrier 33: the detector reads silence
  // in BOTH symbols. row2[33] is already 1 (the complement pattern
  // silences unselected subcarriers); the fade flips row1[33] to 1 too.
  row1[33] = 1;
  EXPECT_EQ(decode_selection_vector_robust(row1, row2), selection);
  // A plain one-symbol vector would have been corrupted.
  EXPECT_NE(decode_selection_vector(row1), selection);
}

TEST(FeedbackLoop, WeakPlacementBeatsStrongPlacement) {
  // Ablation (DESIGN.md §4.1): placing silences on the *strongest*
  // subcarriers erases good symbols, while weak placement erases symbols
  // that fading was going to corrupt anyway. At a tight SNR margin the
  // weak placement must keep more packets alive.
  int weak_ok = 0, strong_ok = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    LinkConfig link_config;
    link_config.snr_db = 14.2;  // barely above 16QAM 1/2 threshold
    link_config.channel_seed = seed;
    link_config.noise_seed = seed * 7;

    for (int placement = 0; placement < 2; ++placement) {
      Link link(link_config);
      Rng rng(seed * 1000 + static_cast<std::uint64_t>(placement));
      const Bytes psdu = make_test_psdu(1024, rng);
      const Bits control = rng.bits(240);

      // Rank subcarriers by true channel gain (genie placement for the
      // ablation; the EVM feedback approximates this in practice).
      const auto response = link.channel().frequency_response();
      const auto bins = data_subcarrier_bins();
      std::vector<int> order(kNumDataSubcarriers);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return std::norm(response[static_cast<std::size_t>(
                   bins[static_cast<std::size_t>(a)])]) <
               std::norm(response[static_cast<std::size_t>(
                   bins[static_cast<std::size_t>(b)])]);
      });
      std::vector<int> subcarriers(order.begin(), order.begin() + 8);
      if (placement == 1) {
        subcarriers.assign(order.end() - 8, order.end());
      }

      CosTxConfig tx_config;
      tx_config.mcs = McsId::for_rate(24);
      tx_config.control_subcarriers = subcarriers;
      const CosTxPacket tx = cos_transmit(psdu, control, tx_config);
      const CxVec received = link.send(tx.samples);

      CosRxConfig rx_config;
      rx_config.control_subcarriers = subcarriers;
      const CosRxPacket rx = cos_receive(received, rx_config);
      (placement == 0 ? weak_ok : strong_ok) += rx.data_ok;
    }
  }
  EXPECT_GE(weak_ok, strong_ok);
}

}  // namespace
}  // namespace silence
