#include "core/cos_profile.h"

#include <gtest/gtest.h>

#include "runner/json.h"

namespace silence {
namespace {

TEST(CosProfile, DefaultsMatchThePaperBootstrap) {
  const CosProfile profile;
  EXPECT_EQ(profile.control_subcarriers,
            (std::vector<int>{10, 11, 12, 13, 14, 15, 16, 17}));
  EXPECT_EQ(profile.bits_per_interval, kDefaultBitsPerInterval);
  EXPECT_EQ(profile.scrambler_seed, 0x5D);
  EXPECT_EQ(profile.min_feedback_subcarriers, 6);
}

TEST(CosProfile, JsonRoundTripsEveryField) {
  CosProfile profile;
  profile.control_subcarriers = {0, 7, 21, 40};
  profile.bits_per_interval = 5;
  profile.detector.mode = ThresholdMode::kPerSubcarrierMidpoint;
  profile.detector.threshold_margin = 9.5;
  profile.detector.fixed_threshold = 0.125;
  profile.scrambler_seed = 0x2A;
  profile.min_feedback_subcarriers = 3;

  const CosProfile back = CosProfile::from_json(profile.to_json());
  EXPECT_EQ(back, profile);
  EXPECT_EQ(back.to_json().dump_compact(), profile.to_json().dump_compact());
}

TEST(CosProfile, DetectorModulationIsTransientNotSerialized) {
  // `detector.modulation` follows the packet's SIGNAL field at RX time;
  // two profiles differing only there must serialize identically.
  CosProfile a;
  CosProfile b;
  b.detector.modulation = Modulation::kQam64;
  EXPECT_EQ(a.to_json().dump_compact(), b.to_json().dump_compact());
}

TEST(CosProfile, FromJsonRejectsMissingFields) {
  const runner::Json full = CosProfile{}.to_json();
  for (const auto& [key, value] : full.as_object()) {
    runner::Json pruned = runner::Json::object();
    for (const auto& [k, v] : full.as_object()) {
      if (k != key) pruned.set(k, v);
    }
    EXPECT_THROW(CosProfile::from_json(pruned), std::runtime_error)
        << "missing '" << key << "' was accepted";
  }
}

}  // namespace
}  // namespace silence
