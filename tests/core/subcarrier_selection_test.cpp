#include "core/subcarrier_selection.h"

#include <gtest/gtest.h>

#include "phy/modulation.h"

namespace silence {
namespace {

TEST(SubcarrierSelection, PicksEvmAboveHalfDm) {
  SubcarrierEvm evm{};
  const double half_dm = min_constellation_distance(Modulation::kQam16) / 2.0;
  evm[5] = half_dm * 1.5;
  evm[20] = half_dm * 2.0;
  evm[33] = half_dm * 0.5;  // below threshold
  const auto selected =
      select_control_subcarriers(evm, Modulation::kQam16, 0);
  ASSERT_EQ(selected.size(), 2u);
  // Canonical ascending subcarrier order.
  EXPECT_EQ(selected[0], 5);
  EXPECT_EQ(selected[1], 20);
}

TEST(SubcarrierSelection, TopsUpToMinCount) {
  SubcarrierEvm evm{};
  for (int j = 0; j < kNumDataSubcarriers; ++j) {
    evm[static_cast<std::size_t>(j)] = 0.001 * (j + 1);  // all tiny
  }
  const auto selected =
      select_control_subcarriers(evm, Modulation::kQpsk, 6);
  ASSERT_EQ(selected.size(), 6u);
  // The six weakest (highest-EVM) subcarriers are 42..47, ascending.
  EXPECT_EQ(selected[0], 42);
  EXPECT_EQ(selected[5], 47);
}

TEST(SubcarrierSelection, MaxCountCaps) {
  SubcarrierEvm evm{};
  for (auto& v : evm) v = 10.0;  // everything "weak"
  const auto selected =
      select_control_subcarriers(evm, Modulation::kQam64, 0, 8);
  EXPECT_EQ(selected.size(), 8u);
}

TEST(SubcarrierSelection, ThresholdDependsOnModulation) {
  // An EVM of 0.2 predicts errors for 64QAM (D_m/2 = 0.154) but not for
  // QPSK (D_m/2 = 0.707).
  SubcarrierEvm evm{};
  evm[10] = 0.2;
  EXPECT_EQ(select_control_subcarriers(evm, Modulation::kQam64, 0).size(),
            1u);
  EXPECT_TRUE(select_control_subcarriers(evm, Modulation::kQpsk, 0).empty());
}

TEST(SubcarrierSelection, BadCountsRejected) {
  SubcarrierEvm evm{};
  EXPECT_THROW(select_control_subcarriers(evm, Modulation::kQpsk, -1),
               std::invalid_argument);
  EXPECT_THROW(select_control_subcarriers(evm, Modulation::kQpsk, 10, 5),
               std::invalid_argument);
  EXPECT_THROW(select_control_subcarriers(evm, Modulation::kQpsk, 0, 49),
               std::invalid_argument);
}

TEST(FeedbackVector, EncodeDecodeRoundTrip) {
  const std::vector<int> selected = {3, 17, 25, 40, 47};
  const auto row = encode_selection_vector(selected);
  ASSERT_EQ(row.size(), static_cast<std::size_t>(kNumDataSubcarriers));
  EXPECT_EQ(decode_selection_vector(row), selected);
}

TEST(FeedbackVector, EmptySelection) {
  const auto row = encode_selection_vector({});
  EXPECT_TRUE(decode_selection_vector(row).empty());
}

TEST(FeedbackVector, FullSelection) {
  std::vector<int> all;
  for (int j = 0; j < kNumDataSubcarriers; ++j) all.push_back(j);
  const auto row = encode_selection_vector(all);
  EXPECT_EQ(decode_selection_vector(row), all);
}

TEST(FeedbackVector, Validation) {
  EXPECT_THROW(encode_selection_vector(std::vector<int>{48}),
               std::invalid_argument);
  EXPECT_THROW(encode_selection_vector(std::vector<int>{-1}),
               std::invalid_argument);
  const std::vector<std::uint8_t> short_row(47, 0);
  EXPECT_THROW(decode_selection_vector(short_row), std::invalid_argument);
}

TEST(FeedbackVector, OneOfdmSymbolSuffices) {
  // The paper's claim: the selection vector feedback costs exactly one
  // OFDM symbol (48 data subcarriers >= 48 vector entries).
  static_assert(kNumDataSubcarriers == 48);
  SUCCEED();
}

}  // namespace
}  // namespace silence
