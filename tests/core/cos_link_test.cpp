#include "core/cos_link.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "channel/fading.h"
#include "common/crc32.h"
#include "common/rng.h"

namespace silence {
namespace {

const std::vector<int> kControl = {10, 11, 12, 13, 14, 15, 16, 17};

Bytes test_psdu(Rng& rng, std::size_t total) {
  Bytes psdu = rng.bytes(total - 4);
  append_fcs(psdu);
  return psdu;
}

CosTxConfig tx_config(int mbps) {
  CosTxConfig config;
  config.mcs = McsId::for_rate(mbps);
  config.control_subcarriers = kControl;
  return config;
}

CosRxConfig rx_config() {
  CosRxConfig config;
  config.control_subcarriers = kControl;
  return config;
}

TEST(CosLink, CleanChannelDataAndControlBothDecode) {
  Rng rng(1);
  const Bytes psdu = test_psdu(rng, 300);
  const Bits control = rng.bits(48);
  const CosTxPacket tx = cos_transmit(psdu, control, tx_config(12));
  EXPECT_EQ(tx.plan.bits_sent, 48u);

  const CosRxPacket rx = cos_receive(tx.samples, rx_config());
  ASSERT_TRUE(rx.data_ok);
  EXPECT_EQ(rx.psdu, psdu);
  ASSERT_GE(rx.control_bits.size(), 48u);
  for (std::size_t i = 0; i < 48; ++i) {
    EXPECT_EQ(rx.control_bits[i], control[i]);
  }
}

class CosLinkAllRates : public ::testing::TestWithParam<int> {};

TEST_P(CosLinkAllRates, AwgnAtComfortableSnr) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Mcs& mcs = mcs_for_rate(GetParam());
  const Bytes psdu = test_psdu(rng, 400);
  const Bits control = rng.bits(32);
  const CosTxPacket tx = cos_transmit(psdu, control, tx_config(GetParam()));

  CxVec samples = tx.samples;
  const double nv = noise_var_for_snr_db(mcs.min_required_snr_db + 10.0);
  for (auto& x : samples) x += rng.complex_gaussian(nv);

  const CosRxPacket rx = cos_receive(samples, rx_config());
  ASSERT_TRUE(rx.data_ok) << "rate " << GetParam();
  ASSERT_GE(rx.control_bits.size(), tx.plan.bits_sent);
  for (std::size_t i = 0; i < tx.plan.bits_sent; ++i) {
    EXPECT_EQ(rx.control_bits[i], control[i]) << "control bit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, CosLinkAllRates,
                         ::testing::Values(6, 9, 12, 18, 24, 36, 48, 54));

TEST(CosLink, SilencesActuallyZeroTransmitGrid) {
  Rng rng(2);
  const Bytes psdu = test_psdu(rng, 200);
  const Bits control = rng.bits(20);
  const CosTxPacket tx = cos_transmit(psdu, control, tx_config(24));
  std::size_t zeroed = 0;
  for (std::size_t s = 0; s < tx.frame.data_grid.size(); ++s) {
    for (int sc = 0; sc < kNumDataSubcarriers; ++sc) {
      const auto idx = static_cast<std::size_t>(sc);
      if (tx.plan.mask[s][idx]) {
        EXPECT_EQ(tx.frame.data_grid[s][idx], (Cx{0.0, 0.0}));
        ++zeroed;
      } else {
        EXPECT_NE(tx.frame.data_grid[s][idx], (Cx{0.0, 0.0}));
      }
    }
  }
  EXPECT_EQ(zeroed, tx.plan.silence_count);
}

TEST(CosLink, NoControlSubcarriersMeansPlainPacket) {
  Rng rng(3);
  const Bytes psdu = test_psdu(rng, 100);
  CosTxConfig config;
  config.mcs = McsId::for_rate(12);
  config.control_subcarriers.clear();  // profile default is the bootstrap set
  const Bits control = rng.bits(8);
  const CosTxPacket tx = cos_transmit(psdu, control, config);
  EXPECT_EQ(tx.plan.silence_count, 0u);
  EXPECT_EQ(tx.plan.bits_sent, 0u);
}

TEST(CosLink, EmptyControlMessageMeansPlainPacket) {
  Rng rng(4);
  const Bytes psdu = test_psdu(rng, 100);
  const CosTxPacket tx = cos_transmit(psdu, {}, tx_config(12));
  EXPECT_EQ(tx.plan.silence_count, 0u);
}

TEST(CosLink, MissingMcsRejected) {
  Rng rng(5);
  const Bytes psdu = test_psdu(rng, 100);
  CosTxConfig config;  // mcs left null
  EXPECT_THROW(cos_transmit(psdu, {}, config), std::invalid_argument);
}

TEST(CosLink, EvmComputedAfterCrcPass) {
  Rng rng(6);
  const Bytes psdu = test_psdu(rng, 300);
  const Bits control = rng.bits(24);
  const CosTxPacket tx = cos_transmit(psdu, control, tx_config(24));

  MultipathProfile profile;
  FadingChannel channel(profile, 17);
  Rng noise(7);
  const double nv = noise_var_for_measured_snr(channel, 20.0);
  const CxVec received = channel.transmit(tx.samples, nv, noise);

  const CosRxPacket rx = cos_receive(received, rx_config());
  ASSERT_TRUE(rx.data_ok);
  ASSERT_TRUE(rx.evm_valid);
  // Weak subcarriers must show larger EVM: compare against the channel.
  const auto response = channel.frequency_response();
  const auto bins = data_subcarrier_bins();
  int strongest = 0, weakest = 0;
  for (int j = 1; j < kNumDataSubcarriers; ++j) {
    const double g = std::norm(response[static_cast<std::size_t>(
        bins[static_cast<std::size_t>(j)])]);
    if (g > std::norm(response[static_cast<std::size_t>(
                bins[static_cast<std::size_t>(strongest)])])) {
      strongest = j;
    }
    if (g < std::norm(response[static_cast<std::size_t>(
                bins[static_cast<std::size_t>(weakest)])])) {
      weakest = j;
    }
  }
  EXPECT_GT(rx.evm[static_cast<std::size_t>(weakest)],
            rx.evm[static_cast<std::size_t>(strongest)]);
}

TEST(CosLink, ReconstructIdealGridMatchesTransmitter) {
  Rng rng(8);
  const Bytes psdu = test_psdu(rng, 200);
  const Mcs& mcs = mcs_for_rate(36);
  const std::uint8_t seed = 0x11;
  const TxFrame frame = build_frame(psdu, mcs, seed);
  DecodeResult decode;
  decode.crc_ok = true;
  decode.psdu = psdu;
  decode.scrambler_seed = seed;
  const auto grid = reconstruct_ideal_grid(decode, mcs);
  ASSERT_EQ(grid.size(), frame.data_grid.size());
  for (std::size_t s = 0; s < grid.size(); ++s) {
    for (int j = 0; j < kNumDataSubcarriers; ++j) {
      EXPECT_EQ(grid[s][static_cast<std::size_t>(j)],
                frame.data_grid[s][static_cast<std::size_t>(j)]);
    }
  }
  DecodeResult bad;
  bad.crc_ok = false;
  EXPECT_THROW(reconstruct_ideal_grid(bad, mcs), std::invalid_argument);
}

TEST(CosLink, NextSelectionPrefersWeakSubcarriers) {
  Rng rng(9);
  const Bytes psdu = test_psdu(rng, 400);
  const Bits control = rng.bits(16);
  const CosTxPacket tx = cos_transmit(psdu, control, tx_config(24));

  MultipathProfile profile;
  FadingChannel channel(profile, 29);
  Rng noise(10);
  const double nv = noise_var_for_measured_snr(channel, 18.0);
  const CxVec received = channel.transmit(tx.samples, nv, noise);

  CosRxConfig config = rx_config();
  config.min_feedback_subcarriers = 6;
  const CosRxPacket rx = cos_receive(received, config);
  ASSERT_TRUE(rx.data_ok);
  ASSERT_GE(rx.next_control_subcarriers.size(), 6u);

  // Every selected subcarrier must be detectable, and among detectable
  // subcarriers the selection must prefer the weakest (highest EVM).
  DetectorConfig detector;
  detector.modulation = Modulation::kQam16;
  double sel_sum = 0.0, rest_sum = 0.0;
  int rest_count = 0;
  for (int j = 0; j < kNumDataSubcarriers; ++j) {
    const bool in_sel =
        std::find(rx.next_control_subcarriers.begin(),
                  rx.next_control_subcarriers.end(),
                  j) != rx.next_control_subcarriers.end();
    const bool detectable =
        subcarrier_detectable(detector, rx.fe.noise_var, rx.fe.channel, j);
    if (in_sel) {
      EXPECT_TRUE(detectable) << "selected undetectable subcarrier " << j;
      sel_sum += rx.evm[static_cast<std::size_t>(j)];
    } else if (detectable) {
      rest_sum += rx.evm[static_cast<std::size_t>(j)];
      ++rest_count;
    }
  }
  ASSERT_GT(rest_count, 0);
  const double sel_mean =
      sel_sum / static_cast<double>(rx.next_control_subcarriers.size());
  const double rest_mean = rest_sum / rest_count;
  EXPECT_GT(sel_mean, rest_mean);
}

}  // namespace
}  // namespace silence
