#include "core/evm.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "phy/modulation.h"

namespace silence {
namespace {

SymbolGrid constant_grid(int symbols, Cx value) {
  SymbolGrid grid(kNumDataSubcarriers);
  grid.resize(static_cast<std::size_t>(symbols));
  for (Cx& p : grid.cells()) p = value;
  return grid;
}

TEST(Evm, ZeroForPerfectReception) {
  Rng rng(1);
  SymbolGrid ideal(kNumDataSubcarriers);
  ideal.resize(5);
  for (Cx& p : ideal.cells()) {
    p = constellation(Modulation::kQam16)[rng.uniform_int(0, 15)];
  }
  const auto evm = per_subcarrier_evm(ideal, ideal, Modulation::kQam16);
  for (double v : evm) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Evm, KnownOffsetGivesKnownEvm) {
  // Every received point offset by 0.1: EVM = 0.1 / sqrt(mean energy) =
  // 0.1 for unit-energy constellations.
  const auto ideal = constant_grid(4, Cx{1.0, 0.0});
  auto received = ideal;
  for (Cx& p : received.cells()) p += Cx{0.1, 0.0};
  const auto evm = per_subcarrier_evm(received, ideal, Modulation::kBpsk);
  for (double v : evm) EXPECT_NEAR(v, 0.1, 1e-12);
}

TEST(Evm, PerSubcarrierIndependence) {
  // Distort only subcarrier 7; all others must stay at zero EVM.
  const auto ideal = constant_grid(10, Cx{1.0, 0.0});
  auto received = ideal;
  for (const auto row : received) row[7] += Cx{0.0, 0.3};
  const auto evm = per_subcarrier_evm(received, ideal, Modulation::kBpsk);
  for (int j = 0; j < kNumDataSubcarriers; ++j) {
    if (j == 7) {
      EXPECT_NEAR(evm[7], 0.3, 1e-12);
    } else {
      EXPECT_DOUBLE_EQ(evm[static_cast<std::size_t>(j)], 0.0);
    }
  }
}

TEST(Evm, RmsOverSymbols) {
  // Alternating error magnitudes 0 and 0.2 -> RMS = 0.2/sqrt(2).
  const auto ideal = constant_grid(2, Cx{1.0, 0.0});
  auto received = ideal;
  received[1][0] += Cx{0.2, 0.0};
  const auto evm = per_subcarrier_evm(received, ideal, Modulation::kBpsk);
  EXPECT_NEAR(evm[0], 0.2 / std::sqrt(2.0), 1e-12);
}

TEST(Evm, ExcludedSilencePositionsIgnored) {
  const auto ideal = constant_grid(3, Cx{1.0, 0.0});
  auto received = ideal;
  // A silence symbol received as (0,0) would look like a huge error.
  received[1][5] = Cx{0.0, 0.0};
  SilenceMask mask(3, std::vector<std::uint8_t>(kNumDataSubcarriers, 0));
  mask[1][5] = 1;
  const auto evm =
      per_subcarrier_evm(received, ideal, Modulation::kBpsk, &mask);
  EXPECT_DOUBLE_EQ(evm[5], 0.0);
  // Without the mask the same data shows a large EVM.
  const auto no_mask = per_subcarrier_evm(received, ideal, Modulation::kBpsk);
  EXPECT_GT(no_mask[5], 0.4);
}

TEST(Evm, FullyExcludedSubcarrierStaysZeroWhileOthersMeasure) {
  // Subcarrier 11 is silenced in EVERY symbol (count == 0 for its
  // accumulator): its EVM must come back exactly 0, not NaN, while an
  // unmasked distorted subcarrier still measures.
  const auto ideal = constant_grid(4, Cx{1.0, 0.0});
  auto received = ideal;
  SilenceMask mask(4, std::vector<std::uint8_t>(kNumDataSubcarriers, 0));
  for (std::size_t s = 0; s < 4; ++s) {
    received[s][11] = Cx{0.0, 0.0};  // would be a huge error if counted
    mask[s][11] = 1;
    received[s][12] += Cx{0.05, 0.0};
  }
  const auto evm =
      per_subcarrier_evm(received, ideal, Modulation::kBpsk, &mask);
  EXPECT_DOUBLE_EQ(evm[11], 0.0);
  EXPECT_NEAR(evm[12], 0.05, 1e-12);
}

TEST(Evm, AllSymbolsExcludedGivesZero) {
  const auto ideal = constant_grid(2, Cx{1.0, 0.0});
  SilenceMask mask(2, std::vector<std::uint8_t>(kNumDataSubcarriers, 1));
  const auto evm = per_subcarrier_evm(ideal, ideal, Modulation::kBpsk, &mask);
  for (double v : evm) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Evm, ShapeValidation) {
  const auto a = constant_grid(2, Cx{1.0, 0.0});
  const auto b = constant_grid(3, Cx{1.0, 0.0});
  EXPECT_THROW(per_subcarrier_evm(a, b, Modulation::kBpsk),
               std::invalid_argument);
  SymbolGrid short_row(47);
  short_row.resize(2);
  EXPECT_THROW(per_subcarrier_evm(short_row, short_row, Modulation::kBpsk),
               std::invalid_argument);
}


TEST(Evm, MaskShapeValidated) {
  const auto grid = constant_grid(3, Cx{1.0, 0.0});
  SilenceMask wrong(2, std::vector<std::uint8_t>(kNumDataSubcarriers, 0));
  EXPECT_THROW(per_subcarrier_evm(grid, grid, Modulation::kBpsk, &wrong),
               std::invalid_argument);
}

TEST(EvmChange, ZeroForIdenticalSnapshots) {
  SubcarrierEvm evm{};
  for (int j = 0; j < kNumDataSubcarriers; ++j) {
    evm[static_cast<std::size_t>(j)] = 0.01 * (j + 1);
  }
  EXPECT_DOUBLE_EQ(evm_change(evm, evm), 0.0);
}

TEST(EvmChange, MatchesHandComputedValue) {
  SubcarrierEvm a{}, b{};
  a[0] = 0.3;
  b[0] = 0.4;
  // ||a - b|| / ||b|| = 0.1 / 0.4.
  EXPECT_NEAR(evm_change(a, b), 0.25, 1e-12);
}

TEST(EvmChange, ScaleInvarianceOfReference) {
  Rng rng(2);
  SubcarrierEvm a{}, b{};
  for (int j = 0; j < kNumDataSubcarriers; ++j) {
    a[static_cast<std::size_t>(j)] = rng.uniform() * 0.2;
    b[static_cast<std::size_t>(j)] = a[static_cast<std::size_t>(j)] * 1.01;
  }
  // A uniform 1% change gives nabla-EVM close to 1%.
  EXPECT_NEAR(evm_change(a, b), 0.01, 2e-3);
}

TEST(EvmChange, ZeroReferenceHandled) {
  SubcarrierEvm a{}, zero{};
  a[3] = 0.1;
  EXPECT_DOUBLE_EQ(evm_change(a, zero), 0.0);
}

}  // namespace
}  // namespace silence
