#include "core/feedback_transport.h"

#include <gtest/gtest.h>

#include "channel/fading.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "core/cos_link.h"
#include "phy/transmitter.h"

namespace silence {
namespace {

Bytes ack_psdu(Rng& rng) {
  Bytes psdu = rng.bytes(10);
  append_fcs(psdu);
  return psdu;
}

CxVec burst_with_feedback(const std::vector<int>& selection, Rng& rng) {
  const TxFrame frame = build_frame(ack_psdu(rng), mcs_for_rate(6));
  CxVec samples = frame_to_samples(frame);
  append_selection_feedback(samples, selection, frame.num_symbols() + 1);
  return samples;
}

TEST(FeedbackTransport, CleanChannelRoundTrip) {
  Rng rng(1);
  const std::vector<int> selection = {0, 7, 19, 33, 47};
  const CxVec samples = burst_with_feedback(selection, rng);
  const FrontEndResult fe = receiver_front_end(samples);
  ASSERT_TRUE(fe.signal.has_value());
  ASSERT_EQ(fe.trailer_bins.size(), 2u);
  const auto decoded = decode_selection_feedback(fe);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, selection);
}

TEST(FeedbackTransport, EmptySelectionRoundTrip) {
  Rng rng(2);
  const CxVec samples = burst_with_feedback({}, rng);
  const FrontEndResult fe = receiver_front_end(samples);
  const auto decoded = decode_selection_feedback(fe);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(FeedbackTransport, AddsExactlyTwoSymbols) {
  Rng rng(3);
  const TxFrame frame = build_frame(ack_psdu(rng), mcs_for_rate(6));
  CxVec samples = frame_to_samples(frame);
  const std::size_t before = samples.size();
  append_selection_feedback(samples, std::vector<int>{1, 2, 3},
                            frame.num_symbols() + 1);
  EXPECT_EQ(samples.size(), before + 2u * kSymbolSamples);
}

TEST(FeedbackTransport, NoTrailerMeansNoDecode) {
  Rng rng(4);
  const CxVec samples = frame_to_samples(build_frame(ack_psdu(rng),
                                                     mcs_for_rate(6)));
  const FrontEndResult fe = receiver_front_end(samples);
  EXPECT_FALSE(decode_selection_feedback(fe).has_value());
}

TEST(FeedbackTransport, SurvivesNoisyFadedChannel) {
  int intact = 0;
  const int trials = 25;
  for (int t = 0; t < trials; ++t) {
    Rng rng(static_cast<std::uint64_t>(t) + 100);
    MultipathProfile profile;
    FadingChannel channel(profile, static_cast<std::uint64_t>(t) + 1);
    const double nv = noise_var_for_measured_snr(channel, 15.0);

    // Pick a selection that is detectable on THIS channel (the real loop
    // guarantees this via TDD reciprocity + the detectability filter).
    const FrontEndResult probe = receiver_front_end(
        channel.transmit(burst_with_feedback({}, rng), nv, rng));
    if (!probe.signal) continue;
    DetectorConfig detector;
    detector.modulation = Modulation::kBpsk;
    std::vector<int> selection;
    for (int sc = 0; sc < kNumDataSubcarriers && selection.size() < 6; ++sc) {
      if (subcarrier_detectable(detector, probe.noise_var, probe.channel,
                                sc)) {
        selection.push_back(sc);
      }
    }
    if (selection.size() < 6) continue;

    const CxVec received =
        channel.transmit(burst_with_feedback(selection, rng), nv, rng);
    const FrontEndResult fe = receiver_front_end(received);
    if (!fe.signal) continue;
    const auto decoded = decode_selection_feedback(fe);
    if (decoded && *decoded == selection) ++intact;
  }
  EXPECT_GE(intact, trials * 8 / 10);
}

TEST(FeedbackTransport, AckPayloadUnaffectedByTrailer) {
  Rng rng(5);
  Bytes psdu = rng.bytes(10);
  append_fcs(psdu);
  const TxFrame frame = build_frame(psdu, mcs_for_rate(6));
  CxVec samples = frame_to_samples(frame);
  append_selection_feedback(samples, std::vector<int>{5, 6, 7, 8},
                            frame.num_symbols() + 1);
  const RxPacket packet = receive_packet(samples);
  ASSERT_TRUE(packet.ok);
  EXPECT_EQ(packet.psdu, psdu);
}

}  // namespace
}  // namespace silence
