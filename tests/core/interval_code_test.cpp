#include "core/interval_code.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace silence {
namespace {

TEST(IntervalCode, PaperExample) {
  // Paper §II-A: "001001101000001110100111" -> {2, 6, 8? ...} — the two
  // worked digits are "0010" -> 2 and "0110" -> 6, last group "0111" -> 7.
  const Bits bits = {0, 0, 1, 0, 0, 1, 1, 0, 1, 0, 0, 0,
                     0, 0, 1, 1, 1, 0, 1, 0, 0, 1, 1, 1};
  const auto intervals = bits_to_intervals(bits, 4);
  ASSERT_EQ(intervals.size(), 6u);
  EXPECT_EQ(intervals[0], 2);
  EXPECT_EQ(intervals[1], 6);
  EXPECT_EQ(intervals[5], 7);
}

TEST(IntervalCode, RoundTripRandom) {
  Rng rng(1);
  for (int k = 1; k <= 8; ++k) {
    const Bits bits = rng.bits(static_cast<std::size_t>(k) * 25);
    const auto intervals = bits_to_intervals(bits, k);
    EXPECT_EQ(intervals.size(), 25u);
    EXPECT_EQ(intervals_to_bits(intervals, k), bits) << "k=" << k;
  }
}

TEST(IntervalCode, IntervalRangeMatchesK) {
  Rng rng(2);
  for (int k = 1; k <= 8; ++k) {
    const Bits bits = rng.bits(static_cast<std::size_t>(k) * 100);
    for (int interval : bits_to_intervals(bits, k)) {
      EXPECT_GE(interval, 0);
      EXPECT_LE(interval, (1 << k) - 1);
    }
  }
}

TEST(IntervalCode, RejectsBadK) {
  const Bits bits(8, 0);
  EXPECT_THROW(bits_to_intervals(bits, 0), std::invalid_argument);
  EXPECT_THROW(bits_to_intervals(bits, 9), std::invalid_argument);
}

TEST(IntervalCode, RejectsPartialGroup) {
  const Bits bits(10, 0);
  EXPECT_THROW(bits_to_intervals(bits, 4), std::invalid_argument);
}

TEST(IntervalCode, RejectsOutOfRangeInterval) {
  const std::vector<int> intervals = {3, 16};
  EXPECT_THROW(intervals_to_bits(intervals, 4), std::invalid_argument);
  const std::vector<int> negative = {-1};
  EXPECT_THROW(intervals_to_bits(negative, 4), std::invalid_argument);
}

TEST(IntervalCode, TolerantDecodeStopsAtBadInterval) {
  const std::vector<int> intervals = {5, 3, 17, 2};  // 17 > 15: silence lost
  const Bits decoded = intervals_to_bits_tolerant(intervals, 4);
  // Only the first two intervals decode.
  ASSERT_EQ(decoded.size(), 8u);
  EXPECT_EQ(bits_to_uint(std::span(decoded).first(4)), 5u);
  EXPECT_EQ(bits_to_uint(std::span(decoded).subspan(4, 4)), 3u);
}

TEST(IntervalCode, GridPositionsNeeded) {
  // Start silence + per interval (gap + closing silence).
  const std::vector<int> intervals = {2, 6, 8, 0, 14, 7};
  EXPECT_EQ(grid_positions_needed(intervals),
            1u + (2 + 1) + (6 + 1) + (8 + 1) + (0 + 1) + (14 + 1) + (7 + 1));
}

TEST(IntervalCode, SilenceCount) {
  EXPECT_EQ(silence_count_for_intervals(0), 1u);
  EXPECT_EQ(silence_count_for_intervals(6), 7u);
}

TEST(IntervalCode, IntervalsThatFit) {
  const std::vector<int> intervals = {2, 6, 8};  // needs 1+3+7+9 = 20
  EXPECT_EQ(intervals_that_fit(intervals, 20), 3u);
  EXPECT_EQ(intervals_that_fit(intervals, 19), 2u);
  EXPECT_EQ(intervals_that_fit(intervals, 11), 2u);
  EXPECT_EQ(intervals_that_fit(intervals, 10), 1u);
  EXPECT_EQ(intervals_that_fit(intervals, 4), 1u);
  EXPECT_EQ(intervals_that_fit(intervals, 3), 0u);
  EXPECT_EQ(intervals_that_fit(intervals, 0), 0u);
}

TEST(IntervalCode, ZeroIntervalMeansConsecutiveSilences) {
  const Bits bits = {0, 0, 0, 0};  // one interval of value 0
  const auto intervals = bits_to_intervals(bits, 4);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0], 0);
  EXPECT_EQ(grid_positions_needed(intervals), 2u);  // two adjacent silences
}

class IntervalCodeKSweep : public ::testing::TestWithParam<int> {};

TEST_P(IntervalCodeKSweep, CapacityPerSilenceGrowsWithK) {
  // k bits ride on each interval; larger k = more bits per silence symbol
  // but longer expected gaps. Verify the bits-per-position tradeoff math.
  const int k = GetParam();
  Rng rng(static_cast<std::uint64_t>(k));
  const Bits bits = rng.bits(static_cast<std::size_t>(k) * 200);
  const auto intervals = bits_to_intervals(bits, k);
  const double mean_interval = ((1 << k) - 1) / 2.0;
  const double positions = static_cast<double>(grid_positions_needed(intervals));
  const double expected = 1.0 + 200.0 * (mean_interval + 1.0);
  EXPECT_NEAR(positions, expected, expected * 0.15) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, IntervalCodeKSweep, ::testing::Values(2, 3, 4, 5, 6));

}  // namespace
}  // namespace silence
