#include "core/control_framing.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/session.h"

namespace silence {
namespace {

TEST(ControlFraming, Crc8KnownVector) {
  // CRC-8/SMBus ("123456789") = 0xF4.
  const Bytes data = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc8(data), 0xF4);
  EXPECT_EQ(crc8({}), 0x00);
}

TEST(ControlFraming, RoundTrip) {
  Rng rng(1);
  for (std::size_t size : {1u, 2u, 7u, 20u, 63u}) {
    const Bytes payload = rng.bytes(size);
    const Bits bits = frame_control_message(payload);
    EXPECT_EQ(bits.size(), control_frame_bits(size));
    const auto parsed = parse_control_message(bits);
    ASSERT_TRUE(parsed.has_value()) << "size " << size;
    EXPECT_EQ(*parsed, payload);
  }
}

TEST(ControlFraming, TrailingGarbageIgnored) {
  Rng rng(2);
  const Bytes payload = rng.bytes(8);
  Bits bits = frame_control_message(payload);
  const Bits junk = rng.bits(50);
  bits.insert(bits.end(), junk.begin(), junk.end());
  const auto parsed = parse_control_message(bits);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, payload);
}

TEST(ControlFraming, AnySingleBitFlipDetected) {
  Rng rng(3);
  const Bytes payload = rng.bytes(6);
  const Bits clean = frame_control_message(payload);
  int silent_corruptions = 0;
  for (std::size_t flip = 0; flip < clean.size(); ++flip) {
    Bits bits = clean;
    bits[flip] ^= 1;
    const auto parsed = parse_control_message(bits);
    // A flipped length bit can still frame a valid-looking message only
    // if the CRC happens to match — it must never match the ORIGINAL
    // payload while claiming integrity over different bytes.
    if (parsed && *parsed != payload) ++silent_corruptions;
    if (parsed && *parsed == payload) {
      ADD_FAILURE() << "flip " << flip << " undetected yet payload intact?";
    }
  }
  // CRC-8 catches all single-bit flips within the framed region.
  EXPECT_EQ(silent_corruptions, 0);
}

TEST(ControlFraming, TruncationRejected) {
  Rng rng(4);
  const Bits bits = frame_control_message(rng.bytes(10));
  for (std::size_t keep = 0; keep < bits.size(); keep += 9) {
    EXPECT_FALSE(
        parse_control_message(std::span(bits).first(keep)).has_value());
  }
}

TEST(ControlFraming, SizeLimitsEnforced) {
  Rng rng(5);
  EXPECT_THROW(frame_control_message({}), std::invalid_argument);
  EXPECT_THROW(frame_control_message(rng.bytes(64)), std::invalid_argument);
}

TEST(ControlFraming, RandomGarbageRarelyParses) {
  Rng rng(6);
  int accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const Bits garbage = rng.bits(200);
    if (parse_control_message(garbage).has_value()) ++accepted;
  }
  // 8-bit CRC: ~1/256 of random inputs with a plausible length parse.
  EXPECT_LT(accepted, 25);
}

TEST(ControlFraming, EndToEndNoSilentCorruption) {
  // Over real links, every framed message the receiver accepts must be
  // byte-identical to what was sent — corrupted ones become "no message".
  int delivered = 0, lost = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    LinkConfig lc;
    lc.snr_db = 14.0;
    lc.snr_is_measured = true;
    lc.channel_seed = seed;
    lc.noise_seed = seed * 3;
    Link link(lc);
    CosSession session(link, SessionConfig{});
    Rng rng(seed * 11);
    const Bytes psdu = make_test_psdu(1024, rng);
    session.send_packet(psdu, rng.bits(8));  // bootstrap selection

    // Simple ARQ on top of the framing: retry until the receiver
    // verifies the message (or the attempt budget runs out).
    const Bytes message = rng.bytes(6);
    const Bits framed = frame_control_message(message);
    bool got_it = false;
    for (int attempt = 0; attempt < 5 && !got_it; ++attempt) {
      const PacketReport report = session.send_packet(psdu, framed);
      if (report.control_bits_sent < framed.size()) continue;
      const auto parsed = parse_control_message(report.rx.control_bits);
      if (parsed.has_value()) {
        EXPECT_EQ(*parsed, message) << "seed " << seed
                                    << ": silent corruption!";
        got_it = true;
      }
    }
    (got_it ? delivered : lost) += 1;
  }
  EXPECT_GE(delivered, 18);  // most messages make it, none corrupted
}

}  // namespace
}  // namespace silence
