#include "core/control_rate.h"

#include <gtest/gtest.h>

namespace silence {
namespace {

TEST(ControlRate, TableIsAscendingInSnr) {
  const auto table = default_control_rate_table();
  ASSERT_GE(table.size(), 2u);
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_LT(table[i - 1].measured_snr_db, table[i].measured_snr_db);
  }
}

TEST(ControlRate, PaperAnchors) {
  // The paper reports max R_m = 148,000 in the QPSK 1/2 region and min
  // R_m = 33,000 at 22.4 dB.
  EXPECT_EQ(select_control_rate(9.2), 148000);
  EXPECT_EQ(select_control_rate(22.4), 33000);
}

TEST(ControlRate, StepFunctionSemantics) {
  const auto table = default_control_rate_table();
  // Exactly at a table point selects that point's rate.
  for (const auto& point : table) {
    EXPECT_EQ(select_control_rate(point.measured_snr_db), point.rm);
  }
  // Below the table: the first entry's rate (the conservative floor).
  EXPECT_EQ(select_control_rate(-10.0), table.front().rm);
  // Above the table: the last entry's rate.
  EXPECT_EQ(select_control_rate(100.0), table.back().rm);
}

TEST(ControlRate, LowestRateForFallback) {
  const auto table = default_control_rate_table();
  int expected = table.front().rm;
  for (const auto& point : table) expected = std::min(expected, point.rm);
  EXPECT_EQ(lowest_control_rate(), expected);
}

TEST(ControlRate, CustomTable) {
  const std::vector<ControlRatePoint> table = {{5.0, 100}, {10.0, 200}};
  EXPECT_EQ(select_control_rate(7.0, table), 100);
  EXPECT_EQ(select_control_rate(12.0, table), 200);
  EXPECT_EQ(lowest_control_rate(table), 100);
  EXPECT_THROW(select_control_rate(5.0, {}), std::invalid_argument);
  EXPECT_THROW(lowest_control_rate({}), std::invalid_argument);
}

TEST(ControlRate, SilenceBudget) {
  // 33,000 silences/s over a ~708 us packet = 23 silences.
  EXPECT_EQ(silence_budget_for_packet(33000, 708e-6), 23);
  EXPECT_EQ(silence_budget_for_packet(0, 1e-3), 0);
  EXPECT_THROW(silence_budget_for_packet(-1, 1e-3), std::invalid_argument);
  EXPECT_THROW(silence_budget_for_packet(100, 0.0), std::invalid_argument);
}

TEST(ControlRate, BitRateMatchesPaperExample) {
  // Paper §IV-B: R_m = 33,000 with k = 4 -> 132 kbps.
  EXPECT_DOUBLE_EQ(control_bits_per_second(33000, 4), 132000.0);
  EXPECT_DOUBLE_EQ(control_bits_per_second(148000, 4), 592000.0);
}

TEST(ControlRate, PrrTargetMatchesPaper) {
  EXPECT_DOUBLE_EQ(kTargetPrr, 0.993);
}

}  // namespace
}  // namespace silence
