#include "core/energy_detector.h"

#include <cmath>
#include <gtest/gtest.h>

#include "channel/fading.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "core/cos_link.h"
#include "core/silence_plan.h"
#include "obs/health/health.h"
#include "phy/receiver.h"
#include "phy/transmitter.h"

namespace silence {
namespace {

const std::vector<int> kControl = {10, 11, 12, 13, 14, 15, 16, 17};

Bytes test_psdu(Rng& rng, std::size_t total) {
  Bytes psdu = rng.bytes(total - 4);
  append_fcs(psdu);
  return psdu;
}

// Transmits a CoS packet over AWGN at `snr_db` and returns the detected
// mask plus the ground truth.
struct DetectionRun {
  SilenceMask truth;
  SilenceMask detected;
};

DetectionRun run_detection(double snr_db, std::uint64_t seed,
                           const DetectorConfig& config = {}) {
  Rng rng(seed);
  CosTxConfig tx_config;
  tx_config.mcs = McsId::for_rate(12);
  tx_config.control_subcarriers = kControl;
  const Bytes psdu = test_psdu(rng, 200);
  const Bits control = rng.bits(40);
  const CosTxPacket tx = cos_transmit(psdu, control, tx_config);

  CxVec samples = tx.samples;
  const double nv = noise_var_for_snr_db(snr_db);
  for (auto& x : samples) x += rng.complex_gaussian(nv);

  const FrontEndResult fe = receiver_front_end(samples);
  DetectionRun run;
  run.truth = tx.plan.mask;
  if (fe.signal) run.detected = detect_silences(fe, kControl, config);
  return run;
}

TEST(EnergyDetector, PerfectAtHighSnr) {
  const DetectionRun run = run_detection(25.0, 1);
  ASSERT_EQ(run.detected.size(), run.truth.size());
  for (std::size_t s = 0; s < run.truth.size(); ++s) {
    for (int sc : kControl) {
      const auto idx = static_cast<std::size_t>(sc);
      EXPECT_EQ(run.detected[s][idx], run.truth[s][idx])
          << "symbol " << s << " subcarrier " << sc;
    }
  }
}

TEST(EnergyDetector, NonControlSubcarriersNeverFlagged) {
  const DetectionRun run = run_detection(10.0, 2);
  for (const auto& row : run.detected) {
    for (int sc = 0; sc < kNumDataSubcarriers; ++sc) {
      if (std::find(kControl.begin(), kControl.end(), sc) == kControl.end()) {
        EXPECT_EQ(row[static_cast<std::size_t>(sc)], 0);
      }
    }
  }
}

TEST(EnergyDetector, ThresholdModes) {
  std::array<Cx, kFftSize> unit_channel{};
  for (auto& h : unit_channel) h = Cx{1.0, 0.0};

  DetectorConfig margin_mode;
  margin_mode.mode = ThresholdMode::kNoiseMargin;
  margin_mode.threshold_margin = 4.0;
  EXPECT_DOUBLE_EQ(detection_threshold(margin_mode, 0.5, unit_channel, 0),
                   2.0);

  DetectorConfig fixed;
  fixed.fixed_threshold = 0.123;
  EXPECT_DOUBLE_EQ(detection_threshold(fixed, 0.5, unit_channel, 0), 0.123);

  DetectorConfig bad;
  bad.threshold_margin = 0.0;
  EXPECT_THROW(detection_threshold(bad, 0.5, unit_channel, 0),
               std::invalid_argument);
}

TEST(EnergyDetector, MidpointThresholdTracksChannelGain) {
  std::array<Cx, kFftSize> channel{};
  for (auto& h : channel) h = Cx{1.0, 0.0};
  // Make logical subcarrier 0 (bin 38) deeply faded.
  channel[38] = Cx{0.05, 0.0};

  DetectorConfig config;
  config.mode = ThresholdMode::kPerSubcarrierMidpoint;
  config.modulation = Modulation::kQam16;
  const double noise = 1e-3;
  const double strong = detection_threshold(config, noise, channel, 1);
  const double weak = detection_threshold(config, noise, channel, 0);
  EXPECT_GT(strong, weak);
  // Never below the noise floor itself.
  EXPECT_GE(weak, noise);
}

TEST(EnergyDetector, DetectabilityRequiresHeadroom) {
  std::array<Cx, kFftSize> channel{};
  for (auto& h : channel) h = Cx{1.0, 0.0};
  channel[38] = Cx{0.01, 0.0};  // logical subcarrier 0: dead

  DetectorConfig config;
  config.modulation = Modulation::kQpsk;
  const double noise = 1e-3;
  EXPECT_TRUE(subcarrier_detectable(config, noise, channel, 1));
  EXPECT_FALSE(subcarrier_detectable(config, noise, channel, 0));
  // 64QAM's inner points make detection harder at equal channel gain.
  DetectorConfig qam64 = config;
  qam64.modulation = Modulation::kQam64;
  channel[39] = Cx{0.2, 0.0};  // logical subcarrier 1: -14 dB
  EXPECT_TRUE(subcarrier_detectable(config, noise, channel, 1));
  EXPECT_FALSE(subcarrier_detectable(qam64, noise, channel, 1));
}

TEST(EnergyDetector, HugeThresholdFlagsEverything) {
  DetectorConfig config;
  config.fixed_threshold = 1e9;
  const DetectionRun run = run_detection(20.0, 3, config);
  for (const auto& row : run.detected) {
    for (int sc : kControl) {
      EXPECT_EQ(row[static_cast<std::size_t>(sc)], 1);
    }
  }
}

TEST(EnergyDetector, ZeroThresholdFlagsNothing) {
  DetectorConfig config;
  config.fixed_threshold = 0.0;
  const DetectionRun run = run_detection(20.0, 4, config);
  for (const auto& row : run.detected) {
    for (int sc : kControl) {
      EXPECT_EQ(row[static_cast<std::size_t>(sc)], 0);
    }
  }
}

TEST(EnergyDetector, FalseRatesSmallInWorkingSnrRegion) {
  // Paper Fig. 10(c): above ~10 dB both false probabilities are near 0.
  std::size_t false_pos = 0, false_neg = 0, active = 0, silent = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const DetectionRun run = run_detection(15.0, 100 + seed);
    for (std::size_t s = 0; s < run.truth.size(); ++s) {
      for (int sc : kControl) {
        const auto idx = static_cast<std::size_t>(sc);
        if (run.truth[s][idx]) {
          ++silent;
          if (!run.detected[s][idx]) ++false_neg;
        } else {
          ++active;
          if (run.detected[s][idx]) ++false_pos;
        }
      }
    }
  }
  ASSERT_GT(silent, 50u);
  ASSERT_GT(active, 500u);
  EXPECT_LT(static_cast<double>(false_neg) / silent, 0.01);
  EXPECT_LT(static_cast<double>(false_pos) / active, 0.01);
}

// Confusion tallies of one truth/detected mask pair over the control
// subcarriers (the count_confusion() rule, inlined to keep this test at
// the detector layer).
struct Confusion {
  std::size_t silent = 0, active = 0, misses = 0, false_alarms = 0;
  void add(const DetectionRun& run) {
    if (run.detected.size() != run.truth.size()) return;
    for (std::size_t s = 0; s < run.truth.size(); ++s) {
      for (int sc : kControl) {
        const auto idx = static_cast<std::size_t>(sc);
        if (run.truth[s][idx]) {
          ++silent;
          if (!run.detected[s][idx]) ++misses;
        } else {
          ++active;
          if (run.detected[s][idx]) ++false_alarms;
        }
      }
    }
  }
};

TEST(EnergyDetector, ErrorRatesMonotoneInThresholdMargin) {
  // Property: on FIXED packets (same seeds -> identical channel/noise
  // realizations), raising threshold_margin only raises the threshold,
  // so each cell's declared-silent indicator flips monotonically — the
  // miss count is nonincreasing and the false-alarm count nondecreasing
  // across the whole margin sweep, not just on average.
  const double margins[] = {0.5, 1.0, 2.0, 4.0, 7.0, 12.0, 20.0, 40.0};
  std::size_t prev_misses = 0, prev_false_alarms = 0;
  bool first = true;
  for (const double margin : margins) {
    DetectorConfig config;
    config.threshold_margin = margin;
    Confusion totals;
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
      totals.add(run_detection(12.0, 300 + seed, config));
    }
    ASSERT_GT(totals.silent, 100u);
    ASSERT_GT(totals.active, 1000u);
    if (!first) {
      EXPECT_LE(totals.misses, prev_misses) << "margin " << margin;
      EXPECT_GE(totals.false_alarms, prev_false_alarms)
          << "margin " << margin;
    }
    first = false;
    prev_misses = totals.misses;
    prev_false_alarms = totals.false_alarms;
  }
}

TEST(EnergyDetector, MissRateTracksExponentialBound) {
  // A silence cell carries only noise, whose bin energy is exponential
  // with mean eta — so margin m leaves P(miss) = e^-m. Checked at small
  // margins where the rate is large enough to estimate tightly.
  for (const double margin : {1.0, 2.0}) {
    DetectorConfig config;
    config.threshold_margin = margin;
    Confusion totals;
    for (std::uint64_t seed = 0; seed < 120; ++seed) {
      totals.add(run_detection(15.0, 700 + seed, config));
    }
    ASSERT_GT(totals.silent, 1000u);
    const double miss_rate =
        static_cast<double>(totals.misses) /
        static_cast<double>(totals.silent);
    EXPECT_NEAR(miss_rate, std::exp(-margin), 0.06) << "margin " << margin;
  }
}

TEST(EnergyDetector, ScoreQuantizationCarriesTheDecision) {
  // The observational score stream must agree with the returned mask on
  // every cell: score < 256 iff the cell was declared silent (the
  // decision is clamped into the quantization, so there is no rounding
  // edge), and the stream covers every (symbol, control subcarrier) cell
  // exactly once in scan order.
  Rng rng(11);
  CosTxConfig tx_config;
  tx_config.mcs = McsId::for_rate(12);
  tx_config.control_subcarriers = kControl;
  const Bytes psdu = test_psdu(rng, 200);
  const CosTxPacket tx = cos_transmit(psdu, rng.bits(40), tx_config);
  CxVec samples = tx.samples;
  const double nv = noise_var_for_snr_db(10.0);
  for (auto& x : samples) x += rng.complex_gaussian(nv);
  const FrontEndResult fe = receiver_front_end(samples);
  ASSERT_TRUE(fe.signal);

  DetectionScores scores;
  const SilenceMask detected = detect_silences(fe, kControl, {}, &scores);
  ASSERT_EQ(scores.size(), detected.size() * kControl.size());
  std::size_t i = 0;
  for (std::size_t s = 0; s < detected.size(); ++s) {
    for (int sc : kControl) {
      const DetectionScore& score = scores[i++];
      EXPECT_EQ(score.symbol, s);
      EXPECT_EQ(score.subcarrier, static_cast<std::uint16_t>(sc));
      const bool declared = detected[s][static_cast<std::size_t>(sc)] != 0;
      EXPECT_EQ(score.score_x256 < obs::health::kScoreThreshold, declared);
    }
  }

  // The scores out-param never alters the decisions.
  EXPECT_EQ(detect_silences(fe, kControl, {}), detected);
}

TEST(EnergyDetector, DataBinEnergiesLayout) {
  Rng rng(5);
  CxVec bins(kFftSize, Cx{0.0, 0.0});
  const auto data_bins = data_subcarrier_bins();
  bins[static_cast<std::size_t>(data_bins[20])] = Cx{2.0, 0.0};
  const auto energies = data_bin_energies(bins);
  ASSERT_EQ(energies.size(), 48u);
  EXPECT_DOUBLE_EQ(energies[20], 4.0);
  EXPECT_DOUBLE_EQ(energies[0], 0.0);
}

TEST(EnergyDetector, SubcarrierRangeValidated) {
  FrontEndResult fe;
  fe.data_bins.append();
  fe.noise_var = 0.01;
  const std::vector<int> bad = {48};
  EXPECT_THROW(detect_silences(fe, bad, {}), std::invalid_argument);
}

}  // namespace
}  // namespace silence
