#include "core/silence_plan.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/interval_code.h"
#include "phy/params.h"

namespace silence {
namespace {

const std::vector<int> kSixSubcarriers = {10, 11, 12, 13, 14, 15};

TEST(SilencePlan, PaperFigure1Layout) {
  // Paper Fig. 1(a): 24 bits over 6 logical subcarriers; first silence at
  // grid position 0, interval "0010" = 2 puts the next at position 3.
  const Bits bits = {0, 0, 1, 0, 0, 1, 1, 0, 1, 0, 0, 0,
                     0, 0, 1, 1, 1, 0, 1, 0, 0, 1, 1, 1};
  const SilencePlan plan = plan_silences(bits, 12, kSixSubcarriers, 4);
  EXPECT_EQ(plan.bits_sent, 24u);
  EXPECT_EQ(plan.silence_count, 7u);  // 6 intervals + start marker
  // Position 0 = (symbol 0, first control subcarrier).
  EXPECT_EQ(plan.mask[0][10], 1);
  // Interval 2: next silence at position 3 = (symbol 0, subcarrier idx 3).
  EXPECT_EQ(plan.mask[0][13], 1);
  // Interval 6: position 3 + 7 = 10 -> symbol 1, control index 4 (sc 14).
  EXPECT_EQ(plan.mask[1][14], 1);
}

TEST(SilencePlan, MaskRoundTripThroughIntervals) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const Bits bits = rng.bits(40);
    const SilencePlan plan = plan_silences(bits, 30, kSixSubcarriers, 4);
    ASSERT_EQ(plan.bits_sent, 40u);
    const auto intervals = mask_to_intervals(plan.mask, kSixSubcarriers);
    const Bits decoded = intervals_to_bits(intervals, 4);
    EXPECT_EQ(decoded, bits);
  }
}

TEST(SilencePlan, TruncatesWhenGridTooSmall) {
  Rng rng(4);
  const Bits bits = rng.bits(400);  // far more than 2 symbols x 6 carriers
  const SilencePlan plan = plan_silences(bits, 2, kSixSubcarriers, 4);
  EXPECT_LT(plan.bits_sent, 400u);
  EXPECT_EQ(plan.bits_sent % 4, 0u);
  // Whatever fit must still decode correctly.
  const auto intervals = mask_to_intervals(plan.mask, kSixSubcarriers);
  const Bits decoded = intervals_to_bits(intervals, 4);
  EXPECT_EQ(decoded.size(), plan.bits_sent);
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i], bits[i]);
  }
}

TEST(SilencePlan, PadsPartialGroupWithZeros) {
  const Bits bits = {1, 0, 1};  // 3 bits with k = 4 -> padded to "1010"
  const SilencePlan plan = plan_silences(bits, 10, kSixSubcarriers, 4);
  EXPECT_EQ(plan.bits_sent, 3u);
  const auto intervals = mask_to_intervals(plan.mask, kSixSubcarriers);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0], 0b1010);
}

TEST(SilencePlan, EmptyMessageEmptyMask) {
  const SilencePlan plan = plan_silences({}, 10, kSixSubcarriers, 4);
  EXPECT_EQ(plan.bits_sent, 0u);
  // A lone start marker would convey nothing; zero intervals fit, but the
  // marker itself is still placed (silence_count == 1).
  const auto intervals = mask_to_intervals(plan.mask, kSixSubcarriers);
  EXPECT_TRUE(intervals.empty());
}

TEST(SilencePlan, OnlyControlSubcarriersTouched) {
  Rng rng(5);
  const Bits bits = rng.bits(60);
  const SilencePlan plan = plan_silences(bits, 40, kSixSubcarriers, 4);
  for (const auto& row : plan.mask) {
    for (int sc = 0; sc < kNumDataSubcarriers; ++sc) {
      if (std::find(kSixSubcarriers.begin(), kSixSubcarriers.end(), sc) ==
          kSixSubcarriers.end()) {
        EXPECT_EQ(row[static_cast<std::size_t>(sc)], 0);
      }
    }
  }
}

TEST(SilencePlan, SilenceCountMatchesMask) {
  Rng rng(6);
  const Bits bits = rng.bits(80);
  const SilencePlan plan = plan_silences(bits, 60, kSixSubcarriers, 4);
  std::size_t mask_count = 0;
  for (const auto& row : plan.mask) {
    for (auto cell : row) mask_count += cell;
  }
  EXPECT_EQ(mask_count, plan.silence_count);
  EXPECT_EQ(plan.silence_count, plan.intervals.size() + 1);
}

TEST(SilencePlan, ApplySilencesZeroesPlannedPoints) {
  Rng rng(7);
  const Bits bits = rng.bits(16);
  const SilencePlan plan = plan_silences(bits, 8, kSixSubcarriers, 4);
  SymbolGrid grid(kNumDataSubcarriers);
  grid.resize(8);
  for (Cx& p : grid.cells()) p = Cx{1.0, 1.0};
  apply_silences(grid, plan.mask);
  for (std::size_t s = 0; s < grid.size(); ++s) {
    for (int sc = 0; sc < kNumDataSubcarriers; ++sc) {
      const auto idx = static_cast<std::size_t>(sc);
      if (plan.mask[s][idx]) {
        EXPECT_EQ(grid[s][idx], (Cx{0.0, 0.0}));
      } else {
        EXPECT_EQ(grid[s][idx], (Cx{1.0, 1.0}));
      }
    }
  }
}

TEST(SilencePlan, ApplySilencesValidatesShape) {
  SymbolGrid grid(kNumDataSubcarriers);
  grid.resize(3);
  const SilenceMask mask = empty_mask(4);
  EXPECT_THROW(apply_silences(grid, mask), std::invalid_argument);
}

TEST(SilencePlan, RejectsBadSubcarriers) {
  const Bits bits(8, 0);
  const std::vector<int> none;
  EXPECT_THROW(plan_silences(bits, 4, none, 4), std::invalid_argument);
  const std::vector<int> bad = {3, 48};
  EXPECT_THROW(plan_silences(bits, 4, bad, 4), std::invalid_argument);
}

TEST(SilencePlan, NonContiguousSubcarrierSetWorks) {
  // Feedback-selected sets are arbitrary subsets; the logical numbering
  // follows the list order.
  Rng rng(8);
  const std::vector<int> scattered = {2, 7, 19, 33, 41, 46};
  const Bits bits = rng.bits(32);
  const SilencePlan plan = plan_silences(bits, 20, scattered, 4);
  EXPECT_EQ(plan.bits_sent, 32u);
  const auto intervals = mask_to_intervals(plan.mask, scattered);
  EXPECT_EQ(intervals_to_bits(intervals, 4), bits);
}

TEST(SilencePlan, DifferentKValues) {
  Rng rng(9);
  for (int k = 1; k <= 6; ++k) {
    const Bits bits = rng.bits(static_cast<std::size_t>(k) * 8);
    const SilencePlan plan = plan_silences(bits, 60, kSixSubcarriers, k);
    const auto intervals = mask_to_intervals(plan.mask, kSixSubcarriers);
    EXPECT_EQ(intervals_to_bits(intervals, k), bits) << "k=" << k;
  }
}

}  // namespace
}  // namespace silence
