// Ablation of erasure Viterbi decoding (DESIGN.md §4.2): treating silence
// symbols as erasures (bit metric 0) versus feeding them to the decoder as
// ordinary received symbols ("error-only" decoding).
#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/rng.h"
#include "core/cos_link.h"
#include "channel/fading.h"
#include "phy/receiver.h"

namespace silence {
namespace {

const std::vector<int> kControl = {4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44};

struct TrialResult {
  bool evd_ok = false;
  bool error_only_ok = false;
};

TrialResult run_trial(int mbps, double snr_margin_db, std::size_t ctrl_bits,
                      std::uint64_t seed) {
  Rng rng(seed);
  const Mcs& mcs = mcs_for_rate(mbps);
  Bytes psdu = rng.bytes(396);
  append_fcs(psdu);
  const Bits control = rng.bits(ctrl_bits);

  CosTxConfig tx_config;
  tx_config.mcs = McsId::of(mcs);
  tx_config.control_subcarriers = kControl;
  const CosTxPacket tx = cos_transmit(psdu, control, tx_config);

  CxVec samples = tx.samples;
  const double nv =
      noise_var_for_snr_db(mcs.min_required_snr_db + snr_margin_db);
  for (auto& x : samples) x += rng.complex_gaussian(nv);

  const FrontEndResult fe = receiver_front_end(samples);
  TrialResult result;
  if (!fe.signal) return result;

  // EVD: silences marked (ground-truth mask; detection accuracy is tested
  // elsewhere).
  result.evd_ok = decode_data_symbols(fe, mcs, 400, &tx.plan.mask).crc_ok;
  // Error-only: decoder never told about the silences.
  result.error_only_ok = decode_data_symbols(fe, mcs, 400, nullptr).crc_ok;
  return result;
}

TEST(Evd, ErasuresBeatErrorsUnderHeavySilenceLoad) {
  // With a heavy silence load on the rate-3/4 punctured code, EVD must
  // keep packets alive where error-only decoding collapses: the punctured
  // code has little slack, and confidently-wrong magnitude bits from
  // undeclared silences consume it instantly.
  int evd_wins = 0, error_only_wins = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const TrialResult r =
        run_trial(36, 4.0, 400, static_cast<std::uint64_t>(t) + 1000);
    evd_wins += r.evd_ok;
    error_only_wins += r.error_only_ok;
  }
  EXPECT_GE(evd_wins, trials * 9 / 10);
  EXPECT_LE(error_only_wins, trials / 4);
}

TEST(Evd, BothSucceedWithNoSilences) {
  for (int t = 0; t < 5; ++t) {
    const TrialResult r =
        run_trial(24, 8.0, 0, static_cast<std::uint64_t>(t) + 2000);
    EXPECT_TRUE(r.evd_ok);
    EXPECT_TRUE(r.error_only_ok);
  }
}

TEST(Evd, LightSilenceLoadSurvivesEvenAt64Qam) {
  for (int t = 0; t < 5; ++t) {
    const TrialResult r =
        run_trial(54, 8.0, 32, static_cast<std::uint64_t>(t) + 3000);
    EXPECT_TRUE(r.evd_ok) << "trial " << t;
  }
}

TEST(Evd, ErasedBitsPerSilenceEqualsNbpsc) {
  // Structural check: a single silence symbol must zero exactly n_bpsc
  // LLRs, and those zeros must land at the positions the deinterleaver
  // assigns to that subcarrier.
  Rng rng(4000);
  Bytes psdu = rng.bytes(96);
  append_fcs(psdu);
  const Mcs& mcs = mcs_for_rate(24);

  CosTxConfig tx_config;
  tx_config.mcs = McsId::of(mcs);
  tx_config.control_subcarriers = {13};
  // One interval "0000" -> two adjacent silences on subcarrier 13.
  const Bits control = {0, 0, 0, 0};
  const CosTxPacket tx = cos_transmit(psdu, control, tx_config);
  ASSERT_EQ(tx.plan.silence_count, 2u);

  const FrontEndResult fe = receiver_front_end(tx.samples);
  ASSERT_TRUE(fe.signal.has_value());
  const DecodeResult with = decode_data_symbols(fe, mcs, 100, &tx.plan.mask);
  const DecodeResult without = decode_data_symbols(fe, mcs, 100, nullptr);
  EXPECT_TRUE(with.crc_ok);
  // On a clean channel the data decodes either way; the difference shows
  // only in the eq points at the silenced positions.
  EXPECT_TRUE(without.crc_ok);
  for (std::size_t s = 0; s < tx.plan.mask.size(); ++s) {
    if (tx.plan.mask[s][13]) {
      EXPECT_LT(std::abs(with.eq_data[s][13]), 1e-6)
          << "silenced point must arrive empty";
    }
  }
}

TEST(Evd, MaskSizeMismatchRejected) {
  Rng rng(5000);
  Bytes psdu = rng.bytes(96);
  append_fcs(psdu);
  const Mcs& mcs = mcs_for_rate(12);
  const TxFrame frame = build_frame(psdu, mcs);
  const CxVec samples = frame_to_samples(frame);
  const FrontEndResult fe = receiver_front_end(samples);
  ASSERT_TRUE(fe.signal.has_value());
  const SilenceMask wrong(
      static_cast<std::size_t>(frame.num_symbols()) + 1,
      std::vector<std::uint8_t>(kNumDataSubcarriers, 0));
  EXPECT_THROW(decode_data_symbols(fe, mcs, 100, &wrong),
               std::invalid_argument);
}

}  // namespace
}  // namespace silence
