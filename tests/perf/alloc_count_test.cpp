// Allocation-count regression tests for the PHY fast path.
//
// This binary replaces the global operator new/delete with counting
// versions (test-only; nothing in src/ knows about them) and asserts the
// two properties the workspace refactor exists to provide:
//
//  1. Per-symbol kernels (time<->bins transforms, equalization, the
//     fixed-point Viterbi with a warm workspace) allocate *nothing*.
//  2. Whole-packet RX with a warm PhyWorkspace performs a number of
//     allocations that does not depend on the number of OFDM symbols —
//     result buffers are single flat allocations, so doubling the packet
//     grows allocation *sizes* but not allocation *counts*.
//
// The hooks live in this dedicated binary because replacing operator new
// is a process-wide decision that must not leak into other test targets.
#include <array>
#include <atomic>
#include <cstdlib>
#include <gtest/gtest.h>
#include <new>

#include "common/crc32.h"
#include "common/rng.h"
#include "core/cos_link.h"
#include "phy/batch.h"
#include "phy/ofdm.h"
#include "phy/preamble.h"
#include "phy/receiver.h"
#include "phy/transmitter.h"
#include "phy/viterbi.h"
#include "phy/workspace.h"

namespace {

std::atomic<std::size_t> g_alloc_count{0};

}  // namespace

// Counting allocator: malloc-backed so the matching deletes below are the
// only other pieces needed. Sized/array/nothrow forms all funnel here.
void* operator new(std::size_t size) {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p != nullptr) g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return p;
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace silence {
namespace {

// Sanitizer builds interpose their own allocator machinery; the absolute
// counts below are only meaningful against the plain runtime.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif

template <typename Fn>
std::size_t allocations_during(const Fn& fn) {
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  fn();
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

Bytes test_psdu(std::uint64_t seed, std::size_t total) {
  Rng rng(seed);
  Bytes psdu = rng.bytes(total - 4);
  append_fcs(psdu);
  return psdu;
}

TEST(AllocCount, HookIsLive) {
  // The sink keeps the allocation observable so the compiler cannot elide
  // the new/delete pair outright.
  static const void* volatile sink;
  const std::size_t n = allocations_during([] {
    std::vector<int> v(16, 42);
    sink = v.data();
  });
  EXPECT_NE(sink, nullptr);
  EXPECT_GE(n, 1u);
}

TEST(AllocCount, PerSymbolKernelsAllocateNothing) {
  if (kSanitized) GTEST_SKIP() << "allocation counts unreliable under sanitizers";
  // First touch builds the cached FFT plan and pilot/bin tables.
  std::array<Cx, kFftSize> bins{};
  std::array<Cx, kSymbolSamples> symbol{};
  std::array<Cx, kNumDataSubcarriers> data{};
  std::array<Cx, kFftSize> channel{};
  for (auto& h : channel) h = Cx{1.0, 0.0};
  data.fill(Cx{1.0, 0.0});
  assemble_frequency_bins_into(data, 1, bins);
  bins_to_time_into(bins, symbol);
  time_to_bins_into(symbol, bins);
  equalize_data_points_into(bins, channel, data);

  const std::size_t n = allocations_during([&] {
    for (int rep = 0; rep < 16; ++rep) {
      assemble_frequency_bins_into(data, rep, bins);
      bins_to_time_into(bins, symbol);
      time_to_bins_into(symbol, bins);
      equalize_data_points_into(bins, channel, data);
      extract_data_points_into(bins, data);
    }
  });
  EXPECT_EQ(n, 0u) << "per-symbol OFDM kernels must not allocate";
}

TEST(AllocCount, WarmViterbiFixedAllocatesNothing) {
  if (kSanitized) GTEST_SKIP() << "allocation counts unreliable under sanitizers";
  Rng rng(7);
  std::vector<double> llrs(2 * 4096);
  for (auto& v : llrs) v = rng.uniform() * 8.0 - 4.0;
  const ViterbiDecoder decoder;
  ViterbiWorkspace ws;
  Bits out;
  decoder.decode_fixed(llrs, false, ws, out);  // sizes every buffer

  const std::size_t n = allocations_during([&] {
    decoder.decode_fixed(llrs, false, ws, out);
    decoder.decode_fixed(llrs, true, ws, out);
  });
  EXPECT_EQ(n, 0u) << "warm fixed-point Viterbi must not allocate";
}

TEST(AllocCount, WarmViterbiBatchAllocatesNothing) {
  if (kSanitized) GTEST_SKIP() << "allocation counts unreliable under sanitizers";
  Rng rng(11);
  // Ragged lane lengths exercise the per-lane tail handling too.
  std::array<std::vector<double>, ViterbiDecoder::kBatchLanes> llrs;
  std::array<std::span<const double>, ViterbiDecoder::kBatchLanes> spans;
  for (std::size_t lane = 0; lane < llrs.size(); ++lane) {
    llrs[lane].resize(2 * (2048 + 256 * lane));
    for (auto& v : llrs[lane]) v = rng.uniform() * 8.0 - 4.0;
    spans[lane] = llrs[lane];
  }
  const ViterbiDecoder decoder;
  ViterbiBatchWorkspace ws;
  std::array<Bits, ViterbiDecoder::kBatchLanes> out;
  decoder.decode_fixed_batch(spans, false, ws, out);  // sizes every buffer

  const std::size_t n = allocations_during([&] {
    decoder.decode_fixed_batch(spans, false, ws, out);
    decoder.decode_fixed_batch(spans, true, ws, out);
  });
  EXPECT_EQ(n, 0u) << "warm lane-batched Viterbi must not allocate";
}

TEST(AllocCount, BatchReceiveAllocationsIndependentOfSymbolCount) {
  if (kSanitized) GTEST_SKIP() << "allocation counts unreliable under sanitizers";
  const Mcs& mcs = mcs_for_rate(24);
  const CxVec small = frame_to_samples(build_frame(test_psdu(5, 256), mcs));
  const CxVec large = frame_to_samples(build_frame(test_psdu(6, 1500), mcs));
  const std::vector<std::span<const Cx>> small_bursts(PhyBatch::kMaxLanes,
                                                      std::span<const Cx>(small));
  const std::vector<std::span<const Cx>> large_bursts(PhyBatch::kMaxLanes,
                                                      std::span<const Cx>(large));

  auto batch = std::make_unique<PhyBatch>();
  std::vector<RxPacket> out(PhyBatch::kMaxLanes);
  // Warm every lane's buffers (and the shared Viterbi scratch) with the
  // *larger* frame so neither measured run grows anything.
  receive_packet_batch(large_bursts, *batch, out);
  receive_packet_batch(small_bursts, *batch, out);

  const std::size_t n_small = allocations_during(
      [&] { receive_packet_batch(small_bursts, *batch, out); });
  const std::size_t n_large = allocations_during(
      [&] { receive_packet_batch(large_bursts, *batch, out); });
  // Steady state: lane workspaces, SoA tiles, result containers and the
  // output packets all reuse their high-water capacity.
  EXPECT_EQ(n_small, 0u) << "warm batched RX must not allocate";
  EXPECT_EQ(n_large, 0u) << "warm batched RX must not allocate";
}

TEST(AllocCount, ReceiveAllocationsIndependentOfSymbolCount) {
  if (kSanitized) GTEST_SKIP() << "allocation counts unreliable under sanitizers";
  const Mcs& mcs = mcs_for_rate(24);
  const CxVec small = frame_to_samples(build_frame(test_psdu(1, 256), mcs));
  const CxVec large = frame_to_samples(build_frame(test_psdu(2, 1500), mcs));

  PhyWorkspace ws;
  // Warm the workspace (and every lazy table) with the *larger* frame so
  // neither measured run grows a scratch buffer.
  (void)receive_packet(large, ws);
  (void)receive_packet(small, ws);

  const std::size_t n_small =
      allocations_during([&] { (void)receive_packet(small, ws); });
  const std::size_t n_large =
      allocations_during([&] { (void)receive_packet(large, ws); });
  // ~6x the symbol count must not change the number of allocations: all
  // per-symbol processing runs out of the workspace, and result buffers
  // are reserved exactly once.
  EXPECT_EQ(n_small, n_large)
      << "RX allocation count must not scale with packet length";
  // Sanity: the count is small (result containers only, not per symbol).
  const std::size_t n_sym_large =
      (large.size() - static_cast<std::size_t>(kPreambleSamples)) /
      kSymbolSamples;
  EXPECT_LT(n_large, n_sym_large)
      << "allocation count should be far below one per symbol";
}

TEST(AllocCount, CosReceiveAllocationsIndependentOfSymbolCount) {
  if (kSanitized) GTEST_SKIP() << "allocation counts unreliable under sanitizers";
  Rng rng(9);
  CosTxConfig tx_config;
  tx_config.mcs = McsId::for_rate(24);
  tx_config.control_subcarriers = {10, 11, 12, 13, 14, 15, 16, 17};
  const Bits control = rng.bits(48);
  const CosTxPacket tx_small =
      cos_transmit(test_psdu(3, 256), control, tx_config);
  const CosTxPacket tx_large =
      cos_transmit(test_psdu(4, 1500), control, tx_config);
  CosRxConfig rx_config;
  rx_config.control_subcarriers = tx_config.control_subcarriers;

  PhyWorkspace ws;
  (void)cos_receive(tx_large.samples, rx_config, std::nullopt, ws);
  (void)cos_receive(tx_small.samples, rx_config, std::nullopt, ws);

  const std::size_t n_small = allocations_during(
      [&] { (void)cos_receive(tx_small.samples, rx_config, std::nullopt, ws); });
  const std::size_t n_large = allocations_during(
      [&] { (void)cos_receive(tx_large.samples, rx_config, std::nullopt, ws); });
  // The PHY side is allocation-flat; the only per-symbol containers left
  // are the detector's SilenceMask rows (control-plane output, two masks:
  // detected + ground-truth-shaped empty). Bound the growth to that.
  const auto n_sym = [](const CxVec& samples) {
    return (samples.size() - static_cast<std::size_t>(kPreambleSamples)) /
           kSymbolSamples;
  };
  ASSERT_GE(n_large, n_small);
  const std::size_t extra_symbols =
      n_sym(tx_large.samples) - n_sym(tx_small.samples);
  EXPECT_LE(n_large - n_small, 2 * extra_symbols)
      << "CoS RX must not allocate beyond the per-symbol detector mask";
}

}  // namespace
}  // namespace silence
