// Batch-width determinism suite for the SoA PHY engine (phy/batch.h).
//
// The engine's contract is bit-identity, not closeness: every comparison
// here is on the raw IEEE-754 bytes (memcmp), never a tolerance. Each
// facade is checked against its scalar twin on clean, noisy and faded
// bursts, across batch widths 1..32 including ragged group tails.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "channel/fading.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "core/cos_link.h"
#include "phy/batch.h"
#include "phy/receiver.h"
#include "phy/scrambler.h"
#include "phy/transmitter.h"
#include "phy/viterbi.h"

namespace silence {
namespace {

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

bool bit_equal(const Cx& a, const Cx& b) {
  return bit_equal(a.real(), b.real()) && bit_equal(a.imag(), b.imag());
}

::testing::AssertionResult grids_bit_equal(const SymbolGrid& a,
                                           const SymbolGrid& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "grid sizes differ: " << a.size() << " vs " << b.size();
  }
  for (std::size_t s = 0; s < a.size(); ++s) {
    const auto ra = a[s];
    const auto rb = b[s];
    for (std::size_t k = 0; k < ra.size(); ++k) {
      if (!bit_equal(ra[k], rb[k])) {
        return ::testing::AssertionFailure()
               << "grid cell [" << s << "][" << k << "] differs: " << ra[k]
               << " vs " << rb[k];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

Bytes random_psdu(Rng& rng, std::size_t total) {
  Bytes psdu = rng.bytes(total - 4);
  append_fcs(psdu);
  return psdu;
}

// A faded + noisy burst that still decodes: the worst realistic input
// (denormal-free but fully irregular mantissas everywhere).
CxVec faded_burst(int rate, std::size_t octets, std::uint64_t seed,
                  Bytes* psdu_out = nullptr) {
  Rng rng(seed);
  const Mcs& mcs = mcs_for_rate(rate);
  const Bytes psdu = random_psdu(rng, octets);
  if (psdu_out != nullptr) *psdu_out = psdu;
  const CxVec samples = frame_to_samples(build_frame(psdu, mcs));
  MultipathProfile profile;
  FadingChannel channel(profile, seed * 7919 + 1);
  const double noise_var =
      noise_var_for_measured_snr(channel, mcs.min_required_snr_db + 8.0);
  return channel.transmit(samples, noise_var, rng);
}

void expect_front_end_identical(const FrontEndResult& a,
                                const FrontEndResult& b) {
  EXPECT_EQ(a.preamble_ok, b.preamble_ok);
  ASSERT_EQ(a.signal.has_value(), b.signal.has_value());
  if (a.signal) {
    EXPECT_EQ(a.signal->mcs, b.signal->mcs);
    EXPECT_EQ(a.signal->length_octets, b.signal->length_octets);
  }
  for (std::size_t k = 0; k < a.channel.size(); ++k) {
    EXPECT_TRUE(bit_equal(a.channel[k], b.channel[k])) << "channel bin " << k;
  }
  EXPECT_TRUE(bit_equal(a.noise_var, b.noise_var));
  EXPECT_TRUE(bit_equal(a.cfo_hz, b.cfo_hz));
  EXPECT_TRUE(grids_bit_equal(a.data_bins, b.data_bins));
  EXPECT_TRUE(grids_bit_equal(a.trailer_bins, b.trailer_bins));
}

void expect_decode_identical(const DecodeResult& a, const DecodeResult& b) {
  EXPECT_EQ(a.crc_ok, b.crc_ok);
  EXPECT_EQ(a.psdu, b.psdu);
  EXPECT_TRUE(grids_bit_equal(a.eq_data, b.eq_data));
  EXPECT_EQ(a.decoder_input_hard, b.decoder_input_hard);
  EXPECT_EQ(a.info_bits, b.info_bits);
  EXPECT_EQ(a.scrambler_seed, b.scrambler_seed);
}

TEST(PhyBatch, FrontEndMatchesScalarBitForBit) {
  PhyBatch batch;
  for (const int rate : {6, 24, 54}) {
    CxVec burst = faded_burst(rate, 700, static_cast<std::uint64_t>(rate));
    // Trailer coverage: append two whole symbols of channel-looking noise.
    Rng trailer_rng(99);
    for (int i = 0; i < 2 * kSymbolSamples; ++i) {
      burst.push_back(trailer_rng.complex_gaussian(0.01));
    }
    const FrontEndResult scalar = receiver_front_end(burst);
    const FrontEndResult batched = receiver_front_end_batch(burst, batch);
    ASSERT_TRUE(scalar.signal.has_value()) << "rate " << rate;
    expect_front_end_identical(scalar, batched);
  }
}

TEST(PhyBatch, DecodeMatchesScalarBitForBit) {
  PhyBatch batch;
  for (const int rate : {9, 24, 48}) {
    const CxVec burst =
        faded_burst(rate, 900, static_cast<std::uint64_t>(rate) + 10);
    const FrontEndResult fe = receiver_front_end(burst);
    ASSERT_TRUE(fe.signal.has_value());
    const DecodeResult scalar = decode_data_symbols(
        fe, *fe.signal->mcs, fe.signal->length_octets, nullptr);
    const DecodeResult batched = decode_data_symbols_batch(
        fe, *fe.signal->mcs, fe.signal->length_octets, nullptr, batch);
    expect_decode_identical(scalar, batched);
  }
}

TEST(PhyBatch, DecodeWithSilenceMaskMatchesScalar) {
  PhyBatch batch;
  const CxVec burst = faded_burst(24, 600, 42);
  const FrontEndResult fe = receiver_front_end(burst);
  ASSERT_TRUE(fe.signal.has_value());

  // Mask a scattering of (symbol, subcarrier) cells: the EVD erasure
  // injection must survive batching unchanged.
  SilenceMask mask(fe.data_bins.size(),
                   std::vector<std::uint8_t>(kNumDataSubcarriers, 0));
  Rng rng(7);
  for (auto& row : mask) {
    for (int i = 0; i < 4; ++i) {
      row[rng.uniform_int(0, row.size() - 1)] = 1;
    }
  }
  const DecodeResult scalar = decode_data_symbols(
      fe, *fe.signal->mcs, fe.signal->length_octets, &mask);
  const DecodeResult batched = decode_data_symbols_batch(
      fe, *fe.signal->mcs, fe.signal->length_octets, &mask, batch);
  expect_decode_identical(scalar, batched);
}

TEST(PhyBatch, TransmitMatchesScalarBitForBit) {
  PhyBatch batch;
  // Symbol counts around the 16-row tile boundary: below, exact multiple,
  // one over, and a large ragged count.
  for (const std::size_t octets : {40u, 120u, 340u, 1024u}) {
    Rng rng(octets);
    const Bytes psdu = random_psdu(rng, octets);
    for (const int rate : {6, 24, 54}) {
      const TxFrame frame = build_frame(psdu, mcs_for_rate(rate));
      const CxVec scalar = frame_to_samples(frame);
      const CxVec batched = frame_to_samples_batch(frame, batch);
      ASSERT_EQ(scalar.size(), batched.size());
      for (std::size_t i = 0; i < scalar.size(); ++i) {
        ASSERT_TRUE(bit_equal(scalar[i], batched[i]))
            << "sample " << i << " rate " << rate << " octets " << octets;
      }
    }
  }
}

TEST(PhyBatch, ReceivePacketBatchAllWidthsMatchScalar) {
  PhyBatch batch;
  // 32 bursts of mixed rate/length, plus one noise-only lane (no SIGNAL)
  // so group processing exercises the skip path.
  std::vector<CxVec> bursts;
  std::vector<Bytes> psdus;
  const int rates[] = {6, 9, 12, 18, 24, 36, 48, 54};
  for (int i = 0; i < 31; ++i) {
    Bytes psdu;
    bursts.push_back(faded_burst(rates[i % 8],
                                 100 + static_cast<std::size_t>(i) * 29,
                                 static_cast<std::uint64_t>(i) + 1000, &psdu));
    psdus.push_back(psdu);
  }
  {
    Rng rng(555);
    CxVec noise(900);
    for (auto& x : noise) x = rng.complex_gaussian(1.0);
    bursts.insert(bursts.begin() + 5, noise);
    psdus.insert(psdus.begin() + 5, Bytes{});
  }

  std::vector<RxPacket> expected;
  for (const auto& b : bursts) expected.push_back(receive_packet(b));

  for (const std::size_t width : {1u, 2u, 3u, 8u, 13u, 32u}) {
    std::vector<std::span<const Cx>> spans;
    for (std::size_t i = 0; i < width; ++i) spans.emplace_back(bursts[i]);
    std::vector<RxPacket> got(width);
    receive_packet_batch(spans, batch, got);
    for (std::size_t i = 0; i < width; ++i) {
      EXPECT_EQ(got[i].ok, expected[i].ok) << "lane " << i << " w " << width;
      EXPECT_EQ(got[i].psdu, expected[i].psdu) << "lane " << i;
      ASSERT_EQ(got[i].signal.has_value(), expected[i].signal.has_value());
      if (got[i].ok) {
        EXPECT_EQ(got[i].psdu, psdus[i]);
      }
    }
  }

  // The single-burst facade too.
  for (std::size_t i = 0; i < 8; ++i) {
    const RxPacket got = receive_packet_batch(bursts[i], batch);
    EXPECT_EQ(got.ok, expected[i].ok);
    EXPECT_EQ(got.psdu, expected[i].psdu);
  }
}

// --- CoS link facades -----------------------------------------------------

const std::vector<int> kCosControl = {4, 9, 14, 19, 24, 29, 34, 39};

CosTxConfig cos_tx_config(int mbps) {
  CosTxConfig config;
  config.mcs = McsId::for_rate(mbps);
  config.control_subcarriers = kCosControl;
  return config;
}

CosRxConfig cos_rx_config() {
  CosRxConfig config;
  config.control_subcarriers = kCosControl;
  return config;
}

// A faded CoS burst: data + embedded silence intervals through multipath.
CxVec cos_faded_burst(int rate, std::size_t octets, std::uint64_t seed) {
  Rng rng(seed);
  const Mcs& mcs = mcs_for_rate(rate);
  const Bytes psdu = random_psdu(rng, octets);
  const Bits control = rng.bits(24);
  const CosTxPacket tx = cos_transmit(psdu, control, cos_tx_config(rate));
  MultipathProfile profile;
  FadingChannel channel(profile, seed * 104729 + 3);
  const double noise_var =
      noise_var_for_measured_snr(channel, mcs.min_required_snr_db + 10.0);
  return channel.transmit(tx.samples, noise_var, rng);
}

void expect_cos_identical(const CosRxPacket& a, const CosRxPacket& b) {
  expect_front_end_identical(a.fe, b.fe);
  expect_decode_identical(a.decode, b.decode);
  EXPECT_EQ(a.data_ok, b.data_ok);
  EXPECT_EQ(a.psdu, b.psdu);
  EXPECT_EQ(a.detected_mask, b.detected_mask);
  EXPECT_EQ(a.control_bits, b.control_bits);
  ASSERT_EQ(a.evm_valid, b.evm_valid);
  if (a.evm_valid) {
    for (int sc = 0; sc < kNumDataSubcarriers; ++sc) {
      EXPECT_TRUE(bit_equal(a.evm[static_cast<std::size_t>(sc)],
                            b.evm[static_cast<std::size_t>(sc)]))
          << "evm subcarrier " << sc;
    }
  }
  EXPECT_EQ(a.next_control_subcarriers, b.next_control_subcarriers);
}

TEST(PhyBatch, CosTransmitMatchesScalarBitForBit) {
  PhyBatch batch;
  Rng rng(808);
  for (const int rate : {6, 24, 54}) {
    const Bytes psdu = random_psdu(rng, 500);
    const Bits control = rng.bits(40);
    const CosTxPacket scalar = cos_transmit(psdu, control, cos_tx_config(rate));
    const CosTxPacket batched =
        cos_transmit(psdu, control, cos_tx_config(rate), batch);
    EXPECT_EQ(scalar.plan.mask, batched.plan.mask);
    EXPECT_EQ(scalar.plan.bits_sent, batched.plan.bits_sent);
    EXPECT_TRUE(grids_bit_equal(scalar.frame.data_grid,
                                batched.frame.data_grid));
    ASSERT_EQ(scalar.samples.size(), batched.samples.size());
    for (std::size_t i = 0; i < scalar.samples.size(); ++i) {
      ASSERT_TRUE(bit_equal(scalar.samples[i], batched.samples[i]))
          << "sample " << i << " rate " << rate;
    }
  }
}

TEST(PhyBatch, CosReceiveMatchesScalarBitForBit) {
  PhyBatch batch;
  for (const int rate : {9, 24, 48}) {
    const CxVec burst =
        cos_faded_burst(rate, 800, static_cast<std::uint64_t>(rate) + 70);
    const CosRxPacket scalar = cos_receive(burst, cos_rx_config(),
                                           Modulation::kQam16);
    ASSERT_TRUE(scalar.fe.signal.has_value()) << "rate " << rate;
    const CosRxPacket batched =
        cos_receive(burst, cos_rx_config(), Modulation::kQam16, batch);
    expect_cos_identical(scalar, batched);
  }
}

TEST(PhyBatch, CosReceiveMultiLaneMatchesScalar) {
  PhyBatch batch;
  const int rates[] = {6, 12, 24, 36, 54, 9, 18, 48};
  std::vector<CxVec> bursts;
  for (int i = 0; i < 11; ++i) {
    bursts.push_back(cos_faded_burst(rates[i % 8],
                                     150 + static_cast<std::size_t>(i) * 41,
                                     static_cast<std::uint64_t>(i) + 3000));
  }
  // One lane with no decodable SIGNAL in the middle of a group.
  {
    Rng rng(414);
    CxVec noise(800);
    for (auto& x : noise) x = rng.complex_gaussian(1.0);
    bursts.insert(bursts.begin() + 3, noise);
  }

  std::vector<CosRxPacket> expected;
  for (const auto& b : bursts) {
    expected.push_back(cos_receive(b, cos_rx_config(), std::nullopt));
  }

  for (const std::size_t width : {1u, 3u, 8u, 12u}) {
    std::vector<std::span<const Cx>> spans;
    for (std::size_t i = 0; i < width; ++i) spans.emplace_back(bursts[i]);
    const std::vector<CosRxPacket> got =
        cos_receive_batch(spans, cos_rx_config(), std::nullopt, batch);
    ASSERT_EQ(got.size(), width);
    for (std::size_t i = 0; i < width; ++i) {
      SCOPED_TRACE("lane " + std::to_string(i) + " width " +
                   std::to_string(width));
      expect_cos_identical(expected[i], got[i]);
    }
  }
}

// --- Lane-batched Viterbi -------------------------------------------------

std::vector<double> random_llrs(Rng& rng, std::size_t steps) {
  std::vector<double> llrs(steps * 2);
  for (auto& v : llrs) {
    v = rng.uniform() * 20.0 - 10.0;
    if (rng.uniform() < 0.05) v = 0.0;  // erasures
  }
  return llrs;
}

TEST(PhyBatch, ViterbiBatchMatchesScalarPerLane) {
  const ViterbiDecoder decoder;
  Rng rng(2024);
  // Ragged lane lengths around each other, including an empty lane.
  const std::size_t steps[] = {257, 64, 0, 1024, 1024, 3, 511, 258};
  for (const bool terminated : {false, true}) {
    for (std::size_t nlanes = 1; nlanes <= 8; ++nlanes) {
      std::vector<std::vector<double>> streams;
      for (std::size_t l = 0; l < nlanes; ++l) {
        streams.push_back(random_llrs(rng, steps[l]));
      }
      // Special values: quantizer must treat them identically per lane.
      if (nlanes >= 4) {
        streams[1][2] = std::numeric_limits<double>::infinity();
        streams[1][3] = -std::numeric_limits<double>::infinity();
        streams[3][10] = std::numeric_limits<double>::quiet_NaN();
      }

      std::vector<std::span<const double>> spans;
      for (const auto& s : streams) spans.emplace_back(s);
      std::vector<Bits> got(nlanes);
      ViterbiBatchWorkspace ws;
      decoder.decode_fixed_batch(spans, terminated, ws, got);

      for (std::size_t l = 0; l < nlanes; ++l) {
        const Bits expect = decoder.decode_fixed(streams[l], terminated);
        EXPECT_EQ(got[l], expect)
            << "lane " << l << " of " << nlanes << " term " << terminated;
      }
    }
  }
}

TEST(PhyBatch, ViterbiBatchOversizedLaneFallsBack) {
  const ViterbiDecoder decoder;
  Rng rng(77);
  std::vector<std::vector<double>> streams;
  streams.push_back(random_llrs(rng, ViterbiDecoder::kMaxFixedSteps + 1));
  streams.push_back(random_llrs(rng, 200));
  std::vector<std::span<const double>> spans(streams.begin(), streams.end());
  std::vector<Bits> got(2);
  ViterbiBatchWorkspace ws;
  decoder.decode_fixed_batch(spans, /*terminated=*/false, ws, got);
  for (std::size_t l = 0; l < streams.size(); ++l) {
    EXPECT_EQ(got[l], decoder.decode_fixed(streams[l], false)) << l;
  }
}

TEST(PhyBatch, ViterbiBatchRejectsBadArguments) {
  const ViterbiDecoder decoder;
  ViterbiBatchWorkspace ws;
  std::vector<Bits> out;
  EXPECT_THROW(decoder.decode_fixed_batch({}, false, ws, out),
               std::invalid_argument);
  std::vector<double> odd(3, 0.5);
  std::vector<std::span<const double>> spans{odd};
  out.resize(1);
  EXPECT_THROW(decoder.decode_fixed_batch(spans, false, ws, out),
               std::invalid_argument);
}

TEST(PhyBatch, FastDescrambleMatchesLfsrForEverySeed) {
  Rng rng(31337);
  const Bits plain = [&] {
    Bits b(500);
    for (auto& v : b) v = rng.uniform() < 0.5 ? 1 : 0;
    return b;
  }();
  for (std::uint8_t seed = 1; seed < 128; ++seed) {
    Scrambler reference(seed);
    const Bits expect = reference.apply(plain);
    Bits got;
    Scrambler::apply_with_seed_into(seed, plain, got);
    EXPECT_EQ(got, expect) << "seed " << static_cast<int>(seed);
  }
  EXPECT_THROW(Scrambler::period_cached(0), std::invalid_argument);
}

TEST(PhyBatch, EngineSwitchRoundTrips) {
  EXPECT_TRUE(phy_batch_enabled());
  set_phy_batch_enabled(false);
  EXPECT_FALSE(phy_batch_enabled());
  set_phy_batch_enabled(true);
  EXPECT_TRUE(phy_batch_enabled());
}

}  // namespace
}  // namespace silence
