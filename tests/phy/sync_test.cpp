#include "phy/sync.h"

#include <gtest/gtest.h>

#include "channel/fading.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "phy/preamble.h"
#include "phy/receiver.h"
#include "phy/transmitter.h"

namespace silence {
namespace {

CxVec padded_burst(const CxVec& burst, std::size_t offset, Rng& rng,
                   double noise_var) {
  CxVec samples(offset, Cx{0.0, 0.0});
  samples.insert(samples.end(), burst.begin(), burst.end());
  samples.insert(samples.end(), 200, Cx{0.0, 0.0});
  for (auto& x : samples) x += rng.complex_gaussian(noise_var);
  return samples;
}

TEST(FrameDetect, ExactOnCleanInput) {
  Rng rng(1);
  Bytes psdu = rng.bytes(200);
  append_fcs(psdu);
  const CxVec burst = frame_to_samples(build_frame(psdu, mcs_for_rate(12)));
  for (std::size_t offset : {0u, 1u, 37u, 160u, 1000u}) {
    CxVec samples(offset, Cx{0.0, 0.0});
    samples.insert(samples.end(), burst.begin(), burst.end());
    const auto start = detect_frame_start(samples);
    ASSERT_TRUE(start.has_value()) << "offset " << offset;
    EXPECT_EQ(*start, offset);
  }
}

TEST(FrameDetect, AccurateUnderNoise) {
  Rng rng(2);
  Bytes psdu = rng.bytes(200);
  append_fcs(psdu);
  const CxVec burst = frame_to_samples(build_frame(psdu, mcs_for_rate(12)));
  const double nv = noise_var_for_snr_db(10.0);
  int hits = 0;
  for (std::size_t trial = 0; trial < 20; ++trial) {
    const std::size_t offset = 50 + trial * 13;
    const CxVec samples = padded_burst(burst, offset, rng, nv);
    const auto start = detect_frame_start(samples);
    if (start && *start == offset) ++hits;
  }
  EXPECT_GE(hits, 18);
}

TEST(FrameDetect, NoFrameMeansNoDetection) {
  Rng rng(3);
  CxVec noise(4000);
  for (auto& x : noise) x = rng.complex_gaussian(0.01);
  EXPECT_FALSE(detect_frame_start(noise).has_value());
}

TEST(FrameDetect, TooShortInputRejected) {
  const CxVec tiny(100, Cx{1.0, 0.0});
  EXPECT_FALSE(detect_frame_start(tiny).has_value());
}

TEST(FrameDetect, UnalignedReceiveDecodesPacket) {
  Rng rng(4);
  Bytes psdu = rng.bytes(300);
  append_fcs(psdu);
  const CxVec burst = frame_to_samples(build_frame(psdu, mcs_for_rate(24)));
  const double nv = noise_var_for_snr_db(22.0);
  const CxVec samples = padded_burst(burst, 777, rng, nv);

  // Aligned receive on the padded stream fails...
  EXPECT_FALSE(receive_packet(samples).ok);
  // ...while timing acquisition finds and decodes the frame.
  const RxPacket packet = receive_packet_unaligned(samples);
  ASSERT_TRUE(packet.ok);
  EXPECT_EQ(packet.psdu, psdu);
}

TEST(FrameDetect, WorksThroughMultipath) {
  Rng rng(5);
  Bytes psdu = rng.bytes(300);
  append_fcs(psdu);
  const CxVec burst = frame_to_samples(build_frame(psdu, mcs_for_rate(12)));
  int decoded = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    MultipathProfile profile;
    FadingChannel channel(profile, seed);
    const double nv = noise_var_for_measured_snr(channel, 14.0);
    CxVec padded(300 + seed * 20, Cx{0.0, 0.0});
    padded.insert(padded.end(), burst.begin(), burst.end());
    padded.insert(padded.end(), 100, Cx{0.0, 0.0});
    const CxVec received = channel.transmit(padded, nv, rng);
    // Multipath delays the energy by up to a few taps; the receiver just
    // needs a decode, not an exact offset.
    decoded += receive_packet_unaligned(received).ok;
  }
  EXPECT_GE(decoded, 8);
}

}  // namespace
}  // namespace silence
