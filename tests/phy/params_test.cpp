#include "phy/params.h"

#include <gtest/gtest.h>

#include <set>

namespace silence {
namespace {

TEST(Params, EightRatesAscending) {
  const auto mcs = all_mcs();
  ASSERT_EQ(mcs.size(), 8u);
  for (std::size_t i = 1; i < mcs.size(); ++i) {
    EXPECT_LT(mcs[i - 1].data_rate_mbps, mcs[i].data_rate_mbps);
    EXPECT_LT(mcs[i - 1].min_required_snr_db, mcs[i].min_required_snr_db);
  }
}

TEST(Params, BitCountsConsistent) {
  for (const Mcs& mcs : all_mcs()) {
    EXPECT_EQ(mcs.n_bpsc, bits_per_symbol(mcs.modulation));
    EXPECT_EQ(mcs.n_cbps, mcs.n_bpsc * kNumDataSubcarriers);
    EXPECT_EQ(mcs.n_dbps, mcs.n_cbps * code_rate_numerator(mcs.code_rate) /
                              code_rate_denominator(mcs.code_rate));
  }
}

TEST(Params, HeadlineRateMatchesSymbolMath) {
  // data rate = n_dbps / 4 us.
  for (const Mcs& mcs : all_mcs()) {
    EXPECT_EQ(mcs.data_rate_mbps, mcs.n_dbps / 4);
  }
}

TEST(Params, McsForRateFindsAll) {
  for (int mbps : {6, 9, 12, 18, 24, 36, 48, 54}) {
    EXPECT_EQ(mcs_for_rate(mbps).data_rate_mbps, mbps);
  }
  EXPECT_THROW(mcs_for_rate(11), std::invalid_argument);
}

TEST(Params, McsForComboRejectsInvalid) {
  EXPECT_EQ(mcs_for(Modulation::kQam64, CodeRate::kRate2of3).data_rate_mbps,
            48);
  // BPSK 2/3 is not an 802.11a rate.
  EXPECT_THROW(mcs_for(Modulation::kBpsk, CodeRate::kRate2of3),
               std::invalid_argument);
}

TEST(Params, PaperAnchorThresholds) {
  // The paper states 24 Mbps requires 12 dB and the QPSK 1/2 region spans
  // measured SNR 7.1..9.5 dB.
  EXPECT_DOUBLE_EQ(mcs_for_rate(24).min_required_snr_db, 12.0);
  EXPECT_DOUBLE_EQ(mcs_for_rate(12).min_required_snr_db, 7.1);
  EXPECT_DOUBLE_EQ(mcs_for_rate(18).min_required_snr_db, 9.5);
}

TEST(Params, RateAdaptationPicksHighestFeasible) {
  EXPECT_EQ(select_mcs_by_snr(15.0).data_rate_mbps, 24);
  EXPECT_EQ(select_mcs_by_snr(8.0).data_rate_mbps, 12);
  EXPECT_EQ(select_mcs_by_snr(25.0).data_rate_mbps, 54);
  // Below every threshold: lowest rate.
  EXPECT_EQ(select_mcs_by_snr(-5.0).data_rate_mbps, 6);
  // Exactly at a threshold selects that rate.
  EXPECT_EQ(select_mcs_by_snr(12.0).data_rate_mbps, 24);
}

TEST(Params, DataBinLayout) {
  const auto bins = data_subcarrier_bins();
  ASSERT_EQ(bins.size(), 48u);
  std::set<int> unique(bins.begin(), bins.end());
  EXPECT_EQ(unique.size(), 48u);
  // No DC, no pilots, no guards.
  EXPECT_FALSE(unique.contains(0));
  for (int pilot : pilot_subcarrier_bins()) {
    EXPECT_FALSE(unique.contains(pilot));
  }
  for (int guard = 27; guard <= 37; ++guard) {
    EXPECT_FALSE(unique.contains(guard));
  }
  // First logical subcarrier is -26 -> bin 38; last is +26 -> bin 26.
  EXPECT_EQ(bins[0], 38);
  EXPECT_EQ(bins[47], 26);
}

TEST(Params, PilotBins) {
  const auto pilots = pilot_subcarrier_bins();
  ASSERT_EQ(pilots.size(), 4u);
  EXPECT_EQ(pilots[0], 64 - 21);
  EXPECT_EQ(pilots[1], 64 - 7);
  EXPECT_EQ(pilots[2], 7);
  EXPECT_EQ(pilots[3], 21);
}

TEST(Params, IsDataBin) {
  EXPECT_TRUE(is_data_bin(1));
  EXPECT_TRUE(is_data_bin(26));
  EXPECT_FALSE(is_data_bin(0));
  EXPECT_FALSE(is_data_bin(7));
  EXPECT_FALSE(is_data_bin(21));
  EXPECT_FALSE(is_data_bin(32));
}

TEST(Params, SymbolTiming) {
  EXPECT_EQ(kSymbolSamples, 80);
  EXPECT_DOUBLE_EQ(kSymbolDurationSec, 4e-6);
}

}  // namespace
}  // namespace silence
