#include "phy/convolutional.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace silence {
namespace {

TEST(Convolutional, OutputLengthIsDouble) {
  Rng rng(1);
  const Bits input = rng.bits(123);
  EXPECT_EQ(convolutional_encode(input).size(), 246u);
}

TEST(Convolutional, AllZerosEncodeToAllZeros) {
  const Bits input(50, 0);
  const Bits coded = convolutional_encode(input);
  for (auto bit : coded) EXPECT_EQ(bit, 0);
}

TEST(Convolutional, ImpulseResponseMatchesGenerators) {
  // A single 1 followed by zeros emits the generator taps over the next 7
  // steps: A stream = 1011011 (g0 = 133 octal), B stream = 1111001.
  Bits input(7, 0);
  input[0] = 1;
  const Bits coded = convolutional_encode(input);
  const Bits expected_a = {1, 0, 1, 1, 0, 1, 1};
  const Bits expected_b = {1, 1, 1, 1, 0, 0, 1};
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(coded[static_cast<std::size_t>(2 * i)], expected_a[static_cast<std::size_t>(i)])
        << "A step " << i;
    EXPECT_EQ(coded[static_cast<std::size_t>(2 * i + 1)], expected_b[static_cast<std::size_t>(i)])
        << "B step " << i;
  }
}

TEST(Convolutional, EncoderIsLinear) {
  // Convolutional codes are linear: enc(x XOR y) = enc(x) XOR enc(y).
  Rng rng(2);
  const Bits x = rng.bits(64);
  const Bits y = rng.bits(64);
  Bits x_xor_y(64);
  for (std::size_t i = 0; i < 64; ++i) x_xor_y[i] = x[i] ^ y[i];
  const Bits ex = convolutional_encode(x);
  const Bits ey = convolutional_encode(y);
  const Bits exy = convolutional_encode(x_xor_y);
  for (std::size_t i = 0; i < exy.size(); ++i) {
    EXPECT_EQ(exy[i], ex[i] ^ ey[i]);
  }
}

TEST(Convolutional, TailReturnsToZeroState) {
  Rng rng(3);
  Bits input = rng.bits(40);
  input.insert(input.end(), 6, 0);  // tail
  int state = 0;
  for (auto bit : input) state = conv_next_state(state, bit);
  EXPECT_EQ(state, 0);
}

TEST(Convolutional, NextStateShiftsRegister) {
  // From state 0, input 1 -> state 0b100000; then input 0 -> 0b010000.
  EXPECT_EQ(conv_next_state(0, 1), 0b100000);
  EXPECT_EQ(conv_next_state(0b100000, 0), 0b010000);
  EXPECT_EQ(conv_next_state(0b111111, 1), 0b111111);
}

TEST(Convolutional, OutputTableConsistentWithEncode) {
  Rng rng(4);
  const Bits input = rng.bits(200);
  const Bits coded = convolutional_encode(input);
  int state = 0;
  for (std::size_t i = 0; i < input.size(); ++i) {
    const std::uint8_t ab = conv_output(state, input[i]);
    EXPECT_EQ(coded[2 * i], ab & 1U);
    EXPECT_EQ(coded[2 * i + 1], (ab >> 1) & 1U);
    state = conv_next_state(state, input[i]);
  }
}

TEST(Convolutional, MinimumWeightNonzeroPathIsFreeDistance) {
  // The K=7 (133,171) code has free distance 10: flushing a single 1
  // through the encoder (1 followed by six 0s) yields a weight-10 coded
  // sequence, and no shorter error event has lower weight.
  Bits input(7, 0);
  input[0] = 1;
  const Bits coded = convolutional_encode(input);
  int weight = 0;
  for (auto b : coded) weight += b;
  EXPECT_EQ(weight, 10);
}

}  // namespace
}  // namespace silence
