#include "phy/preamble.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "phy/ofdm.h"
#include "phy/pilots.h"

namespace silence {
namespace {

TEST(Preamble, LtfSequenceIsBipolarOn52Bins) {
  const CxVec& bins = ltf_frequency_bins();
  ASSERT_EQ(bins.size(), 64u);
  int occupied = 0;
  for (std::size_t k = 0; k < 64; ++k) {
    const double mag = std::abs(bins[k]);
    if (mag > 0) {
      EXPECT_NEAR(mag, 1.0, 1e-12);
      ++occupied;
    }
  }
  EXPECT_EQ(occupied, 52);
  EXPECT_EQ(bins[0], (Cx{0.0, 0.0}));  // DC empty
}

TEST(Preamble, StfOccupiesEveryFourthBin) {
  const CxVec& bins = stf_frequency_bins();
  int occupied = 0;
  for (std::size_t k = 0; k < 64; ++k) {
    if (std::abs(bins[k]) > 0) {
      EXPECT_EQ(k % 4, 0u) << "bin " << k;
      ++occupied;
    }
  }
  EXPECT_EQ(occupied, 12);
}

TEST(Preamble, StfIsPeriodic16) {
  const CxVec preamble = build_preamble();
  ASSERT_EQ(preamble.size(), static_cast<std::size_t>(kPreambleSamples));
  for (int n = 0; n + 16 < kStfSamples; ++n) {
    EXPECT_NEAR(std::abs(preamble[static_cast<std::size_t>(n)] -
                         preamble[static_cast<std::size_t>(n + 16)]),
                0.0, 1e-12)
        << "sample " << n;
  }
}

TEST(Preamble, LtfSecondHalfRepeats) {
  const CxVec preamble = build_preamble();
  // The two long symbols (after the 32-sample guard) are identical.
  const std::size_t ltf0 = kStfSamples + 32;
  for (int n = 0; n < 64; ++n) {
    EXPECT_NEAR(std::abs(preamble[ltf0 + static_cast<std::size_t>(n)] -
                         preamble[ltf0 + 64 + static_cast<std::size_t>(n)]),
                0.0, 1e-12);
  }
}

TEST(Preamble, CleanChannelEstimateIsUnity) {
  const CxVec preamble = build_preamble();
  const auto channel = estimate_channel(
      std::span(preamble).subspan(kStfSamples, kLtfSamples));
  for (int k = 0; k < kFftSize; ++k) {
    const auto idx = static_cast<std::size_t>(k);
    if (std::abs(ltf_frequency_bins()[idx]) > 0) {
      EXPECT_NEAR(std::abs(channel[idx] - Cx{1.0, 0.0}), 0.0, 1e-9)
          << "bin " << k;
    } else {
      EXPECT_EQ(channel[idx], (Cx{0.0, 0.0}));
    }
  }
}

TEST(Preamble, EstimateRecoversAttenuationAndPhase) {
  CxVec preamble = build_preamble();
  const Cx gain{0.4, -0.3};
  for (auto& x : preamble) x *= gain;
  const auto channel = estimate_channel(
      std::span(preamble).subspan(kStfSamples, kLtfSamples));
  for (int k = 0; k < kFftSize; ++k) {
    const auto idx = static_cast<std::size_t>(k);
    if (std::abs(ltf_frequency_bins()[idx]) > 0) {
      EXPECT_NEAR(std::abs(channel[idx] - gain), 0.0, 1e-9);
    }
  }
}

TEST(Preamble, NoiseAveragingAcrossTwoLongSymbols) {
  // Channel estimation averages the two long symbols, halving the noise
  // variance relative to a single-symbol estimate.
  Rng rng(17);
  const double noise_var = 0.01;
  double err_sum = 0.0;
  int count = 0;
  for (int trial = 0; trial < 200; ++trial) {
    CxVec preamble = build_preamble();
    for (auto& x : preamble) x += rng.complex_gaussian(noise_var);
    const auto channel = estimate_channel(
        std::span(preamble).subspan(kStfSamples, kLtfSamples));
    for (int k = 1; k <= 26; ++k) {
      err_sum += std::norm(channel[static_cast<std::size_t>(k)] - Cx{1.0, 0.0});
      ++count;
    }
  }
  // Freq-domain noise per bin = 64 * noise_var; averaging two symbols
  // halves it; |L_k|^2 = 1.
  const double expected = kFftSize * noise_var / 2.0;
  EXPECT_NEAR(err_sum / count, expected, expected * 0.15);
}

TEST(Preamble, PilotNoiseeEstimateWithPerfectChannelIsDebiased) {
  // With a genie (error-free) channel estimate the pilot residual is pure
  // noise, so the 1.5x debias makes the estimator read 1/1.5 of truth.
  Rng rng(18);
  const double noise_var = 0.02;  // time domain per sample
  const double expected = kFftSize * noise_var / 1.5;
  std::array<Cx, kFftSize> perfect_channel{};
  for (auto& h : perfect_channel) h = Cx{1.0, 0.0};

  double sum = 0.0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    // A data symbol with only pilots (data zero) plus noise.
    CxVec data(kNumDataSubcarriers, Cx{0.0, 0.0});
    CxVec bins = assemble_frequency_bins(data, t);
    CxVec time = bins_to_time(bins);
    for (auto& x : time) x += rng.complex_gaussian(noise_var);
    const CxVec rx_bins = time_to_bins(time);
    sum += pilot_noise_estimate(rx_bins, perfect_channel, t);
  }
  EXPECT_NEAR(sum / trials, expected, expected * 0.15);
}

TEST(Preamble, PilotNoiseEstimateUnbiasedWithLtfChannelEstimate) {
  // In the real pipeline the channel estimate comes from the noisy LTF;
  // its error inflates the residual by exactly the factor the estimator
  // divides out, so the result is unbiased.
  Rng rng(19);
  const double noise_var = 0.02;
  const double expected = kFftSize * noise_var;

  double sum = 0.0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    CxVec preamble = build_preamble();
    for (auto& x : preamble) x += rng.complex_gaussian(noise_var);
    const auto channel = estimate_channel(
        std::span(preamble).subspan(kStfSamples, kLtfSamples));

    CxVec data(kNumDataSubcarriers, Cx{0.0, 0.0});
    CxVec time = bins_to_time(assemble_frequency_bins(data, t));
    for (auto& x : time) x += rng.complex_gaussian(noise_var);
    sum += pilot_noise_estimate(time_to_bins(time), channel, t);
  }
  EXPECT_NEAR(sum / trials, expected, expected * 0.15);
}

TEST(Preamble, RejectsWrongSampleCounts) {
  const CxVec short_ltf(100);
  EXPECT_THROW(estimate_channel(short_ltf), std::invalid_argument);
}

}  // namespace
}  // namespace silence
