#include "phy/pilots.h"

#include <gtest/gtest.h>

namespace silence {
namespace {

TEST(Pilots, FirstPolaritiesMatchStandard) {
  // p_0..p_9 from 802.11a 17.3.5.9: 1 1 1 1 -1 -1 -1 1 -1 -1.
  const double expected[] = {1, 1, 1, 1, -1, -1, -1, 1, -1, -1};
  for (int n = 0; n < 10; ++n) {
    EXPECT_DOUBLE_EQ(pilot_polarity(n), expected[n]) << "symbol " << n;
  }
}

TEST(Pilots, PolarityPeriod127) {
  for (int n = 0; n < 127; ++n) {
    EXPECT_DOUBLE_EQ(pilot_polarity(n), pilot_polarity(n + 127));
  }
}

TEST(Pilots, ValuesFollowBasePattern) {
  for (int n : {0, 1, 5, 63, 126}) {
    const auto values = pilot_values(n);
    const double p = pilot_polarity(n);
    EXPECT_EQ(values[0], (Cx{p, 0.0}));
    EXPECT_EQ(values[1], (Cx{p, 0.0}));
    EXPECT_EQ(values[2], (Cx{p, 0.0}));
    EXPECT_EQ(values[3], (Cx{-p, 0.0}));
  }
}

TEST(Pilots, UnitMagnitude) {
  for (int n = 0; n < 200; ++n) {
    for (const Cx& v : pilot_values(n)) {
      EXPECT_DOUBLE_EQ(std::abs(v), 1.0);
    }
  }
}

}  // namespace
}  // namespace silence
