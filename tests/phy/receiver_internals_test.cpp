// Receiver-internal behaviours not covered by the loopback tests:
// common-phase-error tracking, trailer symbol extraction, equalization
// edge cases, and the noise estimator under impairments.
#include <cmath>
#include <gtest/gtest.h>
#include <numbers>

#include "channel/fading.h"
#include "channel/impairments.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "phy/ofdm.h"
#include "phy/preamble.h"
#include "phy/receiver.h"
#include "phy/transmitter.h"

namespace silence {
namespace {

Bytes make_psdu(Rng& rng, std::size_t total) {
  Bytes psdu = rng.bytes(total - 4);
  append_fcs(psdu);
  return psdu;
}

TEST(ReceiverInternals, CpeTrackingAbsorbsConstantRotationPerSymbol) {
  // Rotate every data symbol by a fixed phase (as residual CFO would,
  // after the per-packet channel estimate): the pilots must absorb it.
  Rng rng(1);
  const Bytes psdu = make_psdu(rng, 400);
  const Mcs& mcs = mcs_for_rate(54);  // 64QAM: most phase-sensitive
  const TxFrame frame = build_frame(psdu, mcs);
  CxVec samples = frame_to_samples(frame);

  // Apply a 10-degree rotation to everything after the preamble+SIGNAL.
  const double angle = 10.0 * std::numbers::pi / 180.0;
  const Cx rot{std::cos(angle), std::sin(angle)};
  for (std::size_t n = static_cast<std::size_t>(kPreambleSamples) +
                       kSymbolSamples;
       n < samples.size(); ++n) {
    samples[n] *= rot;
  }

  const RxPacket packet = receive_packet(samples);
  ASSERT_TRUE(packet.ok);
  EXPECT_EQ(packet.psdu, psdu);
}

TEST(ReceiverInternals, TrailerSymbolsExtracted) {
  Rng rng(2);
  const Bytes psdu = make_psdu(rng, 100);
  const TxFrame frame = build_frame(psdu, mcs_for_rate(6));
  CxVec samples = frame_to_samples(frame);

  // Append 3 whole symbols and a partial one.
  const CxVec filler(kNumDataSubcarriers, Cx{1.0, 0.0});
  for (int i = 0; i < 3; ++i) {
    const CxVec bins =
        assemble_frequency_bins(filler, frame.num_symbols() + 1 + i);
    const CxVec time = bins_to_time(bins);
    samples.insert(samples.end(), time.begin(), time.end());
  }
  samples.insert(samples.end(), 37, Cx{0.0, 0.0});  // partial

  const FrontEndResult fe = receiver_front_end(samples);
  ASSERT_TRUE(fe.signal.has_value());
  EXPECT_EQ(fe.trailer_bins.size(), 3u);
  for (const auto bins : fe.trailer_bins) {
    EXPECT_EQ(bins.size(), static_cast<std::size_t>(kFftSize));
  }
}

TEST(ReceiverInternals, NoTrailerWhenExactLength) {
  Rng rng(3);
  const Bytes psdu = make_psdu(rng, 100);
  const CxVec samples =
      frame_to_samples(build_frame(psdu, mcs_for_rate(6)));
  const FrontEndResult fe = receiver_front_end(samples);
  ASSERT_TRUE(fe.signal.has_value());
  EXPECT_TRUE(fe.trailer_bins.empty());
}

TEST(ReceiverInternals, EqualizeZeroesDeadBins) {
  std::array<Cx, kFftSize> channel{};
  for (auto& h : channel) h = Cx{2.0, 0.0};
  const auto bins = data_subcarrier_bins();
  channel[static_cast<std::size_t>(bins[7])] = Cx{0.0, 0.0};  // dead bin

  CxVec raw(kFftSize, Cx{4.0, 0.0});
  const CxVec points = equalize_data_points(raw, channel);
  EXPECT_EQ(points[7], (Cx{0.0, 0.0}));
  EXPECT_NEAR(std::abs(points[8] - Cx{2.0, 0.0}), 0.0, 1e-12);
}

TEST(ReceiverInternals, CfoReportedByFrontEnd) {
  Rng rng(4);
  const Bytes psdu = make_psdu(rng, 200);
  const CxVec clean = frame_to_samples(build_frame(psdu, mcs_for_rate(12)));

  ImpairmentProfile profile;
  profile.cfo_hz = 18e3;
  RadioImpairments radio(profile, 5);
  const CxVec impaired = radio.apply(clean);
  const FrontEndResult fe = receiver_front_end(impaired);
  ASSERT_TRUE(fe.signal.has_value());
  EXPECT_NEAR(fe.cfo_hz, 18e3, 500.0);
}

TEST(ReceiverInternals, NoiseEstimateUnaffectedByCfoResidual) {
  // The regression that motivated CPE-aware noise estimation: a small
  // CFO residual must not inflate the pilot noise estimate at the end of
  // a long packet.
  Rng rng(6);
  const Bytes psdu = make_psdu(rng, 1500);  // long packet
  const Mcs& mcs = mcs_for_rate(12);
  const CxVec clean = frame_to_samples(build_frame(psdu, mcs));

  ImpairmentProfile profile;
  profile.cfo_hz = 7e3;
  RadioImpairments radio(profile, 7);
  CxVec samples = radio.apply(clean);
  const double nv = noise_var_for_snr_db(18.0);
  for (auto& x : samples) x += rng.complex_gaussian(nv);

  const FrontEndResult fe = receiver_front_end(samples);
  ASSERT_TRUE(fe.signal.has_value());
  const double expected = freq_noise_var(nv);
  EXPECT_LT(fe.noise_var, 2.0 * expected);
  EXPECT_GT(fe.noise_var, 0.4 * expected);
}

TEST(ReceiverInternals, SignalFieldMisdeclaredLengthHandled) {
  // Chop the burst so the SIGNAL-declared length exceeds the samples:
  // the front end must retract the SIGNAL rather than read off the end.
  Rng rng(8);
  const Bytes psdu = make_psdu(rng, 500);
  const CxVec samples =
      frame_to_samples(build_frame(psdu, mcs_for_rate(24)));
  const std::span<const Cx> chopped(samples.data(), 320 + 80 + 3 * 80);
  const FrontEndResult fe = receiver_front_end(chopped);
  EXPECT_FALSE(fe.signal.has_value());
  EXPECT_TRUE(fe.data_bins.empty());
}

}  // namespace
}  // namespace silence
