#include "phy/viterbi.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "phy/convolutional.h"

namespace silence {
namespace {

// Maps coded bits to ideal LLRs (+amp for 0, -amp for 1).
std::vector<double> bits_to_llrs(const Bits& coded, double amp = 4.0) {
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] ? -amp : amp;
  }
  return llrs;
}

Bits encode_terminated(Bits info) {
  info.insert(info.end(), 6, 0);
  return convolutional_encode(info);
}

TEST(Viterbi, NoiselessRoundTrip) {
  Rng rng(1);
  const ViterbiDecoder decoder;
  for (int trial = 0; trial < 10; ++trial) {
    Bits info = rng.bits(100 + static_cast<std::size_t>(trial) * 37);
    const Bits coded = encode_terminated(info);
    const Bits decoded = decoder.decode(bits_to_llrs(coded));
    ASSERT_EQ(decoded.size(), info.size() + 6);
    for (std::size_t i = 0; i < info.size(); ++i) {
      EXPECT_EQ(decoded[i], info[i]) << "trial " << trial << " bit " << i;
    }
  }
}

TEST(Viterbi, EmptyInput) {
  const ViterbiDecoder decoder;
  EXPECT_TRUE(decoder.decode(std::vector<double>{}).empty());
}

TEST(Viterbi, OddLlrCountRejected) {
  const ViterbiDecoder decoder;
  const std::vector<double> llrs(5, 1.0);
  EXPECT_THROW(decoder.decode(llrs), std::invalid_argument);
}

TEST(Viterbi, CorrectsScatteredHardErrors) {
  Rng rng(2);
  const ViterbiDecoder decoder;
  Bits info = rng.bits(200);
  const Bits coded = encode_terminated(info);
  auto llrs = bits_to_llrs(coded);
  // Flip isolated coded bits, spaced beyond the constraint span.
  for (std::size_t i = 10; i < llrs.size(); i += 40) llrs[i] = -llrs[i];
  const Bits decoded = decoder.decode(llrs);
  for (std::size_t i = 0; i < info.size(); ++i) {
    EXPECT_EQ(decoded[i], info[i]);
  }
}

TEST(Viterbi, CorrectsScatteredErasures) {
  Rng rng(3);
  const ViterbiDecoder decoder;
  Bits info = rng.bits(300);
  const Bits coded = encode_terminated(info);
  auto llrs = bits_to_llrs(coded);
  // Erase (zero) 20% of positions, scattered: erasures are weaker than
  // errors so the decoder should shrug these off.
  for (std::size_t i = 0; i < llrs.size(); i += 5) llrs[i] = 0.0;
  const Bits decoded = decoder.decode(llrs);
  for (std::size_t i = 0; i < info.size(); ++i) {
    EXPECT_EQ(decoded[i], info[i]);
  }
}

TEST(Viterbi, FullyErasedStreamDecodesDeterministically) {
  // All-zero LLRs carry no information: every path ties. The decoder must
  // terminate, produce the right length, and be deterministic.
  const ViterbiDecoder decoder;
  const std::vector<double> llrs(200, 0.0);
  const Bits first = decoder.decode(llrs);
  const Bits second = decoder.decode(llrs);
  ASSERT_EQ(first.size(), 100u);
  EXPECT_EQ(first, second);
}

TEST(Viterbi, ErasureBurstOnlyDamagesItsRegion) {
  // Erasing 30 consecutive trellis steps destroys information locally but
  // the decoder must still recover bits far from the burst.
  Rng rng(4);
  const ViterbiDecoder decoder;
  Bits info = rng.bits(300);
  const Bits coded = encode_terminated(info);
  auto llrs = bits_to_llrs(coded);
  for (std::size_t i = 200; i < 260; ++i) llrs[i] = 0.0;  // steps 100..129
  const Bits decoded = decoder.decode(llrs);
  for (std::size_t i = 0; i < 80; ++i) {
    EXPECT_EQ(decoded[i], info[i]) << "bit " << i << " before burst";
  }
  for (std::size_t i = 150; i < info.size(); ++i) {
    EXPECT_EQ(decoded[i], info[i]) << "bit " << i << " after burst";
  }
}

TEST(Viterbi, SoftDecisionsBeatHardDecisions) {
  // With genuine soft inputs the decoder should fix a pattern where hard
  // decisions alone would fail: weak wrong bits + strong right bits.
  Rng rng(5);
  const ViterbiDecoder decoder;
  Bits info = rng.bits(100);
  const Bits coded = encode_terminated(info);
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    const double amp = (i % 3 == 0) ? 0.3 : 4.0;  // every third bit weak
    llrs[i] = coded[i] ? -amp : amp;
  }
  // Flip the weak bits' signs: hard decisions there are now wrong (33% of
  // the stream!), but their low confidence lets the decoder override.
  for (std::size_t i = 0; i < llrs.size(); i += 3) llrs[i] = -llrs[i];
  const Bits decoded = decoder.decode(llrs);
  for (std::size_t i = 0; i < info.size(); ++i) {
    EXPECT_EQ(decoded[i], info[i]);
  }
}

TEST(Viterbi, UnterminatedDecodingStillRecoversBody) {
  Rng rng(6);
  const ViterbiDecoder decoder;
  const Bits info = rng.bits(200);  // no tail
  const Bits coded = convolutional_encode(info);
  const Bits decoded = decoder.decode(bits_to_llrs(coded),
                                      /*terminated=*/false);
  ASSERT_EQ(decoded.size(), info.size());
  // The last few bits may be off without termination; the body must hold.
  for (std::size_t i = 0; i + 8 < info.size(); ++i) {
    EXPECT_EQ(decoded[i], info[i]);
  }
}

class ViterbiNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(ViterbiNoiseSweep, DecodesAtReasonableEbN0) {
  // BPSK-style channel: llr = 2*y/sigma^2 with y = (1-2c) + n. At the
  // parameterized noise sigma the rate-1/2 K=7 code should decode a
  // 500-bit block error-free with overwhelming probability.
  const double sigma = GetParam();
  Rng rng(static_cast<std::uint64_t>(sigma * 1000));
  const ViterbiDecoder decoder;
  Bits info = rng.bits(500);
  const Bits coded = encode_terminated(info);
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    const double y = (coded[i] ? -1.0 : 1.0) + sigma * rng.gaussian();
    llrs[i] = 2.0 * y / (sigma * sigma);
  }
  const Bits decoded = decoder.decode(llrs);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < info.size(); ++i) {
    if (decoded[i] != info[i]) ++errors;
  }
  EXPECT_EQ(errors, 0u) << "sigma " << sigma;
}

INSTANTIATE_TEST_SUITE_P(Sigmas, ViterbiNoiseSweep,
                         ::testing::Values(0.3, 0.5, 0.7));

}  // namespace
}  // namespace silence
