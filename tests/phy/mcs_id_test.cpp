#include <gtest/gtest.h>

#include <stdexcept>

#include "phy/params.h"
#include "runner/json.h"

namespace silence {
namespace {

TEST(McsId, DefaultConstructedIsInvalid) {
  const McsId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.index(), -1);
  EXPECT_THROW(id.info(), std::logic_error);
}

TEST(McsId, ForRateFindsEveryTableRate) {
  for (const int rate : {6, 9, 12, 18, 24, 36, 48, 54}) {
    const McsId id = McsId::for_rate(rate);
    ASSERT_TRUE(id.valid());
    EXPECT_EQ(id->data_rate_mbps, rate);
    EXPECT_EQ(id.rate_mbps(), rate);
    // Value semantics: the handle always resolves to the static table
    // row the old `const Mcs*` pointed at.
    EXPECT_EQ(&id.info(), &mcs_for_rate(rate));
  }
  EXPECT_THROW(McsId::for_rate(11), std::invalid_argument);
}

TEST(McsId, ForSnrMatchesSelectMcsBySnr) {
  for (double snr = 0.0; snr <= 30.0; snr += 0.5) {
    EXPECT_EQ(&McsId::for_snr(snr).info(), &select_mcs_by_snr(snr));
  }
}

TEST(McsId, OfRoundTripsTableReferences) {
  const Mcs& mcs = mcs_for_rate(36);
  const McsId id = McsId::of(mcs);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ((*id).data_rate_mbps, 36);
  // A reference from outside the static table is rejected.
  const Mcs rogue = mcs;
  EXPECT_THROW(McsId::of(rogue), std::invalid_argument);
}

TEST(McsId, FromIndexBoundsChecked) {
  EXPECT_TRUE(McsId::from_index(0).valid());
  EXPECT_THROW(McsId::from_index(-1), std::out_of_range);
  EXPECT_THROW(McsId::from_index(1000), std::out_of_range);
}

TEST(McsId, JsonRoundTripsAsHeadlineRate) {
  const McsId id = McsId::for_rate(48);
  const runner::Json json = id.to_json();
  EXPECT_TRUE(json.is_int());
  EXPECT_EQ(json.as_int(), 48);
  EXPECT_EQ(McsId::from_json(json), id);

  // Invalid serializes as null and round-trips back to invalid.
  const McsId invalid;
  EXPECT_TRUE(invalid.to_json().is_null());
  EXPECT_FALSE(McsId::from_json(invalid.to_json()).valid());
}

TEST(McsId, EqualityIsIndexEquality) {
  EXPECT_EQ(McsId::for_rate(24), McsId::for_mcs(Modulation::kQam16,
                                                CodeRate::kRate1of2));
  EXPECT_NE(McsId::for_rate(24), McsId::for_rate(36));
  EXPECT_EQ(McsId(), McsId());
}

}  // namespace
}  // namespace silence
