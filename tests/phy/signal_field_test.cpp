#include "phy/signal_field.h"

#include <gtest/gtest.h>

namespace silence {
namespace {

TEST(SignalField, EncodeLayout) {
  const Bits bits = encode_signal_bits(mcs_for_rate(24), 1024);
  ASSERT_EQ(bits.size(), 24u);
  // RATE code for 24 Mbps = 1001.
  EXPECT_EQ(bits[0], 1);
  EXPECT_EQ(bits[1], 0);
  EXPECT_EQ(bits[2], 0);
  EXPECT_EQ(bits[3], 1);
  EXPECT_EQ(bits[4], 0);  // reserved
  // LENGTH 1024 = bit 10 set, LSB first from position 5.
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(bits[static_cast<std::size_t>(5 + i)], i == 10 ? 1 : 0);
  }
  // Tail zeros.
  for (int i = 18; i < 24; ++i) {
    EXPECT_EQ(bits[static_cast<std::size_t>(i)], 0);
  }
}

TEST(SignalField, ParityIsEven) {
  for (int mbps : {6, 9, 12, 18, 24, 36, 48, 54}) {
    const Bits bits = encode_signal_bits(mcs_for_rate(mbps), 777);
    int ones = 0;
    for (int i = 0; i < 18; ++i) ones += bits[static_cast<std::size_t>(i)];
    EXPECT_EQ(ones % 2, 0) << mbps;
  }
}

class SignalRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SignalRoundTrip, EncodeParseRecovers) {
  for (int length : {1, 64, 1024, 1500, 4095}) {
    const Bits bits = encode_signal_bits(mcs_for_rate(GetParam()), length);
    const auto parsed = parse_signal_bits(bits);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->mcs->data_rate_mbps, GetParam());
    EXPECT_EQ(parsed->length_octets, length);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, SignalRoundTrip,
                         ::testing::Values(6, 9, 12, 18, 24, 36, 48, 54));

TEST(SignalField, ParityFailureDetected) {
  Bits bits = encode_signal_bits(mcs_for_rate(12), 100);
  bits[6] ^= 1;
  EXPECT_FALSE(parse_signal_bits(bits).has_value());
}

TEST(SignalField, ReservedBitMustBeZero) {
  Bits bits = encode_signal_bits(mcs_for_rate(12), 100);
  bits[4] ^= 1;
  bits[17] ^= 1;  // fix parity so only the reserved bit is wrong
  EXPECT_FALSE(parse_signal_bits(bits).has_value());
}

TEST(SignalField, ZeroLengthRejected) {
  Bits bits = encode_signal_bits(mcs_for_rate(12), 1);
  bits[5] = 0;    // length 1 -> 0
  bits[17] ^= 1;  // fix parity
  EXPECT_FALSE(parse_signal_bits(bits).has_value());
}

TEST(SignalField, BadLengthThrows) {
  EXPECT_THROW(encode_signal_bits(mcs_for_rate(6), 0), std::invalid_argument);
  EXPECT_THROW(encode_signal_bits(mcs_for_rate(6), 4096),
               std::invalid_argument);
}

TEST(SignalField, UnknownRateCodeRejected) {
  // Construct bits with an invalid rate code 0000 and valid parity.
  Bits bits(24, 0);
  bits[5] = 1;  // length 1
  // parity of bits 0..16 = 1 -> set parity bit.
  bits[17] = 1;
  EXPECT_FALSE(parse_signal_bits(bits).has_value());
}

}  // namespace
}  // namespace silence
