#include "phy/puncture.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "phy/convolutional.h"
#include "phy/viterbi.h"

namespace silence {
namespace {

TEST(Puncture, Rate12PassThrough) {
  Rng rng(1);
  const Bits coded = rng.bits(96);
  EXPECT_EQ(puncture(coded, CodeRate::kRate1of2), coded);
}

TEST(Puncture, Rate23DropsEveryFourth) {
  // Pattern keeps A1 B1 A2 and drops B2.
  Bits coded(8);
  for (std::size_t i = 0; i < 8; ++i) coded[i] = static_cast<std::uint8_t>(i % 2);
  // Stream [0,1,0,1,0,1,0,1]: positions 3 and 7 dropped.
  const Bits out = puncture(coded, CodeRate::kRate2of3);
  EXPECT_EQ(out, (Bits{0, 1, 0, 0, 1, 0}));
}

TEST(Puncture, Rate34KeepsFourOfSix) {
  Bits coded = {1, 2, 3, 4, 5, 6};  // markers, not bits
  const Bits out = puncture(coded, CodeRate::kRate3of4);
  // Keep A1(1) B1(2) A2(3), drop B2(4) A3(5), keep B3(6).
  EXPECT_EQ(out, (Bits{1, 2, 3, 6}));
}

TEST(Puncture, LengthsMatchCodeRates) {
  EXPECT_EQ(punctured_length(96, CodeRate::kRate1of2), 96u);
  EXPECT_EQ(punctured_length(96, CodeRate::kRate2of3), 72u);
  EXPECT_EQ(punctured_length(96, CodeRate::kRate3of4), 64u);
}

TEST(Puncture, DepunctureRestoresPositions) {
  const std::vector<double> llrs = {1.0, 2.0, 3.0, 6.0};
  const Llrs out = depuncture_llrs(llrs, CodeRate::kRate3of4, 6);
  EXPECT_EQ(out, (Llrs{1.0, 2.0, 3.0, 0.0, 0.0, 6.0}));
}

TEST(Puncture, DepunctureValidatesCounts) {
  const std::vector<double> llrs(5, 1.0);
  EXPECT_THROW(depuncture_llrs(llrs, CodeRate::kRate3of4, 6),
               std::invalid_argument);
  EXPECT_THROW(depuncture_llrs(llrs, CodeRate::kRate1of2, 6),
               std::invalid_argument);
}

class PunctureRoundTrip : public ::testing::TestWithParam<CodeRate> {};

TEST_P(PunctureRoundTrip, EncodePunctureDecodeRecovers) {
  // Full coding path at each rate: encode, puncture, perfect-LLR
  // depuncture, Viterbi decode.
  const CodeRate rate = GetParam();
  Rng rng(77);
  const ViterbiDecoder decoder;
  for (int trial = 0; trial < 5; ++trial) {
    Bits info = rng.bits(240);
    info.insert(info.end(), 6, 0);
    // Pad so the mother stream is a multiple of the puncture period.
    while ((2 * info.size()) % 12 != 0) info.push_back(0);
    const Bits mother = convolutional_encode(info);
    const Bits sent = puncture(mother, rate);
    std::vector<double> llrs(sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
      llrs[i] = sent[i] ? -4.0 : 4.0;
    }
    const Llrs full = depuncture_llrs(llrs, rate, mother.size());
    const Bits decoded = decoder.decode(full);
    ASSERT_EQ(decoded.size(), info.size());
    for (std::size_t i = 0; i < 240; ++i) {
      EXPECT_EQ(decoded[i], info[i]) << "rate trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, PunctureRoundTrip,
                         ::testing::Values(CodeRate::kRate1of2,
                                           CodeRate::kRate2of3,
                                           CodeRate::kRate3of4));

TEST(Puncture, PuncturedCodeStillCorrectsErrors) {
  // Rate 3/4 keeps enough redundancy for isolated hard errors.
  Rng rng(78);
  const ViterbiDecoder decoder;
  Bits info = rng.bits(240);
  info.insert(info.end(), 6, 0);
  const Bits mother = convolutional_encode(info);
  const Bits sent = puncture(mother, CodeRate::kRate3of4);
  std::vector<double> llrs(sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    llrs[i] = sent[i] ? -4.0 : 4.0;
  }
  for (std::size_t i = 20; i < llrs.size(); i += 80) llrs[i] = -llrs[i];
  const Llrs full = depuncture_llrs(llrs, CodeRate::kRate3of4, mother.size());
  const Bits decoded = decoder.decode(full);
  for (std::size_t i = 0; i < 240; ++i) {
    EXPECT_EQ(decoded[i], info[i]);
  }
}

}  // namespace
}  // namespace silence
