#include "phy/modulation.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.h"

namespace silence {
namespace {

const Modulation kAllMods[] = {Modulation::kBpsk, Modulation::kQpsk,
                               Modulation::kQam16, Modulation::kQam64};

TEST(Modulation, BpskMapping) {
  EXPECT_EQ(map_symbol(Bits{0}, Modulation::kBpsk), (Cx{-1.0, 0.0}));
  EXPECT_EQ(map_symbol(Bits{1}, Modulation::kBpsk), (Cx{1.0, 0.0}));
}

TEST(Modulation, QpskMapping) {
  const double s = 1.0 / std::sqrt(2.0);
  EXPECT_EQ(map_symbol(Bits{0, 0}, Modulation::kQpsk), (Cx{-s, -s}));
  EXPECT_EQ(map_symbol(Bits{1, 0}, Modulation::kQpsk), (Cx{s, -s}));
  EXPECT_EQ(map_symbol(Bits{0, 1}, Modulation::kQpsk), (Cx{-s, s}));
  EXPECT_EQ(map_symbol(Bits{1, 1}, Modulation::kQpsk), (Cx{s, s}));
}

TEST(Modulation, Qam16GrayMapping) {
  const double s = 1.0 / std::sqrt(10.0);
  // 802.11a Table 83: b0b1 selects I in {-3,-1,+3,+1} Gray order.
  EXPECT_EQ(map_symbol(Bits{0, 0, 0, 0}, Modulation::kQam16),
            (Cx{-3 * s, -3 * s}));
  EXPECT_EQ(map_symbol(Bits{0, 1, 1, 1}, Modulation::kQam16),
            (Cx{-1 * s, 1 * s}));
  EXPECT_EQ(map_symbol(Bits{1, 0, 1, 0}, Modulation::kQam16),
            (Cx{3 * s, 3 * s}));
  EXPECT_EQ(map_symbol(Bits{1, 1, 0, 1}, Modulation::kQam16),
            (Cx{1 * s, -1 * s}));
}

TEST(Modulation, Qam64GrayMapping) {
  const double s = 1.0 / std::sqrt(42.0);
  EXPECT_EQ(map_symbol(Bits{0, 0, 0, 0, 0, 0}, Modulation::kQam64),
            (Cx{-7 * s, -7 * s}));
  EXPECT_EQ(map_symbol(Bits{1, 0, 0, 1, 0, 0}, Modulation::kQam64),
            (Cx{7 * s, 7 * s}));
  EXPECT_EQ(map_symbol(Bits{0, 1, 0, 1, 1, 0}, Modulation::kQam64),
            (Cx{-1 * s, 1 * s}));
  EXPECT_EQ(map_symbol(Bits{1, 1, 1, 0, 1, 1}, Modulation::kQam64),
            (Cx{3 * s, -3 * s}));
}

TEST(Modulation, UnitAverageEnergy) {
  for (Modulation mod : kAllMods) {
    const auto points = constellation(mod);
    double sum = 0.0;
    for (const Cx& p : points) sum += std::norm(p);
    EXPECT_NEAR(sum / static_cast<double>(points.size()), 1.0, 1e-12)
        << to_string(mod);
  }
}

TEST(Modulation, ConstellationSizes) {
  EXPECT_EQ(constellation(Modulation::kBpsk).size(), 2u);
  EXPECT_EQ(constellation(Modulation::kQpsk).size(), 4u);
  EXPECT_EQ(constellation(Modulation::kQam16).size(), 16u);
  EXPECT_EQ(constellation(Modulation::kQam64).size(), 64u);
}

TEST(Modulation, GrayPropertyNearestNeighborsDifferInOneBit) {
  // For every constellation point, each nearest neighbor's bit pattern
  // differs in exactly one bit — the Gray property.
  for (Modulation mod : kAllMods) {
    const int n = bits_per_symbol(mod);
    const auto points = constellation(mod);
    const double dmin = min_constellation_distance(mod);
    for (std::size_t a = 0; a < points.size(); ++a) {
      for (std::size_t b = 0; b < points.size(); ++b) {
        if (a == b) continue;
        if (std::abs(points[a] - points[b]) > dmin * 1.001) continue;
        const Bits bits_a = uint_to_bits(a, n);
        const Bits bits_b = uint_to_bits(b, n);
        EXPECT_EQ(hamming_distance(bits_a, bits_b), 1u)
            << to_string(mod) << " points " << a << "," << b;
      }
    }
  }
}

TEST(Modulation, HardDecisionRoundTrip) {
  Rng rng(31);
  for (Modulation mod : kAllMods) {
    const int n = bits_per_symbol(mod);
    for (int trial = 0; trial < 50; ++trial) {
      const Bits bits = rng.bits(static_cast<std::size_t>(n));
      const Cx point = map_symbol(bits, mod);
      // Small perturbation must not change the decision.
      const Cx noisy = point + Cx{0.01, -0.01};
      EXPECT_EQ(hard_decision_bits(noisy, mod), bits) << to_string(mod);
      EXPECT_EQ(hard_decision(noisy, mod), point);
    }
  }
}

TEST(Modulation, LlrSignsMatchTransmittedBits) {
  Rng rng(32);
  for (Modulation mod : kAllMods) {
    const int n = bits_per_symbol(mod);
    for (int trial = 0; trial < 30; ++trial) {
      const Bits bits = rng.bits(static_cast<std::size_t>(n));
      const Cx point = map_symbol(bits, mod);
      std::vector<double> llrs;
      demod_llrs(point, mod, 0.1, llrs);
      ASSERT_EQ(llrs.size(), static_cast<std::size_t>(n));
      for (int b = 0; b < n; ++b) {
        // Positive LLR = bit 0; on a clean point signs must be decisive.
        if (bits[static_cast<std::size_t>(b)] == 0) {
          EXPECT_GT(llrs[static_cast<std::size_t>(b)], 0.0);
        } else {
          EXPECT_LT(llrs[static_cast<std::size_t>(b)], 0.0);
        }
      }
    }
  }
}

TEST(Modulation, LlrMagnitudeScalesWithNoise) {
  const Cx point = map_symbol(Bits{1, 0, 1, 1}, Modulation::kQam16);
  std::vector<double> low_noise, high_noise;
  demod_llrs(point + Cx{0.05, 0.0}, Modulation::kQam16, 0.01, low_noise);
  demod_llrs(point + Cx{0.05, 0.0}, Modulation::kQam16, 1.0, high_noise);
  for (std::size_t i = 0; i < low_noise.size(); ++i) {
    EXPECT_GT(std::abs(low_noise[i]), std::abs(high_noise[i]));
  }
}

TEST(Modulation, MinDistances) {
  EXPECT_DOUBLE_EQ(min_constellation_distance(Modulation::kBpsk), 2.0);
  EXPECT_NEAR(min_constellation_distance(Modulation::kQpsk), std::sqrt(2.0),
              1e-12);
  EXPECT_NEAR(min_constellation_distance(Modulation::kQam16),
              2.0 / std::sqrt(10.0), 1e-12);
  EXPECT_NEAR(min_constellation_distance(Modulation::kQam64),
              2.0 / std::sqrt(42.0), 1e-12);
}

TEST(Modulation, MapBitsWholeStream) {
  Rng rng(33);
  const Bits bits = rng.bits(24);
  const CxVec points = map_bits(bits, Modulation::kQam16);
  ASSERT_EQ(points.size(), 6u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i],
              map_symbol(std::span(bits).subspan(i * 4, 4),
                         Modulation::kQam16));
  }
  EXPECT_THROW(map_bits(rng.bits(5), Modulation::kQam16),
               std::invalid_argument);
}

TEST(Modulation, WrongBitCountRejected) {
  EXPECT_THROW(map_symbol(Bits{0, 1}, Modulation::kBpsk),
               std::invalid_argument);
  EXPECT_THROW(map_symbol(Bits{0}, Modulation::kQam64),
               std::invalid_argument);
}

}  // namespace
}  // namespace silence
