#include "phy/interleaver.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/rng.h"

namespace silence {
namespace {

class InterleaverAllRates : public ::testing::TestWithParam<int> {};

TEST_P(InterleaverAllRates, PermutationIsBijective) {
  const Mcs& mcs = mcs_for_rate(GetParam());
  const auto perm = interleaver_permutation(mcs.n_cbps, mcs.n_bpsc);
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), perm.size());
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), mcs.n_cbps - 1);
}

TEST_P(InterleaverAllRates, InterleaveDeinterleaveRoundTrip) {
  const Mcs& mcs = mcs_for_rate(GetParam());
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Bits bits = rng.bits(static_cast<std::size_t>(mcs.n_cbps) * 3);
  const Bits inter = interleave(bits, mcs);
  // Deinterleave via the soft path (the receiver's route).
  std::vector<double> llrs(inter.size());
  for (std::size_t i = 0; i < inter.size(); ++i) {
    llrs[i] = inter[i] ? -1.0 : 1.0;
  }
  const auto deint = deinterleave_llrs(llrs, mcs);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_EQ(bits[i], deint[i] < 0 ? 1 : 0);
  }
}

TEST_P(InterleaverAllRates, AdjacentCodedBitsLandOnDistantSubcarriers) {
  // The first permutation guarantees adjacent coded bits map onto
  // subcarriers separated by n_cbps/16 positions in the output.
  const Mcs& mcs = mcs_for_rate(GetParam());
  const auto perm = interleaver_permutation(mcs.n_cbps, mcs.n_bpsc);
  for (int k = 0; k + 1 < mcs.n_cbps; ++k) {
    const int sc_a = perm[static_cast<std::size_t>(k)] / mcs.n_bpsc;
    const int sc_b = perm[static_cast<std::size_t>(k + 1)] / mcs.n_bpsc;
    EXPECT_NE(sc_a, sc_b) << "coded bits " << k << "," << k + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, InterleaverAllRates,
                         ::testing::Values(6, 9, 12, 18, 24, 36, 48, 54));

TEST(Interleaver, KnownBpskMapping) {
  // For BPSK (n_cbps = 48, s = 1) the second permutation is identity, so
  // j = i = 3*(k mod 16) + floor(k/16).
  const auto perm = interleaver_permutation(48, 1);
  EXPECT_EQ(perm[0], 0);
  EXPECT_EQ(perm[1], 3);
  EXPECT_EQ(perm[2], 6);
  EXPECT_EQ(perm[15], 45);
  EXPECT_EQ(perm[16], 1);
  EXPECT_EQ(perm[47], 47);
}

TEST(Interleaver, Known16QamMapping) {
  // 16QAM: n_cbps = 192, s = 2. Spot-check against hand-computed values.
  const auto perm = interleaver_permutation(192, 4);
  // k=0: i=0, j = 2*0 + (0 + 192 - 0) % 2 = 0.
  EXPECT_EQ(perm[0], 0);
  // k=1: i=12, floor(16*12/192)=1, j = 2*6 + (12+192-1)%2 = 12+1 = 13.
  EXPECT_EQ(perm[1], 13);
  // k=16: i=1, floor(16/192)=0, j = 0 + (1+192-0)%2 = 1.
  EXPECT_EQ(perm[16], 1);
}

TEST(Interleaver, OneSilenceSymbolSpreadsAcrossCodeword) {
  // CoS's key reliance on the interleaver: the n_bpsc coded bits carried
  // by one data subcarrier (one silence symbol) must deinterleave to
  // positions spread out across the codeword, not a contiguous burst.
  const Mcs& mcs = mcs_for_rate(24);  // 16QAM: 4 bits per symbol
  const auto perm = interleaver_permutation(mcs.n_cbps, mcs.n_bpsc);
  // Output positions of subcarrier 20 are [20*4, 20*4+4).
  std::vector<int> sources;
  for (int k = 0; k < mcs.n_cbps; ++k) {
    const int j = perm[static_cast<std::size_t>(k)];
    if (j >= 80 && j < 84) sources.push_back(k);
  }
  ASSERT_EQ(sources.size(), 4u);
  std::sort(sources.begin(), sources.end());
  for (std::size_t i = 1; i < sources.size(); ++i) {
    EXPECT_GT(sources[i] - sources[i - 1], 8)
        << "erased bits land too close in the codeword";
  }
}

TEST(Interleaver, RejectsWrongSizes) {
  const Mcs& mcs = mcs_for_rate(12);
  Rng rng(5);
  const Bits bits = rng.bits(static_cast<std::size_t>(mcs.n_cbps) + 1);
  EXPECT_THROW(interleave(bits, mcs), std::invalid_argument);
  EXPECT_THROW(interleaver_permutation(50, 1), std::invalid_argument);
}

}  // namespace
}  // namespace silence
