// End-to-end PHY loopback: full transmit chain -> (clean or noisy,
// possibly faded, channel) -> full receive chain, across every 802.11a
// rate.
#include <gtest/gtest.h>

#include "channel/fading.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "phy/receiver.h"
#include "phy/transmitter.h"

namespace silence {
namespace {

Bytes random_psdu(Rng& rng, std::size_t total) {
  Bytes psdu = rng.bytes(total - 4);
  append_fcs(psdu);
  return psdu;
}

class LoopbackAllRates : public ::testing::TestWithParam<int> {};

TEST_P(LoopbackAllRates, CleanChannelRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Mcs& mcs = mcs_for_rate(GetParam());
  const Bytes psdu = random_psdu(rng, 300);
  const TxFrame frame = build_frame(psdu, mcs);
  const CxVec samples = frame_to_samples(frame);

  const RxPacket packet = receive_packet(samples);
  ASSERT_TRUE(packet.signal.has_value());
  EXPECT_EQ(packet.signal->mcs->data_rate_mbps, GetParam());
  EXPECT_EQ(packet.signal->length_octets, 300);
  ASSERT_TRUE(packet.ok);
  EXPECT_EQ(packet.psdu, psdu);
}

TEST_P(LoopbackAllRates, HighSnrAwgnRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const Mcs& mcs = mcs_for_rate(GetParam());
  const Bytes psdu = random_psdu(rng, 500);
  CxVec samples = frame_to_samples(build_frame(psdu, mcs));

  // 12 dB above this rate's threshold: decoding must succeed.
  const double noise_var =
      noise_var_for_snr_db(mcs.min_required_snr_db + 12.0);
  for (auto& x : samples) x += rng.complex_gaussian(noise_var);

  const RxPacket packet = receive_packet(samples);
  ASSERT_TRUE(packet.ok);
  EXPECT_EQ(packet.psdu, psdu);
}

TEST_P(LoopbackAllRates, FadedChannelRoundTrip) {
  // Noise is pinned to the *measured* (fading-penalized) SNR: rate
  // adaptation only ever selects an MCS when the measured SNR clears its
  // threshold, so decoding must succeed with margin above it.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 200);
  const Mcs& mcs = mcs_for_rate(GetParam());
  const Bytes psdu = random_psdu(rng, 400);
  const CxVec samples = frame_to_samples(build_frame(psdu, mcs));

  MultipathProfile profile;
  FadingChannel channel(profile, 12345);
  const double noise_var =
      noise_var_for_measured_snr(channel, mcs.min_required_snr_db + 8.0);
  const CxVec received = channel.transmit(samples, noise_var, rng);

  const RxPacket packet = receive_packet(received);
  ASSERT_TRUE(packet.ok) << "rate " << GetParam();
  EXPECT_EQ(packet.psdu, psdu);
}

INSTANTIATE_TEST_SUITE_P(Rates, LoopbackAllRates,
                         ::testing::Values(6, 9, 12, 18, 24, 36, 48, 54));

TEST(Loopback, SampleCountMatchesFrameMath) {
  Rng rng(1);
  const Bytes psdu = random_psdu(rng, 1024);
  const Mcs& mcs = mcs_for_rate(24);
  const TxFrame frame = build_frame(psdu, mcs);
  // 16 + 8*1024 + 6 = 8214 bits over 96 DBPS = 86 symbols.
  EXPECT_EQ(frame.num_symbols(), 86);
  const CxVec samples = frame_to_samples(frame);
  EXPECT_EQ(samples.size(), 320u + 80u + 86u * 80u);
  EXPECT_NEAR(frame.airtime_sec(), 20e-6 + 86 * 4e-6, 1e-12);
}

TEST(Loopback, LowSnrPacketFailsCrc) {
  Rng rng(2);
  const Bytes psdu = random_psdu(rng, 500);
  const Mcs& mcs = mcs_for_rate(54);
  CxVec samples = frame_to_samples(build_frame(psdu, mcs));
  // 54 Mbps at 6 dB is hopeless; the CRC must catch it (or SIGNAL fails).
  const double noise_var = noise_var_for_snr_db(6.0);
  for (auto& x : samples) x += rng.complex_gaussian(noise_var);
  const RxPacket packet = receive_packet(samples);
  EXPECT_FALSE(packet.ok);
}

TEST(Loopback, TruncatedBurstRejected) {
  Rng rng(3);
  const Bytes psdu = random_psdu(rng, 200);
  const CxVec samples = frame_to_samples(build_frame(psdu, mcs_for_rate(12)));
  const std::span<const Cx> truncated(samples.data(), samples.size() - 200);
  const RxPacket packet = receive_packet(truncated);
  EXPECT_FALSE(packet.ok);
}

TEST(Loopback, ScramblerSeedRecoveredInDecode) {
  Rng rng(4);
  const Bytes psdu = random_psdu(rng, 100);
  const Mcs& mcs = mcs_for_rate(12);
  const std::uint8_t seed = 0x2B;
  const CxVec samples = frame_to_samples(build_frame(psdu, mcs, seed));
  const FrontEndResult fe = receiver_front_end(samples);
  ASSERT_TRUE(fe.signal.has_value());
  const DecodeResult decode =
      decode_data_symbols(fe, mcs, static_cast<int>(psdu.size()));
  EXPECT_TRUE(decode.crc_ok);
  EXPECT_EQ(decode.scrambler_seed, seed);
}

TEST(Loopback, DecoderInputHardBitsMatchCodedStreamWhenClean) {
  Rng rng(5);
  const Bytes psdu = random_psdu(rng, 256);
  const Mcs& mcs = mcs_for_rate(36);
  const TxFrame frame = build_frame(psdu, mcs);
  const CxVec samples = frame_to_samples(frame);
  const FrontEndResult fe = receiver_front_end(samples);
  ASSERT_TRUE(fe.signal.has_value());
  const DecodeResult decode =
      decode_data_symbols(fe, mcs, static_cast<int>(psdu.size()));
  ASSERT_EQ(decode.decoder_input_hard.size(), frame.coded_bits.size());
  EXPECT_EQ(hamming_distance(decode.decoder_input_hard, frame.coded_bits),
            0u);
}

TEST(Loopback, PsduSizeLimits) {
  Rng rng(6);
  EXPECT_THROW(build_frame({}, mcs_for_rate(6)), std::invalid_argument);
  const Bytes big = rng.bytes(4096);
  EXPECT_THROW(build_frame(big, mcs_for_rate(6)), std::invalid_argument);
}

}  // namespace
}  // namespace silence
