#include "phy/scrambler.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace silence {
namespace {

TEST(Scrambler, RejectsZeroSeed) {
  EXPECT_THROW(Scrambler(0), std::invalid_argument);
}

TEST(Scrambler, AllOnesSeedKnownPrefix) {
  // 802.11a 17.3.5.4: the all-ones seed generates a 127-bit sequence
  // beginning 0000 1110 1111 0010 ...
  const Bits seq = Scrambler::sequence(0x7F, 16);
  const Bits expected = {0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0};
  EXPECT_EQ(seq, expected);
}

TEST(Scrambler, SequenceHasPeriod127) {
  const Bits seq = Scrambler::sequence(0x35, 254);
  for (std::size_t i = 0; i < 127; ++i) {
    EXPECT_EQ(seq[i], seq[i + 127]) << "position " << i;
  }
}

TEST(Scrambler, SequenceIsBalancedOverOnePeriod) {
  // A maximal-length 7-bit LFSR emits 64 ones and 63 zeros per period.
  const Bits seq = Scrambler::sequence(0x7F, 127);
  int ones = 0;
  for (auto b : seq) ones += b;
  EXPECT_EQ(ones, 64);
}

TEST(Scrambler, ScrambleDescrambleRoundTrip) {
  Rng rng(21);
  const Bits plain = rng.bits(1000);
  Scrambler tx(0x5D);
  const Bits scrambled = tx.apply(plain);
  Scrambler rx(0x5D);
  EXPECT_EQ(rx.apply(scrambled), plain);
}

TEST(Scrambler, ScrambleActuallyChangesBits) {
  const Bits plain(100, 0);
  Scrambler tx(0x5D);
  const Bits scrambled = tx.apply(plain);
  EXPECT_NE(scrambled, plain);
}

TEST(Scrambler, RecoverSeedFromServicePrefix) {
  for (std::uint8_t seed = 1; seed < 128; ++seed) {
    // SERVICE bits are zero, so the first 7 scrambled bits are the PN
    // sequence itself.
    const Bits prefix = Scrambler::sequence(seed, 7);
    EXPECT_EQ(Scrambler::recover_seed(prefix), seed);
  }
}

TEST(Scrambler, RecoverSeedNeedsSevenBits) {
  const Bits short_prefix(3, 0);
  EXPECT_THROW(Scrambler::recover_seed(short_prefix), std::invalid_argument);
}

TEST(Scrambler, AllSeedsGenerateSameCycle) {
  // Every non-zero seed walks the same 127-state cycle, just offset.
  const Bits reference = Scrambler::sequence(0x7F, 127);
  const Bits other = Scrambler::sequence(0x2A, 254);
  bool found = false;
  for (std::size_t offset = 0; offset < 127 && !found; ++offset) {
    bool match = true;
    for (std::size_t i = 0; i < 127; ++i) {
      if (other[offset + i] != reference[i]) {
        match = false;
        break;
      }
    }
    found = match;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace silence
