#include "phy/ofdm.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "phy/modulation.h"
#include "phy/pilots.h"

namespace silence {
namespace {

CxVec random_points(Rng& rng, Modulation mod) {
  const auto bits =
      rng.bits(static_cast<std::size_t>(kNumDataSubcarriers) *
               static_cast<std::size_t>(bits_per_symbol(mod)));
  return map_bits(bits, mod);
}

TEST(Ofdm, AssembleplacesDataAndPilots) {
  Rng rng(1);
  const CxVec data = random_points(rng, Modulation::kQpsk);
  const CxVec bins = assemble_frequency_bins(data, 3);
  const auto data_bins = data_subcarrier_bins();
  for (int i = 0; i < kNumDataSubcarriers; ++i) {
    EXPECT_EQ(bins[static_cast<std::size_t>(data_bins[static_cast<std::size_t>(i)])],
              data[static_cast<std::size_t>(i)]);
  }
  const auto pilots = pilot_values(3);
  const auto pilot_bins = pilot_subcarrier_bins();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(bins[static_cast<std::size_t>(pilot_bins[static_cast<std::size_t>(i)])],
              pilots[static_cast<std::size_t>(i)]);
  }
  // Guards and DC are zero.
  EXPECT_EQ(bins[0], (Cx{0.0, 0.0}));
  for (int guard = 27; guard <= 37; ++guard) {
    EXPECT_EQ(bins[static_cast<std::size_t>(guard)], (Cx{0.0, 0.0}));
  }
}

TEST(Ofdm, TimeFrequencyRoundTrip) {
  Rng rng(2);
  const CxVec data = random_points(rng, Modulation::kQam64);
  const CxVec bins = assemble_frequency_bins(data, 7);
  const CxVec time = bins_to_time(bins);
  ASSERT_EQ(time.size(), static_cast<std::size_t>(kSymbolSamples));
  const CxVec recovered = time_to_bins(time);
  for (std::size_t k = 0; k < 64; ++k) {
    EXPECT_NEAR(std::abs(recovered[k] - bins[k]), 0.0, 1e-9);
  }
}

TEST(Ofdm, CyclicPrefixIsTail) {
  Rng rng(3);
  const CxVec data = random_points(rng, Modulation::kBpsk);
  const CxVec time = bins_to_time(assemble_frequency_bins(data, 0));
  for (int n = 0; n < kCpLength; ++n) {
    EXPECT_EQ(time[static_cast<std::size_t>(n)],
              time[static_cast<std::size_t>(n + kFftSize)]);
  }
}

TEST(Ofdm, ExtractDataPointsInverseOfAssemble) {
  Rng rng(4);
  const CxVec data = random_points(rng, Modulation::kQam16);
  const CxVec bins = assemble_frequency_bins(data, 5);
  const CxVec extracted = extract_data_points(bins);
  ASSERT_EQ(extracted.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(extracted[i], data[i]);
  }
}

TEST(Ofdm, ExtractPilotPoints) {
  Rng rng(5);
  const CxVec data = random_points(rng, Modulation::kQpsk);
  const CxVec bins = assemble_frequency_bins(data, 11);
  const auto pilots = extract_pilot_points(bins);
  const auto expected = pilot_values(11);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pilots[static_cast<std::size_t>(i)],
              expected[static_cast<std::size_t>(i)]);
  }
}

TEST(Ofdm, SilencedSubcarrierHasZeroEnergyAfterFft) {
  // The CoS mechanism at PHY level: zeroing a data point before the IFFT
  // leaves exactly zero energy on that bin after the receiver FFT.
  Rng rng(6);
  CxVec data = random_points(rng, Modulation::kQam16);
  data[20] = Cx{0.0, 0.0};  // silence logical subcarrier 20
  const CxVec time = bins_to_time(assemble_frequency_bins(data, 1));
  const CxVec rx_bins = time_to_bins(time);
  const auto data_bins = data_subcarrier_bins();
  EXPECT_NEAR(std::abs(rx_bins[static_cast<std::size_t>(data_bins[20])]), 0.0,
              1e-10);
  // Neighbors are untouched (orthogonality).
  EXPECT_GT(std::abs(rx_bins[static_cast<std::size_t>(data_bins[19])]), 0.1);
  EXPECT_GT(std::abs(rx_bins[static_cast<std::size_t>(data_bins[21])]), 0.1);
}

TEST(Ofdm, SizeValidation) {
  const CxVec wrong(47);
  EXPECT_THROW(assemble_frequency_bins(wrong, 0), std::invalid_argument);
  const CxVec bad_bins(63);
  EXPECT_THROW(bins_to_time(bad_bins), std::invalid_argument);
  const CxVec bad_time(79);
  EXPECT_THROW(time_to_bins(bad_time), std::invalid_argument);
  EXPECT_THROW(extract_data_points(bad_bins), std::invalid_argument);
}

}  // namespace
}  // namespace silence
