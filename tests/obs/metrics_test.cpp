// Registry semantics: interning, counter/gauge/histogram accumulation,
// power-of-two bucket placement, and — the load-bearing property — that
// merged snapshots are bit-identical no matter how many threads recorded
// the same set of values.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace silence::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::global().reset(); }
};

TEST_F(MetricsTest, BucketPlacement) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket(2), 2u);
  EXPECT_EQ(histogram_bucket(3), 2u);
  EXPECT_EQ(histogram_bucket(4), 3u);
  EXPECT_EQ(histogram_bucket(7), 3u);
  EXPECT_EQ(histogram_bucket(8), 4u);
  // The last bucket is open-ended.
  EXPECT_EQ(histogram_bucket(std::uint64_t{1} << 50), kHistogramBuckets - 1);
  EXPECT_EQ(histogram_bucket(std::numeric_limits<std::uint64_t>::max()),
            kHistogramBuckets - 1);
}

TEST_F(MetricsTest, BucketFloors) {
  EXPECT_EQ(histogram_bucket_floor(0), 0u);
  EXPECT_EQ(histogram_bucket_floor(1), 1u);
  EXPECT_EQ(histogram_bucket_floor(2), 2u);
  EXPECT_EQ(histogram_bucket_floor(3), 4u);
  EXPECT_EQ(histogram_bucket_floor(4), 8u);
  // Every value lands in the bucket whose floor it is >= to.
  for (std::uint64_t v : {1u, 2u, 3u, 5u, 100u, 4096u}) {
    const std::size_t b = histogram_bucket(v);
    EXPECT_GE(v, histogram_bucket_floor(b)) << "value " << v;
    if (b + 1 < kHistogramBuckets) {
      EXPECT_LT(v, histogram_bucket_floor(b + 1)) << "value " << v;
    }
  }
}

TEST_F(MetricsTest, InterningIsIdempotent) {
  auto& reg = Registry::global();
  const std::uint32_t a = reg.counter_id("obs_test.intern");
  const std::uint32_t b = reg.counter_id("obs_test.intern");
  EXPECT_EQ(a, b);
  // Counter / histogram / gauge namespaces are independent.
  EXPECT_NO_THROW(reg.histogram_id("obs_test.intern"));
  EXPECT_NO_THROW(reg.gauge_id("obs_test.intern"));
}

TEST_F(MetricsTest, CounterAccumulates) {
  auto& reg = Registry::global();
  const std::uint32_t id = reg.counter_id("obs_test.counter");
  reg.counter_add(id, 1);
  reg.counter_add(id, 41);
  const MetricsSnapshot snap = reg.snapshot();
  const CounterSnapshot* c = snap.counter("obs_test.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 42u);
  EXPECT_EQ(snap.counter("obs_test.no_such_counter"), nullptr);
}

TEST_F(MetricsTest, HistogramRecordsCountSumMinMaxBuckets) {
  auto& reg = Registry::global();
  const std::uint32_t id = reg.histogram_id("obs_test.hist");
  for (std::uint64_t v : {5u, 0u, 100u, 7u}) reg.histogram_record(id, v);
  const MetricsSnapshot snap = reg.snapshot();
  const HistogramSnapshot* h = snap.histogram("obs_test.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4u);
  EXPECT_EQ(h->sum, 112u);
  EXPECT_EQ(h->min, 0u);
  EXPECT_EQ(h->max, 100u);
  EXPECT_DOUBLE_EQ(h->mean(), 28.0);
  ASSERT_EQ(h->buckets.size(), kHistogramBuckets);
  EXPECT_EQ(h->buckets[histogram_bucket(0)], 1u);
  EXPECT_EQ(h->buckets[histogram_bucket(5)], 2u);  // 5 and 7 share bucket 3
  EXPECT_EQ(h->buckets[histogram_bucket(100)], 1u);
  std::uint64_t total = 0;
  for (std::uint64_t b : h->buckets) total += b;
  EXPECT_EQ(total, h->count);
}

TEST_F(MetricsTest, GaugeLastWriteWinsAndUnsetGaugesAbsent) {
  auto& reg = Registry::global();
  const std::uint32_t id = reg.gauge_id("obs_test.gauge");
  reg.gauge_id("obs_test.gauge_never_set");
  reg.gauge_set(id, 3);
  reg.gauge_set(id, -8);
  const MetricsSnapshot snap = reg.snapshot();
  const GaugeSnapshot* g = snap.gauge("obs_test.gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, -8);
  EXPECT_EQ(snap.gauge("obs_test.gauge_never_set"), nullptr);
}

TEST_F(MetricsTest, SnapshotSortedByName) {
  auto& reg = Registry::global();
  reg.counter_add(reg.counter_id("obs_test.zz"), 1);
  reg.counter_add(reg.counter_id("obs_test.aa"), 1);
  const MetricsSnapshot snap = reg.snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  for (std::size_t i = 1; i < snap.histograms.size(); ++i) {
    EXPECT_LT(snap.histograms[i - 1].name, snap.histograms[i].name);
  }
}

TEST_F(MetricsTest, ResetZeroesValuesButKeepsNames) {
  auto& reg = Registry::global();
  const std::uint32_t id = reg.counter_id("obs_test.reset_me");
  reg.counter_add(id, 9);
  reg.reset();
  const MetricsSnapshot snap = reg.snapshot();
  const CounterSnapshot* c = snap.counter("obs_test.reset_me");
  ASSERT_NE(c, nullptr);  // the name survives a reset
  EXPECT_EQ(c->value, 0u);
  reg.counter_add(id, 2);  // the interned id is still valid
  EXPECT_EQ(reg.snapshot().counter("obs_test.reset_me")->value, 2u);
}

TEST_F(MetricsTest, ThreadBlocksOutliveTheirThreads) {
  auto& reg = Registry::global();
  const std::uint32_t id = reg.counter_id("obs_test.thread_counter");
  std::thread([&] { reg.counter_add(id, 5); }).join();
  std::thread([&] { reg.counter_add(id, 7); }).join();
  reg.counter_add(id, 1);
  EXPECT_EQ(reg.snapshot().counter("obs_test.thread_counter")->value, 13u);
}

// The determinism contract: the same recorded multiset of values yields a
// byte-identical serialized snapshot regardless of how the recording work
// was split across threads.
std::string run_partitioned_workload(unsigned threads) {
  auto& reg = Registry::global();
  reg.reset();
  const std::uint32_t cid = reg.counter_id("obs_test.det.counter");
  const std::uint32_t hid = reg.histogram_id("obs_test.det.hist");
  const std::uint32_t gid = reg.gauge_id("obs_test.det.gauge");
  constexpr std::size_t kTotal = 4096;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (std::size_t i = t; i < kTotal; i += threads) {
        reg.counter_add(cid, i % 7 + 1);
        reg.histogram_record(hid, (i * 2654435761ull) % 1000000);
      }
    });
  }
  for (auto& th : pool) th.join();
  reg.gauge_set(gid, static_cast<std::int64_t>(kTotal));
  return metrics_to_json(reg.snapshot());
}

TEST_F(MetricsTest, MergeIsDeterministicAcrossThreadCounts) {
  const std::string one = run_partitioned_workload(1);
  const std::string two = run_partitioned_workload(2);
  const std::string eight = run_partitioned_workload(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  // Sanity: the workload actually recorded something.
  EXPECT_NE(one.find("\"obs_test.det.counter\": "), std::string::npos);
  EXPECT_NE(one.find("\"obs_test.det.hist\""), std::string::npos);
}

TEST_F(MetricsTest, ConcurrentWritersAllLand) {
  auto& reg = Registry::global();
  reg.reset();
  const std::uint32_t id = reg.counter_id("obs_test.concurrent");
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) reg.counter_add(id, 1);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(reg.snapshot().counter("obs_test.concurrent")->value,
            kThreads * kPerThread);
}

HistogramSnapshot histogram_of(const std::vector<std::uint64_t>& values) {
  HistogramSnapshot h;
  h.buckets.assign(kHistogramBuckets, 0);
  for (const std::uint64_t v : values) {
    if (h.count == 0 || v < h.min) h.min = v;
    if (h.count == 0 || v > h.max) h.max = v;
    ++h.count;
    h.sum += v;
    ++h.buckets[histogram_bucket(v)];
  }
  return h;
}

TEST(HistogramQuantile, EmptyHistogramIsZero) {
  const HistogramSnapshot h = histogram_of({});
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramQuantile, ExtremesAreExact) {
  const HistogramSnapshot h = histogram_of({3, 100, 9000});
  EXPECT_EQ(h.quantile(0.0), 3.0);
  EXPECT_EQ(h.quantile(-1.0), 3.0);
  EXPECT_EQ(h.quantile(1.0), 9000.0);
  EXPECT_EQ(h.quantile(2.0), 9000.0);
}

TEST(HistogramQuantile, InterpolatesWithinABucket) {
  // 100 samples of the same value: every quantile must clamp to it —
  // bucket interpolation cannot wander outside the observed range.
  const HistogramSnapshot h =
      histogram_of(std::vector<std::uint64_t>(100, 700));
  EXPECT_EQ(h.quantile(0.50), 700.0);
  EXPECT_EQ(h.quantile(0.99), 700.0);
}

TEST(HistogramQuantile, SplitsMassAcrossBuckets) {
  // 10 small samples (bucket of 1) and 10 large ones (bucket of 1500):
  // the median sits at the boundary between the two buckets, p95 inside
  // the upper one, bounded by the observed max.
  std::vector<std::uint64_t> values(10, 1);
  values.insert(values.end(), 10, 1500);
  const HistogramSnapshot h = histogram_of(values);
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 1024.0);
  EXPECT_GT(p95, 1024.0);
  EXPECT_LE(p95, 1500.0);
  // Quantiles are monotone in q and never exceed the observed range.
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, 1500.0);
}

}  // namespace
}  // namespace silence::obs
