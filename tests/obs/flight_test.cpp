#include "obs/flight/flight.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "runner/json.h"

namespace silence::obs::flight {
namespace {

using silence::runner::Json;

TrialLabel test_label() {
  TrialLabel label;
  label.sweep = "flight_test";
  label.point_index = 2;
  label.trial_index = 7;
  return label;
}

Json test_spec() {
  Json spec = Json::object();
  spec.set("snr_db", 9.2);
  spec.set("trials", 5);
  return spec;
}

Event make_event(std::uint64_t u) {
  Event event;
  event.stage = "test.stage";
  event.symbol = static_cast<std::int32_t>(u);
  event.subcarrier = 3;
  event.a = 1.5;
  event.b = 2.5;
  event.u = u;
  return event;
}

TEST(FlightRecording, HoldsEventsInOrderBeforeOverflow) {
  TrialRecording rec(test_label(), 1, test_spec(), /*capacity=*/8);
  for (std::uint64_t i = 0; i < 5; ++i) rec.record(make_event(i));
  EXPECT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.evicted(), 0u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(events[i].u, i);
}

TEST(FlightRecording, OverflowEvictsOldestFirst) {
  TrialRecording rec(test_label(), 1, test_spec(), /*capacity=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) rec.record(make_event(i));
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.evicted(), 6u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // The newest 4 events survive, oldest-to-newest.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].u, 6 + i);
}

TEST(FlightRecording, TriggerIsIdempotentPerReason) {
  TrialRecording rec(test_label(), 1, test_spec());
  EXPECT_FALSE(rec.triggered());
  rec.trigger("crc_fail");
  rec.trigger("crc_fail");
  rec.trigger("false_alarm");
  EXPECT_TRUE(rec.triggered());
  ASSERT_EQ(rec.reasons().size(), 2u);
  EXPECT_EQ(rec.reasons()[0], "crc_fail");
  EXPECT_EQ(rec.reasons()[1], "false_alarm");
}

TEST(FlightRecording, ActiveSlotNestsAndRestores) {
  EXPECT_EQ(TrialRecording::active(), nullptr);
  {
    TrialRecording outer(test_label(), 1, test_spec());
    EXPECT_EQ(TrialRecording::active(), &outer);
    {
      TrialRecording inner(test_label(), 2, test_spec());
      EXPECT_EQ(TrialRecording::active(), &inner);
    }
    EXPECT_EQ(TrialRecording::active(), &outer);
  }
  EXPECT_EQ(TrialRecording::active(), nullptr);
}

#if SILENCE_OBS_ON
TEST(FlightRecording, MacroRecordsIntoActiveRecordingOnly) {
  // No active recording: the macro is a no-op, not a crash.
  FLIGHT_EVENT("macro.stage", 1, 2, 3.0, 4.0, 5);
  TrialRecording rec(test_label(), 1, test_spec());
  FLIGHT_EVENT("macro.stage", 1, 2, 3.0, 4.0, 5);
  ASSERT_EQ(rec.size(), 1u);
  const auto events = rec.events();
  EXPECT_STREQ(events[0].stage, "macro.stage");
  EXPECT_EQ(events[0].symbol, 1);
  EXPECT_EQ(events[0].subcarrier, 2);
  EXPECT_EQ(events[0].a, 3.0);
  EXPECT_EQ(events[0].b, 4.0);
  EXPECT_EQ(events[0].u, 5u);
}
#endif

TEST(FlightArtifact, SchemaCarriesEverythingForReplay) {
  TrialRecording rec(test_label(), 0xdeadbeefcafef00dULL, test_spec(),
                     /*capacity=*/4);
  for (std::uint64_t i = 0; i < 6; ++i) rec.record(make_event(i));
  rec.trigger("crc_fail");
  Json result = Json::object();
  result.set("crc_ok", false);
  rec.set_result(std::move(result));

  const Json artifact = rec.artifact();
  ASSERT_TRUE(artifact.is_object());
  EXPECT_EQ(artifact.find("kind")->as_string(), "cos_flight_recording");
  EXPECT_EQ(artifact.find("schema_version")->as_int(), kFlightSchemaVersion);
  EXPECT_EQ(artifact.find("sweep")->as_string(), "flight_test");
  EXPECT_EQ(artifact.find("point_index")->as_int(), 2);
  EXPECT_EQ(artifact.find("trial_index")->as_int(), 7);
  EXPECT_EQ(artifact.find("seed")->as_string(), "0xdeadbeefcafef00d");
  ASSERT_NE(artifact.find("spec"), nullptr);
  EXPECT_EQ(artifact.find("spec")->find("snr_db")->as_double(), 9.2);
  EXPECT_EQ(artifact.find("result")->find("crc_ok")->as_bool(), false);
  EXPECT_EQ(artifact.find("events_evicted")->as_int(), 2);

  const auto& anomalies = artifact.find("anomalies")->as_array();
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].as_string(), "crc_fail");

  const auto& events = artifact.find("events")->as_array();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].find("stage")->as_string(), "test.stage");
  EXPECT_EQ(events[0].find("u")->as_int(), 2);  // oldest surviving event
  EXPECT_EQ(events[0].find("a")->as_double(), 1.5);

  // The artifact must survive a serialize -> parse round trip untouched.
  const Json reparsed = Json::parse(artifact.dump());
  EXPECT_EQ(reparsed.dump_compact(), artifact.dump_compact());
}

TEST(FlightSeed, HexStringRoundTripsEveryPattern) {
  for (const std::uint64_t seed :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0x0123456789abcdef},
        ~std::uint64_t{0}}) {
    const std::string text = seed_to_string(seed);
    EXPECT_EQ(text.size(), 18u);  // "0x" + 16 hex digits
    EXPECT_EQ(seed_from_string(text), seed);
  }
  EXPECT_THROW(seed_from_string("12345"), std::runtime_error);
  EXPECT_THROW(seed_from_string("0xnope"), std::runtime_error);
  EXPECT_THROW(seed_from_string(""), std::runtime_error);
}

TEST(FlightCompare, DetectsEventAndResultDivergence) {
  TrialRecording a(test_label(), 42, test_spec());
  TrialRecording b(test_label(), 42, test_spec());
  a.record(make_event(1));
  b.record(make_event(1));

  std::string diff;
  EXPECT_TRUE(compare_artifacts(a.artifact(), b.artifact(), &diff));
  EXPECT_TRUE(diff.empty());

  // A one-bit double difference in an event payload must be caught.
  Event tweaked = make_event(2);
  a.record(make_event(2));
  tweaked.a = 1.5000000000000002;  // next representable double after 1.5
  b.record(tweaked);
  EXPECT_FALSE(compare_artifacts(a.artifact(), b.artifact(), &diff));
  EXPECT_NE(diff.find("event"), std::string::npos);

  // Result digests are compared too.
  TrialRecording c(test_label(), 42, test_spec());
  TrialRecording d(test_label(), 42, test_spec());
  Json r1 = Json::object();
  r1.set("crc_ok", true);
  Json r2 = Json::object();
  r2.set("crc_ok", false);
  c.set_result(std::move(r1));
  d.set_result(std::move(r2));
  EXPECT_FALSE(compare_artifacts(c.artifact(), d.artifact(), &diff));
  EXPECT_NE(diff.find("result"), std::string::npos);
}

TEST(FlightDumpRouter, NameSchemeIsCollisionFreeAndSanitized) {
  TrialLabel label;
  label.sweep = "fig10_detection.b";
  label.point_index = 3;
  label.trial_index = 12;
  EXPECT_EQ(DumpRouter::dump_name(label, 0xdeadbeefULL),
            "fig10_detection.b__p3__t12__s00000000deadbeef.flight.json");
  // Path separators and spaces cannot escape the dump directory.
  label.sweep = "../evil sweep";
  EXPECT_EQ(DumpRouter::dump_name(label, 1),
            "..-evil-sweep__p3__t12__s0000000000000001.flight.json");
}

TEST(FlightDumpRouter, RoutesTriggeredRecordingsUnderBudget) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "flight_router_test";
  std::filesystem::remove_all(dir);
  auto& router = DumpRouter::global();
  router.configure(dir.string(), /*limit=*/1);
  ASSERT_TRUE(router.enabled());

  // A clean recording never dumps.
  TrialRecording clean(test_label(), 5, test_spec());
  EXPECT_EQ(router.route(clean), "");
  EXPECT_EQ(router.dumped(), 0u);

  // A triggered one dumps with the canonical name...
  TrialRecording bad(test_label(), 6, test_spec());
  bad.record(make_event(0));
  bad.trigger("crc_fail");
  const std::string path = router.route(bad);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(std::filesystem::path(path).filename().string(),
            DumpRouter::dump_name(test_label(), 6));
  ASSERT_TRUE(std::filesystem::exists(path));
  std::ifstream in(path);
  std::stringstream text;
  text << in.rdbuf();
  const Json reread = Json::parse(text.str());
  EXPECT_EQ(reread.find("seed")->as_string(), "0x0000000000000006");

  // ...and the second exceeds --flight-limit and is suppressed.
  TrialRecording worse(test_label(), 7, test_spec());
  worse.trigger("crc_fail");
  EXPECT_EQ(router.route(worse), "");
  EXPECT_EQ(router.dumped(), 1u);
  EXPECT_EQ(router.suppressed(), 1u);

  router.disable();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace silence::obs::flight
