// Compile-level test of the SILENCE_OBS=OFF contract: with observability
// forced off for this translation unit the macros must expand to nothing —
// no registry calls, no argument evaluation, no interned names. This test
// lives in its own binary (obs_off_tests) so the process-wide registry is
// provably untouched by anything else.
#define SILENCE_OBS_FORCE_OFF 1
#include "obs/obs.h"

#include <gtest/gtest.h>

#include "obs/flight/flight.h"
#include "obs/health/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"

static_assert(SILENCE_OBS_ON == 0,
              "SILENCE_OBS_FORCE_OFF must disable instrumentation");

namespace silence::obs {
namespace {

int instrumented_hot_path(int x) {
  OBS_SPAN("off_test.hot");
  OBS_COUNT("off_test.calls");
  OBS_COUNT_N("off_test.items", x);
  OBS_HIST("off_test.value", x);
  OBS_GAUGE_SET("off_test.gauge", x);
  return x * 2;
}

TEST(ObsOffTest, MacrosDoNotEvaluateArguments) {
  int evaluations = 0;
  OBS_COUNT_N("off_test.side_effect", ++evaluations);
  OBS_HIST("off_test.side_effect_h", ++evaluations);
  OBS_GAUGE_SET("off_test.side_effect_g", ++evaluations);
  EXPECT_EQ(evaluations, 0);
}

TEST(ObsOffTest, InstrumentedCodeRegistersNothing) {
  EXPECT_EQ(instrumented_hot_path(21), 42);
  // The runtime library still links (benches call Registry/Tracer
  // unconditionally) but this binary's instrumentation never touched it.
  EXPECT_TRUE(Registry::global().snapshot().empty());
  EXPECT_EQ(Tracer::global().event_count(), 0u);
}

TEST(ObsOffTest, FlightEventCompilesOutAndDoesNotEvaluate) {
  // Even with an active recording, an OFF-mode FLIGHT_EVENT records
  // nothing and never evaluates its arguments.
  flight::TrialLabel label;
  label.sweep = "off_test";
  flight::TrialRecording rec(label, 1, runner::Json::object());
  int evaluations = 0;
  FLIGHT_EVENT("off_test.stage", ++evaluations, ++evaluations, ++evaluations,
               ++evaluations, ++evaluations);
  EXPECT_EQ(evaluations, 0);
  EXPECT_EQ(rec.size(), 0u);

  // The runtime classes stay fully functional for tooling (silence_diag
  // parses artifacts in OFF builds too): manual record() still works.
  flight::Event event;
  event.stage = "off_test.manual";
  rec.record(event);
  EXPECT_EQ(rec.size(), 1u);
  EXPECT_EQ(flight::TrialRecording::active(), &rec);
}

TEST(ObsOffTest, HealthMacrosCompileOutAndDoNotEvaluate) {
  int evaluations = 0;
  HEALTH_COUNT(kPlans);
  HEALTH_COUNT_N(kBitsPlanned, ++evaluations);
  HEALTH_WATERFALL(kSnr, ++evaluations, ++evaluations);
  HEALTH_SCORE(++evaluations != 0, ++evaluations, ++evaluations);
  HEALTH_NABLA_EVM(++evaluations);
  EXPECT_EQ(evaluations, 0);
  // The health registry runtime still links (the runner's sidecar
  // plumbing calls it unconditionally) but stays empty, so no
  // .health.json is ever written in an OFF build.
  EXPECT_TRUE(health::Registry::global().snapshot().empty());
  // Pure helpers keep working — tooling parses sidecars in OFF builds.
  EXPECT_EQ(health::quantize(0.5, 256.0), 128u);
  EXPECT_GE(health::quantize_score(2.0, 1.0), health::kScoreThreshold);
}

TEST(ObsOffTest, SpansAreScopelessStatements) {
  // OBS_SPAN must remain usable as a plain statement in OFF builds —
  // including inside an un-braced if, where a declaration would not
  // compile.
  if (instrumented_hot_path(1) == 2) OBS_SPAN("off_test.unbraced");
  SUCCEED();
}

}  // namespace
}  // namespace silence::obs
