// PHY signal-health registry (obs/health): determinism of the snapshot
// at any thread count, exactness of the quantization (including the
// decision clamp that makes the score histograms reproduce confusion
// counts), and the sidecar JSON round trip / merge.
#include "obs/health/health.h"

#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>
#include <limits>
#include <thread>
#include <vector>

#include "runner/json.h"

namespace silence::obs::health {
namespace {

#if SILENCE_OBS_ON

// Deterministic workload: `n` records spread over every cell family.
// Recording it from any number of threads in any interleaving must
// produce the same snapshot, because every accumulated quantity is an
// unsigned integer combined by sums (and min/max).
void record_workload(std::uint64_t lo, std::uint64_t hi) {
  auto& reg = Registry::global();
  for (std::uint64_t i = lo; i < hi; ++i) {
    const std::size_t sc = static_cast<std::size_t>(i % kSubcarriers);
    reg.count(Counter::kPlans, 1);
    reg.count(Counter::kBitsPlanned, i % 7);
    reg.waterfall(Waterfall::kSnr, sc, i % 1000);
    reg.waterfall(Waterfall::kEvm, sc, i % 300);
    reg.waterfall(Waterfall::kChanMag, sc, i % 2048);
    reg.score(i % 3 == 0 ? Truth::kSilent : Truth::kActive, sc,
              (i * 37) % 4096);
    reg.record_nabla_evm(i % 512);
  }
}

std::string snapshot_bytes(int threads, std::uint64_t total) {
  Registry::global().reset();
  std::vector<std::thread> pool;
  const std::uint64_t per = total / static_cast<std::uint64_t>(threads);
  for (int t = 0; t < threads; ++t) {
    const std::uint64_t lo = per * static_cast<std::uint64_t>(t);
    const std::uint64_t hi =
        t == threads - 1 ? total : lo + per;
    pool.emplace_back([lo, hi] { record_workload(lo, hi); });
  }
  for (std::thread& t : pool) t.join();
  const std::string bytes =
      health_json(Registry::global().snapshot()).dump();
  Registry::global().reset();
  return bytes;
}

TEST(HealthRegistry, SnapshotByteIdenticalAtAnyThreadCount) {
  const std::string one = snapshot_bytes(1, 6000);
  const std::string two = snapshot_bytes(2, 6000);
  const std::string eight = snapshot_bytes(8, 6000);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  EXPECT_NE(one.find("\"schema\": \"cos.health.v1\""), std::string::npos);
}

TEST(HealthRegistry, CountersAndCellsAccumulate) {
  auto& reg = Registry::global();
  reg.reset();
  reg.count(Counter::kMisses, 3);
  reg.count(Counter::kMisses, 2);
  reg.waterfall(Waterfall::kEvm, 7, 40);
  reg.waterfall(Waterfall::kEvm, 7, 10);
  reg.score(Truth::kSilent, 0, 100);
  const HealthSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters[static_cast<std::size_t>(Counter::kMisses)], 5u);
  const HealthHist& evm =
      snap.waterfalls[static_cast<std::size_t>(Waterfall::kEvm)][7];
  EXPECT_EQ(evm.count, 2u);
  EXPECT_EQ(evm.sum, 50u);
  EXPECT_EQ(evm.min, 10u);
  EXPECT_EQ(evm.max, 40u);
  EXPECT_EQ(
      snap.scores[static_cast<std::size_t>(Truth::kSilent)][0].count, 1u);
  EXPECT_FALSE(snap.empty());
  reg.reset();
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(HealthRegistry, OutOfRangeSubcarrierIgnored) {
  auto& reg = Registry::global();
  reg.reset();
  reg.waterfall(Waterfall::kSnr, kSubcarriers, 5);
  reg.score(Truth::kActive, kSubcarriers + 3, 5);
  EXPECT_TRUE(reg.snapshot().empty());
  reg.reset();
}

TEST(HealthJson, RoundTripIsExact) {
  auto& reg = Registry::global();
  reg.reset();
  record_workload(0, 997);
  const HealthSnapshot snap = reg.snapshot();
  reg.reset();
  const runner::Json doc = health_json(snap);
  const HealthSnapshot back = health_from_json(doc);
  EXPECT_EQ(back, snap);
  // And byte-stable through a re-render + reparse.
  EXPECT_EQ(health_json(back).dump(),
            runner::Json::parse(doc.dump()).dump());
}

TEST(HealthJson, MergeEqualsSingleRecording) {
  // Two "shards" recording disjoint halves, merged as JSON documents,
  // must be byte-identical to one process recording the whole workload —
  // the fabric byte-identity contract in miniature.
  auto& reg = Registry::global();
  reg.reset();
  record_workload(0, 1500);
  const runner::Json shard_a = health_json(reg.snapshot());
  reg.reset();
  record_workload(1500, 3000);
  const runner::Json shard_b = health_json(reg.snapshot());
  reg.reset();
  record_workload(0, 3000);
  const std::string whole = health_json(reg.snapshot()).dump();
  reg.reset();
  EXPECT_EQ(merge_health_json({shard_a, shard_b}).dump(), whole);
  // Merge order must not matter.
  EXPECT_EQ(merge_health_json({shard_b, shard_a}).dump(), whole);
}

#endif  // SILENCE_OBS_ON

TEST(HealthQuantize, RoundsDownAndClamps) {
  EXPECT_EQ(quantize(0.0, kEvmScale), 0u);
  EXPECT_EQ(quantize(-1.5, kEvmScale), 0u);
  EXPECT_EQ(quantize(std::nan(""), kEvmScale), 0u);
  EXPECT_EQ(quantize(1.0, kEvmScale), 4096u);
  EXPECT_EQ(quantize(0.25, kSnrScale), 64u);
  // Round-down, not round-to-nearest.
  EXPECT_EQ(quantize(0.9999, 256.0), 255u);
  // Cap at 2^52: exact in a double-typed JSON cell.
  const std::uint64_t cap = std::uint64_t{1} << 52;
  EXPECT_EQ(quantize(1e300, 256.0), cap);
  EXPECT_EQ(quantize(std::numeric_limits<double>::infinity(), 1.0), cap);
}

TEST(HealthQuantize, ScoreCarriesTheDecision) {
  // Declared silent (energy < threshold) clamps to <= 255; declared
  // active clamps to >= 256 — even when floating-point rounding of the
  // ratio would land on the wrong side of the boundary.
  EXPECT_LT(quantize_score(0.0, 1.0), kScoreThreshold);
  EXPECT_LT(quantize_score(0.999999, 1.0), kScoreThreshold);
  // A ratio that rounds to exactly 256/256 but whose energy is below
  // the threshold must still land in the silent half.
  EXPECT_LT(quantize_score(std::nextafter(1.0, 0.0), 1.0),
            kScoreThreshold);
  EXPECT_GE(quantize_score(1.0, 1.0), kScoreThreshold);
  EXPECT_GE(quantize_score(1.0000001, 1.0), kScoreThreshold);
  // Plain fixed-point away from the boundary.
  EXPECT_EQ(quantize_score(0.5, 1.0), 128u);
  EXPECT_EQ(quantize_score(4.0, 1.0), 1024u);
  // Degenerate threshold 0: `energy < threshold` is always false, so
  // every cell is declared active (matching detect_silences).
  EXPECT_GE(quantize_score(0.5, 0.0), kScoreThreshold);
  EXPECT_GE(quantize_score(0.0, 0.0), kScoreThreshold);
}

TEST(HealthJson, EmptySnapshotIsEmptyAndParses) {
  const HealthSnapshot empty{};
  EXPECT_TRUE(empty.empty());
  const runner::Json doc = health_json(empty);
  EXPECT_TRUE(health_from_json(doc).empty());
}

TEST(HealthJson, MalformedDocumentThrows) {
  EXPECT_THROW(health_from_json(runner::Json::parse("{}")),
               std::runtime_error);
  EXPECT_THROW(
      health_from_json(runner::Json::parse("{\"schema\": \"bogus\"}")),
      std::runtime_error);
}

}  // namespace
}  // namespace silence::obs::health
