// Trace export: the rendered file must be valid JSON, timestamps must be
// monotonic, and every B event must have a matching E on the same thread
// track — including spans still open when the trace is rendered.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace silence::obs {
namespace {

// Minimal recursive-descent JSON validator: returns true iff `text` is a
// single well-formed JSON value with nothing but whitespace after it.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool members(char close, bool keyed) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == close) {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (keyed) {
        if (!string()) return false;
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
        skip_ws();
      }
      if (!value()) return false;
      skip_ws();
      if (pos_ >= s_.size()) return false;
      const char c = s_[pos_++];
      if (c == close) return true;
      if (c != ',') return false;
    }
  }
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': ++pos_; return members('}', true);
      case '[': ++pos_; return members(']', false);
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

struct ParsedEvent {
  std::string name;
  char phase = '?';
  unsigned tid = 0;
  double ts_us = 0.0;
};

// The emitter writes one event per line in a fixed format; scanning lines
// keeps the test independent of a full JSON parser.
std::vector<ParsedEvent> parse_events(const std::string& json) {
  std::vector<ParsedEvent> events;
  std::size_t pos = 0;
  while ((pos = json.find("{\"name\": \"", pos)) != std::string::npos) {
    char name[128];
    char phase;
    unsigned tid;
    double ts;
    if (std::sscanf(json.c_str() + pos,
                    "{\"name\": \"%127[^\"]\", \"cat\": \"cos\", "
                    "\"ph\": \"%c\", \"pid\": 1, \"tid\": %u, \"ts\": %lf}",
                    name, &phase, &tid, &ts) == 4) {
      events.push_back({name, phase, tid, ts});
    }
    ++pos;
  }
  return events;
}

// Each tid's B/E events must nest like parentheses; returns false on a
// stray E or a B left open.
bool spans_balanced(const std::vector<ParsedEvent>& events) {
  std::vector<std::pair<unsigned, std::vector<std::string>>> stacks;
  for (const ParsedEvent& e : events) {
    std::vector<std::string>* stack = nullptr;
    for (auto& [tid, s] : stacks) {
      if (tid == e.tid) stack = &s;
    }
    if (stack == nullptr) {
      stack = &stacks.emplace_back(e.tid, std::vector<std::string>{}).second;
    }
    if (e.phase == 'B') {
      stack->push_back(e.name);
    } else if (e.phase == 'E') {
      if (stack->empty() || stack->back() != e.name) return false;
      stack->pop_back();
    } else {
      return false;
    }
  }
  for (const auto& [tid, stack] : stacks) {
    if (!stack.empty()) return false;
  }
  return true;
}

TEST(TraceTest, InactiveTracerRecordsNothing) {
  Tracer& tracer = Tracer::global();
  tracer.start();
  tracer.stop();
  tracer.span_begin("obs_test.ignored");
  tracer.span_end("obs_test.ignored");
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(TraceTest, RendersValidJsonWithMetricsEmbedded) {
  Tracer& tracer = Tracer::global();
  tracer.start();
  tracer.span_begin("obs_test.outer");
  tracer.span_begin("obs_test.inner");
  tracer.span_end("obs_test.inner");
  tracer.span_end("obs_test.outer");
  const std::string json = tracer.to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"metrics\": "), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ns\""), std::string::npos);
}

TEST(TraceTest, TimestampsMonotonicAndPairsMatched) {
  Tracer& tracer = Tracer::global();
  tracer.start();
  tracer.span_begin("obs_test.a");
  tracer.span_begin("obs_test.b");
  tracer.span_end("obs_test.b");
  tracer.span_begin("obs_test.c");
  tracer.span_end("obs_test.c");
  tracer.span_end("obs_test.a");
  std::thread([&] {
    tracer.span_begin("obs_test.other_thread");
    tracer.span_end("obs_test.other_thread");
  }).join();
  const std::string json = tracer.to_json();
  const std::vector<ParsedEvent> events = parse_events(json);
  ASSERT_EQ(events.size(), 8u);  // 4 spans, B+E each
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_us, events[i - 1].ts_us) << "event " << i;
  }
  EXPECT_TRUE(spans_balanced(events));
  // The off-main-thread span landed on its own track.
  unsigned main_tid = events.front().tid;
  bool saw_other_tid = false;
  for (const ParsedEvent& e : events) {
    if (e.name == "obs_test.other_thread") {
      saw_other_tid = true;
      EXPECT_NE(e.tid, main_tid);
    }
  }
  EXPECT_TRUE(saw_other_tid);
}

TEST(TraceTest, OpenSpansGetSyntheticCloses) {
  Tracer& tracer = Tracer::global();
  tracer.start();
  tracer.span_begin("obs_test.never_closed");
  tracer.span_begin("obs_test.also_open");
  const std::string json = tracer.to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  const std::vector<ParsedEvent> events = parse_events(json);
  ASSERT_EQ(events.size(), 4u);  // two B's + two synthetic E's
  EXPECT_TRUE(spans_balanced(events));
}

TEST(TraceTest, StrayEndEventsAreDropped) {
  Tracer& tracer = Tracer::global();
  tracer.start();
  tracer.span_end("obs_test.stray");
  tracer.span_begin("obs_test.real");
  tracer.span_end("obs_test.real");
  const std::string json = tracer.to_json();
  const std::vector<ParsedEvent> events = parse_events(json);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(spans_balanced(events));
  EXPECT_EQ(events[0].name, "obs_test.real");
}

TEST(TraceTest, WriteCreatesParentDirectories) {
  Tracer& tracer = Tracer::global();
  tracer.start();
  tracer.span_begin("obs_test.file_span");
  tracer.span_end("obs_test.file_span");
  const std::string path =
      ::testing::TempDir() + "obs_trace_test/nested/out.trace.json";
  tracer.write(path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
  std::fclose(f);
  EXPECT_TRUE(JsonValidator(contents).valid());
  EXPECT_NE(contents.find("obs_test.file_span"), std::string::npos);
}

TEST(TraceTest, SimSessionClaimIsExclusivePerCapture) {
  Tracer& tracer = Tracer::global();
  tracer.stop();
  // No active capture: nothing to claim.
  EXPECT_FALSE(tracer.claim_sim_session());
  tracer.start();
  EXPECT_TRUE(tracer.claim_sim_session());
  EXPECT_FALSE(tracer.claim_sim_session());  // second claimant loses
  tracer.start();                            // a new capture resets the claim
  EXPECT_TRUE(tracer.claim_sim_session());
}

TEST(TraceTest, SimTracksRenderUnderPidTwo) {
  Tracer& tracer = Tracer::global();
  tracer.start();
  ASSERT_TRUE(tracer.claim_sim_session());
  const std::uint32_t medium = tracer.sim_track("medium");
  const std::uint32_t sta = tracer.sim_track("STA 0");
  EXPECT_NE(medium, sta);
  EXPECT_EQ(tracer.sim_track("medium"), medium);  // interned, not duplicated
  tracer.sim_begin(medium, "medium.busy", 100.0);
  tracer.sim_end(medium, "medium.busy", 200.0);
  tracer.sim_begin(sta, "mac.backoff", 0.0, "{\"counter\": 3}");
  tracer.sim_end(sta, "mac.backoff", 100.0);
  tracer.sim_instant(sta, "mac.win", 100.0);
  EXPECT_EQ(tracer.sim_event_count(), 5u);
  const std::string json = tracer.to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  // pid-2 track metadata names the simulation process and both tracks.
  EXPECT_NE(json.find("\"net-sim\""), std::string::npos);
  EXPECT_NE(json.find("\"medium\""), std::string::npos);
  EXPECT_NE(json.find("\"STA 0\""), std::string::npos);
  // Sim events carry the "net" category and deterministic timestamps.
  EXPECT_NE(json.find("\"cat\": \"net\""), std::string::npos);
  EXPECT_NE(json.find("\"mac.win\""), std::string::npos);
  EXPECT_NE(json.find("{\"counter\": 3}"), std::string::npos);
}

TEST(TraceTest, OpenSimSpansGetSyntheticCloses) {
  Tracer& tracer = Tracer::global();
  tracer.start();
  ASSERT_TRUE(tracer.claim_sim_session());
  const std::uint32_t track = tracer.sim_track("STA 0");
  tracer.sim_begin(track, "mac.backoff", 0.0);
  tracer.sim_begin(track, "mac.tx", 50.0);  // both left open
  const std::string json = tracer.to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  // Every sim B has a matching E on the same track.
  std::size_t begins = 0, ends = 0, pos = 0;
  while ((pos = json.find("\"cat\": \"net\", \"ph\": \"B\"", pos)) !=
         std::string::npos) {
    ++begins;
    ++pos;
  }
  pos = 0;
  while ((pos = json.find("\"cat\": \"net\", \"ph\": \"E\"", pos)) !=
         std::string::npos) {
    ++ends;
    ++pos;
  }
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(begins, ends);
}

TEST(TraceTest, InactiveTracerIgnoresSimEvents) {
  Tracer& tracer = Tracer::global();
  tracer.start();
  tracer.stop();
  EXPECT_FALSE(tracer.claim_sim_session());
  const std::uint32_t track = tracer.sim_track("STA 0");
  tracer.sim_begin(track, "mac.tx", 0.0);
  tracer.sim_end(track, "mac.tx", 10.0);
  EXPECT_EQ(tracer.sim_event_count(), 0u);
}

#if SILENCE_OBS_ON
// The macro path: OBS_SPAN must emit a B/E pair on the tracer AND record
// a `<name>.ns` histogram in the registry.
TEST(TraceTest, ObsSpanMacroEmitsSpanAndHistogram) {
  Registry::global().reset();
  Tracer& tracer = Tracer::global();
  tracer.start();
  {
    OBS_SPAN("obs_test.macro_span");
  }
  const std::string json = tracer.to_json();
  const std::vector<ParsedEvent> events = parse_events(json);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "obs_test.macro_span");
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].phase, 'E');
  const MetricsSnapshot snap = Registry::global().snapshot();
  const HistogramSnapshot* h = snap.histogram("obs_test.macro_span.ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
}
#endif  // SILENCE_OBS_ON

}  // namespace
}  // namespace silence::obs
