# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/common_tests[1]_include.cmake")
include("/root/repo/build-review/tests/dsp_tests[1]_include.cmake")
include("/root/repo/build-review/tests/phy_tests[1]_include.cmake")
include("/root/repo/build-review/tests/channel_tests[1]_include.cmake")
include("/root/repo/build-review/tests/core_tests[1]_include.cmake")
include("/root/repo/build-review/tests/mac_tests[1]_include.cmake")
include("/root/repo/build-review/tests/runner_tests[1]_include.cmake")
include("/root/repo/build-review/tests/sim_tests[1]_include.cmake")
include("/root/repo/build-review/tests/integration_tests[1]_include.cmake")
include("/root/repo/build-review/tests/baselines_tests[1]_include.cmake")
include("/root/repo/build-review/tests/property_tests[1]_include.cmake")
include("/root/repo/build-review/tests/xtech_tests[1]_include.cmake")
