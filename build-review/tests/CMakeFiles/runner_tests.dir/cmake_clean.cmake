file(REMOVE_RECURSE
  "CMakeFiles/runner_tests.dir/runner/determinism_test.cpp.o"
  "CMakeFiles/runner_tests.dir/runner/determinism_test.cpp.o.d"
  "CMakeFiles/runner_tests.dir/runner/executor_test.cpp.o"
  "CMakeFiles/runner_tests.dir/runner/executor_test.cpp.o.d"
  "CMakeFiles/runner_tests.dir/runner/json_test.cpp.o"
  "CMakeFiles/runner_tests.dir/runner/json_test.cpp.o.d"
  "CMakeFiles/runner_tests.dir/runner/seed_test.cpp.o"
  "CMakeFiles/runner_tests.dir/runner/seed_test.cpp.o.d"
  "runner_tests"
  "runner_tests.pdb"
  "runner_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runner_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
