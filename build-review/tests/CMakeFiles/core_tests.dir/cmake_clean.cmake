file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/control_framing_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/control_framing_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/control_rate_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/control_rate_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/cos_link_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/cos_link_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/energy_detector_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/energy_detector_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/evd_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/evd_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/evm_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/evm_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/feedback_transport_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/feedback_transport_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/interval_code_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/interval_code_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/silence_plan_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/silence_plan_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/subcarrier_selection_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/subcarrier_selection_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
