file(REMOVE_RECURSE
  "CMakeFiles/mac_tests.dir/mac/aggregation_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/aggregation_test.cpp.o.d"
  "CMakeFiles/mac_tests.dir/mac/backoff_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/backoff_test.cpp.o.d"
  "CMakeFiles/mac_tests.dir/mac/contention_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/contention_test.cpp.o.d"
  "CMakeFiles/mac_tests.dir/mac/coordination_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/coordination_test.cpp.o.d"
  "CMakeFiles/mac_tests.dir/mac/frame_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/frame_test.cpp.o.d"
  "CMakeFiles/mac_tests.dir/mac/timing_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/timing_test.cpp.o.d"
  "mac_tests"
  "mac_tests.pdb"
  "mac_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
