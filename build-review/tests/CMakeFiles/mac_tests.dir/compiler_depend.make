# Empty compiler generated dependencies file for mac_tests.
# This may be replaced when dependencies are built.
