file(REMOVE_RECURSE
  "CMakeFiles/phy_tests.dir/phy/convolutional_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/convolutional_test.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/interleaver_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/interleaver_test.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/loopback_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/loopback_test.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/modulation_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/modulation_test.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/ofdm_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/ofdm_test.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/params_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/params_test.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/pilots_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/pilots_test.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/preamble_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/preamble_test.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/puncture_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/puncture_test.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/receiver_internals_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/receiver_internals_test.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/scrambler_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/scrambler_test.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/signal_field_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/signal_field_test.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/sync_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/sync_test.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/viterbi_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/viterbi_test.cpp.o.d"
  "phy_tests"
  "phy_tests.pdb"
  "phy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
