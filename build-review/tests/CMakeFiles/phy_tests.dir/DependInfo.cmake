
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/phy/convolutional_test.cpp" "tests/CMakeFiles/phy_tests.dir/phy/convolutional_test.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/convolutional_test.cpp.o.d"
  "/root/repo/tests/phy/interleaver_test.cpp" "tests/CMakeFiles/phy_tests.dir/phy/interleaver_test.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/interleaver_test.cpp.o.d"
  "/root/repo/tests/phy/loopback_test.cpp" "tests/CMakeFiles/phy_tests.dir/phy/loopback_test.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/loopback_test.cpp.o.d"
  "/root/repo/tests/phy/modulation_test.cpp" "tests/CMakeFiles/phy_tests.dir/phy/modulation_test.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/modulation_test.cpp.o.d"
  "/root/repo/tests/phy/ofdm_test.cpp" "tests/CMakeFiles/phy_tests.dir/phy/ofdm_test.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/ofdm_test.cpp.o.d"
  "/root/repo/tests/phy/params_test.cpp" "tests/CMakeFiles/phy_tests.dir/phy/params_test.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/params_test.cpp.o.d"
  "/root/repo/tests/phy/pilots_test.cpp" "tests/CMakeFiles/phy_tests.dir/phy/pilots_test.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/pilots_test.cpp.o.d"
  "/root/repo/tests/phy/preamble_test.cpp" "tests/CMakeFiles/phy_tests.dir/phy/preamble_test.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/preamble_test.cpp.o.d"
  "/root/repo/tests/phy/puncture_test.cpp" "tests/CMakeFiles/phy_tests.dir/phy/puncture_test.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/puncture_test.cpp.o.d"
  "/root/repo/tests/phy/receiver_internals_test.cpp" "tests/CMakeFiles/phy_tests.dir/phy/receiver_internals_test.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/receiver_internals_test.cpp.o.d"
  "/root/repo/tests/phy/scrambler_test.cpp" "tests/CMakeFiles/phy_tests.dir/phy/scrambler_test.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/scrambler_test.cpp.o.d"
  "/root/repo/tests/phy/signal_field_test.cpp" "tests/CMakeFiles/phy_tests.dir/phy/signal_field_test.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/signal_field_test.cpp.o.d"
  "/root/repo/tests/phy/sync_test.cpp" "tests/CMakeFiles/phy_tests.dir/phy/sync_test.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/sync_test.cpp.o.d"
  "/root/repo/tests/phy/viterbi_test.cpp" "tests/CMakeFiles/phy_tests.dir/phy/viterbi_test.cpp.o" "gcc" "tests/CMakeFiles/phy_tests.dir/phy/viterbi_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/cos_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dsp/CMakeFiles/cos_dsp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/phy/CMakeFiles/cos_phy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/channel/CMakeFiles/cos_channel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/cos_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/cos_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mac/CMakeFiles/cos_mac.dir/DependInfo.cmake"
  "/root/repo/build-review/src/baselines/CMakeFiles/cos_baselines.dir/DependInfo.cmake"
  "/root/repo/build-review/src/xtech/CMakeFiles/cos_xtech.dir/DependInfo.cmake"
  "/root/repo/build-review/src/runner/CMakeFiles/cos_runner.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
