# Empty compiler generated dependencies file for xtech_tests.
# This may be replaced when dependencies are built.
