file(REMOVE_RECURSE
  "CMakeFiles/xtech_tests.dir/xtech/narrowband_test.cpp.o"
  "CMakeFiles/xtech_tests.dir/xtech/narrowband_test.cpp.o.d"
  "xtech_tests"
  "xtech_tests.pdb"
  "xtech_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtech_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
