# Empty dependencies file for channel_feedback.
# This may be replaced when dependencies are built.
