file(REMOVE_RECURSE
  "CMakeFiles/channel_feedback.dir/channel_feedback.cpp.o"
  "CMakeFiles/channel_feedback.dir/channel_feedback.cpp.o.d"
  "channel_feedback"
  "channel_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
