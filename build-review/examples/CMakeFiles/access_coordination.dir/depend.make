# Empty dependencies file for access_coordination.
# This may be replaced when dependencies are built.
