file(REMOVE_RECURSE
  "CMakeFiles/access_coordination.dir/access_coordination.cpp.o"
  "CMakeFiles/access_coordination.dir/access_coordination.cpp.o.d"
  "access_coordination"
  "access_coordination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
