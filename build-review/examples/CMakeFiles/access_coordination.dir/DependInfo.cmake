
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/access_coordination.cpp" "examples/CMakeFiles/access_coordination.dir/access_coordination.cpp.o" "gcc" "examples/CMakeFiles/access_coordination.dir/access_coordination.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/cos_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dsp/CMakeFiles/cos_dsp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/phy/CMakeFiles/cos_phy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/channel/CMakeFiles/cos_channel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/cos_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/cos_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mac/CMakeFiles/cos_mac.dir/DependInfo.cmake"
  "/root/repo/build-review/src/baselines/CMakeFiles/cos_baselines.dir/DependInfo.cmake"
  "/root/repo/build-review/src/xtech/CMakeFiles/cos_xtech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
