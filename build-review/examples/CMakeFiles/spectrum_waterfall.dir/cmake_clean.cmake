file(REMOVE_RECURSE
  "CMakeFiles/spectrum_waterfall.dir/spectrum_waterfall.cpp.o"
  "CMakeFiles/spectrum_waterfall.dir/spectrum_waterfall.cpp.o.d"
  "spectrum_waterfall"
  "spectrum_waterfall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrum_waterfall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
