# Empty dependencies file for spectrum_waterfall.
# This may be replaced when dependencies are built.
