# Empty dependencies file for cos_sim_cli.
# This may be replaced when dependencies are built.
