file(REMOVE_RECURSE
  "CMakeFiles/cos_sim_cli.dir/cos_sim_cli.cpp.o"
  "CMakeFiles/cos_sim_cli.dir/cos_sim_cli.cpp.o.d"
  "cos_sim_cli"
  "cos_sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cos_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
