file(REMOVE_RECURSE
  "CMakeFiles/crosstech_beacon.dir/crosstech_beacon.cpp.o"
  "CMakeFiles/crosstech_beacon.dir/crosstech_beacon.cpp.o.d"
  "crosstech_beacon"
  "crosstech_beacon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crosstech_beacon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
