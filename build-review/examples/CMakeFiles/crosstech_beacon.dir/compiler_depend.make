# Empty compiler generated dependencies file for crosstech_beacon.
# This may be replaced when dependencies are built.
