file(REMOVE_RECURSE
  "CMakeFiles/fig03_decoder_ber.dir/fig03_decoder_ber.cpp.o"
  "CMakeFiles/fig03_decoder_ber.dir/fig03_decoder_ber.cpp.o.d"
  "fig03_decoder_ber"
  "fig03_decoder_ber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_decoder_ber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
