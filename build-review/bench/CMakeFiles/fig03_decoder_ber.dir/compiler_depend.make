# Empty compiler generated dependencies file for fig03_decoder_ber.
# This may be replaced when dependencies are built.
