file(REMOVE_RECURSE
  "CMakeFiles/fig05_evm_fading.dir/fig05_evm_fading.cpp.o"
  "CMakeFiles/fig05_evm_fading.dir/fig05_evm_fading.cpp.o.d"
  "fig05_evm_fading"
  "fig05_evm_fading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_evm_fading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
