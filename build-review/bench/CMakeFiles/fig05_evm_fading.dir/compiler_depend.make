# Empty compiler generated dependencies file for fig05_evm_fading.
# This may be replaced when dependencies are built.
