# Empty dependencies file for fig07_temporal.
# This may be replaced when dependencies are built.
