file(REMOVE_RECURSE
  "CMakeFiles/fig07_temporal.dir/fig07_temporal.cpp.o"
  "CMakeFiles/fig07_temporal.dir/fig07_temporal.cpp.o.d"
  "fig07_temporal"
  "fig07_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
