file(REMOVE_RECURSE
  "CMakeFiles/fig10_detection.dir/fig10_detection.cpp.o"
  "CMakeFiles/fig10_detection.dir/fig10_detection.cpp.o.d"
  "fig10_detection"
  "fig10_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
