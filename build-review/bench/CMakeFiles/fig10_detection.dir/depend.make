# Empty dependencies file for fig10_detection.
# This may be replaced when dependencies are built.
