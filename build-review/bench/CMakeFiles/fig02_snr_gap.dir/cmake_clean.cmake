file(REMOVE_RECURSE
  "CMakeFiles/fig02_snr_gap.dir/fig02_snr_gap.cpp.o"
  "CMakeFiles/fig02_snr_gap.dir/fig02_snr_gap.cpp.o.d"
  "fig02_snr_gap"
  "fig02_snr_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_snr_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
