# Empty dependencies file for fig02_snr_gap.
# This may be replaced when dependencies are built.
