file(REMOVE_RECURSE
  "CMakeFiles/throughput_curves.dir/throughput_curves.cpp.o"
  "CMakeFiles/throughput_curves.dir/throughput_curves.cpp.o.d"
  "throughput_curves"
  "throughput_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throughput_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
