# Empty dependencies file for throughput_curves.
# This may be replaced when dependencies are built.
