file(REMOVE_RECURSE
  "CMakeFiles/baseline_flashback.dir/baseline_flashback.cpp.o"
  "CMakeFiles/baseline_flashback.dir/baseline_flashback.cpp.o.d"
  "baseline_flashback"
  "baseline_flashback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_flashback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
