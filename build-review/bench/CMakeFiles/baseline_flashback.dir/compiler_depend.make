# Empty compiler generated dependencies file for baseline_flashback.
# This may be replaced when dependencies are built.
