file(REMOVE_RECURSE
  "CMakeFiles/perf_phy.dir/perf_phy.cpp.o"
  "CMakeFiles/perf_phy.dir/perf_phy.cpp.o.d"
  "perf_phy"
  "perf_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
