# Empty dependencies file for perf_phy.
# This may be replaced when dependencies are built.
