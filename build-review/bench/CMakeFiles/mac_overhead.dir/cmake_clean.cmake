file(REMOVE_RECURSE
  "CMakeFiles/mac_overhead.dir/mac_overhead.cpp.o"
  "CMakeFiles/mac_overhead.dir/mac_overhead.cpp.o.d"
  "mac_overhead"
  "mac_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
