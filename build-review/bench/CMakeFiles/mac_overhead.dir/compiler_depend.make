# Empty compiler generated dependencies file for mac_overhead.
# This may be replaced when dependencies are built.
