file(REMOVE_RECURSE
  "CMakeFiles/ablation_studies.dir/ablation_studies.cpp.o"
  "CMakeFiles/ablation_studies.dir/ablation_studies.cpp.o.d"
  "ablation_studies"
  "ablation_studies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
