# Empty compiler generated dependencies file for ablation_studies.
# This may be replaced when dependencies are built.
