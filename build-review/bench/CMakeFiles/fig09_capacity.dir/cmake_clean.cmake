file(REMOVE_RECURSE
  "CMakeFiles/fig09_capacity.dir/fig09_capacity.cpp.o"
  "CMakeFiles/fig09_capacity.dir/fig09_capacity.cpp.o.d"
  "fig09_capacity"
  "fig09_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
