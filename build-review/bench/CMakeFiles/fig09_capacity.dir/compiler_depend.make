# Empty compiler generated dependencies file for fig09_capacity.
# This may be replaced when dependencies are built.
