# Empty compiler generated dependencies file for fig06_error_pattern.
# This may be replaced when dependencies are built.
