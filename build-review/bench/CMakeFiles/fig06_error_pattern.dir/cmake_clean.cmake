file(REMOVE_RECURSE
  "CMakeFiles/fig06_error_pattern.dir/fig06_error_pattern.cpp.o"
  "CMakeFiles/fig06_error_pattern.dir/fig06_error_pattern.cpp.o.d"
  "fig06_error_pattern"
  "fig06_error_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_error_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
