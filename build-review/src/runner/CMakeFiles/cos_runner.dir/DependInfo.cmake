
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runner/executor.cpp" "src/runner/CMakeFiles/cos_runner.dir/executor.cpp.o" "gcc" "src/runner/CMakeFiles/cos_runner.dir/executor.cpp.o.d"
  "/root/repo/src/runner/json.cpp" "src/runner/CMakeFiles/cos_runner.dir/json.cpp.o" "gcc" "src/runner/CMakeFiles/cos_runner.dir/json.cpp.o.d"
  "/root/repo/src/runner/seed.cpp" "src/runner/CMakeFiles/cos_runner.dir/seed.cpp.o" "gcc" "src/runner/CMakeFiles/cos_runner.dir/seed.cpp.o.d"
  "/root/repo/src/runner/sinks.cpp" "src/runner/CMakeFiles/cos_runner.dir/sinks.cpp.o" "gcc" "src/runner/CMakeFiles/cos_runner.dir/sinks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
