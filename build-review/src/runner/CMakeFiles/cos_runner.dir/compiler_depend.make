# Empty compiler generated dependencies file for cos_runner.
# This may be replaced when dependencies are built.
