file(REMOVE_RECURSE
  "CMakeFiles/cos_runner.dir/executor.cpp.o"
  "CMakeFiles/cos_runner.dir/executor.cpp.o.d"
  "CMakeFiles/cos_runner.dir/json.cpp.o"
  "CMakeFiles/cos_runner.dir/json.cpp.o.d"
  "CMakeFiles/cos_runner.dir/seed.cpp.o"
  "CMakeFiles/cos_runner.dir/seed.cpp.o.d"
  "CMakeFiles/cos_runner.dir/sinks.cpp.o"
  "CMakeFiles/cos_runner.dir/sinks.cpp.o.d"
  "libcos_runner.a"
  "libcos_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cos_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
