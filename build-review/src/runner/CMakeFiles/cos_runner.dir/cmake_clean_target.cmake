file(REMOVE_RECURSE
  "libcos_runner.a"
)
