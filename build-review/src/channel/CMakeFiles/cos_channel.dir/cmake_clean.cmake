file(REMOVE_RECURSE
  "CMakeFiles/cos_channel.dir/fading.cpp.o"
  "CMakeFiles/cos_channel.dir/fading.cpp.o.d"
  "CMakeFiles/cos_channel.dir/impairments.cpp.o"
  "CMakeFiles/cos_channel.dir/impairments.cpp.o.d"
  "CMakeFiles/cos_channel.dir/interference.cpp.o"
  "CMakeFiles/cos_channel.dir/interference.cpp.o.d"
  "libcos_channel.a"
  "libcos_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cos_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
