file(REMOVE_RECURSE
  "libcos_channel.a"
)
