# Empty dependencies file for cos_channel.
# This may be replaced when dependencies are built.
