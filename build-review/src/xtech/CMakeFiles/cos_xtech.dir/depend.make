# Empty dependencies file for cos_xtech.
# This may be replaced when dependencies are built.
