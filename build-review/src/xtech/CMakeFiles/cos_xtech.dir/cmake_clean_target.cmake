file(REMOVE_RECURSE
  "libcos_xtech.a"
)
