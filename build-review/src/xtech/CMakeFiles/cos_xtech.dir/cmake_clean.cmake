file(REMOVE_RECURSE
  "CMakeFiles/cos_xtech.dir/narrowband.cpp.o"
  "CMakeFiles/cos_xtech.dir/narrowband.cpp.o.d"
  "libcos_xtech.a"
  "libcos_xtech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cos_xtech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
