file(REMOVE_RECURSE
  "CMakeFiles/cos_dsp.dir/fft.cpp.o"
  "CMakeFiles/cos_dsp.dir/fft.cpp.o.d"
  "libcos_dsp.a"
  "libcos_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cos_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
