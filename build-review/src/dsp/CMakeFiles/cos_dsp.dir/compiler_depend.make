# Empty compiler generated dependencies file for cos_dsp.
# This may be replaced when dependencies are built.
