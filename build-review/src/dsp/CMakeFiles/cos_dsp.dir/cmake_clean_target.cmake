file(REMOVE_RECURSE
  "libcos_dsp.a"
)
