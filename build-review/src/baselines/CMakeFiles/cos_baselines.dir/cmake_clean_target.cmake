file(REMOVE_RECURSE
  "libcos_baselines.a"
)
