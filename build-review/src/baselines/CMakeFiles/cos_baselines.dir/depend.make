# Empty dependencies file for cos_baselines.
# This may be replaced when dependencies are built.
