file(REMOVE_RECURSE
  "CMakeFiles/cos_baselines.dir/flashback.cpp.o"
  "CMakeFiles/cos_baselines.dir/flashback.cpp.o.d"
  "libcos_baselines.a"
  "libcos_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cos_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
