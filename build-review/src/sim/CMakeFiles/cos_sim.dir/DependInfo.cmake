
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/link.cpp" "src/sim/CMakeFiles/cos_sim.dir/link.cpp.o" "gcc" "src/sim/CMakeFiles/cos_sim.dir/link.cpp.o.d"
  "/root/repo/src/sim/session.cpp" "src/sim/CMakeFiles/cos_sim.dir/session.cpp.o" "gcc" "src/sim/CMakeFiles/cos_sim.dir/session.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/sim/CMakeFiles/cos_sim.dir/stats.cpp.o" "gcc" "src/sim/CMakeFiles/cos_sim.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/cos_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dsp/CMakeFiles/cos_dsp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/phy/CMakeFiles/cos_phy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/channel/CMakeFiles/cos_channel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/cos_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
