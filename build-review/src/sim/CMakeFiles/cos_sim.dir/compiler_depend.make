# Empty compiler generated dependencies file for cos_sim.
# This may be replaced when dependencies are built.
