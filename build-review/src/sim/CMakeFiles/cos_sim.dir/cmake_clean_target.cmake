file(REMOVE_RECURSE
  "libcos_sim.a"
)
