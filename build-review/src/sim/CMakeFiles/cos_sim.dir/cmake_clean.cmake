file(REMOVE_RECURSE
  "CMakeFiles/cos_sim.dir/link.cpp.o"
  "CMakeFiles/cos_sim.dir/link.cpp.o.d"
  "CMakeFiles/cos_sim.dir/session.cpp.o"
  "CMakeFiles/cos_sim.dir/session.cpp.o.d"
  "CMakeFiles/cos_sim.dir/stats.cpp.o"
  "CMakeFiles/cos_sim.dir/stats.cpp.o.d"
  "libcos_sim.a"
  "libcos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
