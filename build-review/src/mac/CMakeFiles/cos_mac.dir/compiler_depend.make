# Empty compiler generated dependencies file for cos_mac.
# This may be replaced when dependencies are built.
