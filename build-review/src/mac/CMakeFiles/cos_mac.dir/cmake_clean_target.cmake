file(REMOVE_RECURSE
  "libcos_mac.a"
)
