file(REMOVE_RECURSE
  "CMakeFiles/cos_mac.dir/aggregation.cpp.o"
  "CMakeFiles/cos_mac.dir/aggregation.cpp.o.d"
  "CMakeFiles/cos_mac.dir/backoff.cpp.o"
  "CMakeFiles/cos_mac.dir/backoff.cpp.o.d"
  "CMakeFiles/cos_mac.dir/contention.cpp.o"
  "CMakeFiles/cos_mac.dir/contention.cpp.o.d"
  "CMakeFiles/cos_mac.dir/coordination.cpp.o"
  "CMakeFiles/cos_mac.dir/coordination.cpp.o.d"
  "CMakeFiles/cos_mac.dir/frame.cpp.o"
  "CMakeFiles/cos_mac.dir/frame.cpp.o.d"
  "libcos_mac.a"
  "libcos_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cos_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
