
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/aggregation.cpp" "src/mac/CMakeFiles/cos_mac.dir/aggregation.cpp.o" "gcc" "src/mac/CMakeFiles/cos_mac.dir/aggregation.cpp.o.d"
  "/root/repo/src/mac/backoff.cpp" "src/mac/CMakeFiles/cos_mac.dir/backoff.cpp.o" "gcc" "src/mac/CMakeFiles/cos_mac.dir/backoff.cpp.o.d"
  "/root/repo/src/mac/contention.cpp" "src/mac/CMakeFiles/cos_mac.dir/contention.cpp.o" "gcc" "src/mac/CMakeFiles/cos_mac.dir/contention.cpp.o.d"
  "/root/repo/src/mac/coordination.cpp" "src/mac/CMakeFiles/cos_mac.dir/coordination.cpp.o" "gcc" "src/mac/CMakeFiles/cos_mac.dir/coordination.cpp.o.d"
  "/root/repo/src/mac/frame.cpp" "src/mac/CMakeFiles/cos_mac.dir/frame.cpp.o" "gcc" "src/mac/CMakeFiles/cos_mac.dir/frame.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/cos_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/phy/CMakeFiles/cos_phy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/channel/CMakeFiles/cos_channel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/cos_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/cos_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dsp/CMakeFiles/cos_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
