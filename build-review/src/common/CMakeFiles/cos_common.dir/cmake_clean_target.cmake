file(REMOVE_RECURSE
  "libcos_common.a"
)
