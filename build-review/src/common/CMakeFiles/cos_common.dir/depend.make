# Empty dependencies file for cos_common.
# This may be replaced when dependencies are built.
