file(REMOVE_RECURSE
  "CMakeFiles/cos_common.dir/bits.cpp.o"
  "CMakeFiles/cos_common.dir/bits.cpp.o.d"
  "CMakeFiles/cos_common.dir/crc32.cpp.o"
  "CMakeFiles/cos_common.dir/crc32.cpp.o.d"
  "CMakeFiles/cos_common.dir/hex.cpp.o"
  "CMakeFiles/cos_common.dir/hex.cpp.o.d"
  "CMakeFiles/cos_common.dir/rng.cpp.o"
  "CMakeFiles/cos_common.dir/rng.cpp.o.d"
  "libcos_common.a"
  "libcos_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cos_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
