# Empty dependencies file for cos_core.
# This may be replaced when dependencies are built.
