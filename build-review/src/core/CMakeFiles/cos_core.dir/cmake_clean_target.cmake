file(REMOVE_RECURSE
  "libcos_core.a"
)
