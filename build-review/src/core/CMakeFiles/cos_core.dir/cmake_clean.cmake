file(REMOVE_RECURSE
  "CMakeFiles/cos_core.dir/control_framing.cpp.o"
  "CMakeFiles/cos_core.dir/control_framing.cpp.o.d"
  "CMakeFiles/cos_core.dir/control_rate.cpp.o"
  "CMakeFiles/cos_core.dir/control_rate.cpp.o.d"
  "CMakeFiles/cos_core.dir/cos_link.cpp.o"
  "CMakeFiles/cos_core.dir/cos_link.cpp.o.d"
  "CMakeFiles/cos_core.dir/energy_detector.cpp.o"
  "CMakeFiles/cos_core.dir/energy_detector.cpp.o.d"
  "CMakeFiles/cos_core.dir/evm.cpp.o"
  "CMakeFiles/cos_core.dir/evm.cpp.o.d"
  "CMakeFiles/cos_core.dir/feedback_transport.cpp.o"
  "CMakeFiles/cos_core.dir/feedback_transport.cpp.o.d"
  "CMakeFiles/cos_core.dir/interval_code.cpp.o"
  "CMakeFiles/cos_core.dir/interval_code.cpp.o.d"
  "CMakeFiles/cos_core.dir/silence_plan.cpp.o"
  "CMakeFiles/cos_core.dir/silence_plan.cpp.o.d"
  "CMakeFiles/cos_core.dir/subcarrier_selection.cpp.o"
  "CMakeFiles/cos_core.dir/subcarrier_selection.cpp.o.d"
  "libcos_core.a"
  "libcos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
