
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/control_framing.cpp" "src/core/CMakeFiles/cos_core.dir/control_framing.cpp.o" "gcc" "src/core/CMakeFiles/cos_core.dir/control_framing.cpp.o.d"
  "/root/repo/src/core/control_rate.cpp" "src/core/CMakeFiles/cos_core.dir/control_rate.cpp.o" "gcc" "src/core/CMakeFiles/cos_core.dir/control_rate.cpp.o.d"
  "/root/repo/src/core/cos_link.cpp" "src/core/CMakeFiles/cos_core.dir/cos_link.cpp.o" "gcc" "src/core/CMakeFiles/cos_core.dir/cos_link.cpp.o.d"
  "/root/repo/src/core/energy_detector.cpp" "src/core/CMakeFiles/cos_core.dir/energy_detector.cpp.o" "gcc" "src/core/CMakeFiles/cos_core.dir/energy_detector.cpp.o.d"
  "/root/repo/src/core/evm.cpp" "src/core/CMakeFiles/cos_core.dir/evm.cpp.o" "gcc" "src/core/CMakeFiles/cos_core.dir/evm.cpp.o.d"
  "/root/repo/src/core/feedback_transport.cpp" "src/core/CMakeFiles/cos_core.dir/feedback_transport.cpp.o" "gcc" "src/core/CMakeFiles/cos_core.dir/feedback_transport.cpp.o.d"
  "/root/repo/src/core/interval_code.cpp" "src/core/CMakeFiles/cos_core.dir/interval_code.cpp.o" "gcc" "src/core/CMakeFiles/cos_core.dir/interval_code.cpp.o.d"
  "/root/repo/src/core/silence_plan.cpp" "src/core/CMakeFiles/cos_core.dir/silence_plan.cpp.o" "gcc" "src/core/CMakeFiles/cos_core.dir/silence_plan.cpp.o.d"
  "/root/repo/src/core/subcarrier_selection.cpp" "src/core/CMakeFiles/cos_core.dir/subcarrier_selection.cpp.o" "gcc" "src/core/CMakeFiles/cos_core.dir/subcarrier_selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/cos_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dsp/CMakeFiles/cos_dsp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/phy/CMakeFiles/cos_phy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/channel/CMakeFiles/cos_channel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
