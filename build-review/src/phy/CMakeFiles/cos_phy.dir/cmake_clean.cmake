file(REMOVE_RECURSE
  "CMakeFiles/cos_phy.dir/convolutional.cpp.o"
  "CMakeFiles/cos_phy.dir/convolutional.cpp.o.d"
  "CMakeFiles/cos_phy.dir/interleaver.cpp.o"
  "CMakeFiles/cos_phy.dir/interleaver.cpp.o.d"
  "CMakeFiles/cos_phy.dir/modulation.cpp.o"
  "CMakeFiles/cos_phy.dir/modulation.cpp.o.d"
  "CMakeFiles/cos_phy.dir/ofdm.cpp.o"
  "CMakeFiles/cos_phy.dir/ofdm.cpp.o.d"
  "CMakeFiles/cos_phy.dir/params.cpp.o"
  "CMakeFiles/cos_phy.dir/params.cpp.o.d"
  "CMakeFiles/cos_phy.dir/pilots.cpp.o"
  "CMakeFiles/cos_phy.dir/pilots.cpp.o.d"
  "CMakeFiles/cos_phy.dir/preamble.cpp.o"
  "CMakeFiles/cos_phy.dir/preamble.cpp.o.d"
  "CMakeFiles/cos_phy.dir/puncture.cpp.o"
  "CMakeFiles/cos_phy.dir/puncture.cpp.o.d"
  "CMakeFiles/cos_phy.dir/receiver.cpp.o"
  "CMakeFiles/cos_phy.dir/receiver.cpp.o.d"
  "CMakeFiles/cos_phy.dir/scrambler.cpp.o"
  "CMakeFiles/cos_phy.dir/scrambler.cpp.o.d"
  "CMakeFiles/cos_phy.dir/signal_field.cpp.o"
  "CMakeFiles/cos_phy.dir/signal_field.cpp.o.d"
  "CMakeFiles/cos_phy.dir/sync.cpp.o"
  "CMakeFiles/cos_phy.dir/sync.cpp.o.d"
  "CMakeFiles/cos_phy.dir/transmitter.cpp.o"
  "CMakeFiles/cos_phy.dir/transmitter.cpp.o.d"
  "CMakeFiles/cos_phy.dir/viterbi.cpp.o"
  "CMakeFiles/cos_phy.dir/viterbi.cpp.o.d"
  "libcos_phy.a"
  "libcos_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cos_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
