
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/convolutional.cpp" "src/phy/CMakeFiles/cos_phy.dir/convolutional.cpp.o" "gcc" "src/phy/CMakeFiles/cos_phy.dir/convolutional.cpp.o.d"
  "/root/repo/src/phy/interleaver.cpp" "src/phy/CMakeFiles/cos_phy.dir/interleaver.cpp.o" "gcc" "src/phy/CMakeFiles/cos_phy.dir/interleaver.cpp.o.d"
  "/root/repo/src/phy/modulation.cpp" "src/phy/CMakeFiles/cos_phy.dir/modulation.cpp.o" "gcc" "src/phy/CMakeFiles/cos_phy.dir/modulation.cpp.o.d"
  "/root/repo/src/phy/ofdm.cpp" "src/phy/CMakeFiles/cos_phy.dir/ofdm.cpp.o" "gcc" "src/phy/CMakeFiles/cos_phy.dir/ofdm.cpp.o.d"
  "/root/repo/src/phy/params.cpp" "src/phy/CMakeFiles/cos_phy.dir/params.cpp.o" "gcc" "src/phy/CMakeFiles/cos_phy.dir/params.cpp.o.d"
  "/root/repo/src/phy/pilots.cpp" "src/phy/CMakeFiles/cos_phy.dir/pilots.cpp.o" "gcc" "src/phy/CMakeFiles/cos_phy.dir/pilots.cpp.o.d"
  "/root/repo/src/phy/preamble.cpp" "src/phy/CMakeFiles/cos_phy.dir/preamble.cpp.o" "gcc" "src/phy/CMakeFiles/cos_phy.dir/preamble.cpp.o.d"
  "/root/repo/src/phy/puncture.cpp" "src/phy/CMakeFiles/cos_phy.dir/puncture.cpp.o" "gcc" "src/phy/CMakeFiles/cos_phy.dir/puncture.cpp.o.d"
  "/root/repo/src/phy/receiver.cpp" "src/phy/CMakeFiles/cos_phy.dir/receiver.cpp.o" "gcc" "src/phy/CMakeFiles/cos_phy.dir/receiver.cpp.o.d"
  "/root/repo/src/phy/scrambler.cpp" "src/phy/CMakeFiles/cos_phy.dir/scrambler.cpp.o" "gcc" "src/phy/CMakeFiles/cos_phy.dir/scrambler.cpp.o.d"
  "/root/repo/src/phy/signal_field.cpp" "src/phy/CMakeFiles/cos_phy.dir/signal_field.cpp.o" "gcc" "src/phy/CMakeFiles/cos_phy.dir/signal_field.cpp.o.d"
  "/root/repo/src/phy/sync.cpp" "src/phy/CMakeFiles/cos_phy.dir/sync.cpp.o" "gcc" "src/phy/CMakeFiles/cos_phy.dir/sync.cpp.o.d"
  "/root/repo/src/phy/transmitter.cpp" "src/phy/CMakeFiles/cos_phy.dir/transmitter.cpp.o" "gcc" "src/phy/CMakeFiles/cos_phy.dir/transmitter.cpp.o.d"
  "/root/repo/src/phy/viterbi.cpp" "src/phy/CMakeFiles/cos_phy.dir/viterbi.cpp.o" "gcc" "src/phy/CMakeFiles/cos_phy.dir/viterbi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/cos_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dsp/CMakeFiles/cos_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
