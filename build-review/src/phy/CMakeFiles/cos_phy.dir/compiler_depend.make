# Empty compiler generated dependencies file for cos_phy.
# This may be replaced when dependencies are built.
