file(REMOVE_RECURSE
  "libcos_phy.a"
)
