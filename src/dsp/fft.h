// Radix-2 iterative FFT used for OFDM modulation/demodulation.
//
// 802.11a works on 64-point transforms; the implementation supports any
// power-of-two size so tests can exercise it generically.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace silence {

using Cx = std::complex<double>;
using CxVec = std::vector<Cx>;

// In-place decimation-in-time FFT. `data.size()` must be a power of two.
// `inverse` selects the inverse transform, which applies the 1/N scaling
// (so ifft(fft(x)) == x).
void fft_in_place(std::span<Cx> data, bool inverse);

// Out-of-place conveniences.
CxVec fft(std::span<const Cx> data);
CxVec ifft(std::span<const Cx> data);

// Total energy sum |x|^2 of a vector.
double energy(std::span<const Cx> data);

}  // namespace silence
