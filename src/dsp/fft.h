// Radix-2 iterative FFT used for OFDM modulation/demodulation.
//
// 802.11a works on 64-point transforms; the implementation supports any
// power-of-two size so tests can exercise it generically.
//
// Transforms run off cached FftPlan objects (precomputed twiddle factors
// and bit-reversal permutation), so the hot path does no trigonometry and
// no allocation. Plans are built once per size and shared process-wide;
// fft_plan() is thread-safe and lock-free after first use of a size.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace silence {

using Cx = std::complex<double>;
using CxVec = std::vector<Cx>;

// Precomputed tables for one transform size. The twiddle factors are
// generated with the same repeated-multiplication recurrence the butterfly
// loop historically used, so plan-driven transforms are bit-identical to
// the original per-call computation.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  // In-place transforms over exactly size() elements.
  void forward(std::span<Cx> data) const { run(data, twiddle_fwd_); }
  void inverse(std::span<Cx> data) const {
    run(data, twiddle_inv_);
    const double scale = 1.0 / static_cast<double>(n_);
    for (Cx& x : data) x *= scale;
  }

  // Table access for external kernels (the batched SoA engine) that must
  // replay the exact butterfly sequence on their own storage layout.
  // Stage-major layout: the stage with butterfly span `len` stores its
  // len/2 factors at offset len/2 - 1.
  std::span<const Cx> forward_twiddles() const { return twiddle_fwd_; }
  std::span<const Cx> inverse_twiddles() const { return twiddle_inv_; }
  std::span<const std::uint32_t> bit_reversal() const { return bitrev_; }

 private:
  void run(std::span<Cx> data, const std::vector<Cx>& twiddle) const;

  std::size_t n_;
  // Stage-major twiddles: the stage with butterfly span `len` stores its
  // len/2 factors at offset len/2 - 1 (total n - 1 entries).
  std::vector<Cx> twiddle_fwd_;
  std::vector<Cx> twiddle_inv_;
  std::vector<std::uint32_t> bitrev_;
};

// Shared plan for `n` (must be a power of two). The returned reference is
// valid for the lifetime of the process.
const FftPlan& fft_plan(std::size_t n);

// In-place decimation-in-time FFT. `data.size()` must be a power of two.
// `inverse` selects the inverse transform, which applies the 1/N scaling
// (so ifft(fft(x)) == x).
void fft_in_place(std::span<Cx> data, bool inverse);

// Out-of-place conveniences.
CxVec fft(std::span<const Cx> data);
CxVec ifft(std::span<const Cx> data);

// Total energy sum |x|^2 of a vector.
double energy(std::span<const Cx> data);

}  // namespace silence
