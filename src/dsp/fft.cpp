#include "dsp/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace silence {
namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

void fft_in_place(std::span<Cx> data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft: size must be a power of two");
  }

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const Cx wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Cx w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Cx u = data[i + j];
        const Cx v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= scale;
  }
}

CxVec fft(std::span<const Cx> data) {
  CxVec out(data.begin(), data.end());
  fft_in_place(out, /*inverse=*/false);
  return out;
}

CxVec ifft(std::span<const Cx> data) {
  CxVec out(data.begin(), data.end());
  fft_in_place(out, /*inverse=*/true);
  return out;
}

double energy(std::span<const Cx> data) {
  double sum = 0.0;
  for (const Cx& x : data) sum += std::norm(x);
  return sum;
}

}  // namespace silence
