#include "dsp/fft.h"

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <mutex>
#include <numbers>
#include <stdexcept>

namespace silence {
namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft: size must be a power of two");
  }

  bitrev_.resize(n);
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bitrev_[i] = static_cast<std::uint32_t>(j);
  }

  // The factors must match the values the old in-loop recurrence
  // (w = 1; w *= wlen) produced, last ulp included, so the tables are
  // filled by running exactly that recurrence once per stage.
  if (n > 1) {
    twiddle_fwd_.resize(n - 1);
    twiddle_inv_.resize(n - 1);
    for (int pass = 0; pass < 2; ++pass) {
      const double sign = pass == 0 ? -1.0 : 1.0;
      auto& table = pass == 0 ? twiddle_fwd_ : twiddle_inv_;
      for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle =
            sign * 2.0 * std::numbers::pi / static_cast<double>(len);
        const Cx wlen(std::cos(angle), std::sin(angle));
        Cx w(1.0, 0.0);
        for (std::size_t j = 0; j < len / 2; ++j) {
          table[len / 2 - 1 + j] = w;
          w *= wlen;
        }
      }
    }
  }
}

void FftPlan::run(std::span<Cx> data, const std::vector<Cx>& twiddle) const {
  if (data.size() != n_) {
    throw std::invalid_argument("fft: data size does not match plan");
  }
  for (std::size_t i = 1; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const Cx* w = twiddle.data() + (len / 2 - 1);
    for (std::size_t i = 0; i < n_; i += len) {
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Cx u = data[i + j];
        const Cx v = data[i + j + len / 2] * w[j];
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
      }
    }
  }
}

const FftPlan& fft_plan(std::size_t n) {
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // One slot per log2(size); plans are created once under the mutex and
  // published with release semantics, so steady-state lookups are a single
  // acquire load. Plans intentionally live for the whole process.
  static std::array<std::atomic<const FftPlan*>, 64> slots{};
  static std::mutex build_mutex;
  const auto idx = static_cast<std::size_t>(std::countr_zero(n));
  const FftPlan* plan = slots[idx].load(std::memory_order_acquire);
  if (plan == nullptr) {
    std::lock_guard<std::mutex> lock(build_mutex);
    plan = slots[idx].load(std::memory_order_acquire);
    if (plan == nullptr) {
      plan = new FftPlan(n);
      slots[idx].store(plan, std::memory_order_release);
    }
  }
  return *plan;
}

void fft_in_place(std::span<Cx> data, bool inverse) {
  const FftPlan& plan = fft_plan(data.size());
  if (inverse) {
    plan.inverse(data);
  } else {
    plan.forward(data);
  }
}

CxVec fft(std::span<const Cx> data) {
  CxVec out(data.begin(), data.end());
  fft_in_place(out, /*inverse=*/false);
  return out;
}

CxVec ifft(std::span<const Cx> data) {
  CxVec out(data.begin(), data.end());
  fft_in_place(out, /*inverse=*/true);
  return out;
}

double energy(std::span<const Cx> data) {
  double sum = 0.0;
  for (const Cx& x : data) sum += std::norm(x);
  return sum;
}

}  // namespace silence
