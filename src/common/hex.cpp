#include "common/hex.h"

namespace silence {

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t byte : data) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xFU]);
  }
  return out;
}

std::string to_printable(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size());
  for (std::uint8_t byte : data) {
    out.push_back(byte >= 0x20 && byte < 0x7F ? static_cast<char>(byte) : '.');
  }
  return out;
}

}  // namespace silence
