#include "common/bits.h"

#include <stdexcept>

namespace silence {

Bits bytes_to_bits(std::span<const std::uint8_t> bytes) {
  Bits bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t byte : bytes) {
    for (int i = 0; i < 8; ++i) {
      bits.push_back(static_cast<std::uint8_t>((byte >> i) & 1U));
    }
  }
  return bits;
}

Bytes bits_to_bytes(std::span<const std::uint8_t> bits) {
  Bytes bytes;
  bits_to_bytes_into(bits, bytes);
  return bytes;
}

void bits_to_bytes_into(std::span<const std::uint8_t> bits, Bytes& bytes) {
  if (bits.size() % 8 != 0) {
    throw std::invalid_argument("bits_to_bytes: bit count not a multiple of 8");
  }
  bytes.assign(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] & 1U) {
      bytes[i / 8] |= static_cast<std::uint8_t>(1U << (i % 8));
    }
  }
}

std::uint64_t bits_to_uint(std::span<const std::uint8_t> bits) {
  if (bits.size() > 64) {
    throw std::invalid_argument("bits_to_uint: more than 64 bits");
  }
  std::uint64_t value = 0;
  for (std::uint8_t bit : bits) {
    value = (value << 1) | (bit & 1U);
  }
  return value;
}

Bits uint_to_bits(std::uint64_t value, int count) {
  if (count < 0 || count > 64) {
    throw std::invalid_argument("uint_to_bits: count out of range");
  }
  Bits bits(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    bits[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((value >> (count - 1 - i)) & 1U);
  }
  return bits;
}

std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("hamming_distance: length mismatch");
  }
  std::size_t distance = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if ((a[i] ^ b[i]) & 1U) ++distance;
  }
  return distance;
}

}  // namespace silence
