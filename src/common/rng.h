// Deterministic random number generation.
//
// Every stochastic component in the simulator draws from an explicitly
// seeded Rng so that experiments and tests are reproducible bit-for-bit.
#pragma once

#include <complex>
#include <cstdint>
#include <random>
#include <vector>

namespace silence {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform in [0, 1).
  double uniform() { return unit_(engine_); }

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  // Standard normal.
  double gaussian() { return normal_(engine_); }

  // Circularly-symmetric complex Gaussian with E[|x|^2] = variance.
  std::complex<double> complex_gaussian(double variance);

  // `count` random bits.
  std::vector<std::uint8_t> bits(std::size_t count);

  // `count` random bytes.
  std::vector<std::uint8_t> bytes(std::size_t count);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace silence
