#include "common/rng.h"

#include <cmath>

namespace silence {

std::complex<double> Rng::complex_gaussian(double variance) {
  const double sigma = std::sqrt(variance / 2.0);
  return {sigma * gaussian(), sigma * gaussian()};
}

std::vector<std::uint8_t> Rng::bits(std::size_t count) {
  std::vector<std::uint8_t> out(count);
  for (auto& b : out) b = static_cast<std::uint8_t>(engine_() & 1U);
  return out;
}

std::vector<std::uint8_t> Rng::bytes(std::size_t count) {
  std::vector<std::uint8_t> out(count);
  for (auto& b : out) b = static_cast<std::uint8_t>(engine_() & 0xFFU);
  return out;
}

}  // namespace silence
