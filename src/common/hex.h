// Hex/ASCII rendering helpers for examples and diagnostics.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace silence {

// "deadbeef"-style lowercase hex string.
std::string to_hex(std::span<const std::uint8_t> data);

// Renders printable ASCII bytes verbatim and everything else as '.'.
std::string to_printable(std::span<const std::uint8_t> data);

}  // namespace silence
