// Bit-level utilities shared by the PHY and CoS layers.
//
// Throughout the code base a "bit vector" is a std::vector<uint8_t> whose
// elements are each 0 or 1.  This wastes memory relative to a packed
// representation but makes every PHY stage (scrambling, coding,
// interleaving) trivially indexable, which is what matters for a simulator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace silence {

using Bits = std::vector<std::uint8_t>;
using Bytes = std::vector<std::uint8_t>;

// Unpacks bytes into bits, LSB of each byte first (802.11 bit ordering:
// the first bit on air is bit 0 of the first octet).
Bits bytes_to_bits(std::span<const std::uint8_t> bytes);

// Packs bits (LSB-first per byte) into bytes. The bit count must be a
// multiple of 8.
Bytes bits_to_bytes(std::span<const std::uint8_t> bits);

// Same packing into a caller buffer (resized; capacity reused across
// calls). The bit count must be a multiple of 8.
void bits_to_bytes_into(std::span<const std::uint8_t> bits, Bytes& bytes);

// Interprets up to 64 bits as an unsigned integer, MSB first.
std::uint64_t bits_to_uint(std::span<const std::uint8_t> bits);

// Produces `count` bits of `value`, MSB first.
Bits uint_to_bits(std::uint64_t value, int count);

// Number of positions at which the two equal-length bit spans differ.
std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b);

}  // namespace silence
