// CRC-32 as used by IEEE 802.3/802.11 for the frame check sequence (FCS).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace silence {

// Standard reflected CRC-32 (polynomial 0x04C11DB7, init 0xFFFFFFFF,
// final XOR 0xFFFFFFFF). Matches zlib's crc32().
std::uint32_t crc32(std::span<const std::uint8_t> data);

// Appends the 4 FCS octets (little-endian CRC-32) to `frame`.
void append_fcs(std::vector<std::uint8_t>& frame);

// True when the final 4 octets of `frame` are the valid FCS of the rest.
bool check_fcs(std::span<const std::uint8_t> frame);

}  // namespace silence
