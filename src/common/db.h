// Decibel/linear conversion helpers used across the channel and PHY code.
#pragma once

#include <cmath>

namespace silence {

// Power ratio in dB -> linear power ratio.
inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

// Linear power ratio -> dB.
inline double linear_to_db(double linear) { return 10.0 * std::log10(linear); }

}  // namespace silence
