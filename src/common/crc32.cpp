#include "common/crc32.h"

#include <array>
#include <vector>

namespace silence {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  std::uint32_t c = 0xFFFFFFFFU;
  for (std::uint8_t byte : data) {
    c = kTable[(c ^ byte) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

void append_fcs(std::vector<std::uint8_t>& frame) {
  const std::uint32_t fcs = crc32(frame);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::uint8_t>((fcs >> (8 * i)) & 0xFFU));
  }
}

bool check_fcs(std::span<const std::uint8_t> frame) {
  if (frame.size() < 4) return false;
  const auto body = frame.first(frame.size() - 4);
  const std::uint32_t fcs = crc32(body);
  for (int i = 0; i < 4; ++i) {
    if (frame[frame.size() - 4 + static_cast<std::size_t>(i)] !=
        static_cast<std::uint8_t>((fcs >> (8 * i)) & 0xFFU)) {
      return false;
    }
  }
  return true;
}

}  // namespace silence
