// Aggregation helpers for the experiment harnesses: error counters,
// empirical CDFs, and simple summaries.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace silence {

struct ErrorStats {
  std::size_t bits = 0;
  std::size_t bit_errors = 0;
  std::size_t symbols = 0;
  std::size_t symbol_errors = 0;
  std::size_t packets = 0;
  std::size_t packets_ok = 0;

  double ber() const { return bits ? static_cast<double>(bit_errors) / bits : 0.0; }
  double ser() const {
    return symbols ? static_cast<double>(symbol_errors) / symbols : 0.0;
  }
  double prr() const {
    return packets ? static_cast<double>(packets_ok) / packets : 0.0;
  }

  // Counter-wise merge; the rate accessors (ber/ser/prr) of a merged
  // value equal the rates over the pooled counters, so partial results
  // produced by runner threads can be reduced in any grouping.
  ErrorStats& operator+=(const ErrorStats& other);
  friend ErrorStats operator+(ErrorStats lhs, const ErrorStats& rhs) {
    lhs += rhs;
    return lhs;
  }
};

// Empirical CDF: returns sorted copies of the samples; the CDF value of
// result[i] is (i + 1) / result.size(). An empty sample set yields an
// empty CDF (not an error), so unvisited sweep points merge cleanly.
std::vector<double> empirical_cdf(std::span<const double> samples);

// The q-quantile (0 <= q <= 1) of the samples (nearest-rank).
double quantile(std::span<const double> samples, double q);

double mean(std::span<const double> samples);

}  // namespace silence
