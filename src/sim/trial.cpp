#include "sim/trial.h"

#include <algorithm>
#include <stdexcept>

#include "common/hex.h"
#include "obs/health/health.h"
#include "phy/ofdm.h"
#include "phy/preamble.h"
#include "runner/seed.h"
#include "sim/link.h"

namespace silence {

namespace {

std::string bits_to_string(std::span<const std::uint8_t> bits) {
  std::string out;
  out.reserve(bits.size());
  for (const auto b : bits) out.push_back(b ? '1' : '0');
  return out;
}

const runner::Json& require(const runner::Json& json, std::string_view key) {
  const runner::Json* value = json.find(key);
  if (value == nullptr) {
    throw std::runtime_error("CosTrialSpec: missing field '" +
                             std::string(key) + "'");
  }
  return *value;
}

#if SILENCE_OBS_ON
// Health: label each detector score with the planned ground truth (known
// only here in the sim layer) and tally the same confusion counts
// count_confusion() derives from the masks. Uses the identical skip rule
// (symbol-count mismatch after a SIGNAL mis-decode), so the score-stream
// totals stay in 1:1 correspondence with the reported confusion counts.
void record_labeled_scores(const SilenceMask& planned,
                           std::size_t detected_symbols,
                           const DetectionScores& scores) {
  if (detected_symbols != planned.size()) return;
  for (const DetectionScore& s : scores) {
    const bool truth_silent =
        planned[s.symbol][static_cast<std::size_t>(s.subcarrier)] != 0;
    HEALTH_SCORE(truth_silent, s.subcarrier, s.score_x256);
    const bool declared_silent =
        s.score_x256 < obs::health::kScoreThreshold;
    if (truth_silent) {
      HEALTH_COUNT(kTruthSilent);
      if (!declared_silent) HEALTH_COUNT(kMisses);
    } else {
      HEALTH_COUNT(kTruthActive);
      if (declared_silent) HEALTH_COUNT(kFalseAlarms);
    }
  }
}
#endif

}  // namespace

runner::Json CosTrialSpec::to_json() const {
  runner::Json root = runner::Json::object();
  root.set("measured_snr_db", measured_snr_db);
  root.set("rate_mbps", mcs.to_json());
  root.set("psdu_octets", static_cast<std::int64_t>(psdu_octets));
  root.set("control_bits", static_cast<std::int64_t>(control_bits));
  root.set("cos_profile", cos.to_json());
  runner::Json prof = runner::Json::object();
  prof.set("num_taps", profile.num_taps);
  prof.set("decay_taps", profile.decay_taps);
  prof.set("rician_k_linear", profile.rician_k_linear);
  prof.set("doppler_hz", profile.doppler_hz);
  prof.set("k_all_taps_linear", profile.k_all_taps_linear);
  root.set("profile", std::move(prof));
  if (interferer) {
    runner::Json interf = runner::Json::object();
    interf.set("symbol_hit_probability", interferer->symbol_hit_probability);
    interf.set("pulse_power", interferer->pulse_power);
    root.set("interferer", std::move(interf));
  } else {
    root.set("interferer", nullptr);
  }
  root.set("ground_truth_framing", ground_truth_framing);
  root.set("dump_on_crc_fail", dump_on_crc_fail);
  root.set("dump_on_control_miss", dump_on_control_miss);
  root.set("dump_on_false_alarm", dump_on_false_alarm);
  return root;
}

CosTrialSpec CosTrialSpec::from_json(const runner::Json& json) {
  CosTrialSpec spec;
  spec.measured_snr_db = require(json, "measured_snr_db").as_double();
  spec.mcs = McsId::from_json(require(json, "rate_mbps"));
  spec.psdu_octets =
      static_cast<std::size_t>(require(json, "psdu_octets").as_int());
  spec.control_bits =
      static_cast<std::size_t>(require(json, "control_bits").as_int());
  if (const runner::Json* cos_profile = json.find("cos_profile")) {
    spec.cos = CosProfile::from_json(*cos_profile);
  } else {
    // Legacy flat layout (pre-CosProfile flight dumps): the profile
    // fields sat at the top level and the scrambler seed was implicit.
    runner::Json flat = runner::Json::object();
    flat.set("control_subcarriers", require(json, "control_subcarriers"));
    flat.set("bits_per_interval", require(json, "bits_per_interval"));
    flat.set("detector", require(json, "detector"));
    flat.set("scrambler_seed", static_cast<std::int64_t>(0x5D));
    flat.set("min_feedback_subcarriers", 6);
    spec.cos = CosProfile::from_json(flat);
  }
  const runner::Json& prof = require(json, "profile");
  spec.profile.num_taps = static_cast<int>(require(prof, "num_taps").as_int());
  spec.profile.decay_taps = require(prof, "decay_taps").as_double();
  spec.profile.rician_k_linear = require(prof, "rician_k_linear").as_double();
  spec.profile.doppler_hz = require(prof, "doppler_hz").as_double();
  spec.profile.k_all_taps_linear =
      require(prof, "k_all_taps_linear").as_double();
  const runner::Json& interf = require(json, "interferer");
  if (interf.is_null()) {
    spec.interferer.reset();
  } else {
    PulseInterferer pulse;
    pulse.symbol_hit_probability =
        require(interf, "symbol_hit_probability").as_double();
    pulse.pulse_power = require(interf, "pulse_power").as_double();
    spec.interferer = pulse;
  }
  spec.ground_truth_framing =
      require(json, "ground_truth_framing").as_bool();
  spec.dump_on_crc_fail = require(json, "dump_on_crc_fail").as_bool();
  spec.dump_on_control_miss = require(json, "dump_on_control_miss").as_bool();
  spec.dump_on_false_alarm = require(json, "dump_on_false_alarm").as_bool();
  return spec;
}

CosPacket simulate_cos_packet(const CosTrialSpec& spec, std::uint64_t seed) {
  return simulate_cos_packet(spec, seed, default_phy_workspace());
}

CosPacket simulate_cos_packet(const CosTrialSpec& spec, std::uint64_t seed,
                              PhyWorkspace& ws) {
  CosPacket out;
  // Substream split inherited from the original fig10 bench: stream 0 is
  // the "position" (channel realization), stream 1 drives payload, noise
  // and interference.
  const std::uint64_t channel_seed = runner::substream_seed(seed, 0);
  Rng rng(runner::substream_seed(seed, 1));
  FadingChannel channel(spec.profile, channel_seed);
  const double nv = noise_var_for_measured_snr(channel, spec.measured_snr_db);

  const CosTxConfig tx_config(spec.cos, spec.mcs);
  const Bytes psdu = make_test_psdu(spec.psdu_octets, rng);
  out.control = rng.bits(spec.control_bits);
  out.tx = cos_transmit(psdu, out.control, tx_config);

  CxVec received = channel.transmit(out.tx.samples, nv, rng);
  if (spec.interferer) spec.interferer->apply(received, rng);

  out.fe = receiver_front_end(received, ws);
  if (spec.ground_truth_framing) {
    // Rebuild the per-symbol FFTs from the known frame geometry, so a
    // SIGNAL wipe-out under heavy interference does not drop the packet.
    out.fe.channel = estimate_channel(
        std::span<const Cx>(received).subspan(kStfSamples, kLtfSamples));
    out.fe.data_bins.clear();
    out.fe.data_bins.reserve(
        static_cast<std::size_t>(out.tx.frame.num_symbols()));
    for (int s = 0; s < out.tx.frame.num_symbols(); ++s) {
      const auto offset =
          static_cast<std::size_t>(kPreambleSamples) +
          static_cast<std::size_t>(kSymbolSamples) *
              static_cast<std::size_t>(1 + s);
      time_to_bins_into(
          std::span<const Cx>(received).subspan(offset, kSymbolSamples),
          out.fe.data_bins.append());
    }
    // A deployed receiver tracks its noise floor over many packets; use
    // the long-term floor rather than this packet's pilot residuals
    // (which the pulses contaminate).
    out.fe.noise_var = freq_noise_var(nv);
    out.usable = true;
  } else {
    out.usable = static_cast<bool>(out.fe.signal);
  }
  return out;
}

DetectionCounts count_confusion(const SilenceMask& planned,
                                const SilenceMask& detected,
                                std::span<const int> control_subcarriers) {
  DetectionCounts counts;
  // A SIGNAL mis-decode (possible at very low SNR) yields the wrong
  // symbol count; skip such packets.
  if (detected.size() != planned.size()) return counts;
  for (std::size_t s = 0; s < planned.size(); ++s) {
    for (const int sc : control_subcarriers) {
      const auto idx = static_cast<std::size_t>(sc);
      if (planned[s][idx]) {
        ++counts.silent;
        if (!detected[s][idx]) ++counts.false_neg;
      } else {
        ++counts.active;
        if (detected[s][idx]) ++counts.false_pos;
      }
    }
  }
  return counts;
}

DetectionCounts count_detection(const CosPacket& packet,
                                std::span<const int> control_subcarriers,
                                const DetectorConfig& detector) {
  if (!packet.usable) return {};
#if SILENCE_OBS_ON
  DetectionScores scores;
  const SilenceMask detected =
      detect_silences(packet.fe, control_subcarriers, detector, &scores);
  record_labeled_scores(packet.tx.plan.mask, detected.size(), scores);
#else
  const SilenceMask detected =
      detect_silences(packet.fe, control_subcarriers, detector);
#endif
  return count_confusion(packet.tx.plan.mask, detected, control_subcarriers);
}

runner::Json CosTrialResult::summary() const {
  runner::Json root = runner::Json::object();
  root.set("usable", usable);
  root.set("crc_ok", crc_ok);
  root.set("psdu_hex", to_hex(psdu));
  root.set("control_bits_sent", static_cast<std::int64_t>(control_bits_sent));
  root.set("control_bits_recovered",
           static_cast<std::int64_t>(control_bits_recovered));
  root.set("control_ok", control_ok);
  root.set("control_recovered", bits_to_string(control_recovered));
  runner::Json det = runner::Json::object();
  det.set("active", static_cast<std::int64_t>(detection.active));
  det.set("silent", static_cast<std::int64_t>(detection.silent));
  det.set("false_pos", static_cast<std::int64_t>(detection.false_pos));
  det.set("false_neg", static_cast<std::int64_t>(detection.false_neg));
  root.set("detection", std::move(det));
  std::size_t detected_silences = 0;
  for (const auto& row : detected_mask) {
    for (const auto cell : row) detected_silences += cell != 0;
  }
  root.set("silences_detected", static_cast<std::int64_t>(detected_silences));
  return root;
}

CosTrialResult run_cos_trial_recorded(const CosTrialSpec& spec,
                                      std::uint64_t seed) {
  return run_cos_trial_recorded(spec, seed, default_phy_workspace());
}

CosTrialResult run_cos_trial_recorded(const CosTrialSpec& spec,
                                      std::uint64_t seed, PhyWorkspace& ws) {
  CosTrialResult result;
  const CosPacket packet = simulate_cos_packet(spec, seed, ws);
  result.usable = packet.usable;
  result.control_bits_sent = packet.tx.plan.bits_sent;

  const Mcs& mcs = *spec.mcs;
  if (packet.usable) {
    // The detector needs the packet's modulation for its per-subcarrier
    // thresholds, exactly as cos_receive sets it from SIGNAL.
    DetectorConfig detector = spec.cos.detector;
    detector.modulation = mcs.modulation;
#if SILENCE_OBS_ON
    DetectionScores scores;
    result.detected_mask = detect_silences(
        packet.fe, spec.cos.control_subcarriers, detector, &scores);
    record_labeled_scores(packet.tx.plan.mask, result.detected_mask.size(),
                          scores);
#else
    result.detected_mask =
        detect_silences(packet.fe, spec.cos.control_subcarriers, detector);
#endif
    result.detection = count_confusion(packet.tx.plan.mask,
                                       result.detected_mask,
                                       spec.cos.control_subcarriers);

    const std::vector<int> intervals =
        mask_to_intervals(result.detected_mask, spec.cos.control_subcarriers);
    result.control_recovered =
        intervals_to_bits_tolerant(intervals, spec.cos.bits_per_interval);
    result.control_bits_recovered = result.control_recovered.size();
    result.control_ok =
        result.control_recovered.size() == result.control_bits_sent &&
        std::equal(result.control_recovered.begin(),
                   result.control_recovered.end(), packet.control.begin());

    // EVD data decode over the detected mask (the full CoS receive path;
    // fig10's legacy detection-only sweep skipped this).
    const DecodeResult decode = decode_data_symbols(
        packet.fe, mcs, static_cast<int>(spec.psdu_octets),
        &result.detected_mask, ws);
    result.crc_ok = decode.crc_ok;
    if (decode.crc_ok) result.psdu = decode.psdu;
  }

#if SILENCE_OBS_ON
  if (auto* rec = obs::flight::TrialRecording::active()) {
    if (spec.dump_on_crc_fail && !result.crc_ok) rec->trigger("crc_fail");
    if (spec.dump_on_control_miss && !result.control_ok) {
      rec->trigger("control_miss");
    }
    if (spec.dump_on_false_alarm && result.detection.false_pos > 0) {
      rec->trigger("false_alarm");
    }
    rec->set_result(result.summary());
  }
#endif
  obs::health::maybe_trace_counters();
  return result;
}

CosTrialResult run_cos_trial(const CosTrialSpec& spec,
                             const obs::flight::TrialLabel& label,
                             std::uint64_t seed) {
#if SILENCE_OBS_ON
  auto& router = obs::flight::DumpRouter::global();
  if (router.enabled()) {
    obs::flight::TrialRecording rec(label, seed, spec.to_json());
    CosTrialResult result = run_cos_trial_recorded(spec, seed);
    result.dump_path = router.route(rec);
    return result;
  }
#else
  (void)label;
#endif
  return run_cos_trial_recorded(spec, seed);
}

}  // namespace silence
