// Closed-loop CoS session between one sender and one receiver over a
// simulated link: SNR-based data-rate adaptation, control-message rate
// lookup, EVM-based subcarrier selection feedback, and the paper's
// fallback to the lowest control rate when feedback is lost.
#pragma once

#include <optional>
#include <vector>

#include "core/control_rate.h"
#include "core/cos_link.h"
#include "core/cos_profile.h"
#include "obs/obs.h"
#include "sim/link.h"

namespace silence {

struct SessionConfig {
  // The shared CoS profile. `profile.control_subcarriers` is the
  // bootstrap control set used before the first selection feedback
  // arrives (the paper's Fig. 10(a) block [10..17] by default).
  CosProfile profile;
  // Data-rate adaptation: when unset, the measured SNR picks the MCS.
  std::optional<int> fixed_rate_mbps;
  // Control-rate: when unset, the default lookup table is used.
  std::optional<int> control_rate_override;
  // Whether the receiver's EVM-based selection drives the next packet's
  // control subcarriers (the paper's design); when false the initial set
  // is kept forever (the "random placement" ablation uses this).
  bool use_selection_feedback = true;
  // When set (and the process-wide switch is on), packets route through
  // the batched SoA PHY engine using this workspace — bit-identical
  // results, tiled FFT/IFFT inside each packet. Transient wiring, not a
  // serialized setting; the owner must outlive the session.
  PhyBatch* phy_batch = nullptr;
};

struct PacketReport {
  bool data_ok = false;
  McsId mcs;  // data MCS this packet went out at
  double measured_snr_db = 0.0;
  std::size_t silences_sent = 0;
  std::size_t control_bits_sent = 0;
  std::size_t control_bits_correct = 0;  // matching prefix length
  bool control_ok = false;  // every sent control bit decoded correctly
  CosRxPacket rx;           // receiver-side diagnostics
};

class CosSession {
 public:
  CosSession(Link& link, const SessionConfig& config);

  // Transmits one data packet, embedding as much of `control_bits` as the
  // current control rate and grid allow, and advances the channel by the
  // packet airtime (back-to-back frame aggregation).
  PacketReport send_packet(std::span<const std::uint8_t> psdu,
                           std::span<const std::uint8_t> control_bits);

  const std::vector<int>& control_subcarriers() const {
    return control_subcarriers_;
  }
  bool have_feedback() const { return have_feedback_; }

 private:
  Link& link_;
  SessionConfig config_;
  std::vector<int> control_subcarriers_;
  bool have_feedback_ = false;
#if SILENCE_OBS_ON
  // Previous decoded round's EVM snapshot, for the health layer's
  // nabla-EVM drift series (paper Eq. 2 between feedback rounds).
  std::optional<SubcarrierEvm> prev_evm_;
#endif

  int desired_control_subcarriers(int silence_budget, int num_symbols) const;
};

}  // namespace silence
