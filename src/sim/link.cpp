#include "sim/link.h"

#include <stdexcept>

#include "common/crc32.h"
#include "obs/obs.h"

namespace silence {

Link::Link(const LinkConfig& config)
    : channel_(config.profile, config.channel_seed),
      rng_(config.noise_seed),
      noise_var_(config.snr_is_measured
                     ? noise_var_for_measured_snr(channel_, config.snr_db)
                     : noise_var_for_snr_db(config.snr_db)),
      interferer_(config.interferer) {
  if (config.impairments) {
    radio_.emplace(*config.impairments, config.noise_seed ^ 0x5117u);
  }
}

CxVec Link::send(std::span<const Cx> samples) {
  OBS_SPAN("sim.link.send");
  OBS_COUNT("sim.link.sends");
  CxVec tx(samples.begin(), samples.end());
  if (radio_) tx = radio_->apply(tx);
  CxVec received = channel_.transmit(tx, noise_var_, rng_);
  if (interferer_) interferer_->apply(received, rng_);
  return received;
}

Bytes make_test_psdu(std::size_t total_octets, Rng& rng) {
  if (total_octets < 5) {
    throw std::invalid_argument("make_test_psdu: need at least 5 octets");
  }
  Bytes psdu = rng.bytes(total_octets - 4);
  append_fcs(psdu);
  return psdu;
}

}  // namespace silence
