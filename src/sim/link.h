// A point-to-point simulated link: fading channel + AWGN + optional pulse
// interference, with the SNR bookkeeping the experiments need.
#pragma once

#include <optional>

#include "channel/fading.h"
#include "channel/impairments.h"
#include "channel/interference.h"
#include "common/bits.h"
#include "common/rng.h"

namespace silence {

struct LinkConfig {
  MultipathProfile profile{};
  std::uint64_t channel_seed = 1;  // the "position" of the receiver
  std::uint64_t noise_seed = 2;
  double snr_db = 15.0;  // mean subcarrier SNR through a unit channel
  // When set, snr_db is interpreted as the NIC-measured SNR of this
  // realization instead of the mean SNR (the experiments' x axis).
  bool snr_is_measured = false;
  std::optional<PulseInterferer> interferer;
  // Transmitter hardware impairments (CFO, phase noise, TX EVM floor).
  std::optional<ImpairmentProfile> impairments;
};

class Link {
 public:
  explicit Link(const LinkConfig& config);

  // Passes a burst through the channel at its current fading state:
  // multipath + AWGN, plus the configured interference and TX
  // impairments. Callers model mobility explicitly via advance().
  CxVec send(std::span<const Cx> samples);

  // Advances the fading process by `seconds` (e.g. inter-packet gaps).
  void advance(double seconds) { channel_.advance(seconds); }

  // Replaces the pulse interference applied to subsequent send() calls;
  // nullopt removes it. The net engine uses this to inject transient
  // OBSS/hidden-terminal overlap into one frame exchange. Note the
  // interferer consumes this link's noise RNG while set, so installing
  // one is itself part of the deterministic stream.
  void set_interferer(const std::optional<PulseInterferer>& interferer) {
    interferer_ = interferer;
  }

  double noise_var() const { return noise_var_; }
  double freq_noise_var() const { return silence::freq_noise_var(noise_var_); }
  double actual_snr_db() const { return channel_.actual_snr_db(noise_var_); }
  double measured_snr_db() const {
    return channel_.measured_snr_db(noise_var_);
  }

  FadingChannel& channel() { return channel_; }
  const FadingChannel& channel() const { return channel_; }
  Rng& rng() { return rng_; }

 private:
  FadingChannel channel_;
  Rng rng_;
  double noise_var_;
  std::optional<PulseInterferer> interferer_;
  std::optional<RadioImpairments> radio_;
};

// Builds a test PSDU of `total_octets` (>= 5): random payload with the
// FCS appended in the final 4 octets.
Bytes make_test_psdu(std::size_t total_octets, Rng& rng);

}  // namespace silence
