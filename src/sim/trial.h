// A fully replayable CoS Monte-Carlo trial: the canonical "one packet
// through TX -> channel -> RX -> detection -> EVD decode" experiment the
// detection benches run, described by a JSON-round-trippable spec.
//
// Determinism contract: a trial's outcome is a pure function of
// (spec, seed) — the seed splits into a channel substream and a
// noise/payload substream exactly as the fig10 bench always did — so any
// trial can be re-run bit-exactly in isolation. The flight recorder
// (obs/flight/) leans on this: an anomaly dump stores the spec and seed,
// and `tools/silence_diag` replays it to identical RX bits and detector
// scores.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "channel/fading.h"
#include "channel/interference.h"
#include "core/cos_link.h"
#include "obs/flight/flight.h"
#include "runner/json.h"

namespace silence {

// Everything needed to reconstruct a trial. All fields serialize through
// to_json()/from_json(); from_json(to_json(spec)) == spec. The JSON
// reader also accepts the legacy flat layout (rate_mbps + top-level
// control_subcarriers/bits_per_interval/detector), so flight-recorder
// dumps written before the CosProfile migration still replay.
struct CosTrialSpec {
  double measured_snr_db = 10.0;  // NIC-measured SNR of the realization
  McsId mcs = McsId::for_rate(12);  // data MCS (serialized as rate_mbps)
  std::size_t psdu_octets = 256;
  std::size_t control_bits = 60;  // requested control-message length
  // Shared CoS profile: control subcarriers, interval width, detector
  // tuning, scrambler seed. `cos.detector.modulation` follows the MCS.
  CosProfile cos;
  MultipathProfile profile;
  std::optional<PulseInterferer> interferer;
  // Use the known frame geometry even when SIGNAL fails to decode (the
  // interference experiments' convention — heavy hits must not bias the
  // sample toward lightly-hit packets).
  bool ground_truth_framing = false;
  // Anomaly predicates evaluated by run_cos_trial against ground truth;
  // serialized so a replay re-arms the same triggers.
  bool dump_on_crc_fail = true;
  bool dump_on_control_miss = true;
  bool dump_on_false_alarm = true;

  runner::Json to_json() const;
  static CosTrialSpec from_json(const runner::Json& json);
};

// Per-cell detector confusion counts; mergeable across trials with +=.
struct DetectionCounts {
  std::size_t active = 0;
  std::size_t silent = 0;
  std::size_t false_pos = 0;
  std::size_t false_neg = 0;

  DetectionCounts& operator+=(const DetectionCounts& o) {
    active += o.active;
    silent += o.silent;
    false_pos += o.false_pos;
    false_neg += o.false_neg;
    return *this;
  }
  double positive_rate() const {
    return active ? static_cast<double>(false_pos) / active : 0.0;
  }
  double negative_rate() const {
    return silent ? static_cast<double>(false_neg) / silent : 0.0;
  }
};

// One simulated packet ready for detection experiments: the transmitted
// ground truth plus the receiver front end's view of it.
struct CosPacket {
  CosTxPacket tx;
  Bits control;  // requested control bits (sent prefix = tx.plan.bits_sent)
  FrontEndResult fe;
  bool usable = false;  // SIGNAL decoded (or ground truth supplied)
};

// Simulates one packet of `spec` at `seed` and runs the receiver front
// end. Deterministic in (spec, seed). The workspace overload reuses `ws`
// for all PHY scratch, keeping steady-state symbol work allocation-free.
CosPacket simulate_cos_packet(const CosTrialSpec& spec, std::uint64_t seed);
CosPacket simulate_cos_packet(const CosTrialSpec& spec, std::uint64_t seed,
                              PhyWorkspace& ws);

// Confusion counts of `detector` against the packet's true silence plan
// (empty counts when the packet is unusable or the symbol count
// mismatches after a SIGNAL mis-decode).
DetectionCounts count_detection(const CosPacket& packet,
                                std::span<const int> control_subcarriers,
                                const DetectorConfig& detector);

struct CosTrialResult {
  bool usable = false;
  bool crc_ok = false;
  DetectionCounts detection;
  std::size_t control_bits_sent = 0;
  std::size_t control_bits_recovered = 0;
  bool control_ok = false;  // recovered message == conveyed prefix
  Bits control_recovered;
  Bytes psdu;  // decoded PSDU (empty when decoding failed)
  SilenceMask detected_mask;
  std::string dump_path;  // flight artifact written this trial, "" if none

  // The outcome digest embedded into flight artifacts and compared by
  // silence_diag's replay check (RX bits as hex/bit strings, counts).
  runner::Json summary() const;
};

// Runs the full trial under whatever flight recording is already active
// on this thread (or none): detection, interval decode, EVD data decode,
// anomaly-predicate evaluation. Never routes dumps itself.
CosTrialResult run_cos_trial_recorded(const CosTrialSpec& spec,
                                      std::uint64_t seed);
CosTrialResult run_cos_trial_recorded(const CosTrialSpec& spec,
                                      std::uint64_t seed, PhyWorkspace& ws);

// The sweep-facing wrapper: when the global DumpRouter is armed (a bench
// ran with --flight-dir), records the trial and routes the artifact on an
// anomaly; otherwise just runs it. `label` names the sweep coordinates in
// the dump filename.
CosTrialResult run_cos_trial(const CosTrialSpec& spec,
                             const obs::flight::TrialLabel& label,
                             std::uint64_t seed);

}  // namespace silence
