#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace silence {

ErrorStats& ErrorStats::operator+=(const ErrorStats& other) {
  bits += other.bits;
  bit_errors += other.bit_errors;
  symbols += other.symbols;
  symbol_errors += other.symbol_errors;
  packets += other.packets;
  packets_ok += other.packets_ok;
  return *this;
}

std::vector<double> empirical_cdf(std::span<const double> samples) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

double quantile(std::span<const double> samples, double q) {
  if (samples.empty()) {
    throw std::invalid_argument("quantile: empty sample set");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile: q outside [0, 1]");
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double mean(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double v : samples) sum += v;
  return sum / static_cast<double>(samples.size());
}

}  // namespace silence
