#include "sim/session.h"

#include <algorithm>
#include <cmath>

#include "obs/health/health.h"

namespace silence {

CosSession::CosSession(Link& link, const SessionConfig& config)
    : link_(link),
      config_(config),
      control_subcarriers_(config.profile.control_subcarriers) {}

int CosSession::desired_control_subcarriers(int silence_budget,
                                            int num_symbols) const {
  if (silence_budget <= 0 || num_symbols <= 0) return 1;
  // Average grid positions per silence symbol: the mean interval value
  // (2^k - 1)/2 plus the silence itself.
  const double mean_positions =
      (std::pow(2.0, config_.profile.bits_per_interval) - 1.0) / 2.0 + 1.0;
  const double needed = silence_budget * mean_positions;
  const int count = static_cast<int>(
      std::ceil(needed / static_cast<double>(num_symbols)));
  return std::clamp(count, 1, kNumDataSubcarriers);
}

PacketReport CosSession::send_packet(
    std::span<const std::uint8_t> psdu,
    std::span<const std::uint8_t> control_bits) {
  PacketReport report;
  report.measured_snr_db = link_.measured_snr_db();

  const McsId mcs_id = config_.fixed_rate_mbps
                           ? McsId::for_rate(*config_.fixed_rate_mbps)
                           : McsId::for_snr(report.measured_snr_db);
  const Mcs& mcs = *mcs_id;
  report.mcs = mcs_id;

  // Control-message rate: lookup by measured SNR, or the lowest rate when
  // the previous feedback was lost (paper §III-F).
  int rm = config_.control_rate_override.value_or(
      select_control_rate(report.measured_snr_db));
  if (!config_.control_rate_override && !have_feedback_) {
    rm = std::min(rm, lowest_control_rate());
  }

  const int n_sym = symbols_for_psdu(psdu.size(), mcs);
  const double airtime = kPreambleDurationSec + kSignalDurationSec +
                         n_sym * kSymbolDurationSec;
  const int budget = silence_budget_for_packet(rm, airtime);

  // Bits the silence budget allows: budget silences close budget-1
  // intervals of k bits each. When the whole message fits, send it all —
  // the planner zero-pads a trailing partial interval itself.
  const auto k = static_cast<std::size_t>(config_.profile.bits_per_interval);
  const std::size_t budget_bits =
      budget > 1 ? (static_cast<std::size_t>(budget) - 1) * k : 0;
  const std::size_t bits_to_send =
      control_bits.size() <= budget_bits
          ? control_bits.size()
          : budget_bits / k * k;

  CosTxConfig tx_config(config_.profile, mcs_id);
  tx_config.control_subcarriers = control_subcarriers_;
  const bool batched = config_.phy_batch != nullptr && phy_batch_enabled();
  const CosTxPacket tx =
      batched ? cos_transmit(psdu, control_bits.first(bits_to_send),
                             tx_config, *config_.phy_batch)
              : cos_transmit(psdu, control_bits.first(bits_to_send),
                             tx_config);
  report.silences_sent = tx.plan.silence_count;
  report.control_bits_sent = tx.plan.bits_sent;

  const CxVec received = link_.send(tx.samples);
  link_.advance(tx.frame.airtime_sec());

  CosRxConfig rx_config = config_.profile;
  rx_config.control_subcarriers = control_subcarriers_;
  // Size the next packet's control grid for the budget the sender will
  // have once feedback exists (the full table rate) — not this packet's
  // possibly fallback-clamped budget, or the grid never grows out of the
  // bootstrap's tiny request.
  const int steady_rm = config_.control_rate_override.value_or(
      select_control_rate(report.measured_snr_db));
  rx_config.min_feedback_subcarriers = desired_control_subcarriers(
      silence_budget_for_packet(steady_rm, airtime), n_sym);
  report.rx = batched ? cos_receive(received, rx_config, std::nullopt,
                                    *config_.phy_batch)
                      : cos_receive(received, rx_config);
  report.data_ok = report.rx.data_ok;

  // Control accuracy: longest matching prefix of the sent control bits.
  const auto& decoded = report.rx.control_bits;
  std::size_t correct = 0;
  while (correct < report.control_bits_sent && correct < decoded.size() &&
         decoded[correct] == control_bits[correct]) {
    ++correct;
  }
  report.control_bits_correct = correct;
  report.control_ok = correct == report.control_bits_sent;

  // Feedback: a decoded packet lets the receiver return the next
  // selection; a failed packet means the sender hears nothing.
  if (report.data_ok) {
    have_feedback_ = true;
#if SILENCE_OBS_ON
    if (report.rx.evm_valid) {
      if (prev_evm_) {
        HEALTH_NABLA_EVM(obs::health::quantize(
            evm_change(*prev_evm_, report.rx.evm),
            obs::health::kNablaEvmScale));
      }
      prev_evm_ = report.rx.evm;
    }
#endif
    if (config_.use_selection_feedback) {
      // An empty selection means no subcarrier currently supports
      // reliable silence detection: CoS falls silent on the next packet
      // rather than corrupting the control channel. Selection keeps
      // being recomputed every decoded packet, so it recovers by itself.
      control_subcarriers_ = report.rx.next_control_subcarriers;
    }
  } else {
    have_feedback_ = false;
  }
  return report;
}

}  // namespace silence
