#include "core/control_framing.h"

#include <stdexcept>

namespace silence {

std::uint8_t crc8(std::span<const std::uint8_t> data) {
  std::uint8_t crc = 0;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x80U) ? static_cast<std::uint8_t>((crc << 1) ^ 0x07U)
                          : static_cast<std::uint8_t>(crc << 1);
    }
  }
  return crc;
}

std::size_t control_frame_bits(std::size_t payload_octets) {
  return kControlFrameOverheadBits + 8 * payload_octets;
}

Bits frame_control_message(std::span<const std::uint8_t> payload) {
  if (payload.empty() || payload.size() > kMaxControlPayloadOctets) {
    throw std::invalid_argument(
        "frame_control_message: payload must be 1..63 octets");
  }
  Bits bits = uint_to_bits(payload.size(), 6);
  for (std::uint8_t byte : payload) {
    const Bits b = uint_to_bits(byte, 8);
    bits.insert(bits.end(), b.begin(), b.end());
  }
  const Bits crc_bits = uint_to_bits(crc8(payload), 8);
  bits.insert(bits.end(), crc_bits.begin(), crc_bits.end());
  return bits;
}

std::optional<Bytes> parse_control_message(
    std::span<const std::uint8_t> bits) {
  if (bits.size() < kControlFrameOverheadBits + 8) return std::nullopt;
  const auto length = static_cast<std::size_t>(
      bits_to_uint(bits.first(6)));
  if (length == 0 || length > kMaxControlPayloadOctets) return std::nullopt;
  if (bits.size() < control_frame_bits(length)) return std::nullopt;

  Bytes payload(length);
  for (std::size_t i = 0; i < length; ++i) {
    payload[i] = static_cast<std::uint8_t>(
        bits_to_uint(bits.subspan(6 + 8 * i, 8)));
  }
  const auto received_crc = static_cast<std::uint8_t>(
      bits_to_uint(bits.subspan(6 + 8 * length, 8)));
  if (received_crc != crc8(payload)) return std::nullopt;
  return payload;
}

}  // namespace silence
