// Control-subcarrier selection and its feedback encoding (paper §III-D).
//
// The receiver predicts which data subcarriers will produce erroneous
// symbols in the next packet by comparing each subcarrier's EVM with half
// the minimum constellation distance D_m of the next packet's modulation;
// those subcarriers become control subcarriers, so silence symbols land
// where fading would have corrupted the data anyway. The selection is
// fed back as a one-OFDM-symbol bit vector where a silence on subcarrier
// j means "j is selected".
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "core/evm.h"
#include "phy/params.h"

namespace silence {

// Subcarriers with EVM > D_m/2 for `mod` (weakest first when choosing).
// When fewer than `min_count` qualify, the next-weakest subcarriers top
// the set up; the result never exceeds `max_count` and is returned in
// ascending subcarrier order — the canonical numbering both ends derive
// from the feedback vector, which conveys only the set.
//
// `detectable` (optional, 48 entries) restricts the candidates to
// subcarriers on which the energy detector can still discriminate
// silence from active symbols (see subcarrier_detectable()); without the
// restriction, the selection happily picks subcarriers so faded that
// every active symbol reads as silence.
std::vector<int> select_control_subcarriers(
    const SubcarrierEvm& evm, Modulation mod, int min_count,
    int max_count = kNumDataSubcarriers,
    std::span<const std::uint8_t> detectable = {});

// --- Feedback bit-vector codec ----------------------------------------
// One OFDM symbol conveys the 48-entry selection vector V: selected
// subcarriers are silenced in that symbol.

// Produces the mask row (48 entries) for the feedback symbol.
std::vector<std::uint8_t> encode_selection_vector(
    std::span<const int> selected);

// Recovers the selected subcarrier list (ascending) from a detected
// feedback mask row.
std::vector<int> decode_selection_vector(
    std::span<const std::uint8_t> mask_row);

// --- Robust (complement-coded) variant ---------------------------------
// One-symbol feedback is vulnerable to deep fades on the *reverse* link:
// a faded active subcarrier reads as silence and a spurious subcarrier
// enters the set, desynchronizing the two ends. The robust variant uses
// two OFDM symbols, the second carrying the complement pattern: a
// subcarrier counts as selected only when it reads silent in symbol 1
// AND active in symbol 2. A fade hits both symbols identically and
// produces the invalid (silent, silent) pattern, which is discarded.

// Mask rows for the two feedback symbols.
std::pair<std::vector<std::uint8_t>, std::vector<std::uint8_t>>
encode_selection_vector_robust(std::span<const int> selected);

// Decodes the two detected rows; fade-corrupted entries drop out.
std::vector<int> decode_selection_vector_robust(
    std::span<const std::uint8_t> row1, std::span<const std::uint8_t> row2);

}  // namespace silence
