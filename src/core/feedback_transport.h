// Transport of the subcarrier-selection feedback vector V on the ACK
// (paper §III-D): the selection rides as silence patterns in dedicated
// OFDM symbols appended after the ACK's data field, so the vector costs
// two trailer symbols (8 us) and never damages the ACK payload.
//
// The two symbols carry complement-coded patterns (see
// subcarrier_selection.h): a subcarrier is selected iff it reads silent
// in the first trailer symbol and active in the second, which makes the
// transport immune to reverse-link fades.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/energy_detector.h"
#include "dsp/fft.h"
#include "phy/receiver.h"

namespace silence {

inline constexpr int kFeedbackSymbols = 2;

// Appends the two feedback symbols to a modulated burst. `next_pilot_index`
// is the pilot sequence index after the burst's last data symbol (number
// of data symbols + 1, since SIGNAL uses index 0).
void append_selection_feedback(CxVec& samples, std::span<const int> selection,
                               int next_pilot_index);

// Recovers the selection from the burst's trailer symbols; nullopt when
// fewer than two trailer symbols arrived. `config.modulation` should be
// kBpsk — the filler content of the feedback symbols.
std::optional<std::vector<int>> decode_selection_feedback(
    const FrontEndResult& fe, const DetectorConfig& config = {});

}  // namespace silence
