// The CoS link layer: ties the 802.11a PHY chains to the CoS components.
//
// Transmit side (paper Fig. 8, "power controller"): build the standard
// frame, plan silence placement for the control message on the agreed
// control subcarriers, zero those grid points, emit samples.
//
// Receive side ("energy detector" + EVD): run the PHY front end, detect
// silences on the control subcarriers, decode the control message from
// the silence intervals, decode the data with the detected silences as
// erasures, and — when the CRC passes — compute per-subcarrier EVM and
// the control-subcarrier selection to feed back for the next packet.
//
// Configuration comes from one shared CosProfile (core/cos_profile.h).
// The per-side types below are thin views of it: CosTxConfig adds the
// data MCS the transmitter needs on top of the profile, and CosRxConfig
// is the profile itself (the detector tuning and feedback flooring live
// there). Both are plain values — nothing here holds a pointer.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/cos_profile.h"
#include "core/energy_detector.h"
#include "core/evm.h"
#include "core/interval_code.h"
#include "core/silence_plan.h"
#include "core/subcarrier_selection.h"
#include "phy/batch.h"
#include "phy/receiver.h"
#include "phy/transmitter.h"

namespace silence {

// TX-side view of a CosProfile: the shared profile plus the data MCS of
// this packet. (The detector fields ride along unused — the transmitter
// only reads the control grid, interval width and scrambler seed.)
struct CosTxConfig : CosProfile {
  McsId mcs;  // invalid when default-constructed; cos_transmit throws

  CosTxConfig() = default;
  CosTxConfig(const CosProfile& profile, McsId mcs_id)
      : CosProfile(profile), mcs(mcs_id) {}
};

// RX-side view: everything the receiver reads is already in the profile.
using CosRxConfig = CosProfile;

struct CosTxPacket {
  TxFrame frame;     // grid already has silences applied
  SilencePlan plan;  // ground truth placement
  CxVec samples;     // full burst
};

// Builds and modulates a data packet with `control_bits` embedded as
// silence intervals. The control message is truncated to what fits the
// control grid; `plan.bits_sent` reports the conveyed prefix.
CosTxPacket cos_transmit(std::span<const std::uint8_t> psdu,
                         std::span<const std::uint8_t> control_bits,
                         const CosTxConfig& config);
// Batched-engine variant: identical frame/plan/samples, with the data
// symbols modulated through the tiled IFFT kernel.
CosTxPacket cos_transmit(std::span<const std::uint8_t> psdu,
                         std::span<const std::uint8_t> control_bits,
                         const CosTxConfig& config, PhyBatch& batch);

struct CosRxPacket {
  // PHY results.
  FrontEndResult fe;
  DecodeResult decode;
  bool data_ok = false;
  Bytes psdu;
  // Control channel results.
  SilenceMask detected_mask;
  Bits control_bits;
  // Post-CRC channel analysis (only when data_ok).
  bool evm_valid = false;
  SubcarrierEvm evm{};
  std::vector<int> next_control_subcarriers;
};

// Receives a CoS burst. `next_mod` is the modulation expected for the
// next packet (used for the EVM > D_m/2 selection rule); when omitted the
// current packet's modulation is used. The workspace-taking overload
// reuses `ws` scratch for all steady-state symbol processing.
CosRxPacket cos_receive(std::span<const Cx> samples,
                        const CosRxConfig& config,
                        std::optional<Modulation> next_mod = std::nullopt);
CosRxPacket cos_receive(std::span<const Cx> samples,
                        const CosRxConfig& config,
                        std::optional<Modulation> next_mod, PhyWorkspace& ws);
// Batched-engine variant: bit-identical CosRxPacket (front end through
// the tiled FFTs, decode through the batch facade).
CosRxPacket cos_receive(std::span<const Cx> samples,
                        const CosRxConfig& config,
                        std::optional<Modulation> next_mod, PhyBatch& batch);

// Receives many independent CoS bursts sharing one config, grouped so
// the Viterbi runs lane-batched across packets. Each packet's bytes are
// identical to cos_receive on that burst alone; observability events
// interleave by phase rather than by packet (counter totals match).
std::vector<CosRxPacket> cos_receive_batch(
    std::span<const std::span<const Cx>> bursts, const CosRxConfig& config,
    std::optional<Modulation> next_mod, PhyBatch& batch);

// Reconstructs the transmitted constellation grid from a successfully
// decoded packet (re-mapping decoded bits through the transmit chain),
// for EVM computation. Requires decode.crc_ok.
SymbolGrid reconstruct_ideal_grid(const DecodeResult& decode, const Mcs& mcs);

}  // namespace silence
