// CoS interval modulation: control bits are conveyed by the lengths of the
// gaps between silence symbols (paper §II-A). Each gap of `interval`
// normal symbols encodes k bits with value == interval (k = 4 by default,
// so intervals range over [0, 15]); the first silence symbol marks the
// start of the message.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"

namespace silence {

inline constexpr int kDefaultBitsPerInterval = 4;

// Encodes `bits` into interval values. `bits.size()` must be a multiple
// of `bits_per_interval` (callers pad; control messages are short).
std::vector<int> bits_to_intervals(std::span<const std::uint8_t> bits,
                                   int bits_per_interval = kDefaultBitsPerInterval);

// Decodes interval values back to bits. Throws on intervals outside
// [0, 2^k - 1].
Bits intervals_to_bits(std::span<const int> intervals,
                       int bits_per_interval = kDefaultBitsPerInterval);

// Tolerant decode for the receive path: a missed silence symbol merges
// two gaps into one oversized interval, after which the remaining stream
// is unreliable — decoding stops at the first out-of-range interval.
Bits intervals_to_bits_tolerant(std::span<const int> intervals,
                                int bits_per_interval = kDefaultBitsPerInterval);

// Grid positions consumed by a message of these intervals: one start
// silence plus, per interval, `interval` normal symbols and the closing
// silence.
std::size_t grid_positions_needed(std::span<const int> intervals);

// Silence symbols used by a message of `n` intervals (n + 1).
std::size_t silence_count_for_intervals(std::size_t n_intervals);

// The largest whole number of intervals from `intervals` that fits into
// `grid_size` positions (message truncation under a small control grid).
std::size_t intervals_that_fit(std::span<const int> intervals,
                               std::size_t grid_size);

}  // namespace silence
