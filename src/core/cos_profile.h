// The single CoS configuration record (paper Fig. 8's shared TX/RX
// state): which data subcarriers carry the control channel, how many
// bits each silence interval encodes, how the receiver's energy detector
// is tuned, and the scrambler seed of the data frames.
//
// One CosProfile value is shared — by value, never by pointer — across
// every layer that used to carry its own copy of these fields:
// cos_transmit/cos_receive (core/cos_link.h, via thin per-side views),
// the closed-loop CosSession (sim/session.h), the replayable
// CosTrialSpec (sim/trial.h) and the network-scale net::Scenario
// (net/scenario.h). It round-trips through the strict JSON parser
// (runner/json.h), so flight-recorder specs and scenario files embed it
// verbatim and replay bit-identically.
#pragma once

#include <cstdint>
#include <vector>

#include "core/energy_detector.h"
#include "core/interval_code.h"
#include "runner/json.h"

namespace silence {

struct CosProfile {
  // Logical data-subcarrier indices (0..47) carrying the control
  // channel, in logical numbering order. Before any selection feedback
  // arrives this is the bootstrap set; the paper's Fig. 10(a) uses the
  // contiguous block [10..17].
  std::vector<int> control_subcarriers = {10, 11, 12, 13, 14, 15, 16, 17};
  // Bits per silence interval (k in the paper's interval code).
  int bits_per_interval = kDefaultBitsPerInterval;
  // Energy-detector tuning. `detector.modulation` is transient RX state
  // (it follows the packet's SIGNAL field) and is not serialized.
  DetectorConfig detector;
  // Scrambler seed of the data frames (802.11a SERVICE field).
  std::uint8_t scrambler_seed = 0x5D;
  // Minimum control subcarriers the receiver requests for the next
  // packet when computing selection feedback.
  int min_feedback_subcarriers = 6;

  // Strict-JSON round trip: from_json(to_json(p)) == p.
  runner::Json to_json() const;
  static CosProfile from_json(const runner::Json& json);

  friend bool operator==(const CosProfile&, const CosProfile&) = default;
};

}  // namespace silence
