// Symbol-level energy detection of silence symbols (paper §III-B/C).
//
// The receiver inspects the raw (unequalized) FFT magnitude of each
// control subcarrier: a silence symbol carries only noise, so its energy
// sits near the noise floor, while an active symbol also carries
// |H_k|^2 * |X|^2. The threshold sits above the pilot-aided noise-floor
// estimate; a threshold that is too high mistakes deep-faded active
// symbols for silences (false positives), one that is too low misses
// silences whose noise happens to spike (false negatives).
//
// Two threshold policies are provided:
//  * kNoiseMargin — one global threshold = margin * noise floor, the
//    paper's baseline scheme (used by the Fig. 10 sweeps);
//  * kPerSubcarrierMidpoint — the paper's "dynamic adjustment ... to
//    distinguish subcarrier with only noise from subcarrier with deep
//    fading signal": per subcarrier, the threshold moves to the geometric
//    midpoint between the noise floor and the weakest active symbol the
//    channel estimate predicts (|H_k|^2 times the modulation's inner-
//    point energy), never dropping below the noise-margin floor when the
//    subcarrier is strong.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "phy/params.h"
#include "phy/receiver.h"

namespace silence {

enum class ThresholdMode { kNoiseMargin, kPerSubcarrierMidpoint };

struct DetectorConfig {
  ThresholdMode mode = ThresholdMode::kNoiseMargin;
  // Noise-floor multiple used by kNoiseMargin and as the floor of the
  // midpoint policy. A silence symbol's bin energy is exponential with
  // mean eta, so margin m gives a miss probability of e^-m; 7x keeps it
  // under 1e-3 while leaving headroom for active symbols on detectable
  // subcarriers.
  double threshold_margin = 7.0;
  // When >= 0, overrides everything with an absolute frequency-domain
  // energy (used by the Fig. 10b threshold sweep).
  double fixed_threshold = -1.0;
  // Modulation of the data symbols (sets the inner-point energy for the
  // midpoint policy).
  Modulation modulation = Modulation::kQpsk;

  friend bool operator==(const DetectorConfig&,
                         const DetectorConfig&) = default;
};

// Effective energy threshold for logical data subcarrier `subcarrier`.
double detection_threshold(const DetectorConfig& config,
                           double noise_var_freq,
                           const std::array<Cx, kFftSize>& channel,
                           int subcarrier);

// One detector evaluation: the control cell visited and its quantized
// score (obs::health::quantize_score units — 1/256 of the threshold with
// the decision folded in, so score < 256 iff the cell was declared
// silent). Purely observational.
struct DetectionScore {
  std::uint32_t symbol;
  std::uint16_t subcarrier;
  std::uint64_t score_x256;
};
using DetectionScores = std::vector<DetectionScore>;

// Scans every data symbol of the front end and flags control-subcarrier
// positions whose bin energy falls below the threshold. Non-control
// subcarriers are never flagged. When `scores` is non-null it is filled
// with one entry per control cell in scan order (symbol-major); this
// never alters the decisions.
SilenceMask detect_silences(const FrontEndResult& fe,
                            std::span<const int> control_subcarriers,
                            const DetectorConfig& config = {},
                            DetectionScores* scores = nullptr);

// True when silence-vs-active discrimination is reliable on a subcarrier:
// the weakest active symbol clears the detection threshold with headroom.
// CoS must not select undetectable subcarriers as control subcarriers.
bool subcarrier_detectable(const DetectorConfig& config,
                           double noise_var_freq,
                           const std::array<Cx, kFftSize>& channel,
                           int subcarrier);

// Raw per-subcarrier bin energies |Y_k|^2 of one data symbol, logical
// data-subcarrier order (for diagnostics and the Fig. 10a snapshot).
std::vector<double> data_bin_energies(std::span<const Cx> bins64);

}  // namespace silence
