#include "core/control_rate.h"

#include <array>
#include <cmath>
#include <stdexcept>

namespace silence {
namespace {

// Calibrated with bench/fig09_capacity on the default indoor channel
// model (see EXPERIMENTS.md); conservative within each rate region so the
// PRR target holds across realizations. Shapes follow the paper's Fig. 9:
// R_m climbs with SNR inside a rate region, saturates at a code-redundancy
// bound, and the bounds shrink as modulation order / code rate grow.
constexpr std::array<ControlRatePoint, 12> kDefaultTable = {{
    {5.0, 30000},    // below QPSK 1/2 region: conservative floor
    {7.1, 90000},    // QPSK 1/2
    {8.3, 130000},
    {9.0, 148000},   // QPSK 1/2 redundancy bound (paper's max)
    {9.5, 60000},    // QPSK 3/4
    {11.0, 90000},
    {12.0, 55000},   // 16QAM 1/2
    {14.0, 80000},
    {15.5, 45000},   // 16QAM 3/4
    {18.0, 60000},
    {19.5, 40000},   // 64QAM 2/3
    {21.7, 33000},   // 64QAM 3/4 (paper's min R_m)
}};

}  // namespace

std::span<const ControlRatePoint> default_control_rate_table() {
  return kDefaultTable;
}

int select_control_rate(double measured_snr_db,
                        std::span<const ControlRatePoint> table) {
  if (table.empty()) {
    throw std::invalid_argument("select_control_rate: empty table");
  }
  int rate = table.front().rm;
  for (const auto& point : table) {
    if (measured_snr_db >= point.measured_snr_db) rate = point.rm;
  }
  return rate;
}

int lowest_control_rate(std::span<const ControlRatePoint> table) {
  if (table.empty()) {
    throw std::invalid_argument("lowest_control_rate: empty table");
  }
  int lowest = table.front().rm;
  for (const auto& point : table) lowest = std::min(lowest, point.rm);
  return lowest;
}

int silence_budget_for_packet(int rm, double airtime_sec) {
  if (rm < 0 || airtime_sec <= 0.0) {
    throw std::invalid_argument("silence_budget_for_packet: bad arguments");
  }
  return static_cast<int>(std::floor(rm * airtime_sec));
}

double control_bits_per_second(int rm, int bits_per_interval) {
  // Each silence symbol beyond the start marker closes one interval of
  // k bits; at steady state the marker cost vanishes per packet, so the
  // paper simply reports k * R_m (e.g. 33,000 * 4 = 132 kbps).
  return static_cast<double>(rm) * bits_per_interval;
}

}  // namespace silence
