// Integrity framing for control messages.
//
// The silence-interval stream has no built-in integrity: one detection
// slip corrupts every later bit of that packet's message, and the
// receiver cannot tell. Upper layers need to know *whether* the control
// message arrived intact (the paper leaves this to the applications).
// This framing gives them that for 17 bits of overhead:
//
//   [ 6-bit payload length in octets | payload octets | CRC-8 ]
//
// A receiver parses the decoded bit stream; on any mismatch it reports
// "no message" rather than delivering garbage. Each data packet carries
// at most one frame; retransmission policy is the caller's.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/bits.h"

namespace silence {

inline constexpr std::size_t kMaxControlPayloadOctets = 63;
inline constexpr std::size_t kControlFrameOverheadBits = 6 + 8;

// CRC-8 (polynomial 0x07, init 0) over a byte span.
std::uint8_t crc8(std::span<const std::uint8_t> data);

// Bits needed to carry a `payload_octets`-byte message.
std::size_t control_frame_bits(std::size_t payload_octets);

// Encodes a payload into the framed bit stream.
Bits frame_control_message(std::span<const std::uint8_t> payload);

// Parses the leading frame from a decoded control bit stream. Returns
// the payload when the length is plausible and the CRC matches; nullopt
// on truncation or corruption (bits beyond the frame are ignored).
std::optional<Bytes> parse_control_message(
    std::span<const std::uint8_t> bits);

}  // namespace silence
