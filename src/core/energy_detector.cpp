#include "core/energy_detector.h"

#include <cmath>
#include <stdexcept>

#include "obs/flight/flight.h"
#include "obs/health/health.h"
#include "obs/obs.h"
#include "phy/modulation.h"
#include "phy/ofdm.h"

namespace silence {
namespace {

double channel_gain(const std::array<Cx, kFftSize>& channel, int subcarrier) {
  if (subcarrier < 0 || subcarrier >= kNumDataSubcarriers) {
    throw std::invalid_argument("detector: subcarrier out of range");
  }
  const auto bins = data_subcarrier_bins();
  return std::norm(
      channel[static_cast<std::size_t>(bins[static_cast<std::size_t>(subcarrier)])]);
}

}  // namespace

double detection_threshold(const DetectorConfig& config,
                           double noise_var_freq,
                           const std::array<Cx, kFftSize>& channel,
                           int subcarrier) {
  if (config.fixed_threshold >= 0.0) return config.fixed_threshold;
  if (config.threshold_margin <= 0.0) {
    throw std::invalid_argument("detector: margin must be positive");
  }
  const double floor = config.threshold_margin * noise_var_freq;
  if (config.mode == ThresholdMode::kNoiseMargin) return floor;

  // Midpoint policy: aim between the noise floor and the predicted
  // weakest active-symbol energy on this subcarrier. On strong
  // subcarriers this raises the threshold (fewer missed silences); on
  // deep-faded ones it backs off below the floor rather than eat the
  // whole signal range, biasing decisions toward "active" (control
  // placement avoids such subcarriers via subcarrier_detectable()).
  const double weakest_active = channel_gain(channel, subcarrier) *
                                min_symbol_energy(config.modulation);
  const double midpoint = std::sqrt(floor * weakest_active);
  return std::min(std::max(midpoint, noise_var_freq), floor * 4.0);
}

SilenceMask detect_silences(const FrontEndResult& fe,
                            std::span<const int> control_subcarriers,
                            const DetectorConfig& config,
                            DetectionScores* scores) {
  OBS_SPAN("cos.detect");
  if (scores != nullptr) {
    scores->clear();
    scores->reserve(fe.data_bins.size() * control_subcarriers.size());
  }
  const auto bins = data_subcarrier_bins();
  SilenceMask mask(fe.data_bins.size(),
                   std::vector<std::uint8_t>(kNumDataSubcarriers, 0));
  std::vector<double> thresholds;
  thresholds.reserve(control_subcarriers.size());
  for (int sc : control_subcarriers) {
    if (sc < 0 || sc >= kNumDataSubcarriers) {
      throw std::invalid_argument("detector: subcarrier out of range");
    }
    thresholds.push_back(
        detection_threshold(config, fe.noise_var, fe.channel, sc));
  }
  [[maybe_unused]] std::uint64_t detected = 0;
  for (std::size_t s = 0; s < fe.data_bins.size(); ++s) {
    for (std::size_t c = 0; c < control_subcarriers.size(); ++c) {
      const int sc = control_subcarriers[c];
      const auto bin = static_cast<std::size_t>(
          bins[static_cast<std::size_t>(sc)]);
      const double e = std::norm(fe.data_bins[s][bin]);
      // Detection statistic in units of 1/256 of the threshold: scores
      // below 256 are silences. The fixed-point scaling keeps histogram
      // accumulation integral (deterministic merge at any thread count).
      OBS_HIST("cos.detector.score_x256",
               std::min(e / thresholds[c] * 256.0, 1e12));
      // Flight: the raw decision (a = bin energy, b = threshold,
      // u = 1 when declared silent), one event per control cell.
      FLIGHT_EVENT("det.score", s, sc, e, thresholds[c],
                   e < thresholds[c] ? 1 : 0);
      if (scores != nullptr) {
        scores->push_back({static_cast<std::uint32_t>(s),
                           static_cast<std::uint16_t>(sc),
                           obs::health::quantize_score(e, thresholds[c])});
      }
      if (e < thresholds[c]) {
        mask[s][static_cast<std::size_t>(sc)] = 1;
        ++detected;
      }
    }
  }
  OBS_COUNT_N("cos.silences_detected", detected);
  return mask;
}

bool subcarrier_detectable(const DetectorConfig& config,
                           double noise_var_freq,
                           const std::array<Cx, kFftSize>& channel,
                           int subcarrier) {
  const double weakest_active = channel_gain(channel, subcarrier) *
                                min_symbol_energy(config.modulation);
  // Calibrated against simulation (see tests/core/energy_detector_test):
  // with threshold 7*eta, the per-position false-positive probability
  // drops below ~1e-3 once the weakest active symbol energy reaches
  // ~28*eta (QPSK at 14.5 dB bin SNR, 16QAM at ~21 dB, 64QAM at ~26 dB).
  constexpr double kHeadroom = 4.0;
  return weakest_active >=
         kHeadroom * config.threshold_margin * noise_var_freq;
}

std::vector<double> data_bin_energies(std::span<const Cx> bins64) {
  if (bins64.size() != static_cast<std::size_t>(kFftSize)) {
    throw std::invalid_argument("data_bin_energies: need 64 bins");
  }
  std::vector<double> energies;
  energies.reserve(kNumDataSubcarriers);
  for (int bin : data_subcarrier_bins()) {
    energies.push_back(std::norm(bins64[static_cast<std::size_t>(bin)]));
  }
  return energies;
}

}  // namespace silence
