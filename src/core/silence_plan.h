// Placement of silence symbols on the (OFDM symbol x control subcarrier)
// grid. The grid is traversed slot-major: all control subcarriers of
// symbol i come before those of symbol i+1, with subcarriers visited in
// the logical order given by the control-subcarrier set (paper Fig. 1a).
#pragma once

#include <span>
#include <vector>

#include "common/bits.h"
#include "phy/receiver.h"

namespace silence {

struct SilencePlan {
  // Interval values actually encoded (message may be truncated to fit).
  std::vector<int> intervals;
  // Control bits actually conveyed.
  std::size_t bits_sent = 0;
  // Silence symbols placed.
  std::size_t silence_count = 0;
  // Mask over the full 48-subcarrier grid: mask[symbol][subcarrier].
  SilenceMask mask;
};

// Plans silence placement for `control_bits` over `num_symbols` OFDM
// symbols using `control_subcarriers` (logical data-subcarrier indices,
// 0..47, in their logical numbering order). Truncates the message to what
// fits. `bits_per_interval` is the paper's k.
SilencePlan plan_silences(std::span<const std::uint8_t> control_bits,
                          int num_symbols,
                          std::span<const int> control_subcarriers,
                          int bits_per_interval = 4);

// Applies a plan to a transmit grid: zeroes the planned points.
// `grid[symbol][subcarrier]` are the constellation points of the frame.
void apply_silences(SymbolGrid& grid, const SilenceMask& mask);

// Recovers interval values from a detected mask, walking the control grid
// in the same traversal order. Returns the gaps between consecutive
// detected silences (the first silence is the start marker).
std::vector<int> mask_to_intervals(const SilenceMask& mask,
                                   std::span<const int> control_subcarriers);

// Convenience: an empty all-normal mask for `num_symbols` symbols.
SilenceMask empty_mask(int num_symbols);

}  // namespace silence
