#include "core/interval_code.h"

#include <stdexcept>

#include "obs/flight/flight.h"
#include "obs/obs.h"

namespace silence {
namespace {

void check_k(int bits_per_interval) {
  if (bits_per_interval < 1 || bits_per_interval > 8) {
    throw std::invalid_argument("interval code: k must be in [1, 8]");
  }
}

}  // namespace

std::vector<int> bits_to_intervals(std::span<const std::uint8_t> bits,
                                   int bits_per_interval) {
  check_k(bits_per_interval);
  const auto k = static_cast<std::size_t>(bits_per_interval);
  if (bits.size() % k != 0) {
    throw std::invalid_argument(
        "bits_to_intervals: bit count not a multiple of k");
  }
  std::vector<int> intervals;
  intervals.reserve(bits.size() / k);
  for (std::size_t i = 0; i < bits.size(); i += k) {
    intervals.push_back(
        static_cast<int>(bits_to_uint(bits.subspan(i, k))));
  }
  OBS_COUNT_N("cos.intervals.encoded", intervals.size());
  return intervals;
}

Bits intervals_to_bits(std::span<const int> intervals,
                       int bits_per_interval) {
  check_k(bits_per_interval);
  const int max_value = (1 << bits_per_interval) - 1;
  Bits bits;
  bits.reserve(intervals.size() * static_cast<std::size_t>(bits_per_interval));
  for (int interval : intervals) {
    if (interval < 0 || interval > max_value) {
      throw std::invalid_argument("intervals_to_bits: interval out of range");
    }
    const Bits group =
        uint_to_bits(static_cast<std::uint64_t>(interval), bits_per_interval);
    bits.insert(bits.end(), group.begin(), group.end());
  }
  return bits;
}

Bits intervals_to_bits_tolerant(std::span<const int> intervals,
                                int bits_per_interval) {
  check_k(bits_per_interval);
  const int max_value = (1 << bits_per_interval) - 1;
  std::size_t valid = 0;
  while (valid < intervals.size() && intervals[valid] >= 0 &&
         intervals[valid] <= max_value) {
    ++valid;
  }
  OBS_COUNT_N("cos.intervals.decoded", valid);
  OBS_COUNT_N("cos.intervals.rejected", intervals.size() - valid);
  // Flight: how much of the interval stream survived the range check
  // (a = valid prefix length, b = total intervals seen).
  FLIGHT_EVENT("rx.interval_bits", obs::flight::kNoIndex,
               obs::flight::kNoIndex, valid, intervals.size(),
               valid * static_cast<std::size_t>(bits_per_interval));
  return intervals_to_bits(intervals.first(valid), bits_per_interval);
}

std::size_t grid_positions_needed(std::span<const int> intervals) {
  std::size_t positions = 1;  // the start silence symbol
  for (int interval : intervals) {
    positions += static_cast<std::size_t>(interval) + 1;
  }
  return positions;
}

std::size_t silence_count_for_intervals(std::size_t n_intervals) {
  return n_intervals + 1;
}

std::size_t intervals_that_fit(std::span<const int> intervals,
                               std::size_t grid_size) {
  if (grid_size == 0) return 0;
  std::size_t used = 1;
  std::size_t count = 0;
  for (int interval : intervals) {
    const std::size_t need = static_cast<std::size_t>(interval) + 1;
    if (used + need > grid_size) break;
    used += need;
    ++count;
  }
  return count;
}

}  // namespace silence
