// Per-subcarrier error vector magnitude (paper Eq. 1) and the temporal
// selectivity metric nabla-EVM (paper Eq. 2).
//
// EVM is computed after a packet passes CRC: the decoded bits are
// re-mapped to reconstruct the ideal constellation points, then each data
// subcarrier's RMS error vector is normalized by the constellation's mean
// energy. Silence symbols are excluded (paper §III-D).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "dsp/fft.h"
#include "phy/params.h"
#include "phy/receiver.h"
#include "phy/symbol_grid.h"

namespace silence {

using SubcarrierEvm = std::array<double, kNumDataSubcarriers>;

// EVM per data subcarrier. `received` and `ideal` are per-symbol grids
// of 48 points; `exclude` (optional) marks positions to skip (silences).
// Subcarriers with no usable symbols get EVM = 0.
SubcarrierEvm per_subcarrier_evm(const SymbolGrid& received,
                                 const SymbolGrid& ideal,
                                 Modulation mod,
                                 const SilenceMask* exclude = nullptr);

// nabla-EVM(tau) between two EVM snapshots (paper Eq. 2):
// ||D(t) - D(t+tau)|| / ||D(t+tau)||.
double evm_change(const SubcarrierEvm& at_t, const SubcarrierEvm& at_t_tau);

}  // namespace silence
