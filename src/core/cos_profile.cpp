#include "core/cos_profile.h"

#include <stdexcept>
#include <string>

namespace silence {

namespace {

const char* mode_name(ThresholdMode mode) {
  return mode == ThresholdMode::kNoiseMargin ? "noise_margin" : "midpoint";
}

ThresholdMode mode_from_name(const std::string& name) {
  if (name == "noise_margin") return ThresholdMode::kNoiseMargin;
  if (name == "midpoint") return ThresholdMode::kPerSubcarrierMidpoint;
  throw std::runtime_error("CosProfile: unknown threshold mode '" + name +
                           "'");
}

const runner::Json& require(const runner::Json& json, std::string_view key) {
  const runner::Json* value = json.find(key);
  if (value == nullptr) {
    throw std::runtime_error("CosProfile: missing field '" +
                             std::string(key) + "'");
  }
  return *value;
}

}  // namespace

runner::Json CosProfile::to_json() const {
  runner::Json root = runner::Json::object();
  runner::Json subcarriers = runner::Json::array();
  for (const int sc : control_subcarriers) subcarriers.push_back(sc);
  root.set("control_subcarriers", std::move(subcarriers));
  root.set("bits_per_interval", bits_per_interval);
  runner::Json det = runner::Json::object();
  det.set("mode", mode_name(detector.mode));
  det.set("threshold_margin", detector.threshold_margin);
  det.set("fixed_threshold", detector.fixed_threshold);
  root.set("detector", std::move(det));
  root.set("scrambler_seed", static_cast<std::int64_t>(scrambler_seed));
  root.set("min_feedback_subcarriers", min_feedback_subcarriers);
  return root;
}

CosProfile CosProfile::from_json(const runner::Json& json) {
  CosProfile profile;
  profile.control_subcarriers.clear();
  for (const auto& sc : require(json, "control_subcarriers").as_array()) {
    profile.control_subcarriers.push_back(static_cast<int>(sc.as_int()));
  }
  profile.bits_per_interval =
      static_cast<int>(require(json, "bits_per_interval").as_int());
  const runner::Json& det = require(json, "detector");
  profile.detector.mode = mode_from_name(require(det, "mode").as_string());
  profile.detector.threshold_margin =
      require(det, "threshold_margin").as_double();
  profile.detector.fixed_threshold =
      require(det, "fixed_threshold").as_double();
  profile.scrambler_seed =
      static_cast<std::uint8_t>(require(json, "scrambler_seed").as_int());
  profile.min_feedback_subcarriers =
      static_cast<int>(require(json, "min_feedback_subcarriers").as_int());
  return profile;
}

}  // namespace silence
