// Adaptive rate selection for control messages (paper §III-F): a lookup
// table maps the receiver's measured SNR to the maximum silence-symbol
// rate R_m (silence symbols per second) that keeps the packet reception
// rate at the target. The default table is the output of this repo's own
// Fig. 9 calibration (bench/fig09_capacity); callers can install a table
// measured under their own channel.
#pragma once

#include <span>
#include <vector>

#include "phy/params.h"

namespace silence {

struct ControlRatePoint {
  double measured_snr_db;
  int rm;  // max silence symbols per second at this SNR
};

// The paper's PRR target for "does not destroy the data packet".
inline constexpr double kTargetPrr = 0.993;

// Built-in calibration table (ascending SNR).
std::span<const ControlRatePoint> default_control_rate_table();

// R_m for a measured SNR: the table entry with the largest SNR not above
// `measured_snr_db`. Below the table, returns the lowest rate — the
// paper's fallback when no feedback arrives.
int select_control_rate(double measured_snr_db,
                        std::span<const ControlRatePoint> table =
                            default_control_rate_table());

// Lowest table rate (used after a lost feedback).
int lowest_control_rate(std::span<const ControlRatePoint> table =
                            default_control_rate_table());

// Converts a silence-symbol rate to a per-packet silence budget given the
// packet's airtime (frame-aggregated transmissions: packets back-to-back).
int silence_budget_for_packet(int rm, double airtime_sec);

// Control-message bit rate achieved by `rm` silence symbols per second
// with k bits per interval (each interval costs one silence symbol).
double control_bits_per_second(int rm, int bits_per_interval);

}  // namespace silence
