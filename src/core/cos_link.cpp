#include "core/cos_link.h"

#include <stdexcept>
#include <utility>

#include "core/interval_code.h"
#include "obs/flight/flight.h"
#include "obs/health/health.h"
#include "obs/obs.h"
#include "phy/modulation.h"

namespace silence {
namespace {

// Shared TX body: frame build + silence planning, everything except the
// final sample synthesis (which is where the scalar and batched paths
// diverge).
CosTxPacket build_cos_frame(std::span<const std::uint8_t> psdu,
                            std::span<const std::uint8_t> control_bits,
                            const CosTxConfig& config) {
  if (!config.mcs.valid()) {
    throw std::invalid_argument("cos_transmit: no MCS configured");
  }
  OBS_COUNT("cos.tx.packets");
  CosTxPacket packet;
  packet.frame = build_frame(psdu, *config.mcs, config.scrambler_seed);
  if (!config.control_subcarriers.empty() && !control_bits.empty()) {
    packet.plan =
        plan_silences(control_bits, packet.frame.num_symbols(),
                      config.control_subcarriers, config.bits_per_interval);
    apply_silences(packet.frame.data_grid, packet.plan.mask);
  } else {
    packet.plan.mask = empty_mask(packet.frame.num_symbols());
  }
  return packet;
}

}  // namespace

CosTxPacket cos_transmit(std::span<const std::uint8_t> psdu,
                         std::span<const std::uint8_t> control_bits,
                         const CosTxConfig& config) {
  OBS_SPAN("cos.tx");
  CosTxPacket packet = build_cos_frame(psdu, control_bits, config);
  packet.samples = frame_to_samples(packet.frame);
  return packet;
}

CosTxPacket cos_transmit(std::span<const std::uint8_t> psdu,
                         std::span<const std::uint8_t> control_bits,
                         const CosTxConfig& config, PhyBatch& batch) {
  OBS_SPAN("cos.tx");
  CosTxPacket packet = build_cos_frame(psdu, control_bits, config);
  packet.samples = frame_to_samples_batch(packet.frame, batch);
  return packet;
}

SymbolGrid reconstruct_ideal_grid(const DecodeResult& decode,
                                  const Mcs& mcs) {
  if (!decode.crc_ok) {
    throw std::invalid_argument("reconstruct_ideal_grid: CRC must pass");
  }
  TxFrame frame = build_frame(decode.psdu, mcs, decode.scrambler_seed);
  return std::move(frame.data_grid);
}

CosRxPacket cos_receive(std::span<const Cx> samples,
                        const CosRxConfig& config,
                        std::optional<Modulation> next_mod) {
  return cos_receive(samples, config, next_mod, default_phy_workspace());
}

namespace {

// Energy detection + interval decode on an already-run front end.
// Requires packet.fe.signal.
void detect_control_message(CosRxPacket& packet, const CosRxConfig& config) {
  const Mcs& mcs = *packet.fe.signal->mcs;

  // Energy detection locates silence symbols before demodulation
  // (paper Eq. 7: all silence symbols are marked first). The detector
  // needs the packet's modulation (known from SIGNAL) for its
  // per-subcarrier thresholds.
  DetectorConfig detector = config.detector;
  detector.modulation = mcs.modulation;
  packet.detected_mask =
      detect_silences(packet.fe, config.control_subcarriers, detector);

  // Control message: intervals between detected silences.
  {
    OBS_SPAN("cos.rx.intervals");
    const std::vector<int> intervals =
        mask_to_intervals(packet.detected_mask, config.control_subcarriers);
    packet.control_bits =
        intervals_to_bits_tolerant(intervals, config.bits_per_interval);
    HEALTH_COUNT(kDecodeRounds);
    HEALTH_COUNT_N(kIntervalsDetected, intervals.size());
    HEALTH_COUNT_N(kBitsDecoded, packet.control_bits.size());
  }
  OBS_COUNT_N("cos.control_bits_recovered", packet.control_bits.size());
  std::size_t detected_silences = 0;
  for (const auto& row : packet.detected_mask) {
    for (const auto cell : row) detected_silences += cell != 0;
  }
  FLIGHT_EVENT("cos.control", obs::flight::kNoIndex, obs::flight::kNoIndex,
               packet.control_bits.size(), detected_silences, 0);
}

// Post-decode analysis: CRC verdict, per-subcarrier EVM, next-packet
// control-subcarrier selection, health accounting. Requires
// packet.fe.signal and packet.decode already filled.
void analyze_decoded_packet(CosRxPacket& packet, const CosRxConfig& config,
                            std::optional<Modulation> next_mod) {
  const Mcs& mcs = *packet.fe.signal->mcs;
  packet.data_ok = packet.decode.crc_ok;
  packet.psdu = packet.decode.psdu;

  if (packet.data_ok) {
    OBS_COUNT("cos.rx.data_ok");
    OBS_SPAN("cos.rx.evm");
    const SymbolGrid ideal = reconstruct_ideal_grid(packet.decode, mcs);
    packet.evm = per_subcarrier_evm(packet.decode.eq_data, ideal,
                                    mcs.modulation, &packet.detected_mask);
    packet.evm_valid = true;
    // Next-packet selection: weak subcarriers, but only those on which
    // the detector can still tell silence from the next modulation's
    // weakest active symbol.
    const Modulation next = next_mod.value_or(mcs.modulation);
    DetectorConfig next_detector = config.detector;
    next_detector.modulation = next;
    std::vector<std::uint8_t> detectable(kNumDataSubcarriers, 0);
    for (int sc = 0; sc < kNumDataSubcarriers; ++sc) {
      detectable[static_cast<std::size_t>(sc)] = subcarrier_detectable(
          next_detector, packet.fe.noise_var, packet.fe.channel, sc);
    }
    packet.next_control_subcarriers = select_control_subcarriers(
        packet.evm, next, config.min_feedback_subcarriers,
        kNumDataSubcarriers, detectable);
#if SILENCE_OBS_ON
    // Health: post-CRC EVM waterfall plus the selection audit — how many
    // subcarriers the detector could discriminate on, and how many were
    // actually erroneous under the selection's own criterion (EVM above
    // half the next modulation's minimum constellation distance).
    const double half_dm = min_constellation_distance(next) / 2.0;
    std::uint64_t n_detectable = 0;
    std::uint64_t n_erroneous = 0;
    for (int sc = 0; sc < kNumDataSubcarriers; ++sc) {
      const double evm = packet.evm[static_cast<std::size_t>(sc)];
      HEALTH_WATERFALL(kEvm, sc,
                       obs::health::quantize(evm, obs::health::kEvmScale));
      n_detectable += detectable[static_cast<std::size_t>(sc)] != 0;
      n_erroneous += evm > half_dm;
    }
    HEALTH_COUNT(kSelectionRounds);
    HEALTH_COUNT_N(kSubcarriersSelected,
                   packet.next_control_subcarriers.size());
    HEALTH_COUNT_N(kSubcarriersDetectable, n_detectable);
    HEALTH_COUNT_N(kSubcarriersErroneous, n_erroneous);
#endif
  }
  // Sampled pid-3 counter tracks for armed traces; a relaxed-load no-op
  // otherwise. Per received packet, like the sim/net layer hooks.
  obs::health::maybe_trace_counters();
}

}  // namespace

CosRxPacket cos_receive(std::span<const Cx> samples,
                        const CosRxConfig& config,
                        std::optional<Modulation> next_mod, PhyWorkspace& ws) {
  OBS_SPAN("cos.rx");
  OBS_COUNT("cos.rx.packets");
  CosRxPacket packet;
  packet.fe = receiver_front_end(samples, ws);
  if (!packet.fe.signal) return packet;
  const Mcs& mcs = *packet.fe.signal->mcs;

  detect_control_message(packet, config);

  // Data decode with EVD over the detected mask.
  packet.decode =
      decode_data_symbols(packet.fe, mcs, packet.fe.signal->length_octets,
                          &packet.detected_mask, ws);
  analyze_decoded_packet(packet, config, next_mod);
  return packet;
}

CosRxPacket cos_receive(std::span<const Cx> samples,
                        const CosRxConfig& config,
                        std::optional<Modulation> next_mod, PhyBatch& batch) {
  OBS_SPAN("cos.rx");
  OBS_COUNT("cos.rx.packets");
  CosRxPacket packet;
  packet.fe = receiver_front_end_batch(samples, batch);
  if (!packet.fe.signal) return packet;
  const Mcs& mcs = *packet.fe.signal->mcs;

  detect_control_message(packet, config);
  packet.decode = decode_data_symbols_batch(
      packet.fe, mcs, packet.fe.signal->length_octets, &packet.detected_mask,
      batch);
  analyze_decoded_packet(packet, config, next_mod);
  return packet;
}

std::vector<CosRxPacket> cos_receive_batch(
    std::span<const std::span<const Cx>> bursts, const CosRxConfig& config,
    std::optional<Modulation> next_mod, PhyBatch& batch) {
  std::vector<CosRxPacket> out(bursts.size());
  if (bursts.empty()) return out;
  OBS_SPAN("cos.rx");

  // Phase 1: front end + silence detection per burst. The front-end
  // results must be stable before the grouped decode takes lane views,
  // and `out` is preallocated, so the pointers below don't move.
  std::vector<DecodeLane> lanes(bursts.size());
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    OBS_COUNT("cos.rx.packets");
    out[i].fe = receiver_front_end_batch(bursts[i], batch);
    if (!out[i].fe.signal) continue;
    detect_control_message(out[i], config);
    lanes[i].fe = &out[i].fe;
    lanes[i].mcs = &*out[i].fe.signal->mcs;
    lanes[i].length_octets = out[i].fe.signal->length_octets;
    lanes[i].silence = &out[i].detected_mask;
  }

  // Phase 2: grouped data decode, Viterbi lane-batched across packets.
  std::vector<DecodeResult> decodes(bursts.size());
  decode_data_symbols_batch(lanes, batch, decodes);

  // Phase 3: per-packet CRC/EVM/selection analysis.
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    if (!out[i].fe.signal) continue;
    out[i].decode = std::move(decodes[i]);
    analyze_decoded_packet(out[i], config, next_mod);
  }
  return out;
}

}  // namespace silence
