#include "core/subcarrier_selection.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "phy/modulation.h"

namespace silence {

std::vector<int> select_control_subcarriers(
    const SubcarrierEvm& evm, Modulation mod, int min_count, int max_count,
    std::span<const std::uint8_t> detectable) {
  if (min_count < 0 || max_count < min_count ||
      max_count > kNumDataSubcarriers) {
    throw std::invalid_argument("select_control_subcarriers: bad counts");
  }
  if (!detectable.empty() &&
      detectable.size() != static_cast<std::size_t>(kNumDataSubcarriers)) {
    throw std::invalid_argument(
        "select_control_subcarriers: detectable mask must have 48 entries");
  }
  std::vector<int> order(kNumDataSubcarriers);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&evm](int a, int b) {
    return evm[static_cast<std::size_t>(a)] > evm[static_cast<std::size_t>(b)];
  });

  const double half_dm = min_constellation_distance(mod) / 2.0;
  std::vector<int> selected;
  for (int sc : order) {
    if (!detectable.empty() && !detectable[static_cast<std::size_t>(sc)]) {
      continue;
    }
    const bool predicted_erroneous =
        evm[static_cast<std::size_t>(sc)] > half_dm;
    const bool still_topping_up =
        static_cast<int>(selected.size()) < min_count;
    if (!predicted_erroneous && !still_topping_up) break;
    if (static_cast<int>(selected.size()) >= max_count) break;
    selected.push_back(sc);
  }
  // Canonical ascending order: the feedback vector conveys only the SET
  // of selected subcarriers, so both ends must derive the same logical
  // numbering from it.
  std::sort(selected.begin(), selected.end());
  return selected;
}

std::vector<std::uint8_t> encode_selection_vector(
    std::span<const int> selected) {
  std::vector<std::uint8_t> row(kNumDataSubcarriers, 0);
  for (int sc : selected) {
    if (sc < 0 || sc >= kNumDataSubcarriers) {
      throw std::invalid_argument("encode_selection_vector: bad subcarrier");
    }
    row[static_cast<std::size_t>(sc)] = 1;
  }
  return row;
}

std::vector<int> decode_selection_vector(
    std::span<const std::uint8_t> mask_row) {
  if (mask_row.size() != static_cast<std::size_t>(kNumDataSubcarriers)) {
    throw std::invalid_argument("decode_selection_vector: need 48 entries");
  }
  std::vector<int> selected;
  for (int sc = 0; sc < kNumDataSubcarriers; ++sc) {
    if (mask_row[static_cast<std::size_t>(sc)]) selected.push_back(sc);
  }
  return selected;
}

std::pair<std::vector<std::uint8_t>, std::vector<std::uint8_t>>
encode_selection_vector_robust(std::span<const int> selected) {
  auto row1 = encode_selection_vector(selected);
  std::vector<std::uint8_t> row2(row1.size());
  for (std::size_t sc = 0; sc < row1.size(); ++sc) {
    row2[sc] = static_cast<std::uint8_t>(row1[sc] ^ 1U);
  }
  return {std::move(row1), std::move(row2)};
}

std::vector<int> decode_selection_vector_robust(
    std::span<const std::uint8_t> row1, std::span<const std::uint8_t> row2) {
  if (row1.size() != static_cast<std::size_t>(kNumDataSubcarriers) ||
      row2.size() != row1.size()) {
    throw std::invalid_argument(
        "decode_selection_vector_robust: need two 48-entry rows");
  }
  std::vector<int> selected;
  for (int sc = 0; sc < kNumDataSubcarriers; ++sc) {
    const auto idx = static_cast<std::size_t>(sc);
    // Selected = (silent, active). (silent, silent) is a fade, (active,
    // silent) a noise artefact; both are discarded.
    if (row1[idx] && !row2[idx]) selected.push_back(sc);
  }
  return selected;
}

}  // namespace silence
