#include "core/evm.h"

#include <cmath>
#include <stdexcept>

#include "phy/modulation.h"

namespace silence {

SubcarrierEvm per_subcarrier_evm(const SymbolGrid& received,
                                 const SymbolGrid& ideal,
                                 Modulation mod,
                                 const SilenceMask* exclude) {
  if (received.size() != ideal.size()) {
    throw std::invalid_argument("per_subcarrier_evm: symbol count mismatch");
  }
  if (exclude != nullptr && exclude->size() != received.size()) {
    throw std::invalid_argument("per_subcarrier_evm: mask size mismatch");
  }
  if (!received.empty() &&
      (received.width() != kNumDataSubcarriers ||
       ideal.width() != kNumDataSubcarriers)) {
    throw std::invalid_argument("per_subcarrier_evm: need 48 points");
  }
  // Mean constellation energy (1/M sum |s_m|^2); 1.0 for the normalized
  // 802.11a constellations but computed anyway for generality.
  double mean_energy = 0.0;
  const auto points = constellation(mod);
  for (const Cx& p : points) mean_energy += std::norm(p);
  mean_energy /= static_cast<double>(points.size());

  SubcarrierEvm evm{};
  std::array<double, kNumDataSubcarriers> error_sum{};
  std::array<int, kNumDataSubcarriers> count{};
  for (std::size_t s = 0; s < received.size(); ++s) {
    for (int j = 0; j < kNumDataSubcarriers; ++j) {
      const auto idx = static_cast<std::size_t>(j);
      if (exclude != nullptr && (*exclude)[s][idx]) continue;
      error_sum[idx] += std::norm(received[s][idx] - ideal[s][idx]);
      ++count[idx];
    }
  }
  for (int j = 0; j < kNumDataSubcarriers; ++j) {
    const auto idx = static_cast<std::size_t>(j);
    if (count[idx] == 0) continue;
    evm[idx] = std::sqrt(error_sum[idx] / count[idx] / mean_energy);
  }
  return evm;
}

double evm_change(const SubcarrierEvm& at_t, const SubcarrierEvm& at_t_tau) {
  double diff = 0.0;
  double ref = 0.0;
  for (int j = 0; j < kNumDataSubcarriers; ++j) {
    const auto idx = static_cast<std::size_t>(j);
    const double d = at_t[idx] - at_t_tau[idx];
    diff += d * d;
    ref += at_t_tau[idx] * at_t_tau[idx];
  }
  if (ref <= 0.0) return 0.0;
  return std::sqrt(diff) / std::sqrt(ref);
}

}  // namespace silence
