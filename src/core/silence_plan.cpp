#include "core/silence_plan.h"

#include <stdexcept>

#include "core/interval_code.h"
#include "obs/flight/flight.h"
#include "obs/health/health.h"
#include "obs/obs.h"
#include "phy/params.h"

namespace silence {
namespace {

void check_subcarriers(std::span<const int> control_subcarriers) {
  if (control_subcarriers.empty()) {
    throw std::invalid_argument("silence plan: no control subcarriers");
  }
  for (int sc : control_subcarriers) {
    if (sc < 0 || sc >= kNumDataSubcarriers) {
      throw std::invalid_argument("silence plan: subcarrier out of range");
    }
  }
}

}  // namespace

SilenceMask empty_mask(int num_symbols) {
  return SilenceMask(
      static_cast<std::size_t>(num_symbols),
      std::vector<std::uint8_t>(kNumDataSubcarriers, 0));
}

SilencePlan plan_silences(std::span<const std::uint8_t> control_bits,
                          int num_symbols,
                          std::span<const int> control_subcarriers,
                          int bits_per_interval) {
  check_subcarriers(control_subcarriers);
  SilencePlan plan;
  plan.mask = empty_mask(num_symbols);
  if (num_symbols <= 0) return plan;

  // Pad the message to a whole number of intervals with zero bits.
  Bits padded(control_bits.begin(), control_bits.end());
  while (padded.size() % static_cast<std::size_t>(bits_per_interval) != 0) {
    padded.push_back(0);
  }
  std::vector<int> all_intervals =
      bits_to_intervals(padded, bits_per_interval);

  const std::size_t grid_size =
      static_cast<std::size_t>(num_symbols) * control_subcarriers.size();
  const std::size_t fit = intervals_that_fit(all_intervals, grid_size);
  all_intervals.resize(fit);
  plan.intervals = all_intervals;
  plan.bits_sent = std::min(
      control_bits.size(),
      fit * static_cast<std::size_t>(bits_per_interval));
  if (fit == 0 && grid_size == 0) return plan;

  // Walk the grid slot-major, dropping silences at the start and after
  // each interval's worth of normal symbols.
  const auto n_ctrl = control_subcarriers.size();
  const auto place = [&](std::size_t position) {
    const std::size_t symbol = position / n_ctrl;
    const auto sc = static_cast<std::size_t>(
        control_subcarriers[position % n_ctrl]);
    plan.mask[symbol][sc] = 1;
    ++plan.silence_count;
    // Flight: the ground-truth TX plan (u = slot-major grid position).
    FLIGHT_EVENT("plan.silence", symbol, sc, 0.0, 0.0, position);
  };

  std::size_t position = 0;
  place(position);
  for (int interval : plan.intervals) {
    position += static_cast<std::size_t>(interval) + 1;
    place(position);
  }
  FLIGHT_EVENT("plan.summary", obs::flight::kNoIndex, obs::flight::kNoIndex,
               plan.bits_sent, plan.intervals.size(), plan.silence_count);
  OBS_COUNT("cos.plans");
  OBS_COUNT_N("cos.silences_planned", plan.silence_count);
  OBS_COUNT_N("cos.control_bits_sent", plan.bits_sent);
  HEALTH_COUNT(kPlans);
  HEALTH_COUNT_N(kIntervalsPlanned, plan.intervals.size());
  HEALTH_COUNT_N(kSilencesPlanned, plan.silence_count);
  HEALTH_COUNT_N(kBitsPlanned, plan.bits_sent);
  return plan;
}

void apply_silences(SymbolGrid& grid, const SilenceMask& mask) {
  if (grid.size() != mask.size()) {
    throw std::invalid_argument("apply_silences: mask/grid size mismatch");
  }
  for (std::size_t s = 0; s < grid.size(); ++s) {
    const auto row = grid[s];
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (mask[s][c]) row[c] = Cx{0.0, 0.0};
    }
  }
}

std::vector<int> mask_to_intervals(const SilenceMask& mask,
                                   std::span<const int> control_subcarriers) {
  if (control_subcarriers.empty()) return {};  // no control channel
  check_subcarriers(control_subcarriers);
  const auto n_ctrl = control_subcarriers.size();
  std::vector<std::size_t> silence_positions;
  for (std::size_t s = 0; s < mask.size(); ++s) {
    for (std::size_t c = 0; c < n_ctrl; ++c) {
      const auto sc = static_cast<std::size_t>(control_subcarriers[c]);
      if (mask[s][sc]) {
        silence_positions.push_back(s * n_ctrl + c);
      }
    }
  }
  std::vector<int> intervals;
  if (silence_positions.size() < 2) return intervals;
  intervals.reserve(silence_positions.size() - 1);
  for (std::size_t i = 1; i < silence_positions.size(); ++i) {
    const std::size_t pos = silence_positions[i];
    const int interval = static_cast<int>(
        pos - silence_positions[i - 1] - 1);
    // Flight: each decoded interval, anchored at the silence that closes
    // it (a = interval value, u = slot-major grid position).
    FLIGHT_EVENT("rx.interval", pos / n_ctrl,
                 control_subcarriers[pos % n_ctrl], interval, 0.0, pos);
    intervals.push_back(interval);
  }
  return intervals;
}

}  // namespace silence
