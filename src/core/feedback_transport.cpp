#include "core/feedback_transport.h"

#include <array>

#include "core/subcarrier_selection.h"
#include "phy/ofdm.h"
#include "phy/params.h"

namespace silence {
namespace {

// Filler for active positions of a feedback symbol: full-power BPSK ones,
// so every non-silenced subcarrier is maximally detectable.
void feedback_symbol_points_into(std::span<const std::uint8_t> silence_row,
                                 std::span<Cx> points) {
  for (int sc = 0; sc < kNumDataSubcarriers; ++sc) {
    points[static_cast<std::size_t>(sc)] =
        silence_row[static_cast<std::size_t>(sc)] ? Cx{0.0, 0.0}
                                                  : Cx{1.0, 0.0};
  }
}

}  // namespace

void append_selection_feedback(CxVec& samples, std::span<const int> selection,
                               int next_pilot_index) {
  const auto [row1, row2] = encode_selection_vector_robust(selection);
  const std::size_t base = samples.size();
  samples.resize(base + static_cast<std::size_t>(kFeedbackSymbols) *
                            static_cast<std::size_t>(kSymbolSamples));
  std::array<Cx, kNumDataSubcarriers> points;
  std::array<Cx, kFftSize> bins;
  for (int i = 0; i < kFeedbackSymbols; ++i) {
    feedback_symbol_points_into(i == 0 ? row1 : row2, points);
    assemble_frequency_bins_into(points, next_pilot_index + i, bins);
    bins_to_time_into(
        bins, std::span(samples).subspan(
                  base + static_cast<std::size_t>(i) *
                             static_cast<std::size_t>(kSymbolSamples),
                  kSymbolSamples));
  }
}

std::optional<std::vector<int>> decode_selection_feedback(
    const FrontEndResult& fe, const DetectorConfig& config) {
  if (fe.trailer_bins.size() < static_cast<std::size_t>(kFeedbackSymbols)) {
    return std::nullopt;
  }
  // Reuse the silence detector over the trailer symbols.
  FrontEndResult trailer_fe;
  trailer_fe.channel = fe.channel;
  trailer_fe.noise_var = fe.noise_var;
  trailer_fe.data_bins.reserve(kFeedbackSymbols);
  for (int i = 0; i < kFeedbackSymbols; ++i) {
    trailer_fe.data_bins.push_back(
        fe.trailer_bins[static_cast<std::size_t>(i)]);
  }
  std::vector<int> all(kNumDataSubcarriers);
  for (int sc = 0; sc < kNumDataSubcarriers; ++sc) {
    all[static_cast<std::size_t>(sc)] = sc;
  }
  DetectorConfig detector = config;
  detector.modulation = Modulation::kBpsk;
  const SilenceMask detected = detect_silences(trailer_fe, all, detector);
  return decode_selection_vector_robust(detected[0], detected[1]);
}

}  // namespace silence
