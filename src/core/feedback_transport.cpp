#include "core/feedback_transport.h"

#include "core/subcarrier_selection.h"
#include "phy/ofdm.h"
#include "phy/params.h"

namespace silence {
namespace {

// Filler for active positions of a feedback symbol: full-power BPSK ones,
// so every non-silenced subcarrier is maximally detectable.
CxVec feedback_symbol_points(std::span<const std::uint8_t> silence_row) {
  CxVec points(kNumDataSubcarriers, Cx{1.0, 0.0});
  for (int sc = 0; sc < kNumDataSubcarriers; ++sc) {
    if (silence_row[static_cast<std::size_t>(sc)]) {
      points[static_cast<std::size_t>(sc)] = Cx{0.0, 0.0};
    }
  }
  return points;
}

}  // namespace

void append_selection_feedback(CxVec& samples, std::span<const int> selection,
                               int next_pilot_index) {
  const auto [row1, row2] = encode_selection_vector_robust(selection);
  for (int i = 0; i < kFeedbackSymbols; ++i) {
    const CxVec points = feedback_symbol_points(i == 0 ? row1 : row2);
    const CxVec bins =
        assemble_frequency_bins(points, next_pilot_index + i);
    const CxVec time = bins_to_time(bins);
    samples.insert(samples.end(), time.begin(), time.end());
  }
}

std::optional<std::vector<int>> decode_selection_feedback(
    const FrontEndResult& fe, const DetectorConfig& config) {
  if (fe.trailer_bins.size() < static_cast<std::size_t>(kFeedbackSymbols)) {
    return std::nullopt;
  }
  // Reuse the silence detector over the trailer symbols.
  FrontEndResult trailer_fe;
  trailer_fe.channel = fe.channel;
  trailer_fe.noise_var = fe.noise_var;
  trailer_fe.data_bins.assign(fe.trailer_bins.begin(),
                              fe.trailer_bins.begin() + kFeedbackSymbols);
  std::vector<int> all(kNumDataSubcarriers);
  for (int sc = 0; sc < kNumDataSubcarriers; ++sc) {
    all[static_cast<std::size_t>(sc)] = sc;
  }
  DetectorConfig detector = config;
  detector.modulation = Modulation::kBpsk;
  const SilenceMask detected = detect_silences(trailer_fe, all, detector);
  return decode_selection_vector_robust(detected[0], detected[1]);
}

}  // namespace silence
