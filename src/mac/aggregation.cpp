#include "mac/aggregation.h"

#include <stdexcept>

namespace silence {

Bytes aggregate_mpdus(std::span<const Bytes> mpdus) {
  if (mpdus.empty()) {
    throw std::invalid_argument("aggregate_mpdus: no subframes");
  }
  Bytes psdu;
  for (const Bytes& mpdu : mpdus) {
    if (mpdu.empty() || mpdu.size() > 0xFFFF) {
      throw std::invalid_argument("aggregate_mpdus: bad MPDU size");
    }
    const auto len = static_cast<std::uint16_t>(mpdu.size());
    psdu.push_back(static_cast<std::uint8_t>(len & 0xFFU));
    psdu.push_back(static_cast<std::uint8_t>(len >> 8));
    psdu.push_back(static_cast<std::uint8_t>(~len & 0xFFU));
    psdu.push_back(static_cast<std::uint8_t>((~len >> 8) & 0xFFU));
    psdu.insert(psdu.end(), mpdu.begin(), mpdu.end());
    if (psdu.size() > kMaxAggregateOctets) {
      throw std::invalid_argument("aggregate_mpdus: aggregate too large");
    }
  }
  return psdu;
}

std::vector<DeaggregatedMpdu> deaggregate_mpdus(
    std::span<const std::uint8_t> psdu) {
  std::vector<DeaggregatedMpdu> out;
  std::size_t offset = 0;
  while (offset + kDelimiterOctets <= psdu.size()) {
    const auto len = static_cast<std::uint16_t>(
        psdu[offset] | (psdu[offset + 1] << 8));
    const auto complement = static_cast<std::uint16_t>(
        psdu[offset + 2] | (psdu[offset + 3] << 8));
    const bool delimiter_ok =
        static_cast<std::uint16_t>(~len) == complement && len > 0;
    if (!delimiter_ok || offset + kDelimiterOctets + len > psdu.size()) {
      // Lost sync: everything after a corrupt delimiter is unreachable.
      break;
    }
    DeaggregatedMpdu sub;
    sub.delimiter_ok = true;
    sub.mpdu.assign(psdu.begin() + static_cast<std::ptrdiff_t>(
                                       offset + kDelimiterOctets),
                    psdu.begin() + static_cast<std::ptrdiff_t>(
                                       offset + kDelimiterOctets + len));
    out.push_back(std::move(sub));
    offset += kDelimiterOctets + len;
  }
  return out;
}

std::size_t max_mpdus_per_aggregate(std::size_t mpdu_octets) {
  if (mpdu_octets == 0) return 0;
  return kMaxAggregateOctets / (kDelimiterOctets + mpdu_octets);
}

}  // namespace silence
