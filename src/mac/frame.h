// Minimal 802.11-flavoured MAC framing for the coordination experiments:
// a compact header (type, addresses, sequence, duration, piggybacked
// queue length) followed by the payload, FCS-protected as a PSDU.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/bits.h"

namespace silence {

enum class FrameType : std::uint8_t {
  kData = 0,
  kAck = 1,
  kPoll = 2,    // explicit CF-POLL-style control frame (baseline)
  kBeacon = 3,
};

struct MacFrame {
  FrameType type = FrameType::kData;
  std::uint8_t src = 0;
  std::uint8_t dst = 0;
  std::uint16_t seq = 0;
  // Explicit piggyback field used by the baseline design; the CoS design
  // moves this information into silence intervals instead.
  std::uint16_t queue_len = 0;
  Bytes payload;
};

inline constexpr std::size_t kMacHeaderOctets = 8;
inline constexpr std::size_t kMacOverheadOctets =
    kMacHeaderOctets + 4;  // header + FCS

// Serializes to a PSDU (header + payload + FCS).
Bytes serialize_frame(const MacFrame& frame);

// Parses a PSDU; nullopt when the FCS fails or the PSDU is too short.
std::optional<MacFrame> parse_frame(std::span<const std::uint8_t> psdu);

}  // namespace silence
