#include "mac/frame.h"

#include "common/crc32.h"

namespace silence {

Bytes serialize_frame(const MacFrame& frame) {
  Bytes psdu;
  psdu.reserve(kMacOverheadOctets + frame.payload.size());
  psdu.push_back(static_cast<std::uint8_t>(frame.type));
  psdu.push_back(frame.src);
  psdu.push_back(frame.dst);
  psdu.push_back(static_cast<std::uint8_t>(frame.seq & 0xFFU));
  psdu.push_back(static_cast<std::uint8_t>(frame.seq >> 8));
  psdu.push_back(static_cast<std::uint8_t>(frame.queue_len & 0xFFU));
  psdu.push_back(static_cast<std::uint8_t>(frame.queue_len >> 8));
  psdu.push_back(0);  // reserved
  psdu.insert(psdu.end(), frame.payload.begin(), frame.payload.end());
  append_fcs(psdu);
  return psdu;
}

std::optional<MacFrame> parse_frame(std::span<const std::uint8_t> psdu) {
  if (psdu.size() < kMacOverheadOctets || !check_fcs(psdu)) {
    return std::nullopt;
  }
  if (psdu[0] > static_cast<std::uint8_t>(FrameType::kBeacon)) {
    return std::nullopt;
  }
  MacFrame frame;
  frame.type = static_cast<FrameType>(psdu[0]);
  frame.src = psdu[1];
  frame.dst = psdu[2];
  frame.seq = static_cast<std::uint16_t>(psdu[3] | (psdu[4] << 8));
  frame.queue_len = static_cast<std::uint16_t>(psdu[5] | (psdu[6] << 8));
  frame.payload.assign(psdu.begin() + kMacHeaderOctets, psdu.end() - 4);
  return frame;
}

}  // namespace silence
