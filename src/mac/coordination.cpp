#include "mac/coordination.h"

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/cos_link.h"
#include "mac/timing.h"
#include "phy/receiver.h"
#include "sim/session.h"

namespace silence {
namespace {

// The grant message the AP embeds (or polls with): 4-bit station id plus
// 8-bit backlog hint, padded to whole k=4 intervals.
Bits encode_grant(int station_id, int backlog) {
  Bits bits = uint_to_bits(static_cast<std::uint64_t>(station_id), 4);
  const Bits extra = uint_to_bits(
      static_cast<std::uint64_t>(std::min(backlog, 255)), 8);
  bits.insert(bits.end(), extra.begin(), extra.end());
  return bits;
}

std::optional<int> decode_grant(const Bits& bits, int num_stations) {
  if (bits.size() < 12) return std::nullopt;
  const int id = static_cast<int>(bits_to_uint(std::span(bits).first(4)));
  if (id < 0 || id >= num_stations) return std::nullopt;
  return id;
}

struct StationState {
  std::unique_ptr<Link> downlink;   // AP -> station (CoS rides here)
  std::unique_ptr<Link> uplink;     // station -> AP
  std::unique_ptr<CosSession> cos;  // AP's CoS sender toward this station
};

}  // namespace

CoordinationResult run_coordination(const CoordinationConfig& config) {
  if (config.num_stations < 1) {
    throw std::invalid_argument("run_coordination: need >= 1 station");
  }
  if (config.mode == CoordinationMode::kDcfContention) {
    // No coordination: AP + stations contend; map the result onto the
    // coordination report (the AP's share is "downlink", the rest
    // "uplink").
    ContentionConfig contention;
    contention.num_stations = config.num_stations + 1;
    contention.payload_octets = config.downlink_octets;
    contention.duration_us = config.duration_us;
    contention.measured_snr_db = config.measured_snr_db;
    contention.seed = config.seed;
    const ContentionResult dcf = run_dcf_contention(contention);
    CoordinationResult result;
    result.airtime = dcf.airtime;
    result.elapsed_us = dcf.elapsed_us;
    // Winners are uniform across contenders; attribute 1/(N+1) of the
    // delivered bits to the AP.
    result.downlink_bits =
        dcf.payload_bits / static_cast<std::size_t>(config.num_stations + 1);
    result.uplink_bits = dcf.payload_bits - result.downlink_bits;
    return result;
  }

  Rng rng(config.seed);
  std::vector<StationState> stations(
      static_cast<std::size_t>(config.num_stations));
  for (std::size_t i = 0; i < stations.size(); ++i) {
    LinkConfig down;
    down.snr_db = config.measured_snr_db;
    down.snr_is_measured = true;
    down.channel_seed = config.seed * 211 + i;
    down.noise_seed = config.seed * 223 + i;
    stations[i].downlink = std::make_unique<Link>(down);
    LinkConfig up = down;
    up.channel_seed = config.seed * 227 + i;  // independent uplink fading
    up.noise_seed = config.seed * 229 + i;
    stations[i].uplink = std::make_unique<Link>(up);
    SessionConfig session_config;
    stations[i].cos = std::make_unique<CosSession>(*stations[i].downlink,
                                                   session_config);
  }

  CoordinationResult result;
  double now_us = 0.0;
  int round_robin = 0;
  const Mcs& mcs = select_mcs_by_snr(config.measured_snr_db);
  const double down_us =
      psdu_airtime_us(config.downlink_octets + kMacOverheadOctets, mcs);
  const double up_us =
      psdu_airtime_us(config.uplink_octets + kMacOverheadOctets, mcs);

  while (now_us < config.duration_us) {
    const int grantee = round_robin;
    round_robin = (round_robin + 1) % config.num_stations;
    StationState& station =
        stations[static_cast<std::size_t>(grantee)];

    // --- downlink data frame (carries the CoS grant in kCosGrant) ---
    now_us += kDifsUs;
    result.airtime.idle_us += kDifsUs;

    MacFrame down_frame;
    down_frame.type = FrameType::kData;
    down_frame.src = 0;
    down_frame.dst = static_cast<std::uint8_t>(grantee + 1);
    down_frame.payload = rng.bytes(config.downlink_octets);
    const Bytes down_psdu = serialize_frame(down_frame);

    bool downlink_ok = false;
    bool grant_delivered = false;
    ++result.grants_issued;

    if (config.mode == CoordinationMode::kCosGrant) {
      const Bits grant = encode_grant(grantee, config.num_stations);
      const PacketReport report = station.cos->send_packet(down_psdu, grant);
      downlink_ok = report.data_ok;
      grant_delivered =
          report.data_ok && report.control_ok && report.control_bits_sent >= 12 &&
          decode_grant(report.rx.control_bits, config.num_stations) == grantee;
    } else {
      const CxVec samples = frame_to_samples(build_frame(down_psdu, mcs));
      const RxPacket packet =
          receive_packet(station.downlink->send(samples));
      station.downlink->advance(1e-6 * down_us);
      downlink_ok = packet.ok;
    }
    now_us += down_us + kSifsUs + ack_airtime_us();
    result.airtime.data_us += down_us;
    result.airtime.ack_us += ack_airtime_us();
    result.airtime.idle_us += kSifsUs;
    if (downlink_ok) result.downlink_bits += 8 * config.downlink_octets;

    // --- coordination step ---
    if (config.mode == CoordinationMode::kExplicitPoll) {
      // An explicit poll frame buys the grant with airtime.
      now_us += kSifsUs + poll_airtime_us();
      result.airtime.idle_us += kSifsUs;
      result.airtime.control_us += poll_airtime_us();
      grant_delivered = downlink_ok;  // poll assumed robust (basic rate)
    }

    // --- granted uplink ---
    if (grant_delivered) {
      MacFrame up_frame;
      up_frame.type = FrameType::kData;
      up_frame.src = static_cast<std::uint8_t>(grantee + 1);
      up_frame.dst = 0;
      up_frame.payload = rng.bytes(config.uplink_octets);
      const Bytes up_psdu = serialize_frame(up_frame);
      const CxVec samples = frame_to_samples(build_frame(up_psdu, mcs));
      const RxPacket packet = receive_packet(station.uplink->send(samples));
      station.uplink->advance(1e-6 * up_us);

      now_us += kSifsUs + up_us + kSifsUs + ack_airtime_us();
      result.airtime.idle_us += 2.0 * kSifsUs;
      result.airtime.data_us += up_us;
      result.airtime.ack_us += ack_airtime_us();
      if (packet.ok) result.uplink_bits += 8 * config.uplink_octets;
    } else {
      ++result.grants_lost;
    }
  }

  result.elapsed_us = now_us;
  return result;
}

}  // namespace silence
