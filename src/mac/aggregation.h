// A-MPDU-style frame aggregation (the paper's measurement method notes
// "the frame aggregation scheme is adopted"): several MPDUs share one
// PPDU, each delimited and independently CRC-protected so a symbol error
// burst only costs the touched subframes (block-ACK semantics). Longer
// PPDUs also mean a larger CoS control grid per transmission.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"

namespace silence {

// Delimiter: 2-byte length + 2-byte length complement (a cheap integrity
// check in the spirit of the A-MPDU delimiter CRC).
inline constexpr std::size_t kDelimiterOctets = 4;

// Maximum PSDU the PHY accepts (SIGNAL length field is 12 bits).
inline constexpr std::size_t kMaxAggregateOctets = 4095;

// Aggregates MPDUs (each already FCS-protected) into one PSDU. Throws if
// the total exceeds kMaxAggregateOctets or any MPDU is empty/oversized.
Bytes aggregate_mpdus(std::span<const Bytes> mpdus);

struct DeaggregatedMpdu {
  Bytes mpdu;
  bool delimiter_ok = false;  // length/complement matched
};

// Splits an aggregate back into subframes. Scans forward; a corrupt
// delimiter ends the scan (remaining subframes are lost), matching real
// A-MPDU behaviour.
std::vector<DeaggregatedMpdu> deaggregate_mpdus(
    std::span<const std::uint8_t> psdu);

// How many MPDUs of `mpdu_octets` fit into one aggregate.
std::size_t max_mpdus_per_aggregate(std::size_t mpdu_octets);

}  // namespace silence
