// 802.11a MAC timing constants and airtime arithmetic.
#pragma once

#include <cstddef>

#include "phy/params.h"
#include "phy/transmitter.h"

namespace silence {

inline constexpr double kSifsUs = 16.0;
inline constexpr double kSlotUs = 9.0;
inline constexpr double kDifsUs = kSifsUs + 2.0 * kSlotUs;  // 34 us
inline constexpr int kCwMin = 15;
inline constexpr int kCwMax = 1023;
inline constexpr int kRetryLimit = 7;

// Idle time before the smallest pending backoff counter of `slots`
// expires: the DIFS deference plus the counted-down slots. This is the
// delay the event engine schedules between a round's start and its
// backoff-expiry event.
inline double backoff_expiry_delay_us(int slots) {
  return kDifsUs + slots * kSlotUs;
}

// Airtime of a PSDU of `octets` at `mcs`, in microseconds (preamble +
// SIGNAL + data symbols).
inline double psdu_airtime_us(std::size_t octets, const Mcs& mcs) {
  return 1e6 * (kPreambleDurationSec + kSignalDurationSec) +
         symbols_for_psdu(octets, mcs) * kSymbolDurationSec * 1e6;
}

// ACK frames go at the basic rate, 14 octets (here: MAC overhead + 2).
inline double ack_airtime_us() {
  return psdu_airtime_us(14, mcs_for_rate(6));
}

// Explicit poll frames (the baseline's coordination cost), 20 octets at
// the basic rate.
inline double poll_airtime_us() {
  return psdu_airtime_us(20, mcs_for_rate(6));
}

}  // namespace silence
