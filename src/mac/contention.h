// Slotted DCF contention simulation: N saturated stations share the
// medium with binary-exponential backoff; single winners deliver their
// frame through the real PHY + fading channel, overlapping winners
// collide. Used as the baseline the coordination experiments compare
// against, and as a substrate test of the MAC pieces.
#pragma once

#include <cstdint>

#include "mac/frame.h"
#include "phy/params.h"

namespace silence {

struct ContentionConfig {
  int num_stations = 5;
  std::size_t payload_octets = 1024;
  double duration_us = 200e3;
  double measured_snr_db = 18.0;  // per-station link quality
  std::uint64_t seed = 1;
  // Deliver single-winner frames through the full PHY chain (slower but
  // faithful); when false, single winners always succeed.
  bool run_phy = true;
};

struct AirtimeBreakdown {
  double data_us = 0.0;
  double ack_us = 0.0;
  double control_us = 0.0;  // polls/beacons (none under plain DCF)
  double idle_us = 0.0;     // backoff slots + DIFS/SIFS gaps
  double collision_us = 0.0;

  double total_us() const {
    return data_us + ack_us + control_us + idle_us + collision_us;
  }
};

struct ContentionResult {
  std::size_t attempts = 0;
  std::size_t successes = 0;
  std::size_t collisions = 0;   // collision events (>= 2 winners)
  std::size_t phy_losses = 0;   // single winner, channel killed it
  std::size_t payload_bits = 0;
  AirtimeBreakdown airtime;
  double elapsed_us = 0.0;

  double throughput_mbps() const {
    return elapsed_us > 0.0 ? static_cast<double>(payload_bits) / elapsed_us
                            : 0.0;
  }
};

ContentionResult run_dcf_contention(const ContentionConfig& config);

}  // namespace silence
