// DCF binary-exponential backoff state machine.
#pragma once

#include "common/rng.h"

namespace silence {

class Backoff {
 public:
  // Draws a fresh counter from the current contention window.
  void restart(Rng& rng);

  // Successful exchange: reset the window to CWmin and redraw.
  void on_success(Rng& rng);

  // Collision/failure: double the window (capped) and redraw.
  void on_collision(Rng& rng);

  // Consumes `slots` idle slots; the caller guarantees slots <= counter().
  void consume(int slots);

  // Whether the counter has reached zero — i.e. this station transmits
  // at the end of the current idle period (the event engine's
  // backoff-expiry condition).
  bool expired() const { return counter_ == 0; }

  int counter() const { return counter_; }
  int window() const { return window_; }
  int retries() const { return retries_; }

 private:
  int window_ = 15;  // kCwMin; kept literal to avoid a timing.h cycle
  int counter_ = 0;
  int retries_ = 0;
};

}  // namespace silence
