#include "mac/contention.h"

#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "mac/backoff.h"
#include "mac/timing.h"
#include "phy/receiver.h"
#include "sim/link.h"

namespace silence {

ContentionResult run_dcf_contention(const ContentionConfig& config) {
  if (config.num_stations < 1) {
    throw std::invalid_argument("run_dcf_contention: need >= 1 station");
  }
  Rng rng(config.seed);

  struct Station {
    Backoff backoff;
    std::unique_ptr<Link> link;
    std::uint16_t seq = 0;
  };
  std::vector<Station> stations(
      static_cast<std::size_t>(config.num_stations));
  for (std::size_t i = 0; i < stations.size(); ++i) {
    LinkConfig link_config;
    link_config.snr_db = config.measured_snr_db;
    link_config.snr_is_measured = true;
    link_config.channel_seed = config.seed * 131 + i;
    link_config.noise_seed = config.seed * 197 + i;
    stations[i].link = std::make_unique<Link>(link_config);
    stations[i].backoff.restart(rng);
  }

  ContentionResult result;
  double now_us = 0.0;

  while (now_us < config.duration_us) {
    // Idle period: DIFS, then the smallest backoff counter many slots.
    int min_counter = std::numeric_limits<int>::max();
    for (const Station& s : stations) {
      min_counter = std::min(min_counter, s.backoff.counter());
    }
    const double idle = kDifsUs + min_counter * kSlotUs;
    now_us += idle;
    result.airtime.idle_us += idle;

    std::vector<std::size_t> winners;
    for (std::size_t i = 0; i < stations.size(); ++i) {
      stations[i].backoff.consume(min_counter);
      if (stations[i].backoff.counter() == 0) winners.push_back(i);
    }

    const Mcs& mcs = select_mcs_by_snr(config.measured_snr_db);
    const double data_us =
        psdu_airtime_us(config.payload_octets + kMacOverheadOctets, mcs);

    ++result.attempts;
    if (winners.size() == 1) {
      Station& tx = stations[winners.front()];
      bool delivered = true;
      if (config.run_phy) {
        MacFrame frame;
        frame.type = FrameType::kData;
        frame.src = static_cast<std::uint8_t>(winners.front() + 1);
        frame.dst = 0;  // the AP
        frame.seq = tx.seq++;
        frame.payload = rng.bytes(config.payload_octets);
        const Bytes psdu = serialize_frame(frame);
        const CxVec samples =
            frame_to_samples(build_frame(psdu, mcs));
        const RxPacket packet = receive_packet(tx.link->send(samples));
        delivered = packet.ok && parse_frame(packet.psdu).has_value();
        tx.link->advance(1e-6 * (data_us + kSifsUs + ack_airtime_us()));
      }
      now_us += data_us + kSifsUs + ack_airtime_us();
      result.airtime.data_us += data_us;
      result.airtime.ack_us += ack_airtime_us();
      result.airtime.idle_us += kSifsUs;
      if (delivered) {
        ++result.successes;
        result.payload_bits += 8 * config.payload_octets;
        tx.backoff.on_success(rng);
      } else {
        ++result.phy_losses;
        tx.backoff.on_collision(rng);  // treated as a failed exchange
      }
    } else {
      // Collision: the medium is busy for one data airtime, then every
      // collider times out waiting for its ACK.
      ++result.collisions;
      const double busy = data_us + kSifsUs + ack_airtime_us();
      now_us += busy;
      result.airtime.collision_us += busy;
      for (std::size_t i : winners) {
        stations[i].backoff.on_collision(rng);
      }
    }
  }

  result.elapsed_us = now_us;
  return result;
}

}  // namespace silence
