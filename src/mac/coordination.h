// AP-coordinated uplink access — the paper's "access coordination"
// application, quantified.
//
// An AP runs a saturated downlink stream to N stations and wants to
// schedule their uplink transmissions without collisions. Three designs:
//
//  * kDcfContention — no coordination: the AP and the stations all
//    contend with DCF (collisions waste airtime);
//  * kExplicitPoll — the AP transmits an explicit CF-POLL-style control
//    frame before each uplink grant (airtime cost per grant);
//  * kCosGrant — the grant rides for free inside the AP's next downlink
//    data frame as a CoS control message (zero extra airtime; a lost
//    grant just skips that uplink opportunity).
//
// The run reports throughput and the airtime spent on coordination,
// which is the quantity CoS eliminates.
#pragma once

#include <cstdint>

#include "mac/contention.h"

namespace silence {

enum class CoordinationMode { kDcfContention, kExplicitPoll, kCosGrant };

struct CoordinationConfig {
  CoordinationMode mode = CoordinationMode::kCosGrant;
  int num_stations = 4;
  std::size_t downlink_octets = 1024;
  std::size_t uplink_octets = 1024;
  double duration_us = 200e3;
  double measured_snr_db = 18.0;
  std::uint64_t seed = 1;
};

struct CoordinationResult {
  std::size_t downlink_bits = 0;
  std::size_t uplink_bits = 0;
  std::size_t grants_issued = 0;
  std::size_t grants_lost = 0;  // CoS grant not decoded -> uplink skipped
  AirtimeBreakdown airtime;
  double elapsed_us = 0.0;

  double total_throughput_mbps() const {
    return elapsed_us > 0.0
               ? static_cast<double>(downlink_bits + uplink_bits) /
                     elapsed_us
               : 0.0;
  }
  // Fraction of airtime spent on explicit coordination frames.
  double control_overhead() const {
    const double total = airtime.total_us();
    return total > 0.0 ? airtime.control_us / total : 0.0;
  }
};

CoordinationResult run_coordination(const CoordinationConfig& config);

}  // namespace silence
