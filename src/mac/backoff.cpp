#include "mac/backoff.h"

#include <algorithm>
#include <stdexcept>

#include "mac/timing.h"

namespace silence {

void Backoff::restart(Rng& rng) {
  counter_ = static_cast<int>(
      rng.uniform_int(0, static_cast<std::uint64_t>(window_)));
}

void Backoff::on_success(Rng& rng) {
  window_ = kCwMin;
  retries_ = 0;
  restart(rng);
}

void Backoff::on_collision(Rng& rng) {
  window_ = std::min(2 * window_ + 1, kCwMax);
  ++retries_;
  restart(rng);
}

void Backoff::consume(int slots) {
  if (slots < 0 || slots > counter_) {
    throw std::invalid_argument("Backoff::consume: bad slot count");
  }
  counter_ -= slots;
}

}  // namespace silence
