// Instrumentation macros — the only obs API the pipeline code touches.
//
//   OBS_COUNT("phy.rx.crc_ok");              // counter += 1
//   OBS_COUNT_N("cos.erasures_injected", n); // counter += n
//   OBS_HIST("cos.detector.score_x256", v);  // histogram record (uint64)
//   OBS_GAUGE_SET("runner.threads", n);      // gauge = n
//   OBS_SPAN("phy.rx.viterbi");              // RAII: histogram
//                                            // "phy.rx.viterbi.ns" of the
//                                            // scope's duration + a trace
//                                            // span when tracing is active
//
// Metric names must be string literals (OBS_SPAN concatenates ".ns" at
// compile time) and follow the dotted scheme documented in
// docs/ARCHITECTURE.md: phy.tx.*, phy.rx.*, cos.*, chan.*, sim.*,
// runner.*. Name interning happens once per site through a function-local
// static; the per-event cost is a couple of relaxed atomic ops.
//
// Building with -DSILENCE_OBS=OFF defines SILENCE_OBS_DISABLED and every
// macro compiles to nothing — zero obs symbols in the hot path. A single
// translation unit can force the same (compile tests) by defining
// SILENCE_OBS_FORCE_OFF before including this header.
#pragma once

#if defined(SILENCE_OBS_DISABLED) || defined(SILENCE_OBS_FORCE_OFF)
#define SILENCE_OBS_ON 0
#else
#define SILENCE_OBS_ON 1
#endif

#define OBS_CAT2(a, b) a##b
#define OBS_CAT(a, b) OBS_CAT2(a, b)

#if SILENCE_OBS_ON

#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace silence::obs {

// RAII body of OBS_SPAN: opens the trace span eagerly (so B events carry
// the true start time) and records the duration histogram on exit.
class SpanTimer {
 public:
  SpanTimer(std::uint32_t histogram_id, const char* name)
      : histogram_id_(histogram_id),
        name_(name),
        traced_(Tracer::global().active()) {
    if (traced_) Tracer::global().span_begin(name);
    start_ns_ = now_ns();
  }
  ~SpanTimer() {
    Registry::global().histogram_record(histogram_id_, now_ns() - start_ns_);
    if (traced_) Tracer::global().span_end(name_);
  }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  std::uint32_t histogram_id_;
  const char* name_;
  bool traced_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace silence::obs

#define OBS_COUNT_N(name, n)                                           \
  do {                                                                 \
    static const std::uint32_t OBS_CAT(obs_cid_, __LINE__) =           \
        ::silence::obs::Registry::global().counter_id(name);           \
    ::silence::obs::Registry::global().counter_add(                    \
        OBS_CAT(obs_cid_, __LINE__), static_cast<std::uint64_t>(n));   \
  } while (0)

#define OBS_COUNT(name) OBS_COUNT_N(name, 1)

#define OBS_HIST(name, value)                                          \
  do {                                                                 \
    static const std::uint32_t OBS_CAT(obs_hid_, __LINE__) =           \
        ::silence::obs::Registry::global().histogram_id(name);         \
    ::silence::obs::Registry::global().histogram_record(               \
        OBS_CAT(obs_hid_, __LINE__),                                   \
        static_cast<std::uint64_t>(value));                            \
  } while (0)

#define OBS_GAUGE_SET(name, value)                                     \
  do {                                                                 \
    static const std::uint32_t OBS_CAT(obs_gid_, __LINE__) =           \
        ::silence::obs::Registry::global().gauge_id(name);             \
    ::silence::obs::Registry::global().gauge_set(                      \
        OBS_CAT(obs_gid_, __LINE__),                                   \
        static_cast<std::int64_t>(value));                             \
  } while (0)

// Declares a scoped timer; `name` must be a string literal.
#define OBS_SPAN(name)                                                 \
  static const std::uint32_t OBS_CAT(obs_sid_, __LINE__) =             \
      ::silence::obs::Registry::global().histogram_id(name ".ns");     \
  const ::silence::obs::SpanTimer OBS_CAT(obs_span_, __LINE__)(        \
      OBS_CAT(obs_sid_, __LINE__), name)

#else  // SILENCE_OBS_ON

// `(void)sizeof(x)` keeps obs-only operands "used" without evaluating
// them, so OFF builds stay warning-clean at -Wall -Wextra.
#define OBS_COUNT_N(name, n) do { (void)sizeof(n); } while (0)
#define OBS_COUNT(name) do { } while (0)
#define OBS_HIST(name, value) do { (void)sizeof(value); } while (0)
#define OBS_GAUGE_SET(name, value) do { (void)sizeof(value); } while (0)
#define OBS_SPAN(name) do { } while (0)

#endif  // SILENCE_OBS_ON
