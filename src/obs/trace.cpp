#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "runner/json.h"

namespace silence::obs {
namespace {

// Stable per-thread track id, assigned on a thread's first event.
std::uint32_t thread_track_id(std::atomic<std::uint32_t>& next) {
  thread_local std::uint32_t tid = 0;
  if (tid == 0) tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

// Chrome traces use microsecond timestamps; keep ns resolution as a
// fixed three-decimal fraction (deterministic, locale-free).
void append_ts_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // leaked, same as the Registry
  return *instance;
}

void Tracer::start() {
  std::lock_guard lock(mutex_);
  events_.clear();
  sim_events_.clear();
  sim_tracks_.clear();
  counter_events_.clear();
  sim_claimed_.store(false, std::memory_order_relaxed);
  dropped_ = 0;
  t0_ = now_ns();
  active_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { active_.store(false, std::memory_order_relaxed); }

void Tracer::push(char phase, const char* name) {
  const std::uint64_t ts = now_ns() - t0_;
  const std::uint32_t tid = thread_track_id(next_tid_);
  std::lock_guard lock(mutex_);
  if (events_.size() >= kMaxTraceEvents) {
    ++dropped_;
    return;
  }
  events_.push_back({name, ts, tid, phase});
}

void Tracer::span_begin(const char* name) {
  if (active()) push('B', name);
}

void Tracer::span_end(const char* name) {
  if (active()) push('E', name);
}

std::size_t Tracer::event_count() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

bool Tracer::claim_sim_session() {
  if (!active()) return false;
  return !sim_claimed_.exchange(true, std::memory_order_relaxed);
}

std::uint32_t Tracer::sim_track(const std::string& name) {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < sim_tracks_.size(); ++i) {
    if (sim_tracks_[i] == name) return static_cast<std::uint32_t>(i + 1);
  }
  sim_tracks_.push_back(name);
  return static_cast<std::uint32_t>(sim_tracks_.size());
}

void Tracer::sim_push(char phase, std::uint32_t track, const char* name,
                      double ts_us, std::string args) {
  if (!active()) return;
  // Simulated µs map exactly onto the ns grid for slot-quantized times;
  // llround keeps fractional airtimes deterministic (pure fn of ts_us).
  const auto ts = static_cast<std::uint64_t>(std::llround(ts_us * 1000.0));
  std::lock_guard lock(mutex_);
  if (sim_events_.size() >= kMaxTraceEvents) {
    ++dropped_;
    return;
  }
  sim_events_.push_back({name, std::move(args), ts, track, phase});
}

void Tracer::sim_begin(std::uint32_t track, const char* name, double ts_us,
                       std::string args) {
  sim_push('B', track, name, ts_us, std::move(args));
}

void Tracer::sim_end(std::uint32_t track, const char* name, double ts_us) {
  sim_push('E', track, name, ts_us, "");
}

void Tracer::sim_instant(std::uint32_t track, const char* name, double ts_us,
                         std::string args) {
  sim_push('i', track, name, ts_us, std::move(args));
}

std::size_t Tracer::sim_event_count() const {
  std::lock_guard lock(mutex_);
  return sim_events_.size();
}

void Tracer::counter(const char* name, double value) {
  if (!active()) return;
  const std::uint64_t ts = now_ns() - t0_;
  std::lock_guard lock(mutex_);
  if (counter_events_.size() >= kMaxTraceEvents) {
    ++dropped_;
    return;
  }
  counter_events_.push_back({name, value, ts});
}

std::size_t Tracer::counter_count() const {
  std::lock_guard lock(mutex_);
  return counter_events_.size();
}

std::size_t Tracer::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::string Tracer::to_json() {
  stop();
  std::vector<Event> events;
  std::vector<SimEvent> sim_events;
  std::vector<std::string> sim_tracks;
  std::vector<CounterEvent> counter_events;
  std::size_t dropped = 0;
  {
    std::lock_guard lock(mutex_);
    events = events_;
    sim_events = sim_events_;
    sim_tracks = sim_tracks_;
    counter_events = counter_events_;
    dropped = dropped_;
  }
  // Buffer order is real-time lock-acquisition order, so a stable sort
  // on ts yields a globally monotonic file that still preserves each
  // thread's B-before-E ordering at equal timestamps.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });

  // Close any span left open (e.g. tracing stopped mid-packet): walk
  // per-thread stacks and append synthetic E events at the last seen
  // timestamp so every B has a matching E.
  std::vector<std::pair<std::uint32_t, std::vector<const char*>>> stacks;
  const auto stack_for = [&](std::uint32_t tid) -> std::vector<const char*>& {
    for (auto& [id, stack] : stacks) {
      if (id == tid) return stack;
    }
    return stacks.emplace_back(tid, std::vector<const char*>{}).second;
  };
  std::uint64_t last_ts = 0;
  std::vector<Event> cleaned;
  cleaned.reserve(events.size());
  for (const Event& e : events) {
    auto& stack = stack_for(e.tid);
    if (e.phase == 'E') {
      if (stack.empty()) continue;  // stray end: drop
      stack.pop_back();
    } else {
      stack.push_back(e.name);
    }
    last_ts = std::max(last_ts, e.ts);
    cleaned.push_back(e);
  }
  for (auto& [tid, stack] : stacks) {
    while (!stack.empty()) {
      cleaned.push_back({stack.back(), last_ts, tid, 'E'});
      stack.pop_back();
    }
  }

  // Same discipline for the simulation tracks: stable sort on simulated
  // time, then matched B/E per track with synthetic closes at the last
  // simulated timestamp. Instants pass through untouched.
  std::stable_sort(
      sim_events.begin(), sim_events.end(),
      [](const SimEvent& a, const SimEvent& b) { return a.ts < b.ts; });
  std::vector<std::pair<std::uint32_t, std::vector<const char*>>> sim_stacks;
  const auto sim_stack_for =
      [&](std::uint32_t tid) -> std::vector<const char*>& {
    for (auto& [id, stack] : sim_stacks) {
      if (id == tid) return stack;
    }
    return sim_stacks.emplace_back(tid, std::vector<const char*>{}).second;
  };
  std::uint64_t sim_last_ts = 0;
  std::vector<SimEvent> sim_cleaned;
  sim_cleaned.reserve(sim_events.size());
  for (SimEvent& e : sim_events) {
    if (e.phase != 'i') {
      auto& stack = sim_stack_for(e.tid);
      if (e.phase == 'E') {
        if (stack.empty()) continue;  // stray end: drop
        stack.pop_back();
      } else {
        stack.push_back(e.name);
      }
    }
    sim_last_ts = std::max(sim_last_ts, e.ts);
    sim_cleaned.push_back(std::move(e));
  }
  for (auto& [tid, stack] : sim_stacks) {
    while (!stack.empty()) {
      sim_cleaned.push_back({stack.back(), "", sim_last_ts, tid, 'E'});
      stack.pop_back();
    }
  }

  std::string out = "{\n  \"displayTimeUnit\": \"ns\",\n";
  if (dropped > 0) {
    out += "  \"droppedEvents\": " + std::to_string(dropped) + ",\n";
  }
  out += "  \"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    out += first ? "\n" : ",\n";
    first = false;
  };
  for (const Event& e : cleaned) {
    sep();
    out += "    {\"name\": \"";
    out += e.name;  // site names are controlled literals, no escaping needed
    out += "\", \"cat\": \"cos\", \"ph\": \"";
    out += e.phase;
    out += "\", \"pid\": 1, \"tid\": " + std::to_string(e.tid) + ", \"ts\": ";
    append_ts_us(out, e.ts);
    out += "}";
  }
  if (!sim_tracks.empty()) {
    // Metadata names the simulation process and one track per station /
    // medium so Perfetto labels them; sort_index pins the track order.
    sep();
    out +=
        "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 2, "
        "\"tid\": 0, \"args\": {\"name\": \"net-sim\"}}";
    for (std::size_t i = 0; i < sim_tracks.size(); ++i) {
      const std::string tid = std::to_string(i + 1);
      sep();
      out += "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 2, "
             "\"tid\": " + tid + ", \"args\": {\"name\": \"" + sim_tracks[i] +
             "\"}}";
      sep();
      out += "    {\"name\": \"thread_sort_index\", \"ph\": \"M\", "
             "\"pid\": 2, \"tid\": " + tid + ", \"args\": {\"sort_index\": " +
             tid + "}}";
    }
  }
  for (const SimEvent& e : sim_cleaned) {
    sep();
    out += "    {\"name\": \"";
    out += e.name;
    out += "\", \"cat\": \"net\", \"ph\": \"";
    out += e.phase;
    out += "\", \"pid\": 2, \"tid\": " + std::to_string(e.tid) + ", \"ts\": ";
    append_ts_us(out, e.ts);
    if (e.phase == 'i') out += ", \"s\": \"t\"";
    if (!e.args.empty()) out += ", \"args\": " + e.args;
    out += "}";
  }
  if (!counter_events.empty()) {
    std::stable_sort(counter_events.begin(), counter_events.end(),
                     [](const CounterEvent& a, const CounterEvent& b) {
                       return a.ts < b.ts;
                     });
    sep();
    out +=
        "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 3, "
        "\"tid\": 0, \"args\": {\"name\": \"phy-health\"}}";
    for (const CounterEvent& e : counter_events) {
      sep();
      out += "    {\"name\": \"";
      out += e.name;
      out += "\", \"cat\": \"health\", \"ph\": \"C\", \"pid\": 3, "
             "\"tid\": 0, \"ts\": ";
      append_ts_us(out, e.ts);
      out += ", \"args\": {\"value\": " + runner::format_double(e.value) + "}}";
    }
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"metrics\": ";
  out += metrics_to_json(Registry::global().snapshot());
  out += "\n}\n";
  return out;
}

void Tracer::write(const std::string& path) {
  const std::string json = to_json();
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream file(p, std::ios::binary | std::ios::trunc);
  if (!file) {
    throw std::runtime_error("obs: cannot write trace file " + path);
  }
  file << json;
}

}  // namespace silence::obs
