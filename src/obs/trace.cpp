#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "obs/metrics.h"

namespace silence::obs {
namespace {

// Stable per-thread track id, assigned on a thread's first event.
std::uint32_t thread_track_id(std::atomic<std::uint32_t>& next) {
  thread_local std::uint32_t tid = 0;
  if (tid == 0) tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

// Chrome traces use microsecond timestamps; keep ns resolution as a
// fixed three-decimal fraction (deterministic, locale-free).
void append_ts_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // leaked, same as the Registry
  return *instance;
}

void Tracer::start() {
  std::lock_guard lock(mutex_);
  events_.clear();
  dropped_ = 0;
  t0_ = now_ns();
  active_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { active_.store(false, std::memory_order_relaxed); }

void Tracer::push(char phase, const char* name) {
  const std::uint64_t ts = now_ns() - t0_;
  const std::uint32_t tid = thread_track_id(next_tid_);
  std::lock_guard lock(mutex_);
  if (events_.size() >= kMaxTraceEvents) {
    ++dropped_;
    return;
  }
  events_.push_back({name, ts, tid, phase});
}

void Tracer::span_begin(const char* name) {
  if (active()) push('B', name);
}

void Tracer::span_end(const char* name) {
  if (active()) push('E', name);
}

std::size_t Tracer::event_count() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::size_t Tracer::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::string Tracer::to_json() {
  stop();
  std::vector<Event> events;
  std::size_t dropped = 0;
  {
    std::lock_guard lock(mutex_);
    events = events_;
    dropped = dropped_;
  }
  // Buffer order is real-time lock-acquisition order, so a stable sort
  // on ts yields a globally monotonic file that still preserves each
  // thread's B-before-E ordering at equal timestamps.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });

  // Close any span left open (e.g. tracing stopped mid-packet): walk
  // per-thread stacks and append synthetic E events at the last seen
  // timestamp so every B has a matching E.
  std::vector<std::pair<std::uint32_t, std::vector<const char*>>> stacks;
  const auto stack_for = [&](std::uint32_t tid) -> std::vector<const char*>& {
    for (auto& [id, stack] : stacks) {
      if (id == tid) return stack;
    }
    return stacks.emplace_back(tid, std::vector<const char*>{}).second;
  };
  std::uint64_t last_ts = 0;
  std::vector<Event> cleaned;
  cleaned.reserve(events.size());
  for (const Event& e : events) {
    auto& stack = stack_for(e.tid);
    if (e.phase == 'E') {
      if (stack.empty()) continue;  // stray end: drop
      stack.pop_back();
    } else {
      stack.push_back(e.name);
    }
    last_ts = std::max(last_ts, e.ts);
    cleaned.push_back(e);
  }
  for (auto& [tid, stack] : stacks) {
    while (!stack.empty()) {
      cleaned.push_back({stack.back(), last_ts, tid, 'E'});
      stack.pop_back();
    }
  }

  std::string out = "{\n  \"displayTimeUnit\": \"ns\",\n";
  if (dropped > 0) {
    out += "  \"droppedEvents\": " + std::to_string(dropped) + ",\n";
  }
  out += "  \"traceEvents\": [";
  for (std::size_t i = 0; i < cleaned.size(); ++i) {
    const Event& e = cleaned[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"";
    out += e.name;  // site names are controlled literals, no escaping needed
    out += "\", \"cat\": \"cos\", \"ph\": \"";
    out += e.phase;
    out += "\", \"pid\": 1, \"tid\": " + std::to_string(e.tid) + ", \"ts\": ";
    append_ts_us(out, e.ts);
    out += "}";
  }
  out += cleaned.empty() ? "],\n" : "\n  ],\n";
  out += "  \"metrics\": ";
  out += metrics_to_json(Registry::global().snapshot());
  out += "\n}\n";
  return out;
}

void Tracer::write(const std::string& path) {
  const std::string json = to_json();
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream file(p, std::ios::binary | std::ios::trunc);
  if (!file) {
    throw std::runtime_error("obs: cannot write trace file " + path);
  }
  file << json;
}

}  // namespace silence::obs
