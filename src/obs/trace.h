// Span-based tracer emitting Chrome trace-event JSON (chrome://tracing /
// Perfetto "JSON trace" format): every span becomes a matched B/E pair
// on its thread's track, and the current metrics snapshot is embedded
// under a top-level "metrics" key so one file carries both views.
//
// The tracer is off by default; when inactive a span costs one relaxed
// atomic load. When active, begin/end events append to a bounded central
// buffer under a mutex — tracing is a diagnostic mode, not a steady-state
// cost, and the mutex keeps the buffer trivially race-free (validated
// under TSan). Events past the cap are counted as dropped rather than
// silently lost.
//
// Use via the OBS_SPAN macro (obs/obs.h); the Tracer API itself is for
// the runtime plumbing (bench --trace) and tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace silence::obs {

// Buffer cap: ~24 MB of events before dropping.
inline constexpr std::size_t kMaxTraceEvents = std::size_t{1} << 20;

class Tracer {
 public:
  static Tracer& global();

  // Clears the buffer and starts capturing; timestamps are relative to
  // this call.
  void start();
  void stop();
  bool active() const { return active_.load(std::memory_order_relaxed); }

  // Record a span boundary on the calling thread's track. `name` must
  // have static storage duration (instrumentation sites pass literals).
  void span_begin(const char* name);
  void span_end(const char* name);

  std::size_t event_count() const;
  std::size_t dropped() const;

  // --- Simulation-time tracks ---------------------------------------
  //
  // Events on these tracks carry caller-supplied timestamps in simulated
  // microseconds (deterministic slot time), not wall clock. They render
  // under a second trace process (pid 2, "net-sim") with one named track
  // per station plus the shared medium, so Perfetto shows the MAC
  // timeline side by side with the wall-clock PHY spans.
  //
  // Exactly one scenario may own the simulation timeline per capture —
  // parallel trials would interleave on shared tracks otherwise. The
  // first run_scenario to claim it wins; start() clears the claim.

  // Claims the simulation timeline for this capture. Returns false when
  // the tracer is inactive or another scenario already owns it.
  bool claim_sim_session();

  // Interns a named simulation track (idempotent per name) and returns
  // its tid under pid 2.
  std::uint32_t sim_track(const std::string& name);

  // Record a span boundary / instant on a simulation track. `name` must
  // have static storage duration; `args`, when non-empty, must be a
  // complete JSON object (emitted verbatim as the event's "args").
  void sim_begin(std::uint32_t track, const char* name, double ts_us,
                 std::string args = "");
  void sim_end(std::uint32_t track, const char* name, double ts_us);
  void sim_instant(std::uint32_t track, const char* name, double ts_us,
                   std::string args = "");

  std::size_t sim_event_count() const;

  // --- PHY-health counter tracks ------------------------------------
  //
  // Sampled scalar series (mean EVM, detector margin, ...) rendered as
  // Chrome "C" counter events under a third trace process (pid 3,
  // "phy-health"). Wall-clock timestamps; diagnostic only, never part
  // of the determinism contract. `name` must have static storage
  // duration. No-op when the tracer is inactive.
  void counter(const char* name, double value);

  std::size_t counter_count() const;

  // Stops capturing and renders the trace: events sorted by timestamp
  // (ties keep buffer order, so per-thread nesting is preserved), spans
  // still open at render time closed with synthetic E events, metrics
  // snapshot embedded.
  std::string to_json();

  // to_json() written to `path` (parent directories created).
  void write(const std::string& path);

 private:
  struct Event {
    const char* name;
    std::uint64_t ts;  // ns since start()
    std::uint32_t tid;
    char phase;  // 'B' or 'E'
  };
  struct SimEvent {
    const char* name;
    std::string args;  // complete JSON object, or empty
    std::uint64_t ts;  // simulated ns (µs * 1000, exact for slot times)
    std::uint32_t tid;
    char phase;  // 'B', 'E' or 'i'
  };
  struct CounterEvent {
    const char* name;
    double value;
    std::uint64_t ts;  // ns since start()
  };

  Tracer() = default;
  void push(char phase, const char* name);
  void sim_push(char phase, std::uint32_t track, const char* name,
                double ts_us, std::string args);

  std::atomic<bool> active_{false};
  std::uint64_t t0_ = 0;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::size_t dropped_ = 0;
  std::atomic<std::uint32_t> next_tid_{1};
  std::atomic<bool> sim_claimed_{false};
  std::vector<std::string> sim_tracks_;  // index + 1 == tid under pid 2
  std::vector<SimEvent> sim_events_;
  std::vector<CounterEvent> counter_events_;
};

}  // namespace silence::obs
