// Span-based tracer emitting Chrome trace-event JSON (chrome://tracing /
// Perfetto "JSON trace" format): every span becomes a matched B/E pair
// on its thread's track, and the current metrics snapshot is embedded
// under a top-level "metrics" key so one file carries both views.
//
// The tracer is off by default; when inactive a span costs one relaxed
// atomic load. When active, begin/end events append to a bounded central
// buffer under a mutex — tracing is a diagnostic mode, not a steady-state
// cost, and the mutex keeps the buffer trivially race-free (validated
// under TSan). Events past the cap are counted as dropped rather than
// silently lost.
//
// Use via the OBS_SPAN macro (obs/obs.h); the Tracer API itself is for
// the runtime plumbing (bench --trace) and tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace silence::obs {

// Buffer cap: ~24 MB of events before dropping.
inline constexpr std::size_t kMaxTraceEvents = std::size_t{1} << 20;

class Tracer {
 public:
  static Tracer& global();

  // Clears the buffer and starts capturing; timestamps are relative to
  // this call.
  void start();
  void stop();
  bool active() const { return active_.load(std::memory_order_relaxed); }

  // Record a span boundary on the calling thread's track. `name` must
  // have static storage duration (instrumentation sites pass literals).
  void span_begin(const char* name);
  void span_end(const char* name);

  std::size_t event_count() const;
  std::size_t dropped() const;

  // Stops capturing and renders the trace: events sorted by timestamp
  // (ties keep buffer order, so per-thread nesting is preserved), spans
  // still open at render time closed with synthetic E events, metrics
  // snapshot embedded.
  std::string to_json();

  // to_json() written to `path` (parent directories created).
  void write(const std::string& path);

 private:
  struct Event {
    const char* name;
    std::uint64_t ts;  // ns since start()
    std::uint32_t tid;
    char phase;  // 'B' or 'E'
  };

  Tracer() = default;
  void push(char phase, const char* name);

  std::atomic<bool> active_{false};
  std::uint64_t t0_ = 0;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::size_t dropped_ = 0;
  std::atomic<std::uint32_t> next_tid_{1};
};

}  // namespace silence::obs
