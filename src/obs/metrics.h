// Low-overhead metrics registry: named counters, gauges and fixed-bucket
// histograms for the whole pipeline (phy.tx.*, phy.rx.*, cos.*, chan.*,
// sim.*, runner.*).
//
// Hot-path writes go to a per-thread block of relaxed atomics — a block
// is owned by exactly one live thread at a time (single writer), so an
// increment is a load+store pair on an uncontended cache line, with no
// locks and no RMW contention. Blocks are pooled: a thread picks a free
// block on first use and returns it on exit, so totals survive thread
// death and memory stays bounded at O(peak concurrent threads).
//
// Merging is deterministic by construction: every accumulated quantity
// is an unsigned integer (counts, sums of integer values, bucket tallies,
// min/max), so summing blocks is order-independent and a snapshot of the
// same recorded values is identical at any thread count. Snapshots list
// metrics sorted by name, independent of registration order.
//
// Instrumentation sites should not call this API directly — use the
// macros in obs/obs.h, which compile to no-ops when SILENCE_OBS=OFF.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace silence::obs {

// Hard caps keep thread blocks fixed-size (no hot-path growth/locking).
inline constexpr std::size_t kMaxCounters = 256;
inline constexpr std::size_t kMaxGauges = 64;
inline constexpr std::size_t kMaxHistograms = 512;

// Power-of-two buckets: bucket 0 counts value 0, bucket b >= 1 counts
// values with bit_width b, i.e. [2^(b-1), 2^b); the last bucket is
// open-ended. 40 buckets cover every duration up to ~2^39 ns (~9 min).
inline constexpr std::size_t kHistogramBuckets = 40;

// Bucket index for a recorded value (exposed for tests).
std::size_t histogram_bucket(std::uint64_t value);

// Inclusive lower bound of bucket `index`.
std::uint64_t histogram_bucket_floor(std::size_t index);

// Monotonic wall-time in nanoseconds (steady_clock).
std::uint64_t now_ns();

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // meaningful only when count > 0
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;  // kHistogramBuckets entries

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  // Bucket-interpolated quantile estimate (q in [0, 1]): finds the bucket
  // holding the q-th sample and interpolates linearly inside it, clamped
  // to the observed [min, max]. Power-of-two buckets bound the relative
  // error by the bucket width (a factor of 2); exact at q = 0 and q = 1.
  // Returns 0 for an empty histogram.
  double quantile(double q) const;
};

struct MetricsSnapshot {
  // Each vector is sorted by metric name.
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  const CounterSnapshot* counter(std::string_view name) const;
  const GaugeSnapshot* gauge(std::string_view name) const;
  const HistogramSnapshot* histogram(std::string_view name) const;
};

// Renders a snapshot as a JSON object string (counters/gauges/histograms
// keyed by name) — the form embedded into trace files. Sorted input makes
// the output deterministic.
std::string metrics_to_json(const MetricsSnapshot& snapshot);

class Registry {
 public:
  // The process-wide registry all instrumentation macros record into.
  static Registry& global();

  // Interns `name`, returning a dense id. Idempotent; throws
  // std::length_error past the fixed capacity. Called once per site
  // (function-local static), never per event.
  std::uint32_t counter_id(std::string_view name);
  std::uint32_t gauge_id(std::string_view name);
  std::uint32_t histogram_id(std::string_view name);

  // Hot-path recording. Wait-free: one relaxed load+store per cell.
  void counter_add(std::uint32_t id, std::uint64_t delta);
  void gauge_set(std::uint32_t id, std::int64_t value);
  void histogram_record(std::uint32_t id, std::uint64_t value);

  // Deterministic merged view of every block, sorted by name. Safe to
  // call while other threads record (their in-flight deltas may or may
  // not be included, but nothing tears).
  MetricsSnapshot snapshot() const;

  // Zeroes all recorded values; registered names and ids survive. Not
  // meant to run concurrently with recording (counts written during a
  // reset may be lost, though nothing races in the UB sense).
  void reset();

 private:
  struct HistogramCells {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{0};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };
  struct ThreadBlock {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::array<HistogramCells, kMaxHistograms> histograms{};
  };

  Registry() = default;
  ThreadBlock& local_block();
  friend struct ThreadBlockLease;

  mutable std::mutex mutex_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::deque<ThreadBlock> blocks_;       // stable addresses, never shrinks
  std::vector<ThreadBlock*> free_blocks_;  // returned by dead threads
  std::array<std::atomic<std::int64_t>, kMaxGauges> gauges_{};
  std::array<std::atomic<bool>, kMaxGauges> gauge_set_{};
};

}  // namespace silence::obs
