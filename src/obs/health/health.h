// PHY signal-health aggregation: deterministic per-subcarrier waterfalls,
// the detector score stream split by ground truth, and the silence-plan
// audit counters (paper Eq. 1/2, §III-B/C/D quantities).
//
// The obs metrics registry (obs/metrics.h) interns names dynamically and
// is capped at 512 histograms — too small for 48-wide waterfalls next to
// the per-station net.sta.* families. This layer therefore uses a fixed
// enum-indexed cell layout: 3 waterfall kinds x 48 subcarriers, 2 ground
// truths x 48 detector cells, one nabla-EVM drift cell and a small set of
// audit counters. Hot paths record through the HEALTH_* macros below;
// writes land in pooled per-thread blocks of relaxed atomics exactly like
// the metrics registry (single writer per block), and every accumulated
// quantity is an unsigned integer, so merging blocks — or fabric shards —
// by summation is order-independent and a snapshot of the same recorded
// values is byte-identical at any thread or worker count.
//
// All recorded values are fixed-point quantizations (scales below); the
// detector score additionally carries its decision in the quantization:
// quantize_score() clamps scores of declared-silent cells to <= 255 and
// declared-active cells to >= 256. Because 256 = 2^8 is a power-of-two
// bucket boundary, the per-truth score histograms answer "how many cells
// were declared silent at the configured threshold" EXACTLY — summing
// buckets 0..8 of the silent-truth histogram gives the detected-silence
// count, and the empirical ROC derived from the buckets reproduces
// count_confusion()'s miss/false-alarm tallies bit-for-bit at score 256.
//
// Building with SILENCE_OBS=OFF compiles every HEALTH_* macro to nothing;
// the registry class itself still exists (so the runner/fabric sidecar
// plumbing links in both modes) but stays empty, and no .health.json is
// written.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "obs/metrics.h"  // kHistogramBuckets, histogram_bucket, SILENCE_OBS
#include "obs/obs.h"
#include "runner/json.h"

namespace silence::obs::health {

// Logical data subcarriers per OFDM symbol (== kNumDataSubcarriers; kept
// as a local constant so the obs layer does not depend on phy headers).
inline constexpr std::size_t kSubcarriers = 48;

// Fixed-point scales. Every recorded value is round-down quantized.
inline constexpr double kSnrScale = 256.0;      // linear bin SNR x 256
inline constexpr double kEvmScale = 4096.0;     // EVM (rms fraction) x 4096
inline constexpr double kChanScale = 1024.0;    // |H_k| x 1024
inline constexpr double kScoreScale = 256.0;    // energy / threshold x 256
inline constexpr double kNablaEvmScale = 4096.0;  // nabla-EVM x 4096

// The detector's decision boundary in quantized score units: scores below
// 256 were declared silent. A power-of-two, so it is also a histogram
// bucket boundary (buckets 0..8 hold exactly the values 0..255).
inline constexpr std::uint64_t kScoreThreshold = 256;

// Per-subcarrier waterfall families.
enum class Waterfall : std::size_t {
  kSnr = 0,      // raw bin SNR |H_k|^2 / noise_var, from the front end
  kEvm,          // post-CRC per-subcarrier EVM, from cos_receive
  kChanMag,      // channel-estimate magnitude |H_k|, from the front end
  kCount,
};

// Ground-truth label of a detector score (known only in simulation).
enum class Truth : std::size_t { kActive = 0, kSilent, kCount };

// Silence-plan / detection / selection audit counters. Names in
// counter_name() follow the dotted scheme of the metrics registry.
enum class Counter : std::size_t {
  // plan_silences(): messages planned into transmit grids.
  kPlans = 0,
  kIntervalsPlanned,
  kSilencesPlanned,
  kBitsPlanned,
  // Interval decode (cos_receive / run_cos_trial_recorded).
  kDecodeRounds,
  kIntervalsDetected,
  kBitsDecoded,
  // Subcarrier selection after a decoded packet (cos_receive).
  kSelectionRounds,
  kSubcarriersSelected,
  kSubcarriersDetectable,
  kSubcarriersErroneous,  // EVM > D_m/2 of the next modulation
  // Ground-truth confusion, tallied in the sim layer from the exact same
  // cell walk that feeds the per-truth score histograms (and therefore in
  // 1:1 correspondence with count_confusion()).
  kTruthActive,
  kTruthSilent,
  kFalseAlarms,  // truth active, declared silent
  kMisses,       // truth silent, declared active
  kCount,
};

const char* counter_name(Counter c);
const char* waterfall_name(Waterfall w);  // "snr_x256", "evm_x4096", ...
const char* truth_name(Truth t);          // "active", "silent"

// One histogram cell: same integer quintuple as obs::HistogramSnapshot.
struct HealthHist {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // meaningful only when count > 0
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  HealthHist& operator+=(const HealthHist& o);
  friend bool operator==(const HealthHist&, const HealthHist&) = default;
};

// Deterministic merged view of every thread block. Integer-only, so
// operator+= (used for the fabric shard merge) is exact and
// order-independent.
struct HealthSnapshot {
  std::array<std::uint64_t, static_cast<std::size_t>(Counter::kCount)>
      counters{};
  // waterfalls[kind][subcarrier]
  std::array<std::array<HealthHist, kSubcarriers>,
             static_cast<std::size_t>(Waterfall::kCount)>
      waterfalls{};
  // scores[truth][subcarrier]
  std::array<std::array<HealthHist, kSubcarriers>,
             static_cast<std::size_t>(Truth::kCount)>
      scores{};
  HealthHist nabla_evm{};

  bool empty() const;
  HealthSnapshot& operator+=(const HealthSnapshot& o);
  friend bool operator==(const HealthSnapshot&,
                         const HealthSnapshot&) = default;
};

class Registry {
 public:
  static Registry& global();

  // Hot-path recording. Wait-free: relaxed load+store pairs on the
  // calling thread's block. `subcarrier` outside [0, 48) is ignored.
  void count(Counter c, std::uint64_t delta);
  void waterfall(Waterfall kind, std::size_t subcarrier, std::uint64_t value);
  void score(Truth truth, std::size_t subcarrier, std::uint64_t value);
  void record_nabla_evm(std::uint64_t value);

  // Deterministic merged view; safe to call while other threads record.
  HealthSnapshot snapshot() const;

  // Zeroes all recorded values (tests). Not meant to run concurrently
  // with recording.
  void reset();

 private:
  struct HistCells {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{0};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };
  // 241 histogram cells (~85 KB) + counters per concurrent thread.
  struct ThreadBlock {
    std::array<std::atomic<std::uint64_t>,
               static_cast<std::size_t>(Counter::kCount)>
        counters{};
    std::array<std::array<HistCells, kSubcarriers>,
               static_cast<std::size_t>(Waterfall::kCount)>
        waterfalls{};
    std::array<std::array<HistCells, kSubcarriers>,
               static_cast<std::size_t>(Truth::kCount)>
        scores{};
    HistCells nabla_evm{};
  };

  Registry() = default;
  ThreadBlock& local_block();
  static void record_cell(HistCells& cell, std::uint64_t value);
  friend struct HealthBlockLease;

  mutable std::mutex mutex_;
  std::deque<ThreadBlock> blocks_;         // stable addresses, never shrink
  std::vector<ThreadBlock*> free_blocks_;  // returned by dead threads
};

// --- Quantization helpers (pure; usable in both ON and OFF builds) -----

// Round-down fixed-point quantization, clamped to [0, 2^52] so every
// quantized value survives a double-typed JSON round trip exactly.
std::uint64_t quantize(double value, double scale);

// Detector score in units of 1/256 of the threshold, with the DECISION
// clamped into the quantization: a declared-silent cell (energy below the
// threshold) never quantizes above 255, a declared-active cell never
// below 256. This removes the floating-point edge where energy/threshold
// rounds across the boundary, making histogram-derived detection counts
// at score 256 exactly equal to the mask-derived ones.
std::uint64_t quantize_score(double energy, double threshold);

// --- .health.json rendering / merging ----------------------------------

// Renders a snapshot as the `.health.json` sidecar document
// (schema "cos.health.v1"): counters keyed by name, one histogram object
// {count,sum,min,max,buckets[]} per waterfall subcarrier and per detector
// (truth, subcarrier) cell, buckets trailing-zero trimmed. Integer-only
// and deterministically ordered, so equal snapshots render equal bytes.
runner::Json health_json(const HealthSnapshot& snapshot);

// Exact inverse of health_json (zero-count cells round-trip to empty).
// Throws std::runtime_error on a malformed document.
HealthSnapshot health_from_json(const runner::Json& doc);

// Deterministic merge of several health_json() documents (one per fabric
// worker plus the supervisor's own snapshot): every quantity is an
// integer sum (min/max combine as min/max), so the merged document is
// byte-identical to the one a single process recording the same values
// would have written.
runner::Json merge_health_json(const std::vector<runner::Json>& docs);

// --- Perfetto counter sampling -----------------------------------------

// When the tracer is active, every kTraceSampleEvery-th call emits the
// pid-3 "phy-health" counter tracks (mean EVM, mean detector margin,
// selected subcarriers per selection round) from the current snapshot.
// Cheap no-op when tracing is off; call once per trial / scenario.
inline constexpr std::uint64_t kTraceSampleEvery = 256;
void maybe_trace_counters();

}  // namespace silence::obs::health

// --- Instrumentation macros --------------------------------------------
//
// The only health API hot paths touch. Enum arguments, so there is no
// name interning; OFF builds compile each to a `(void)sizeof` no-op that
// keeps operands used but unevaluated.

#if SILENCE_OBS_ON

#define HEALTH_COUNT_N(counter, n)                                       \
  ::silence::obs::health::Registry::global().count(                      \
      ::silence::obs::health::Counter::counter,                          \
      static_cast<std::uint64_t>(n))
#define HEALTH_COUNT(counter) HEALTH_COUNT_N(counter, 1)
#define HEALTH_WATERFALL(kind, subcarrier, value)                        \
  ::silence::obs::health::Registry::global().waterfall(                  \
      ::silence::obs::health::Waterfall::kind,                           \
      static_cast<std::size_t>(subcarrier),                              \
      static_cast<std::uint64_t>(value))
#define HEALTH_SCORE(truth_silent, subcarrier, value)                    \
  ::silence::obs::health::Registry::global().score(                      \
      (truth_silent) ? ::silence::obs::health::Truth::kSilent            \
                     : ::silence::obs::health::Truth::kActive,           \
      static_cast<std::size_t>(subcarrier),                              \
      static_cast<std::uint64_t>(value))
#define HEALTH_NABLA_EVM(value)                                          \
  ::silence::obs::health::Registry::global().record_nabla_evm(           \
      static_cast<std::uint64_t>(value))

#else  // SILENCE_OBS_ON

#define HEALTH_COUNT_N(counter, n) do { (void)sizeof(n); } while (0)
#define HEALTH_COUNT(counter) do { } while (0)
#define HEALTH_WATERFALL(kind, subcarrier, value) \
  do { (void)sizeof(subcarrier); (void)sizeof(value); } while (0)
#define HEALTH_SCORE(truth_silent, subcarrier, value)                    \
  do {                                                                   \
    (void)sizeof(truth_silent);                                          \
    (void)sizeof(subcarrier);                                            \
    (void)sizeof(value);                                                 \
  } while (0)
#define HEALTH_NABLA_EVM(value) do { (void)sizeof(value); } while (0)

#endif  // SILENCE_OBS_ON
