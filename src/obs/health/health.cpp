#include "obs/health/health.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/trace.h"

namespace silence::obs::health {
namespace {

// Single-writer cells, same discipline as the metrics registry: plain
// load+store beats fetch_add and is still tear-free for snapshot readers.
inline void cell_add(std::atomic<std::uint64_t>& cell, std::uint64_t delta) {
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kCount);
constexpr std::size_t kNumWaterfalls =
    static_cast<std::size_t>(Waterfall::kCount);
constexpr std::size_t kNumTruths = static_cast<std::size_t>(Truth::kCount);

constexpr const char* kCounterNames[kNumCounters] = {
    "plan.calls",
    "plan.intervals",
    "plan.silences",
    "plan.bits",
    "decode.rounds",
    "decode.intervals",
    "decode.bits",
    "select.rounds",
    "select.selected",
    "select.detectable",
    "select.erroneous",
    "detector.truth_active",
    "detector.truth_silent",
    "detector.false_alarms",
    "detector.misses",
};

constexpr const char* kWaterfallNames[kNumWaterfalls] = {
    "snr_x256",
    "evm_x4096",
    "chan_mag_x1024",
};

constexpr const char* kTruthNames[kNumTruths] = {"active", "silent"};

const runner::Json& require(const runner::Json& json, std::string_view key) {
  const runner::Json* value = json.find(key);
  if (value == nullptr) {
    throw std::runtime_error("health: missing field '" + std::string(key) +
                             "'");
  }
  return *value;
}

runner::Json hist_json(const HealthHist& h) {
  runner::Json root = runner::Json::object();
  root.set("count", static_cast<std::int64_t>(h.count));
  root.set("sum", static_cast<std::int64_t>(h.sum));
  root.set("min", static_cast<std::int64_t>(h.min));
  root.set("max", static_cast<std::int64_t>(h.max));
  std::size_t last = h.buckets.size();
  while (last > 0 && h.buckets[last - 1] == 0) --last;
  runner::Json tallies = runner::Json::array();
  for (std::size_t b = 0; b < last; ++b) {
    tallies.push_back(static_cast<std::int64_t>(h.buckets[b]));
  }
  root.set("buckets", std::move(tallies));
  return root;
}

HealthHist hist_from_json(const runner::Json& json) {
  HealthHist h;
  h.count = static_cast<std::uint64_t>(require(json, "count").as_int());
  h.sum = static_cast<std::uint64_t>(require(json, "sum").as_int());
  h.min = static_cast<std::uint64_t>(require(json, "min").as_int());
  h.max = static_cast<std::uint64_t>(require(json, "max").as_int());
  const runner::Json& tallies = require(json, "buckets");
  if (!tallies.is_array() || tallies.size() > kHistogramBuckets) {
    throw std::runtime_error("health: malformed histogram buckets");
  }
  for (std::size_t b = 0; b < tallies.size(); ++b) {
    h.buckets[b] =
        static_cast<std::uint64_t>(tallies.as_array()[b].as_int());
  }
  return h;
}

runner::Json hist_row_json(const std::array<HealthHist, kSubcarriers>& row) {
  runner::Json cells = runner::Json::array();
  for (const HealthHist& h : row) cells.push_back(hist_json(h));
  return cells;
}

void hist_row_from_json(const runner::Json& cells,
                        std::array<HealthHist, kSubcarriers>& row) {
  if (!cells.is_array() || cells.size() != kSubcarriers) {
    throw std::runtime_error("health: subcarrier row must have 48 cells");
  }
  for (std::size_t i = 0; i < kSubcarriers; ++i) {
    row[i] = hist_from_json(cells.as_array()[i]);
  }
}

}  // namespace

const char* counter_name(Counter c) {
  return kCounterNames[static_cast<std::size_t>(c)];
}

const char* waterfall_name(Waterfall w) {
  return kWaterfallNames[static_cast<std::size_t>(w)];
}

const char* truth_name(Truth t) {
  return kTruthNames[static_cast<std::size_t>(t)];
}

HealthHist& HealthHist::operator+=(const HealthHist& o) {
  if (o.count == 0) return *this;
  if (count == 0 || o.min < min) min = o.min;
  if (count == 0 || o.max > max) max = o.max;
  count += o.count;
  sum += o.sum;
  for (std::size_t b = 0; b < buckets.size(); ++b) buckets[b] += o.buckets[b];
  return *this;
}

bool HealthSnapshot::empty() const {
  for (const std::uint64_t c : counters) {
    if (c != 0) return false;
  }
  for (const auto& kind : waterfalls) {
    for (const HealthHist& h : kind) {
      if (h.count != 0) return false;
    }
  }
  for (const auto& truth : scores) {
    for (const HealthHist& h : truth) {
      if (h.count != 0) return false;
    }
  }
  return nabla_evm.count == 0;
}

HealthSnapshot& HealthSnapshot::operator+=(const HealthSnapshot& o) {
  for (std::size_t i = 0; i < counters.size(); ++i) counters[i] += o.counters[i];
  for (std::size_t w = 0; w < waterfalls.size(); ++w) {
    for (std::size_t s = 0; s < kSubcarriers; ++s) {
      waterfalls[w][s] += o.waterfalls[w][s];
    }
  }
  for (std::size_t t = 0; t < scores.size(); ++t) {
    for (std::size_t s = 0; s < kSubcarriers; ++s) {
      scores[t][s] += o.scores[t][s];
    }
  }
  nabla_evm += o.nabla_evm;
  return *this;
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked, like the metrics
  return *instance;                            // registry
}

// Ties a pooled block to one thread's lifetime; returned to the free
// list on thread exit so totals survive thread death and memory stays
// bounded at O(peak concurrent threads).
struct HealthBlockLease {
  Registry* registry = nullptr;
  Registry::ThreadBlock* block = nullptr;

  Registry::ThreadBlock& acquire(Registry& reg) {
    if (block == nullptr) {
      registry = &reg;
      std::lock_guard lock(reg.mutex_);
      if (!reg.free_blocks_.empty()) {
        block = reg.free_blocks_.back();
        reg.free_blocks_.pop_back();
      } else {
        block = &reg.blocks_.emplace_back();
      }
    }
    return *block;
  }

  ~HealthBlockLease() {
    if (block != nullptr) {
      std::lock_guard lock(registry->mutex_);
      registry->free_blocks_.push_back(block);
    }
  }
};

Registry::ThreadBlock& Registry::local_block() {
  thread_local HealthBlockLease lease;
  return lease.acquire(*this);
}

void Registry::record_cell(HistCells& cell, std::uint64_t value) {
  const std::uint64_t count = cell.count.load(std::memory_order_relaxed);
  if (count == 0 || value < cell.min.load(std::memory_order_relaxed)) {
    cell.min.store(value, std::memory_order_relaxed);
  }
  if (count == 0 || value > cell.max.load(std::memory_order_relaxed)) {
    cell.max.store(value, std::memory_order_relaxed);
  }
  cell.count.store(count + 1, std::memory_order_relaxed);
  cell_add(cell.sum, value);
  cell_add(cell.buckets[histogram_bucket(value)], 1);
}

void Registry::count(Counter c, std::uint64_t delta) {
  cell_add(local_block().counters[static_cast<std::size_t>(c)], delta);
}

void Registry::waterfall(Waterfall kind, std::size_t subcarrier,
                         std::uint64_t value) {
  if (subcarrier >= kSubcarriers) return;
  record_cell(
      local_block().waterfalls[static_cast<std::size_t>(kind)][subcarrier],
      value);
}

void Registry::score(Truth truth, std::size_t subcarrier,
                     std::uint64_t value) {
  if (subcarrier >= kSubcarriers) return;
  record_cell(local_block().scores[static_cast<std::size_t>(truth)][subcarrier],
              value);
}

void Registry::record_nabla_evm(std::uint64_t value) {
  record_cell(local_block().nabla_evm, value);
}

HealthSnapshot Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  HealthSnapshot snap;
  const auto merge_cell = [](HealthHist& into, const HistCells& cells) {
    const std::uint64_t count = cells.count.load(std::memory_order_relaxed);
    if (count == 0) return;
    const std::uint64_t mn = cells.min.load(std::memory_order_relaxed);
    const std::uint64_t mx = cells.max.load(std::memory_order_relaxed);
    if (into.count == 0 || mn < into.min) into.min = mn;
    if (into.count == 0 || mx > into.max) into.max = mx;
    into.count += count;
    into.sum += cells.sum.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      into.buckets[b] += cells.buckets[b].load(std::memory_order_relaxed);
    }
  };
  for (const ThreadBlock& block : blocks_) {
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      snap.counters[i] += block.counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t w = 0; w < kNumWaterfalls; ++w) {
      for (std::size_t s = 0; s < kSubcarriers; ++s) {
        merge_cell(snap.waterfalls[w][s], block.waterfalls[w][s]);
      }
    }
    for (std::size_t t = 0; t < kNumTruths; ++t) {
      for (std::size_t s = 0; s < kSubcarriers; ++s) {
        merge_cell(snap.scores[t][s], block.scores[t][s]);
      }
    }
    merge_cell(snap.nabla_evm, block.nabla_evm);
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  const auto clear_cell = [](HistCells& cell) {
    cell.count.store(0, std::memory_order_relaxed);
    cell.sum.store(0, std::memory_order_relaxed);
    cell.min.store(0, std::memory_order_relaxed);
    cell.max.store(0, std::memory_order_relaxed);
    for (auto& b : cell.buckets) b.store(0, std::memory_order_relaxed);
  };
  for (ThreadBlock& block : blocks_) {
    for (auto& c : block.counters) c.store(0, std::memory_order_relaxed);
    for (auto& kind : block.waterfalls) {
      for (auto& cell : kind) clear_cell(cell);
    }
    for (auto& truth : block.scores) {
      for (auto& cell : truth) clear_cell(cell);
    }
    clear_cell(block.nabla_evm);
  }
}

std::uint64_t quantize(double value, double scale) {
  if (!(value > 0.0)) return 0;  // negatives and NaN quantize to 0
  const double scaled = value * scale;
  // Cap below 2^53 so quantized values survive a double-typed JSON
  // round trip exactly.
  constexpr double kCap = 4503599627370496.0;  // 2^52
  if (!(scaled < kCap)) return static_cast<std::uint64_t>(kCap);
  return static_cast<std::uint64_t>(scaled);
}

std::uint64_t quantize_score(double energy, double threshold) {
  std::uint64_t q = 0;
  if (threshold > 0.0) {
    q = quantize(energy / threshold, kScoreScale);
  } else if (energy > 0.0) {
    q = std::uint64_t{1} << 52;
  }
  // Fold the detector's decision into the quantization so the histogram
  // boundary at 256 reproduces the mask-derived counts exactly, immune
  // to the floating-point edge where energy/threshold rounds across it.
  if (energy < threshold) {
    if (q >= kScoreThreshold) q = kScoreThreshold - 1;
  } else if (q < kScoreThreshold) {
    q = kScoreThreshold;
  }
  return q;
}

runner::Json health_json(const HealthSnapshot& snapshot) {
  runner::Json root = runner::Json::object();
  root.set("schema", "cos.health.v1");
  runner::Json counters = runner::Json::object();
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    counters.set(kCounterNames[i],
                 static_cast<std::int64_t>(snapshot.counters[i]));
  }
  root.set("counters", std::move(counters));
  runner::Json waterfalls = runner::Json::object();
  for (std::size_t w = 0; w < kNumWaterfalls; ++w) {
    runner::Json kind = runner::Json::object();
    kind.set("subcarriers", hist_row_json(snapshot.waterfalls[w]));
    waterfalls.set(kWaterfallNames[w], std::move(kind));
  }
  root.set("waterfalls", std::move(waterfalls));
  runner::Json detector = runner::Json::object();
  detector.set("scale", static_cast<std::int64_t>(kScoreScale));
  detector.set("threshold_score", static_cast<std::int64_t>(kScoreThreshold));
  for (std::size_t t = 0; t < kNumTruths; ++t) {
    detector.set(kTruthNames[t], hist_row_json(snapshot.scores[t]));
  }
  root.set("detector", std::move(detector));
  root.set("nabla_evm_x4096", hist_json(snapshot.nabla_evm));
  return root;
}

HealthSnapshot health_from_json(const runner::Json& doc) {
  const runner::Json& schema = require(doc, "schema");
  if (schema.as_string() != "cos.health.v1") {
    throw std::runtime_error("health: unsupported schema '" +
                             schema.as_string() + "'");
  }
  HealthSnapshot snap;
  const runner::Json& counters = require(doc, "counters");
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    snap.counters[i] =
        static_cast<std::uint64_t>(require(counters, kCounterNames[i]).as_int());
  }
  const runner::Json& waterfalls = require(doc, "waterfalls");
  for (std::size_t w = 0; w < kNumWaterfalls; ++w) {
    const runner::Json& kind = require(waterfalls, kWaterfallNames[w]);
    hist_row_from_json(require(kind, "subcarriers"), snap.waterfalls[w]);
  }
  const runner::Json& detector = require(doc, "detector");
  for (std::size_t t = 0; t < kNumTruths; ++t) {
    hist_row_from_json(require(detector, kTruthNames[t]), snap.scores[t]);
  }
  snap.nabla_evm = hist_from_json(require(doc, "nabla_evm_x4096"));
  return snap;
}

runner::Json merge_health_json(const std::vector<runner::Json>& docs) {
  HealthSnapshot merged;
  for (const runner::Json& doc : docs) merged += health_from_json(doc);
  return health_json(merged);
}

void maybe_trace_counters() {
  auto& tracer = Tracer::global();
  if (!tracer.active()) return;
  static std::atomic<std::uint64_t> calls{0};
  if (calls.fetch_add(1, std::memory_order_relaxed) % kTraceSampleEvery != 0) {
    return;
  }
  const HealthSnapshot snap = Registry::global().snapshot();
  std::uint64_t evm_count = 0, evm_sum = 0;
  for (const HealthHist& h :
       snap.waterfalls[static_cast<std::size_t>(Waterfall::kEvm)]) {
    evm_count += h.count;
    evm_sum += h.sum;
  }
  if (evm_count > 0) {
    tracer.counter("health.mean_evm", static_cast<double>(evm_sum) /
                                          static_cast<double>(evm_count) /
                                          kEvmScale);
  }
  std::uint64_t score_count = 0, score_sum = 0;
  for (const auto& truth : snap.scores) {
    for (const HealthHist& h : truth) {
      score_count += h.count;
      score_sum += h.sum;
    }
  }
  if (score_count > 0) {
    // Mean energy/threshold ratio across all detector evaluations: the
    // margin the score stream sits at relative to the decision boundary.
    tracer.counter("health.detector_margin",
                   static_cast<double>(score_sum) /
                       static_cast<double>(score_count) / kScoreScale);
  }
  const std::uint64_t rounds =
      snap.counters[static_cast<std::size_t>(Counter::kSelectionRounds)];
  if (rounds > 0) {
    tracer.counter(
        "health.selected_subcarriers",
        static_cast<double>(
            snap.counters[static_cast<std::size_t>(
                Counter::kSubcarriersSelected)]) /
            static_cast<double>(rounds));
  }
}

}  // namespace silence::obs::health
