#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <stdexcept>

namespace silence::obs {
namespace {

std::uint32_t intern(std::vector<std::string>& names, std::string_view name,
                     std::size_t capacity, const char* kind) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<std::uint32_t>(i);
  }
  if (names.size() >= capacity) {
    throw std::length_error(std::string("obs: too many ") + kind +
                            " metrics (cap " + std::to_string(capacity) +
                            ")");
  }
  names.emplace_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

// Single-writer cells: plain load+store beats fetch_add (no lock prefix)
// and is still tear-free for concurrent snapshot readers.
inline void cell_add(std::atomic<std::uint64_t>& cell, std::uint64_t delta) {
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::size_t histogram_bucket(std::uint64_t value) {
  if (value == 0) return 0;
  return std::min<std::size_t>(std::bit_width(value), kHistogramBuckets - 1);
}

std::uint64_t histogram_bucket_floor(std::size_t index) {
  if (index == 0) return 0;
  return std::uint64_t{1} << (index - 1);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min);
  if (q >= 1.0) return static_cast<double>(max);
  const double target = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const double n = static_cast<double>(buckets[b]);
    if (n == 0.0) continue;
    if (cumulative + n >= target) {
      const double lower = static_cast<double>(histogram_bucket_floor(b));
      // The last bucket is open-ended; the observed max bounds it.
      const double upper =
          b + 1 < buckets.size()
              ? static_cast<double>(histogram_bucket_floor(b + 1))
              : static_cast<double>(max);
      const double fraction = (target - cumulative) / n;
      const double value = lower + fraction * (upper - lower);
      return std::clamp(value, static_cast<double>(min),
                        static_cast<double>(max));
    }
    cumulative += n;
  }
  return static_cast<double>(max);
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const CounterSnapshot* MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // intentionally leaked:
  // instrumented code may run during static destruction of other TUs.
  return *instance;
}

// Ties a pooled block to the lifetime of one thread: acquired on the
// thread's first recording, returned to the free list when it exits so a
// later thread can continue accumulating into the same cells.
struct ThreadBlockLease {
  Registry* registry = nullptr;
  Registry::ThreadBlock* block = nullptr;

  Registry::ThreadBlock& acquire(Registry& reg) {
    if (block == nullptr) {
      registry = &reg;
      std::lock_guard lock(reg.mutex_);
      if (!reg.free_blocks_.empty()) {
        block = reg.free_blocks_.back();
        reg.free_blocks_.pop_back();
      } else {
        block = &reg.blocks_.emplace_back();
      }
    }
    return *block;
  }

  ~ThreadBlockLease() {
    if (block != nullptr) {
      std::lock_guard lock(registry->mutex_);
      registry->free_blocks_.push_back(block);
    }
  }
};

Registry::ThreadBlock& Registry::local_block() {
  thread_local ThreadBlockLease lease;
  return lease.acquire(*this);
}

std::uint32_t Registry::counter_id(std::string_view name) {
  std::lock_guard lock(mutex_);
  return intern(counter_names_, name, kMaxCounters, "counter");
}

std::uint32_t Registry::gauge_id(std::string_view name) {
  std::lock_guard lock(mutex_);
  return intern(gauge_names_, name, kMaxGauges, "gauge");
}

std::uint32_t Registry::histogram_id(std::string_view name) {
  std::lock_guard lock(mutex_);
  return intern(histogram_names_, name, kMaxHistograms, "histogram");
}

void Registry::counter_add(std::uint32_t id, std::uint64_t delta) {
  cell_add(local_block().counters[id], delta);
}

void Registry::gauge_set(std::uint32_t id, std::int64_t value) {
  gauges_[id].store(value, std::memory_order_relaxed);
  gauge_set_[id].store(true, std::memory_order_relaxed);
}

void Registry::histogram_record(std::uint32_t id, std::uint64_t value) {
  HistogramCells& h = local_block().histograms[id];
  const std::uint64_t count = h.count.load(std::memory_order_relaxed);
  if (count == 0 || value < h.min.load(std::memory_order_relaxed)) {
    h.min.store(value, std::memory_order_relaxed);
  }
  if (count == 0 || value > h.max.load(std::memory_order_relaxed)) {
    h.max.store(value, std::memory_order_relaxed);
  }
  h.count.store(count + 1, std::memory_order_relaxed);
  cell_add(h.sum, value);
  cell_add(h.buckets[histogram_bucket(value)], 1);
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;

  snap.counters.resize(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    snap.counters[i].name = counter_names_[i];
  }
  snap.histograms.resize(histogram_names_.size());
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    snap.histograms[i].name = histogram_names_[i];
    snap.histograms[i].buckets.assign(kHistogramBuckets, 0);
  }
  for (const ThreadBlock& block : blocks_) {
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
      snap.counters[i].value +=
          block.counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
      const HistogramCells& cells = block.histograms[i];
      const std::uint64_t count = cells.count.load(std::memory_order_relaxed);
      if (count == 0) continue;
      HistogramSnapshot& h = snap.histograms[i];
      const std::uint64_t mn = cells.min.load(std::memory_order_relaxed);
      const std::uint64_t mx = cells.max.load(std::memory_order_relaxed);
      if (h.count == 0 || mn < h.min) h.min = mn;
      if (h.count == 0 || mx > h.max) h.max = mx;
      h.count += count;
      h.sum += cells.sum.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        h.buckets[b] += cells.buckets[b].load(std::memory_order_relaxed);
      }
    }
  }
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    if (!gauge_set_[i].load(std::memory_order_relaxed)) continue;
    snap.gauges.push_back(
        {gauge_names_[i], gauges_[i].load(std::memory_order_relaxed)});
  }

  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (ThreadBlock& block : blocks_) {
    for (auto& c : block.counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : block.histograms) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
      h.min.store(0, std::memory_order_relaxed);
      h.max.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
  for (auto& s : gauge_set_) s.store(false, std::memory_order_relaxed);
}

std::string metrics_to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n    \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "      ";
    append_escaped(out, snapshot.counters[i].name);
    out += ": " + std::to_string(snapshot.counters[i].value);
  }
  out += snapshot.counters.empty() ? "},\n" : "\n    },\n";
  out += "    \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "      ";
    append_escaped(out, snapshot.gauges[i].name);
    out += ": " + std::to_string(snapshot.gauges[i].value);
  }
  out += snapshot.gauges.empty() ? "},\n" : "\n    },\n";
  out += "    \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      ";
    append_escaped(out, h.name);
    out += ": {\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + std::to_string(h.sum);
    out += ", \"min\": " + std::to_string(h.min);
    out += ", \"max\": " + std::to_string(h.max);
    // Trailing empty buckets are elided; floors make the file
    // self-describing.
    std::size_t last = h.buckets.size();
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    out += ", \"bucket_floors\": [";
    for (std::size_t b = 0; b < last; ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(histogram_bucket_floor(b));
    }
    out += "], \"buckets\": [";
    for (std::size_t b = 0; b < last; ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(h.buckets[b]);
    }
    out += "]}";
  }
  out += snapshot.histograms.empty() ? "}\n  }" : "\n    }\n  }";
  return out;
}

}  // namespace silence::obs
