// Per-trial flight recorder: a black box for the rare events CoS
// correctness lives in (a missed silence symbol, a false-alarm detection,
// a CRC failure after erasure recovery).
//
// Hot paths append compact fixed-size events — channel taps, per-
// subcarrier CSI, detector score vs. threshold, Viterbi corrected-bit
// counts, interval decode outcomes — through the FLIGHT_EVENT macro into
// the calling thread's active TrialRecording, a bounded ring buffer that
// evicts its oldest events on overflow. A clean trial discards the ring
// on scope exit; when an anomaly predicate fires (CRC fail, control
// miss, false alarm, or an explicit trigger()) the harness routes the
// recording through the DumpRouter, which writes a self-contained JSON
// artifact including the trial's SplitMix64 seed and replay spec.
// `tools/silence_diag` replays such an artifact bit-exactly.
//
// Cost model: with no active recording a FLIGHT_EVENT is one thread-local
// pointer load; recording itself is a bounds check plus a 40-byte store.
// Building with -DSILENCE_OBS=OFF compiles every FLIGHT_EVENT site to
// nothing (same contract as the obs/obs.h macros); the runtime classes
// below still build so tooling links either way.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.h"  // defines SILENCE_OBS_ON
#include "runner/json.h"

namespace silence::obs::flight {

inline constexpr int kFlightSchemaVersion = 1;

// Default ring capacity: a fig10-sized trial (48 symbols x 8 control
// subcarriers of detector scores plus CSI/taps/plan/outcome events) fits
// with headroom; longer trials keep their newest ~8k events.
inline constexpr std::size_t kDefaultFlightCapacity = 8192;

// Marks the symbol/subcarrier fields of events they don't apply to.
inline constexpr std::int32_t kNoIndex = -1;

// One recorded event. `stage` must be a string literal (stored by
// pointer, never freed); the payload fields are stage-specific and
// documented at each instrumentation site (docs/ARCHITECTURE.md,
// "Forensics & replay").
struct Event {
  const char* stage = "";
  std::int32_t symbol = kNoIndex;      // OFDM symbol index
  std::int32_t subcarrier = kNoIndex;  // logical data subcarrier / tap
  double a = 0.0;
  double b = 0.0;
  std::uint64_t u = 0;
};

// Where a trial sits in its sweep — the coordinates that, with the base
// spec, make the dump filename unique across concurrent sweeps.
struct TrialLabel {
  std::string sweep;  // sweep/bench name, e.g. "fig10_detection.b"
  std::size_t point_index = 0;
  std::size_t trial_index = 0;
};

// RAII recording scope. Constructing installs the recording as the
// calling thread's active one (restoring any outer recording on
// destruction), so instrumentation sites need no plumbing — they hit the
// thread-local through FLIGHT_EVENT. A recording is single-threaded by
// design: one trial runs on one worker thread.
class TrialRecording {
 public:
  TrialRecording(TrialLabel label, std::uint64_t seed, runner::Json spec,
                 std::size_t capacity = kDefaultFlightCapacity);
  ~TrialRecording();
  TrialRecording(const TrialRecording&) = delete;
  TrialRecording& operator=(const TrialRecording&) = delete;

  // The calling thread's active recording, or nullptr.
  static TrialRecording* active();

  // Appends to the ring, evicting the oldest event when full.
  void record(const Event& event);

  // Flags an anomaly (idempotent per reason). Any flagged reason makes
  // the recording eligible for dumping.
  void trigger(std::string_view reason);
  bool triggered() const { return !reasons_.empty(); }
  const std::vector<std::string>& reasons() const { return reasons_; }

  // Harness-provided outcome summary embedded in the artifact (decoded
  // PSDU digest, confusion counts, ...). Opaque to the recorder.
  void set_result(runner::Json result) { result_ = std::move(result); }

  std::size_t size() const { return count_; }
  std::size_t capacity() const { return ring_.size(); }
  std::size_t evicted() const { return evicted_; }
  const TrialLabel& label() const { return label_; }
  std::uint64_t seed() const { return seed_; }

  // Events oldest-to-newest (unwraps the ring).
  std::vector<Event> events() const;

  // The self-contained dump: schema version, label, seed (hex string —
  // JSON integers cannot hold a full uint64), anomaly reasons, replay
  // spec, result summary, and every held event.
  runner::Json artifact() const;

 private:
  TrialLabel label_;
  std::uint64_t seed_;
  runner::Json spec_;
  runner::Json result_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;  // slot the next event goes to
  std::size_t count_ = 0;
  std::size_t evicted_ = 0;
  std::vector<std::string> reasons_;
  TrialRecording* outer_;  // restored on destruction
};

// Renders a trial seed as the artifact's "seed" string ("0x%016x" form)
// and parses it back. parse throws std::runtime_error on malformed input.
std::string seed_to_string(std::uint64_t seed);
std::uint64_t seed_from_string(std::string_view text);

// Compares two artifacts for bit-identical replay: schema, seed, spec,
// result and every event (double payloads compared by exact bit pattern
// via the deterministic serializer). On mismatch returns false and, when
// `diff` is non-null, stores a one-line description of the first
// difference.
bool compare_artifacts(const runner::Json& expected,
                       const runner::Json& actual, std::string* diff);

// Routes triggered recordings to disk. Configured once per process (from
// --flight-dir/--flight-limit); route() is safe to call from worker
// threads — the dump budget is claimed with one atomic increment and
// filenames are unique by construction:
//
//   <dir>/<sweep>__p<point>__t<trial>__s<seed-hex16>.flight.json
//
// (sweep sanitized to [A-Za-z0-9._-]), so concurrent sweeps and trials
// can never collide.
class DumpRouter {
 public:
  static DumpRouter& global();

  void configure(std::string dir, std::size_t limit);
  void disable();
  bool enabled() const;
  std::string dir() const;

  // Writes `rec.artifact()` if the recording is triggered, routing is
  // enabled and the dump budget is not exhausted. Returns the path
  // written, or "" when skipped.
  std::string route(const TrialRecording& rec);

  // Dump filename (not the full path) for a label + seed; exposed so
  // tests can pin the naming scheme.
  static std::string dump_name(const TrialLabel& label, std::uint64_t seed);

  std::size_t dumped() const { return dumped_.load(std::memory_order_relaxed); }
  std::size_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

 private:
  DumpRouter() = default;

  mutable std::mutex mutex_;  // guards dir_/limit_ (configure vs route)
  std::string dir_;
  std::size_t limit_ = 0;
  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> dumped_{0};
  std::atomic<std::size_t> suppressed_{0};
};

}  // namespace silence::obs::flight

// The instrumentation-site macro. Arguments: stage literal, symbol index,
// subcarrier index (kNoIndex when not applicable), two double payloads
// and one integer payload. Compiles to nothing under SILENCE_OBS=OFF or
// per-TU SILENCE_OBS_FORCE_OFF.
#if SILENCE_OBS_ON

#define FLIGHT_EVENT(stage, symbol, subcarrier, a, b, u)                  \
  do {                                                                    \
    ::silence::obs::flight::TrialRecording* flight_rec_ =                 \
        ::silence::obs::flight::TrialRecording::active();                 \
    if (flight_rec_ != nullptr) {                                         \
      flight_rec_->record(::silence::obs::flight::Event{                  \
          (stage), static_cast<std::int32_t>(symbol),                     \
          static_cast<std::int32_t>(subcarrier),                          \
          static_cast<double>(a), static_cast<double>(b),                 \
          static_cast<std::uint64_t>(u)});                                \
    }                                                                     \
  } while (0)

#else  // SILENCE_OBS_ON

#define FLIGHT_EVENT(stage, symbol, subcarrier, a, b, u)                  \
  do {                                                                    \
    (void)sizeof(symbol);                                                 \
    (void)sizeof(subcarrier);                                             \
    (void)sizeof(a);                                                      \
    (void)sizeof(b);                                                      \
    (void)sizeof(u);                                                      \
  } while (0)

#endif  // SILENCE_OBS_ON
