#include "obs/flight/flight.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace silence::obs::flight {

namespace {

TrialRecording*& active_slot() {
  thread_local TrialRecording* slot = nullptr;
  return slot;
}

runner::Json event_to_json(const Event& event) {
  runner::Json entry = runner::Json::object();
  entry.set("stage", event.stage);
  entry.set("sym", static_cast<std::int64_t>(event.symbol));
  entry.set("sc", static_cast<std::int64_t>(event.subcarrier));
  entry.set("a", event.a);
  entry.set("b", event.b);
  entry.set("u", static_cast<std::int64_t>(event.u));
  return entry;
}

std::string sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    out.push_back(keep ? c : '-');
  }
  return out.empty() ? std::string("unnamed") : out;
}

}  // namespace

TrialRecording::TrialRecording(TrialLabel label, std::uint64_t seed,
                               runner::Json spec, std::size_t capacity)
    : label_(std::move(label)),
      seed_(seed),
      spec_(std::move(spec)),
      ring_(capacity == 0 ? 1 : capacity),
      outer_(active_slot()) {
  active_slot() = this;
}

TrialRecording::~TrialRecording() { active_slot() = outer_; }

TrialRecording* TrialRecording::active() { return active_slot(); }

void TrialRecording::record(const Event& event) {
  ring_[head_] = event;
  head_ = (head_ + 1) % ring_.size();
  if (count_ < ring_.size()) {
    ++count_;
  } else {
    ++evicted_;  // head_ just overwrote the oldest event
  }
}

void TrialRecording::trigger(std::string_view reason) {
  for (const auto& existing : reasons_) {
    if (existing == reason) return;
  }
  reasons_.emplace_back(reason);
}

std::vector<Event> TrialRecording::events() const {
  std::vector<Event> out;
  out.reserve(count_);
  // Oldest event: at slot head_ when the ring has wrapped, else slot 0.
  const std::size_t first = count_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(first + i) % ring_.size()]);
  }
  return out;
}

runner::Json TrialRecording::artifact() const {
  runner::Json root = runner::Json::object();
  root.set("kind", "cos_flight_recording");
  root.set("schema_version", kFlightSchemaVersion);
  root.set("sweep", label_.sweep);
  root.set("point_index", static_cast<std::int64_t>(label_.point_index));
  root.set("trial_index", static_cast<std::int64_t>(label_.trial_index));
  root.set("seed", seed_to_string(seed_));
  runner::Json reasons = runner::Json::array();
  for (const auto& reason : reasons_) reasons.push_back(reason);
  root.set("anomalies", std::move(reasons));
  root.set("spec", spec_);
  root.set("result", result_);
  root.set("events_evicted", static_cast<std::int64_t>(evicted_));
  runner::Json events_json = runner::Json::array();
  for (const Event& event : events()) {
    events_json.push_back(event_to_json(event));
  }
  root.set("events", std::move(events_json));
  return root;
}

std::string seed_to_string(std::uint64_t seed) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, seed);
  return buf;
}

std::uint64_t seed_from_string(std::string_view text) {
  if (text.size() < 3 || text.substr(0, 2) != "0x") {
    throw std::runtime_error("flight: seed must be a 0x-prefixed hex string");
  }
  std::uint64_t value = 0;
  for (const char c : text.substr(2)) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') digit = static_cast<std::uint64_t>(c - 'A' + 10);
    else throw std::runtime_error("flight: invalid hex digit in seed");
    value = (value << 4) | digit;
  }
  return value;
}

namespace {

const runner::Json* field(const runner::Json& root, std::string_view key) {
  return root.is_object() ? root.find(key) : nullptr;
}

// Textual comparison through the deterministic serializer: equal dumps
// imply equal values including every double's bit pattern.
bool same(const runner::Json* x, const runner::Json* y) {
  if ((x == nullptr) != (y == nullptr)) return false;
  if (x == nullptr) return true;
  return x->dump_compact() == y->dump_compact();
}

}  // namespace

bool compare_artifacts(const runner::Json& expected,
                       const runner::Json& actual, std::string* diff) {
  const auto mismatch = [&](const std::string& what) {
    if (diff != nullptr) *diff = what;
    return false;
  };
  for (const char* key : {"schema_version", "seed", "spec", "result"}) {
    if (!same(field(expected, key), field(actual, key))) {
      return mismatch(std::string("field '") + key + "' differs");
    }
  }
  const runner::Json* ee = field(expected, "events");
  const runner::Json* ae = field(actual, "events");
  if ((ee == nullptr) != (ae == nullptr)) {
    return mismatch("one artifact has no events array");
  }
  if (ee != nullptr) {
    const auto& eva = ee->as_array();
    const auto& ava = ae->as_array();
    if (eva.size() != ava.size()) {
      return mismatch("event count differs: " + std::to_string(eva.size()) +
                      " vs " + std::to_string(ava.size()));
    }
    for (std::size_t i = 0; i < eva.size(); ++i) {
      if (eva[i].dump_compact() != ava[i].dump_compact()) {
        return mismatch("event " + std::to_string(i) + " differs: " +
                        eva[i].dump_compact() + " vs " +
                        ava[i].dump_compact());
      }
    }
  }
  if (diff != nullptr) diff->clear();
  return true;
}

DumpRouter& DumpRouter::global() {
  static DumpRouter* instance = new DumpRouter();  // leaked like Registry
  return *instance;
}

void DumpRouter::configure(std::string dir, std::size_t limit) {
  std::lock_guard lock(mutex_);
  dir_ = std::move(dir);
  limit_ = limit;
  dumped_.store(0, std::memory_order_relaxed);
  suppressed_.store(0, std::memory_order_relaxed);
  enabled_.store(!dir_.empty() && limit_ > 0, std::memory_order_release);
}

void DumpRouter::disable() {
  std::lock_guard lock(mutex_);
  enabled_.store(false, std::memory_order_release);
}

bool DumpRouter::enabled() const {
  return enabled_.load(std::memory_order_acquire);
}

std::string DumpRouter::dir() const {
  std::lock_guard lock(mutex_);
  return dir_;
}

std::string DumpRouter::dump_name(const TrialLabel& label,
                                  std::uint64_t seed) {
  return sanitize(label.sweep) + "__p" + std::to_string(label.point_index) +
         "__t" + std::to_string(label.trial_index) + "__s" +
         seed_to_string(seed).substr(2) + ".flight.json";
}

std::string DumpRouter::route(const TrialRecording& rec) {
  if (!rec.triggered() || !enabled()) return "";
  std::string dir;
  {
    std::lock_guard lock(mutex_);
    // Claim a dump slot; the budget bounds artifact volume when a sweep
    // point is pathological (every trial anomalous).
    if (dumped_.load(std::memory_order_relaxed) >= limit_) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return "";
    }
    dumped_.fetch_add(1, std::memory_order_relaxed);
    dir = dir_;
  }
  const std::filesystem::path path =
      std::filesystem::path(dir) / dump_name(rec.label(), rec.seed());
  std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("flight: cannot open " + path.string());
  }
  out << rec.artifact().dump();
  return path.string();
}

}  // namespace silence::obs::flight
