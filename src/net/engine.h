// The event-driven network core behind run_scenario: a stateful NetSim
// that replaces the old slotted single-AP loop with a calendar queue of
// timestamped arrival / round-start / backoff-expiry / TX-end events
// (net/events.h), so multiple BSSs contend concurrently, their PPDUs
// overlap in simulated time, and open-loop traffic models drive per-
// station queues.
//
// Per BSS the DCF round structure is unchanged — DIFS + smallest backoff
// counter of idle, then one winner's frame exchange or a collision — and
// on a single-BSS saturated scenario the engine reproduces the legacy
// slotted loop's NetResult byte-for-byte: identical arithmetic
// expressions, identical per-station fading-advance call sequences,
// and zero extra RNG draws (arrival streams exist only for open-loop
// traffic; interference draws only when an overlap actually lands).
//
// What multi-BSS adds on top:
//  - OBSS interference: every in-flight PPDU registers a (channel,
//    interval) on a shared registry; when a winner's exchange completes,
//    the overlap fraction from other cells' PPDUs (weighted 1 for
//    co-channel, Topology::adjacent_leak for adjacent channels) becomes
//    a PulseInterferer on that one exchange — the paper's Fig. 10(d)
//    threat model, now emergent from topology instead of injected.
//  - Hidden terminals: a same-BSS contender that cannot hear the winner
//    (Topology::carrier_sense) keeps counting down and blind-fires into
//    the winner's PPDU; the victim sees the overlap as interference,
//    the firer burns a collision, and the round extends to cover the
//    stray PPDU.
//  - Traffic: saturated stations contend always; poisson / on-off
//    stations contend while their arrival queue is non-empty, and a BSS
//    with nothing to send sleeps until an arrival wakes it. Queueing
//    delay flows into the existing hol_wait_slots percentiles (the HOL
//    clock starts when a frame reaches the head of an empty queue).
//
// Determinism: the calendar queue pops in (timestamp, kind, bss, sta,
// FIFO) order and every handler is sequential, so the whole simulation
// is a pure function of (scenario, seed) at any thread or fabric count.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/events.h"
#include "net/scenario.h"
#include "net/station.h"
#include "net/timeline.h"

namespace silence::net {

class NetSim {
 public:
  NetSim() = default;
  NetSim(const Scenario& scenario, std::uint64_t seed) {
    init(scenario, seed);
  }

  // Builds stations, seeds the arrival streams and schedules the first
  // round of every BSS. Throws std::invalid_argument on a malformed
  // scenario. Re-initializing an already-used sim throws.
  void init(const Scenario& scenario, std::uint64_t seed);

  // Processes events until simulated time passes `t_us` (every event
  // with timestamp <= t_us runs), leaving mid-run state observable via
  // the accessors below. Rate controllers (ROADMAP item 2) hook in
  // here: step, read, adjust, repeat.
  void step_until(double t_us);

  // Runs the scenario to completion (duration reached on every BSS).
  void run();

  bool done() const;
  // Timestamp of the last processed event.
  double now_us() const { return now_us_; }
  std::uint64_t events_processed() const { return events_; }

  int num_stations() const { return static_cast<int>(stations_.size()); }
  int num_bss() const { return static_cast<int>(bss_.size()); }
  // Mid-run per-station views (valid after init()).
  const StaStats& station_stats(int i) const {
    return stations_[static_cast<std::size_t>(i)]->stats();
  }
  std::size_t station_queue_len(int i) const {
    return queue_len_[static_cast<std::size_t>(i)];
  }

  // Completes the run if needed, finalizes the per-station metrics
  // (idempotent) and returns the result.
  NetResult result();

 private:
  struct BlindFire {
    int sta = -1;        // the hidden contender
    double t_fire = 0.0; // when its counter would have expired
    double air_us = 0.0; // its stray PPDU's airtime
  };

  // Per-BSS scheduler state: the current round (between round-start and
  // backoff-expiry), the in-flight exchange (between expiry and TX-end)
  // and the dormancy/completion lifecycle.
  struct BssState {
    int channel = 0;
    std::vector<int> members;     // global station indices, ascending
    std::vector<int> contenders;  // this round's backlogged members
    int min_counter = 0;
    double idle_us = 0.0;
    int winner = -1;
    double tx_start = 0.0;
    double air_us = 0.0;
    std::vector<BlindFire> blind;
    bool dormant = false;
    bool wake_pending = false;
    double dormant_since = 0.0;
    bool finished = false;
    double end_us = 0.0;
  };

  // A PPDU currently on the air, visible to other BSSs as potential
  // OBSS interference. `sta` is -1 for a collision burst.
  struct TxInterval {
    int bss = 0;
    int sta = -1;
    int channel = 0;
    double start_us = 0.0;
    double end_us = 0.0;
  };

  void step();  // process exactly one event
  void start_round(int b, double t);
  void on_backoff_expiry(int b, double t);
  void on_tx_end(int b, double t);
  void on_arrival(int sta, double t);
  void finish_dormant();

  bool has_frame(int sta) const {
    return saturated_ || queue_len_[static_cast<std::size_t>(sta)] > 0;
  }
  void advance_members(const BssState& bss, double us, int except);
  // Weighted overlap of other cells' PPDUs with [start, start + air);
  // returns the interference fraction and accumulates obss_overlap_us.
  double obss_fraction(int b, double start, double air_us);
  void prune_intervals(double t);
  void pregenerate_arrivals(std::uint64_t seed);

  Scenario scenario_;
  std::unique_ptr<PhyBatch> phy_batch_;
  std::vector<std::unique_ptr<Station>> stations_;
  std::vector<int> station_bss_;
  std::vector<BssState> bss_;
  std::unique_ptr<CalendarQueue> queue_;
  std::unique_ptr<Timeline> timeline_;
  std::unique_ptr<StationMetrics> sta_metrics_;
  std::vector<double> hol_since_;
  std::vector<double> last_tx_start_;
  std::vector<std::size_t> queue_len_;
  std::vector<TxInterval> live_tx_;
  NetResult result_;
  double now_us_ = 0.0;
  std::uint64_t events_ = 0;
  bool saturated_ = true;
  bool initialized_ = false;
  bool finalized_ = false;
};

}  // namespace silence::net
