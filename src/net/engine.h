// The event-driven network core behind run_scenario: a stateful NetSim
// that replaces the old slotted single-AP loop with a calendar queue of
// timestamped arrival / round-start / backoff-expiry / TX-end events
// (net/events.h), so multiple BSSs contend concurrently, their PPDUs
// overlap in simulated time, and open-loop traffic models drive per-
// station queues.
//
// Per BSS the DCF round structure is unchanged — DIFS + smallest backoff
// counter of idle, then one winner's frame exchange or a collision — and
// on a single-BSS saturated scenario the engine reproduces the legacy
// slotted loop's NetResult byte-for-byte: identical arithmetic
// expressions, identical per-station fading-advance call sequences,
// and zero extra RNG draws (arrival streams exist only for open-loop
// traffic; interference draws only when an overlap actually lands).
//
// What multi-BSS adds on top:
//  - OBSS interference: every PPDU put on the air (winner frames,
//    collision bursts, hidden blind fires) registers a (channel,
//    interval) on a shared registry, crediting each other cell's
//    in-flight exchange with the overlap as it registers; an exchange
//    opening later scans the still-live intervals instead. Both
//    directions of an overlap are therefore counted no matter how the
//    rounds interleave — a fast cell completing whole rounds inside a
//    slow cell's PPDU still charges the slow victim. At TX end the
//    accumulated fraction (weighted 1 for co-channel,
//    Topology::adjacent_leak for adjacent channels) becomes a
//    PulseInterferer on that one exchange — the paper's Fig. 10(d)
//    threat model, now emergent from topology instead of injected.
//  - Hidden terminals: a same-BSS contender that cannot hear the winner
//    (Topology::carrier_sense) keeps counting down and blind-fires into
//    the winner's PPDU; the victim sees the overlap as interference,
//    the firer burns a collision, the round extends to cover the stray
//    PPDU, and the stray energy radiates into overlapping cells like
//    any other PPDU.
//  - Traffic: saturated stations contend always; poisson / on-off
//    stations contend while their arrival queue is non-empty, and a BSS
//    with nothing to send sleeps until an arrival wakes it. Queueing
//    delay flows into the existing hol_wait_slots percentiles (the HOL
//    clock starts when a frame reaches the head of an empty queue).
//
// Determinism: the calendar queue pops in (timestamp, kind, bss, sta,
// FIFO) order and every handler is sequential, so the whole simulation
// is a pure function of (scenario, seed) at any thread or fabric count.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/events.h"
#include "net/scenario.h"
#include "net/station.h"
#include "net/timeline.h"

namespace silence::net {

class NetSim {
 public:
  NetSim() = default;
  NetSim(const Scenario& scenario, std::uint64_t seed) {
    init(scenario, seed);
  }

  // Builds stations, seeds the arrival streams and schedules the first
  // round of every BSS. Throws std::invalid_argument on a malformed
  // scenario. Re-initializing an already-used sim throws.
  void init(const Scenario& scenario, std::uint64_t seed);

  // Processes events until simulated time passes `t_us` (every event
  // with timestamp <= t_us runs), leaving mid-run state observable via
  // the accessors below. Rate controllers (ROADMAP item 2) hook in
  // here: step, read, adjust, repeat. When the queue drains with every
  // BSS dormant (open-loop traffic that ran out of arrivals) and `t_us`
  // has reached the scenario horizon, the run is finished off so the
  // `while (!sim.done()) sim.step_until(t)` driver pattern terminates.
  void step_until(double t_us);

  // Runs the scenario to completion (duration reached on every BSS).
  void run();

  bool done() const;
  // Timestamp of the last processed event.
  double now_us() const { return now_us_; }
  std::uint64_t events_processed() const { return events_; }

  int num_stations() const { return static_cast<int>(stations_.size()); }
  int num_bss() const { return static_cast<int>(bss_.size()); }
  // Mid-run per-station views (valid after init()).
  const StaStats& station_stats(int i) const {
    return stations_[static_cast<std::size_t>(i)]->stats();
  }
  std::size_t station_queue_len(int i) const {
    return queue_len_[static_cast<std::size_t>(i)];
  }

  // Completes the run if needed, finalizes the per-station metrics
  // (idempotent) and returns the result.
  NetResult result();

 private:
  struct BlindFire {
    int sta = -1;        // the hidden contender
    double t_fire = 0.0; // when its counter would have expired
    double air_us = 0.0; // its stray PPDU's airtime
  };

  // Per-BSS scheduler state: the current round (between round-start and
  // backoff-expiry), the in-flight exchange (between expiry and TX-end)
  // and the dormancy/completion lifecycle.
  struct BssState {
    int channel = 0;
    std::vector<int> members;     // global station indices, ascending
    std::vector<int> contenders;  // this round's backlogged members
    int min_counter = 0;
    double idle_us = 0.0;
    int winner = -1;
    double tx_start = 0.0;
    double air_us = 0.0;
    // OBSS overlap credited to the in-flight exchange, accumulated as
    // each overlapping interval registers (and from already-live
    // intervals when the exchange opens) — never read back out of the
    // registry, so pruning can be aggressive. `obss_frac` is the
    // channel-weighted overlap divided by this exchange's airtime (the
    // pulse-interferer hit probability); `obss_raw_us` the unweighted
    // overlap feeding NetResult::obss_overlap_us.
    double obss_frac = 0.0;
    double obss_raw_us = 0.0;
    std::vector<BlindFire> blind;
    bool dormant = false;
    bool wake_pending = false;
    double dormant_since = 0.0;
    bool finished = false;
    double end_us = 0.0;
  };

  // A PPDU currently on the air, visible to other BSSs as potential
  // OBSS interference. `sta` is -1 for a collision burst.
  struct TxInterval {
    int bss = 0;
    int sta = -1;
    int channel = 0;
    double start_us = 0.0;
    double end_us = 0.0;
  };

  void step();  // process exactly one event
  void start_round(int b, double t);
  void on_backoff_expiry(int b, double t);
  void on_tx_end(int b, double t);
  void on_arrival(int sta, double t);
  void finish_dormant();

  bool has_frame(int sta) const {
    return saturated_ || queue_len_[static_cast<std::size_t>(sta)] > 0;
  }
  void advance_members(const BssState& bss, double us, int except);
  // Credits `victim`'s in-flight exchange with its channel-weighted
  // overlap against `iv` (no-op when the weight or overlap is zero).
  void accumulate_overlap(BssState& victim, const TxInterval& iv);
  // Publishes a PPDU: credits every other BSS's in-flight exchange with
  // the overlap now, then adds the interval to the registry so
  // exchanges opening later can scan it. Accounting at registration
  // time (plus the open-exchange scan) means both directions of an
  // overlap are always counted, however the two rounds interleave —
  // including a fast cell completing whole rounds inside a slow cell's
  // PPDU.
  void register_interval(const TxInterval& iv);
  void prune_intervals(double t);
  void pregenerate_arrivals(std::uint64_t seed);

  Scenario scenario_;
  std::unique_ptr<PhyBatch> phy_batch_;
  std::vector<std::unique_ptr<Station>> stations_;
  std::vector<int> station_bss_;
  std::vector<BssState> bss_;
  std::unique_ptr<CalendarQueue> queue_;
  std::unique_ptr<Timeline> timeline_;
  std::unique_ptr<StationMetrics> sta_metrics_;
  std::vector<double> hol_since_;
  std::vector<double> last_tx_start_;
  std::vector<std::size_t> queue_len_;
  std::vector<TxInterval> live_tx_;
  NetResult result_;
  double now_us_ = 0.0;
  std::uint64_t events_ = 0;
  bool saturated_ = true;
  bool initialized_ = false;
  bool finalized_ = false;
};

}  // namespace silence::net
