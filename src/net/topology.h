// Network geometry and offered load as first-class value types, split
// out of net::Scenario so a scenario file reads as "where everyone is"
// (Topology) plus "what everyone sends" (TrafficModel) plus the shared
// PHY/CoS knobs (the remaining Scenario fields).
//
// Topology describes one or more BSSs (AP + its stations) on 802.11a
// channels. Stations get *global* indices: BSS 0's stations first, then
// BSS 1's, in declaration order — these indices key the seed substreams,
// the NetResult::stations vector and the carrier-sense matrix. Within a
// BSS, SNR interpolates linearly from `snr_db_near` (first station) to
// `snr_db_far` (last), the same expression the legacy flat scenario
// used, so a single-BSS topology reproduces legacy SNRs bit-for-bit.
//
// The carrier-sense matrix models hidden terminals: hears(i, j) == false
// means station i cannot detect station j's transmission and may blind-
// fire into it. Empty matrix = everyone hears everyone (the legacy
// assumption). Cross-BSS interference (OBSS) is governed by channel
// distance instead: co-channel PPDUs overlap at full weight,
// adjacent-channel at `adjacent_leak`, farther apart not at all.
#pragma once

#include <cstdint>
#include <vector>

#include "runner/json.h"

namespace silence::net {

struct Topology {
  struct Bss {
    int channel = 36;  // 802.11a channel number (adjacency = |delta| of 1)
    int num_stations = 4;
    double snr_db_near = 24.0;
    double snr_db_far = 12.0;

    friend bool operator==(const Bss&, const Bss&) = default;
  };

  std::vector<Bss> bss{Bss{}};
  // N*N row-major sensing matrix over global station indices (N =
  // total_stations()); entry [i*N + j] != 0 means station i hears
  // station j. Empty = full sensing. The diagonal is ignored.
  std::vector<std::uint8_t> carrier_sense;
  // Per-sample power of the pulse interference an overlapping PPDU
  // injects into a victim receiver (channel/interference.h).
  double obss_pulse_power = 1.0;
  // Overlap weight for BSSs one channel apart (co-channel = 1, two or
  // more apart = 0).
  double adjacent_leak = 0.25;

  int total_stations() const {
    int n = 0;
    for (const Bss& b : bss) n += b.num_stations;
    return n;
  }
  // BSS owning global station `index`.
  int station_bss(int index) const;
  // Global index of BSS b's first station.
  int first_station(int bss_index) const;
  // Measured-SNR assignment for global station `index`: the legacy
  // near->far interpolation, applied within the station's own BSS.
  double station_snr_db(int index) const;
  // Whether station i senses station j's transmissions (same-BSS
  // carrier sense; OBSS audibility is modelled via channel overlap,
  // not this matrix).
  bool hears(int i, int j) const {
    if (carrier_sense.empty() || i == j) return true;
    const std::size_t n = static_cast<std::size_t>(total_stations());
    return carrier_sense[static_cast<std::size_t>(i) * n +
                         static_cast<std::size_t>(j)] != 0;
  }
  // Overlap weight between two channels: 1, adjacent_leak, or 0.
  double channel_weight(int ch_a, int ch_b) const {
    const int d = ch_a > ch_b ? ch_a - ch_b : ch_b - ch_a;
    if (d == 0) return 1.0;
    if (d == 1) return adjacent_leak;
    return 0.0;
  }

  // Throws std::invalid_argument on an inconsistent topology (no BSSs,
  // a BSS without stations, a carrier-sense matrix of the wrong size).
  void validate() const;

  // Strict-JSON round trip: from_json(to_json(t)) == t, including every
  // double's bit pattern.
  runner::Json to_json() const;
  static Topology from_json(const runner::Json& json);

  friend bool operator==(const Topology&, const Topology&) = default;
};

// Per-station offered load. A tagged union in spirit: `kind` selects the
// model, the rate/burst fields apply to the kinds that use them (all
// fields always serialize, so the JSON round trip is field-exact
// regardless of kind).
struct TrafficModel {
  enum class Kind : std::uint8_t {
    kSaturated = 0,  // always backlogged (the legacy closed loop)
    kPoisson = 1,    // exponential inter-arrival frames
    kOnOff = 2,      // exponential ON/OFF bursts, Poisson arrivals in ON
  };

  Kind kind = Kind::kSaturated;
  // Frame arrival rate while generating (poisson: always; on_off:
  // during ON periods).
  double arrival_rate_fps = 2000.0;
  // Mean ON / OFF period lengths for kOnOff.
  double mean_on_us = 4000.0;
  double mean_off_us = 4000.0;

  bool saturated() const { return kind == Kind::kSaturated; }

  void validate() const;  // throws std::invalid_argument

  runner::Json to_json() const;
  static TrafficModel from_json(const runner::Json& json);

  friend bool operator==(const TrafficModel&, const TrafficModel&) = default;
};

}  // namespace silence::net
