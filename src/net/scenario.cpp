#include "net/scenario.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"

namespace silence::net {

namespace {

const runner::Json& require(const runner::Json& json, std::string_view key) {
  const runner::Json* value = json.find(key);
  if (value == nullptr) {
    throw std::runtime_error("net::Scenario: missing field '" +
                             std::string(key) + "'");
  }
  return *value;
}

}  // namespace

runner::Json Scenario::to_json() const {
  runner::Json root = runner::Json::object();
  root.set("topology", topology.to_json());
  root.set("traffic", traffic.to_json());
  root.set("mpdu_octets", static_cast<std::int64_t>(mpdu_octets));
  root.set("max_mpdus_per_frame",
           static_cast<std::int64_t>(max_mpdus_per_frame));
  root.set("duration_us", duration_us);
  root.set("control_bits_per_frame",
           static_cast<std::int64_t>(control_bits_per_frame));
  root.set("cos_profile", cos.to_json());
  runner::Json prof = runner::Json::object();
  prof.set("num_taps", profile.num_taps);
  prof.set("decay_taps", profile.decay_taps);
  prof.set("rician_k_linear", profile.rician_k_linear);
  prof.set("doppler_hz", profile.doppler_hz);
  prof.set("k_all_taps_linear", profile.k_all_taps_linear);
  root.set("profile", std::move(prof));
  if (fixed_rate_mbps) {
    root.set("fixed_rate_mbps", static_cast<std::int64_t>(*fixed_rate_mbps));
  } else {
    root.set("fixed_rate_mbps", nullptr);
  }
  root.set("use_selection_feedback", use_selection_feedback);
  root.set("metrics_station_cap",
           static_cast<std::int64_t>(metrics_station_cap));
  return root;
}

Scenario Scenario::from_json(const runner::Json& json) {
  Scenario sc;
  if (json.find("topology") != nullptr) {
    sc.topology = Topology::from_json(require(json, "topology"));
    sc.traffic = TrafficModel::from_json(require(json, "traffic"));
  } else if (json.find("num_stations") != nullptr) {
    // Compatibility shim: the pre-topology flat single-AP schema. Maps
    // onto the equivalent one-BSS saturated-traffic scenario — default
    // channel, full carrier sensing, default OBSS knobs (all inert on a
    // single BSS) — so archived scenario files keep replaying.
    Topology topo;
    topo.bss.resize(1);
    topo.bss[0].num_stations =
        static_cast<int>(require(json, "num_stations").as_int());
    topo.bss[0].snr_db_near = require(json, "snr_db_near").as_double();
    topo.bss[0].snr_db_far = require(json, "snr_db_far").as_double();
    sc.topology = topo;
    sc.traffic = TrafficModel{};  // legacy runs are saturated closed-loop
  } else {
    throw std::runtime_error("net::Scenario: missing field 'topology'");
  }
  sc.mpdu_octets =
      static_cast<std::size_t>(require(json, "mpdu_octets").as_int());
  sc.max_mpdus_per_frame =
      static_cast<int>(require(json, "max_mpdus_per_frame").as_int());
  sc.duration_us = require(json, "duration_us").as_double();
  sc.control_bits_per_frame = static_cast<std::size_t>(
      require(json, "control_bits_per_frame").as_int());
  sc.cos = CosProfile::from_json(require(json, "cos_profile"));
  const runner::Json& prof = require(json, "profile");
  sc.profile.num_taps = static_cast<int>(require(prof, "num_taps").as_int());
  sc.profile.decay_taps = require(prof, "decay_taps").as_double();
  sc.profile.rician_k_linear = require(prof, "rician_k_linear").as_double();
  sc.profile.doppler_hz = require(prof, "doppler_hz").as_double();
  sc.profile.k_all_taps_linear =
      require(prof, "k_all_taps_linear").as_double();
  const runner::Json& rate = require(json, "fixed_rate_mbps");
  if (rate.is_null()) {
    sc.fixed_rate_mbps.reset();
  } else {
    sc.fixed_rate_mbps = static_cast<int>(rate.as_int());
  }
  sc.use_selection_feedback =
      require(json, "use_selection_feedback").as_bool();
  sc.metrics_station_cap =
      static_cast<int>(require(json, "metrics_station_cap").as_int());
  return sc;
}

void SlotHist::record(std::uint64_t value) {
  if (count == 0) {
    buckets.assign(obs::kHistogramBuckets, 0);
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  ++buckets[obs::histogram_bucket(value)];
}

double SlotHist::mean() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

double SlotHist::quantile(double q) const {
  obs::HistogramSnapshot snap;
  snap.count = count;
  snap.sum = sum;
  snap.min = min;
  snap.max = max;
  snap.buckets = buckets;
  snap.buckets.resize(obs::kHistogramBuckets, 0);
  return snap.quantile(q);
}

SlotHist& SlotHist::operator+=(const SlotHist& o) {
  if (o.count == 0) return *this;
  if (count == 0) {
    *this = o;
    return *this;
  }
  min = std::min(min, o.min);
  max = std::max(max, o.max);
  count += o.count;
  sum += o.sum;
  for (std::size_t b = 0; b < buckets.size(); ++b) buckets[b] += o.buckets[b];
  return *this;
}

runner::Json SlotHist::to_json() const {
  runner::Json root = runner::Json::object();
  root.set("count", static_cast<std::int64_t>(count));
  root.set("sum", static_cast<std::int64_t>(sum));
  root.set("min", static_cast<std::int64_t>(min));
  root.set("max", static_cast<std::int64_t>(max));
  std::size_t used = buckets.size();
  while (used > 0 && buckets[used - 1] == 0) --used;
  runner::Json tallies = runner::Json::array();
  for (std::size_t b = 0; b < used; ++b) {
    tallies.push_back(static_cast<std::int64_t>(buckets[b]));
  }
  root.set("buckets", std::move(tallies));
  return root;
}

SlotHist SlotHist::from_json(const runner::Json& json) {
  SlotHist h;
  h.count = static_cast<std::uint64_t>(require(json, "count").as_int());
  h.sum = static_cast<std::uint64_t>(require(json, "sum").as_int());
  h.min = static_cast<std::uint64_t>(require(json, "min").as_int());
  h.max = static_cast<std::uint64_t>(require(json, "max").as_int());
  const runner::Json& tallies = require(json, "buckets");
  if (!tallies.is_array()) {
    throw std::runtime_error("SlotHist::from_json: buckets is not an array");
  }
  if (tallies.size() > obs::kHistogramBuckets) {
    throw std::runtime_error("SlotHist::from_json: too many buckets");
  }
  if (h.count > 0) {
    h.buckets.assign(obs::kHistogramBuckets, 0);
    for (std::size_t b = 0; b < tallies.size(); ++b) {
      h.buckets[b] =
          static_cast<std::uint64_t>(tallies.as_array()[b].as_int());
    }
  }
  return h;
}

StaStats& StaStats::operator+=(const StaStats& o) {
  tx_rounds += o.tx_rounds;
  collisions += o.collisions;
  frames_delivered += o.frames_delivered;
  frames_lost += o.frames_lost;
  mpdus_delivered += o.mpdus_delivered;
  data_bits += o.data_bits;
  control_bits_sent += o.control_bits_sent;
  control_bits_correct += o.control_bits_correct;
  data_airtime_us += o.data_airtime_us;
  hol_wait_slots += o.hol_wait_slots;
  inter_tx_gap_slots += o.inter_tx_gap_slots;
  return *this;
}

NetResult& NetResult::operator+=(const NetResult& o) {
  if (stations.empty()) {
    *this = o;
    return *this;
  }
  if (stations.size() != o.stations.size()) {
    throw std::invalid_argument(
        "NetResult::operator+=: station counts differ");
  }
  for (std::size_t i = 0; i < stations.size(); ++i) {
    stations[i] += o.stations[i];
  }
  airtime.data_us += o.airtime.data_us;
  airtime.ack_us += o.airtime.ack_us;
  airtime.control_us += o.airtime.control_us;
  airtime.idle_us += o.airtime.idle_us;
  airtime.collision_us += o.airtime.collision_us;
  elapsed_us += o.elapsed_us;
  contention_rounds += o.contention_rounds;
  tx_rounds += o.tx_rounds;
  collision_rounds += o.collision_rounds;
  events += o.events;
  obss_overlap_us += o.obss_overlap_us;
  return *this;
}

double NetResult::aggregate_throughput_mbps() const {
  if (elapsed_us <= 0.0) return 0.0;
  std::size_t bits = 0;
  for (const StaStats& s : stations) bits += s.data_bits;
  return static_cast<double>(bits) / elapsed_us;  // bits/us = Mbps
}

double NetResult::control_goodput_kbps() const {
  if (elapsed_us <= 0.0) return 0.0;
  std::size_t bits = 0;
  for (const StaStats& s : stations) bits += s.control_bits_correct;
  return 1e3 * static_cast<double>(bits) / elapsed_us;  // bits/ms = kbps
}

double NetResult::airtime_overhead() const {
  const double total = airtime.total_us();
  return total > 0.0 ? (total - airtime.data_us) / total : 0.0;
}

double NetResult::jain_fairness() const {
  if (stations.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (const StaStats& s : stations) {
    const auto bits = static_cast<double>(s.data_bits);
    sum += bits;
    sum_sq += bits * bits;
  }
  if (sum_sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(stations.size()) * sum_sq);
}

double NetResult::collision_rate() const {
  return contention_rounds > 0
             ? static_cast<double>(collision_rounds) /
                   static_cast<double>(contention_rounds)
             : 0.0;
}

runner::Json NetResult::to_json() const {
  runner::Json root = runner::Json::object();
  root.set("elapsed_us", elapsed_us);
  root.set("contention_rounds",
           static_cast<std::int64_t>(contention_rounds));
  root.set("tx_rounds", static_cast<std::int64_t>(tx_rounds));
  root.set("collision_rounds",
           static_cast<std::int64_t>(collision_rounds));
  root.set("events", static_cast<std::int64_t>(events));
  root.set("obss_overlap_us", obss_overlap_us);
  runner::Json air = runner::Json::object();
  air.set("data_us", airtime.data_us);
  air.set("ack_us", airtime.ack_us);
  air.set("control_us", airtime.control_us);
  air.set("idle_us", airtime.idle_us);
  air.set("collision_us", airtime.collision_us);
  root.set("airtime", std::move(air));
  runner::Json stas = runner::Json::array();
  for (const StaStats& s : stations) {
    runner::Json row = runner::Json::object();
    row.set("tx_rounds", static_cast<std::int64_t>(s.tx_rounds));
    row.set("collisions", static_cast<std::int64_t>(s.collisions));
    row.set("frames_delivered",
            static_cast<std::int64_t>(s.frames_delivered));
    row.set("frames_lost", static_cast<std::int64_t>(s.frames_lost));
    row.set("mpdus_delivered",
            static_cast<std::int64_t>(s.mpdus_delivered));
    row.set("data_bits", static_cast<std::int64_t>(s.data_bits));
    row.set("control_bits_sent",
            static_cast<std::int64_t>(s.control_bits_sent));
    row.set("control_bits_correct",
            static_cast<std::int64_t>(s.control_bits_correct));
    row.set("data_airtime_us", s.data_airtime_us);
    row.set("hol_wait_slots", s.hol_wait_slots.to_json());
    row.set("inter_tx_gap_slots", s.inter_tx_gap_slots.to_json());
    stas.push_back(std::move(row));
  }
  root.set("stations", std::move(stas));
  return root;
}

NetResult NetResult::from_json(const runner::Json& json) {
  NetResult r;
  r.elapsed_us = require(json, "elapsed_us").as_double();
  r.contention_rounds =
      static_cast<std::size_t>(require(json, "contention_rounds").as_int());
  r.tx_rounds = static_cast<std::size_t>(require(json, "tx_rounds").as_int());
  r.collision_rounds =
      static_cast<std::size_t>(require(json, "collision_rounds").as_int());
  r.events = static_cast<std::uint64_t>(require(json, "events").as_int());
  r.obss_overlap_us = require(json, "obss_overlap_us").as_double();
  const runner::Json& air = require(json, "airtime");
  r.airtime.data_us = require(air, "data_us").as_double();
  r.airtime.ack_us = require(air, "ack_us").as_double();
  r.airtime.control_us = require(air, "control_us").as_double();
  r.airtime.idle_us = require(air, "idle_us").as_double();
  r.airtime.collision_us = require(air, "collision_us").as_double();
  const runner::Json& stas = require(json, "stations");
  if (!stas.is_array()) {
    throw std::runtime_error("NetResult::from_json: stations is not an array");
  }
  r.stations.reserve(stas.size());
  for (const runner::Json& row : stas.as_array()) {
    StaStats s;
    s.tx_rounds = static_cast<std::size_t>(require(row, "tx_rounds").as_int());
    s.collisions =
        static_cast<std::size_t>(require(row, "collisions").as_int());
    s.frames_delivered =
        static_cast<std::size_t>(require(row, "frames_delivered").as_int());
    s.frames_lost =
        static_cast<std::size_t>(require(row, "frames_lost").as_int());
    s.mpdus_delivered =
        static_cast<std::size_t>(require(row, "mpdus_delivered").as_int());
    s.data_bits = static_cast<std::size_t>(require(row, "data_bits").as_int());
    s.control_bits_sent =
        static_cast<std::size_t>(require(row, "control_bits_sent").as_int());
    s.control_bits_correct = static_cast<std::size_t>(
        require(row, "control_bits_correct").as_int());
    s.data_airtime_us = require(row, "data_airtime_us").as_double();
    s.hol_wait_slots = SlotHist::from_json(require(row, "hol_wait_slots"));
    s.inter_tx_gap_slots =
        SlotHist::from_json(require(row, "inter_tx_gap_slots"));
    r.stations.push_back(s);
  }
  return r;
}

}  // namespace silence::net
