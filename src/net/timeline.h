// MAC-timeline instrumentation for run_scenario: one named simulation
// track per station plus the shared medium, rendered under pid 2 of the
// Chrome/Perfetto trace (obs/trace.h), with timestamps in deterministic
// simulated microseconds. A second helper interns per-station registry
// histograms (net.sta.NN.*) so .metrics.json carries per-station latency
// percentiles next to the aggregate ones.
//
// Exactly one scenario per capture owns the simulation timeline (the
// first run_scenario to claim it); a single-scenario run — the CI smoke
// uses --stas 16 --trials 1 — therefore produces a bit-stable timeline
// at any thread count. Everything here compiles to inert no-ops under
// SILENCE_OBS=OFF: `on()` is constant false, so call sites guarded by
// `if (timeline.on())` fold away and never build their args strings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace silence::net {

#if SILENCE_OBS_ON

class Timeline {
 public:
  explicit Timeline(std::size_t num_stations) {
    auto& tracer = obs::Tracer::global();
    if (!tracer.claim_sim_session()) return;
    on_ = true;
    medium_ = tracer.sim_track("medium");
    sta_.reserve(num_stations);
    for (std::size_t i = 0; i < num_stations; ++i) {
      sta_.push_back(tracer.sim_track("STA " + std::to_string(i)));
    }
  }

  bool on() const { return on_; }

  void sta_begin(std::size_t i, const char* name, double ts_us,
                 std::string args = "") {
    if (on_) {
      obs::Tracer::global().sim_begin(sta_[i], name, ts_us, std::move(args));
    }
  }
  void sta_end(std::size_t i, const char* name, double ts_us) {
    if (on_) obs::Tracer::global().sim_end(sta_[i], name, ts_us);
  }
  void sta_instant(std::size_t i, const char* name, double ts_us,
                   std::string args = "") {
    if (on_) {
      obs::Tracer::global().sim_instant(sta_[i], name, ts_us,
                                        std::move(args));
    }
  }
  void medium_begin(const char* name, double ts_us, std::string args = "") {
    if (on_) {
      obs::Tracer::global().sim_begin(medium_, name, ts_us, std::move(args));
    }
  }
  void medium_end(const char* name, double ts_us) {
    if (on_) obs::Tracer::global().sim_end(medium_, name, ts_us);
  }

 private:
  bool on_ = false;
  std::uint32_t medium_ = 0;
  std::vector<std::uint32_t> sta_;
};

// Per-station registry metrics, interned once per scenario. Capped at
// kMaxTracked stations so huge future scenarios cannot exhaust the
// registry's fixed histogram/counter capacity — past the cap only the
// aggregate net.sta.* histograms are recorded.
class StationMetrics {
 public:
  static constexpr std::size_t kMaxTracked = 64;

  explicit StationMetrics(std::size_t num_stations) {
    if (num_stations > kMaxTracked) return;
    auto& reg = obs::Registry::global();
    hol_.reserve(num_stations);
    gap_.reserve(num_stations);
    bits_.reserve(num_stations);
    coll_.reserve(num_stations);
    for (std::size_t i = 0; i < num_stations; ++i) {
      const std::string base = "net.sta." + station_label(i);
      hol_.push_back(reg.histogram_id(base + ".hol_wait_slots"));
      gap_.push_back(reg.histogram_id(base + ".inter_tx_gap_slots"));
      bits_.push_back(reg.histogram_id(base + ".tx_data_bits"));
      coll_.push_back(reg.counter_id(base + ".collisions"));
    }
  }

  // Zero-padded two-digit station index: stable lexicographic order in
  // sorted snapshots ("net.sta.02" < "net.sta.10").
  static std::string station_label(std::size_t i) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%02zu", i);
    return buf;
  }

  void hol_wait(std::size_t i, std::uint64_t slots) {
    if (i < hol_.size()) {
      obs::Registry::global().histogram_record(hol_[i], slots);
    }
  }
  void tx_gap(std::size_t i, std::uint64_t slots) {
    if (i < gap_.size()) {
      obs::Registry::global().histogram_record(gap_[i], slots);
    }
  }
  void tx_data_bits(std::size_t i, std::uint64_t bits) {
    if (i < bits_.size()) {
      obs::Registry::global().histogram_record(bits_[i], bits);
    }
  }
  void collision(std::size_t i) {
    if (i < coll_.size()) obs::Registry::global().counter_add(coll_[i], 1);
  }

 private:
  std::vector<std::uint32_t> hol_;
  std::vector<std::uint32_t> gap_;
  std::vector<std::uint32_t> bits_;
  std::vector<std::uint32_t> coll_;
};

#else  // SILENCE_OBS_ON

class Timeline {
 public:
  explicit Timeline(std::size_t) {}
  bool on() const { return false; }
  void sta_begin(std::size_t, const char*, double, std::string = "") {}
  void sta_end(std::size_t, const char*, double) {}
  void sta_instant(std::size_t, const char*, double, std::string = "") {}
  void medium_begin(const char*, double, std::string = "") {}
  void medium_end(const char*, double) {}
};

class StationMetrics {
 public:
  static constexpr std::size_t kMaxTracked = 64;
  explicit StationMetrics(std::size_t) {}
  static std::string station_label(std::size_t i) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%02zu", i);
    return buf;
  }
  void hol_wait(std::size_t, std::uint64_t) {}
  void tx_gap(std::size_t, std::uint64_t) {}
  void tx_data_bits(std::size_t, std::uint64_t) {}
  void collision(std::size_t) {}
};

#endif  // SILENCE_OBS_ON

}  // namespace silence::net
