// MAC-timeline instrumentation for run_scenario: one named simulation
// track per station plus the shared medium, rendered under pid 2 of the
// Chrome/Perfetto trace (obs/trace.h), with timestamps in deterministic
// simulated microseconds. A second helper interns per-station registry
// histograms (net.sta.NN.*) so .metrics.json carries per-station latency
// percentiles next to the aggregate ones.
//
// Exactly one scenario per capture owns the simulation timeline (the
// first run_scenario to claim it); a single-scenario run — the CI smoke
// uses --stas 16 --trials 1 — therefore produces a bit-stable timeline
// at any thread count. Everything here compiles to inert no-ops under
// SILENCE_OBS=OFF: `on()` is constant false, so call sites guarded by
// `if (timeline.on())` fold away and never build their args strings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace silence::net {

#if SILENCE_OBS_ON

class Timeline {
 public:
  // One medium track per BSS: the single-AP track keeps its historic
  // "medium" name, multi-AP scenarios get "AP<k> medium" so overlapping
  // PPDUs on different cells render as parallel busy spans.
  explicit Timeline(std::size_t num_stations, std::size_t num_bss = 1) {
    auto& tracer = obs::Tracer::global();
    if (!tracer.claim_sim_session()) return;
    on_ = true;
    medium_.reserve(num_bss);
    for (std::size_t b = 0; b < num_bss; ++b) {
      medium_.push_back(tracer.sim_track(
          num_bss == 1 ? std::string("medium")
                       : "AP" + std::to_string(b) + " medium"));
    }
    sta_.reserve(num_stations);
    for (std::size_t i = 0; i < num_stations; ++i) {
      sta_.push_back(tracer.sim_track("STA " + std::to_string(i)));
    }
  }

  bool on() const { return on_; }

  void sta_begin(std::size_t i, const char* name, double ts_us,
                 std::string args = "") {
    if (on_) {
      obs::Tracer::global().sim_begin(sta_[i], name, ts_us, std::move(args));
    }
  }
  void sta_end(std::size_t i, const char* name, double ts_us) {
    if (on_) obs::Tracer::global().sim_end(sta_[i], name, ts_us);
  }
  void sta_instant(std::size_t i, const char* name, double ts_us,
                   std::string args = "") {
    if (on_) {
      obs::Tracer::global().sim_instant(sta_[i], name, ts_us,
                                        std::move(args));
    }
  }
  void medium_begin(std::size_t bss, const char* name, double ts_us,
                    std::string args = "") {
    if (on_) {
      obs::Tracer::global().sim_begin(medium_[bss], name, ts_us,
                                      std::move(args));
    }
  }
  void medium_end(std::size_t bss, const char* name, double ts_us) {
    if (on_) obs::Tracer::global().sim_end(medium_[bss], name, ts_us);
  }

 private:
  bool on_ = false;
  std::vector<std::uint32_t> medium_;
  std::vector<std::uint32_t> sta_;
};

// Per-station registry metrics, interned once per scenario. Stations up
// to the configurable cap (Scenario::metrics_station_cap; default
// kDefaultCap) get their own net.sta.NN.* family; stations past the cap
// fold into the shared net.sta.overflow.* family instead of being
// dropped, so totals stay complete while the registry's fixed histogram
// capacity (obs::kMaxHistograms) stays bounded: a cap of C interns at
// most 3*C + 3 histograms and C + 1 counters.
class StationMetrics {
 public:
  static constexpr std::size_t kDefaultCap = 64;

  explicit StationMetrics(std::size_t num_stations,
                          std::size_t cap = kDefaultCap) {
    auto& reg = obs::Registry::global();
    const std::size_t tracked = num_stations < cap ? num_stations : cap;
    const int width = label_width(cap);
    hol_.reserve(tracked);
    gap_.reserve(tracked);
    bits_.reserve(tracked);
    coll_.reserve(tracked);
    for (std::size_t i = 0; i < tracked; ++i) {
      const std::string base = "net.sta." + station_label(i, width);
      hol_.push_back(reg.histogram_id(base + ".hol_wait_slots"));
      gap_.push_back(reg.histogram_id(base + ".inter_tx_gap_slots"));
      bits_.push_back(reg.histogram_id(base + ".tx_data_bits"));
      coll_.push_back(reg.counter_id(base + ".collisions"));
    }
    // Overflow family interned only when the cap is actually exceeded,
    // so sub-cap runs keep their exact per-station metric inventory.
    if (num_stations > tracked) {
      overflow_ = true;
      over_hol_ = reg.histogram_id("net.sta.overflow.hol_wait_slots");
      over_gap_ = reg.histogram_id("net.sta.overflow.inter_tx_gap_slots");
      over_bits_ = reg.histogram_id("net.sta.overflow.tx_data_bits");
      over_coll_ = reg.counter_id("net.sta.overflow.collisions");
    }
  }

  // Zero-pad width for station indices under `cap`: the digit count of
  // the largest index, floored at 2 for compatibility with the historic
  // "%02zu" labels ("net.sta.02" < "net.sta.10" lexicographically).
  static int label_width(std::size_t cap) {
    int width = 1;
    for (std::size_t v = cap > 0 ? cap - 1 : 0; v >= 10; v /= 10) ++width;
    return width < 2 ? 2 : width;
  }

  // Zero-padded station index at the given width.
  static std::string station_label(std::size_t i, int width = 2) {
    std::string label = std::to_string(i);
    if (label.size() < static_cast<std::size_t>(width)) {
      label.insert(0, static_cast<std::size_t>(width) - label.size(), '0');
    }
    return label;
  }

  void hol_wait(std::size_t i, std::uint64_t slots) {
    if (i < hol_.size()) {
      obs::Registry::global().histogram_record(hol_[i], slots);
    } else if (overflow_) {
      obs::Registry::global().histogram_record(over_hol_, slots);
    }
  }
  void tx_gap(std::size_t i, std::uint64_t slots) {
    if (i < gap_.size()) {
      obs::Registry::global().histogram_record(gap_[i], slots);
    } else if (overflow_) {
      obs::Registry::global().histogram_record(over_gap_, slots);
    }
  }
  void tx_data_bits(std::size_t i, std::uint64_t bits) {
    if (i < bits_.size()) {
      obs::Registry::global().histogram_record(bits_[i], bits);
    } else if (overflow_) {
      obs::Registry::global().histogram_record(over_bits_, bits);
    }
  }
  void collision(std::size_t i) {
    if (i < coll_.size()) {
      obs::Registry::global().counter_add(coll_[i], 1);
    } else if (overflow_) {
      obs::Registry::global().counter_add(over_coll_, 1);
    }
  }

 private:
  std::vector<std::uint32_t> hol_;
  std::vector<std::uint32_t> gap_;
  std::vector<std::uint32_t> bits_;
  std::vector<std::uint32_t> coll_;
  bool overflow_ = false;
  std::uint32_t over_hol_ = 0;
  std::uint32_t over_gap_ = 0;
  std::uint32_t over_bits_ = 0;
  std::uint32_t over_coll_ = 0;
};

#else  // SILENCE_OBS_ON

class Timeline {
 public:
  explicit Timeline(std::size_t, std::size_t = 1) {}
  bool on() const { return false; }
  void sta_begin(std::size_t, const char*, double, std::string = "") {}
  void sta_end(std::size_t, const char*, double) {}
  void sta_instant(std::size_t, const char*, double, std::string = "") {}
  void medium_begin(std::size_t, const char*, double, std::string = "") {}
  void medium_end(std::size_t, const char*, double) {}
};

class StationMetrics {
 public:
  static constexpr std::size_t kDefaultCap = 64;
  explicit StationMetrics(std::size_t, std::size_t = kDefaultCap) {}
  static int label_width(std::size_t cap) {
    int width = 1;
    for (std::size_t v = cap > 0 ? cap - 1 : 0; v >= 10; v /= 10) ++width;
    return width < 2 ? 2 : width;
  }
  static std::string station_label(std::size_t i, int width = 2) {
    std::string label = std::to_string(i);
    if (label.size() < static_cast<std::size_t>(width)) {
      label.insert(0, static_cast<std::size_t>(width) - label.size(), '0');
    }
    return label;
  }
  void hol_wait(std::size_t, std::uint64_t) {}
  void tx_gap(std::size_t, std::uint64_t) {}
  void tx_data_bits(std::size_t, std::uint64_t) {}
  void collision(std::size_t) {}
};

#endif  // SILENCE_OBS_ON

}  // namespace silence::net
