// One contending station of a net::Scenario: its own fading link to the
// AP, its own closed-loop CosSession, its own DCF backoff state and its
// own traffic source. All randomness comes from the station's private
// substreams of the scenario seed, so the scheduler never owns an RNG
// and station behaviour is independent of evaluation order.
#pragma once

#include <cstdint>

#include "mac/backoff.h"
#include "net/scenario.h"
#include "sim/link.h"
#include "sim/session.h"

namespace silence::net {

class Station {
 public:
  // `index` is the station's global position across the scenario's BSSs
  // (0-based); it selects the seed substreams. `snr_db` is the station's
  // measured-SNR placement (Topology::station_snr_db). `phy_batch`
  // optionally routes this station's PHY through the batched SoA engine
  // (bit-identical results); the engine shares one workspace across all
  // stations, which is safe because frame exchanges are processed
  // strictly sequentially in event order even when their simulated
  // intervals overlap across BSSs.
  Station(const Scenario& scenario, int index, double snr_db,
          std::uint64_t seed, PhyBatch* phy_batch = nullptr);

  // Outcome of one solo medium acquisition. The per-MPDU/control fields
  // let the scheduler narrate the exchange on the MAC timeline without
  // re-deriving them from the station's cumulative stats.
  struct TxOutcome {
    double data_airtime_us = 0.0;
    bool data_ok = false;
    std::size_t mpdus_sent = 0;
    std::size_t mpdus_delivered = 0;
    std::size_t data_bits = 0;  // payload bits delivered by this frame
    std::size_t control_bits_sent = 0;
    std::size_t control_bits_correct = 0;
  };

  // Builds this round's A-MPDU (fresh payloads + the next control
  // chunk), sends it through the CosSession and updates the station's
  // tallies and backoff. The session advances this station's own link
  // by the frame airtime; the scheduler advances everything else.
  // `interferer`, when set, injects pulse interference (OBSS overlap or
  // a hidden terminal's blind fire) into this one exchange; the link is
  // restored to interference-free afterwards. When unset, the RNG
  // streams are untouched relative to the interference-free path.
  TxOutcome transmit(const std::optional<PulseInterferer>& interferer);
  TxOutcome transmit() { return transmit(std::nullopt); }

  // This station collided this round: tally it and double the window.
  void on_collision();

  // Scheduler-computed latency samples (whole slots), recorded into the
  // station's deterministic stats at each winning TX start.
  void record_hol_wait(std::uint64_t slots) {
    stats_.hol_wait_slots.record(slots);
  }
  void record_tx_gap(std::uint64_t slots) {
    stats_.inter_tx_gap_slots.record(slots);
  }

  // Airtime its next PPDU would occupy, at the rate the session would
  // pick right now. Collisions are charged this much medium time without
  // running the PHY (matching mac/contention.cpp).
  double nominal_airtime_us() const;

  // Advances the fading process by `seconds` of other-station airtime.
  void advance(double seconds) { link_.advance(seconds); }

  Backoff& backoff() { return backoff_; }
  const Backoff& backoff() const { return backoff_; }
  Rng& rng() { return traffic_rng_; }
  const StaStats& stats() const { return stats_; }

 private:
  std::size_t mpdus_per_frame_;
  std::size_t mpdu_payload_octets_;
  std::size_t aggregate_octets_;  // constant: payload sizes never vary
  std::size_t control_bits_per_frame_;
  std::optional<int> fixed_rate_mbps_;
  std::uint8_t address_;
  std::uint16_t seq_ = 0;

  Rng traffic_rng_;
  Link link_;
  CosSession session_;
  Backoff backoff_;
  StaStats stats_;
};

}  // namespace silence::net
