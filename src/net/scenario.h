// Network-scale CoS simulation: one or more APs, each terminating its
// stations' concurrent CoS sessions over independently-seeded fading
// links, with DCF contention and A-MPDU aggregation from src/mac/
// deciding who holds each BSS's medium. Each contention winner sends one
// aggregated data frame through its closed-loop CosSession, so the
// station's CoS control message rides on the frame for free — the
// network-level claim of the paper ("free control messages"), measured
// here as control goodput against the airtime DCF already spends, now
// under OBSS interference, hidden terminals and open-loop traffic.
//
// Determinism contract: run_scenario(scenario, seed) is a pure function.
// Every random stream — per-station channel realization, noise, traffic
// payloads, backoff draws, arrival processes — derives from `seed`
// through the SplitMix64 substream scheme (runner/seed.h), and the
// event-driven engine (net/engine.h) pops its calendar queue in a strict
// (timestamp, tie-break key, FIFO) total order. Sweeps parallelize
// across trials (bench/net_scenarios.cpp), never inside one scenario, so
// results are bit-identical at any runner thread or fabric shard count.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "channel/fading.h"
#include "core/cos_profile.h"
#include "mac/contention.h"  // AirtimeBreakdown
#include "net/topology.h"
#include "runner/json.h"

namespace silence::net {

// Everything needed to reconstruct a network run; round-trips through
// the strict JSON parser like CosTrialSpec, so scenario files and future
// flight artifacts replay bit-identically.
//
// The geometry (APs, channels, station SNR placement, carrier sensing)
// lives in `topology`, the offered load in `traffic` (net/topology.h);
// the remaining fields are the shared MAC/PHY/CoS knobs. Legacy flat
// single-AP scenario JSONs (a top-level "num_stations" instead of
// "topology") still parse via a compatibility shim in from_json() and
// map onto the equivalent one-BSS saturated scenario.
struct Scenario {
  Topology topology;
  TrafficModel traffic;
  // Per-MPDU payload octets (MAC header + FCS are added on top); the
  // winner aggregates up to `max_mpdus_per_frame` of these into one
  // PPDU, clamped to what the 4095-octet SIGNAL length field admits.
  std::size_t mpdu_octets = 400;
  int max_mpdus_per_frame = 4;
  // Simulated medium time per scenario run.
  double duration_us = 20e3;
  // CoS control bits each station offers per won frame (the session
  // truncates to the silence budget of that frame).
  std::size_t control_bits_per_frame = 48;
  // The shared CoS profile (core/cos_profile.h): control grid bootstrap,
  // interval width, detector tuning, scrambler seed.
  CosProfile cos;
  // Channel geometry shared by all stations; the *realization* differs
  // per station via its channel substream seed.
  MultipathProfile profile;
  // Data-rate adaptation: unset = closed-loop on measured SNR.
  std::optional<int> fixed_rate_mbps;
  // Whether receiver EVM selection feedback steers each session's
  // control subcarriers (the paper's design).
  bool use_selection_feedback = true;
  // Stations tracked with their own net.sta.NN.* registry metrics;
  // stations past the cap fold into net.sta.overflow.* (timeline.h).
  // Bounds the obs registry's fixed histogram capacity, not the
  // simulation itself.
  int metrics_station_cap = 64;

  int num_stations() const { return topology.total_stations(); }

  // Strict-JSON round trip: from_json(to_json(s)) == s. from_json also
  // accepts the legacy flat single-AP schema (see above).
  runner::Json to_json() const;
  static Scenario from_json(const runner::Json& json);

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

// Fixed-bucket histogram of slot-time latencies, carried inside the
// deterministic result itself (unlike obs histograms, these exist — and
// merge identically — with observability compiled out, so sweep JSONs
// stay byte-identical ON vs OFF). Buckets follow obs::histogram_bucket's
// power-of-two scheme, and quantile() gives the same bucket-interpolated
// p50/p95/p99 estimate as obs::HistogramSnapshot.
struct SlotHist {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // meaningful only when count > 0
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;  // kHistogramBuckets entries, or
                                       // empty while count == 0

  void record(std::uint64_t value);
  double mean() const;
  double quantile(double q) const;

  SlotHist& operator+=(const SlotHist& o);

  // Integers only (buckets trailing-zero trimmed): exact round trip.
  runner::Json to_json() const;
  static SlotHist from_json(const runner::Json& json);

  friend bool operator==(const SlotHist&, const SlotHist&) = default;
};

// Per-station tallies; mergeable across trials with +=.
struct StaStats {
  std::size_t tx_rounds = 0;    // contention wins transmitted solo
  std::size_t collisions = 0;   // rounds this station collided in
  std::size_t frames_delivered = 0;  // aggregates whose data CRC passed
  std::size_t frames_lost = 0;       // solo wins the channel killed
  std::size_t mpdus_delivered = 0;   // subframes recovered end to end
  std::size_t data_bits = 0;         // payload bits of those subframes
  std::size_t control_bits_sent = 0;
  std::size_t control_bits_correct = 0;
  double data_airtime_us = 0.0;  // medium time under this station's PPDUs
  // Queueing view of the same run, in whole 9 µs slots: how long each
  // frame sat at the head of the line before its winning TX started
  // (collisions extend the wait, they don't reset it; under open-loop
  // traffic the clock starts when the frame reaches an empty queue), and
  // the spacing between consecutive winning TX starts.
  SlotHist hol_wait_slots;
  SlotHist inter_tx_gap_slots;

  StaStats& operator+=(const StaStats& o);
};

// The outcome of one scenario run (or the ordered merge of several
// trials of the same scenario).
struct NetResult {
  std::vector<StaStats> stations;
  AirtimeBreakdown airtime;
  double elapsed_us = 0.0;
  std::size_t contention_rounds = 0;
  std::size_t tx_rounds = 0;         // rounds with exactly one winner
  std::size_t collision_rounds = 0;  // rounds with two or more
  // Calendar-queue events the engine processed (a deterministic count:
  // the engine-throughput denominator in bench/net_scenarios.cpp).
  std::uint64_t events = 0;
  // Raw cross-BSS PPDU overlap witnessed by receivers, in µs (each
  // overlapping pair counts once per affected receiver). Zero on any
  // single-BSS topology.
  double obss_overlap_us = 0.0;

  // Merges another run of the SAME scenario shape (station counts must
  // match; an empty result adopts the other's). Trial merge order is
  // fixed by the runner's ordered reduction.
  NetResult& operator+=(const NetResult& o);

  // Sum of delivered payload bits over medium time.
  double aggregate_throughput_mbps() const;
  // Correctly received CoS control bits per millisecond of medium time —
  // the "free" control channel the network gets on top of the data.
  double control_goodput_kbps() const;
  // Fraction of medium time not carrying data payload (idle + collision
  // + ACK + explicit control). CoS keeps `airtime.control_us` at zero;
  // that is the point being measured.
  double airtime_overhead() const;
  // Jain fairness index over per-station delivered data bits; 1 = every
  // station got the same share, 1/N = one station took everything.
  double jain_fairness() const;
  double collision_rate() const;

  // Deterministic digest of the run (used by the determinism tests and
  // the bench's JSON rows).
  runner::Json to_json() const;
  // Bit-exact inverse of to_json() — integers are exact and doubles are
  // written in shortest-round-trip form, so from_json(to_json(r))
  // reproduces every field bit-for-bit. This is what lets the sweep
  // fabric ship per-trial NetResults through shard artifacts without
  // perturbing the merged output.
  static NetResult from_json(const runner::Json& json);
};

// Runs the event-driven DCF + CoS scenario for `scenario.duration_us` of
// medium time (a thin wrapper over net::NetSim; see net/engine.h for the
// stateful stepping API). Pure in (scenario, seed); see the determinism
// contract above. Throws std::invalid_argument on a malformed scenario.
NetResult run_scenario(const Scenario& scenario, std::uint64_t seed);

}  // namespace silence::net
