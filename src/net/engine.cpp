#include "net/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>

#include "mac/aggregation.h"
#include "mac/frame.h"
#include "mac/timing.h"
#include "obs/flight/flight.h"
#include "obs/health/health.h"
#include "obs/obs.h"
#include "runner/seed.h"

namespace silence::net {

namespace {

// Arrival-process substream base: far above the station-indexed
// channel/noise/traffic families (0x100/0x200/0x300 + i) so it cannot
// collide with them at any realistic station count. Saturated scenarios
// never construct these streams, which keeps legacy runs' RNG usage
// untouched.
constexpr std::uint64_t kArrivalStream = 0x1000000;

// Simulated-µs quantities rendered into timeline args: fixed three
// decimals, locale-free, deterministic.
std::string fmt_us(double us) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  return buf;
}

std::uint64_t to_slots(double us) {
  return static_cast<std::uint64_t>(std::llround(us / kSlotUs));
}

}  // namespace

void NetSim::init(const Scenario& scenario, std::uint64_t seed) {
  if (initialized_) {
    throw std::logic_error("NetSim::init: already initialized");
  }
  scenario.topology.validate();
  scenario.traffic.validate();
  if (scenario.duration_us <= 0.0) {
    throw std::invalid_argument("run_scenario: duration_us must be > 0");
  }
  if (scenario.mpdu_octets < 1 ||
      scenario.mpdu_octets + kMacOverheadOctets + kDelimiterOctets >
          kMaxAggregateOctets) {
    throw std::invalid_argument("run_scenario: mpdu_octets out of range");
  }
  scenario_ = scenario;
  saturated_ = scenario_.traffic.saturated();

  // Stations hold a CosSession referencing their own Link, so they are
  // pinned in memory. They all share one batched-PHY workspace: even
  // when PPDUs overlap in simulated time across BSSs, the event loop
  // processes frame exchanges strictly sequentially, and the batch
  // facades are bit-identical to the scalar chain. `--no-phy-batch`
  // (via set_phy_batch_enabled) reverts every session to the scalar
  // path.
  const int n = scenario_.topology.total_stations();
  phy_batch_ = std::make_unique<PhyBatch>();
  stations_.reserve(static_cast<std::size_t>(n));
  station_bss_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    stations_.push_back(std::make_unique<Station>(
        scenario_, i, scenario_.topology.station_snr_db(i), seed,
        phy_batch_.get()));
    station_bss_.push_back(scenario_.topology.station_bss(i));
  }
  bss_.resize(scenario_.topology.bss.size());
  for (std::size_t b = 0; b < bss_.size(); ++b) {
    bss_[b].channel = scenario_.topology.bss[b].channel;
    const int first = scenario_.topology.first_station(static_cast<int>(b));
    for (int i = 0; i < scenario_.topology.bss[b].num_stations; ++i) {
      bss_[b].members.push_back(first + i);
    }
  }

  // MAC timeline (pid-2 trace tracks) and per-station registry metrics —
  // both inert under SILENCE_OBS=OFF. Head-of-line and inter-TX times
  // are part of the deterministic result, so they are tracked
  // unconditionally: a frame becomes head-of-line when the station's
  // previous exchange ends (saturated) or when it reaches an empty
  // queue (open-loop), and waits until its winning TX starts;
  // collisions lengthen the wait, they don't reset it.
  timeline_ = std::make_unique<Timeline>(static_cast<std::size_t>(n),
                                         bss_.size());
  sta_metrics_ = std::make_unique<StationMetrics>(
      static_cast<std::size_t>(n),
      scenario_.metrics_station_cap > 0
          ? static_cast<std::size_t>(scenario_.metrics_station_cap)
          : StationMetrics::kDefaultCap);
  hol_since_.assign(static_cast<std::size_t>(n), 0.0);
  last_tx_start_.assign(static_cast<std::size_t>(n), -1.0);
  queue_len_.assign(static_cast<std::size_t>(n), 0);

  // Calendar horizon: the run plus slack for the final frame exchange
  // overrunning duration_us (anything further lands in the overflow
  // bucket).
  queue_ = std::make_unique<CalendarQueue>(scenario_.duration_us + 70e3);
  pregenerate_arrivals(seed);
  for (std::size_t b = 0; b < bss_.size(); ++b) {
    queue_->push(0.0, EventKind::kRoundStart, static_cast<int>(b), -1);
  }
  initialized_ = true;
}

void NetSim::pregenerate_arrivals(std::uint64_t seed) {
  if (saturated_) return;  // closed loop: no arrival events at all
  const TrafficModel& tm = scenario_.traffic;
  const double mean_arrival_us = 1e6 / tm.arrival_rate_fps;
  for (int i = 0; i < num_stations(); ++i) {
    // One private arrival stream per station, drawn entirely at init so
    // mid-run handlers never touch it: the event schedule is fixed
    // before the first event pops.
    Rng rng(runner::substream_seed(
        seed, kArrivalStream + static_cast<std::uint64_t>(i)));
    const int b = station_bss_[static_cast<std::size_t>(i)];
    if (tm.kind == TrafficModel::Kind::kPoisson) {
      double t = 0.0;
      while (true) {
        t += -mean_arrival_us * std::log(1.0 - rng.uniform());
        if (t >= scenario_.duration_us) break;
        queue_->push(t, EventKind::kArrival, b, i);
      }
    } else {  // on-off bursty: Poisson arrivals during exponential ON
      double t = 0.0;
      bool on = true;
      while (t < scenario_.duration_us) {
        const double span =
            -(on ? tm.mean_on_us : tm.mean_off_us) *
            std::log(1.0 - rng.uniform());
        if (on) {
          const double window_end =
              std::min(t + span, scenario_.duration_us);
          double s = t;
          while (true) {
            s += -mean_arrival_us * std::log(1.0 - rng.uniform());
            if (s >= window_end) break;
            queue_->push(s, EventKind::kArrival, b, i);
          }
        }
        t += span;
        on = !on;
      }
    }
  }
}

void NetSim::advance_members(const BssState& bss, double us, int except) {
  for (const int i : bss.members) {
    if (i != except) stations_[static_cast<std::size_t>(i)]->advance(1e-6 * us);
  }
}

bool NetSim::done() const {
  if (!initialized_) return false;
  for (const BssState& bss : bss_) {
    if (!bss.finished) return false;
  }
  return true;
}

void NetSim::step() {
  const Event e = queue_->pop();
  now_us_ = e.t_us;
  ++events_;
  switch (e.kind) {
    case EventKind::kArrival:
      on_arrival(e.sta, e.t_us);
      break;
    case EventKind::kRoundStart:
      start_round(e.bss, e.t_us);
      break;
    case EventKind::kBackoffExpiry:
      on_backoff_expiry(e.bss, e.t_us);
      break;
    case EventKind::kTxEnd:
      on_tx_end(e.bss, e.t_us);
      break;
  }
}

void NetSim::step_until(double t_us) {
  if (!initialized_) throw std::logic_error("NetSim::step_until: not initialized");
  while (!queue_->empty() && !done() && queue_->next_time() <= t_us) {
    step();
  }
  // An open-loop run can drain the queue with every BSS dormant (no
  // arrival left to wake anyone). Once the caller's clock passes the
  // scenario horizon there is nothing left to simulate, so converge the
  // same way run() does — otherwise done() would stay false forever and
  // the documented `while (!sim.done()) sim.step_until(t)` driver
  // pattern would never terminate.
  if (queue_->empty() && !done() && t_us >= scenario_.duration_us) {
    finish_dormant();
  }
}

void NetSim::run() {
  if (!initialized_) throw std::logic_error("NetSim::run: not initialized");
  while (!queue_->empty() && !done()) step();
  if (!done()) finish_dormant();
}

void NetSim::on_arrival(int sta, double t) {
  const auto s = static_cast<std::size_t>(sta);
  ++queue_len_[s];
  // A frame reaching an empty queue becomes head-of-line now: its HOL
  // wait clock starts at the arrival, so queueing delay under open-loop
  // traffic flows into the same hol_wait_slots percentiles.
  if (queue_len_[s] == 1) hol_since_[s] = t;
  BssState& bss = bss_[static_cast<std::size_t>(station_bss_[s])];
  if (bss.finished) return;
  if (bss.dormant && !bss.wake_pending) {
    bss.wake_pending = true;
    queue_->push(t, EventKind::kRoundStart, station_bss_[s], -1);
  }
}

void NetSim::start_round(int b, double t) {
  BssState& bss = bss_[static_cast<std::size_t>(b)];
  if (bss.finished) return;
  if (bss.dormant) {
    // Waking up: the whole sleep was idle medium time, and the members'
    // fading processes evolved through it.
    const double gap = t - bss.dormant_since;
    if (gap > 0.0) {
      result_.airtime.idle_us += gap;
      advance_members(bss, gap, -1);
    }
    bss.dormant = false;
    bss.wake_pending = false;
  }
  if (t >= scenario_.duration_us) {
    bss.finished = true;
    bss.end_us = t;
    return;
  }
  bss.contenders.clear();
  for (const int i : bss.members) {
    if (has_frame(i)) bss.contenders.push_back(i);
  }
  if (bss.contenders.empty()) {
    bss.dormant = true;
    bss.dormant_since = t;
    return;
  }

  ++result_.contention_rounds;
  OBS_COUNT("net.rounds");
  // Idle period: DIFS, then the smallest backoff counter many slots.
  int min_counter = std::numeric_limits<int>::max();
  for (const int i : bss.contenders) {
    min_counter = std::min(
        min_counter, stations_[static_cast<std::size_t>(i)]->backoff().counter());
  }
  OBS_HIST("net.contended_slots", min_counter);
  const double idle = backoff_expiry_delay_us(min_counter);
  if (timeline_->on()) {
    timeline_->medium_begin(static_cast<std::size_t>(b), "medium.idle", t);
    timeline_->medium_end(static_cast<std::size_t>(b), "medium.idle",
                          t + idle);
    for (const int i : bss.contenders) {
      timeline_->sta_begin(
          static_cast<std::size_t>(i), "mac.backoff", t,
          "{\"counter\": " +
              std::to_string(
                  stations_[static_cast<std::size_t>(i)]->backoff().counter()) +
              "}");
      timeline_->sta_end(static_cast<std::size_t>(i), "mac.backoff",
                         t + idle);
    }
  }
  bss.min_counter = min_counter;
  bss.idle_us = idle;
  queue_->push(t + idle, EventKind::kBackoffExpiry, b, -1);
}

void NetSim::on_backoff_expiry(int b, double t) {
  BssState& bss = bss_[static_cast<std::size_t>(b)];
  result_.airtime.idle_us += bss.idle_us;
  advance_members(bss, bss.idle_us, -1);

  std::vector<int> winners;
  for (const int i : bss.contenders) {
    Station& sta = *stations_[static_cast<std::size_t>(i)];
    sta.backoff().consume(bss.min_counter);
    if (sta.backoff().expired()) winners.push_back(i);
  }

  if (winners.size() == 1) {
    const int w = winners.front();
    const double air =
        stations_[static_cast<std::size_t>(w)]->nominal_airtime_us();
    const double tail = kSifsUs + ack_airtime_us();
    bss.winner = w;
    bss.tx_start = t;
    bss.air_us = air;
    bss.obss_frac = 0.0;
    bss.obss_raw_us = 0.0;
    bss.blind.clear();
    // Hidden terminals: a contender that cannot hear the winner keeps
    // counting down instead of freezing, and blind-fires if its counter
    // runs out inside the winner's PPDU.
    for (const int h : bss.contenders) {
      if (h == w) continue;
      Station& hidden = *stations_[static_cast<std::size_t>(h)];
      const int residual = hidden.backoff().counter();
      if (residual <= 0) continue;
      if (scenario_.topology.hears(h, w)) continue;
      const double t_fire = t + residual * kSlotUs;
      if (t_fire < t + air) {
        bss.blind.push_back({h, t_fire, hidden.nominal_airtime_us()});
      }
    }
    prune_intervals(t);
    // Open the exchange: catch up on other cells' PPDUs already on the
    // air, then publish this round's own energy — the winner's PPDU and
    // any hidden blind fire (neighbor cells see the stray burst like
    // any other PPDU; the same-BSS victim accounts it via bss.blind at
    // TX end, and register_interval skips own-BSS victims, so nothing
    // double-counts). Later-starting overlappers credit this exchange
    // when they register; the PHY still runs at TX end, once the
    // accumulated fraction is complete.
    for (const TxInterval& iv : live_tx_) {
      if (iv.bss != b) accumulate_overlap(bss, iv);
    }
    register_interval({b, w, bss.channel, t, t + air});
    for (const BlindFire& bf : bss.blind) {
      register_interval(
          {b, bf.sta, bss.channel, bf.t_fire, bf.t_fire + bf.air_us});
    }
    queue_->push(t + (air + tail), EventKind::kTxEnd, b, w);
    return;
  }

  // Collision: the medium is busy for the longest collider's frame,
  // then every collider times out waiting for its (block-)ACK.
  double longest = 0.0;
  for (const int i : winners) {
    longest = std::max(
        longest, stations_[static_cast<std::size_t>(i)]->nominal_airtime_us());
  }
  const double busy = longest + kSifsUs + ack_airtime_us();
  const double busy_start = t;
  const double busy_end = t + busy;
  result_.airtime.collision_us += busy;
  ++result_.collision_rounds;
  OBS_COUNT("net.collision_rounds");
  FLIGHT_EVENT("net.collision", -1, winners.size(), busy_end, busy, 0);
  if (timeline_->on()) {
    const std::string args =
        "{\"colliders\": " + std::to_string(winners.size()) + "}";
    timeline_->medium_begin(static_cast<std::size_t>(b), "medium.collision",
                            busy_start, args);
    timeline_->medium_end(static_cast<std::size_t>(b), "medium.collision",
                          busy_start + busy);
    for (const int i : winners) {
      timeline_->sta_begin(static_cast<std::size_t>(i), "mac.collision",
                           busy_start, args);
      timeline_->sta_end(static_cast<std::size_t>(i), "mac.collision",
                         busy_start + busy);
    }
  }
  for (const int i : winners) {
    stations_[static_cast<std::size_t>(i)]->on_collision();
    sta_metrics_->collision(static_cast<std::size_t>(i));
  }
  advance_members(bss, busy, -1);
  // The garbled burst still radiates into overlapping cells (no reader
  // on this side: a collision round runs no PHY of its own).
  prune_intervals(t);
  register_interval({b, -1, bss.channel, t, t + longest});
  queue_->push(busy_end, EventKind::kRoundStart, b, -1);
}

void NetSim::accumulate_overlap(BssState& victim, const TxInterval& iv) {
  const double weight =
      scenario_.topology.channel_weight(victim.channel, iv.channel);
  if (weight <= 0.0) return;
  const double lo = std::max(victim.tx_start, iv.start_us);
  const double hi = std::min(victim.tx_start + victim.air_us, iv.end_us);
  if (hi <= lo) return;
  victim.obss_frac += weight * (hi - lo) / victim.air_us;
  victim.obss_raw_us += hi - lo;
}

void NetSim::register_interval(const TxInterval& iv) {
  // Credit every other cell's in-flight exchange right now; the
  // schedule of `iv` is already fixed, so geometry against windows
  // extending into the future is exact. Victims never read the registry
  // after the fact, which is what lets prune_intervals() drop an
  // interval the moment it is entirely in the past.
  for (std::size_t v = 0; v < bss_.size(); ++v) {
    if (static_cast<int>(v) == iv.bss) continue;
    BssState& victim = bss_[v];
    if (victim.winner < 0) continue;
    accumulate_overlap(victim, iv);
  }
  live_tx_.push_back(iv);
}

void NetSim::prune_intervals(double t) {
  // Safe because overlap is accounted when intervals register (see
  // register_interval): an interval already ended at `t` can only be
  // scanned by an exchange opening at >= t, with zero overlap.
  std::erase_if(live_tx_,
                [t](const TxInterval& iv) { return iv.end_us <= t; });
}

void NetSim::on_tx_end(int b, double t) {
  BssState& bss = bss_[static_cast<std::size_t>(b)];
  const int w = bss.winner;
  const auto ws = static_cast<std::size_t>(w);
  const double tx_start = bss.tx_start;
  const double tail = kSifsUs + ack_airtime_us();

  const std::uint64_t hol_slots = to_slots(tx_start - hol_since_[ws]);
  stations_[ws]->record_hol_wait(hol_slots);
  OBS_HIST("net.sta.hol_wait_slots", hol_slots);
  sta_metrics_->hol_wait(ws, hol_slots);
  if (last_tx_start_[ws] >= 0.0) {
    const std::uint64_t gap_slots = to_slots(tx_start - last_tx_start_[ws]);
    stations_[ws]->record_tx_gap(gap_slots);
    OBS_HIST("net.sta.inter_tx_gap_slots", gap_slots);
    sta_metrics_->tx_gap(ws, gap_slots);
  }
  last_tx_start_[ws] = tx_start;

  // Interference on this exchange: OBSS overlap from other cells
  // (accumulated onto the exchange as each overlapping interval
  // registered) plus any same-BSS hidden terminal that blind-fired into
  // the PPDU. The overlap fraction becomes the pulse interferer's
  // symbol-hit probability; with no overlap the link stays untouched
  // (and so do its RNG streams — the legacy-identity requirement).
  double fraction = bss.obss_frac;
  result_.obss_overlap_us += bss.obss_raw_us;
  for (const BlindFire& bf : bss.blind) {
    const double overlap =
        std::min(tx_start + bss.air_us, bf.t_fire + bf.air_us) - bf.t_fire;
    fraction += overlap / bss.air_us;
  }
  std::optional<PulseInterferer> interferer;
  if (fraction > 0.0) {
    PulseInterferer pulse;
    pulse.symbol_hit_probability = fraction < 1.0 ? fraction : 1.0;
    pulse.pulse_power = scenario_.topology.obss_pulse_power;
    interferer = pulse;
  }

  // The session advances the winner's own link by the frame airtime;
  // everyone else catches up below.
  const Station::TxOutcome tx = stations_[ws]->transmit(interferer);
  if (tx.data_airtime_us != bss.air_us) {
    // TxEnd was scheduled off nominal_airtime_us(); nothing may advance
    // the winner's link between expiry and here, so the actual airtime
    // must match to the bit.
    throw std::logic_error("NetSim: scheduled airtime drifted from actual");
  }
  result_.airtime.data_us += tx.data_airtime_us;
  result_.airtime.ack_us += ack_airtime_us();
  result_.airtime.idle_us += kSifsUs;
  ++result_.tx_rounds;
  OBS_COUNT("net.tx_rounds");
  if (!tx.data_ok) OBS_COUNT("net.frames_lost");
  sta_metrics_->tx_data_bits(ws, tx.data_bits);
  if (timeline_->on()) {
    const double tx_end = tx_start + tx.data_airtime_us;
    timeline_->medium_begin(static_cast<std::size_t>(b), "medium.busy",
                            tx_start);
    timeline_->medium_end(static_cast<std::size_t>(b), "medium.busy",
                          tx_end + tail);
    timeline_->sta_instant(ws, "mac.win", tx_start);
    timeline_->sta_begin(
        ws, "mac.tx", tx_start,
        "{\"airtime_us\": " + fmt_us(tx.data_airtime_us) +
            ", \"data_ok\": " + (tx.data_ok ? "true" : "false") + "}");
    timeline_->sta_end(ws, "mac.tx", tx_end);
    timeline_->sta_instant(
        ws, "mac.ampdu", tx_end,
        "{\"mpdus_ok\": " + std::to_string(tx.mpdus_delivered) +
            ", \"mpdus\": " + std::to_string(tx.mpdus_sent) + "}");
    timeline_->sta_instant(
        ws, "cos.control", tx_end,
        "{\"bits_sent\": " + std::to_string(tx.control_bits_sent) +
            ", \"bits_correct\": " + std::to_string(tx.control_bits_correct) +
            "}");
  }
  FLIGHT_EVENT("net.tx", w, 1, t, tx.data_airtime_us, tx.data_ok);
  stations_[ws]->advance(1e-6 * tail);
  advance_members(bss, tx.data_airtime_us + tail, w);

  // Hidden blind-firers: each burns a collision (its frame stays
  // queued) and, when its stray PPDU outlives the winner's exchange,
  // extends the round — the extension is wasted (collision) airtime.
  double round_end = t;
  for (const BlindFire& bf : bss.blind) {
    stations_[static_cast<std::size_t>(bf.sta)]->on_collision();
    sta_metrics_->collision(static_cast<std::size_t>(bf.sta));
    OBS_COUNT("net.hidden_fires");
    FLIGHT_EVENT("net.hidden_fire", bf.sta, 1, bf.t_fire, bf.air_us, 0);
    if (timeline_->on()) {
      timeline_->sta_begin(static_cast<std::size_t>(bf.sta), "mac.hidden_tx",
                           bf.t_fire);
      timeline_->sta_end(static_cast<std::size_t>(bf.sta), "mac.hidden_tx",
                         bf.t_fire + bf.air_us);
    }
    const double bf_end = bf.t_fire + (bf.air_us + tail);
    if (bf_end > round_end) {
      const double extension = bf_end - round_end;
      result_.airtime.collision_us += extension;
      advance_members(bss, extension, -1);
      round_end = bf_end;
    }
  }

  if (!saturated_) --queue_len_[ws];
  hol_since_[ws] = round_end;  // next frame queues behind this exchange
  bss.winner = -1;
  bss.obss_frac = 0.0;
  bss.obss_raw_us = 0.0;
  bss.blind.clear();
  queue_->push(round_end, EventKind::kRoundStart, b, -1);
}

void NetSim::finish_dormant() {
  for (BssState& bss : bss_) {
    if (bss.finished) continue;
    if (!bss.dormant) {
      throw std::logic_error("NetSim: stalled BSS with pending work");
    }
    const double gap = scenario_.duration_us - bss.dormant_since;
    if (gap > 0.0) {
      result_.airtime.idle_us += gap;
      advance_members(bss, gap, -1);
    }
    bss.dormant = false;
    bss.finished = true;
    bss.end_us = scenario_.duration_us;
  }
}

NetResult NetSim::result() {
  if (!initialized_) throw std::logic_error("NetSim::result: not initialized");
  if (!finalized_) {
    run();
    double elapsed = 0.0;
    for (const BssState& bss : bss_) elapsed = std::max(elapsed, bss.end_us);
    result_.elapsed_us = elapsed;
    result_.events = events_;
    result_.stations.reserve(stations_.size());
    for (const auto& s : stations_) {
      const StaStats& stats = s->stats();
      OBS_HIST("net.sta.data_bits", stats.data_bits);
      OBS_HIST("net.sta.control_bits_correct", stats.control_bits_correct);
      OBS_HIST("net.sta.tx_rounds", stats.tx_rounds);
      result_.stations.push_back(stats);
    }
    obs::health::maybe_trace_counters();
    finalized_ = true;
  }
  return result_;
}

}  // namespace silence::net
