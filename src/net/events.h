// Timestamped events and the deterministic calendar queue driving the
// event-driven network engine (net/engine.h). The queue's ordering
// contract is the backbone of the engine's purity in (scenario, seed):
// events pop in (timestamp, tie-break key, FIFO) order — the key is
// (kind, bss, station), fixed at schedule time — so two runs of the same
// scenario pop the identical event sequence, and runner- or fabric-
// parallel sweeps (which never share an engine) stay byte-identical at
// any thread or shard count.
//
// The structure is a static calendar: buckets of width `width_us` over
// [0, horizon), each kept sorted, plus one overflow bucket for events
// past the horizon (rare: the final frame exchange of a run overrunning
// `duration_us`). Simulation time is monotone — events are never
// scheduled before the last popped timestamp — so a cursor walks the
// calendar forward and push/pop are O(1) amortized with the tiny
// per-bucket populations a DCF round structure produces.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace silence::net {

// Ordering rank doubles as the tie-break priority at equal timestamps:
// arrivals land before the round they want to join, a round start
// scheduled at a TX end time runs after that TX end completes its
// bookkeeping on another BSS.
enum class EventKind : std::uint8_t {
  kArrival = 0,        // one traffic frame reaches `sta`'s queue
  kRoundStart = 1,     // BSS `bss` opens a contention round
  kBackoffExpiry = 2,  // the round's smallest backoff counter hit zero
  kTxEnd = 3,          // winner `sta`'s frame exchange (+SIFS+ACK) ends
};

struct Event {
  double t_us = 0.0;
  EventKind kind = EventKind::kRoundStart;
  std::int32_t bss = 0;
  std::int32_t sta = -1;  // -1: the event addresses the BSS, not a station
  // FIFO sequence number assigned by the queue at push; the final
  // tie-break, so equal (t, kind, bss, sta) events pop in push order.
  std::uint64_t seq = 0;
};

// Strict total order: timestamp, then the fixed tie-break key, then FIFO.
inline bool event_before(const Event& a, const Event& b) {
  if (a.t_us != b.t_us) return a.t_us < b.t_us;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.bss != b.bss) return a.bss < b.bss;
  if (a.sta != b.sta) return a.sta < b.sta;
  return a.seq < b.seq;
}

class CalendarQueue {
 public:
  // `horizon_us` sizes the calendar (events beyond it share the overflow
  // bucket); `width_us` is the bucket granularity. Bucket count is
  // capped, trading width for memory on very long scenarios.
  explicit CalendarQueue(double horizon_us, double width_us = 64.0)
      : width_(width_us > 0.0 ? width_us : 64.0) {
    if (horizon_us < 0.0) horizon_us = 0.0;
    std::size_t buckets =
        static_cast<std::size_t>(horizon_us / width_) + 2;
    if (buckets > kMaxBuckets) {
      buckets = kMaxBuckets;
      width_ = horizon_us / static_cast<double>(kMaxBuckets - 1);
    }
    buckets_.resize(buckets);
  }

  void push(double t_us, EventKind kind, int bss, int sta) {
    Event e;
    e.t_us = t_us;
    e.kind = kind;
    e.bss = bss;
    e.sta = sta;
    e.seq = next_seq_++;
    std::vector<Event>& bucket = buckets_[bucket_for(t_us)];
    // seq is unique, so event_before is strict: upper_bound keeps equal
    // (t, key) events in push order.
    bucket.insert(
        std::upper_bound(bucket.begin(), bucket.end(), e, event_before), e);
    ++size_;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  // Timestamp of the next event to pop; throws when empty.
  double next_time() const {
    return buckets_[first_nonempty()].front().t_us;
  }

  Event pop() {
    cursor_ = first_nonempty();
    std::vector<Event>& bucket = buckets_[cursor_];
    const Event e = bucket.front();
    bucket.erase(bucket.begin());
    --size_;
    return e;
  }

 private:
  static constexpr std::size_t kMaxBuckets = 1u << 16;

  std::size_t bucket_for(double t_us) const {
    if (t_us <= 0.0) return cursor_;
    auto idx = static_cast<std::size_t>(t_us / width_);
    if (idx >= buckets_.size()) idx = buckets_.size() - 1;  // overflow
    // Time is monotone, but an event at exactly the cursor's bucket
    // boundary must not land behind the cursor.
    return idx < cursor_ ? cursor_ : idx;
  }

  std::size_t first_nonempty() const {
    if (size_ == 0) {
      throw std::logic_error("CalendarQueue: pop/next_time on empty queue");
    }
    std::size_t c = cursor_;
    while (buckets_[c].empty()) ++c;
    return c;
  }

  std::vector<std::vector<Event>> buckets_;
  double width_;
  std::size_t cursor_ = 0;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace silence::net
