// run_scenario as a thin wrapper over the event-driven net::NetSim
// (net/engine.h): construct, run to completion, return the finalized
// result. Kept as the one-shot entry point for benches and the fabric;
// callers that need mid-run state (step_until + per-station accessors)
// use NetSim directly.
#include "net/engine.h"
#include "obs/obs.h"

namespace silence::net {

NetResult run_scenario(const Scenario& scenario, std::uint64_t seed) {
  OBS_SPAN("net.scenario");
  NetSim sim(scenario, seed);
  sim.run();
  return sim.result();
}

}  // namespace silence::net
