// The slotted DCF scheduler tying N Stations to one shared medium. The
// loop is the same shape as mac/contention.cpp — DIFS + smallest backoff
// counter of idle time, then either one winner's frame exchange or a
// collision — but each solo winner transmits a real aggregated CoS frame
// through its closed-loop session instead of a bare PHY packet.
#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "mac/aggregation.h"
#include "mac/frame.h"
#include "mac/timing.h"
#include "net/station.h"
#include "obs/flight/flight.h"
#include "obs/obs.h"

namespace silence::net {

NetResult run_scenario(const Scenario& scenario, std::uint64_t seed) {
  if (scenario.num_stations < 1) {
    throw std::invalid_argument("run_scenario: need >= 1 station");
  }
  if (scenario.duration_us <= 0.0) {
    throw std::invalid_argument("run_scenario: duration_us must be > 0");
  }
  if (scenario.mpdu_octets < 1 ||
      scenario.mpdu_octets + kMacOverheadOctets + kDelimiterOctets >
          kMaxAggregateOctets) {
    throw std::invalid_argument("run_scenario: mpdu_octets out of range");
  }
  OBS_SPAN("net.scenario");

  // Stations hold a CosSession referencing their own Link, so they are
  // pinned in memory.
  std::vector<std::unique_ptr<Station>> stations;
  stations.reserve(static_cast<std::size_t>(scenario.num_stations));
  for (int i = 0; i < scenario.num_stations; ++i) {
    stations.push_back(std::make_unique<Station>(scenario, i, seed));
  }

  NetResult result;
  double now_us = 0.0;
  const auto advance_all = [&](double us, std::size_t except) {
    for (std::size_t i = 0; i < stations.size(); ++i) {
      if (i != except) stations[i]->advance(1e-6 * us);
    }
  };

  while (now_us < scenario.duration_us) {
    ++result.contention_rounds;
    OBS_COUNT("net.rounds");

    // Idle period: DIFS, then the smallest backoff counter many slots.
    int min_counter = std::numeric_limits<int>::max();
    for (const auto& s : stations) {
      min_counter = std::min(min_counter, s->backoff().counter());
    }
    OBS_HIST("net.contended_slots", min_counter);
    const double idle = kDifsUs + min_counter * kSlotUs;
    now_us += idle;
    result.airtime.idle_us += idle;
    advance_all(idle, stations.size());

    std::vector<std::size_t> winners;
    for (std::size_t i = 0; i < stations.size(); ++i) {
      stations[i]->backoff().consume(min_counter);
      if (stations[i]->backoff().counter() == 0) winners.push_back(i);
    }

    if (winners.size() == 1) {
      const std::size_t w = winners.front();
      // The session advances the winner's own link by the frame
      // airtime; everyone else catches up below.
      const Station::TxOutcome tx = stations[w]->transmit();
      const double tail = kSifsUs + ack_airtime_us();
      now_us += tx.data_airtime_us + tail;
      result.airtime.data_us += tx.data_airtime_us;
      result.airtime.ack_us += ack_airtime_us();
      result.airtime.idle_us += kSifsUs;
      ++result.tx_rounds;
      OBS_COUNT("net.tx_rounds");
      if (!tx.data_ok) OBS_COUNT("net.frames_lost");
      FLIGHT_EVENT("net.tx", w, winners.size(), now_us, tx.data_airtime_us,
                   tx.data_ok);
      stations[w]->advance(1e-6 * tail);
      advance_all(tx.data_airtime_us + tail, w);
    } else {
      // Collision: the medium is busy for the longest collider's frame,
      // then every collider times out waiting for its (block-)ACK.
      double longest = 0.0;
      for (const std::size_t i : winners) {
        longest = std::max(longest, stations[i]->nominal_airtime_us());
      }
      const double busy = longest + kSifsUs + ack_airtime_us();
      now_us += busy;
      result.airtime.collision_us += busy;
      ++result.collision_rounds;
      OBS_COUNT("net.collision_rounds");
      FLIGHT_EVENT("net.collision", -1, winners.size(), now_us, busy, 0);
      for (const std::size_t i : winners) stations[i]->on_collision();
      advance_all(busy, stations.size());
    }
  }

  result.elapsed_us = now_us;
  result.stations.reserve(stations.size());
  for (const auto& s : stations) {
    const StaStats& stats = s->stats();
    OBS_HIST("net.sta.data_bits", stats.data_bits);
    OBS_HIST("net.sta.control_bits_correct", stats.control_bits_correct);
    OBS_HIST("net.sta.tx_rounds", stats.tx_rounds);
    result.stations.push_back(stats);
  }
  return result;
}

}  // namespace silence::net
