// The slotted DCF scheduler tying N Stations to one shared medium. The
// loop is the same shape as mac/contention.cpp — DIFS + smallest backoff
// counter of idle time, then either one winner's frame exchange or a
// collision — but each solo winner transmits a real aggregated CoS frame
// through its closed-loop session instead of a bare PHY packet.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "mac/aggregation.h"
#include "mac/frame.h"
#include "mac/timing.h"
#include "net/station.h"
#include "net/timeline.h"
#include "obs/flight/flight.h"
#include "obs/health/health.h"
#include "obs/obs.h"

namespace silence::net {

namespace {

// Simulated-µs quantities rendered into timeline args: fixed three
// decimals, locale-free, deterministic.
std::string fmt_us(double us) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  return buf;
}

std::uint64_t to_slots(double us) {
  return static_cast<std::uint64_t>(std::llround(us / kSlotUs));
}

}  // namespace

NetResult run_scenario(const Scenario& scenario, std::uint64_t seed) {
  if (scenario.num_stations < 1) {
    throw std::invalid_argument("run_scenario: need >= 1 station");
  }
  if (scenario.duration_us <= 0.0) {
    throw std::invalid_argument("run_scenario: duration_us must be > 0");
  }
  if (scenario.mpdu_octets < 1 ||
      scenario.mpdu_octets + kMacOverheadOctets + kDelimiterOctets >
          kMaxAggregateOctets) {
    throw std::invalid_argument("run_scenario: mpdu_octets out of range");
  }
  OBS_SPAN("net.scenario");

  // Stations hold a CosSession referencing their own Link, so they are
  // pinned in memory. They share one batched-PHY workspace: the slotted
  // scheduler runs at most one frame exchange at a time, and the batch
  // facades are bit-identical to the scalar chain, so slot ordering and
  // per-station RNG substreams are untouched. `--no-phy-batch` (via
  // set_phy_batch_enabled) reverts every session to the scalar path.
  auto phy_batch = std::make_unique<PhyBatch>();
  std::vector<std::unique_ptr<Station>> stations;
  stations.reserve(static_cast<std::size_t>(scenario.num_stations));
  for (int i = 0; i < scenario.num_stations; ++i) {
    stations.push_back(
        std::make_unique<Station>(scenario, i, seed, phy_batch.get()));
  }

  NetResult result;
  double now_us = 0.0;
  const auto advance_all = [&](double us, std::size_t except) {
    for (std::size_t i = 0; i < stations.size(); ++i) {
      if (i != except) stations[i]->advance(1e-6 * us);
    }
  };

  // MAC timeline (pid-2 trace tracks) and per-station registry metrics —
  // both inert under SILENCE_OBS=OFF. Head-of-line and inter-TX times
  // are part of the deterministic result, so they are tracked
  // unconditionally: a frame becomes head-of-line when the station's
  // previous exchange ends (or at t = 0) and waits until its winning TX
  // starts; collisions lengthen the wait, they don't reset it.
  Timeline timeline(stations.size());
  StationMetrics sta_metrics(
      stations.size(),
      scenario.metrics_station_cap > 0
          ? static_cast<std::size_t>(scenario.metrics_station_cap)
          : StationMetrics::kDefaultCap);
  std::vector<double> hol_since(stations.size(), 0.0);
  std::vector<double> last_tx_start(stations.size(), -1.0);

  while (now_us < scenario.duration_us) {
    ++result.contention_rounds;
    OBS_COUNT("net.rounds");

    // Idle period: DIFS, then the smallest backoff counter many slots.
    int min_counter = std::numeric_limits<int>::max();
    for (const auto& s : stations) {
      min_counter = std::min(min_counter, s->backoff().counter());
    }
    OBS_HIST("net.contended_slots", min_counter);
    const double idle = kDifsUs + min_counter * kSlotUs;
    const double round_start = now_us;
    if (timeline.on()) {
      timeline.medium_begin("medium.idle", round_start);
      timeline.medium_end("medium.idle", round_start + idle);
      for (std::size_t i = 0; i < stations.size(); ++i) {
        timeline.sta_begin(
            i, "mac.backoff", round_start,
            "{\"counter\": " +
                std::to_string(stations[i]->backoff().counter()) + "}");
        timeline.sta_end(i, "mac.backoff", round_start + idle);
      }
    }
    now_us += idle;
    result.airtime.idle_us += idle;
    advance_all(idle, stations.size());

    std::vector<std::size_t> winners;
    for (std::size_t i = 0; i < stations.size(); ++i) {
      stations[i]->backoff().consume(min_counter);
      if (stations[i]->backoff().counter() == 0) winners.push_back(i);
    }

    if (winners.size() == 1) {
      const std::size_t w = winners.front();
      const double tx_start = now_us;
      const std::uint64_t hol_slots = to_slots(tx_start - hol_since[w]);
      stations[w]->record_hol_wait(hol_slots);
      OBS_HIST("net.sta.hol_wait_slots", hol_slots);
      sta_metrics.hol_wait(w, hol_slots);
      if (last_tx_start[w] >= 0.0) {
        const std::uint64_t gap_slots = to_slots(tx_start - last_tx_start[w]);
        stations[w]->record_tx_gap(gap_slots);
        OBS_HIST("net.sta.inter_tx_gap_slots", gap_slots);
        sta_metrics.tx_gap(w, gap_slots);
      }
      last_tx_start[w] = tx_start;
      // The session advances the winner's own link by the frame
      // airtime; everyone else catches up below.
      const Station::TxOutcome tx = stations[w]->transmit();
      const double tail = kSifsUs + ack_airtime_us();
      now_us += tx.data_airtime_us + tail;
      result.airtime.data_us += tx.data_airtime_us;
      result.airtime.ack_us += ack_airtime_us();
      result.airtime.idle_us += kSifsUs;
      ++result.tx_rounds;
      OBS_COUNT("net.tx_rounds");
      if (!tx.data_ok) OBS_COUNT("net.frames_lost");
      sta_metrics.tx_data_bits(w, tx.data_bits);
      if (timeline.on()) {
        const double tx_end = tx_start + tx.data_airtime_us;
        timeline.medium_begin("medium.busy", tx_start);
        timeline.medium_end("medium.busy", tx_end + tail);
        timeline.sta_instant(w, "mac.win", tx_start);
        timeline.sta_begin(
            w, "mac.tx", tx_start,
            "{\"airtime_us\": " + fmt_us(tx.data_airtime_us) +
                ", \"data_ok\": " + (tx.data_ok ? "true" : "false") + "}");
        timeline.sta_end(w, "mac.tx", tx_end);
        timeline.sta_instant(
            w, "mac.ampdu", tx_end,
            "{\"mpdus_ok\": " + std::to_string(tx.mpdus_delivered) +
                ", \"mpdus\": " + std::to_string(tx.mpdus_sent) + "}");
        timeline.sta_instant(
            w, "cos.control", tx_end,
            "{\"bits_sent\": " + std::to_string(tx.control_bits_sent) +
                ", \"bits_correct\": " +
                std::to_string(tx.control_bits_correct) + "}");
      }
      FLIGHT_EVENT("net.tx", w, winners.size(), now_us, tx.data_airtime_us,
                   tx.data_ok);
      stations[w]->advance(1e-6 * tail);
      advance_all(tx.data_airtime_us + tail, w);
      hol_since[w] = now_us;  // next frame queues behind this exchange
    } else {
      // Collision: the medium is busy for the longest collider's frame,
      // then every collider times out waiting for its (block-)ACK.
      double longest = 0.0;
      for (const std::size_t i : winners) {
        longest = std::max(longest, stations[i]->nominal_airtime_us());
      }
      const double busy = longest + kSifsUs + ack_airtime_us();
      const double busy_start = now_us;
      now_us += busy;
      result.airtime.collision_us += busy;
      ++result.collision_rounds;
      OBS_COUNT("net.collision_rounds");
      FLIGHT_EVENT("net.collision", -1, winners.size(), now_us, busy, 0);
      if (timeline.on()) {
        const std::string args =
            "{\"colliders\": " + std::to_string(winners.size()) + "}";
        timeline.medium_begin("medium.collision", busy_start, args);
        timeline.medium_end("medium.collision", busy_start + busy);
        for (const std::size_t i : winners) {
          timeline.sta_begin(i, "mac.collision", busy_start, args);
          timeline.sta_end(i, "mac.collision", busy_start + busy);
        }
      }
      for (const std::size_t i : winners) {
        stations[i]->on_collision();
        sta_metrics.collision(i);
      }
      advance_all(busy, stations.size());
    }
  }

  result.elapsed_us = now_us;
  result.stations.reserve(stations.size());
  for (const auto& s : stations) {
    const StaStats& stats = s->stats();
    OBS_HIST("net.sta.data_bits", stats.data_bits);
    OBS_HIST("net.sta.control_bits_correct", stats.control_bits_correct);
    OBS_HIST("net.sta.tx_rounds", stats.tx_rounds);
    result.stations.push_back(stats);
  }
  obs::health::maybe_trace_counters();
  return result;
}

}  // namespace silence::net
