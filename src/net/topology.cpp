#include "net/topology.h"

#include <stdexcept>
#include <string>

namespace silence::net {

namespace {

const runner::Json& require(const runner::Json& json, std::string_view key) {
  const runner::Json* value = json.find(key);
  if (value == nullptr) {
    throw std::runtime_error("net::Topology: missing field '" +
                             std::string(key) + "'");
  }
  return *value;
}

}  // namespace

int Topology::station_bss(int index) const {
  int base = 0;
  for (std::size_t b = 0; b < bss.size(); ++b) {
    base += bss[b].num_stations;
    if (index < base) return static_cast<int>(b);
  }
  throw std::out_of_range("Topology::station_bss: index out of range");
}

int Topology::first_station(int bss_index) const {
  int base = 0;
  for (int b = 0; b < bss_index; ++b) {
    base += bss[static_cast<std::size_t>(b)].num_stations;
  }
  return base;
}

double Topology::station_snr_db(int index) const {
  const int b = station_bss(index);
  const Bss& cell = bss[static_cast<std::size_t>(b)];
  const int local = index - first_station(b);
  // Bit-identical to the legacy flat scenario's interpolation for a
  // single BSS: same expression, same operand order.
  if (cell.num_stations <= 1) return cell.snr_db_near;
  const double t = static_cast<double>(local) /
                   static_cast<double>(cell.num_stations - 1);
  return cell.snr_db_near + t * (cell.snr_db_far - cell.snr_db_near);
}

void Topology::validate() const {
  if (bss.empty()) {
    throw std::invalid_argument("net::Topology: need >= 1 BSS");
  }
  for (const Bss& b : bss) {
    if (b.num_stations < 1) {
      throw std::invalid_argument("net::Topology: need >= 1 station per BSS");
    }
  }
  const auto n = static_cast<std::size_t>(total_stations());
  if (!carrier_sense.empty() && carrier_sense.size() != n * n) {
    throw std::invalid_argument(
        "net::Topology: carrier_sense must be empty or N*N");
  }
  if (obss_pulse_power < 0.0) {
    throw std::invalid_argument("net::Topology: obss_pulse_power < 0");
  }
  if (adjacent_leak < 0.0 || adjacent_leak > 1.0) {
    throw std::invalid_argument(
        "net::Topology: adjacent_leak outside [0, 1]");
  }
}

runner::Json Topology::to_json() const {
  runner::Json root = runner::Json::object();
  runner::Json cells = runner::Json::array();
  for (const Bss& b : bss) {
    runner::Json cell = runner::Json::object();
    cell.set("channel", static_cast<std::int64_t>(b.channel));
    cell.set("num_stations", static_cast<std::int64_t>(b.num_stations));
    cell.set("snr_db_near", b.snr_db_near);
    cell.set("snr_db_far", b.snr_db_far);
    cells.push_back(std::move(cell));
  }
  root.set("bss", std::move(cells));
  runner::Json sense = runner::Json::array();
  for (const std::uint8_t v : carrier_sense) {
    sense.push_back(static_cast<std::int64_t>(v));
  }
  root.set("carrier_sense", std::move(sense));
  root.set("obss_pulse_power", obss_pulse_power);
  root.set("adjacent_leak", adjacent_leak);
  return root;
}

Topology Topology::from_json(const runner::Json& json) {
  Topology t;
  const runner::Json& cells = require(json, "bss");
  if (!cells.is_array()) {
    throw std::runtime_error("net::Topology: bss is not an array");
  }
  t.bss.clear();
  for (const runner::Json& cell : cells.as_array()) {
    Bss b;
    b.channel = static_cast<int>(require(cell, "channel").as_int());
    b.num_stations =
        static_cast<int>(require(cell, "num_stations").as_int());
    b.snr_db_near = require(cell, "snr_db_near").as_double();
    b.snr_db_far = require(cell, "snr_db_far").as_double();
    t.bss.push_back(b);
  }
  const runner::Json& sense = require(json, "carrier_sense");
  if (!sense.is_array()) {
    throw std::runtime_error("net::Topology: carrier_sense is not an array");
  }
  t.carrier_sense.clear();
  for (const runner::Json& v : sense.as_array()) {
    t.carrier_sense.push_back(static_cast<std::uint8_t>(v.as_int() != 0));
  }
  t.obss_pulse_power = require(json, "obss_pulse_power").as_double();
  t.adjacent_leak = require(json, "adjacent_leak").as_double();
  return t;
}

void TrafficModel::validate() const {
  if (!saturated() && arrival_rate_fps <= 0.0) {
    throw std::invalid_argument("net::TrafficModel: arrival_rate_fps <= 0");
  }
  if (kind == Kind::kOnOff && (mean_on_us <= 0.0 || mean_off_us <= 0.0)) {
    throw std::invalid_argument(
        "net::TrafficModel: on/off period means must be > 0");
  }
}

namespace {

const char* kind_name(TrafficModel::Kind kind) {
  switch (kind) {
    case TrafficModel::Kind::kSaturated:
      return "saturated";
    case TrafficModel::Kind::kPoisson:
      return "poisson";
    case TrafficModel::Kind::kOnOff:
      return "on_off";
  }
  throw std::logic_error("TrafficModel: unknown kind");
}

TrafficModel::Kind kind_from_name(const std::string& name) {
  if (name == "saturated") return TrafficModel::Kind::kSaturated;
  if (name == "poisson") return TrafficModel::Kind::kPoisson;
  if (name == "on_off") return TrafficModel::Kind::kOnOff;
  throw std::runtime_error("net::TrafficModel: unknown kind '" + name + "'");
}

}  // namespace

runner::Json TrafficModel::to_json() const {
  runner::Json root = runner::Json::object();
  root.set("kind", kind_name(kind));
  root.set("arrival_rate_fps", arrival_rate_fps);
  root.set("mean_on_us", mean_on_us);
  root.set("mean_off_us", mean_off_us);
  return root;
}

TrafficModel TrafficModel::from_json(const runner::Json& json) {
  TrafficModel m;
  m.kind = kind_from_name(require(json, "kind").as_string());
  m.arrival_rate_fps = require(json, "arrival_rate_fps").as_double();
  m.mean_on_us = require(json, "mean_on_us").as_double();
  m.mean_off_us = require(json, "mean_off_us").as_double();
  return m;
}

}  // namespace silence::net
