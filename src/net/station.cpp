#include "net/station.h"

#include <vector>

#include "common/crc32.h"
#include "mac/aggregation.h"
#include "mac/frame.h"
#include "mac/timing.h"
#include "runner/seed.h"

namespace silence::net {

namespace {

// Seed substream bases: keep the station-indexed families far apart so
// no two stations (indices < 2^8 in practice) ever share a stream.
constexpr std::uint64_t kChannelStream = 0x100;
constexpr std::uint64_t kNoiseStream = 0x200;
constexpr std::uint64_t kTrafficStream = 0x300;

LinkConfig link_config_for(const Scenario& scenario, int index,
                           double snr_db, std::uint64_t seed) {
  LinkConfig config;
  config.profile = scenario.profile;
  config.channel_seed = runner::substream_seed(
      seed, kChannelStream + static_cast<std::uint64_t>(index));
  config.noise_seed = runner::substream_seed(
      seed, kNoiseStream + static_cast<std::uint64_t>(index));
  config.snr_db = snr_db;
  config.snr_is_measured = true;
  return config;
}

SessionConfig session_config_for(const Scenario& scenario,
                                 PhyBatch* phy_batch) {
  SessionConfig config;
  config.profile = scenario.cos;
  config.fixed_rate_mbps = scenario.fixed_rate_mbps;
  config.use_selection_feedback = scenario.use_selection_feedback;
  config.phy_batch = phy_batch;
  return config;
}

std::size_t clamp_mpdus(const Scenario& scenario, std::size_t mpdu_psdu) {
  const std::size_t fit = max_mpdus_per_aggregate(mpdu_psdu);
  const auto wanted = static_cast<std::size_t>(
      scenario.max_mpdus_per_frame < 1 ? 1 : scenario.max_mpdus_per_frame);
  return wanted < fit ? wanted : fit;
}

// The aggregate's on-air size is a pure function of the subframe count
// and size; measure it once with placeholder MPDUs. The extra 4 octets
// are the outer FCS the PHY validates (per-MPDU FCS rides inside).
std::size_t planned_aggregate_octets(std::size_t mpdus,
                                     std::size_t mpdu_psdu) {
  const std::vector<Bytes> dummy(mpdus, Bytes(mpdu_psdu, 0u));
  return aggregate_mpdus(dummy).size() + 4;
}

}  // namespace

Station::Station(const Scenario& scenario, int index, double snr_db,
                 std::uint64_t seed, PhyBatch* phy_batch)
    : mpdus_per_frame_(
          clamp_mpdus(scenario, scenario.mpdu_octets + kMacOverheadOctets)),
      mpdu_payload_octets_(scenario.mpdu_octets),
      aggregate_octets_(planned_aggregate_octets(
          mpdus_per_frame_, scenario.mpdu_octets + kMacOverheadOctets)),
      control_bits_per_frame_(scenario.control_bits_per_frame),
      fixed_rate_mbps_(scenario.fixed_rate_mbps),
      address_(static_cast<std::uint8_t>(index + 1)),
      traffic_rng_(runner::substream_seed(
          seed, kTrafficStream + static_cast<std::uint64_t>(index))),
      link_(link_config_for(scenario, index, snr_db, seed)),
      session_(link_, session_config_for(scenario, phy_batch)) {
  backoff_.restart(traffic_rng_);
}

double Station::nominal_airtime_us() const {
  const Mcs& mcs = fixed_rate_mbps_
                       ? mcs_for_rate(*fixed_rate_mbps_)
                       : select_mcs_by_snr(link_.measured_snr_db());
  return psdu_airtime_us(aggregate_octets_, mcs);
}

Station::TxOutcome Station::transmit(
    const std::optional<PulseInterferer>& interferer) {
  if (interferer) link_.set_interferer(interferer);
  std::vector<Bytes> mpdus;
  mpdus.reserve(mpdus_per_frame_);
  for (std::size_t m = 0; m < mpdus_per_frame_; ++m) {
    MacFrame frame;
    frame.type = FrameType::kData;
    frame.src = address_;
    frame.dst = 0;  // the AP
    frame.seq = seq_++;
    frame.payload = traffic_rng_.bytes(mpdu_payload_octets_);
    mpdus.push_back(serialize_frame(frame));
  }
  Bytes aggregate = aggregate_mpdus(mpdus);
  append_fcs(aggregate);  // outer FCS: what the PHY's decode validates
  const Bits control = traffic_rng_.bits(control_bits_per_frame_);

  const PacketReport report = session_.send_packet(aggregate, control);
  if (interferer) link_.set_interferer(std::nullopt);

  TxOutcome out;
  out.data_airtime_us = psdu_airtime_us(aggregate.size(), *report.mcs);
  out.data_ok = report.data_ok;
  out.mpdus_sent = mpdus_per_frame_;
  out.control_bits_sent = report.control_bits_sent;
  out.control_bits_correct = report.control_bits_correct;

  ++stats_.tx_rounds;
  stats_.data_airtime_us += out.data_airtime_us;
  stats_.control_bits_sent += report.control_bits_sent;
  stats_.control_bits_correct += report.control_bits_correct;
  if (report.data_ok) {
    ++stats_.frames_delivered;
    // Block-ACK semantics: each subframe with an intact delimiter and
    // FCS counts individually; a corrupt delimiter loses the tail. The
    // last 4 octets are the outer FCS, not subframe data.
    const std::span<const std::uint8_t> body =
        std::span<const std::uint8_t>(report.rx.psdu)
            .first(report.rx.psdu.size() - 4);
    for (const DeaggregatedMpdu& sub : deaggregate_mpdus(body)) {
      if (!sub.delimiter_ok) continue;
      if (const auto parsed = parse_frame(sub.mpdu)) {
        ++out.mpdus_delivered;
        out.data_bits += 8 * parsed->payload.size();
      }
    }
    stats_.mpdus_delivered += out.mpdus_delivered;
    stats_.data_bits += out.data_bits;
    backoff_.on_success(traffic_rng_);
  } else {
    ++stats_.frames_lost;
    backoff_.on_collision(traffic_rng_);  // failed exchange
  }
  return out;
}

void Station::on_collision() {
  ++stats_.collisions;
  backoff_.on_collision(traffic_rng_);
}

}  // namespace silence::net
