#include "channel/impairments.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "phy/params.h"

namespace silence {

RadioImpairments::RadioImpairments(const ImpairmentProfile& profile,
                                   std::uint64_t seed)
    : profile_(profile), rng_(seed) {
  if (profile_.tx_evm_floor < 0.0 || profile_.phase_noise_std < 0.0) {
    throw std::invalid_argument("RadioImpairments: negative impairment");
  }
}

CxVec RadioImpairments::apply(std::span<const Cx> samples) {
  CxVec out(samples.begin(), samples.end());
  if (out.empty()) return out;

  if (profile_.tx_evm_floor > 0.0) {
    double mean_power = 0.0;
    for (const Cx& x : out) mean_power += std::norm(x);
    mean_power /= static_cast<double>(out.size());
    const double error_var =
        profile_.tx_evm_floor * profile_.tx_evm_floor * mean_power;
    for (Cx& x : out) x += rng_.complex_gaussian(error_var);
  }

  const double cfo_step =
      2.0 * std::numbers::pi * profile_.cfo_hz / kSampleRateHz;
  for (Cx& x : out) {
    phase_ += cfo_step;
    if (profile_.phase_noise_std > 0.0) {
      phase_ += profile_.phase_noise_std * rng_.gaussian();
    }
    x *= Cx{std::cos(phase_), std::sin(phase_)};
  }
  // Keep the accumulator bounded over long simulations.
  phase_ = std::fmod(phase_, 2.0 * std::numbers::pi);
  return out;
}

}  // namespace silence
