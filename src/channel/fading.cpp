#include "channel/fading.h"

#include <cmath>
#include <mutex>
#include <numbers>
#include <stdexcept>

#include "common/db.h"
#include "obs/flight/flight.h"
#include "obs/obs.h"

namespace silence {

// SNR conventions. The transmitter's IFFT carries unit-average-energy
// constellation points, so after the receiver's unnormalized 64-point FFT
// a data bin holds X[k]*H[k] with E[|X|^2] = 1, while time-domain AWGN of
// per-sample variance s^2 appears with variance 64*s^2 per bin. The mean
// subcarrier SNR through a unit-energy channel (sum |h_l|^2 = 1) is then
// 1 / (64 * s^2).
double noise_var_for_snr_db(double snr_db) {
  return 1.0 / (kFftSize * db_to_linear(snr_db));
}

double freq_noise_var(double time_noise_var) {
  return kFftSize * time_noise_var;
}

double noise_var_for_measured_snr(const FadingChannel& channel,
                                  double measured_snr_db) {
  // measured_snr_db(nv) is monotone decreasing in nv but not exactly
  // linear in dB (the per-subcarrier clamp bends it), so bisect on the
  // noise power in dB.
  double lo_db = -80.0, hi_db = 80.0;  // nv = noise_var_for_snr_db(x)
  for (int iter = 0; iter < 60; ++iter) {
    const double mid_db = 0.5 * (lo_db + hi_db);
    const double measured =
        channel.measured_snr_db(noise_var_for_snr_db(mid_db));
    if (measured > measured_snr_db) {
      hi_db = mid_db;  // too little noise: push the mean SNR down
    } else {
      lo_db = mid_db;
    }
  }
  return noise_var_for_snr_db(0.5 * (lo_db + hi_db));
}

FadingChannel::FadingChannel(const MultipathProfile& profile,
                             std::uint64_t seed)
    : profile_(profile), rng_(seed) {
  if (profile_.num_taps < 1 || profile_.num_taps > kCpLength) {
    throw std::invalid_argument(
        "FadingChannel: num_taps must be in [1, CP length]");
  }
  const auto n = static_cast<std::size_t>(profile_.num_taps);

  // Exponential PDP, normalized to unit total power; tap 0 additionally
  // splits into a static LOS part and a scattered part per the K-factor.
  std::vector<double> power(n);
  double total = 0.0;
  for (std::size_t l = 0; l < n; ++l) {
    power[l] = std::exp(-static_cast<double>(l) / profile_.decay_taps);
    total += power[l];
  }
  for (auto& p : power) p /= total;

  los_.assign(n, Cx{0.0, 0.0});
  scatter_.assign(n, Cx{0.0, 0.0});
  scatter_var_.assign(n, 0.0);
  const bool all_static = profile_.k_all_taps_linear > 0.0;
  const double k0 = profile_.rician_k_linear;
  for (std::size_t l = 0; l < n; ++l) {
    const double k = all_static ? profile_.k_all_taps_linear
                                : (l == 0 ? k0 : 0.0);
    if (k > 0.0) {
      const double los_power = power[l] * k / (k + 1.0);
      scatter_var_[l] = power[l] / (k + 1.0);
      const double phase = 2.0 * std::numbers::pi * rng_.uniform();
      los_[l] = std::sqrt(los_power) * Cx{std::cos(phase), std::sin(phase)};
    } else {
      scatter_var_[l] = power[l];
    }
    scatter_[l] = rng_.complex_gaussian(scatter_var_[l]);
  }
  rebuild_taps();
}

void FadingChannel::rebuild_taps() {
  taps_.resize(los_.size());
  for (std::size_t l = 0; l < los_.size(); ++l) {
    taps_[l] = los_[l] + scatter_[l];
  }
}

namespace {

// libstdc++'s cyl_bessel_j routes through libm's lgamma, which writes the
// process-global `signgam` — concurrent sweep trials advancing their own
// channels race on it (TSan-visible). The return value never depends on
// signgam, so serializing the call fixes the race without changing any
// result bit. advance() runs once per packet, not per sample, so the lock
// is off every hot path.
double bessel_j0(double x) {
  static std::mutex mu;
  const std::scoped_lock lock(mu);
  return std::cyl_bessel_j(0.0, x);
}

}  // namespace

void FadingChannel::advance(double seconds) {
  if (seconds <= 0.0) return;
  const double x =
      2.0 * std::numbers::pi * profile_.doppler_hz * seconds;
  // Jakes autocorrelation J0(x), clamped to [0, 1): beyond the first null
  // the process is effectively decorrelated.
  const double rho = std::max(0.0, bessel_j0(x));
  const double innovation = 1.0 - rho * rho;
  for (std::size_t l = 0; l < scatter_.size(); ++l) {
    scatter_[l] = rho * scatter_[l] +
                  rng_.complex_gaussian(innovation * scatter_var_[l]);
  }
  rebuild_taps();
}

CxVec FadingChannel::apply_multipath(std::span<const Cx> samples) const {
  // Tap-outer form of the FIR convolution. Every out[n] still sums
  // taps_[l] * samples[n - l] in ascending-l order — the same additions
  // in the same order as the sample-outer loop, so the result is
  // bit-identical — but the inner loop now walks the sample dimension
  // contiguously with a loop-invariant tap, which vectorizes instead of
  // serializing on a per-sample accumulator. Split-double pointers keep
  // the complex multiply in the (ac - bd, ad + bc) form libstdc++
  // inlines for finite values.
  CxVec out(samples.size(), Cx{0.0, 0.0});
  const std::size_t count = samples.size();
  const auto* __restrict s = reinterpret_cast<const double*>(samples.data());
  auto* __restrict o = reinterpret_cast<double*>(out.data());
  for (std::size_t l = 0; l < taps_.size() && l < count; ++l) {
    const double tr = taps_[l].real();
    const double ti = taps_[l].imag();
    double* __restrict ol = o + 2 * l;
    for (std::size_t n = 0; n < count - l; ++n) {
      const double sr = s[2 * n];
      const double si = s[2 * n + 1];
      ol[2 * n] += tr * sr - ti * si;
      ol[2 * n + 1] += tr * si + ti * sr;
    }
  }
  return out;
}

CxVec FadingChannel::transmit(std::span<const Cx> samples, double noise_var,
                              Rng& noise_rng) const {
  OBS_SPAN("chan.apply");
  OBS_COUNT("chan.packets");
  // Flight: the realization this packet saw (a/b = tap re/im, subcarrier
  // field reused as the tap delay index).
  for (std::size_t l = 0; l < taps_.size(); ++l) {
    FLIGHT_EVENT("chan.tap", obs::flight::kNoIndex, l, taps_[l].real(),
                 taps_[l].imag(), 0);
  }
  CxVec out = apply_multipath(samples);
  for (auto& x : out) x += noise_rng.complex_gaussian(noise_var);
  OBS_COUNT_N("chan.apply.items", out.size());
  return out;
}

std::array<Cx, kFftSize> FadingChannel::frequency_response() const {
  std::array<Cx, kFftSize> response{};
  for (int k = 0; k < kFftSize; ++k) {
    Cx acc{0.0, 0.0};
    for (std::size_t l = 0; l < taps_.size(); ++l) {
      const double angle = -2.0 * std::numbers::pi * k *
                           static_cast<double>(l) / kFftSize;
      acc += taps_[l] * Cx{std::cos(angle), std::sin(angle)};
    }
    response[static_cast<std::size_t>(k)] = acc;
  }
  return response;
}

double FadingChannel::actual_snr_db(double noise_var) const {
  const auto response = frequency_response();
  const double n_freq = freq_noise_var(noise_var);
  double sum = 0.0;
  int count = 0;
  for (int bin : data_subcarrier_bins()) {
    sum += std::norm(response[static_cast<std::size_t>(bin)]) / n_freq;
    ++count;
  }
  return linear_to_db(sum / count);
}

double FadingChannel::measured_snr_db(double noise_var) const {
  // Harmonic mean of the per-subcarrier SNRs: an aggregate that a faded
  // subcarrier drags down hard, modelling the paper's observation that
  // "the measured SNR is dragged to a low value by those fading
  // subcarriers". Deep notches are clamped at the noise floor (SNR 1):
  // the NIC cannot report a subcarrier as *worse* than pure noise.
  const auto response = frequency_response();
  const double n_freq = freq_noise_var(noise_var);
  double inverse_sum = 0.0;
  int count = 0;
  for (int bin : data_subcarrier_bins()) {
    const double snr =
        std::norm(response[static_cast<std::size_t>(bin)]) / n_freq;
    // Notches contribute at most a -5 dB reading each: one dead bin
    // drags the aggregate hard but cannot zero it out.
    inverse_sum += 1.0 / std::max(snr, 0.3);
    ++count;
  }
  return linear_to_db(count / inverse_sum);
}

}  // namespace silence
