// Pulse interference, modelling co-channel bursts (hidden nodes, ZigBee)
// that the paper's Fig. 10(d) shows to be the main threat to silence-
// symbol detection: a pulse landing on a silence symbol lifts its energy
// above the detection threshold and causes a false negative.
#pragma once

#include <span>

#include "common/rng.h"
#include "dsp/fft.h"

namespace silence {

struct PulseInterferer {
  // Probability that any given OFDM-symbol-length window is hit.
  double symbol_hit_probability = 0.1;
  // Per-sample interference power while a pulse is active. "Strong"
  // interference in the paper's sense is well above the signal power.
  double pulse_power = 1.0;

  // Adds pulses in place over whole 80-sample symbol windows.
  void apply(std::span<Cx> samples, Rng& rng) const;
};

}  // namespace silence
