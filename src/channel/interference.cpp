#include "channel/interference.h"

#include "phy/params.h"

namespace silence {

void PulseInterferer::apply(std::span<Cx> samples, Rng& rng) const {
  for (std::size_t base = 0; base < samples.size();
       base += static_cast<std::size_t>(kSymbolSamples)) {
    if (rng.uniform() >= symbol_hit_probability) continue;
    const std::size_t end =
        std::min(base + static_cast<std::size_t>(kSymbolSamples),
                 samples.size());
    for (std::size_t n = base; n < end; ++n) {
      samples[n] += rng.complex_gaussian(pulse_power);
    }
  }
}

}  // namespace silence
