// Radio hardware impairments.
//
// The paper's prototype runs on real Sora front ends whose residual
// impairments — carrier frequency offset (CFO), oscillator phase noise,
// and a transmit EVM floor — consume part of the channel-code redundancy
// that an ideal simulator would hand to CoS. Modelling them (a) closes
// the gap between this repo's absolute R_m numbers and the paper's and
// (b) exercises the receiver's preamble-based CFO estimator (phy/sync.h).
#pragma once

#include <span>

#include "common/rng.h"
#include "dsp/fft.h"

namespace silence {

struct ImpairmentProfile {
  // Carrier frequency offset in Hz (802.11a tolerates +-20 ppm at
  // 5.8 GHz ~ +-116 kHz; typical residual after AGC is a few kHz).
  double cfo_hz = 0.0;
  // Wiener phase noise: standard deviation of the per-sample phase
  // increment, radians. 0 disables.
  double phase_noise_std = 0.0;
  // Transmit EVM floor as a fraction (e.g. 0.03 = -30.5 dB): white
  // Gaussian error added at the transmitter proportional to the signal's
  // own mean power. 0 disables.
  double tx_evm_floor = 0.0;
};

class RadioImpairments {
 public:
  RadioImpairments(const ImpairmentProfile& profile, std::uint64_t seed);

  // Applies TX-side impairments (EVM floor), then the oscillator
  // impairments (CFO rotation and phase-noise walk) to a burst.
  // The oscillator state persists across calls (a continuous radio).
  CxVec apply(std::span<const Cx> samples);

  const ImpairmentProfile& profile() const { return profile_; }

 private:
  ImpairmentProfile profile_;
  Rng rng_;
  double phase_ = 0.0;  // accumulated oscillator phase
};

}  // namespace silence
