// Indoor wireless channel simulator.
//
// Substitute for the paper's physical lab links (see DESIGN.md §1): a
// tapped-delay-line multipath channel with an exponential power delay
// profile, a Rician line-of-sight component on the first tap, Jakes-
// correlated Gauss-Markov temporal evolution (walking-speed Doppler), and
// AWGN. The model produces the three indoor phenomena CoS relies on:
// frequency-selective per-subcarrier fading, a periodic in-packet symbol
// error pattern, and slow temporal variation (large coherence time).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/rng.h"
#include "dsp/fft.h"
#include "phy/params.h"

namespace silence {

struct MultipathProfile {
  int num_taps = 8;               // FIR length in 50 ns samples (<= CP)
  double decay_taps = 2.5;        // exponential PDP decay constant
  double rician_k_linear = 4.0;   // LOS-to-scatter power ratio on tap 0
  double doppler_hz = 15.0;       // walking speed indoors at 5 GHz-ish
  // When > 0, EVERY tap splits into a static and a scattered part with
  // this K factor (overrides rician_k_linear). Models environments whose
  // ray geometry is essentially frozen — the regime behind the paper's
  // Fig. 7 observation that per-subcarrier EVM is stable over tens of
  // milliseconds; only the small scattered residue fades.
  double k_all_taps_linear = 0.0;

  friend bool operator==(const MultipathProfile&,
                         const MultipathProfile&) = default;
};

// Per-sample time-domain AWGN variance that yields `snr_db` mean
// subcarrier SNR through a unit-energy channel (see conventions in
// fading.cpp).
double noise_var_for_snr_db(double snr_db);

// Frequency-domain per-bin noise variance seen after the receiver FFT.
double freq_noise_var(double time_noise_var);

class FadingChannel;

// Per-sample noise variance that makes `channel`'s NIC-style measured SNR
// equal `measured_snr_db` for its *current* tap realization. Experiments
// sweep measured SNR (the paper's x axis), which this helper pins down
// regardless of how deep the realization's fades are.
double noise_var_for_measured_snr(const FadingChannel& channel,
                                  double measured_snr_db);

class FadingChannel {
 public:
  // `seed` selects the multipath realization ("position" in the paper's
  // terms); different seeds model different receiver positions.
  FadingChannel(const MultipathProfile& profile, std::uint64_t seed);

  // Advances the scattered tap components by `seconds` of walking-speed
  // motion using the Gauss-Markov approximation of Jakes fading
  // (correlation rho = J0(2*pi*fd*dt)).
  void advance(double seconds);

  // Convolves samples with the tap gains and adds AWGN of per-sample
  // variance `noise_var`.
  CxVec transmit(std::span<const Cx> samples, double noise_var,
                 Rng& noise_rng) const;

  // Applies only the multipath FIR (no noise) — used by tests.
  CxVec apply_multipath(std::span<const Cx> samples) const;

  // 64-bin frequency response of the current tap gains.
  std::array<Cx, kFftSize> frequency_response() const;

  // Arithmetic-mean subcarrier SNR (dB): the "actual SNR" a channel
  // sounder would report.
  double actual_snr_db(double noise_var) const;

  // Geometric-mean subcarrier SNR (dB): the NIC-style "measured SNR",
  // dragged down by deep-faded subcarriers exactly as the paper observes.
  double measured_snr_db(double noise_var) const;

  std::span<const Cx> taps() const { return taps_; }
  const MultipathProfile& profile() const { return profile_; }

 private:
  MultipathProfile profile_;
  Rng rng_;
  CxVec los_;      // static LOS components
  CxVec scatter_;  // evolving scattered components
  CxVec taps_;     // los_ + scatter_
  std::vector<double> scatter_var_;  // per-tap scattered power

  void rebuild_taps();
};

}  // namespace silence
