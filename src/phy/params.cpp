#include "phy/params.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace silence {
namespace {

// FFT bin for signed subcarrier index k in [-26, 26]: negative indices wrap.
constexpr int bin(int k) { return k >= 0 ? k : k + kFftSize; }

constexpr std::array<int, kNumDataSubcarriers> make_data_bins() {
  std::array<int, kNumDataSubcarriers> bins{};
  int i = 0;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0 || k == -21 || k == -7 || k == 7 || k == 21) continue;
    bins[static_cast<std::size_t>(i++)] = bin(k);
  }
  return bins;
}

constexpr auto kDataBins = make_data_bins();
constexpr std::array<int, kNumPilotSubcarriers> kPilotBins = {
    bin(-21), bin(-7), bin(7), bin(21)};

// Minimum-required SNR thresholds follow the calibration in DESIGN.md;
// the anchors the paper states (24 Mbps -> 12 dB; QPSK 1/2 region
// spanning 7.1..9.5 dB) are matched exactly.
constexpr std::array<Mcs, 8> kMcsTable = {{
    {Modulation::kBpsk, CodeRate::kRate1of2, 6, 1, 48, 24, 4.0},
    {Modulation::kBpsk, CodeRate::kRate3of4, 9, 1, 48, 36, 5.5},
    {Modulation::kQpsk, CodeRate::kRate1of2, 12, 2, 96, 48, 7.1},
    {Modulation::kQpsk, CodeRate::kRate3of4, 18, 2, 96, 72, 9.5},
    {Modulation::kQam16, CodeRate::kRate1of2, 24, 4, 192, 96, 12.0},
    {Modulation::kQam16, CodeRate::kRate3of4, 36, 4, 192, 144, 15.5},
    {Modulation::kQam64, CodeRate::kRate2of3, 48, 6, 288, 192, 19.5},
    {Modulation::kQam64, CodeRate::kRate3of4, 54, 6, 288, 216, 21.7},
}};

}  // namespace

int bits_per_symbol(Modulation mod) {
  switch (mod) {
    case Modulation::kBpsk: return 1;
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
  }
  throw std::invalid_argument("bits_per_symbol: bad modulation");
}

int code_rate_numerator(CodeRate rate) {
  switch (rate) {
    case CodeRate::kRate1of2: return 1;
    case CodeRate::kRate2of3: return 2;
    case CodeRate::kRate3of4: return 3;
  }
  throw std::invalid_argument("code_rate_numerator: bad rate");
}

int code_rate_denominator(CodeRate rate) {
  switch (rate) {
    case CodeRate::kRate1of2: return 2;
    case CodeRate::kRate2of3: return 3;
    case CodeRate::kRate3of4: return 4;
  }
  throw std::invalid_argument("code_rate_denominator: bad rate");
}

std::string_view to_string(Modulation mod) {
  switch (mod) {
    case Modulation::kBpsk: return "BPSK";
    case Modulation::kQpsk: return "QPSK";
    case Modulation::kQam16: return "16QAM";
    case Modulation::kQam64: return "64QAM";
  }
  return "?";
}

std::string_view to_string(CodeRate rate) {
  switch (rate) {
    case CodeRate::kRate1of2: return "1/2";
    case CodeRate::kRate2of3: return "2/3";
    case CodeRate::kRate3of4: return "3/4";
  }
  return "?";
}

std::span<const Mcs> all_mcs() { return kMcsTable; }

const Mcs& mcs_for_rate(int mbps) {
  for (const Mcs& mcs : kMcsTable) {
    if (mcs.data_rate_mbps == mbps) return mcs;
  }
  throw std::invalid_argument("mcs_for_rate: unknown 802.11a rate");
}

const Mcs& mcs_for(Modulation mod, CodeRate rate) {
  for (const Mcs& mcs : kMcsTable) {
    if (mcs.modulation == mod && mcs.code_rate == rate) return mcs;
  }
  throw std::invalid_argument("mcs_for: invalid modulation/code-rate combo");
}

const Mcs& select_mcs_by_snr(double measured_snr_db) {
  const Mcs* best = &kMcsTable.front();
  for (const Mcs& mcs : kMcsTable) {
    if (measured_snr_db >= mcs.min_required_snr_db) best = &mcs;
  }
  return *best;
}

McsId McsId::from_index(int index) {
  if (index < 0 || index >= static_cast<int>(kMcsTable.size())) {
    throw std::out_of_range("McsId::from_index: index outside the MCS table");
  }
  return McsId(index);
}

McsId McsId::for_rate(int mbps) {
  for (std::size_t i = 0; i < kMcsTable.size(); ++i) {
    if (kMcsTable[i].data_rate_mbps == mbps) {
      return McsId(static_cast<int>(i));
    }
  }
  throw std::invalid_argument("McsId::for_rate: unknown 802.11a rate");
}

McsId McsId::for_mcs(Modulation mod, CodeRate rate) {
  for (std::size_t i = 0; i < kMcsTable.size(); ++i) {
    if (kMcsTable[i].modulation == mod && kMcsTable[i].code_rate == rate) {
      return McsId(static_cast<int>(i));
    }
  }
  throw std::invalid_argument("McsId::for_mcs: invalid modulation/code-rate");
}

McsId McsId::for_snr(double measured_snr_db) {
  int best = 0;
  for (std::size_t i = 0; i < kMcsTable.size(); ++i) {
    if (measured_snr_db >= kMcsTable[i].min_required_snr_db) {
      best = static_cast<int>(i);
    }
  }
  return McsId(best);
}

McsId McsId::of(const Mcs& mcs) {
  if (&mcs >= kMcsTable.data() && &mcs < kMcsTable.data() + kMcsTable.size()) {
    return McsId(static_cast<int>(&mcs - kMcsTable.data()));
  }
  throw std::invalid_argument("McsId::of: not a row of the static MCS table");
}

const Mcs& McsId::info() const {
  if (!valid()) {
    throw std::logic_error("McsId: dereferenced an invalid (default) id");
  }
  return kMcsTable[static_cast<std::size_t>(index_)];
}

runner::Json McsId::to_json() const {
  if (!valid()) return runner::Json(nullptr);
  return runner::Json(rate_mbps());
}

McsId McsId::from_json(const runner::Json& json) {
  if (json.is_null()) return McsId();
  return for_rate(static_cast<int>(json.as_int()));
}

std::span<const int> data_subcarrier_bins() { return kDataBins; }

std::span<const int> pilot_subcarrier_bins() { return kPilotBins; }

bool is_data_bin(int bin) {
  return std::find(kDataBins.begin(), kDataBins.end(), bin) != kDataBins.end();
}

}  // namespace silence
