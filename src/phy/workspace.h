// Reusable scratch buffers for the TX/RX hot paths.
//
// One PhyWorkspace serves one chain invocation at a time (they are cheap:
// a handful of vectors that grow to the largest frame seen and stay).
// Threading a workspace through build_frame/frame_to_samples on the way
// out and receiver_front_end/decode_data_symbols on the way in makes
// steady-state symbol processing allocation-free; per-packet outputs
// (PSDUs, grids, decoded bits) still own their memory.
//
// Ownership rules:
//  - The workspace owns only *transient* data; nothing in a result struct
//    points into it, so results outlive the workspace freely.
//  - Functions may clobber any field; callers must not rely on workspace
//    contents across calls.
//  - A workspace is single-threaded state. Per-thread reuse without
//    explicit plumbing goes through default_phy_workspace().
#pragma once

#include "common/bits.h"
#include "dsp/fft.h"
#include "phy/puncture.h"
#include "phy/viterbi.h"

namespace silence {

struct PhyWorkspace {
  // RX: CFO-corrected copy of the incoming burst.
  CxVec corrected;
  // RX: demapped LLR stream (symbol order) and its deinterleaved form.
  std::vector<double> llrs;
  std::vector<double> deint;
  // RX: depunctured mother-code stream fed to the Viterbi decoder.
  Llrs mother;
  // RX: decoder output before descrambling.
  Bits scrambled;
  // RX: re-encoded decoder output (observability's corrected-bit count).
  Bits recode_mother;
  Bits recoded;
  // RX/TX: Viterbi survivor storage and quantized branch metrics.
  ViterbiWorkspace viterbi;
};

// Per-thread workspace used by the convenience overloads that do not take
// an explicit one. Results never alias it, so sharing is safe.
inline PhyWorkspace& default_phy_workspace() {
  thread_local PhyWorkspace workspace;
  return workspace;
}

}  // namespace silence
