// A (symbols x width) grid of complex points in one contiguous buffer.
//
// The PHY hot paths used to model per-symbol data as std::vector<CxVec>,
// which costs one heap allocation per OFDM symbol. SymbolGrid keeps the
// same row-indexed access (grid[s][k]) but stores all rows back to back,
// so a whole packet's grid is a single allocation and appending a row in
// steady state allocates nothing once capacity is reserved.
#pragma once

#include <cstddef>
#include <iterator>
#include <span>
#include <stdexcept>

#include "dsp/fft.h"

namespace silence {

class SymbolGrid {
 public:
  SymbolGrid() = default;
  explicit SymbolGrid(int width)
      : width_(width > 0 ? static_cast<std::size_t>(width) : 0) {}

  // Row width in points (0 until fixed by construction or first push).
  int width() const { return static_cast<int>(width_); }
  std::size_t size() const { return width_ == 0 ? 0 : cells_.size() / width_; }
  bool empty() const { return cells_.empty(); }

  // Drops all rows but keeps the width and the allocated capacity.
  void clear() { cells_.clear(); }
  void reserve(std::size_t rows) { cells_.reserve(rows * width_); }
  void resize(std::size_t rows) {
    require_width();
    cells_.resize(rows * width_, Cx{0.0, 0.0});
  }

  // Appends one zero-initialized row and returns a view of it.
  std::span<Cx> append() {
    require_width();
    cells_.resize(cells_.size() + width_, Cx{0.0, 0.0});
    return std::span<Cx>(cells_).last(width_);
  }

  // Appends a copy of `row`. A default-constructed grid adopts the first
  // pushed row's width.
  std::span<Cx> push_back(std::span<const Cx> row) {
    if (width_ == 0 && cells_.empty()) width_ = row.size();
    if (row.size() != width_) {
      throw std::invalid_argument("SymbolGrid: row width mismatch");
    }
    cells_.insert(cells_.end(), row.begin(), row.end());
    return std::span<Cx>(cells_).last(width_);
  }

  std::span<Cx> operator[](std::size_t s) {
    return std::span<Cx>(cells_).subspan(s * width_, width_);
  }
  std::span<const Cx> operator[](std::size_t s) const {
    return std::span<const Cx>(cells_).subspan(s * width_, width_);
  }
  std::span<Cx> front() { return (*this)[0]; }
  std::span<const Cx> front() const { return (*this)[0]; }
  std::span<Cx> back() { return (*this)[size() - 1]; }
  std::span<const Cx> back() const { return (*this)[size() - 1]; }

  // Flat view over all rows (row-major).
  std::span<Cx> cells() { return cells_; }
  std::span<const Cx> cells() const { return cells_; }

  friend bool operator==(const SymbolGrid& a, const SymbolGrid& b) {
    return a.width_ == b.width_ && a.cells_ == b.cells_;
  }

  // Row iteration (`for (std::span<const Cx> row : grid)`).
  template <typename CxT>
  class RowIterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::span<CxT>;
    using difference_type = std::ptrdiff_t;

    RowIterator(CxT* p, std::size_t width) : p_(p), width_(width) {}
    value_type operator*() const { return {p_, width_}; }
    RowIterator& operator++() {
      p_ += width_;
      return *this;
    }
    RowIterator operator++(int) {
      RowIterator tmp = *this;
      ++*this;
      return tmp;
    }
    friend bool operator==(const RowIterator& a, const RowIterator& b) {
      return a.p_ == b.p_;
    }

   private:
    CxT* p_;
    std::size_t width_;
  };

  RowIterator<Cx> begin() { return {cells_.data(), width_}; }
  RowIterator<Cx> end() { return {cells_.data() + cells_.size(), width_}; }
  RowIterator<const Cx> begin() const { return {cells_.data(), width_}; }
  RowIterator<const Cx> end() const {
    return {cells_.data() + cells_.size(), width_};
  }

 private:
  void require_width() const {
    if (width_ == 0) {
      throw std::logic_error("SymbolGrid: width not set");
    }
  }

  CxVec cells_;
  std::size_t width_ = 0;
};

}  // namespace silence
