#include "phy/batch.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "common/crc32.h"
#include "obs/flight/flight.h"
#include "obs/health/health.h"
#include "obs/obs.h"
#include "phy/convolutional.h"
#include "phy/interleaver.h"
#include "phy/modulation.h"
#include "phy/ofdm.h"
#include "phy/pilots.h"
#include "phy/preamble.h"
#include "phy/puncture.h"
#include "phy/scrambler.h"
#include "phy/sync.h"

namespace silence {
namespace {

constexpr int kServiceBits = 16;
constexpr double kMinChannelPower = 1e-9;
constexpr std::size_t kT = PhyBatch::kRowTile;

std::atomic<bool> g_phy_batch_enabled{true};

const ViterbiDecoder& shared_decoder() {
  static const ViterbiDecoder decoder;
  return decoder;
}

// --- Row-tiled FFT kernels ------------------------------------------------
//
// `re`/`im` hold kFftSize x kT split-complex values, bin-major and
// row-minor (re[bin * kT + row]). Each row is one symbol; the butterfly
// inner loop runs over the contiguous row dimension, so the compiler
// vectorizes it with one twiddle broadcast per butterfly. The operation
// sequence per row replays FftPlan::run exactly: same bit-reversal
// swaps, same stage order, same twiddle values, and the same inlined
// complex-multiply form (r = ac - bd, i = ad + bc) libstdc++ emits, so
// every row's result is bit-identical to fft_plan(64) on that symbol.

void fft64_rows(double* re, double* im, const Cx* twiddle,
                const std::uint32_t* bitrev) {
  for (std::size_t i = 1; i < kFftSize; ++i) {
    const std::size_t j = bitrev[i];
    if (i < j) {
      double* ar = re + i * kT;
      double* br = re + j * kT;
      double* ai = im + i * kT;
      double* bi = im + j * kT;
      for (std::size_t r = 0; r < kT; ++r) {
        std::swap(ar[r], br[r]);
        std::swap(ai[r], bi[r]);
      }
    }
  }
  for (std::size_t len = 2; len <= kFftSize; len <<= 1) {
    const Cx* w = twiddle + (len / 2 - 1);
    for (std::size_t i = 0; i < kFftSize; i += len) {
      for (std::size_t j = 0; j < len / 2; ++j) {
        const double wr = w[j].real();
        const double wi = w[j].imag();
        double* ar = re + (i + j) * kT;
        double* ai = im + (i + j) * kT;
        double* br = re + (i + j + len / 2) * kT;
        double* bi = im + (i + j + len / 2) * kT;
        for (std::size_t r = 0; r < kT; ++r) {
          const double ur = ar[r];
          const double ui = ai[r];
          const double xr = br[r];
          const double xi = bi[r];
          const double vr = xr * wr - xi * wi;
          const double vi = xr * wi + xi * wr;
          ar[r] = ur + vr;
          ai[r] = ui + vi;
          br[r] = ur - vr;
          bi[r] = ui - vi;
        }
      }
    }
  }
}

void ifft64_rows(double* re, double* im, const Cx* twiddle,
                 const std::uint32_t* bitrev) {
  fft64_rows(re, im, twiddle, bitrev);
  // Same per-element scaling as FftPlan::inverse (operator*=(double)
  // multiplies the real and imaginary parts independently).
  const double scale = 1.0 / static_cast<double>(kFftSize);
  for (std::size_t n = 0; n < kFftSize * kT; ++n) {
    re[n] *= scale;
    im[n] *= scale;
  }
}

void zero_unused_rows(PhyBatch& batch, std::size_t rows) {
  if (rows >= kT) return;
  for (std::size_t k = 0; k < kFftSize; ++k) {
    for (std::size_t r = rows; r < kT; ++r) {
      batch.tile_re[k * kT + r] = 0.0;
      batch.tile_im[k * kT + r] = 0.0;
    }
  }
}

// Gathers `rows` consecutive CP-stripped symbol bodies starting at sample
// `offset`, FFTs all rows in one tile pass, and appends one 64-bin row
// per symbol to `grid`.
void fft_tile_append(std::span<const Cx> samples, std::size_t offset,
                     std::size_t rows, PhyBatch& batch, SymbolGrid& grid) {
  double* re = batch.tile_re.data();
  double* im = batch.tile_im.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const Cx* body = samples.data() + offset +
                     r * static_cast<std::size_t>(kSymbolSamples) + kCpLength;
    for (std::size_t k = 0; k < kFftSize; ++k) {
      re[k * kT + r] = body[k].real();
      im[k * kT + r] = body[k].imag();
    }
  }
  zero_unused_rows(batch, rows);
  const FftPlan& plan = fft_plan(kFftSize);
  fft64_rows(re, im, plan.forward_twiddles().data(),
             plan.bit_reversal().data());
  for (std::size_t r = 0; r < rows; ++r) {
    const auto bins = grid.append();
    for (std::size_t k = 0; k < kFftSize; ++k) {
      bins[k] = Cx(re[k * kT + r], im[k * kT + r]);
    }
  }
}

void reset_front_end(FrontEndResult& fe) {
  fe.preamble_ok = false;
  fe.signal.reset();
  fe.channel.fill(Cx{0.0, 0.0});
  fe.noise_var = 0.0;
  fe.cfo_hz = 0.0;
  fe.data_bins.clear();
  fe.trailer_bins.clear();
}

void reset_decode(DecodeResult& result) {
  result.crc_ok = false;
  result.psdu.clear();
  result.eq_data.clear();
  result.decoder_input_hard.clear();
  result.info_bits.clear();
  result.scrambler_seed = 0;
}

// --- Front end ------------------------------------------------------------
//
// Mirrors receiver_front_end() step for step (sync, channel estimate,
// SIGNAL decode, per-symbol noise estimate, observability events in the
// same order); only the data/trailer FFT loop runs through the row tiles.

void front_end_into(std::span<const Cx> raw_samples, PhyWorkspace& ws,
                    PhyBatch& batch, FrontEndResult& fe) {
  if (raw_samples.size() <
      static_cast<std::size_t>(kPreambleSamples + kSymbolSamples)) {
    return;
  }
  OBS_SPAN("phy.rx.frontend");
  OBS_COUNT("phy.rx.packets");
  fe.preamble_ok = true;

  ws.corrected.assign(raw_samples.begin(), raw_samples.end());
  CxVec& corrected = ws.corrected;
  {
    OBS_SPAN("phy.rx.sync");
    const double coarse =
        estimate_cfo_coarse(std::span(corrected).first(kStfSamples));
    correct_cfo(corrected, coarse);
    const double fine = estimate_cfo_fine(
        std::span(corrected).subspan(kStfSamples, kLtfSamples));
    correct_cfo(corrected, fine);
    fe.cfo_hz = coarse + fine;
    OBS_COUNT_N("phy.rx.sync.items", corrected.size());
  }
  const std::span<const Cx> samples(corrected);

  {
    OBS_SPAN("phy.rx.channel_est");
    fe.channel = estimate_channel(samples.subspan(kStfSamples, kLtfSamples));
  }

  const auto signal_samples =
      samples.subspan(kPreambleSamples, kSymbolSamples);
  std::array<Cx, kFftSize> signal_bins;
  time_to_bins_into(signal_samples, signal_bins);
  double noise_sum = pilot_noise_estimate(signal_bins, fe.channel, 0);
  int noise_count = 1;
  fe.noise_var = noise_sum;

  {
    OBS_SPAN("phy.rx.signal");
    fe.signal = decode_signal_symbol(signal_bins, fe.channel, fe.noise_var, ws);
  }
  if (!fe.signal) return;

  const int n_sym =
      symbols_for_psdu(static_cast<std::size_t>(fe.signal->length_octets),
                       *fe.signal->mcs);
  const std::size_t needed =
      static_cast<std::size_t>(kPreambleSamples) +
      static_cast<std::size_t>(kSymbolSamples) *
          static_cast<std::size_t>(1 + n_sym);
  if (samples.size() < needed) {
    fe.signal.reset();
    return;
  }

  {
    OBS_SPAN("phy.rx.fft");
    fe.data_bins.reserve(static_cast<std::size_t>(n_sym));
    for (int s0 = 0; s0 < n_sym; s0 += static_cast<int>(kT)) {
      const auto rows = std::min(kT, static_cast<std::size_t>(n_sym - s0));
      const auto offset = static_cast<std::size_t>(kPreambleSamples) +
                          static_cast<std::size_t>(kSymbolSamples) *
                              static_cast<std::size_t>(1 + s0);
      fft_tile_append(samples, offset, rows, batch, fe.data_bins);
    }
    // Accumulated in symbol order, exactly as the scalar chain's
    // FFT+estimate interleaving does.
    for (int s = 0; s < n_sym; ++s) {
      noise_sum += pilot_noise_estimate(fe.data_bins[static_cast<std::size_t>(s)],
                                        fe.channel, s + 1);
      ++noise_count;
    }
    OBS_COUNT_N("phy.rx.fft.items",
                static_cast<std::size_t>(n_sym) *
                    static_cast<std::size_t>(kSymbolSamples));
  }
  fe.noise_var = noise_sum / noise_count;
  OBS_COUNT_N("phy.rx.symbols", n_sym);

#if SILENCE_OBS_ON
  {
    const bool flight_on = obs::flight::TrialRecording::active() != nullptr;
    const auto dbins = data_subcarrier_bins();
    for (int i = 0; i < kNumDataSubcarriers; ++i) {
      const double h2 = std::norm(
          fe.channel[static_cast<std::size_t>(
              dbins[static_cast<std::size_t>(i)])]);
      HEALTH_WATERFALL(
          kSnr, i,
          obs::health::quantize(h2 / fe.noise_var, obs::health::kSnrScale));
      HEALTH_WATERFALL(
          kChanMag, i,
          obs::health::quantize(std::sqrt(h2), obs::health::kChanScale));
      if (flight_on) {
        FLIGHT_EVENT("rx.csi", obs::flight::kNoIndex, i, h2,
                     h2 / fe.noise_var, 0);
      }
    }
  }
#endif

  const std::size_t n_trailer =
      samples.size() < needed + static_cast<std::size_t>(kSymbolSamples)
          ? 0
          : (samples.size() - needed) /
                static_cast<std::size_t>(kSymbolSamples);
  fe.trailer_bins.reserve(n_trailer);
  for (std::size_t s0 = 0; s0 < n_trailer; s0 += kT) {
    const auto rows = std::min(kT, n_trailer - s0);
    const auto offset =
        needed + s0 * static_cast<std::size_t>(kSymbolSamples);
    fft_tile_append(samples, offset, rows, batch, fe.trailer_bins);
  }
}

// --- Decode phases --------------------------------------------------------
//
// The scalar decode_data_symbols() body split at the Viterbi call so the
// multi-lane facade can run decode_fixed_batch across lanes. Every
// floating-point operation matches the scalar chain; the phases only
// change *when* each lane's stages run, never what they compute.

struct DecodePrep {
  bool ready = false;  // reached the depuncture/Viterbi stage
  std::size_t erased_bits = 0;
  std::size_t info_bits = 0;
};

DecodePrep decode_pre(const FrontEndResult& fe, const Mcs& mcs,
                      const SilenceMask* silence, PhyWorkspace& ws,
                      DecodeResult& result) {
  DecodePrep prep;
  const int n_sym = static_cast<int>(fe.data_bins.size());
  if (n_sym == 0) return prep;
  if (silence != nullptr &&
      silence->size() != static_cast<std::size_t>(n_sym)) {
    throw std::invalid_argument("decode_data_symbols: mask size mismatch");
  }

  const auto data_bins = data_subcarrier_bins();
  result.eq_data.reserve(static_cast<std::size_t>(n_sym));

  {
    OBS_SPAN("phy.rx.equalize");
    for (int s = 0; s < n_sym; ++s) {
      const auto sym = static_cast<std::size_t>(s);
      const auto points = result.eq_data.append();
      equalize_data_points_into(fe.data_bins[sym], fe.channel, points);

      const auto rx_pilots = extract_pilot_points(fe.data_bins[sym]);
      const auto tx_pilots = pilot_values(s + 1);
      const auto pilot_bins = pilot_subcarrier_bins();
      Cx rotation{0.0, 0.0};
      for (int i = 0; i < kNumPilotSubcarriers; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const Cx expected =
            fe.channel[static_cast<std::size_t>(pilot_bins[idx])] *
            tx_pilots[idx];
        rotation += rx_pilots[idx] * std::conj(expected);
      }
      if (std::abs(rotation) > 1e-12) {
        const Cx derotate = std::conj(rotation) / std::abs(rotation);
        for (Cx& p : points) p *= derotate;
      }
    }
    OBS_COUNT_N("phy.rx.equalize.items",
                static_cast<std::size_t>(n_sym) *
                    static_cast<std::size_t>(kNumDataSubcarriers));
  }

  ws.llrs.clear();
  ws.llrs.reserve(static_cast<std::size_t>(n_sym) *
                  static_cast<std::size_t>(mcs.n_cbps));
  {
    OBS_SPAN("phy.rx.demap");
    for (int s = 0; s < n_sym; ++s) {
      const auto sym = static_cast<std::size_t>(s);
      const auto points = result.eq_data[sym];
      for (int i = 0; i < kNumDataSubcarriers; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const bool erased =
            silence != nullptr && (*silence)[sym][idx] != 0;
        if (erased) {
          for (int b = 0; b < mcs.n_bpsc; ++b) ws.llrs.push_back(0.0);
          prep.erased_bits += static_cast<std::size_t>(mcs.n_bpsc);
          continue;
        }
        const Cx h = fe.channel[static_cast<std::size_t>(data_bins[idx])];
        const double h2 = std::max(std::norm(h), kMinChannelPower);
        demod_llrs(points[idx], mcs.modulation, fe.noise_var / h2, ws.llrs);
      }
    }
    OBS_COUNT_N("phy.rx.demap.items", ws.llrs.size());
  }
  OBS_COUNT_N("cos.erasures_injected", prep.erased_bits);

  {
    OBS_SPAN("phy.rx.deinterleave");
    deinterleave_llrs_into(ws.llrs, mcs, ws.deint);
  }
  result.decoder_input_hard.reserve(ws.deint.size());
  for (double v : ws.deint) {
    result.decoder_input_hard.push_back(v < 0.0 ? 1 : 0);
  }

  prep.info_bits = static_cast<std::size_t>(n_sym) *
                   static_cast<std::size_t>(mcs.n_dbps);
  prep.ready = true;
  return prep;
}

void decode_post(const Mcs& mcs, int length_octets,
                 const DecodePrep& prep, const Bits& scrambled,
                 PhyWorkspace& ws, DecodeResult& result) {
#if SILENCE_OBS_ON
  {
    convolutional_encode_into(scrambled, ws.recode_mother);
    puncture_into(ws.recode_mother, mcs.code_rate, ws.recoded);
    const Bits& recoded = ws.recoded;
    std::uint64_t corrected = 0;
    const std::size_t n = std::min(recoded.size(), ws.deint.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (ws.deint[i] != 0.0 &&
          (ws.deint[i] < 0.0 ? 1 : 0) != recoded[i]) {
        ++corrected;
      }
    }
    OBS_COUNT_N("cos.bits_corrected", corrected);
    FLIGHT_EVENT("rx.viterbi", obs::flight::kNoIndex, obs::flight::kNoIndex,
                 corrected, prep.erased_bits, scrambled.size());
  }
#else
  (void)mcs;
  (void)prep;
#endif

  std::uint8_t seed = 0;
  try {
    seed = Scrambler::recover_seed(std::span(scrambled).first(7));
  } catch (const std::runtime_error&) {
    return;  // hopelessly corrupt
  }
  result.scrambler_seed = seed;
  {
    OBS_SPAN("phy.rx.descramble");
    // Cached-period XOR; bit-identical to Scrambler(seed).apply().
    Scrambler::apply_with_seed_into(seed, scrambled, result.info_bits);
  }

  const std::size_t psdu_bits = 8 * static_cast<std::size_t>(length_octets);
  if (result.info_bits.size() < kServiceBits + psdu_bits) return;
  bits_to_bytes_into(std::span(result.info_bits).subspan(kServiceBits, psdu_bits),
                     result.psdu);
  result.crc_ok = check_fcs(result.psdu);
  FLIGHT_EVENT("rx.crc", obs::flight::kNoIndex, obs::flight::kNoIndex,
               result.psdu.size(), 0.0, result.crc_ok ? 1 : 0);
  if (result.crc_ok) {
    OBS_COUNT("phy.rx.crc_ok");
  } else {
    OBS_COUNT("phy.rx.crc_fail");
  }
}

}  // namespace

bool phy_batch_enabled() {
  return g_phy_batch_enabled.load(std::memory_order_relaxed);
}

void set_phy_batch_enabled(bool on) {
  g_phy_batch_enabled.store(on, std::memory_order_relaxed);
}

FrontEndResult receiver_front_end_batch(std::span<const Cx> samples,
                                        PhyBatch& batch) {
  FrontEndResult fe;
  front_end_into(samples, batch.lane_ws[0], batch, fe);
  return fe;
}

DecodeResult decode_data_symbols_batch(const FrontEndResult& fe,
                                       const Mcs& mcs, int length_octets,
                                       const SilenceMask* silence,
                                       PhyBatch& batch) {
  DecodeResult result;
  if (fe.data_bins.size() == 0) return result;
  PhyWorkspace& ws = batch.lane_ws[0];

  OBS_SPAN("phy.rx.decode");
  const DecodePrep prep = decode_pre(fe, mcs, silence, ws, result);
  if (!prep.ready) return result;
  {
    OBS_SPAN("phy.rx.viterbi");
    depuncture_llrs_into(ws.deint, mcs.code_rate, prep.info_bits * 2,
                         ws.mother);
    shared_decoder().decode_fixed(ws.mother, /*terminated=*/false, ws.viterbi,
                                  ws.scrambled);
    OBS_COUNT_N("phy.rx.viterbi.items", ws.scrambled.size());
  }
  decode_post(mcs, length_octets, prep, ws.scrambled, ws, result);
  return result;
}

RxPacket receive_packet_batch(std::span<const Cx> samples, PhyBatch& batch) {
  RxPacket packet;
  const FrontEndResult fe = receiver_front_end_batch(samples, batch);
  packet.signal = fe.signal;
  if (!fe.signal) return packet;
  DecodeResult decode = decode_data_symbols_batch(
      fe, *fe.signal->mcs, fe.signal->length_octets, nullptr, batch);
  packet.psdu = std::move(decode.psdu);
  packet.ok = decode.crc_ok;
  return packet;
}

void decode_data_symbols_batch(std::span<const DecodeLane> lanes,
                               PhyBatch& batch, std::span<DecodeResult> out) {
  if (out.size() != lanes.size()) {
    throw std::invalid_argument(
        "decode_data_symbols_batch: output size mismatch");
  }
  for (std::size_t g = 0; g < lanes.size(); g += PhyBatch::kMaxLanes) {
    const std::size_t n = std::min(PhyBatch::kMaxLanes, lanes.size() - g);

    // Phase 1: per-lane decode up to the Viterbi input.
    std::array<DecodePrep, PhyBatch::kMaxLanes> preps;
    OBS_SPAN("phy.rx.decode");
    for (std::size_t i = 0; i < n; ++i) {
      reset_decode(out[g + i]);
      const DecodeLane& lane = lanes[g + i];
      preps[i] = DecodePrep{};
      if (lane.fe == nullptr || lane.fe->data_bins.size() == 0) continue;
      preps[i] = decode_pre(*lane.fe, *lane.mcs, lane.silence,
                            batch.lane_ws[i], out[g + i]);
    }

    // Phase 2: depuncture per lane, then one lane-batched Viterbi sweep.
    {
      OBS_SPAN("phy.rx.viterbi");
      batch.llr_spans.clear();
      for (std::size_t i = 0; i < n; ++i) {
        if (!preps[i].ready) continue;
        PhyWorkspace& ws = batch.lane_ws[i];
        depuncture_llrs_into(ws.deint, lanes[g + i].mcs->code_rate,
                             preps[i].info_bits * 2, ws.mother);
        batch.llr_spans.push_back(ws.mother);
      }
      if (batch.llr_spans.size() == 1) {
        // A single lane gains nothing from lockstep; the scalar kernel
        // is bit-identical.
        for (std::size_t i = 0; i < n; ++i) {
          if (!preps[i].ready) continue;
          PhyWorkspace& ws = batch.lane_ws[i];
          shared_decoder().decode_fixed(ws.mother, /*terminated=*/false,
                                        ws.viterbi, ws.scrambled);
        }
      } else if (!batch.llr_spans.empty()) {
        shared_decoder().decode_fixed_batch(
            batch.llr_spans, /*terminated=*/false, batch.viterbi,
            std::span(batch.viterbi_out.data(), batch.llr_spans.size()));
        std::size_t slot = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (!preps[i].ready) continue;
          batch.lane_ws[i].scrambled = batch.viterbi_out[slot++];
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (!preps[i].ready) continue;
        OBS_COUNT_N("phy.rx.viterbi.items",
                    batch.lane_ws[i].scrambled.size());
      }
    }

    // Phase 3: per-lane descramble + CRC.
    for (std::size_t i = 0; i < n; ++i) {
      if (!preps[i].ready) continue;
      decode_post(*lanes[g + i].mcs, lanes[g + i].length_octets, preps[i],
                  batch.lane_ws[i].scrambled, batch.lane_ws[i], out[g + i]);
    }
  }
}

void receive_packet_batch(std::span<const std::span<const Cx>> bursts,
                          PhyBatch& batch, std::span<RxPacket> out) {
  if (out.size() != bursts.size()) {
    throw std::invalid_argument("receive_packet_batch: output size mismatch");
  }
  for (std::size_t g = 0; g < bursts.size(); g += PhyBatch::kMaxLanes) {
    const std::size_t n = std::min(PhyBatch::kMaxLanes, bursts.size() - g);

    // Per-lane front ends (tiled FFTs within each packet), then one
    // grouped decode with the lane-batched Viterbi.
    std::array<DecodeLane, PhyBatch::kMaxLanes> lanes;
    for (std::size_t i = 0; i < n; ++i) {
      reset_front_end(batch.lane_fe[i]);
      front_end_into(bursts[g + i], batch.lane_ws[i], batch,
                     batch.lane_fe[i]);
      lanes[i] = DecodeLane{};
      if (batch.lane_fe[i].signal) {
        lanes[i].fe = &batch.lane_fe[i];
        lanes[i].mcs = &*batch.lane_fe[i].signal->mcs;
        lanes[i].length_octets = batch.lane_fe[i].signal->length_octets;
      }
    }
    decode_data_symbols_batch(std::span(lanes.data(), n), batch,
                              std::span(batch.lane_decode.data(), n));

    for (std::size_t i = 0; i < n; ++i) {
      RxPacket& packet = out[g + i];
      packet.ok = false;
      packet.psdu.clear();
      packet.signal = batch.lane_fe[i].signal;
      if (!packet.signal) continue;
      packet.psdu = batch.lane_decode[i].psdu;
      packet.ok = batch.lane_decode[i].crc_ok;
    }
  }
}

CxVec frame_to_samples_batch(const TxFrame& frame, PhyBatch& batch) {
  CxVec samples = frame_samples_prefix(frame);
  const std::span<Cx> out(samples);
  const int n_sym = frame.num_symbols();

  double* re = batch.tile_re.data();
  double* im = batch.tile_im.data();
  std::array<Cx, kFftSize> bins;
  {
    OBS_SPAN("phy.tx.ifft");
    const FftPlan& plan = fft_plan(kFftSize);
    for (int s0 = 0; s0 < n_sym; s0 += static_cast<int>(kT)) {
      const auto rows = std::min(kT, static_cast<std::size_t>(n_sym - s0));
      for (std::size_t r = 0; r < rows; ++r) {
        const int s = s0 + static_cast<int>(r);
        assemble_frequency_bins_into(
            frame.data_grid[static_cast<std::size_t>(s)], s + 1, bins);
        for (std::size_t k = 0; k < kFftSize; ++k) {
          re[k * kT + r] = bins[k].real();
          im[k * kT + r] = bins[k].imag();
        }
      }
      zero_unused_rows(batch, rows);
      ifft64_rows(re, im, plan.inverse_twiddles().data(),
                  plan.bit_reversal().data());
      for (std::size_t r = 0; r < rows; ++r) {
        const auto offset =
            static_cast<std::size_t>(kPreambleSamples) +
            static_cast<std::size_t>(kSymbolSamples) *
                static_cast<std::size_t>(1 + s0 + static_cast<int>(r));
        for (std::size_t k = 0; k < kFftSize; ++k) {
          out[offset + kCpLength + k] = Cx(re[k * kT + r], im[k * kT + r]);
        }
        // Cyclic prefix: the body's last 16 samples, as bins_to_time_into.
        for (std::size_t k = 0; k < static_cast<std::size_t>(kCpLength); ++k) {
          out[offset + k] = out[offset + kFftSize + k];
        }
      }
    }
  }
  OBS_COUNT_N("phy.tx.ifft.items",
              static_cast<std::size_t>(n_sym) *
                  static_cast<std::size_t>(kSymbolSamples));
  OBS_COUNT_N("phy.tx.samples", samples.size());
  return samples;
}

}  // namespace silence
