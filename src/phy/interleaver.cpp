#include "phy/interleaver.h"

#include <algorithm>
#include <stdexcept>

namespace silence {

std::vector<int> interleaver_permutation(int n_cbps, int n_bpsc) {
  if (n_cbps <= 0 || n_cbps % 16 != 0) {
    throw std::invalid_argument("interleaver: n_cbps must be a multiple of 16");
  }
  const int s = std::max(n_bpsc / 2, 1);
  std::vector<int> perm(static_cast<std::size_t>(n_cbps));
  for (int k = 0; k < n_cbps; ++k) {
    // First permutation: adjacent coded bits -> nonadjacent subcarriers.
    const int i = (n_cbps / 16) * (k % 16) + k / 16;
    // Second permutation: alternate mapping onto less/more significant
    // constellation bits.
    const int j = s * (i / s) + (i + n_cbps - (16 * i) / n_cbps) % s;
    perm[static_cast<std::size_t>(k)] = j;
  }
  return perm;
}

Bits interleave_symbol(std::span<const std::uint8_t> bits, const Mcs& mcs) {
  if (bits.size() != static_cast<std::size_t>(mcs.n_cbps)) {
    throw std::invalid_argument("interleave_symbol: wrong bit count");
  }
  const auto perm = interleaver_permutation(mcs.n_cbps, mcs.n_bpsc);
  Bits out(bits.size());
  for (std::size_t k = 0; k < bits.size(); ++k) {
    out[static_cast<std::size_t>(perm[k])] = bits[k];
  }
  return out;
}

std::vector<double> deinterleave_symbol_llrs(std::span<const double> llrs,
                                             const Mcs& mcs) {
  if (llrs.size() != static_cast<std::size_t>(mcs.n_cbps)) {
    throw std::invalid_argument("deinterleave_symbol_llrs: wrong count");
  }
  const auto perm = interleaver_permutation(mcs.n_cbps, mcs.n_bpsc);
  std::vector<double> out(llrs.size());
  for (std::size_t k = 0; k < llrs.size(); ++k) {
    out[k] = llrs[static_cast<std::size_t>(perm[k])];
  }
  return out;
}

Bits interleave(std::span<const std::uint8_t> bits, const Mcs& mcs) {
  const auto n = static_cast<std::size_t>(mcs.n_cbps);
  if (bits.size() % n != 0) {
    throw std::invalid_argument("interleave: not a whole number of symbols");
  }
  const auto perm = interleaver_permutation(mcs.n_cbps, mcs.n_bpsc);
  Bits out(bits.size());
  for (std::size_t base = 0; base < bits.size(); base += n) {
    for (std::size_t k = 0; k < n; ++k) {
      out[base + static_cast<std::size_t>(perm[k])] = bits[base + k];
    }
  }
  return out;
}

std::vector<double> deinterleave_llrs(std::span<const double> llrs,
                                      const Mcs& mcs) {
  const auto n = static_cast<std::size_t>(mcs.n_cbps);
  if (llrs.size() % n != 0) {
    throw std::invalid_argument(
        "deinterleave_llrs: not a whole number of symbols");
  }
  const auto perm = interleaver_permutation(mcs.n_cbps, mcs.n_bpsc);
  std::vector<double> out(llrs.size());
  for (std::size_t base = 0; base < llrs.size(); base += n) {
    for (std::size_t k = 0; k < n; ++k) {
      out[base + k] = llrs[base + static_cast<std::size_t>(perm[k])];
    }
  }
  return out;
}

}  // namespace silence
