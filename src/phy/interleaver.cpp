#include "phy/interleaver.h"

#include <algorithm>
#include <stdexcept>

namespace silence {

std::vector<int> interleaver_permutation(int n_cbps, int n_bpsc) {
  if (n_cbps <= 0 || n_cbps % 16 != 0) {
    throw std::invalid_argument("interleaver: n_cbps must be a multiple of 16");
  }
  const int s = std::max(n_bpsc / 2, 1);
  std::vector<int> perm(static_cast<std::size_t>(n_cbps));
  for (int k = 0; k < n_cbps; ++k) {
    // First permutation: adjacent coded bits -> nonadjacent subcarriers.
    const int i = (n_cbps / 16) * (k % 16) + k / 16;
    // Second permutation: alternate mapping onto less/more significant
    // constellation bits.
    const int j = s * (i / s) + (i + n_cbps - (16 * i) / n_cbps) % s;
    perm[static_cast<std::size_t>(k)] = j;
  }
  return perm;
}

namespace {

// Permutation lookup that keeps non-standard shapes working (tests use
// them): standard shapes hit the cache, anything else is computed into
// `local`.
std::span<const int> permutation_for(int n_cbps, int n_bpsc,
                                     std::vector<int>& local) {
  switch (n_bpsc) {
    case 1:
      if (n_cbps == 48) return interleaver_permutation_cached(n_cbps, n_bpsc);
      break;
    case 2:
      if (n_cbps == 96) return interleaver_permutation_cached(n_cbps, n_bpsc);
      break;
    case 4:
      if (n_cbps == 192) return interleaver_permutation_cached(n_cbps, n_bpsc);
      break;
    case 6:
      if (n_cbps == 288) return interleaver_permutation_cached(n_cbps, n_bpsc);
      break;
    default:
      break;
  }
  local = interleaver_permutation(n_cbps, n_bpsc);
  return local;
}

}  // namespace

std::span<const int> interleaver_permutation_cached(int n_cbps, int n_bpsc) {
  static const std::vector<int> bpsk = interleaver_permutation(48, 1);
  static const std::vector<int> qpsk = interleaver_permutation(96, 2);
  static const std::vector<int> qam16 = interleaver_permutation(192, 4);
  static const std::vector<int> qam64 = interleaver_permutation(288, 6);
  switch (n_bpsc) {
    case 1:
      if (n_cbps == 48) return bpsk;
      break;
    case 2:
      if (n_cbps == 96) return qpsk;
      break;
    case 4:
      if (n_cbps == 192) return qam16;
      break;
    case 6:
      if (n_cbps == 288) return qam64;
      break;
    default:
      break;
  }
  throw std::invalid_argument("interleaver: no cached permutation for shape");
}

Bits interleave_symbol(std::span<const std::uint8_t> bits, const Mcs& mcs) {
  if (bits.size() != static_cast<std::size_t>(mcs.n_cbps)) {
    throw std::invalid_argument("interleave_symbol: wrong bit count");
  }
  std::vector<int> local;
  const auto perm = permutation_for(mcs.n_cbps, mcs.n_bpsc, local);
  Bits out(bits.size());
  for (std::size_t k = 0; k < bits.size(); ++k) {
    out[static_cast<std::size_t>(perm[k])] = bits[k];
  }
  return out;
}

void deinterleave_symbol_llrs_into(std::span<const double> llrs,
                                   const Mcs& mcs, std::vector<double>& out) {
  if (llrs.size() != static_cast<std::size_t>(mcs.n_cbps)) {
    throw std::invalid_argument("deinterleave_symbol_llrs: wrong count");
  }
  std::vector<int> local;
  const auto perm = permutation_for(mcs.n_cbps, mcs.n_bpsc, local);
  out.resize(llrs.size());
  for (std::size_t k = 0; k < llrs.size(); ++k) {
    out[k] = llrs[static_cast<std::size_t>(perm[k])];
  }
}

std::vector<double> deinterleave_symbol_llrs(std::span<const double> llrs,
                                             const Mcs& mcs) {
  std::vector<double> out;
  deinterleave_symbol_llrs_into(llrs, mcs, out);
  return out;
}

Bits interleave(std::span<const std::uint8_t> bits, const Mcs& mcs) {
  const auto n = static_cast<std::size_t>(mcs.n_cbps);
  if (bits.size() % n != 0) {
    throw std::invalid_argument("interleave: not a whole number of symbols");
  }
  std::vector<int> local;
  const auto perm = permutation_for(mcs.n_cbps, mcs.n_bpsc, local);
  Bits out(bits.size());
  for (std::size_t base = 0; base < bits.size(); base += n) {
    for (std::size_t k = 0; k < n; ++k) {
      out[base + static_cast<std::size_t>(perm[k])] = bits[base + k];
    }
  }
  return out;
}

void deinterleave_llrs_into(std::span<const double> llrs, const Mcs& mcs,
                            std::vector<double>& out) {
  const auto n = static_cast<std::size_t>(mcs.n_cbps);
  if (llrs.size() % n != 0) {
    throw std::invalid_argument(
        "deinterleave_llrs: not a whole number of symbols");
  }
  std::vector<int> local;
  const auto perm = permutation_for(mcs.n_cbps, mcs.n_bpsc, local);
  out.resize(llrs.size());
  for (std::size_t base = 0; base < llrs.size(); base += n) {
    for (std::size_t k = 0; k < n; ++k) {
      out[base + k] = llrs[base + static_cast<std::size_t>(perm[k])];
    }
  }
}

std::vector<double> deinterleave_llrs(std::span<const double> llrs,
                                      const Mcs& mcs) {
  std::vector<double> out;
  deinterleave_llrs_into(llrs, mcs, out);
  return out;
}

}  // namespace silence
