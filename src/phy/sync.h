// Carrier frequency offset (CFO) estimation and correction from the
// 802.11a preamble — the receiver-side counterpart of the oscillator
// impairments in channel/impairments.h.
#pragma once

#include <optional>
#include <span>

#include "dsp/fft.h"

namespace silence {

// Coarse CFO estimate from the short training field: the STF is periodic
// with 16 samples, so the phase of the lag-16 autocorrelation over the
// STF gives the offset (unambiguous to +-1/(2*16*Ts) = +-625 kHz).
double estimate_cfo_coarse(std::span<const Cx> stf_samples);

// Fine CFO estimate from the two identical long training symbols
// (lag 64, unambiguous to +-156.25 kHz).
double estimate_cfo_fine(std::span<const Cx> ltf_samples);

// Derotates a burst in place by `cfo_hz`.
void correct_cfo(std::span<Cx> samples, double cfo_hz);

// --- Packet detection / symbol timing ----------------------------------

// Locates the start of an 802.11a frame inside `samples` (which may
// begin with noise or silence). Two stages:
//  1. Schmidl&Cox-style coarse detection: the STF's 16-sample
//     periodicity produces a plateau of the normalized lag-16
//     autocorrelation metric;
//  2. fine symbol timing: cross-correlation against the known long
//     training symbol pins the LTF position exactly.
// Returns the index of the first STF sample, or nullopt when no frame
// is found. `threshold` is the coarse metric's trigger level in (0, 1).
std::optional<std::size_t> detect_frame_start(std::span<const Cx> samples,
                                              double threshold = 0.5);

}  // namespace silence
