// 802.11a constellation mapping (Gray-coded BPSK/QPSK/16QAM/64QAM with the
// standard normalization factors) and max-log LLR demodulation.
//
// LLR sign convention: positive LLR means "bit 0 more likely"
// (lambda = log P(b=0|y) - log P(b=1|y)), matching the paper's Eq. (8).
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "common/bits.h"
#include "dsp/fft.h"
#include "phy/params.h"

namespace silence {

// Maps n_bpsc bits to one constellation point (unit average energy).
Cx map_symbol(std::span<const std::uint8_t> bits, Modulation mod);

// Maps a bit stream (length a multiple of n_bpsc) to symbols.
CxVec map_bits(std::span<const std::uint8_t> bits, Modulation mod);

// Same mapping into a caller buffer; `out.size()` must equal
// bits.size() / n_bpsc.
void map_bits_into(std::span<const std::uint8_t> bits, Modulation mod,
                   std::span<Cx> out);

// Max-log LLRs for the n_bpsc bits of a received point `y` whose noise
// variance (per complex dimension pair, E[|n|^2]) is `noise_var`.
// Appends n_bpsc values to `out`.
void demod_llrs(Cx y, Modulation mod, double noise_var,
                std::vector<double>& out);

// Nearest constellation point (hard decision).
Cx hard_decision(Cx y, Modulation mod);

// Bits of the nearest constellation point.
Bits hard_decision_bits(Cx y, Modulation mod);

// All M constellation points of a modulation.
std::span<const Cx> constellation(Modulation mod);

// Minimum distance D_m between two constellation points (normalized
// constellation). CoS selects control subcarriers where EVM > D_m / 2.
double min_constellation_distance(Modulation mod);

// Per-modulation scaling factor K_mod (1, 1/sqrt2, 1/sqrt10, 1/sqrt42).
double modulation_scale(Modulation mod);

// Smallest |x|^2 over the constellation (the inner points): 1 for
// BPSK/QPSK, 0.2 for 16QAM, 2/42 for 64QAM. Energy detection of silence
// symbols must discriminate against *this* energy, not the average.
double min_symbol_energy(Modulation mod);

}  // namespace silence
