// 802.11a pilot subcarriers: four BPSK pilots at bins +-7 and +-21 whose
// polarity follows the length-127 scrambler sequence. CoS additionally
// uses the pilots for its pilot-aided noise-floor estimation (paper
// Eq. 5-6), so the receiver must know the exact transmitted pilot values.
#pragma once

#include <array>

#include "dsp/fft.h"

namespace silence {

// Pilot polarity p_n for OFDM symbol n (n = 0 is the SIGNAL symbol,
// data symbols start at n = 1). Values are +1 or -1, period 127.
double pilot_polarity(int symbol_index);

// The four pilot values {bin -21, -7, +7, +21} for OFDM symbol n.
// Base pattern is {1, 1, 1, -1} scaled by p_n.
std::array<Cx, 4> pilot_values(int symbol_index);

}  // namespace silence
