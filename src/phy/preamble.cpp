#include "phy/preamble.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "phy/ofdm.h"
#include "phy/pilots.h"

namespace silence {
namespace {

// L_{-26..26} from 802.11a 17.3.3 (53 entries including DC = 0).
constexpr std::array<int, 53> kLtfSeq = {
    1, 1,  -1, -1, 1,  1,  -1, 1,  -1, 1,  1,  1,  1,  1, 1, -1, -1, 1,
    1, -1, 1,  -1, 1,  1,  1,  1,  0,  1,  -1, -1, 1,  1, -1, 1,  -1, 1,
    -1, -1, -1, -1, -1, 1,  1,  -1, -1, 1,  -1, 1,  -1, 1, 1,  1,  1};

// S_{-26..26} pattern from 802.11a 17.3.3: nonzero entries are
// +-(1+j) * sqrt(13/6) on every fourth bin.
constexpr std::array<int, 53> kStfPattern = {
    0, 0, 1, 0, 0, 0, -1, 0, 0, 0, 1, 0, 0, 0, -1, 0, 0, 0, -1, 0, 0, 0, 1,
    0, 0, 0, 0, 0, 0, 0, -1, 0, 0, 0, -1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0,
    1, 0, 0, 0, 1, 0, 0};

CxVec sequence_to_bins(const std::array<int, 53>& seq, Cx unit) {
  CxVec bins(kFftSize, Cx{0.0, 0.0});
  for (int k = -26; k <= 26; ++k) {
    const int v = seq[static_cast<std::size_t>(k + 26)];
    if (v == 0) continue;
    const int bin = k >= 0 ? k : k + kFftSize;
    bins[static_cast<std::size_t>(bin)] = static_cast<double>(v) * unit;
  }
  return bins;
}

}  // namespace

const CxVec& ltf_frequency_bins() {
  static const CxVec bins = sequence_to_bins(kLtfSeq, Cx{1.0, 0.0});
  return bins;
}

const CxVec& stf_frequency_bins() {
  static const CxVec bins =
      sequence_to_bins(kStfPattern, std::sqrt(13.0 / 6.0) * Cx{1.0, 1.0});
  return bins;
}

CxVec build_preamble() {
  CxVec preamble;
  preamble.reserve(kPreambleSamples);

  // STF: the 64-sample IFFT is periodic with period 16; ten short symbols
  // are 160 samples of that periodic waveform.
  const CxVec stf_body = ifft(stf_frequency_bins());
  for (int n = 0; n < kStfSamples; ++n) {
    preamble.push_back(stf_body[static_cast<std::size_t>(n % kFftSize)]);
  }

  // LTF: 32-sample guard (tail of the long symbol) + two long symbols.
  const CxVec ltf_body = ifft(ltf_frequency_bins());
  for (int n = kFftSize - 32; n < kFftSize; ++n) {
    preamble.push_back(ltf_body[static_cast<std::size_t>(n)]);
  }
  for (int rep = 0; rep < 2; ++rep) {
    preamble.insert(preamble.end(), ltf_body.begin(), ltf_body.end());
  }
  return preamble;
}

std::array<Cx, kFftSize> estimate_channel(std::span<const Cx> ltf_samples) {
  if (ltf_samples.size() != static_cast<std::size_t>(kLtfSamples)) {
    throw std::invalid_argument("estimate_channel: need 160 LTF samples");
  }
  // Stack copies keep the estimator allocation-free (it runs once per
  // received packet on the hot path); the in-place transform replays the
  // identical butterfly sequence fft() would.
  std::array<Cx, kFftSize> first;
  std::array<Cx, kFftSize> second;
  std::copy_n(ltf_samples.begin() + 32, kFftSize, first.begin());
  std::copy_n(ltf_samples.begin() + 32 + kFftSize, kFftSize, second.begin());
  fft_in_place(first, /*inverse=*/false);
  fft_in_place(second, /*inverse=*/false);
  const CxVec& known = ltf_frequency_bins();

  std::array<Cx, kFftSize> channel{};
  for (int k = 0; k < kFftSize; ++k) {
    const auto idx = static_cast<std::size_t>(k);
    if (std::norm(known[idx]) < 1e-12) continue;  // guard/DC: no estimate
    channel[idx] = 0.5 * (first[idx] + second[idx]) / known[idx];
  }
  return channel;
}

double pilot_noise_estimate(std::span<const Cx> bins64,
                            const std::array<Cx, kFftSize>& channel,
                            int symbol_index) {
  const auto pilots = extract_pilot_points(bins64);
  const auto sent = pilot_values(symbol_index);
  const auto pilot_bins = pilot_subcarrier_bins();

  // Remove the common phase rotation first (residual CFO and phase noise
  // rotate the whole symbol; the data decoder removes it the same way),
  // otherwise late symbols of a long packet would read as "noisy".
  Cx rotation{0.0, 0.0};
  std::array<Cx, kNumPilotSubcarriers> expected;
  for (int i = 0; i < kNumPilotSubcarriers; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    expected[idx] = channel[static_cast<std::size_t>(pilot_bins[idx])] *
                    sent[idx];
    rotation += pilots[idx] * std::conj(expected[idx]);
  }
  const Cx derotate = std::abs(rotation) > 1e-12
                          ? std::conj(rotation) / std::abs(rotation)
                          : Cx{1.0, 0.0};

  double sum = 0.0;
  for (int i = 0; i < kNumPilotSubcarriers; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    sum += std::norm(pilots[idx] * derotate - expected[idx]);
  }
  // Debias: the residual carries the pilot's own noise (variance eta)
  // plus LTF channel-estimate error (eta/2 after two-symbol averaging),
  // minus the one real degree of freedom absorbed by the phase fit
  // (1/8 of the four pilots' eight real noise dimensions):
  // 1.5 * (1 - 1/8) = 1.3125.
  return sum / kNumPilotSubcarriers / 1.3125;
}

}  // namespace silence
