#include "phy/signal_field.h"

#include <stdexcept>

namespace silence {
namespace {

// RATE codes from 802.11a Table 80, transmitted bit order R1..R4.
int rate_code(int mbps) {
  switch (mbps) {
    case 6: return 0b1101;
    case 9: return 0b1111;
    case 12: return 0b0101;
    case 18: return 0b0111;
    case 24: return 0b1001;
    case 36: return 0b1011;
    case 48: return 0b0001;
    case 54: return 0b0011;
  }
  throw std::invalid_argument("rate_code: unknown rate");
}

std::optional<int> rate_from_code(int code) {
  for (const Mcs& mcs : all_mcs()) {
    if (rate_code(mcs.data_rate_mbps) == code) return mcs.data_rate_mbps;
  }
  return std::nullopt;
}

}  // namespace

Bits encode_signal_bits(const Mcs& mcs, int length_octets) {
  if (length_octets < 1 || length_octets > 4095) {
    throw std::invalid_argument("encode_signal_bits: bad length");
  }
  Bits bits(24, 0);
  const int code = rate_code(mcs.data_rate_mbps);
  // RATE: R1 first on air = MSB of the code as written above.
  for (int i = 0; i < 4; ++i) {
    bits[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((code >> (3 - i)) & 1);
  }
  // bits[4] reserved = 0. LENGTH: LSB first (bit 5 = length bit 0).
  for (int i = 0; i < 12; ++i) {
    bits[static_cast<std::size_t>(5 + i)] =
        static_cast<std::uint8_t>((length_octets >> i) & 1);
  }
  // Even parity over bits 0..16.
  std::uint8_t parity = 0;
  for (int i = 0; i < 17; ++i) parity ^= bits[static_cast<std::size_t>(i)];
  bits[17] = parity;
  // bits 18..23 tail zeros.
  return bits;
}

std::optional<SignalField> parse_signal_bits(
    std::span<const std::uint8_t> bits24) {
  if (bits24.size() != 24) {
    throw std::invalid_argument("parse_signal_bits: need 24 bits");
  }
  std::uint8_t parity = 0;
  for (int i = 0; i < 18; ++i) parity ^= bits24[static_cast<std::size_t>(i)] & 1U;
  if (parity != 0) return std::nullopt;
  if (bits24[4] & 1U) return std::nullopt;  // reserved bit must be zero

  int code = 0;
  for (int i = 0; i < 4; ++i) {
    code = (code << 1) | (bits24[static_cast<std::size_t>(i)] & 1);
  }
  const auto mbps = rate_from_code(code);
  if (!mbps) return std::nullopt;

  int length = 0;
  for (int i = 0; i < 12; ++i) {
    length |= (bits24[static_cast<std::size_t>(5 + i)] & 1) << i;
  }
  if (length == 0) return std::nullopt;
  return SignalField{McsId::for_rate(*mbps), length};
}

}  // namespace silence
