// OFDM symbol assembly/disassembly: data + pilot subcarrier mapping,
// IFFT + cyclic prefix on the way out, CP strip + FFT on the way in.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "dsp/fft.h"
#include "phy/params.h"

namespace silence {

// Places 48 data points and the 4 pilots for `symbol_index` onto the
// 64-bin frequency grid (guard bins zero).
CxVec assemble_frequency_bins(std::span<const Cx> data48, int symbol_index);

// Frequency bins -> 80 time samples (IFFT + 16-sample cyclic prefix).
CxVec bins_to_time(std::span<const Cx> bins64);

// 80 time samples -> 64 frequency bins (CP strip + FFT).
CxVec time_to_bins(std::span<const Cx> samples80);

// Extracts the 48 data points (logical order) from 64 frequency bins.
CxVec extract_data_points(std::span<const Cx> bins64);

// Extracts the 4 pilot points (logical order: bins -21,-7,+7,+21).
std::array<Cx, 4> extract_pilot_points(std::span<const Cx> bins64);

// Allocation-free variants writing into fixed-size caller buffers. The
// time/frequency transforms use the cached size-64 FFT plan in place.
void assemble_frequency_bins_into(std::span<const Cx> data48, int symbol_index,
                                  std::span<Cx> bins64);
void bins_to_time_into(std::span<const Cx> bins64, std::span<Cx> samples80);
void time_to_bins_into(std::span<const Cx> samples80, std::span<Cx> bins64);
void extract_data_points_into(std::span<const Cx> bins64, std::span<Cx> data48);

}  // namespace silence
