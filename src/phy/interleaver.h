// 802.11a block interleaver (17.3.5.7): operates on one OFDM symbol of
// N_CBPS coded bits via the standard two-permutation rule.
//
// The interleaver is what makes erasure Viterbi decoding effective: the
// N_BPSC zero-LLR bits of one silence symbol land in *adjacent* positions
// of the modulated symbol stream but are spread across the codeword after
// deinterleaving, so the convolutional code sees isolated erasures rather
// than a burst.
#pragma once

#include <span>
#include <vector>

#include "common/bits.h"
#include "phy/params.h"

namespace silence {

// Interleaving permutation for one OFDM symbol: result[k] is the output
// position of input bit k (k = 0 .. n_cbps-1).
std::vector<int> interleaver_permutation(int n_cbps, int n_bpsc);

// The same permutation served from a process-wide cache. Only the four
// standard 802.11a shapes (48/1, 96/2, 192/4, 288/6) are cached; anything
// else throws. The span stays valid for the process lifetime.
std::span<const int> interleaver_permutation_cached(int n_cbps, int n_bpsc);

// Interleaves one OFDM symbol worth of bits. `bits.size()` must equal
// n_cbps of `mcs`.
Bits interleave_symbol(std::span<const std::uint8_t> bits, const Mcs& mcs);

// Deinterleaves one OFDM symbol worth of soft values.
std::vector<double> deinterleave_symbol_llrs(std::span<const double> llrs,
                                             const Mcs& mcs);

// Whole-stream helpers: input length must be a multiple of n_cbps; each
// n_cbps block is (de)interleaved independently.
Bits interleave(std::span<const std::uint8_t> bits, const Mcs& mcs);
std::vector<double> deinterleave_llrs(std::span<const double> llrs,
                                      const Mcs& mcs);

// Allocation-free variants writing into a caller buffer (resized to the
// input length; capacity is reused across calls).
void deinterleave_symbol_llrs_into(std::span<const double> llrs,
                                   const Mcs& mcs, std::vector<double>& out);
void deinterleave_llrs_into(std::span<const double> llrs, const Mcs& mcs,
                            std::vector<double>& out);

}  // namespace silence
