// IEEE 802.11a PHY parameters: OFDM dimensions, modulation/coding sets,
// per-rate bit counts, and the subcarrier layout of the 64-point transform.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace silence {

// --- OFDM dimensions (802.11a, 20 MHz) -------------------------------------
inline constexpr int kFftSize = 64;
inline constexpr int kCpLength = 16;           // cyclic prefix samples
inline constexpr int kSymbolSamples = kFftSize + kCpLength;  // 80 @ 20 MHz
inline constexpr int kNumDataSubcarriers = 48;
inline constexpr int kNumPilotSubcarriers = 4;
inline constexpr double kSampleRateHz = 20e6;
inline constexpr double kSymbolDurationSec =
    kSymbolSamples / kSampleRateHz;            // 4 us
inline constexpr double kPreambleDurationSec = 16e-6;  // STF + LTF
inline constexpr double kSignalDurationSec = 4e-6;     // SIGNAL symbol

enum class Modulation : std::uint8_t { kBpsk, kQpsk, kQam16, kQam64 };

enum class CodeRate : std::uint8_t { kRate1of2, kRate2of3, kRate3of4 };

// Bits carried per subcarrier for a modulation (N_BPSC).
int bits_per_symbol(Modulation mod);

// Numerator/denominator of a code rate.
int code_rate_numerator(CodeRate rate);
int code_rate_denominator(CodeRate rate);

std::string_view to_string(Modulation mod);
std::string_view to_string(CodeRate rate);

// --- Rate set ---------------------------------------------------------------
struct Mcs {
  Modulation modulation;
  CodeRate code_rate;
  int data_rate_mbps;       // headline PHY rate
  int n_bpsc;               // coded bits per subcarrier
  int n_cbps;               // coded bits per OFDM symbol
  int n_dbps;               // data bits per OFDM symbol
  double min_required_snr_db;  // rate-adaptation threshold (see DESIGN.md)
};

// All eight 802.11a rates, ascending.
std::span<const Mcs> all_mcs();

// The MCS for a headline rate in Mbps; throws for unknown rates.
const Mcs& mcs_for_rate(int mbps);

// The MCS for a (modulation, code rate) pair; throws for invalid combos.
const Mcs& mcs_for(Modulation mod, CodeRate rate);

// Highest-rate MCS whose min_required_snr_db <= measured_snr_db
// (SNR-based rate adaptation as in Holland et al.). Falls back to the
// lowest rate when the SNR is below every threshold.
const Mcs& select_mcs_by_snr(double measured_snr_db);

// --- Subcarrier layout -------------------------------------------------------
// Logical data subcarrier index (0..47) -> FFT bin (0..63).
// Data occupies bins +-{1..6, 8..20, 22..26}; pilots sit at +-7 and +-21.
std::span<const int> data_subcarrier_bins();

// Pilot FFT bins in ascending logical order {-21, -7, +7, +21} mod 64.
std::span<const int> pilot_subcarrier_bins();

// True when `bin` (0..63) carries data.
bool is_data_bin(int bin);

}  // namespace silence
