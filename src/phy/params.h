// IEEE 802.11a PHY parameters: OFDM dimensions, modulation/coding sets,
// per-rate bit counts, and the subcarrier layout of the 64-point transform.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "runner/json.h"

namespace silence {

// --- OFDM dimensions (802.11a, 20 MHz) -------------------------------------
inline constexpr int kFftSize = 64;
inline constexpr int kCpLength = 16;           // cyclic prefix samples
inline constexpr int kSymbolSamples = kFftSize + kCpLength;  // 80 @ 20 MHz
inline constexpr int kNumDataSubcarriers = 48;
inline constexpr int kNumPilotSubcarriers = 4;
inline constexpr double kSampleRateHz = 20e6;
inline constexpr double kSymbolDurationSec =
    kSymbolSamples / kSampleRateHz;            // 4 us
inline constexpr double kPreambleDurationSec = 16e-6;  // STF + LTF
inline constexpr double kSignalDurationSec = 4e-6;     // SIGNAL symbol

enum class Modulation : std::uint8_t { kBpsk, kQpsk, kQam16, kQam64 };

enum class CodeRate : std::uint8_t { kRate1of2, kRate2of3, kRate3of4 };

// Bits carried per subcarrier for a modulation (N_BPSC).
int bits_per_symbol(Modulation mod);

// Numerator/denominator of a code rate.
int code_rate_numerator(CodeRate rate);
int code_rate_denominator(CodeRate rate);

std::string_view to_string(Modulation mod);
std::string_view to_string(CodeRate rate);

// --- Rate set ---------------------------------------------------------------
struct Mcs {
  Modulation modulation;
  CodeRate code_rate;
  int data_rate_mbps;       // headline PHY rate
  int n_bpsc;               // coded bits per subcarrier
  int n_cbps;               // coded bits per OFDM symbol
  int n_dbps;               // data bits per OFDM symbol
  double min_required_snr_db;  // rate-adaptation threshold (see DESIGN.md)
};

// All eight 802.11a rates, ascending.
std::span<const Mcs> all_mcs();

// The MCS for a headline rate in Mbps; throws for unknown rates.
const Mcs& mcs_for_rate(int mbps);

// The MCS for a (modulation, code rate) pair; throws for invalid combos.
const Mcs& mcs_for(Modulation mod, CodeRate rate);

// Highest-rate MCS whose min_required_snr_db <= measured_snr_db
// (SNR-based rate adaptation as in Holland et al.). Falls back to the
// lowest rate when the SNR is below every threshold.
const Mcs& select_mcs_by_snr(double measured_snr_db);

// Value-typed handle into the static MCS table. Public config and report
// structs carry a McsId instead of a `const Mcs*`: it cannot dangle, it
// compares and copies like an int, and it serializes as the headline
// rate in Mbps (stable across table reorderings as long as the 802.11a
// rate set itself is stable — which it is). A default-constructed McsId
// is invalid; dereferencing it throws.
class McsId {
 public:
  constexpr McsId() = default;
  // The id of a table row; throws std::out_of_range for bad indices.
  static McsId from_index(int index);
  // The id for a headline rate in Mbps; throws for unknown rates.
  static McsId for_rate(int mbps);
  // The id for a (modulation, code rate) pair; throws for invalid combos.
  static McsId for_mcs(Modulation mod, CodeRate rate);
  // SNR-based rate adaptation (see select_mcs_by_snr).
  static McsId for_snr(double measured_snr_db);
  // The id of a table row referenced by `mcs`; throws if `mcs` is not a
  // row of the static table (bridging for code still holding references).
  static McsId of(const Mcs& mcs);

  constexpr bool valid() const { return index_ >= 0; }
  constexpr int index() const { return index_; }
  // The table row; throws std::logic_error when invalid.
  const Mcs& info() const;
  const Mcs* operator->() const { return &info(); }
  const Mcs& operator*() const { return info(); }
  int rate_mbps() const { return info().data_rate_mbps; }

  // Wire form: the integer headline rate in Mbps (an invalid id is
  // null). from_json(to_json(id)) == id.
  runner::Json to_json() const;
  static McsId from_json(const runner::Json& json);

  friend constexpr bool operator==(McsId, McsId) = default;

 private:
  explicit constexpr McsId(int index) : index_(index) {}
  int index_ = -1;
};

// --- Subcarrier layout -------------------------------------------------------
// Logical data subcarrier index (0..47) -> FFT bin (0..63).
// Data occupies bins +-{1..6, 8..20, 22..26}; pilots sit at +-7 and +-21.
std::span<const int> data_subcarrier_bins();

// Pilot FFT bins in ascending logical order {-21, -7, +7, +21} mod 64.
std::span<const int> pilot_subcarrier_bins();

// True when `bin` (0..63) carries data.
bool is_data_bin(int bin);

}  // namespace silence
