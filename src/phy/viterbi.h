// Soft-decision Viterbi decoder for the 802.11a K=7 convolutional code.
//
// The decoder consumes one LLR per mother-code bit (positive = bit 0
// likely). Erasures — punctured positions and CoS silence symbols — carry
// LLR = 0 and therefore contribute nothing to any path metric, which is
// exactly the erasure Viterbi decoding (EVD) of the paper's Eq. (7): the
// trellis itself is the standard one, only the bit metrics change.
//
// Two kernels share one trellis/traceback structure:
//
//  - decode(): exact double-precision metrics, arithmetically identical
//    to the original straight-line implementation (it is the reference
//    the fixed-point path is property-tested against, and the exhaustive
//    maximum-likelihood property tests hold against it to 1e-9).
//  - decode_fixed(): the hot path. LLRs are block-normalized and rounded
//    to int16 (|q| <= kQuantMax), metrics are int32, and the 32 trellis
//    butterflies per step run branch-free over flat state arrays (SSE2
//    when available, with an identical-result scalar fallback). For any
//    input of at most kMaxFixedSteps steps, decode_fixed(llrs) returns
//    *bit-identical* output to decode() run on the quantized LLRs: with
//    |q| <= 8191 and <= 49152 steps the int32 path metrics stay within
//    [-8.1e8, 0] while unreachable states sit at kIntFloor = INT32_MIN/2,
//    so no saturation or renormalization point is ever hit, and every
//    add/compare is exact in both integer and double arithmetic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"

namespace silence {

// Reusable decoder scratch. Buffers grow to the largest frame seen and
// are reused across packets, so steady-state decoding allocates nothing.
struct ViterbiWorkspace {
  // One 64-bit survivor word per trellis step (bit n = predecessor parity
  // of next-state n).
  std::vector<std::uint64_t> survivors;
  // Quantized LLR pairs for the fixed-point path.
  std::vector<std::int16_t> quantized;
};

// Scratch for the lane-batched fixed-point kernel (up to kBatchLanes
// packets decoded per register sweep). Same reuse contract as
// ViterbiWorkspace: buffers grow to the largest batch seen and stay.
struct ViterbiBatchWorkspace {
  // Per-lane quantized LLRs (scratch for quantize_llrs).
  std::vector<std::int16_t> quantized;
  // Lane-interleaved quantized pairs: qa[t * kBatchLanes + lane] is
  // lane's first LLR of step t (zero beyond the lane's own length).
  std::vector<std::int32_t> qa;
  std::vector<std::int32_t> qb;
  // Survivor bytes: survivors[t * 64 + state] holds one choice bit per
  // lane (bit `lane` = predecessor parity of `state` at step t).
  std::vector<std::uint8_t> survivors;
  // Per-lane path metrics snapshotted at the lane's own final step
  // (64 states per lane), for best-state traceback of shorter lanes.
  std::vector<std::int32_t> final_metrics;
};

class ViterbiDecoder {
 public:
  // Quantization ceiling: block maximum |LLR| maps to +-kQuantMax.
  static constexpr int kQuantMax = 8191;
  // Longest input the fixed-point kernel accepts without falling back to
  // the double path (every legal 802.11a frame is <= 32790 steps).
  static constexpr std::size_t kMaxFixedSteps = 49152;

  ViterbiDecoder();

  // Decodes `llrs` (2 values per information bit, mother-code order
  // [A0,B0,A1,B1,...]) into llrs.size()/2 information bits.
  //
  // With `terminated` set, the encoder is assumed to have been flushed to
  // the all-zero state by tail bits (802.11a always does this) and
  // traceback starts at state 0; otherwise it starts at the best state.
  Bits decode(std::span<const double> llrs, bool terminated = true) const;
  void decode(std::span<const double> llrs, bool terminated,
              ViterbiWorkspace& ws, Bits& out) const;

  // Fixed-point decode of the same stream (see file comment for the
  // exactness contract vs decode() on quantized inputs).
  Bits decode_fixed(std::span<const double> llrs,
                    bool terminated = true) const;
  void decode_fixed(std::span<const double> llrs, bool terminated,
                    ViterbiWorkspace& ws, Bits& out) const;

  // Block quantization used by decode_fixed: scales so the largest finite
  // |LLR| becomes kQuantMax, rounding half away from zero; zero stays
  // exactly zero (erasures remain erasures). `out.size()` must equal
  // `llrs.size()`.
  static void quantize_llrs(std::span<const double> llrs,
                            std::span<std::int16_t> out);

  // Lanes processed per register sweep by decode_fixed_batch.
  static constexpr std::size_t kBatchLanes = 8;

  // Lane-batched fixed-point decode: up to kBatchLanes LLR streams run
  // the trellis in lockstep, with the 32 butterflies vectorized across
  // lanes instead of across states. Each lane's output is bit-identical
  // to decode_fixed() on that stream alone:
  //  - quantization is per lane (same block max, same rounding);
  //  - every lane performs the same integer add/compare sequence, and
  //    integer arithmetic is exact under any vector arrangement;
  //  - lanes shorter than the longest one feed zero LLRs past their own
  //    end (metrics only merge, never shift), and their final metrics
  //    are snapshotted at their own last step for best-state traceback.
  // `llrs.size()` must be in [1, kBatchLanes]; `out.size()` must match.
  // Lanes longer than kMaxFixedSteps fall back to decode_fixed.
  void decode_fixed_batch(std::span<const std::span<const double>> llrs,
                          bool terminated, ViterbiBatchWorkspace& ws,
                          std::span<Bits> out) const;

 private:
  void traceback(const ViterbiWorkspace& ws, std::size_t steps, int state,
                 Bits& out) const;

  // out_[state][input] = 2 coded bits (A in bit 0, B in bit 1).
  std::vector<std::uint8_t> output_table_;
  // Butterfly j's branch metric as a selector into the four per-step
  // combinations {la+lb, la-lb, -la+lb, -la-lb} (the batched kernel
  // broadcasts those four values across lanes once per step).
  std::uint8_t combo_idx_[32];
  // Butterfly branch-metric signs: for butterfly j (predecessors 2j and
  // 2j+1), g_j = sign_a_[j]*la + sign_b_[j]*lb is the branch metric of
  // the (even predecessor, input 0) edge; the three sibling edges use
  // +-g_j by the code's symmetry (both generator polynomials have their
  // lowest and highest taps set).
  std::int32_t sign_a_[32];
  std::int32_t sign_b_[32];
};

}  // namespace silence
