// Soft-decision Viterbi decoder for the 802.11a K=7 convolutional code.
//
// The decoder consumes one LLR per mother-code bit (positive = bit 0
// likely). Erasures — punctured positions and CoS silence symbols — carry
// LLR = 0 and therefore contribute nothing to any path metric, which is
// exactly the erasure Viterbi decoding (EVD) of the paper's Eq. (7): the
// trellis itself is the standard one, only the bit metrics change.
#pragma once

#include <span>
#include <vector>

#include "common/bits.h"

namespace silence {

class ViterbiDecoder {
 public:
  ViterbiDecoder();

  // Decodes `llrs` (2 values per information bit, mother-code order
  // [A0,B0,A1,B1,...]) into llrs.size()/2 information bits.
  //
  // With `terminated` set, the encoder is assumed to have been flushed to
  // the all-zero state by tail bits (802.11a always does this) and
  // traceback starts at state 0; otherwise it starts at the best state.
  Bits decode(std::span<const double> llrs, bool terminated = true) const;

 private:
  // out_[state][input] = 2 coded bits (A in bit 0, B in bit 1).
  std::vector<std::uint8_t> output_table_;
};

}  // namespace silence
