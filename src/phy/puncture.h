// 802.11a puncturing of the rate-1/2 mother code to rates 2/3 and 3/4.
//
// Soft values removed by the puncturer are re-inserted as zero-LLR
// erasures before Viterbi decoding (depuncture_llrs) — the same mechanism
// erasure Viterbi decoding (EVD) uses for silence symbols.
#pragma once

#include <span>
#include <vector>

#include "common/bits.h"
#include "phy/params.h"

namespace silence {

using Llrs = std::vector<double>;

// Removes coded bits according to the standard pattern for `rate`.
// Rate 1/2 passes through. Input length must be a multiple of the pattern
// period (callers pad via OFDM symbol granularity, which always satisfies
// this).
Bits puncture(std::span<const std::uint8_t> coded, CodeRate rate);

// Same puncturing into a caller buffer (capacity reused across calls).
void puncture_into(std::span<const std::uint8_t> coded, CodeRate rate,
                   Bits& out);

// Re-inserts zero LLRs at punctured positions, restoring the mother-code
// stream of exactly `mother_bits` soft values (2*N for N information
// bits). Throws if `llrs` does not hold exactly the surviving positions.
Llrs depuncture_llrs(std::span<const double> llrs, CodeRate rate,
                     std::size_t mother_bits);

// Same re-insertion into a caller buffer (resized to `mother_bits`;
// capacity is reused across calls).
void depuncture_llrs_into(std::span<const double> llrs, CodeRate rate,
                          std::size_t mother_bits, Llrs& out);

// Number of punctured-stream bits produced from `mother_bits` coded bits.
std::size_t punctured_length(std::size_t mother_bits, CodeRate rate);

}  // namespace silence
