// 802.11a SIGNAL field: a single BPSK rate-1/2 OFDM symbol carrying
// RATE(4) | reserved(1) | LENGTH(12) | parity(1) | tail(6).
#pragma once

#include <optional>
#include <span>

#include "common/bits.h"
#include "phy/params.h"

namespace silence {

struct SignalField {
  McsId mcs;  // invalid when default-constructed
  int length_octets = 0;  // PSDU length
};

// The 24 SIGNAL bits for a rate/length combination.
Bits encode_signal_bits(const Mcs& mcs, int length_octets);

// Parses 24 decoded SIGNAL bits; nullopt when the parity fails, the rate
// code is unknown, or a reserved bit is set.
std::optional<SignalField> parse_signal_bits(
    std::span<const std::uint8_t> bits24);

}  // namespace silence
