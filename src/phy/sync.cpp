#include "phy/sync.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "phy/params.h"
#include "phy/preamble.h"

namespace silence {
namespace {

// CFO from the phase of the lag-`lag` autocorrelation over the span.
double cfo_from_lag(std::span<const Cx> samples, std::size_t lag) {
  Cx acc{0.0, 0.0};
  for (std::size_t n = 0; n + lag < samples.size(); ++n) {
    acc += std::conj(samples[n]) * samples[n + lag];
  }
  const double phase = std::arg(acc);
  return phase * kSampleRateHz /
         (2.0 * std::numbers::pi * static_cast<double>(lag));
}

}  // namespace

double estimate_cfo_coarse(std::span<const Cx> stf_samples) {
  if (stf_samples.size() < 2 * 16) {
    throw std::invalid_argument("estimate_cfo_coarse: need >= 32 samples");
  }
  return cfo_from_lag(stf_samples, 16);
}

double estimate_cfo_fine(std::span<const Cx> ltf_samples) {
  if (ltf_samples.size() != static_cast<std::size_t>(kLtfSamples)) {
    throw std::invalid_argument("estimate_cfo_fine: need 160 LTF samples");
  }
  // Correlate the two identical 64-sample long symbols (after the
  // 32-sample guard).
  return cfo_from_lag(ltf_samples.subspan(32), 64);
}

void correct_cfo(std::span<Cx> samples, double cfo_hz) {
  const double step = -2.0 * std::numbers::pi * cfo_hz / kSampleRateHz;
  double phase = 0.0;
  for (Cx& x : samples) {
    x *= Cx{std::cos(phase), std::sin(phase)};
    phase += step;
  }
}

std::optional<std::size_t> detect_frame_start(std::span<const Cx> samples,
                                              double threshold) {
  constexpr std::size_t kLag = 16;       // STF period
  constexpr std::size_t kWindow = 64;    // correlation window
  if (samples.size() < kPreambleSamples + kSymbolSamples) {
    return std::nullopt;
  }

  // Stage 1 — coarse: sliding normalized autocorrelation
  //   M(d) = |P(d)|^2 / R(d)^2,
  //   P(d) = sum conj(r[d+n]) r[d+n+16], R(d) = sum |r[d+n+16]|^2,
  // maintained incrementally for O(1) per shift.
  const std::size_t last =
      samples.size() - (kPreambleSamples + kSymbolSamples);
  Cx p{0.0, 0.0};
  double r = 0.0;
  for (std::size_t n = 0; n < kWindow; ++n) {
    p += std::conj(samples[n]) * samples[n + kLag];
    r += std::norm(samples[n + kLag]);
  }
  std::optional<std::size_t> coarse;
  for (std::size_t d = 0; d <= last; ++d) {
    if (r > 1e-18) {
      const double metric = std::norm(p) / (r * r);
      if (metric > threshold) {
        coarse = d;
        break;
      }
    }
    p += std::conj(samples[d + kWindow]) * samples[d + kWindow + kLag] -
         std::conj(samples[d]) * samples[d + kLag];
    r += std::norm(samples[d + kWindow + kLag]) -
         std::norm(samples[d + kLag]);
  }
  if (!coarse) return std::nullopt;

  // Stage 2 — fine: cross-correlate with the known time-domain long
  // training symbol around the expected LTF location. The first long
  // symbol starts kStfSamples + 32 after the frame start; search a
  // generous window around the coarse estimate.
  const CxVec ltf_body = ifft(ltf_frequency_bins());
  double ltf_energy = 0.0;
  for (const Cx& x : ltf_body) ltf_energy += std::norm(x);

  // The two long symbols are identical, so a single correlation peak is
  // ambiguous (+64 samples); summing the correlations at d and d+64
  // peaks only where BOTH long symbols line up — the first one.
  const std::size_t nominal = *coarse + kStfSamples + 32;
  const std::size_t search_lo = nominal > 48 ? nominal - 48 : 0;
  const std::size_t search_hi =
      std::min(nominal + 48, samples.size() - 2 * kFftSize);
  double best_metric = 0.0;
  std::size_t best_pos = nominal;
  for (std::size_t d = search_lo; d <= search_hi; ++d) {
    Cx corr1{0.0, 0.0}, corr2{0.0, 0.0};
    double energy = 0.0;
    for (std::size_t n = 0; n < kFftSize; ++n) {
      corr1 += std::conj(ltf_body[n]) * samples[d + n];
      corr2 += std::conj(ltf_body[n]) * samples[d + kFftSize + n];
      energy += std::norm(samples[d + n]) +
                std::norm(samples[d + kFftSize + n]);
    }
    if (energy < 1e-18) continue;
    const double metric =
        (std::norm(corr1) + std::norm(corr2)) / (energy * ltf_energy);
    if (metric > best_metric) {
      best_metric = metric;
      best_pos = d;
    }
  }
  if (best_metric < 0.2) return std::nullopt;  // no LTF: false alarm
  const std::size_t frame_start_offset = kStfSamples + 32;
  if (best_pos < frame_start_offset) return std::nullopt;
  return best_pos - frame_start_offset;
}

}  // namespace silence
