// 802.11a transmit chain: PSDU -> scramble -> convolutional encode ->
// puncture -> interleave -> constellation map -> OFDM grid -> samples.
//
// The chain is split in two so that CoS can inject silence symbols: first
// build_frame() produces the per-symbol constellation grid, then a CoS
// power controller may zero selected grid points, and finally
// frame_to_samples() assembles preamble + SIGNAL + data samples.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"
#include "dsp/fft.h"
#include "phy/params.h"
#include "phy/symbol_grid.h"

namespace silence {

struct TxFrame {
  McsId mcs;  // invalid when default-constructed
  std::uint8_t scrambler_seed = 0;
  std::size_t psdu_octets = 0;
  // Scrambled DATA bits (SERVICE + PSDU + tail + pad), tail re-zeroed.
  Bits data_bits;
  // Punctured coded stream in pre-interleave order, n_symbols * n_cbps.
  Bits coded_bits;
  // Per-OFDM-symbol constellation points (48 each, logical subcarrier
  // order). CoS silence insertion zeroes entries here.
  SymbolGrid data_grid{kNumDataSubcarriers};

  int num_symbols() const { return static_cast<int>(data_grid.size()); }

  // Airtime of the full burst (preamble + SIGNAL + data) in seconds.
  double airtime_sec() const;
};

// Builds the frame for a PSDU (the PSDU should already carry its FCS; see
// common/crc32.h helpers). Throws when the PSDU exceeds 4095 octets.
TxFrame build_frame(std::span<const std::uint8_t> psdu, const Mcs& mcs,
                    std::uint8_t scrambler_seed = 0x5D);

// Full burst: 320 preamble samples, 80 SIGNAL samples, 80 per data symbol.
CxVec frame_to_samples(const TxFrame& frame);

// Allocates the full burst and writes the preamble and SIGNAL symbol;
// the data-symbol region is zero. Shared by the scalar and batched
// (phy/batch.h) sample assembly.
CxVec frame_samples_prefix(const TxFrame& frame);

// Number of OFDM data symbols needed for `psdu_octets` at `mcs`.
int symbols_for_psdu(std::size_t psdu_octets, const Mcs& mcs);

}  // namespace silence
