#include "phy/puncture.h"

#include <array>
#include <stdexcept>

namespace silence {
namespace {

// Keep-masks over the mother stream [A1,B1,A2,B2,A3,B3] per 802.11a 17.3.5.6.
constexpr std::array<std::uint8_t, 4> kPattern2of3 = {1, 1, 1, 0};
constexpr std::array<std::uint8_t, 6> kPattern3of4 = {1, 1, 1, 0, 0, 1};

std::span<const std::uint8_t> pattern_for(CodeRate rate) {
  switch (rate) {
    case CodeRate::kRate1of2: return {};
    case CodeRate::kRate2of3: return kPattern2of3;
    case CodeRate::kRate3of4: return kPattern3of4;
  }
  return {};
}

}  // namespace

Bits puncture(std::span<const std::uint8_t> coded, CodeRate rate) {
  Bits out;
  puncture_into(coded, rate, out);
  return out;
}

void puncture_into(std::span<const std::uint8_t> coded, CodeRate rate,
                   Bits& out) {
  const auto pattern = pattern_for(rate);
  if (pattern.empty()) {
    out.assign(coded.begin(), coded.end());
    return;
  }
  out.clear();
  out.reserve(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    if (pattern[i % pattern.size()]) out.push_back(coded[i]);
  }
}

void depuncture_llrs_into(std::span<const double> llrs, CodeRate rate,
                          std::size_t mother_bits, Llrs& out) {
  const auto pattern = pattern_for(rate);
  if (pattern.empty()) {
    if (llrs.size() != mother_bits) {
      throw std::invalid_argument("depuncture_llrs: length mismatch");
    }
    out.assign(llrs.begin(), llrs.end());
    return;
  }
  out.resize(mother_bits);
  std::size_t in = 0;
  for (std::size_t pos = 0; pos < mother_bits; ++pos) {
    if (pattern[pos % pattern.size()]) {
      if (in >= llrs.size()) {
        throw std::invalid_argument("depuncture_llrs: too few soft values");
      }
      out[pos] = llrs[in++];
    } else {
      out[pos] = 0.0;  // punctured position: total erasure
    }
  }
  if (in != llrs.size()) {
    throw std::invalid_argument("depuncture_llrs: too many soft values");
  }
}

Llrs depuncture_llrs(std::span<const double> llrs, CodeRate rate,
                     std::size_t mother_bits) {
  Llrs out;
  depuncture_llrs_into(llrs, rate, mother_bits, out);
  return out;
}

std::size_t punctured_length(std::size_t mother_bits, CodeRate rate) {
  const auto pattern = pattern_for(rate);
  if (pattern.empty()) return mother_bits;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < mother_bits; ++i) {
    if (pattern[i % pattern.size()]) ++kept;
  }
  return kept;
}

}  // namespace silence
