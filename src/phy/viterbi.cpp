#include "phy/viterbi.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "phy/convolutional.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace silence {

namespace {

// A finite "minus infinity" for the double path: large enough to
// dominate, small enough that adding branch metrics never overflows.
constexpr double kFloor = -1e18;

// Integer "minus infinity". Unreachable states only accumulate branch
// metrics for at most 5 steps (after 6 transitions every state is
// reachable from state 0), so floored metrics stay below
// kIntFloor + 5*2*kQuantMax, which is well under the smallest reachable
// metric -kMaxFixedSteps*2*kQuantMax. Nothing saturates, nothing wraps.
constexpr std::int32_t kIntFloor =
    std::numeric_limits<std::int32_t>::min() / 2;

static_assert(static_cast<std::int64_t>(ViterbiDecoder::kMaxFixedSteps) * 2 *
                      ViterbiDecoder::kQuantMax <
                  std::numeric_limits<std::int32_t>::max(),
              "reachable metrics must not overflow int32");
static_assert(kIntFloor + 5LL * 2 * ViterbiDecoder::kQuantMax <
                  -static_cast<std::int64_t>(ViterbiDecoder::kMaxFixedSteps) *
                      2 * ViterbiDecoder::kQuantMax,
              "floored metrics must stay below every reachable metric");

}  // namespace

ViterbiDecoder::ViterbiDecoder()
    : output_table_(static_cast<std::size_t>(kNumStates) * 2) {
  for (int state = 0; state < kNumStates; ++state) {
    for (int input = 0; input < 2; ++input) {
      output_table_[static_cast<std::size_t>(state) * 2 +
                    static_cast<std::size_t>(input)] =
          conv_output(state, input);
    }
  }
  for (int j = 0; j < kNumStates / 2; ++j) {
    const std::uint8_t x = output_table_[static_cast<std::size_t>(j) * 4];
    sign_a_[j] = (x & 1) ? -1 : 1;
    sign_b_[j] = (x & 2) ? -1 : 1;
    combo_idx_[j] = static_cast<std::uint8_t>((sign_a_[j] < 0 ? 2 : 0) |
                                              (sign_b_[j] < 0 ? 1 : 0));
  }
}

void ViterbiDecoder::traceback(const ViterbiWorkspace& ws, std::size_t steps,
                               int state, Bits& out) const {
  out.resize(steps);
  for (std::size_t t = steps; t-- > 0;) {
    out[t] = static_cast<std::uint8_t>(state >> 5);
    state = ((state & 31) << 1) |
            static_cast<int>((ws.survivors[t] >> state) & 1);
  }
}

Bits ViterbiDecoder::decode(std::span<const double> llrs,
                            bool terminated) const {
  ViterbiWorkspace ws;
  Bits out;
  decode(llrs, terminated, ws, out);
  return out;
}

void ViterbiDecoder::decode(std::span<const double> llrs, bool terminated,
                            ViterbiWorkspace& ws, Bits& out) const {
  if (llrs.size() % 2 != 0) {
    throw std::invalid_argument("viterbi: need an even number of LLRs");
  }
  const std::size_t steps = llrs.size() / 2;
  out.clear();
  if (steps == 0) return;
  ws.survivors.resize(steps);

  double buf_a[kNumStates];
  double buf_b[kNumStates];
  double* metric = buf_a;
  double* next_metric = buf_b;
  std::fill(metric, metric + kNumStates, kFloor);
  metric[0] = 0.0;  // encoder starts zeroed

  for (std::size_t t = 0; t < steps; ++t) {
    // Branch affinity for coded pair (a, b): +llr/2 for bit 0, -llr/2
    // for bit 1; an erased (zero) LLR is neutral, implementing EVD.
    const double half_a = 0.5 * llrs[2 * t];
    const double half_b = 0.5 * llrs[2 * t + 1];
    const double bm[4] = {half_a + half_b, -half_a + half_b,
                          half_a - half_b, -half_a - half_b};
    std::uint64_t word = 0;
    for (int next = 0; next < kNumStates; ++next) {
      const int input = next >> 5;
      const int base = (next & 31) * 2;
      const double m0 =
          metric[base] +
          bm[output_table_[static_cast<std::size_t>(base) * 2 +
                           static_cast<std::size_t>(input)]];
      const double m1 =
          metric[base + 1] +
          bm[output_table_[(static_cast<std::size_t>(base) + 1) * 2 +
                           static_cast<std::size_t>(input)]];
      const bool pick1 = m1 > m0;
      next_metric[next] = pick1 ? m1 : m0;
      word |= static_cast<std::uint64_t>(pick1) << next;
    }
    std::swap(metric, next_metric);
    ws.survivors[t] = word;
  }

  int state = 0;
  if (!terminated) {
    state = static_cast<int>(std::distance(
        metric, std::max_element(metric, metric + kNumStates)));
  }
  traceback(ws, steps, state, out);
}

void ViterbiDecoder::quantize_llrs(std::span<const double> llrs,
                                   std::span<std::int16_t> out) {
  if (out.size() != llrs.size()) {
    throw std::invalid_argument("quantize_llrs: output size mismatch");
  }
  double max_abs = 0.0;
  for (const double v : llrs) {
    const double a = std::fabs(v);
    if (std::isfinite(a) && a > max_abs) max_abs = a;
  }
  const double scale = max_abs > 0.0 ? kQuantMax / max_abs : 0.0;
  for (std::size_t i = 0; i < llrs.size(); ++i) {
    const double v = llrs[i];
    int q;
    if (std::isnan(v)) {
      q = 0;
    } else if (!std::isfinite(v)) {
      q = v > 0.0 ? kQuantMax : -kQuantMax;
    } else {
      const double s = v * scale;
      q = static_cast<int>(s + (s >= 0.0 ? 0.5 : -0.5));
      q = std::clamp(q, -kQuantMax, kQuantMax);
    }
    out[i] = static_cast<std::int16_t>(q);
  }
}

Bits ViterbiDecoder::decode_fixed(std::span<const double> llrs,
                                  bool terminated) const {
  ViterbiWorkspace ws;
  Bits out;
  decode_fixed(llrs, terminated, ws, out);
  return out;
}

void ViterbiDecoder::decode_fixed(std::span<const double> llrs,
                                  bool terminated, ViterbiWorkspace& ws,
                                  Bits& out) const {
  if (llrs.size() % 2 != 0) {
    throw std::invalid_argument("viterbi: need an even number of LLRs");
  }
  const std::size_t steps = llrs.size() / 2;
  out.clear();
  if (steps == 0) return;
  if (steps > kMaxFixedSteps) {
    // Beyond the proven no-overflow bound (never hit by legal 802.11a
    // frames): take the exact double path instead.
    decode(llrs, terminated, ws, out);
    return;
  }

  ws.quantized.resize(llrs.size());
  quantize_llrs(llrs, ws.quantized);
  ws.survivors.resize(steps);

  // Metrics are kept scaled by 2 relative to the double path's llr/2
  // convention; a uniform scale changes no comparison.
  alignas(16) std::int32_t buf_a[kNumStates];
  alignas(16) std::int32_t buf_b[kNumStates];
  alignas(16) std::int32_t g[kNumStates / 2];
  std::int32_t* metric = buf_a;
  std::int32_t* next_metric = buf_b;
  std::fill(metric, metric + kNumStates, kIntFloor);
  metric[0] = 0;

  const std::int16_t* q = ws.quantized.data();
  for (std::size_t t = 0; t < steps; ++t) {
    const std::int32_t la = q[2 * t];
    const std::int32_t lb = q[2 * t + 1];
    for (int j = 0; j < kNumStates / 2; ++j) {
      g[j] = sign_a_[j] * la + sign_b_[j] * lb;
    }

    // Butterfly j (predecessors e=2j, o=2j+1; successors j and j+32):
    //   next[j]    = max(e + g_j, o - g_j)   (input 0)
    //   next[j+32] = max(e - g_j, o + g_j)   (input 1)
    // because flipping the state LSB or the input bit complements both
    // coded bits, which negates the branch metric exactly.
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
#if defined(__SSE2__)
    for (int j = 0; j < kNumStates / 2; j += 4) {
      const __m128i v0 =
          _mm_load_si128(reinterpret_cast<const __m128i*>(metric + 2 * j));
      const __m128i v1 =
          _mm_load_si128(reinterpret_cast<const __m128i*>(metric + 2 * j + 4));
      const __m128i me = _mm_castps_si128(_mm_shuffle_ps(
          _mm_castsi128_ps(v0), _mm_castsi128_ps(v1), _MM_SHUFFLE(2, 0, 2, 0)));
      const __m128i mo = _mm_castps_si128(_mm_shuffle_ps(
          _mm_castsi128_ps(v0), _mm_castsi128_ps(v1), _MM_SHUFFLE(3, 1, 3, 1)));
      const __m128i g4 =
          _mm_load_si128(reinterpret_cast<const __m128i*>(g + j));

      const __m128i a0 = _mm_add_epi32(me, g4);
      const __m128i a1 = _mm_sub_epi32(mo, g4);
      const __m128i p = _mm_cmpgt_epi32(a1, a0);
      const __m128i max0 =
          _mm_or_si128(_mm_and_si128(p, a1), _mm_andnot_si128(p, a0));
      _mm_store_si128(reinterpret_cast<__m128i*>(next_metric + j), max0);
      lo |= static_cast<std::uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(p)))
            << j;

      const __m128i b0 = _mm_sub_epi32(me, g4);
      const __m128i b1 = _mm_add_epi32(mo, g4);
      const __m128i r = _mm_cmpgt_epi32(b1, b0);
      const __m128i max1 =
          _mm_or_si128(_mm_and_si128(r, b1), _mm_andnot_si128(r, b0));
      _mm_store_si128(
          reinterpret_cast<__m128i*>(next_metric + kNumStates / 2 + j), max1);
      hi |= static_cast<std::uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(r)))
            << j;
    }
#else
    for (int j = 0; j < kNumStates / 2; ++j) {
      const std::int32_t me = metric[2 * j];
      const std::int32_t mo = metric[2 * j + 1];
      const std::int32_t a0 = me + g[j];
      const std::int32_t a1 = mo - g[j];
      const bool p = a1 > a0;
      next_metric[j] = p ? a1 : a0;
      lo |= static_cast<std::uint32_t>(p) << j;
      const std::int32_t b0 = me - g[j];
      const std::int32_t b1 = mo + g[j];
      const bool r = b1 > b0;
      next_metric[kNumStates / 2 + j] = r ? b1 : b0;
      hi |= static_cast<std::uint32_t>(r) << j;
    }
#endif
    ws.survivors[t] = static_cast<std::uint64_t>(lo) |
                      (static_cast<std::uint64_t>(hi) << 32);
    std::swap(metric, next_metric);
  }

  int state = 0;
  if (!terminated) {
    std::int32_t best = metric[0];
    for (int s = 1; s < kNumStates; ++s) {
      if (metric[s] > best) {
        best = metric[s];
        state = s;
      }
    }
  }
  traceback(ws, steps, state, out);
}

namespace {

// One trellis step for kBatchLanes lanes in lockstep. Metric layout is
// lane-interleaved: metric[state * kBatchLanes + lane]. `combos` holds
// the four branch-metric values {la+lb, la-lb, -la+lb, -la-lb} per lane;
// `combo_idx[j]` selects the one that equals the scalar path's g[j].
// `survivors` receives one byte per next-state, bit `lane` = predecessor
// parity, matching decode_fixed's per-step survivor word bit for bit.
using BatchStepFn = void (*)(const std::int32_t* metric,
                             std::int32_t* next_metric,
                             const std::int32_t (*combos)[8],
                             const std::uint8_t* combo_idx,
                             std::uint8_t* survivors);

[[maybe_unused]] void batch_step_generic(const std::int32_t* metric,
                                         std::int32_t* next_metric,
                                         const std::int32_t (*combos)[8],
                                         const std::uint8_t* combo_idx,
                                         std::uint8_t* survivors) {
  constexpr int kLanes = static_cast<int>(ViterbiDecoder::kBatchLanes);
  for (int j = 0; j < kNumStates / 2; ++j) {
    const std::int32_t* g = combos[combo_idx[j]];
    const std::int32_t* me = metric + (2 * j) * kLanes;
    const std::int32_t* mo = metric + (2 * j + 1) * kLanes;
    std::uint32_t bits0 = 0;
    std::uint32_t bits1 = 0;
    for (int l = 0; l < kLanes; ++l) {
      const std::int32_t a0 = me[l] + g[l];
      const std::int32_t a1 = mo[l] - g[l];
      const bool p = a1 > a0;
      next_metric[j * kLanes + l] = p ? a1 : a0;
      bits0 |= static_cast<std::uint32_t>(p) << l;
      const std::int32_t b0 = me[l] - g[l];
      const std::int32_t b1 = mo[l] + g[l];
      const bool r = b1 > b0;
      next_metric[(j + kNumStates / 2) * kLanes + l] = r ? b1 : b0;
      bits1 |= static_cast<std::uint32_t>(r) << l;
    }
    survivors[j] = static_cast<std::uint8_t>(bits0);
    survivors[j + kNumStates / 2] = static_cast<std::uint8_t>(bits1);
  }
}

#if defined(__SSE2__)
void batch_step_sse2(const std::int32_t* metric, std::int32_t* next_metric,
                     const std::int32_t (*combos)[8],
                     const std::uint8_t* combo_idx,
                     std::uint8_t* survivors) {
  for (int j = 0; j < kNumStates / 2; ++j) {
    const std::int32_t* g = combos[combo_idx[j]];
    const std::int32_t* me = metric + (2 * j) * 8;
    const std::int32_t* mo = metric + (2 * j + 1) * 8;
    std::uint32_t bits0 = 0;
    std::uint32_t bits1 = 0;
    for (int h = 0; h < 8; h += 4) {
      const __m128i gv =
          _mm_load_si128(reinterpret_cast<const __m128i*>(g + h));
      const __m128i ev =
          _mm_load_si128(reinterpret_cast<const __m128i*>(me + h));
      const __m128i ov =
          _mm_load_si128(reinterpret_cast<const __m128i*>(mo + h));

      const __m128i a0 = _mm_add_epi32(ev, gv);
      const __m128i a1 = _mm_sub_epi32(ov, gv);
      const __m128i p = _mm_cmpgt_epi32(a1, a0);
      const __m128i max0 =
          _mm_or_si128(_mm_and_si128(p, a1), _mm_andnot_si128(p, a0));
      _mm_store_si128(reinterpret_cast<__m128i*>(next_metric + j * 8 + h),
                      max0);
      bits0 |= static_cast<std::uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(p)))
               << h;

      const __m128i b0 = _mm_sub_epi32(ev, gv);
      const __m128i b1 = _mm_add_epi32(ov, gv);
      const __m128i r = _mm_cmpgt_epi32(b1, b0);
      const __m128i max1 =
          _mm_or_si128(_mm_and_si128(r, b1), _mm_andnot_si128(r, b0));
      _mm_store_si128(
          reinterpret_cast<__m128i*>(next_metric + (j + kNumStates / 2) * 8 +
                                     h),
          max1);
      bits1 |= static_cast<std::uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(r)))
               << h;
    }
    survivors[j] = static_cast<std::uint8_t>(bits0);
    survivors[j + kNumStates / 2] = static_cast<std::uint8_t>(bits1);
  }
}
#endif

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2"))) void batch_step_avx2(
    const std::int32_t* metric, std::int32_t* next_metric,
    const std::int32_t (*combos)[8], const std::uint8_t* combo_idx,
    std::uint8_t* survivors) {
  for (int j = 0; j < kNumStates / 2; ++j) {
    const __m256i gv = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(combos[combo_idx[j]]));
    const __m256i ev = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(metric + (2 * j) * 8));
    const __m256i ov = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(metric + (2 * j + 1) * 8));

    const __m256i a0 = _mm256_add_epi32(ev, gv);
    const __m256i a1 = _mm256_sub_epi32(ov, gv);
    _mm256_store_si256(reinterpret_cast<__m256i*>(next_metric + j * 8),
                       _mm256_max_epi32(a0, a1));
    survivors[j] = static_cast<std::uint8_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(a1, a0))));

    const __m256i b0 = _mm256_sub_epi32(ev, gv);
    const __m256i b1 = _mm256_add_epi32(ov, gv);
    _mm256_store_si256(
        reinterpret_cast<__m256i*>(next_metric + (j + kNumStates / 2) * 8),
        _mm256_max_epi32(b0, b1));
    survivors[j + kNumStates / 2] = static_cast<std::uint8_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(b1, b0))));
  }
}
#endif

BatchStepFn select_batch_step() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return batch_step_avx2;
#endif
#if defined(__SSE2__)
  return batch_step_sse2;
#else
  return batch_step_generic;
#endif
}

}  // namespace

void ViterbiDecoder::decode_fixed_batch(
    std::span<const std::span<const double>> llrs, bool terminated,
    ViterbiBatchWorkspace& ws, std::span<Bits> out) const {
  const std::size_t nlanes = llrs.size();
  if (nlanes == 0 || nlanes > kBatchLanes) {
    throw std::invalid_argument(
        "decode_fixed_batch: lane count must be in [1, kBatchLanes]");
  }
  if (out.size() != nlanes) {
    throw std::invalid_argument("decode_fixed_batch: output size mismatch");
  }

  std::size_t steps[kBatchLanes] = {};
  bool in_batch[kBatchLanes] = {};
  std::size_t max_steps = 0;
  for (std::size_t l = 0; l < nlanes; ++l) {
    if (llrs[l].size() % 2 != 0) {
      throw std::invalid_argument("viterbi: need an even number of LLRs");
    }
    const std::size_t s = llrs[l].size() / 2;
    if (s == 0) {
      out[l].clear();
      continue;
    }
    if (s > kMaxFixedSteps) {
      // Beyond the proven no-overflow bound (never hit by legal 802.11a
      // frames): this lane decodes alone via the scalar entry point, which
      // takes the exact double path, and is skipped by the batch.
      ViterbiWorkspace scalar_ws;
      decode_fixed(llrs[l], terminated, scalar_ws, out[l]);
      continue;
    }
    steps[l] = s;
    in_batch[l] = true;
    max_steps = std::max(max_steps, s);
  }
  if (max_steps == 0) return;

  // Lane-interleaved quantized LLR planes; lanes shorter than max_steps
  // are zero past their own end, so their metrics only merge (max of two
  // unchanged path sums) and never grow — the post-final steps cannot
  // overflow or disturb the snapshot taken at the lane's own last step.
  ws.qa.assign(max_steps * kBatchLanes, 0);
  ws.qb.assign(max_steps * kBatchLanes, 0);
  for (std::size_t l = 0; l < nlanes; ++l) {
    if (!in_batch[l]) continue;
    ws.quantized.resize(llrs[l].size());
    quantize_llrs(llrs[l], ws.quantized);
    for (std::size_t t = 0; t < steps[l]; ++t) {
      ws.qa[t * kBatchLanes + l] = ws.quantized[2 * t];
      ws.qb[t * kBatchLanes + l] = ws.quantized[2 * t + 1];
    }
  }
  ws.survivors.resize(max_steps * static_cast<std::size_t>(kNumStates));
  ws.final_metrics.resize(kBatchLanes * static_cast<std::size_t>(kNumStates));

  alignas(32) std::int32_t buf_a[static_cast<std::size_t>(kNumStates) *
                                 kBatchLanes];
  alignas(32) std::int32_t buf_b[static_cast<std::size_t>(kNumStates) *
                                 kBatchLanes];
  std::int32_t* metric = buf_a;
  std::int32_t* next_metric = buf_b;
  std::fill(metric, metric + static_cast<std::size_t>(kNumStates) * kBatchLanes,
            kIntFloor);
  for (std::size_t l = 0; l < kBatchLanes; ++l) metric[l] = 0;  // state 0

  static const BatchStepFn step_fn = select_batch_step();

  alignas(32) std::int32_t combos[4][kBatchLanes];
  for (std::size_t t = 0; t < max_steps; ++t) {
    for (std::size_t l = 0; l < kBatchLanes; ++l) {
      const std::int32_t la = ws.qa[t * kBatchLanes + l];
      const std::int32_t lb = ws.qb[t * kBatchLanes + l];
      combos[0][l] = la + lb;   // sign_a = +1, sign_b = +1
      combos[1][l] = la - lb;   // sign_a = +1, sign_b = -1
      combos[2][l] = lb - la;   // sign_a = -1, sign_b = +1
      combos[3][l] = -la - lb;  // sign_a = -1, sign_b = -1
    }
    step_fn(metric, next_metric, combos, combo_idx_,
            ws.survivors.data() + t * static_cast<std::size_t>(kNumStates));
    std::swap(metric, next_metric);
    for (std::size_t l = 0; l < nlanes; ++l) {
      if (in_batch[l] && steps[l] == t + 1) {
        std::int32_t* fm =
            ws.final_metrics.data() + l * static_cast<std::size_t>(kNumStates);
        for (int s = 0; s < kNumStates; ++s) {
          fm[s] = metric[static_cast<std::size_t>(s) * kBatchLanes + l];
        }
      }
    }
  }

  for (std::size_t l = 0; l < nlanes; ++l) {
    if (!in_batch[l]) continue;
    const std::int32_t* fm =
        ws.final_metrics.data() + l * static_cast<std::size_t>(kNumStates);
    int state = 0;
    if (!terminated) {
      std::int32_t best = fm[0];
      for (int s = 1; s < kNumStates; ++s) {
        if (fm[s] > best) {
          best = fm[s];
          state = s;
        }
      }
    }
    Bits& bits = out[l];
    bits.resize(steps[l]);
    const std::uint8_t* surv = ws.survivors.data();
    for (std::size_t t = steps[l]; t-- > 0;) {
      bits[t] = static_cast<std::uint8_t>(state >> 5);
      state = ((state & 31) << 1) |
              static_cast<int>(
                  (surv[t * static_cast<std::size_t>(kNumStates) +
                        static_cast<std::size_t>(state)] >>
                   l) &
                  1);
    }
  }
}

}  // namespace silence
