#include "phy/viterbi.h"

#include <algorithm>
#include <stdexcept>

#include "phy/convolutional.h"

namespace silence {

ViterbiDecoder::ViterbiDecoder()
    : output_table_(static_cast<std::size_t>(kNumStates) * 2) {
  for (int state = 0; state < kNumStates; ++state) {
    for (int input = 0; input < 2; ++input) {
      output_table_[static_cast<std::size_t>(state) * 2 +
                    static_cast<std::size_t>(input)] =
          conv_output(state, input);
    }
  }
}

Bits ViterbiDecoder::decode(std::span<const double> llrs,
                            bool terminated) const {
  if (llrs.size() % 2 != 0) {
    throw std::invalid_argument("viterbi: need an even number of LLRs");
  }
  const std::size_t steps = llrs.size() / 2;
  if (steps == 0) return {};

  // A finite "minus infinity": large enough to dominate, small enough
  // that adding branch metrics never overflows.
  constexpr double kFloor = -1e18;
  std::vector<double> metric(kNumStates, kFloor);
  std::vector<double> next_metric(kNumStates);
  metric[0] = 0.0;  // encoder starts zeroed

  // Per step and next-state, one bit selecting which of the two
  // predecessors survives; the input bit is implied by the state index
  // (next = (input << 5) | (state >> 1)).
  std::vector<std::uint8_t> survivor_lsb(steps * kNumStates);

  for (std::size_t t = 0; t < steps; ++t) {
    // Branch affinity for coded pair (a, b): +llr/2 for bit 0, -llr/2
    // for bit 1; an erased (zero) LLR is neutral, implementing EVD.
    const double half_a = 0.5 * llrs[2 * t];
    const double half_b = 0.5 * llrs[2 * t + 1];
    const double bm[4] = {half_a + half_b, -half_a + half_b,
                          half_a - half_b, -half_a - half_b};
    std::uint8_t* survivors = &survivor_lsb[t * kNumStates];
    for (int next = 0; next < kNumStates; ++next) {
      const int input = next >> 5;
      const int base = (next & 31) * 2;
      const double m0 =
          metric[static_cast<std::size_t>(base)] +
          bm[output_table_[static_cast<std::size_t>(base) * 2 +
                           static_cast<std::size_t>(input)]];
      const double m1 =
          metric[static_cast<std::size_t>(base) + 1] +
          bm[output_table_[(static_cast<std::size_t>(base) + 1) * 2 +
                           static_cast<std::size_t>(input)]];
      const bool pick1 = m1 > m0;
      next_metric[static_cast<std::size_t>(next)] = pick1 ? m1 : m0;
      survivors[next] = static_cast<std::uint8_t>(pick1);
    }
    metric.swap(next_metric);
  }

  int state = 0;
  if (!terminated) {
    state = static_cast<int>(std::distance(
        metric.begin(), std::max_element(metric.begin(), metric.end())));
  }

  Bits bits(steps);
  for (std::size_t t = steps; t-- > 0;) {
    bits[t] = static_cast<std::uint8_t>(state >> 5);
    state = ((state & 31) << 1) |
            survivor_lsb[t * kNumStates + static_cast<std::size_t>(state)];
  }
  return bits;
}

}  // namespace silence
