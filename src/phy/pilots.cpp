#include "phy/pilots.h"

#include "phy/scrambler.h"

namespace silence {
namespace {

const Bits& polarity_sequence() {
  // All-ones seed generates the standard 127-bit sequence; p_n = 1 - 2*s_n.
  static const Bits seq = Scrambler::sequence(0x7F, 127);
  return seq;
}

}  // namespace

double pilot_polarity(int symbol_index) {
  const auto& seq = polarity_sequence();
  const auto n = static_cast<std::size_t>(symbol_index % 127);
  return seq[n] ? -1.0 : 1.0;
}

std::array<Cx, 4> pilot_values(int symbol_index) {
  const double p = pilot_polarity(symbol_index);
  return {Cx{p, 0.0}, Cx{p, 0.0}, Cx{p, 0.0}, Cx{-p, 0.0}};
}

}  // namespace silence
