// 802.11a DATA-field scrambler (generator polynomial x^7 + x^4 + 1).
//
// Scrambling and descrambling are the same XOR operation given the same
// initial state; the receiver recovers the transmitter's state from the
// first 7 (all-zero) SERVICE bits, as in the standard.
#pragma once

#include <cstdint>
#include <span>

#include "common/bits.h"

namespace silence {

class Scrambler {
 public:
  // `seed` is the 7-bit initial shift-register state; must be non-zero.
  explicit Scrambler(std::uint8_t seed);

  // Next output bit of the PN sequence, advancing the register.
  std::uint8_t next();

  // XORs the PN sequence onto `bits` (works for scramble and descramble).
  Bits apply(std::span<const std::uint8_t> bits);

  // 127-bit repeating sequence generated from `seed` (handy for tests and
  // for the pilot polarity sequence).
  static Bits sequence(std::uint8_t seed, std::size_t length);

  // One period (127 bits) of the PN sequence for `seed`, served from a
  // process-wide table built lazily per seed. The span stays valid for
  // the process lifetime.
  static std::span<const std::uint8_t> period_cached(std::uint8_t seed);

  // XORs the `seed` PN sequence onto `bits` without stepping the register
  // bit by bit (the period table plus a block XOR). Bit-identical to
  // Scrambler(seed).apply(bits); `out` is resized to match and its
  // capacity is reused across calls.
  static void apply_with_seed_into(std::uint8_t seed,
                                   std::span<const std::uint8_t> bits,
                                   Bits& out);

  // Recovers the transmitter seed from the first 7 descrambler-input bits,
  // assuming the plaintext bits were zero (the SERVICE field's scrambler
  //-init bits). Returns the state that generates those 7 bits.
  static std::uint8_t recover_seed(std::span<const std::uint8_t> first7);

 private:
  std::uint8_t state_;  // 7-bit register, bit0 = x^1 ... bit6 = x^7
};

}  // namespace silence
