// 802.11a convolutional encoder: constraint length 7, rate 1/2,
// generators g0 = 133 (octal), g1 = 171 (octal).
#pragma once

#include <cstdint>
#include <span>

#include "common/bits.h"

namespace silence {

inline constexpr int kConstraintLength = 7;
inline constexpr int kNumStates = 1 << (kConstraintLength - 1);  // 64
inline constexpr std::uint8_t kGeneratorA = 0b1011011;           // 133 octal
inline constexpr std::uint8_t kGeneratorB = 0b1111001;           // 171 octal

// Encodes `bits` at rate 1/2; output is [A0, B0, A1, B1, ...] and has
// exactly 2 * bits.size() entries. The encoder starts and (given the
// caller appends >= 6 tail zeros) ends in the all-zero state.
Bits convolutional_encode(std::span<const std::uint8_t> bits);

// Same encoding into a caller buffer (resized; capacity reused across
// calls, so warm hot-path callers stay allocation-free).
void convolutional_encode_into(std::span<const std::uint8_t> bits, Bits& out);

// Coded output pair for one input bit from a given 6-bit encoder state.
// Bit 0 of the result is output A, bit 1 is output B.
std::uint8_t conv_output(int state, int input_bit);

// Next 6-bit state after shifting `input_bit` in.
int conv_next_state(int state, int input_bit);

}  // namespace silence
