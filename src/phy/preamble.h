// 802.11a PLCP preamble: short training field (STF) and long training
// field (LTF), plus the receiver-side estimators that depend on them:
//  - per-bin channel estimate from the two long training symbols, and
//  - pilot-aided noise-floor estimation (paper Eq. 5-6), which CoS uses to
//    set the silence-symbol energy-detection threshold.
#pragma once

#include <array>
#include <span>

#include "dsp/fft.h"
#include "phy/params.h"

namespace silence {

inline constexpr int kStfSamples = 160;  // 10 short symbols, 8 us
inline constexpr int kLtfSamples = 160;  // 2x CP/2 + 2 long symbols, 8 us
inline constexpr int kPreambleSamples = kStfSamples + kLtfSamples;

// The LTF frequency-domain sequence L_k on bins -26..26 (52 occupied bins,
// DC zero), placed onto the 64-bin grid.
const CxVec& ltf_frequency_bins();

// The STF frequency-domain sequence on the 64-bin grid.
const CxVec& stf_frequency_bins();

// Time-domain preamble: 160 STF samples followed by 160 LTF samples
// (32-sample guard + two 64-sample long symbols).
CxVec build_preamble();

// Channel estimate from the received 160-sample LTF: averages the FFTs of
// the two long symbols and divides by the known sequence. Bins that carry
// no LTF energy (guards, DC) are zero.
std::array<Cx, kFftSize> estimate_channel(std::span<const Cx> ltf_samples);

// Frequency-domain noise variance estimated from the pilot residuals of
// one received OFDM symbol: n_i = y_i - H_i * x_i on each pilot bin
// (paper Eq. 6). The raw residual also carries the LTF channel-estimate
// error (variance eta/2), so the estimator debiases by 1.5x; the result
// is an unbiased estimate of the per-bin noise power E[|n|^2], averaged
// over the four pilots.
double pilot_noise_estimate(std::span<const Cx> bins64,
                            const std::array<Cx, kFftSize>& channel,
                            int symbol_index);

}  // namespace silence
