// 802.11a receive chain, split into a front end (channel/noise estimation,
// SIGNAL decode, per-symbol FFT) and a data decoder, so that the CoS
// energy detector can inspect raw frequency bins and mark silence symbols
// between the two stages.
//
// Each stage has a workspace-taking overload; with a warm PhyWorkspace the
// steady-state per-symbol processing performs no heap allocation (the
// result grids are reserved exactly once per packet).
#pragma once

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "common/bits.h"
#include "dsp/fft.h"
#include "phy/params.h"
#include "phy/signal_field.h"
#include "phy/symbol_grid.h"
#include "phy/workspace.h"

namespace silence {

// silence_mask[symbol][subcarrier] != 0 marks a detected silence symbol
// whose constellation bits must be treated as erasures (EVD).
using SilenceMask = std::vector<std::vector<std::uint8_t>>;

struct FrontEndResult {
  bool preamble_ok = false;
  std::optional<SignalField> signal;
  std::array<Cx, kFftSize> channel{};  // LTF-based estimate
  double noise_var = 0.0;  // per-bin frequency-domain noise, pilot-aided
  double cfo_hz = 0.0;     // preamble-estimated and corrected CFO
  // Raw 64-bin FFT output per data symbol (row = symbol).
  SymbolGrid data_bins{kFftSize};
  // Whole OFDM symbols following the data field (e.g. CoS feedback
  // symbols appended to an ACK). Not part of the PSDU decode.
  SymbolGrid trailer_bins{kFftSize};
};

// Runs preamble processing and SIGNAL decoding over a frame-aligned burst.
// When SIGNAL parses, all data-symbol FFTs and the pilot-aided noise
// estimate are populated.
FrontEndResult receiver_front_end(std::span<const Cx> samples);
FrontEndResult receiver_front_end(std::span<const Cx> samples,
                                  PhyWorkspace& ws);

struct DecodeResult {
  bool crc_ok = false;
  Bytes psdu;
  // Equalized data constellation points per symbol (48 each), for EVM
  // computation and symbol-error analysis.
  SymbolGrid eq_data{kNumDataSubcarriers};
  // Hard decisions of the coded stream in pre-interleave (deinterleaved)
  // order, one per transmitted coded bit; silence-masked symbols still
  // contribute their (meaningless) hard bits here, callers that measure
  // decoder-input BER should skip masked positions.
  Bits decoder_input_hard;
  // Descrambled information bits (SERVICE + PSDU + tail + pad).
  Bits info_bits;
  // Scrambler seed recovered from the SERVICE field (0 when decoding
  // failed before that point). Needed to reconstruct the transmitted
  // constellation points for EVM computation.
  std::uint8_t scrambler_seed = 0;
};

// Demodulates, deinterleaves, depunctures, Viterbi-decodes, descrambles
// and CRC-checks the data symbols. `silence` may be null (plain 802.11a).
DecodeResult decode_data_symbols(const FrontEndResult& fe, const Mcs& mcs,
                                 int length_octets,
                                 const SilenceMask* silence = nullptr);
DecodeResult decode_data_symbols(const FrontEndResult& fe, const Mcs& mcs,
                                 int length_octets, const SilenceMask* silence,
                                 PhyWorkspace& ws);

// Convenience: full receive of a plain (non-CoS) burst.
struct RxPacket {
  bool ok = false;  // preamble + SIGNAL + CRC all good
  std::optional<SignalField> signal;
  Bytes psdu;
};
RxPacket receive_packet(std::span<const Cx> samples);
RxPacket receive_packet(std::span<const Cx> samples, PhyWorkspace& ws);

// Like receive_packet(), but the frame may start anywhere in `samples`
// (preceded by noise/idle): runs STF/LTF timing acquisition first.
RxPacket receive_packet_unaligned(std::span<const Cx> samples);

// Decodes the SIGNAL symbol from its raw (unequalized) 64-bin FFT output
// using the LTF channel estimate. Shared by the scalar and batched front
// ends (phy/batch.h).
std::optional<SignalField> decode_signal_symbol(
    std::span<const Cx> signal_bins, const std::array<Cx, kFftSize>& channel,
    double noise_var, PhyWorkspace& ws);

// Equalizes one raw 64-bin symbol to the 48 logical data points.
// Bins with a near-zero channel estimate equalize to 0.
CxVec equalize_data_points(std::span<const Cx> bins64,
                           const std::array<Cx, kFftSize>& channel);
void equalize_data_points_into(std::span<const Cx> bins64,
                               const std::array<Cx, kFftSize>& channel,
                               std::span<Cx> points48);

}  // namespace silence
