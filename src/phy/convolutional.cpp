#include "phy/convolutional.h"

#include <bit>

namespace silence {
namespace {

// 7-bit window: bit 6 = current input d[n], bit 0 = oldest bit d[n-6].
inline std::uint8_t parity7(std::uint8_t window, std::uint8_t generator) {
  return static_cast<std::uint8_t>(
      std::popcount(static_cast<unsigned>(window & generator)) & 1);
}

}  // namespace

std::uint8_t conv_output(int state, int input_bit) {
  const auto window = static_cast<std::uint8_t>(
      ((input_bit & 1) << 6) | (state & (kNumStates - 1)));
  const std::uint8_t a = parity7(window, kGeneratorA);
  const std::uint8_t b = parity7(window, kGeneratorB);
  return static_cast<std::uint8_t>(a | (b << 1));
}

int conv_next_state(int state, int input_bit) {
  return ((input_bit & 1) << 5) | ((state & (kNumStates - 1)) >> 1);
}

Bits convolutional_encode(std::span<const std::uint8_t> bits) {
  Bits out;
  convolutional_encode_into(bits, out);
  return out;
}

void convolutional_encode_into(std::span<const std::uint8_t> bits,
                               Bits& out) {
  out.clear();
  out.reserve(bits.size() * 2);
  int state = 0;
  for (std::uint8_t bit : bits) {
    const std::uint8_t ab = conv_output(state, bit);
    out.push_back(static_cast<std::uint8_t>(ab & 1U));
    out.push_back(static_cast<std::uint8_t>((ab >> 1) & 1U));
    state = conv_next_state(state, bit);
  }
}

}  // namespace silence
