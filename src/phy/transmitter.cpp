#include "phy/transmitter.h"

#include <array>
#include <stdexcept>

#include "obs/obs.h"
#include "phy/convolutional.h"
#include "phy/interleaver.h"
#include "phy/modulation.h"
#include "phy/ofdm.h"
#include "phy/preamble.h"
#include "phy/puncture.h"
#include "phy/scrambler.h"
#include "phy/signal_field.h"

namespace silence {

namespace {
constexpr int kServiceBits = 16;
constexpr int kTailBits = 6;
}  // namespace

double TxFrame::airtime_sec() const {
  return kPreambleDurationSec + kSignalDurationSec +
         num_symbols() * kSymbolDurationSec;
}

int symbols_for_psdu(std::size_t psdu_octets, const Mcs& mcs) {
  const std::size_t payload_bits = kServiceBits + 8 * psdu_octets + kTailBits;
  return static_cast<int>(
      (payload_bits + static_cast<std::size_t>(mcs.n_dbps) - 1) /
      static_cast<std::size_t>(mcs.n_dbps));
}

TxFrame build_frame(std::span<const std::uint8_t> psdu, const Mcs& mcs,
                    std::uint8_t scrambler_seed) {
  if (psdu.empty() || psdu.size() > 4095) {
    throw std::invalid_argument("build_frame: PSDU must be 1..4095 octets");
  }
  OBS_SPAN("phy.tx.frame");
  OBS_COUNT("phy.tx.frames");

  TxFrame frame;
  frame.mcs = McsId::of(mcs);
  frame.scrambler_seed = scrambler_seed;
  frame.psdu_octets = psdu.size();

  const int n_sym = symbols_for_psdu(psdu.size(), mcs);
  const auto total_bits =
      static_cast<std::size_t>(n_sym) * static_cast<std::size_t>(mcs.n_dbps);

  // SERVICE (16 zero bits: 7 scrambler-init + 9 reserved) + PSDU + tail +
  // pad, then scramble everything and re-zero the tail so the encoder
  // terminates in state 0 (802.11a 17.3.5.2).
  Bits plain(total_bits, 0);
  const Bits psdu_bits = bytes_to_bits(psdu);
  std::copy(psdu_bits.begin(), psdu_bits.end(),
            plain.begin() + kServiceBits);

  {
    OBS_SPAN("phy.tx.scramble");
    Scrambler scrambler(scrambler_seed);
    frame.data_bits = scrambler.apply(plain);
    OBS_COUNT_N("phy.tx.scramble.items", frame.data_bits.size());
  }
  const std::size_t tail_at = kServiceBits + psdu_bits.size();
  for (int i = 0; i < kTailBits; ++i) frame.data_bits[tail_at + static_cast<std::size_t>(i)] = 0;

  {
    OBS_SPAN("phy.tx.encode");
    const Bits mother = convolutional_encode(frame.data_bits);
    frame.coded_bits = puncture(mother, mcs.code_rate);
    OBS_COUNT_N("phy.tx.encode.items", frame.data_bits.size());
  }

  Bits interleaved;
  {
    OBS_SPAN("phy.tx.interleave");
    interleaved = interleave(frame.coded_bits, mcs);
    OBS_COUNT_N("phy.tx.interleave.items", interleaved.size());
  }
  {
    OBS_SPAN("phy.tx.map");
    // Map straight into the flat grid storage: one allocation for the
    // whole frame, no per-symbol rows.
    frame.data_grid.resize(static_cast<std::size_t>(n_sym));
    map_bits_into(interleaved, mcs.modulation, frame.data_grid.cells());
    OBS_COUNT_N("phy.tx.map.items", frame.data_grid.cells().size());
  }
  OBS_COUNT_N("phy.tx.symbols", n_sym);
  return frame;
}

CxVec frame_samples_prefix(const TxFrame& frame) {
  if (!frame.mcs.valid()) {
    throw std::invalid_argument("frame_to_samples: empty frame");
  }
  // The preamble is a pure function of nothing; build it once.
  static const CxVec& preamble = *new CxVec(build_preamble());

  const std::size_t total =
      static_cast<std::size_t>(kPreambleSamples) +
      static_cast<std::size_t>(kSymbolSamples) * (1 + frame.data_grid.size());
  CxVec samples(total);
  const std::span<Cx> out(samples);
  std::copy(preamble.begin(), preamble.end(), out.begin());

  // SIGNAL symbol (BPSK, rate 1/2, not scrambled), pilot index 0.
  const Mcs& bpsk = mcs_for_rate(6);
  const Bits signal_bits =
      encode_signal_bits(*frame.mcs, static_cast<int>(frame.psdu_octets));
  const Bits signal_coded = convolutional_encode(signal_bits);
  const Bits signal_inter = interleave(signal_coded, bpsk);
  std::array<Cx, kNumDataSubcarriers> signal_points;
  map_bits_into(signal_inter, Modulation::kBpsk, signal_points);
  std::array<Cx, kFftSize> bins;
  assemble_frequency_bins_into(signal_points, 0, bins);
  bins_to_time_into(bins, out.subspan(kPreambleSamples, kSymbolSamples));
  return samples;
}

CxVec frame_to_samples(const TxFrame& frame) {
  CxVec samples = frame_samples_prefix(frame);
  const std::span<Cx> out(samples);

  // Data symbols: pilot indices 1..n, written straight into the output
  // burst (the IFFT runs in place on the destination span).
  std::array<Cx, kFftSize> bins;
  {
    OBS_SPAN("phy.tx.ifft");
    for (int s = 0; s < frame.num_symbols(); ++s) {
      assemble_frequency_bins_into(
          frame.data_grid[static_cast<std::size_t>(s)], s + 1, bins);
      const auto offset = static_cast<std::size_t>(kPreambleSamples) +
                          static_cast<std::size_t>(kSymbolSamples) *
                              static_cast<std::size_t>(1 + s);
      bins_to_time_into(bins, out.subspan(offset, kSymbolSamples));
    }
  }
  OBS_COUNT_N("phy.tx.ifft.items",
              static_cast<std::size_t>(frame.num_symbols()) *
                  static_cast<std::size_t>(kSymbolSamples));
  OBS_COUNT_N("phy.tx.samples", samples.size());
  return samples;
}

}  // namespace silence
