#include "phy/scrambler.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>
#include <stdexcept>

namespace silence {

Scrambler::Scrambler(std::uint8_t seed) : state_(seed & 0x7FU) {
  if (state_ == 0) {
    throw std::invalid_argument("Scrambler: seed must be non-zero");
  }
}

std::uint8_t Scrambler::next() {
  // state_ bit k holds x^(k+1); feedback is x^7 XOR x^4.
  const std::uint8_t out =
      static_cast<std::uint8_t>(((state_ >> 6) ^ (state_ >> 3)) & 1U);
  state_ = static_cast<std::uint8_t>(((state_ << 1) | out) & 0x7FU);
  return out;
}

Bits Scrambler::apply(std::span<const std::uint8_t> bits) {
  Bits out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((bits[i] ^ next()) & 1U);
  }
  return out;
}

Bits Scrambler::sequence(std::uint8_t seed, std::size_t length) {
  Scrambler s(seed);
  Bits out(length);
  for (auto& b : out) b = s.next();
  return out;
}

std::span<const std::uint8_t> Scrambler::period_cached(std::uint8_t seed) {
  constexpr std::size_t kPeriod = 127;
  // One slot per 7-bit seed, built once under the mutex and published
  // with release semantics (same pattern as fft_plan's cache).
  static std::array<std::atomic<const Bits*>, 128> slots{};
  static std::mutex build_mutex;
  const auto idx = static_cast<std::size_t>(seed & 0x7FU);
  if (idx == 0) {
    throw std::invalid_argument("Scrambler: seed must be non-zero");
  }
  const Bits* period = slots[idx].load(std::memory_order_acquire);
  if (period == nullptr) {
    const std::lock_guard<std::mutex> lock(build_mutex);
    period = slots[idx].load(std::memory_order_acquire);
    if (period == nullptr) {
      period = new Bits(sequence(seed, kPeriod));
      slots[idx].store(period, std::memory_order_release);
    }
  }
  return *period;
}

void Scrambler::apply_with_seed_into(std::uint8_t seed,
                                     std::span<const std::uint8_t> bits,
                                     Bits& out) {
  const auto period = period_cached(seed);
  out.resize(bits.size());
  std::size_t i = 0;
  while (i < bits.size()) {
    const std::size_t chunk = std::min(period.size(), bits.size() - i);
    for (std::size_t j = 0; j < chunk; ++j) {
      out[i + j] =
          static_cast<std::uint8_t>((bits[i + j] ^ period[j]) & 1U);
    }
    i += chunk;
  }
}

std::uint8_t Scrambler::recover_seed(std::span<const std::uint8_t> first7) {
  if (first7.size() < 7) {
    throw std::invalid_argument("recover_seed: need 7 bits");
  }
  for (std::uint8_t seed = 1; seed < 128; ++seed) {
    Scrambler s(seed);
    bool match = true;
    for (int i = 0; i < 7; ++i) {
      if (s.next() != (first7[static_cast<std::size_t>(i)] & 1U)) {
        match = false;
        break;
      }
    }
    if (match) return seed;
  }
  throw std::runtime_error("recover_seed: no state matches (corrupt input)");
}

}  // namespace silence
