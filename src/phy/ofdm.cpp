#include "phy/ofdm.h"

#include <stdexcept>

#include "phy/pilots.h"

namespace silence {

CxVec assemble_frequency_bins(std::span<const Cx> data48, int symbol_index) {
  if (data48.size() != static_cast<std::size_t>(kNumDataSubcarriers)) {
    throw std::invalid_argument("assemble_frequency_bins: need 48 points");
  }
  CxVec bins(kFftSize, Cx{0.0, 0.0});
  const auto data_bins = data_subcarrier_bins();
  for (int i = 0; i < kNumDataSubcarriers; ++i) {
    bins[static_cast<std::size_t>(data_bins[static_cast<std::size_t>(i)])] =
        data48[static_cast<std::size_t>(i)];
  }
  const auto pilots = pilot_values(symbol_index);
  const auto pilot_bins = pilot_subcarrier_bins();
  for (int i = 0; i < kNumPilotSubcarriers; ++i) {
    bins[static_cast<std::size_t>(pilot_bins[static_cast<std::size_t>(i)])] =
        pilots[static_cast<std::size_t>(i)];
  }
  return bins;
}

CxVec bins_to_time(std::span<const Cx> bins64) {
  if (bins64.size() != static_cast<std::size_t>(kFftSize)) {
    throw std::invalid_argument("bins_to_time: need 64 bins");
  }
  const CxVec body = ifft(bins64);
  CxVec samples;
  samples.reserve(kSymbolSamples);
  samples.insert(samples.end(), body.end() - kCpLength, body.end());
  samples.insert(samples.end(), body.begin(), body.end());
  return samples;
}

CxVec time_to_bins(std::span<const Cx> samples80) {
  if (samples80.size() != static_cast<std::size_t>(kSymbolSamples)) {
    throw std::invalid_argument("time_to_bins: need 80 samples");
  }
  return fft(samples80.subspan(kCpLength));
}

CxVec extract_data_points(std::span<const Cx> bins64) {
  if (bins64.size() != static_cast<std::size_t>(kFftSize)) {
    throw std::invalid_argument("extract_data_points: need 64 bins");
  }
  CxVec out(kNumDataSubcarriers);
  const auto data_bins = data_subcarrier_bins();
  for (int i = 0; i < kNumDataSubcarriers; ++i) {
    out[static_cast<std::size_t>(i)] =
        bins64[static_cast<std::size_t>(data_bins[static_cast<std::size_t>(i)])];
  }
  return out;
}

std::array<Cx, 4> extract_pilot_points(std::span<const Cx> bins64) {
  if (bins64.size() != static_cast<std::size_t>(kFftSize)) {
    throw std::invalid_argument("extract_pilot_points: need 64 bins");
  }
  std::array<Cx, 4> out;
  const auto pilot_bins = pilot_subcarrier_bins();
  for (int i = 0; i < kNumPilotSubcarriers; ++i) {
    out[static_cast<std::size_t>(i)] =
        bins64[static_cast<std::size_t>(pilot_bins[static_cast<std::size_t>(i)])];
  }
  return out;
}

}  // namespace silence
