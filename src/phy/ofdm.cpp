#include "phy/ofdm.h"

#include <algorithm>
#include <stdexcept>

#include "phy/pilots.h"

namespace silence {

void assemble_frequency_bins_into(std::span<const Cx> data48, int symbol_index,
                                  std::span<Cx> bins64) {
  if (data48.size() != static_cast<std::size_t>(kNumDataSubcarriers)) {
    throw std::invalid_argument("assemble_frequency_bins: need 48 points");
  }
  if (bins64.size() != static_cast<std::size_t>(kFftSize)) {
    throw std::invalid_argument("assemble_frequency_bins: need 64 bins");
  }
  std::fill(bins64.begin(), bins64.end(), Cx{0.0, 0.0});
  const auto data_bins = data_subcarrier_bins();
  for (int i = 0; i < kNumDataSubcarriers; ++i) {
    bins64[static_cast<std::size_t>(data_bins[static_cast<std::size_t>(i)])] =
        data48[static_cast<std::size_t>(i)];
  }
  const auto pilots = pilot_values(symbol_index);
  const auto pilot_bins = pilot_subcarrier_bins();
  for (int i = 0; i < kNumPilotSubcarriers; ++i) {
    bins64[static_cast<std::size_t>(pilot_bins[static_cast<std::size_t>(i)])] =
        pilots[static_cast<std::size_t>(i)];
  }
}

CxVec assemble_frequency_bins(std::span<const Cx> data48, int symbol_index) {
  CxVec bins(kFftSize);
  assemble_frequency_bins_into(data48, symbol_index, bins);
  return bins;
}

void bins_to_time_into(std::span<const Cx> bins64, std::span<Cx> samples80) {
  if (bins64.size() != static_cast<std::size_t>(kFftSize)) {
    throw std::invalid_argument("bins_to_time: need 64 bins");
  }
  if (samples80.size() != static_cast<std::size_t>(kSymbolSamples)) {
    throw std::invalid_argument("bins_to_time: need 80 samples");
  }
  // Body occupies samples [16, 80); the cyclic prefix is its last 16
  // samples copied to the front.
  const auto body = samples80.subspan(kCpLength);
  std::copy(bins64.begin(), bins64.end(), body.begin());
  fft_plan(kFftSize).inverse(body);
  std::copy(body.end() - kCpLength, body.end(), samples80.begin());
}

CxVec bins_to_time(std::span<const Cx> bins64) {
  CxVec samples(kSymbolSamples);
  bins_to_time_into(bins64, samples);
  return samples;
}

void time_to_bins_into(std::span<const Cx> samples80, std::span<Cx> bins64) {
  if (samples80.size() != static_cast<std::size_t>(kSymbolSamples)) {
    throw std::invalid_argument("time_to_bins: need 80 samples");
  }
  if (bins64.size() != static_cast<std::size_t>(kFftSize)) {
    throw std::invalid_argument("time_to_bins: need 64 bins");
  }
  const auto body = samples80.subspan(kCpLength);
  std::copy(body.begin(), body.end(), bins64.begin());
  fft_plan(kFftSize).forward(bins64);
}

CxVec time_to_bins(std::span<const Cx> samples80) {
  CxVec bins(kFftSize);
  time_to_bins_into(samples80, bins);
  return bins;
}

void extract_data_points_into(std::span<const Cx> bins64,
                              std::span<Cx> data48) {
  if (bins64.size() != static_cast<std::size_t>(kFftSize)) {
    throw std::invalid_argument("extract_data_points: need 64 bins");
  }
  if (data48.size() != static_cast<std::size_t>(kNumDataSubcarriers)) {
    throw std::invalid_argument("extract_data_points: need 48 points");
  }
  const auto data_bins = data_subcarrier_bins();
  for (int i = 0; i < kNumDataSubcarriers; ++i) {
    data48[static_cast<std::size_t>(i)] =
        bins64[static_cast<std::size_t>(data_bins[static_cast<std::size_t>(i)])];
  }
}

CxVec extract_data_points(std::span<const Cx> bins64) {
  CxVec out(kNumDataSubcarriers);
  extract_data_points_into(bins64, out);
  return out;
}

std::array<Cx, 4> extract_pilot_points(std::span<const Cx> bins64) {
  if (bins64.size() != static_cast<std::size_t>(kFftSize)) {
    throw std::invalid_argument("extract_pilot_points: need 64 bins");
  }
  std::array<Cx, 4> out;
  const auto pilot_bins = pilot_subcarrier_bins();
  for (int i = 0; i < kNumPilotSubcarriers; ++i) {
    out[static_cast<std::size_t>(i)] =
        bins64[static_cast<std::size_t>(pilot_bins[static_cast<std::size_t>(i)])];
  }
  return out;
}

}  // namespace silence
