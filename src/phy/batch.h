// Batched structure-of-arrays PHY engine.
//
// The scalar chain (receiver.cpp / transmitter.cpp) processes one OFDM
// symbol at a time through cache-cold array-of-structures buffers. This
// engine keeps the same arithmetic — every kernel replays the exact
// floating-point operation sequence of its scalar counterpart — but
// restructures the *storage* so the hot loops vectorize:
//
//  - FFT/IFFT run on row tiles: up to kRowTile symbols of one lane laid
//    out as split re/im planes, bin-major and row-minor, so each
//    butterfly is a contiguous kRowTile-wide vector operation sharing
//    one twiddle load. The butterflies replay FftPlan's tables and the
//    textbook complex-multiply formula that libstdc++ inlines, so every
//    row is bit-identical to fft_plan(64) on that symbol alone.
//  - The fixed-point Viterbi decodes up to ViterbiDecoder::kBatchLanes
//    packets in lockstep, vectorizing the 32 trellis butterflies across
//    lanes (see ViterbiDecoder::decode_fixed_batch for the contract).
//  - Descrambling XORs a cached 127-bit period instead of stepping the
//    LFSR bit by bit.
//
// Stages whose scalar form is serialized through libm or libgcc calls
// (CFO correction's per-sample sincos, the equalizer's __divdc3 complex
// division) stay scalar: a vectorized variant could not be bit-identical,
// and the determinism contract is absolute. See docs/ARCHITECTURE.md.
//
// Determinism contract: at any batch width, including B=1, every result
// byte (PSDU, CRC verdict, equalized points, LLR-derived bits, recovered
// seed) is identical to the scalar chain's, and the B=1 facades also
// emit the same observability side effects (flight events, counters) in
// the same order. The committed figure JSONs and the flight replay
// corpus are the oracle.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "dsp/fft.h"
#include "phy/params.h"
#include "phy/receiver.h"
#include "phy/transmitter.h"
#include "phy/viterbi.h"
#include "phy/workspace.h"

namespace silence {

// Reusable batch workspace: per-lane scalar workspaces plus the shared
// SoA tile planes. Buffers grow to the largest packet/batch seen and are
// reused, so steady-state batched processing performs no heap allocation
// (first use of a lane warms its buffers, like PhyWorkspace).
struct PhyBatch {
  // Maximum packets per sweep (matches the Viterbi's register width).
  static constexpr std::size_t kMaxLanes = ViterbiDecoder::kBatchLanes;
  // Symbols per FFT/IFFT tile: 16 rows x 64 bins of split doubles is
  // 16 KiB, small enough to stay L1-resident through all six stages.
  static constexpr std::size_t kRowTile = 16;

  // Split-complex tile planes, bin-major / row-minor:
  // tile_re[bin * kRowTile + row].
  alignas(32) std::array<double, kFftSize * kRowTile> tile_re{};
  alignas(32) std::array<double, kFftSize * kRowTile> tile_im{};

  // Per-lane scalar scratch (LLRs, survivors, corrected samples, ...).
  std::array<PhyWorkspace, kMaxLanes> lane_ws;
  // Per-lane front-end/decode state for the multi-lane entry points.
  std::array<FrontEndResult, kMaxLanes> lane_fe;
  std::array<DecodeResult, kMaxLanes> lane_decode;
  // Per-lane demap erasure counts (phase handoff inside multi-lane decode).
  std::array<std::size_t, kMaxLanes> lane_erased{};

  // Lane-batched Viterbi scratch.
  ViterbiBatchWorkspace viterbi;
  // Scratch holding per-lane mother-code spans and decoded outputs for
  // decode_fixed_batch (the outputs must be contiguous Bits objects).
  std::vector<std::span<const double>> llr_spans;
  std::array<Bits, kMaxLanes> viterbi_out;
};

// Process-wide engine switch consulted by the network/session layer
// (CLI `--no-phy-batch` clears it so CI can A/B the two paths). Defaults
// to enabled. The batched entry points themselves always run batched;
// the switch only controls whether call sites pick them.
bool phy_batch_enabled();
void set_phy_batch_enabled(bool on);

// --- Single-lane (B=1) facades -------------------------------------------
// Bit-identical results and observability side effects to the scalar
// functions of the same name, with tiled FFTs inside one packet and the
// cached-period descrambler.

FrontEndResult receiver_front_end_batch(std::span<const Cx> samples,
                                        PhyBatch& batch);
DecodeResult decode_data_symbols_batch(const FrontEndResult& fe,
                                       const Mcs& mcs, int length_octets,
                                       const SilenceMask* silence,
                                       PhyBatch& batch);
RxPacket receive_packet_batch(std::span<const Cx> samples, PhyBatch& batch);

// Tiled-IFFT transmit assembly (preamble + SIGNAL stay scalar; the data
// symbols run through the IFFT tile kernel).
CxVec frame_to_samples_batch(const TxFrame& frame, PhyBatch& batch);

// --- Multi-lane facades ---------------------------------------------------
// Each lane's result is bit-identical to the scalar chain run on that
// burst alone; lanes are processed in groups of up to kMaxLanes with the
// Viterbi vectorized across the group. Observability events interleave
// by phase rather than by packet (counter totals still match).

void receive_packet_batch(std::span<const std::span<const Cx>> bursts,
                          PhyBatch& batch, std::span<RxPacket> out);

// One decode lane: a front end that already parsed SIGNAL plus the decode
// parameters. `fe` may be null to skip the lane (its result is cleared).
struct DecodeLane {
  const FrontEndResult* fe = nullptr;
  const Mcs* mcs = nullptr;
  int length_octets = 0;
  const SilenceMask* silence = nullptr;
};

// Multi-lane data decode (used by the CoS receive facade, which needs
// per-lane silence masks): out[i] is bit-identical to
// decode_data_symbols(lanes[i]...) for every lane.
void decode_data_symbols_batch(std::span<const DecodeLane> lanes,
                               PhyBatch& batch, std::span<DecodeResult> out);

}  // namespace silence
