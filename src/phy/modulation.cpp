#include "phy/modulation.h"

#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace silence {
namespace {

// Gray-coded PAM levels per axis, indexed by the axis bit pattern read
// MSB-first (802.11a tables 81-84).
constexpr std::array<double, 2> kPam2 = {-1.0, 1.0};  // 0 -> -1, 1 -> +1
// index b0b1: 00,01,10,11
constexpr std::array<double, 4> kPam4 = {-3.0, -1.0, 3.0, 1.0};
// index b0b1b2: 000..111
constexpr std::array<double, 8> kPam8 = {-7.0, -5.0, -1.0, -3.0,
                                         7.0,  5.0,  1.0,  3.0};

double axis_value(std::span<const std::uint8_t> bits) {
  switch (bits.size()) {
    case 1: return kPam2[bits[0] & 1U];
    case 2: return kPam4[((bits[0] & 1U) << 1) | (bits[1] & 1U)];
    case 3:
      return kPam8[((bits[0] & 1U) << 2) | ((bits[1] & 1U) << 1) |
                   (bits[2] & 1U)];
    default: throw std::invalid_argument("axis_value: bad bit count");
  }
}

// Per-axis max-log LLRs: for each axis bit, the difference between the
// squared distance to the nearest level with that bit = 1 and the nearest
// with bit = 0.
template <std::size_t N>
void axis_llrs(double y, const std::array<double, N>& levels, int bits,
               double inv_noise, std::vector<double>& out) {
  for (int b = 0; b < bits; ++b) {
    double best0 = std::numeric_limits<double>::max();
    double best1 = std::numeric_limits<double>::max();
    for (std::size_t idx = 0; idx < N; ++idx) {
      const double d = y - levels[idx];
      const double dist = d * d;
      const bool bit_is_one = ((idx >> (bits - 1 - b)) & 1U) != 0;
      if (bit_is_one) {
        if (dist < best1) best1 = dist;
      } else {
        if (dist < best0) best0 = dist;
      }
    }
    out.push_back((best1 - best0) * inv_noise);
  }
}

template <std::size_t N>
std::size_t nearest_level(double y, const std::array<double, N>& levels) {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::max();
  for (std::size_t idx = 0; idx < N; ++idx) {
    const double d = y - levels[idx];
    if (d * d < best_dist) {
      best_dist = d * d;
      best = idx;
    }
  }
  return best;
}

struct ConstellationTables {
  CxVec bpsk, qpsk, qam16, qam64;
  ConstellationTables() {
    const auto build = [](Modulation mod) {
      const int n = bits_per_symbol(mod);
      CxVec points;
      points.reserve(std::size_t{1} << n);
      for (std::uint64_t v = 0; v < (std::uint64_t{1} << n); ++v) {
        const Bits bits = uint_to_bits(v, n);
        points.push_back(map_symbol(bits, mod));
      }
      return points;
    };
    bpsk = build(Modulation::kBpsk);
    qpsk = build(Modulation::kQpsk);
    qam16 = build(Modulation::kQam16);
    qam64 = build(Modulation::kQam64);
  }
};

const ConstellationTables& tables() {
  static const ConstellationTables t;
  return t;
}

}  // namespace

double modulation_scale(Modulation mod) {
  switch (mod) {
    case Modulation::kBpsk: return 1.0;
    case Modulation::kQpsk: return 1.0 / std::sqrt(2.0);
    case Modulation::kQam16: return 1.0 / std::sqrt(10.0);
    case Modulation::kQam64: return 1.0 / std::sqrt(42.0);
  }
  throw std::invalid_argument("modulation_scale: bad modulation");
}

Cx map_symbol(std::span<const std::uint8_t> bits, Modulation mod) {
  const int n = bits_per_symbol(mod);
  if (bits.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("map_symbol: wrong bit count");
  }
  const double scale = modulation_scale(mod);
  if (mod == Modulation::kBpsk) {
    return {axis_value(bits.first(1)) * scale, 0.0};
  }
  const auto half = static_cast<std::size_t>(n / 2);
  const double i_axis = axis_value(bits.first(half));
  const double q_axis = axis_value(bits.subspan(half));
  return {i_axis * scale, q_axis * scale};
}

void map_bits_into(std::span<const std::uint8_t> bits, Modulation mod,
                   std::span<Cx> out) {
  const auto n = static_cast<std::size_t>(bits_per_symbol(mod));
  if (bits.size() % n != 0) {
    throw std::invalid_argument("map_bits: not a whole number of symbols");
  }
  if (out.size() != bits.size() / n) {
    throw std::invalid_argument("map_bits_into: output size mismatch");
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = map_symbol(bits.subspan(i * n, n), mod);
  }
}

CxVec map_bits(std::span<const std::uint8_t> bits, Modulation mod) {
  const auto n = static_cast<std::size_t>(bits_per_symbol(mod));
  if (bits.size() % n != 0) {
    throw std::invalid_argument("map_bits: not a whole number of symbols");
  }
  CxVec out(bits.size() / n);
  map_bits_into(bits, mod, out);
  return out;
}

void demod_llrs(Cx y, Modulation mod, double noise_var,
                std::vector<double>& out) {
  const double scale = modulation_scale(mod);
  const double yi = y.real() / scale;
  const double yq = y.imag() / scale;
  // Distances are computed on the unscaled grid; fold the scale into the
  // noise normalization so LLR magnitudes stay proportional to true ones.
  const double inv_noise = scale * scale / std::max(noise_var, 1e-12);
  switch (mod) {
    case Modulation::kBpsk:
      axis_llrs(yi, kPam2, 1, inv_noise, out);
      return;
    case Modulation::kQpsk:
      axis_llrs(yi, kPam2, 1, inv_noise, out);
      axis_llrs(yq, kPam2, 1, inv_noise, out);
      return;
    case Modulation::kQam16:
      axis_llrs(yi, kPam4, 2, inv_noise, out);
      axis_llrs(yq, kPam4, 2, inv_noise, out);
      return;
    case Modulation::kQam64:
      axis_llrs(yi, kPam8, 3, inv_noise, out);
      axis_llrs(yq, kPam8, 3, inv_noise, out);
      return;
  }
  throw std::invalid_argument("demod_llrs: bad modulation");
}

Bits hard_decision_bits(Cx y, Modulation mod) {
  const double scale = modulation_scale(mod);
  const double yi = y.real() / scale;
  const double yq = y.imag() / scale;
  Bits bits;
  const auto push_axis = [&bits](std::size_t index, int nbits) {
    for (int b = nbits - 1; b >= 0; --b) {
      bits.push_back(static_cast<std::uint8_t>((index >> b) & 1U));
    }
  };
  switch (mod) {
    case Modulation::kBpsk:
      push_axis(nearest_level(yi, kPam2), 1);
      return bits;
    case Modulation::kQpsk:
      push_axis(nearest_level(yi, kPam2), 1);
      push_axis(nearest_level(yq, kPam2), 1);
      return bits;
    case Modulation::kQam16:
      push_axis(nearest_level(yi, kPam4), 2);
      push_axis(nearest_level(yq, kPam4), 2);
      return bits;
    case Modulation::kQam64:
      push_axis(nearest_level(yi, kPam8), 3);
      push_axis(nearest_level(yq, kPam8), 3);
      return bits;
  }
  throw std::invalid_argument("hard_decision_bits: bad modulation");
}

Cx hard_decision(Cx y, Modulation mod) {
  return map_symbol(hard_decision_bits(y, mod), mod);
}

std::span<const Cx> constellation(Modulation mod) {
  switch (mod) {
    case Modulation::kBpsk: return tables().bpsk;
    case Modulation::kQpsk: return tables().qpsk;
    case Modulation::kQam16: return tables().qam16;
    case Modulation::kQam64: return tables().qam64;
  }
  throw std::invalid_argument("constellation: bad modulation");
}

double min_constellation_distance(Modulation mod) {
  // Adjacent PAM levels differ by 2 on the unscaled grid.
  return 2.0 * modulation_scale(mod);
}

double min_symbol_energy(Modulation mod) {
  // Inner points sit at (+-1, +-1) on the unscaled grid (just +-1 for
  // BPSK's real axis).
  const double scale = modulation_scale(mod);
  const double per_axis = scale * scale;
  return mod == Modulation::kBpsk ? per_axis : 2.0 * per_axis;
}

}  // namespace silence
