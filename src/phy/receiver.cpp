#include "phy/receiver.h"

#include <cmath>
#include <stdexcept>

#include "common/crc32.h"
#include "obs/flight/flight.h"
#include "obs/health/health.h"
#include "obs/obs.h"
#include "phy/convolutional.h"
#include "phy/interleaver.h"
#include "phy/modulation.h"
#include "phy/ofdm.h"
#include "phy/pilots.h"
#include "phy/preamble.h"
#include "phy/puncture.h"
#include "phy/scrambler.h"
#include "phy/sync.h"
#include "phy/transmitter.h"
#include "phy/viterbi.h"

namespace silence {
namespace {

constexpr int kServiceBits = 16;
constexpr double kMinChannelPower = 1e-9;

const ViterbiDecoder& shared_decoder() {
  static const ViterbiDecoder decoder;
  return decoder;
}

}  // namespace

std::optional<SignalField> decode_signal_symbol(
    std::span<const Cx> signal_bins, const std::array<Cx, kFftSize>& channel,
    double noise_var, PhyWorkspace& ws) {
  std::array<Cx, kNumDataSubcarriers> points;
  equalize_data_points_into(signal_bins, channel, points);

  const Mcs& bpsk = mcs_for_rate(6);
  ws.llrs.clear();
  const auto data_bins = data_subcarrier_bins();
  for (int i = 0; i < kNumDataSubcarriers; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const Cx h = channel[static_cast<std::size_t>(data_bins[idx])];
    const double h2 = std::max(std::norm(h), kMinChannelPower);
    demod_llrs(points[idx], Modulation::kBpsk, noise_var / h2, ws.llrs);
  }
  deinterleave_symbol_llrs_into(ws.llrs, bpsk, ws.deint);
  shared_decoder().decode(ws.deint, /*terminated=*/true, ws.viterbi,
                          ws.scrambled);
  return parse_signal_bits(std::span(ws.scrambled).first(24));
}

void equalize_data_points_into(std::span<const Cx> bins64,
                               const std::array<Cx, kFftSize>& channel,
                               std::span<Cx> points48) {
  extract_data_points_into(bins64, points48);
  const auto data_bins = data_subcarrier_bins();
  for (int i = 0; i < kNumDataSubcarriers; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const Cx h = channel[static_cast<std::size_t>(data_bins[idx])];
    if (std::norm(h) < kMinChannelPower) {
      points48[idx] = Cx{0.0, 0.0};
    } else {
      points48[idx] /= h;
    }
  }
}

CxVec equalize_data_points(std::span<const Cx> bins64,
                           const std::array<Cx, kFftSize>& channel) {
  CxVec points(kNumDataSubcarriers);
  equalize_data_points_into(bins64, channel, points);
  return points;
}

FrontEndResult receiver_front_end(std::span<const Cx> samples) {
  return receiver_front_end(samples, default_phy_workspace());
}

FrontEndResult receiver_front_end(std::span<const Cx> raw_samples,
                                  PhyWorkspace& ws) {
  FrontEndResult fe;
  if (raw_samples.size() <
      static_cast<std::size_t>(kPreambleSamples + kSymbolSamples)) {
    return fe;
  }
  OBS_SPAN("phy.rx.frontend");
  OBS_COUNT("phy.rx.packets");
  fe.preamble_ok = true;

  // Carrier synchronization: coarse CFO from the STF periodicity, then a
  // fine pass on the (coarse-corrected) LTF. On an offset-free input the
  // estimates are noise-level and the correction is a no-op.
  ws.corrected.assign(raw_samples.begin(), raw_samples.end());
  CxVec& corrected = ws.corrected;
  {
    OBS_SPAN("phy.rx.sync");
    const double coarse =
        estimate_cfo_coarse(std::span(corrected).first(kStfSamples));
    correct_cfo(corrected, coarse);
    const double fine = estimate_cfo_fine(
        std::span(corrected).subspan(kStfSamples, kLtfSamples));
    correct_cfo(corrected, fine);
    fe.cfo_hz = coarse + fine;
    OBS_COUNT_N("phy.rx.sync.items", corrected.size());
  }
  const std::span<const Cx> samples(corrected);

  {
    OBS_SPAN("phy.rx.channel_est");
    fe.channel = estimate_channel(samples.subspan(kStfSamples, kLtfSamples));
  }

  // First-pass noise estimate from the SIGNAL symbol's pilots, refined
  // below by averaging over the data symbols.
  const auto signal_samples =
      samples.subspan(kPreambleSamples, kSymbolSamples);
  std::array<Cx, kFftSize> signal_bins;
  time_to_bins_into(signal_samples, signal_bins);
  double noise_sum = pilot_noise_estimate(signal_bins, fe.channel, 0);
  int noise_count = 1;
  fe.noise_var = noise_sum;

  {
    OBS_SPAN("phy.rx.signal");
    fe.signal = decode_signal_symbol(signal_bins, fe.channel, fe.noise_var, ws);
  }
  if (!fe.signal) return fe;

  const int n_sym =
      symbols_for_psdu(static_cast<std::size_t>(fe.signal->length_octets),
                       *fe.signal->mcs);
  const std::size_t needed =
      static_cast<std::size_t>(kPreambleSamples) +
      static_cast<std::size_t>(kSymbolSamples) *
          static_cast<std::size_t>(1 + n_sym);
  if (samples.size() < needed) {
    fe.signal.reset();
    return fe;
  }

  {
    OBS_SPAN("phy.rx.fft");
    fe.data_bins.reserve(static_cast<std::size_t>(n_sym));
    for (int s = 0; s < n_sym; ++s) {
      const auto offset = static_cast<std::size_t>(kPreambleSamples) +
                          static_cast<std::size_t>(kSymbolSamples) *
                              static_cast<std::size_t>(1 + s);
      const auto bins = fe.data_bins.append();
      time_to_bins_into(samples.subspan(offset, kSymbolSamples), bins);
      noise_sum += pilot_noise_estimate(bins, fe.channel, s + 1);
      ++noise_count;
    }
    OBS_COUNT_N("phy.rx.fft.items",
                static_cast<std::size_t>(n_sym) *
                    static_cast<std::size_t>(kSymbolSamples));
  }
  fe.noise_var = noise_sum / noise_count;
  OBS_COUNT_N("phy.rx.symbols", n_sym);

#if SILENCE_OBS_ON
  // Health waterfalls (every packet) and, when a flight recording is
  // active, the channel estimate the whole decode runs on (a = |H|^2 per
  // logical data subcarrier, b = the resulting bin SNR).
  {
    const bool flight_on = obs::flight::TrialRecording::active() != nullptr;
    const auto dbins = data_subcarrier_bins();
    for (int i = 0; i < kNumDataSubcarriers; ++i) {
      const double h2 = std::norm(
          fe.channel[static_cast<std::size_t>(
              dbins[static_cast<std::size_t>(i)])]);
      HEALTH_WATERFALL(
          kSnr, i,
          obs::health::quantize(h2 / fe.noise_var, obs::health::kSnrScale));
      HEALTH_WATERFALL(
          kChanMag, i,
          obs::health::quantize(std::sqrt(h2), obs::health::kChanScale));
      if (flight_on) {
        FLIGHT_EVENT("rx.csi", obs::flight::kNoIndex, i, h2,
                     h2 / fe.noise_var, 0);
      }
    }
  }
#endif

  // Any whole symbols after the data field are trailer symbols.
  const std::size_t n_trailer =
      samples.size() < needed + static_cast<std::size_t>(kSymbolSamples)
          ? 0
          : (samples.size() - needed) /
                static_cast<std::size_t>(kSymbolSamples);
  fe.trailer_bins.reserve(n_trailer);
  for (std::size_t s = 0; s < n_trailer; ++s) {
    const auto offset =
        needed + s * static_cast<std::size_t>(kSymbolSamples);
    time_to_bins_into(samples.subspan(offset, kSymbolSamples),
                      fe.trailer_bins.append());
  }
  return fe;
}

DecodeResult decode_data_symbols(const FrontEndResult& fe, const Mcs& mcs,
                                 int length_octets,
                                 const SilenceMask* silence) {
  return decode_data_symbols(fe, mcs, length_octets, silence,
                             default_phy_workspace());
}

DecodeResult decode_data_symbols(const FrontEndResult& fe, const Mcs& mcs,
                                 int length_octets, const SilenceMask* silence,
                                 PhyWorkspace& ws) {
  DecodeResult result;
  const int n_sym = static_cast<int>(fe.data_bins.size());
  if (n_sym == 0) return result;
  if (silence != nullptr &&
      silence->size() != static_cast<std::size_t>(n_sym)) {
    throw std::invalid_argument("decode_data_symbols: mask size mismatch");
  }

  OBS_SPAN("phy.rx.decode");
  const auto data_bins = data_subcarrier_bins();
  result.eq_data.reserve(static_cast<std::size_t>(n_sym));

  // Pass 1 — equalize every symbol (plus per-symbol common-phase-error
  // derotation). The equalized grid is retained in eq_data regardless
  // (EVM needs it), so splitting demapping into a second pass costs
  // nothing and gives each stage its own timing span.
  {
    OBS_SPAN("phy.rx.equalize");
    for (int s = 0; s < n_sym; ++s) {
      const auto sym = static_cast<std::size_t>(s);
      const auto points = result.eq_data.append();
      equalize_data_points_into(fe.data_bins[sym], fe.channel, points);

      // Common phase error tracking: residual CFO and phase noise rotate
      // every subcarrier of a symbol by the same angle; the four known
      // pilots reveal it (standard 802.11a receiver practice).
      const auto rx_pilots = extract_pilot_points(fe.data_bins[sym]);
      const auto tx_pilots = pilot_values(s + 1);
      const auto pilot_bins = pilot_subcarrier_bins();
      Cx rotation{0.0, 0.0};
      for (int i = 0; i < kNumPilotSubcarriers; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const Cx expected =
            fe.channel[static_cast<std::size_t>(pilot_bins[idx])] *
            tx_pilots[idx];
        rotation += rx_pilots[idx] * std::conj(expected);
      }
      if (std::abs(rotation) > 1e-12) {
        const Cx derotate = std::conj(rotation) / std::abs(rotation);
        for (Cx& p : points) p *= derotate;
      }
    }
    OBS_COUNT_N("phy.rx.equalize.items",
                static_cast<std::size_t>(n_sym) *
                    static_cast<std::size_t>(kNumDataSubcarriers));
  }

  // Pass 2 — demap to LLRs, injecting EVD erasures on masked subcarriers.
  ws.llrs.clear();
  ws.llrs.reserve(static_cast<std::size_t>(n_sym) *
                  static_cast<std::size_t>(mcs.n_cbps));
  [[maybe_unused]] std::size_t erased_bits = 0;
  {
    OBS_SPAN("phy.rx.demap");
    for (int s = 0; s < n_sym; ++s) {
      const auto sym = static_cast<std::size_t>(s);
      const auto points = result.eq_data[sym];
      for (int i = 0; i < kNumDataSubcarriers; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const bool erased =
            silence != nullptr && (*silence)[sym][idx] != 0;
        if (erased) {
          // EVD: every constellation bit of a silence symbol is an erasure
          // (paper Eq. 7, the e_k = 0 branch).
          for (int b = 0; b < mcs.n_bpsc; ++b) ws.llrs.push_back(0.0);
          erased_bits += static_cast<std::size_t>(mcs.n_bpsc);
          continue;
        }
        const Cx h = fe.channel[static_cast<std::size_t>(data_bins[idx])];
        const double h2 = std::max(std::norm(h), kMinChannelPower);
        demod_llrs(points[idx], mcs.modulation, fe.noise_var / h2, ws.llrs);
      }
    }
    OBS_COUNT_N("phy.rx.demap.items", ws.llrs.size());
  }
  OBS_COUNT_N("cos.erasures_injected", erased_bits);

  {
    OBS_SPAN("phy.rx.deinterleave");
    deinterleave_llrs_into(ws.llrs, mcs, ws.deint);
  }
  result.decoder_input_hard.reserve(ws.deint.size());
  for (double v : ws.deint) {
    result.decoder_input_hard.push_back(v < 0.0 ? 1 : 0);
  }

  const auto info_bits = static_cast<std::size_t>(n_sym) *
                         static_cast<std::size_t>(mcs.n_dbps);
  // The DATA field's pad bits are scrambled and therefore nonzero, so the
  // encoder does NOT finish in the all-zero state (only the tail bits are
  // re-zeroed, and padding follows them). Trace back from the best state.
  {
    OBS_SPAN("phy.rx.viterbi");
    depuncture_llrs_into(ws.deint, mcs.code_rate, info_bits * 2, ws.mother);
    shared_decoder().decode_fixed(ws.mother, /*terminated=*/false, ws.viterbi,
                                  ws.scrambled);
    OBS_COUNT_N("phy.rx.viterbi.items", ws.scrambled.size());
  }
  const Bits& scrambled = ws.scrambled;

#if SILENCE_OBS_ON
  {
    // Corrected-bit diagnostic (paper §"erasure Viterbi decoding"): the
    // decoder's output re-encoded and compared with the hard decisions it
    // was fed — mismatches at non-erased positions are the channel errors
    // plus silence erasures the code absorbed.
    convolutional_encode_into(scrambled, ws.recode_mother);
    puncture_into(ws.recode_mother, mcs.code_rate, ws.recoded);
    const Bits& recoded = ws.recoded;
    std::uint64_t corrected = 0;
    const std::size_t n = std::min(recoded.size(), ws.deint.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (ws.deint[i] != 0.0 &&
          (ws.deint[i] < 0.0 ? 1 : 0) != recoded[i]) {
        ++corrected;
      }
    }
    OBS_COUNT_N("cos.bits_corrected", corrected);
    // Flight: a = corrected bits, b = erased bits fed in, u = decoded
    // bit count — the EVD workload of this packet in one event.
    FLIGHT_EVENT("rx.viterbi", obs::flight::kNoIndex, obs::flight::kNoIndex,
                 corrected, erased_bits, scrambled.size());
  }
#endif

  // Descramble: the transmitter's 7-bit seed is recoverable from the first
  // 7 SERVICE bits, which are zero before scrambling.
  std::uint8_t seed = 0;
  try {
    seed = Scrambler::recover_seed(std::span(scrambled).first(7));
  } catch (const std::runtime_error&) {
    return result;  // hopelessly corrupt
  }
  Scrambler descrambler(seed);
  result.scrambler_seed = seed;
  {
    OBS_SPAN("phy.rx.descramble");
    result.info_bits = descrambler.apply(scrambled);
  }

  const std::size_t psdu_bits = 8 * static_cast<std::size_t>(length_octets);
  if (result.info_bits.size() < kServiceBits + psdu_bits) return result;
  result.psdu = bits_to_bytes(
      std::span(result.info_bits).subspan(kServiceBits, psdu_bits));
  result.crc_ok = check_fcs(result.psdu);
  FLIGHT_EVENT("rx.crc", obs::flight::kNoIndex, obs::flight::kNoIndex,
               result.psdu.size(), 0.0, result.crc_ok ? 1 : 0);
  if (result.crc_ok) {
    OBS_COUNT("phy.rx.crc_ok");
  } else {
    OBS_COUNT("phy.rx.crc_fail");
  }
  return result;
}

RxPacket receive_packet_unaligned(std::span<const Cx> samples) {
  const auto start = detect_frame_start(samples);
  if (!start) return {};
  return receive_packet(samples.subspan(*start));
}

RxPacket receive_packet(std::span<const Cx> samples) {
  return receive_packet(samples, default_phy_workspace());
}

RxPacket receive_packet(std::span<const Cx> samples, PhyWorkspace& ws) {
  RxPacket packet;
  const FrontEndResult fe = receiver_front_end(samples, ws);
  packet.signal = fe.signal;
  if (!fe.signal) return packet;
  DecodeResult decode =
      decode_data_symbols(fe, *fe.signal->mcs, fe.signal->length_octets,
                          nullptr, ws);
  packet.psdu = std::move(decode.psdu);
  packet.ok = decode.crc_ok;
  return packet;
}

}  // namespace silence
